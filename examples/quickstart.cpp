// Quickstart: decide equivalence of two SQL-style CQ queries under
// dependencies, across all three evaluation semantics, and minimize one of
// them with the C&B family.
//
// Scenario (Example 4.1 of the paper): schema {P, R, S, T, U} with tgds
// derived from P, keys on S and T, and S, T set valued. Query Q4 selects the
// first column of P; Q1 joins in four more subgoals. Under set semantics the
// two are equivalent given Σ; under bag/bag-set semantics they are NOT —
// this asymmetry is the paper's whole point.
#include <cstdio>

#include "chase/sound_chase.h"
#include "db/eval.h"
#include "equivalence/engine.h"
#include "ir/parser.h"
#include "reformulation/bag_candb.h"

namespace {

void Check(const sqleq::Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(sqleq::Result<T> r) {
  Check(r.status());
  return std::move(r).value();
}

/// Q1 ≡Σ,X Q2 through a throwaway EquivalenceEngine (replaces the
/// deprecated per-semantics wrappers).
sqleq::Result<bool> Equivalent(const sqleq::ConjunctiveQuery& q1,
                               const sqleq::ConjunctiveQuery& q2,
                               const sqleq::DependencySet& sigma,
                               sqleq::Semantics semantics,
                               const sqleq::Schema& schema) {
  sqleq::EquivalenceEngine engine;
  SQLEQ_ASSIGN_OR_RETURN(
      sqleq::EquivVerdict verdict,
      engine.Equivalent(q1, q2, sqleq::EquivRequest{semantics, sigma, schema, {}}));
  return verdict.equivalent;
}

}  // namespace

int main() {
  using namespace sqleq;

  // --- Schema: S and T are set valued in all instances (App. C egds). ---
  Schema schema;
  schema.Relation("p", 2)
      .Relation("r", 1)
      .Relation("s", 2, /*set_valued=*/true)
      .Relation("t", 3, /*set_valued=*/true)
      .Relation("u", 2);

  // --- Σ: four tgds + two keys (Example 4.1). ---
  DependencySet sigma = Unwrap(ParseSigma({
      "p(X, Y) -> s(X, Z), t(X, V, W).",
      "p(X, Y) -> t(X, Y, W).",
      "p(X, Y) -> r(X).",
      "p(X, Y) -> u(X, Z), t(X, Y, W).",
      "s(X, Y), s(X, Z) -> Y = Z.",
      "t(X, Y, W1), t(X, Y, W2) -> W1 = W2.",
  }));

  ConjunctiveQuery q1 = Unwrap(
      ParseQuery("Q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U)."));
  ConjunctiveQuery q4 = Unwrap(ParseQuery("Q4(X) :- p(X, Y)."));

  std::printf("Q1: %s\n", q1.ToString().c_str());
  std::printf("Q4: %s\n", q4.ToString().c_str());
  std::printf("Sigma:\n%s\n", SigmaToString(sigma).c_str());

  // --- Equivalence under each semantics. ---
  for (Semantics sem : {Semantics::kSet, Semantics::kBagSet, Semantics::kBag}) {
    bool eq = Unwrap(Equivalent(q1, q4, sigma, sem, schema));
    std::printf("Q1 ==Sigma,%-2s Q4 ?  %s\n", SemanticsToString(sem),
                eq ? "yes" : "no");
  }

  // --- Reformulate Q1 with the C&B family. ---
  std::printf("\nSigma-minimal reformulations of Q1:\n");
  struct Row {
    const char* name;
    Semantics sem;
  };
  for (Row row : {Row{"C&B (set)", Semantics::kSet},
                  Row{"Bag-Set-C&B", Semantics::kBagSet},
                  Row{"Bag-C&B", Semantics::kBag}}) {
    CandBResult result =
        Unwrap(ChaseAndBackchase(q1, sigma, row.sem, schema));
    std::printf("  %-12s universal plan has %zu atoms; outputs:\n", row.name,
                result.universal_plan.body().size());
    for (const ConjunctiveQuery& q : result.reformulations) {
      std::printf("    %s\n", q.ToString().c_str());
    }
  }

  // --- Witness the bag inequivalence with the evaluation oracle. ---
  Database d(schema);
  d.Add("p", {1, 2});
  d.Add("r", {1});
  d.Add("s", {1, 3});
  d.Add("t", {1, 2, 4});
  d.Add("u", {1, 5});
  d.Add("u", {1, 6});
  Bag a1 = Unwrap(Evaluate(q1, d, Semantics::kBag));
  Bag a4 = Unwrap(Evaluate(q4, d, Semantics::kBag));
  std::printf("\nCounterexample database (satisfies Sigma):\n%s", d.ToString().c_str());
  std::printf("Q1(D,B) = %s\nQ4(D,B) = %s\n", a1.ToString().c_str(),
              a4.ToString().c_str());
  return 0;
}
