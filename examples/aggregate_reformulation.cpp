// Aggregate reformulation (§6.2–6.3): Max-Min-C&B and Sum-Count-C&B on a
// payroll schema. The same join is removable for MAX but not for SUM unless
// a key pins the join to one row — Theorem 6.3's set- vs bag-set-reduction
// split, live.
#include <cstdio>

#include "db/aggregate_eval.h"
#include "equivalence/aggregate_equivalence.h"
#include "ir/parser.h"
#include "reformulation/aggregate_candb.h"
#include "sql/render.h"

namespace {

void Check(const sqleq::Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(sqleq::Result<T> r) {
  Check(r.status());
  return std::move(r).value();
}

}  // namespace

int main() {
  using namespace sqleq;

  Schema schema;
  Check(schema.AddRelation("sal", 2, {"emp", "amount"}));
  Check(schema.AddRelation("emp", 2, {"id", "dept"}));
  Check(schema.AddRelation("dept", 2, {"id", "mgr"}));

  // Without the dept key: the dept join may duplicate rows.
  DependencySet weak = Unwrap(ParseSigma({"emp(E, D) -> dept(D, M)."}));
  // With it: the join is one-to-one.
  DependencySet strong = Unwrap(ParseSigma({
      "emp(E, D) -> dept(D, M).",
      "dept(D, M1), dept(D, M2) -> M1 = M2.",
  }));

  AggregateQuery sum_q = Unwrap(ParseAggregateQuery(
      "Payroll(E, sum(S)) :- sal(E, S), emp(E, D), dept(D, M)."));
  AggregateQuery max_q = Unwrap(ParseAggregateQuery(
      "TopPay(E, max(S)) :- sal(E, S), emp(E, D), dept(D, M)."));

  struct Case {
    const char* label;
    const AggregateQuery* query;
    const DependencySet* sigma;
  };
  for (const Case& c : {Case{"SUM, no key on dept", &sum_q, &weak},
                        Case{"SUM, dept.id is a key", &sum_q, &strong},
                        Case{"MAX, no key on dept", &max_q, &weak}}) {
    std::printf("--- %s ---\n", c.label);
    std::printf("input : %s\n", c.query->ToString().c_str());
    AggregateCandBResult result =
        Unwrap(AggregateCandB(*c.query, *c.sigma, schema));
    for (const AggregateQuery& reform : result.reformulations) {
      std::printf("output: %s\n", reform.ToString().c_str());
      std::printf("as SQL: %s\n",
                  Unwrap(sql::RenderAggregateSql(reform, schema)).c_str());
      bool eq = Unwrap(AggregateEquivalentUnder(reform, *c.query, *c.sigma));
      std::printf("verified equivalent under Sigma: %s\n", eq ? "yes" : "NO!");
    }
  }

  // Witness the SUM gap on data: one dept row duplicated.
  std::printf("--- evaluation witness ---\n");
  Database db(schema);
  db.Add("sal", {1, 100}).Add("emp", {1, 7}).Add("dept", {7, 9}).Add("dept", {7, 8});
  AggregateQuery sum_nojoin =
      Unwrap(ParseAggregateQuery("Payroll(E, sum(S)) :- sal(E, S), emp(E, D)."));
  std::printf("dept has two rows for id 7 (no key enforced):\n");
  std::printf("  with join   : %s\n",
              Unwrap(EvaluateAggregate(sum_q, db)).ToString().c_str());
  std::printf("  without join: %s\n",
              Unwrap(EvaluateAggregate(sum_nojoin, db)).ToString().c_str());
  return 0;
}
