// Walkthrough of the paper's worked examples, printed as a narrative: run
// this to see every §4–§5 phenomenon on the original fixtures — unsound
// naive chase, regularization, assignment-fixing, sound chase results,
// Theorem 4.2, and the Max-Σ-Subset algorithms.
#include <cstdio>

#include "chase/assignment_fixing.h"
#include "chase/chase_step.h"
#include "chase/max_subset.h"
#include "chase/sound_chase.h"
#include "constraints/regularize.h"
#include "db/eval.h"
#include "db/satisfaction.h"
#include "equivalence/bag_equivalence.h"
#include "equivalence/engine.h"
#include "ir/parser.h"

namespace {

void Check(const sqleq::Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(sqleq::Result<T> r) {
  Check(r.status());
  return std::move(r).value();
}

/// Q1 ≡Σ,X Q2 through a throwaway EquivalenceEngine (replaces the
/// deprecated per-semantics wrappers).
sqleq::Result<bool> Equivalent(const sqleq::ConjunctiveQuery& q1,
                               const sqleq::ConjunctiveQuery& q2,
                               const sqleq::DependencySet& sigma,
                               sqleq::Semantics semantics,
                               const sqleq::Schema& schema) {
  sqleq::EquivalenceEngine engine;
  SQLEQ_ASSIGN_OR_RETURN(
      sqleq::EquivVerdict verdict,
      engine.Equivalent(q1, q2, sqleq::EquivRequest{semantics, sigma, schema, {}}));
  return verdict.equivalent;
}

void Section(const char* title) { std::printf("\n=== %s ===\n", title); }

}  // namespace

int main() {
  using namespace sqleq;

  Schema schema;
  schema.Relation("p", 2)
      .Relation("r", 1)
      .Relation("s", 2, /*set_valued=*/true)
      .Relation("t", 3, /*set_valued=*/true)
      .Relation("u", 2);
  DependencySet sigma = Unwrap(ParseSigma({
      "p(X, Y) -> s(X, Z), t(X, V, W).",
      "p(X, Y) -> t(X, Y, W).",
      "p(X, Y) -> r(X).",
      "p(X, Y) -> u(X, Z), t(X, Y, W).",
      "s(X, Y), s(X, Z) -> Y = Z.",
      "t(X, Y, W1), t(X, Y, W2) -> W1 = W2.",
  }));
  ConjunctiveQuery q4 = Unwrap(ParseQuery("Q4(X) :- p(X, Y)."));

  Section("Example 4.1: the three chase results of Q4");
  for (Semantics sem : {Semantics::kSet, Semantics::kBagSet, Semantics::kBag}) {
    ChaseOutcome out = Unwrap(SoundChase(q4, sigma, sem, schema));
    std::printf("  (Q4)Sigma,%-2s = %s\n", SemanticsToString(sem),
                out.result.ToString().c_str());
  }

  Section("Example 4.1: the counterexample database");
  Database d(schema);
  d.Add("p", {1, 2}).Add("r", {1}).Add("s", {1, 3}).Add("t", {1, 2, 4});
  d.Add("u", {1, 5}).Add("u", {1, 6});
  ConjunctiveQuery q1 =
      Unwrap(ParseQuery("Q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U)."));
  std::printf("  D |= Sigma: %s\n",
              Unwrap(Satisfies(d, sigma)) ? "yes" : "no");
  std::printf("  Q4(D,B) = %s   Q1(D,B) = %s  -> Q1 and Q4 differ under B\n",
              Unwrap(Evaluate(q4, d, Semantics::kBag)).ToString().c_str(),
              Unwrap(Evaluate(q1, d, Semantics::kBag)).ToString().c_str());

  Section("Section 4.2.1: regularization of sigma1 and sigma4");
  DependencySet regular = RegularizeSigma(sigma);
  std::printf("%s", SigmaToString(regular).c_str());

  Section("Examples 4.2/4.3: assignment-fixing is dependency- and query-sensitive");
  {
    DependencySet s42 = Unwrap(ParseSigma({
        "p(X, Y) -> r(X, Z), s(Z, W).",
        "r(X, Y), r(X, Z) -> Y = Z.",
        "r(X, Y), s(Y, T), r(X, Z), s(Z, W) -> T = W.",
    }));
    ConjunctiveQuery q = Unwrap(ParseQuery("Q(X) :- p(X, Y)."));
    std::printf("  sigma1 assignment-fixing w.r.t. Q(X):-p(X,Y)?  %s\n",
                Unwrap(IsAssignmentFixingForQuery(q, s42[0].tgd(), s42)) ? "yes"
                                                                          : "no");
    DependencySet s43 = Unwrap(ParseSigma({
        "p(X, Y) -> s(X, T).",
        "p(X, Y), r(A, X), s(X, T) -> X = T.",
    }));
    ConjunctiveQuery qp = Unwrap(ParseQuery("Qp(X) :- p(X, Y), r(A, X)."));
    std::printf("  Example 5.1 flavour: same tgd, fixing for Q'? %s; for Q? %s\n",
                Unwrap(IsAssignmentFixingForQuery(qp, s43[0].tgd(), s43)) ? "yes"
                                                                          : "no",
                Unwrap(IsAssignmentFixingForQuery(q, s43[0].tgd(), s43)) ? "yes"
                                                                          : "no");
  }

  Section("Example 4.9 / Theorem 4.2: duplicate subgoals over set-valued S");
  {
    ConjunctiveQuery q3 =
        Unwrap(ParseQuery("Q3(X) :- p(X, Y), t(X, Y, W), s(X, Z)."));
    ConjunctiveQuery q5 =
        Unwrap(ParseQuery("Q5(X) :- p(X, Y), t(X, Y, W), s(X, Z), s(X, Z)."));
    std::printf("  Thm 2.1 (plain bag equivalence):      %s\n",
                BagEquivalent(q3, q5) ? "equivalent" : "NOT equivalent");
    std::printf("  Thm 4.2 (modulo set-valued S):        %s\n",
                BagEquivalentModuloSetRelations(q3, q5, schema) ? "equivalent"
                                                                : "NOT equivalent");
  }

  Section("Section 5.3: Max-Bag-Sigma-Subset and Max-Bag-Set-Sigma-Subset");
  {
    MaxSubsetResult b = Unwrap(MaxBagSigmaSubset(q4, sigma, schema));
    MaxSubsetResult bs = Unwrap(MaxBagSetSigmaSubset(q4, sigma, schema));
    std::printf("  SigmaMaxB(Q4)  keeps %zu of %zu:\n%s",
                b.max_subset.size(), sigma.size(),
                SigmaToString(b.max_subset).c_str());
    std::printf("  SigmaMaxBS(Q4) keeps %zu of %zu (sigma3 returns under BS)\n",
                bs.max_subset.size(), sigma.size());
  }

  Section("Theorems 6.1/6.2: the equivalence tests");
  {
    ConjunctiveQuery q3 =
        Unwrap(ParseQuery("Q3(X) :- p(X, Y), t(X, Y, W), s(X, Z)."));
    ConjunctiveQuery q2 =
        Unwrap(ParseQuery("Q2(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X)."));
    std::printf("  Q3 ==Sigma,B  Q4: %s\n",
                Unwrap(Equivalent(q3, q4, sigma, Semantics::kBag, schema)) ? "yes" : "no");
    std::printf("  Q2 ==Sigma,BS Q4: %s\n",
                Unwrap(Equivalent(q2, q4, sigma, Semantics::kBagSet, schema)) ? "yes" : "no");
    std::printf("  Q2 ==Sigma,B  Q4: %s  (r is bag valued)\n",
                Unwrap(Equivalent(q2, q4, sigma, Semantics::kBag, schema)) ? "yes" : "no");
  }
  return 0;
}
