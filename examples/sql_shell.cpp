// End-to-end scripted session: load a SQL schema + data, evaluate queries
// under the semantics the SQL standard assigns them, prove/refute
// equivalences under the DDL-induced dependencies, rewrite over materialized
// views, and rank the reformulations with the cost model.
#include <cstdio>

#include "db/eval.h"
#include "ir/parser.h"
#include "equivalence/engine.h"
#include "reformulation/candb.h"
#include "reformulation/cost.h"
#include "reformulation/views.h"
#include "sql/render.h"
#include "sql/translate.h"

namespace {

void Check(const sqleq::Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(sqleq::Result<T> r) {
  Check(r.status());
  return std::move(r).value();
}

/// Q1 ≡Σ,X Q2 through a throwaway EquivalenceEngine (replaces the
/// deprecated per-semantics wrappers).
sqleq::Result<bool> Equivalent(const sqleq::ConjunctiveQuery& q1,
                               const sqleq::ConjunctiveQuery& q2,
                               const sqleq::DependencySet& sigma,
                               sqleq::Semantics semantics,
                               const sqleq::Schema& schema) {
  sqleq::EquivalenceEngine engine;
  SQLEQ_ASSIGN_OR_RETURN(
      sqleq::EquivVerdict verdict,
      engine.Equivalent(q1, q2, sqleq::EquivRequest{semantics, sigma, schema, {}}));
  return verdict.equivalent;
}

}  // namespace

int main() {
  using namespace sqleq;

  // ---- 1. Load schema and data. ----
  sql::LoadedDatabase loaded = Unwrap(sql::LoadScript(R"(
    CREATE TABLE customer (cid INT PRIMARY KEY, region TEXT);
    CREATE TABLE orders (oid INT PRIMARY KEY, cid INT, total INT,
                         FOREIGN KEY (cid) REFERENCES customer (cid));
    CREATE TABLE clicks (cid INT, page TEXT);
    INSERT INTO customer VALUES (1, 'eu'), (2, 'us');
    INSERT INTO orders VALUES (100, 1, 30), (101, 1, 50), (102, 2, 20);
    INSERT INTO clicks VALUES (1, 'home');
    INSERT INTO clicks VALUES (1, 'home');
    INSERT INTO clicks VALUES (2, 'search');
  )"));
  const sql::Catalog& catalog = loaded.catalog;
  std::printf("Loaded instance:\n%s\n", loaded.database.ToString().c_str());

  // ---- 2. Evaluate a query under its SQL semantics. ----
  sql::TranslatedQuery q = Unwrap(sql::TranslateSql(
      "SELECT c.cid FROM customer c, clicks k WHERE c.cid = k.cid", catalog));
  std::printf("query     : %s\n", q.ToString().c_str());
  Bag answer = Unwrap(Evaluate(*q.cq, loaded.database, q.semantics));
  std::printf("answer    : %s  (clicks is a bag: duplicates survive)\n\n",
              answer.ToString().c_str());

  // ---- 3. Equivalence under the DDL-induced dependencies. ----
  sql::TranslatedQuery lhs = Unwrap(sql::TranslateSql(
      "SELECT o.oid FROM orders o, customer c WHERE o.cid = c.cid", catalog));
  sql::TranslatedQuery rhs =
      Unwrap(sql::TranslateSql("SELECT o.oid FROM orders o", catalog));
  bool equivalent = Unwrap(Equivalent(*lhs.cq, *rhs.cq, catalog.sigma,
                                      lhs.semantics, catalog.schema));
  std::printf("fk+key prove the customer join redundant (no DISTINCT needed): %s\n\n",
              equivalent ? "yes" : "no");

  // ---- 4. Minimize with C&B and rank by cost. ----
  CandBResult candb = Unwrap(ChaseAndBackchase(*lhs.cq, catalog.sigma, lhs.semantics,
                                               catalog.schema));
  CostModel model;
  model.SetRows("orders", 1e6).SetRows("customer", 1e4).SetRows("clicks", 1e8);
  std::printf("C&B outputs (%zu candidates examined):\n", candb.candidates_examined);
  for (const ConjunctiveQuery& reform : candb.reformulations) {
    CostEstimate cost = EstimateCost(reform, model);
    std::printf("  %-60s cost=%.0f\n",
                Unwrap(sql::RenderSql(reform, catalog.schema, lhs.semantics)).c_str(),
                cost.intermediate_tuples);
  }
  std::optional<size_t> best = PickCheapest(candb.reformulations, model);
  if (best.has_value()) {
    std::printf("cheapest: %s\n\n",
                Unwrap(sql::RenderSql(candb.reformulations[*best], catalog.schema,
                                      lhs.semantics))
                    .c_str());
  }

  // ---- 5. Rewrite over materialized views. ----
  ViewSet views;
  Check(views.Add(Unwrap(
      ParseQuery("v_cust_orders(O, C, R) :- orders(O, C, T), customer(C, R)."))));
  sql::TranslatedQuery vq = Unwrap(sql::TranslateSql(
      "SELECT o.oid, c.region FROM orders o, customer c WHERE o.cid = c.cid",
      catalog));
  RewriteResult rewrites = Unwrap(RewriteWithViews(
      *vq.cq, views, catalog.sigma, vq.semantics, catalog.schema));
  std::printf("rewritings of the orders-customer join over v_cust_orders:\n");
  for (const ConjunctiveQuery& r : rewrites.rewritings) {
    std::printf("  %s\n", r.ToString().c_str());
  }
  return 0;
}
