// SQL query minimizer — the paper's motivating application end to end:
// DDL in, SQL query in, Σ-minimal equivalent SQL out, under the evaluation
// semantics the SQL standard mandates for that query (DISTINCT → set; plain
// SELECT over keyed tables → bag-set; over un-keyed tables → bag).
//
// The schema is a small order-management catalog. The input query joins
// three tables; whether the joins can be dropped depends on the semantics:
// a plain SELECT must preserve row multiplicities, so only key-preserving
// joins are removable.
#include <cstdio>
#include <string>
#include <vector>

#include "reformulation/candb.h"
#include "sql/render.h"
#include "sql/translate.h"

namespace {

void Check(const sqleq::Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(sqleq::Result<T> r) {
  Check(r.status());
  return std::move(r).value();
}

}  // namespace

int main() {
  using namespace sqleq;
  using sql::Catalog;
  using sql::TranslatedQuery;

  const char* ddl = R"(
    CREATE TABLE customer (cid INT PRIMARY KEY, name TEXT);
    CREATE TABLE orders (oid INT PRIMARY KEY, cid INT, total INT,
                         FOREIGN KEY (cid) REFERENCES customer (cid));
    CREATE TABLE clicks (cid INT, page TEXT);
  )";
  Catalog catalog = Unwrap(sql::CatalogFromScript(ddl));
  std::printf("Catalog:\n%s\nDependencies induced by the DDL:\n%s\n",
              catalog.schema.ToString().c_str(),
              SigmaToString(catalog.sigma).c_str());

  std::vector<std::string> queries = {
      // The customer join is implied by the foreign key + key of customer:
      // removable under EVERY semantics.
      "SELECT o.oid FROM orders o, customer c WHERE o.cid = c.cid",
      // DISTINCT: set semantics; the second orders scan is redundant.
      "SELECT DISTINCT o1.oid FROM orders o1, orders o2 WHERE o1.oid = o2.oid",
      // Plain SELECT over clicks (no key => bag semantics): the self-join
      // multiplies rows and must be KEPT.
      "SELECT c1.cid FROM clicks c1, clicks c2 WHERE c1.cid = c2.cid",
  };

  for (const std::string& input : queries) {
    std::printf("----------------------------------------------------------\n");
    std::printf("input : %s\n", input.c_str());
    TranslatedQuery tq = Unwrap(sql::TranslateSql(input, catalog));
    std::printf("as CQ : %s\n", tq.ToString().c_str());

    CandBResult result = Unwrap(ChaseAndBackchase(
        *tq.cq, catalog.sigma, tq.semantics, catalog.schema));
    std::printf("chase : universal plan has %zu atoms, %zu candidates examined\n",
                result.universal_plan.body().size(), result.candidates_examined);
    for (const ConjunctiveQuery& reform : result.reformulations) {
      std::string back = Unwrap(sql::RenderSql(reform, catalog.schema, tq.semantics));
      std::printf("output: %s\n        (%s)\n", back.c_str(),
                  reform.ToString().c_str());
    }
  }
  return 0;
}
