// Unit tests for the static Σ-interaction analysis (analysis/sigma_graph.h):
// slice soundness and signatures, termination certificates with their
// Verify re-derivation check, and the coarse StepBound arithmetic.
#include "analysis/sigma_graph.h"

#include <gtest/gtest.h>

#include "ir/parser.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::Q;
using testing::Sigma;

// --- slicing ---

TEST(SigmaSliceTest, ConnectedSigmaIsKeptInFull) {
  SigmaGraph graph = SigmaGraph::Build(Sigma({
      "p(X, Y) -> r(X).",
      "r(X) -> s(X, Z).",
  }));
  SigmaSlice slice = graph.SliceFor(Q("Q(X) :- p(X, Y).").body());
  EXPECT_TRUE(slice.IsFull());
  EXPECT_EQ(slice.kept.size(), 2u);
  EXPECT_TRUE(slice.pruned.empty());
}

TEST(SigmaSliceTest, DisconnectedDependencyIsPruned) {
  SigmaGraph graph = SigmaGraph::Build(Sigma({
      "p(X, Y) -> r(X).",
      "a(X) -> b(X).",  // unreachable from p/r
  }));
  SigmaSlice slice = graph.SliceFor(Q("Q(X) :- p(X, Y).").body());
  EXPECT_FALSE(slice.IsFull());
  ASSERT_EQ(slice.kept.size(), 1u);
  EXPECT_EQ(slice.kept[0], 0u);
  ASSERT_EQ(slice.pruned.size(), 1u);
  EXPECT_EQ(slice.pruned[0].index, 1u);
  EXPECT_EQ(slice.pruned[0].blocked_atom, "a(X)");
  ASSERT_EQ(slice.in_slice.size(), 2u);
  EXPECT_TRUE(slice.in_slice[0]);
  EXPECT_FALSE(slice.in_slice[1]);
}

TEST(SigmaSliceTest, ReachabilityIsTransitive) {
  // q's body mentions only p, but p-writes feed r, and r-writes feed s.
  SigmaGraph graph = SigmaGraph::Build(Sigma({
      "p(X, Y) -> r(X).",
      "r(X) -> s(X, Z).",
      "s(X, Y) -> t(X).",
  }));
  SigmaSlice slice = graph.SliceFor(Q("Q(X) :- p(X, Y).").body());
  EXPECT_TRUE(slice.IsFull());
}

TEST(SigmaSliceTest, MultiAtomBodyNeedsEveryAtomCovered) {
  // The second dependency reads BOTH r and z; z is never written and not in
  // the query, so the dependency can never fire even though r is reachable.
  SigmaGraph graph = SigmaGraph::Build(Sigma({
      "p(X, Y) -> r(X).",
      "r(X), z(X) -> w(X).",
  }));
  SigmaSlice slice = graph.SliceFor(Q("Q(X) :- p(X, Y).").body());
  ASSERT_EQ(slice.pruned.size(), 1u);
  EXPECT_EQ(slice.pruned[0].index, 1u);
  EXPECT_EQ(slice.pruned[0].blocked_atom, "z(X)");
}

TEST(SigmaSliceTest, ClashingConstantsSeverTheMatch) {
  // The query only has p(X, 1) while the dependency reads p(X, 2): under
  // the constant-aware abstraction they cannot match, and nothing else
  // writes p.
  SigmaGraph graph = SigmaGraph::Build(Sigma({"p(X, 2) -> r(X)."}));
  SigmaSlice pruned = graph.SliceFor(Q("Q(X) :- p(X, 1).").body());
  EXPECT_TRUE(pruned.kept.empty());
  // A variable in the query position is a wildcard: kept.
  SigmaSlice kept = graph.SliceFor(Q("Q(X) :- p(X, Y).").body());
  EXPECT_TRUE(kept.IsFull());
}

TEST(SigmaSliceTest, EgdRewritesAreWildcardWrites) {
  // The egd can merge values inside s-tuples, which may enable the tgd
  // reading s(X, X) even though the query only has s(X, Y): the egd's
  // rewritten atoms must count as wildcard writes.
  SigmaGraph graph = SigmaGraph::Build(Sigma({
      "s(X, Y), s(X, Z) -> Y = Z.",
      "s(X, X) -> r(X).",
  }));
  SigmaSlice slice = graph.SliceFor(Q("Q(X) :- s(X, Y).").body());
  EXPECT_TRUE(slice.IsFull());
}

TEST(SigmaSliceTest, SignatureEncodesKeptSet) {
  SigmaGraph graph = SigmaGraph::Build(Sigma({
      "p(X, Y) -> r(X).",
      "a(X) -> b(X).",
  }));
  EXPECT_EQ(graph.SliceFor(Q("Q(X) :- p(X, Y).").body()).Signature(), "1/2:1");
  EXPECT_EQ(graph.SliceFor(Q("Q(X) :- a(X).").body()).Signature(), "1/2:2");
  EXPECT_EQ(graph.SliceFor(Q("Q(X) :- p(X, Y), a(X).").body()).Signature(),
            "2/2:3");
}

TEST(SigmaSliceTest, EmptySigmaSlicesToEmpty) {
  SigmaGraph graph = SigmaGraph::Build(DependencySet{});
  SigmaSlice slice = graph.SliceFor(Q("Q(X) :- p(X, Y).").body());
  EXPECT_TRUE(slice.IsFull());  // vacuously
  EXPECT_EQ(slice.total(), 0u);
  EXPECT_EQ(slice.Signature(), "0/0:0");
}

// --- termination certificates ---

TEST(TerminationCertificateTest, WeaklyAcyclicSigma) {
  SigmaGraph graph = SigmaGraph::Build(Sigma({
      "p(X, Y) -> r(X).",
      "r(X) -> s(X, Z).",
  }));
  TerminationCertificate cert = graph.DeriveCertificate();
  EXPECT_TRUE(cert.weakly_acyclic);
  EXPECT_TRUE(cert.stratified);
  EXPECT_TRUE(cert.terminates());
  EXPECT_FALSE(cert.witness.has_value());
  EXPECT_TRUE(graph.Verify(cert));
}

TEST(TerminationCertificateTest, NonTerminatingSigmaHasWitness) {
  SigmaGraph graph = SigmaGraph::Build(Sigma({"e(X, Y) -> e(Y, Z)."}));
  TerminationCertificate cert = graph.DeriveCertificate();
  EXPECT_FALSE(cert.weakly_acyclic);
  EXPECT_FALSE(cert.stratified);
  EXPECT_FALSE(cert.terminates());
  EXPECT_TRUE(cert.witness.has_value());
  EXPECT_EQ(cert.StepBound(2, 3), 0u);  // no bound without termination
  EXPECT_TRUE(graph.Verify(cert));
}

TEST(TerminationCertificateTest, StrataAreInFiringOrder) {
  // p-deps must come before the r-reader, which comes before the s-reader.
  SigmaGraph graph = SigmaGraph::Build(Sigma({
      "s(X, Y) -> t(X).",
      "r(X) -> s(X, Z).",
      "p(X, Y) -> r(X).",
  }));
  TerminationCertificate cert = graph.DeriveCertificate();
  ASSERT_EQ(cert.strata.size(), 3u);
  EXPECT_EQ(cert.strata[0].members, std::vector<size_t>{2});
  EXPECT_EQ(cert.strata[1].members, std::vector<size_t>{1});
  EXPECT_EQ(cert.strata[2].members, std::vector<size_t>{0});
  for (const TerminationCertificate::Stratum& s : cert.strata) {
    EXPECT_TRUE(s.weakly_acyclic);
  }
}

TEST(TerminationCertificateTest, VerifyRejectsTamperedCertificate) {
  SigmaGraph graph = SigmaGraph::Build(Sigma({"p(X, Y) -> r(X)."}));
  TerminationCertificate cert = graph.DeriveCertificate();
  ASSERT_TRUE(graph.Verify(cert));
  TerminationCertificate tampered = cert;
  tampered.max_rank = cert.max_rank + 1;
  EXPECT_FALSE(graph.Verify(tampered));
  tampered = cert;
  tampered.stratified = !cert.stratified;
  EXPECT_FALSE(graph.Verify(tampered));
  tampered = cert;
  tampered.existentials = cert.existentials + 1;
  EXPECT_FALSE(graph.Verify(tampered));
}

TEST(TerminationCertificateTest, CertificateIsNotForAnotherSigma) {
  SigmaGraph wa = SigmaGraph::Build(Sigma({"p(X, Y) -> r(X)."}));
  SigmaGraph cyclic = SigmaGraph::Build(Sigma({"e(X, Y) -> e(Y, Z)."}));
  EXPECT_FALSE(cyclic.Verify(wa.DeriveCertificate()));
  EXPECT_FALSE(wa.Verify(cyclic.DeriveCertificate()));
}

TEST(TerminationCertificateTest, StepBoundIsFiniteAndMonotone) {
  SigmaGraph graph = SigmaGraph::Build(Sigma({
      "p(X, Y) -> r(X).",
      "r(X) -> s(X, Z).",
  }));
  TerminationCertificate cert = graph.DeriveCertificate();
  uint64_t small = cert.StepBound(1, 2);
  uint64_t large = cert.StepBound(4, 8);
  EXPECT_GT(small, 0u);
  EXPECT_LE(small, large);
  EXPECT_LT(large, TerminationCertificate::kBoundCap);
}

TEST(TerminationCertificateTest, StepBoundSaturatesInsteadOfOverflowing) {
  // Wide bodies with an existential head push the tuple count past 2^62 for
  // a large query: the saturating arithmetic must cap, not wrap.
  SigmaGraph graph = SigmaGraph::Build(Sigma({
      "p(X1, X2, X3, X4, X5, X6, X7, X8) -> "
      "q(X1, X2, X3, X4, X5, X6, X7, X8, Z).",
  }));
  TerminationCertificate cert = graph.DeriveCertificate();
  ASSERT_TRUE(cert.terminates());
  EXPECT_EQ(cert.StepBound(1, size_t{1} << 16),
            TerminationCertificate::kBoundCap);
}

TEST(TerminationCertificateTest, NoSigmaNoSteps) {
  SigmaGraph graph = SigmaGraph::Build(DependencySet{});
  TerminationCertificate cert = graph.DeriveCertificate();
  EXPECT_TRUE(cert.terminates());
  // No dependencies: nothing can fire regardless of the query size, but the
  // bound may still count the query itself; it just must be finite.
  EXPECT_LT(cert.StepBound(3, 5), TerminationCertificate::kBoundCap);
}

TEST(TerminationCertificateTest, ToStringMentionsStrataOrWitness) {
  SigmaGraph wa = SigmaGraph::Build(Sigma({"p(X, Y) -> r(X)."}));
  EXPECT_NE(wa.DeriveCertificate().ToString().find("weakly acyclic"),
            std::string::npos);
  SigmaGraph cyclic = SigmaGraph::Build(Sigma({"e(X, Y) -> e(Y, Z)."}));
  EXPECT_NE(cyclic.DeriveCertificate().ToString().find("no termination"),
            std::string::npos);
}

// --- the paper's running example ---

TEST(SigmaGraphTest, Example41SigmaIsCertifiedAndUnsliced) {
  SigmaGraph graph = SigmaGraph::Build(testing::Example41Sigma(),
                                       testing::Example41Schema());
  TerminationCertificate cert = graph.DeriveCertificate();
  EXPECT_TRUE(cert.terminates());
  EXPECT_TRUE(graph.Verify(cert));
}

}  // namespace
}  // namespace sqleq
