// Unit tests for Schema.
#include "ir/schema.h"

#include <gtest/gtest.h>

namespace sqleq {
namespace {

TEST(Schema, AddAndLookup) {
  Schema s;
  ASSERT_TRUE(s.AddRelation("p", 2).ok());
  EXPECT_TRUE(s.HasRelation("p"));
  EXPECT_FALSE(s.HasRelation("q"));
  EXPECT_EQ(s.ArityOf("p"), 2u);
  EXPECT_EQ(s.ArityOf("q"), 0u);
  EXPECT_EQ(s.size(), 1u);
}

TEST(Schema, DefaultAttributeNames) {
  Schema s;
  ASSERT_TRUE(s.AddRelation("p", 3).ok());
  RelationInfo info = std::move(s.GetRelation("p")).value();
  ASSERT_EQ(info.attributes.size(), 3u);
  EXPECT_EQ(info.attributes[0], "c0");
  EXPECT_EQ(info.attributes[2], "c2");
}

TEST(Schema, ExplicitAttributeNames) {
  Schema s;
  ASSERT_TRUE(s.AddRelation("emp", 2, {"id", "dept"}).ok());
  RelationInfo info = std::move(s.GetRelation("emp")).value();
  EXPECT_EQ(info.attributes[1], "dept");
}

TEST(Schema, RejectsDuplicates) {
  Schema s;
  ASSERT_TRUE(s.AddRelation("p", 2).ok());
  EXPECT_FALSE(s.AddRelation("p", 3).ok());
}

TEST(Schema, RejectsZeroArity) {
  Schema s;
  EXPECT_FALSE(s.AddRelation("p", 0).ok());
}

TEST(Schema, RejectsEmptyName) {
  Schema s;
  EXPECT_FALSE(s.AddRelation("", 1).ok());
}

TEST(Schema, RejectsAttributeCountMismatch) {
  Schema s;
  EXPECT_FALSE(s.AddRelation("p", 2, {"only_one"}).ok());
}

TEST(Schema, SetValuedFlag) {
  Schema s;
  s.Relation("p", 2).Relation("q", 1, /*set_valued=*/true);
  EXPECT_FALSE(s.IsSetValued("p"));
  EXPECT_TRUE(s.IsSetValued("q"));
  EXPECT_FALSE(s.IsSetValued("unknown"));
  ASSERT_TRUE(s.SetSetValued("p", true).ok());
  EXPECT_TRUE(s.IsSetValued("p"));
  EXPECT_FALSE(s.SetSetValued("unknown", true).ok());
}

TEST(Schema, DeclareKeyValidation) {
  Schema s;
  s.Relation("p", 3);
  EXPECT_TRUE(s.DeclareKey("p", {0, 1}).ok());
  EXPECT_FALSE(s.DeclareKey("p", {}).ok());
  EXPECT_FALSE(s.DeclareKey("p", {5}).ok());
  EXPECT_FALSE(s.DeclareKey("q", {0}).ok());
  RelationInfo info = std::move(s.GetRelation("p")).value();
  ASSERT_EQ(info.declared_keys.size(), 1u);
  EXPECT_EQ(info.declared_keys[0], (std::vector<size_t>{0, 1}));
}

TEST(Schema, RelationsAndNamesOrderedByName) {
  Schema s;
  s.Relation("z", 1).Relation("a", 1).Relation("m", 1);
  std::vector<std::string> names = s.RelationNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[2], "z");
  EXPECT_EQ(s.Relations()[0].name, "a");
}

TEST(Schema, GetRelationUnknownFails) {
  Schema s;
  EXPECT_EQ(s.GetRelation("nope").status().code(), StatusCode::kNotFound);
}

TEST(Schema, ToStringMentionsFlagsAndKeys) {
  Schema s;
  s.Relation("p", 2, /*set_valued=*/true);
  ASSERT_TRUE(s.DeclareKey("p", {0}).ok());
  std::string text = s.ToString();
  EXPECT_NE(text.find("[set]"), std::string::npos);
  EXPECT_NE(text.find("key(0)"), std::string::npos);
}

}  // namespace
}  // namespace sqleq
