// Unit tests for Tgd, Egd, Dependency, and Σ parsing.
#include "constraints/dependency.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"

namespace sqleq {
namespace {

using testing::Sigma;

TEST(Tgd, CreateValidatesNonEmptySides) {
  std::vector<Atom> body{Atom("p", {Term::Var("X")})};
  std::vector<Atom> head{Atom("r", {Term::Var("X")})};
  EXPECT_TRUE(Tgd::Create(body, head).ok());
  EXPECT_FALSE(Tgd::Create({}, head).ok());
  EXPECT_FALSE(Tgd::Create(body, {}).ok());
}

TEST(Tgd, ExistentialVariables) {
  DependencySet sigma = Sigma({"p(X, Y) -> s(X, Z), t(Z, W)."});
  std::vector<Term> ex = sigma[0].tgd().ExistentialVariables();
  ASSERT_EQ(ex.size(), 2u);
  EXPECT_EQ(ex[0], Term::Var("Z"));
  EXPECT_EQ(ex[1], Term::Var("W"));
}

TEST(Tgd, FrontierVariables) {
  DependencySet sigma = Sigma({"p(X, Y), q(Y, V) -> s(X, Z), t(Z, V)."});
  std::vector<Term> frontier = sigma[0].tgd().FrontierVariables();
  ASSERT_EQ(frontier.size(), 2u);
  EXPECT_EQ(frontier[0], Term::Var("X"));
  EXPECT_EQ(frontier[1], Term::Var("V"));
}

TEST(Tgd, IsFull) {
  EXPECT_TRUE(Sigma({"p(X, Y) -> r(X)."})[0].tgd().IsFull());
  EXPECT_FALSE(Sigma({"p(X, Y) -> s(X, Z)."})[0].tgd().IsFull());
}

TEST(Tgd, ToStringShowsExistentials) {
  DependencySet sigma = Sigma({"p(X, Y) -> s(X, Z)."});
  EXPECT_EQ(sigma[0].tgd().ToString(), "p(X, Y) -> EXISTS Z: s(X, Z)");
}

TEST(Egd, CreateValidatesSides) {
  std::vector<Atom> body{Atom("r", {Term::Var("X"), Term::Var("Y")}),
                         Atom("r", {Term::Var("X"), Term::Var("Z")})};
  EXPECT_TRUE(Egd::Create(body, Term::Var("Y"), Term::Var("Z")).ok());
  // Identical sides rejected:
  EXPECT_FALSE(Egd::Create(body, Term::Var("Y"), Term::Var("Y")).ok());
  // Variable not in body rejected:
  EXPECT_FALSE(Egd::Create(body, Term::Var("Y"), Term::Var("W")).ok());
  // Constants allowed:
  EXPECT_TRUE(Egd::Create(body, Term::Var("Y"), Term::Int(1)).ok());
  EXPECT_FALSE(Egd::Create({}, Term::Var("Y"), Term::Var("Z")).ok());
}

TEST(Dependency, KindAccessors) {
  DependencySet sigma = Sigma({
      "p(X, Y) -> r(X).",
      "r(X, Y), r(X, Z) -> Y = Z.",
  });
  EXPECT_TRUE(sigma[0].IsTgd());
  EXPECT_FALSE(sigma[0].IsEgd());
  EXPECT_TRUE(sigma[1].IsEgd());
  EXPECT_EQ(sigma[0].kind(), Dependency::Kind::kTgd);
  EXPECT_EQ(sigma[1].kind(), Dependency::Kind::kEgd);
  EXPECT_EQ(sigma[0].body().size(), 1u);
  EXPECT_EQ(sigma[1].body().size(), 2u);
}

TEST(Dependency, LabelsAssignedSequentially) {
  DependencySet sigma = Sigma({"p(X, Y) -> r(X).", "p(X, Y) -> r(Y)."});
  EXPECT_EQ(sigma[0].label(), "sigma1");
  EXPECT_EQ(sigma[1].label(), "sigma2");
}

TEST(Dependency, WithLabel) {
  DependencySet sigma = Sigma({"p(X, Y) -> r(X)."});
  Dependency relabeled = sigma[0].WithLabel("key_p");
  EXPECT_EQ(relabeled.label(), "key_p");
  EXPECT_EQ(sigma[0].label(), "sigma1");  // original untouched
}

TEST(Dependency, ToStringIncludesLabel) {
  DependencySet sigma = Sigma({"p(X, Y) -> r(X)."});
  EXPECT_EQ(sigma[0].ToString(), "[sigma1] p(X, Y) -> r(X)");
}

TEST(ParseDependency, MultiEquationEgdSplits) {
  Result<std::vector<Dependency>> deps =
      ParseDependency("p(X, A, B), p(X, C, D) -> A = C, B = D.", "fd");
  ASSERT_TRUE(deps.ok());
  ASSERT_EQ(deps->size(), 2u);
  EXPECT_TRUE((*deps)[0].IsEgd());
  EXPECT_EQ((*deps)[0].label(), "fd_1");
  EXPECT_EQ((*deps)[1].label(), "fd_2");
}

TEST(ParseDependency, RejectsEquationVariableOutsideBody) {
  EXPECT_FALSE(ParseDependency("p(X, Y) -> X = Z.").ok());
}

TEST(SigmaToStringFn, OnePerLine) {
  DependencySet sigma = Sigma({"p(X, Y) -> r(X).", "p(X, Y) -> r(Y)."});
  std::string text = SigmaToString(sigma);
  EXPECT_NE(text.find("[sigma1]"), std::string::npos);
  EXPECT_NE(text.find("[sigma2]"), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

}  // namespace
}  // namespace sqleq
