// Unit tests for tgd regularization (Definition 4.1, §4.2.1).
#include "constraints/regularize.h"

#include <gtest/gtest.h>

#include "chase/set_chase.h"
#include "db/satisfaction.h"
#include "equivalence/containment.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::Sigma;

TEST(IsRegularizedTest, SingleAtomHeadTrivially) {
  DependencySet sigma = Sigma({"p(X, Y) -> s(X, Z)."});
  EXPECT_TRUE(IsRegularized(sigma[0].tgd()));
}

TEST(IsRegularizedTest, SharedExistentialConnects) {
  // σ1 of Example 4.2: r(X,Z) ∧ s(Z,W) share existential Z — regularized.
  DependencySet sigma = Sigma({"p(X, Y) -> r(X, Z), s(Z, W)."});
  EXPECT_TRUE(IsRegularized(sigma[0].tgd()));
}

TEST(IsRegularizedTest, OnlyUniversalSharingDoesNot) {
  // σ4 of Example 4.1: u(X,Z) ∧ t(X,Y,W) share only universal X — NOT
  // regularized ({u},{t} is a nonshared partition).
  DependencySet sigma = Sigma({"p(X, Y) -> u(X, Z), t(X, Y, W)."});
  EXPECT_FALSE(IsRegularized(sigma[0].tgd()));
}

TEST(IsRegularizedTest, FullTgdMultiAtomHeadSplits) {
  // No existential variables at all: every head atom is its own component.
  DependencySet sigma = Sigma({"p(X, Y) -> r(X), q(Y)."});
  EXPECT_FALSE(IsRegularized(sigma[0].tgd()));
}

TEST(RegularizeTgdTest, SplitsNonsharedComponents) {
  DependencySet sigma = Sigma({"p(X, Y) -> u(X, Z), t(X, Y, W)."});
  std::vector<Tgd> pieces = RegularizeTgd(sigma[0].tgd());
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0].head().size(), 1u);
  EXPECT_EQ(pieces[0].head()[0].predicate(), "u");
  EXPECT_EQ(pieces[1].head()[0].predicate(), "t");
  // Bodies preserved.
  EXPECT_EQ(pieces[0].body(), sigma[0].tgd().body());
  for (const Tgd& piece : pieces) EXPECT_TRUE(IsRegularized(piece));
}

TEST(RegularizeTgdTest, KeepsConnectedHeadTogether) {
  DependencySet sigma = Sigma({"p(X, Y) -> r(X, Z), s(Z, W)."});
  std::vector<Tgd> pieces = RegularizeTgd(sigma[0].tgd());
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].head().size(), 2u);
}

TEST(RegularizeTgdTest, ChainOfSharingIsOneComponent) {
  // a(X,Z1), b(Z1,Z2), c(Z2,Z3): transitively connected via existentials.
  DependencySet sigma = Sigma({"p(X) -> a(X, Z1), b(Z1, Z2), c(Z2, Z3)."});
  EXPECT_TRUE(IsRegularized(sigma[0].tgd()));
  EXPECT_EQ(RegularizeTgd(sigma[0].tgd()).size(), 1u);
}

TEST(RegularizeTgdTest, MixedComponents) {
  // {a(X,Z), b(Z)} and {c(X,W)} and {d(X)}: three components.
  DependencySet sigma = Sigma({"p(X) -> a(X, Z), b(Z), c(X, W), d(X)."});
  std::vector<Tgd> pieces = RegularizeTgd(sigma[0].tgd());
  ASSERT_EQ(pieces.size(), 3u);
}

TEST(RegularizeSigmaTest, EgdsPassThrough) {
  DependencySet sigma = Sigma({
      "r(X, Y), r(X, Z) -> Y = Z.",
      "p(X, Y) -> u(X, Z), t(X, Y, W).",
  });
  DependencySet regular = RegularizeSigma(sigma);
  ASSERT_EQ(regular.size(), 3u);
  EXPECT_TRUE(regular[0].IsEgd());
  EXPECT_EQ(regular[1].label(), "sigma2.1");
  EXPECT_EQ(regular[2].label(), "sigma2.2");
  EXPECT_TRUE(IsRegularizedSet(regular));
}

TEST(RegularizeSigmaTest, AlreadyRegularSigmaUnchanged) {
  DependencySet sigma = testing::Sigma({
      "p(X, Y) -> s(X, Z).",
      "s(X, Y), s(X, Z) -> Y = Z.",
  });
  DependencySet regular = RegularizeSigma(sigma);
  ASSERT_EQ(regular.size(), 2u);
  EXPECT_EQ(regular[0].label(), "sigma1");  // label untouched
}

TEST(RegularizeSigmaTest, IsRegularizedSetDetectsOffenders) {
  DependencySet sigma = Sigma({"p(X, Y) -> u(X, Z), t(X, Y, W)."});
  EXPECT_FALSE(IsRegularizedSet(sigma));
  EXPECT_TRUE(IsRegularizedSet(RegularizeSigma(sigma)));
}

TEST(RegularizeSigmaTest, Example41Sigma1SplitsIntoTwo) {
  // σ1: p(X,Y) → s(X,Z) ∧ t(X,V,W): Z and {V,W} do not connect s and t.
  DependencySet sigma = Sigma({"p(X, Y) -> s(X, Z), t(X, V, W)."});
  std::vector<Tgd> pieces = RegularizeTgd(sigma[0].tgd());
  ASSERT_EQ(pieces.size(), 2u);
}

TEST(RegularizeSigmaTest, Proposition41InstanceEquivalence) {
  // Prop 4.1: D |= Σ iff D |= Σ′ — checked on random instances.
  DependencySet sigma = Sigma({
      "p(X, Y) -> u(X, Z), t(X, Y, W).",
      "p(X, Y) -> s(X, Z), t(X, V, W).",
      "s(X, Y), s(X, Z) -> Y = Z.",
  });
  DependencySet regular = RegularizeSigma(sigma);
  ASSERT_GT(regular.size(), sigma.size());
  Schema schema = testing::Example41Schema();
  Rng rng(77);
  int checked = 0;
  for (int i = 0; i < 40; ++i) {
    Database db = testing::RandomDatabase(schema, 3, 3, 2, &rng);
    Result<bool> original = Satisfies(db, sigma);
    Result<bool> regularized = Satisfies(db, regular);
    ASSERT_TRUE(original.ok() && regularized.ok());
    EXPECT_EQ(*original, *regularized) << db.ToString();
    ++checked;
  }
  EXPECT_EQ(checked, 40);
}

TEST(RegularizeSigmaTest, Proposition41ChaseEquivalence) {
  // Prop 4.1's second half: set chase under Σ and Σ′ produce set-equivalent
  // results.
  DependencySet sigma = Sigma({
      "p(X, Y) -> u(X, Z), t(X, Y, W).",
      "t(X, Y, W1), t(X, Y, W2) -> W1 = W2.",
  });
  DependencySet regular = RegularizeSigma(sigma);
  ConjunctiveQuery q = testing::Q("Q(X) :- p(X, Y).");
  ChaseOutcome with_sigma = testing::Unwrap(SetChase(q, sigma));
  ChaseOutcome with_regular = testing::Unwrap(SetChase(q, regular));
  EXPECT_TRUE(SetEquivalent(with_sigma.result, with_regular.result));
}

TEST(RegularizeSigmaTest, ConstantsInHeadAreNotVariables) {
  // Constants never connect head atoms (only existential variables do).
  DependencySet sigma = Sigma({"p(X) -> a(X, 1), b(X, 1)."});
  EXPECT_FALSE(IsRegularized(sigma[0].tgd()));
  EXPECT_EQ(RegularizeTgd(sigma[0].tgd()).size(), 2u);
}

TEST(RegularizeSigmaTest, DeterministicComponentOrder) {
  DependencySet sigma = Sigma({"p(X) -> c(X, W), a(X, Z)."});
  std::vector<Tgd> pieces = RegularizeTgd(sigma[0].tgd());
  ASSERT_EQ(pieces.size(), 2u);
  // Components ordered by first atom index, not atom name.
  EXPECT_EQ(pieces[0].head()[0].predicate(), "c");
  EXPECT_EQ(pieces[1].head()[0].predicate(), "a");
}

}  // namespace
}  // namespace sqleq
