// Unit tests for aggregate-query equivalence (Theorems 2.3 and 6.3).
#include "equivalence/aggregate_equivalence.h"

#include <gtest/gtest.h>

#include "db/aggregate_eval.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::AQ;
using testing::Sigma;
using testing::Unwrap;

TEST(AggregateEquivalence, IncompatibleQueriesNeverEquivalent) {
  EXPECT_FALSE(AggregateEquivalent(AQ("A(S, sum(Y)) :- p(S, Y)."),
                                   AQ("B(S, max(Y)) :- p(S, Y).")));
  EXPECT_FALSE(AggregateEquivalent(AQ("A(S, sum(Y)) :- p(S, Y)."),
                                   AQ("B(S, T, sum(Y)) :- p(S, Y), p(T, Y).")));
  EXPECT_FALSE(AggregateEquivalent(AQ("A(S, count(Y)) :- p(S, Y)."),
                                   AQ("B(S, count(*)) :- p(S, Y).")));
}

TEST(AggregateEquivalence, MaxUsesSetEquivalenceOfCores) {
  // Redundant atom p(S, Z): cores are set-equivalent, so max-queries are
  // equivalent even though the cores are NOT bag-set-equivalent.
  AggregateQuery a = AQ("A(S, max(Y)) :- p(S, Y).");
  AggregateQuery b = AQ("B(S, max(Y)) :- p(S, Y), p(S, Z).");
  EXPECT_TRUE(AggregateEquivalent(a, b));
}

TEST(AggregateEquivalence, SumUsesBagSetEquivalenceOfCores) {
  // The same pair with sum is NOT equivalent: the extra join inflates the
  // bag of Y-values.
  AggregateQuery a = AQ("A(S, sum(Y)) :- p(S, Y).");
  AggregateQuery b = AQ("B(S, sum(Y)) :- p(S, Y), p(S, Z).");
  EXPECT_FALSE(AggregateEquivalent(a, b));
  // Duplicate atoms, though, are harmless for sum (bag-set ignores them).
  AggregateQuery c = AQ("C(S, sum(Y)) :- p(S, Y), p(S, Y).");
  EXPECT_TRUE(AggregateEquivalent(a, c));
}

TEST(AggregateEquivalence, EvaluationOracleConfirmsSumGap) {
  Schema schema;
  schema.Relation("p", 2);
  Database db(schema);
  db.Add("p", {1, 10}).Add("p", {1, 20});
  Bag sum_a = Unwrap(EvaluateAggregate(AQ("A(S, sum(Y)) :- p(S, Y)."), db));
  Bag sum_b =
      Unwrap(EvaluateAggregate(AQ("B(S, sum(Y)) :- p(S, Y), p(S, Z)."), db));
  EXPECT_EQ(sum_a.Count(IntTuple({1, 30})), 1u);
  EXPECT_EQ(sum_b.Count(IntTuple({1, 60})), 1u);  // each Y seen twice
  Bag max_a = Unwrap(EvaluateAggregate(AQ("A(S, max(Y)) :- p(S, Y)."), db));
  Bag max_b =
      Unwrap(EvaluateAggregate(AQ("B(S, max(Y)) :- p(S, Y), p(S, Z)."), db));
  EXPECT_EQ(max_a, max_b);
}

TEST(AggregateEquivalence, RenamedVariablesEquivalent) {
  EXPECT_TRUE(AggregateEquivalent(AQ("A(S, sum(Y)) :- p(S, Y)."),
                                  AQ("B(T, sum(W)) :- p(T, W).")));
  EXPECT_TRUE(AggregateEquivalent(AQ("A(S, min(Y)) :- p(S, Y)."),
                                  AQ("B(T, min(W)) :- p(T, W).")));
}

TEST(AggregateEquivalence, CountStarCompatiblePairs) {
  EXPECT_TRUE(AggregateEquivalent(AQ("A(S, count(*)) :- p(S, Y)."),
                                  AQ("B(T, count(*)) :- p(T, W).")));
  EXPECT_FALSE(AggregateEquivalent(AQ("A(S, count(*)) :- p(S, Y)."),
                                   AQ("B(T, count(*)) :- p(T, W), p(T, V).")));
}

TEST(AggregateEquivalenceUnder, Theorem63SumViaChasedCores) {
  // Key fd on dept makes the dept join multiplicity-preserving, so the
  // sum-queries are equivalent under Σ (Thm 6.3(2) via Thm 6.2).
  DependencySet sigma = Sigma({
      "emp(E, D) -> dept(D, M).",
      "dept(D, M1), dept(D, M2) -> M1 = M2.",
  });
  AggregateQuery with_join = AQ("A(E, sum(S)) :- sal(E, S), emp(E, D), dept(D, M).");
  AggregateQuery without = AQ("B(E, sum(S)) :- sal(E, S), emp(E, D).");
  EXPECT_TRUE(Unwrap(AggregateEquivalentUnder(with_join, without, sigma)));
  EXPECT_FALSE(AggregateEquivalent(with_join, without));
}

TEST(AggregateEquivalenceUnder, Theorem63MaxViaSetChase) {
  // Without the key fd, sum is NOT safe (the dept join can duplicate), but
  // max still is (Thm 6.3(1) needs only set equivalence).
  DependencySet sigma = Sigma({"emp(E, D) -> dept(D, M)."});
  AggregateQuery max_join = AQ("A(E, max(S)) :- sal(E, S), emp(E, D), dept(D, M).");
  AggregateQuery max_plain = AQ("B(E, max(S)) :- sal(E, S), emp(E, D).");
  EXPECT_TRUE(Unwrap(AggregateEquivalentUnder(max_join, max_plain, sigma)));
  AggregateQuery sum_join = AQ("A(E, sum(S)) :- sal(E, S), emp(E, D), dept(D, M).");
  AggregateQuery sum_plain = AQ("B(E, sum(S)) :- sal(E, S), emp(E, D).");
  EXPECT_FALSE(Unwrap(AggregateEquivalentUnder(sum_join, sum_plain, sigma)));
}

TEST(AggregateEquivalenceUnder, CountBehavesLikeSum) {
  DependencySet sigma = Sigma({
      "emp(E, D) -> dept(D, M).",
      "dept(D, M1), dept(D, M2) -> M1 = M2.",
  });
  AggregateQuery with_join = AQ("A(E, count(D)) :- emp(E, D), dept(D, M).");
  AggregateQuery without = AQ("B(E, count(D)) :- emp(E, D).");
  EXPECT_TRUE(Unwrap(AggregateEquivalentUnder(with_join, without, sigma)));
}

TEST(AggregateEquivalenceUnder, IncompatibleShortCircuits) {
  EXPECT_FALSE(Unwrap(AggregateEquivalentUnder(AQ("A(S, sum(Y)) :- p(S, Y)."),
                                               AQ("B(S, max(Y)) :- p(S, Y)."), {})));
}

}  // namespace
}  // namespace sqleq
