// Unit tests for Term interning and Value rendering.
#include "ir/term.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace sqleq {
namespace {

TEST(Term, VariablesInternByName) {
  Term a = Term::Var("X");
  Term b = Term::Var("X");
  Term c = Term::Var("Y");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(a.IsVariable());
  EXPECT_FALSE(a.IsConstant());
  EXPECT_EQ(a.name(), "X");
}

TEST(Term, IntConstantsIntern) {
  Term a = Term::Int(42);
  Term b = Term::Int(42);
  Term c = Term::Int(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(a.IsConstant());
  EXPECT_EQ(std::get<int64_t>(a.value()), 42);
}

TEST(Term, StringConstantsIntern) {
  Term a = Term::Str("hello");
  Term b = Term::Str("hello");
  EXPECT_EQ(a, b);
  EXPECT_EQ(std::get<std::string>(a.value()), "hello");
}

TEST(Term, VariableAndConstantNeverEqual) {
  // Even with colliding rendering, kinds differ.
  EXPECT_NE(Term::Var("X"), Term::Str("X"));
}

TEST(Term, IntAndStringConstantsDistinct) {
  EXPECT_NE(Term::Int(1), Term::Str("1"));
}

TEST(Term, ToStringForms) {
  EXPECT_EQ(Term::Var("Xyz").ToString(), "Xyz");
  EXPECT_EQ(Term::Int(-7).ToString(), "-7");
  EXPECT_EQ(Term::Str("ab").ToString(), "'ab'");
}

TEST(Term, ValueToStringQuotesStrings) {
  EXPECT_EQ(ValueToString(Value(int64_t{5})), "5");
  EXPECT_EQ(ValueToString(Value(std::string("x"))), "'x'");
}

TEST(Term, FreshVarsAreAllDistinct) {
  std::unordered_set<Term, TermHash> seen;
  for (int i = 0; i < 100; ++i) {
    Term t = Term::FreshVar("Z");
    EXPECT_TRUE(t.IsVariable());
    EXPECT_TRUE(seen.insert(t).second) << t.ToString() << " repeated";
  }
}

TEST(Term, FreshVarDistinctFromPlainVar) {
  Term fresh = Term::FreshVar("W");
  EXPECT_NE(fresh, Term::Var("W"));
}

TEST(Term, HashConsistentWithEquality) {
  EXPECT_EQ(Term::Var("A").Hash(), Term::Var("A").Hash());
  EXPECT_EQ(Term::Int(9).Hash(), Term::Int(9).Hash());
}

TEST(Term, OrderingIsStrictWeak) {
  Term a = Term::Var("A");
  Term b = Term::Var("B");
  EXPECT_TRUE((a < b) || (b < a) || (a == b));
  EXPECT_FALSE(a < a);
}

TEST(Term, DefaultConstructedIsPlaceholderVariable) {
  Term t;
  EXPECT_TRUE(t.IsVariable());
  EXPECT_EQ(t.name(), "_");
}

TEST(Term, ConstInternsThroughGenericEntryPoint) {
  EXPECT_EQ(Term::Const(Value(int64_t{3})), Term::Int(3));
  EXPECT_EQ(Term::Const(Value(std::string("s"))), Term::Str("s"));
}

}  // namespace
}  // namespace sqleq
