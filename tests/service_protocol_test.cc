// Tests for the sqleqd wire protocol helpers: request parsing, semantics
// spellings, JsonObject rendering, and the canned error responses.
#include "service/protocol.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/json.h"

namespace sqleq {
namespace service {
namespace {

using ::sqleq::testing::Unwrap;

TEST(ParseRequest, MinimalAndFullForms) {
  Request r = Unwrap(ParseRequest(R"({"cmd":"hello"})"));
  EXPECT_EQ(r.cmd, "hello");
  EXPECT_EQ(r.id, "");

  r = Unwrap(ParseRequest(R"({"id":"42","cmd":"check","q1":"Q(X) :- r(X)."})"));
  EXPECT_EQ(r.id, "42");
  EXPECT_EQ(r.cmd, "check");
  const JsonValue* q1 = r.body.Find("q1");
  ASSERT_NE(q1, nullptr);
  EXPECT_TRUE(q1->is_string());
}

TEST(ParseRequest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("not json").ok());
  EXPECT_FALSE(ParseRequest(R"(["cmd","hello"])").ok());   // array, not object
  EXPECT_FALSE(ParseRequest(R"({"id":"1"})").ok());        // missing cmd
  EXPECT_FALSE(ParseRequest(R"({"cmd":7})").ok());         // cmd not a string
  EXPECT_FALSE(ParseRequest(R"({"cmd":"x","id":9})").ok());  // id not a string
  EXPECT_FALSE(ParseRequest(R"({"cmd":"x"} trailing)").ok());
}

TEST(ParseSemanticsName, AcceptsWireAndShellSpellings) {
  EXPECT_EQ(Unwrap(ParseSemanticsName("set")), Semantics::kSet);
  EXPECT_EQ(Unwrap(ParseSemanticsName("bag")), Semantics::kBag);
  EXPECT_EQ(Unwrap(ParseSemanticsName("bag-set")), Semantics::kBagSet);
  EXPECT_EQ(Unwrap(ParseSemanticsName("S")), Semantics::kSet);
  EXPECT_EQ(Unwrap(ParseSemanticsName("B")), Semantics::kBag);
  EXPECT_EQ(Unwrap(ParseSemanticsName("BS")), Semantics::kBagSet);
  EXPECT_FALSE(ParseSemanticsName("sets").ok());
  EXPECT_FALSE(ParseSemanticsName("").ok());
}

TEST(ParseSemanticsName, RoundTripsWireNames) {
  for (Semantics s : {Semantics::kSet, Semantics::kBag, Semantics::kBagSet}) {
    EXPECT_EQ(Unwrap(ParseSemanticsName(SemanticsWireName(s))), s);
  }
}

TEST(JsonObjectRender, RoundTripsThroughParser) {
  std::string line = JsonObject()
                         .Str("id", "a\"b\nc")  // needs escaping
                         .Bool("ok", true)
                         .Int("count", 12345)
                         .Raw("nested", JsonObject().Str("k", "v").Build())
                         .Build();
  JsonValue parsed = Unwrap(ParseJson(line));
  ASSERT_EQ(parsed.kind, JsonValue::Kind::kObject);
  EXPECT_EQ(parsed.Find("id")->string, "a\"b\nc");
  EXPECT_TRUE(parsed.Find("ok")->boolean);
  EXPECT_EQ(parsed.Find("count")->number, 12345.0);
  ASSERT_EQ(parsed.Find("nested")->kind, JsonValue::Kind::kObject);
  EXPECT_EQ(parsed.Find("nested")->Find("k")->string, "v");
}

TEST(JsonObjectRender, SingleLineAlways) {
  std::string line = JsonObject().Str("s", "line1\nline2\r\n").Build();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_EQ(line.find('\r'), std::string::npos);
}

TEST(ErrorResponses, CarryIdCodeAndMessage) {
  JsonValue parsed = Unwrap(
      ParseJson(ErrorResponse("req7", Status::InvalidArgument("bad q1"))));
  EXPECT_EQ(parsed.Find("id")->string, "req7");
  EXPECT_FALSE(parsed.Find("ok")->boolean);
  const JsonValue* error = parsed.Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->Find("code")->string, "InvalidArgument");
  EXPECT_EQ(error->Find("message")->string, "bad q1");
}

TEST(ErrorResponses, OverloadedIsMarkedAndResourceExhausted) {
  JsonValue parsed = Unwrap(ParseJson(OverloadedResponse("r1")));
  EXPECT_FALSE(parsed.Find("ok")->boolean);
  ASSERT_NE(parsed.Find("overloaded"), nullptr);
  EXPECT_TRUE(parsed.Find("overloaded")->boolean);
  EXPECT_EQ(parsed.Find("error")->Find("code")->string, "ResourceExhausted");
}

TEST(FieldAccessors, RequireAndOptional) {
  JsonValue body = Unwrap(ParseJson(
      R"({"s":"text","n":3,"b":true,"not_a_string":1})"));
  EXPECT_EQ(Unwrap(RequireString(body, "s")), "text");
  EXPECT_FALSE(RequireString(body, "missing").ok());
  EXPECT_FALSE(RequireString(body, "not_a_string").ok());
  EXPECT_EQ(OptionalString(body, "s").value_or(""), "text");
  EXPECT_FALSE(OptionalString(body, "missing").has_value());
  EXPECT_EQ(OptionalNumber(body, "n").value_or(0), 3.0);
  EXPECT_FALSE(OptionalNumber(body, "s").has_value());
  EXPECT_TRUE(OptionalBool(body, "b", false));
  EXPECT_TRUE(OptionalBool(body, "missing", true));
}

}  // namespace
}  // namespace service
}  // namespace sqleq
