// Randomized property tests (experiment ids T1, T2, T6 of DESIGN.md): the
// symbolic decision procedures are cross-validated against the evaluation
// oracle on hundreds of random queries and databases. Parameterized over
// RNG seeds so each instantiation explores a different region.
#include <gtest/gtest.h>

#include "chase/set_chase.h"
#include "chase/sound_chase.h"
#include "db/eval.h"
#include "db/satisfaction.h"
#include "equivalence/bag_equivalence.h"
#include "equivalence/bag_set_equivalence.h"
#include "equivalence/containment.h"
#include "equivalence/isomorphism.h"
#include "reformulation/candb.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::Example41Schema;
using testing::Example41Sigma;
using testing::RandomDatabase;
using testing::RandomQuery;
using testing::RepairDatabase;
using testing::Unwrap;

class SeededTest : public ::testing::TestWithParam<uint64_t> {};

Schema SmallSchema() {
  Schema s;
  s.Relation("p", 2).Relation("r", 1).Relation("s", 2);
  return s;
}

// ---- T1: Theorem 2.1 soundness on random instances. -----------------

TEST_P(SeededTest, IsomorphicVariantsEvaluateEquallyUnderBag) {
  Rng rng(GetParam());
  Schema schema = SmallSchema();
  for (int round = 0; round < 8; ++round) {
    ConjunctiveQuery q = RandomQuery(schema, rng.UniformInt(1, 4), 3, &rng);
    // Build an isomorphic variant: rename + shuffle atoms.
    ConjunctiveQuery renamed = q.RenameApart();
    std::vector<Atom> body = renamed.body();
    rng.Shuffle(&body);
    ConjunctiveQuery variant = renamed.WithBody(std::move(body));
    ASSERT_TRUE(BagEquivalent(q, variant)) << q.ToString();
    for (int i = 0; i < 4; ++i) {
      Database db = RandomDatabase(schema, 5, 3, 3, &rng);
      EXPECT_EQ(Unwrap(Evaluate(q, db, Semantics::kBag)),
                Unwrap(Evaluate(variant, db, Semantics::kBag)))
          << q.ToString() << " vs " << variant.ToString();
    }
  }
}

TEST_P(SeededTest, BagEquivalenceVerdictImpliesEqualBagAnswers) {
  Rng rng(GetParam() + 1000);
  Schema schema = SmallSchema();
  for (int round = 0; round < 10; ++round) {
    ConjunctiveQuery q1 = RandomQuery(schema, rng.UniformInt(1, 3), 3, &rng);
    ConjunctiveQuery q2 = RandomQuery(schema, rng.UniformInt(1, 3), 3, &rng);
    if (q1.head().size() != q2.head().size()) continue;
    if (!BagEquivalent(q1, q2)) continue;
    for (int i = 0; i < 5; ++i) {
      Database db = RandomDatabase(schema, 5, 3, 3, &rng);
      EXPECT_EQ(Unwrap(Evaluate(q1, db, Semantics::kBag)),
                Unwrap(Evaluate(q2, db, Semantics::kBag)));
    }
  }
}

TEST_P(SeededTest, DuplicateAtomPreservesBagSetAnswers) {
  // Thm 2.1(2): duplicating an atom never changes BS answers.
  Rng rng(GetParam() + 2000);
  Schema schema = SmallSchema();
  for (int round = 0; round < 8; ++round) {
    ConjunctiveQuery q = RandomQuery(schema, rng.UniformInt(1, 4), 3, &rng);
    std::vector<Atom> body = q.body();
    body.push_back(body[rng.Index(body.size())]);
    ConjunctiveQuery dup = q.WithBody(std::move(body));
    ASSERT_TRUE(BagSetEquivalent(q, dup));
    EXPECT_FALSE(BagEquivalent(q, dup));
    for (int i = 0; i < 4; ++i) {
      Database db = RandomDatabase(schema, 5, 3, 1, &rng).CoreSet();
      EXPECT_EQ(Unwrap(Evaluate(q, db, Semantics::kBagSet)),
                Unwrap(Evaluate(dup, db, Semantics::kBagSet)));
    }
  }
}

TEST_P(SeededTest, SetContainmentVerdictMatchesEvaluation) {
  Rng rng(GetParam() + 3000);
  Schema schema = SmallSchema();
  for (int round = 0; round < 10; ++round) {
    ConjunctiveQuery q1 = RandomQuery(schema, rng.UniformInt(1, 3), 3, &rng);
    ConjunctiveQuery q2 = RandomQuery(schema, rng.UniformInt(1, 3), 3, &rng);
    if (q1.head().size() != q2.head().size()) continue;
    bool contained = SetContained(q1, q2);
    for (int i = 0; i < 4; ++i) {
      Database db = RandomDatabase(schema, 5, 3, 1, &rng);
      Bag a1 = Unwrap(Evaluate(q1, db, Semantics::kSet));
      Bag a2 = Unwrap(Evaluate(q2, db, Semantics::kSet));
      if (contained) {
        for (const auto& [t, _] : a1.counts()) {
          EXPECT_GT(a2.Count(t), 0u)
              << q1.ToString() << " ⊑ " << q2.ToString() << " but tuple "
              << TupleToString(t) << " missing";
        }
      }
    }
    // Completeness on the canonical database: if NOT contained, D(Q1)
    // separates them (the Chandra–Merlin argument).
    if (!contained) {
      Result<CanonicalDatabase> canon = BuildCanonicalDatabase(q1, schema);
      ASSERT_TRUE(canon.ok());
      Bag a1 = Unwrap(Evaluate(q1, canon->database, Semantics::kSet));
      Bag a2 = Unwrap(Evaluate(q2, canon->database, Semantics::kSet));
      bool separated = false;
      for (const auto& [t, _] : a1.counts()) {
        if (a2.Count(t) == 0) separated = true;
      }
      EXPECT_TRUE(separated) << q1.ToString() << " vs " << q2.ToString();
    }
  }
}

// ---- T2/T6: sound chase and Σ-equivalence vs the oracle. -------------

TEST_P(SeededTest, SoundChasePreservesAnswersOnSatisfyingDatabases) {
  Rng rng(GetParam() + 4000);
  Schema schema = Example41Schema();
  DependencySet sigma = Example41Sigma();
  int databases_checked = 0;
  for (int round = 0; round < 6; ++round) {
    ConjunctiveQuery q = RandomQuery(schema, rng.UniformInt(1, 3), 3, &rng);
    Result<ChaseOutcome> bag_chase = SoundChase(q, sigma, Semantics::kBag, schema);
    Result<ChaseOutcome> bs_chase = SoundChase(q, sigma, Semantics::kBagSet, schema);
    ASSERT_TRUE(bag_chase.ok()) << bag_chase.status().ToString() << " " << q.ToString();
    ASSERT_TRUE(bs_chase.ok());
    if (bag_chase->failed || bs_chase->failed) continue;
    for (int i = 0; i < 6; ++i) {
      Database db = RandomDatabase(schema, 3, 3, 2, &rng);
      if (!RepairDatabase(&db, sigma, 8)) continue;
      ++databases_checked;
      EXPECT_EQ(Unwrap(Evaluate(q, db, Semantics::kBag)),
                Unwrap(Evaluate(bag_chase->result, db, Semantics::kBag)))
          << "B: " << q.ToString() << " vs " << bag_chase->result.ToString();
      Database core = db.CoreSet();
      EXPECT_EQ(Unwrap(Evaluate(q, core, Semantics::kBagSet)),
                Unwrap(Evaluate(bs_chase->result, core, Semantics::kBagSet)))
          << "BS: " << q.ToString() << " vs " << bs_chase->result.ToString();
    }
  }
  EXPECT_GT(databases_checked, 0) << "repair never succeeded; test vacuous";
}

TEST_P(SeededTest, SetChasePreservesSetAnswersOnSatisfyingDatabases) {
  Rng rng(GetParam() + 5000);
  Schema schema = Example41Schema();
  DependencySet sigma = Example41Sigma();
  int databases_checked = 0;
  for (int round = 0; round < 6; ++round) {
    ConjunctiveQuery q = RandomQuery(schema, rng.UniformInt(1, 3), 3, &rng);
    Result<ChaseOutcome> chased = SetChase(q, sigma);
    ASSERT_TRUE(chased.ok());
    if (chased->failed) continue;
    for (int i = 0; i < 6; ++i) {
      Database db = RandomDatabase(schema, 3, 3, 1, &rng);
      if (!RepairDatabase(&db, sigma, 8)) continue;
      ++databases_checked;
      EXPECT_EQ(Unwrap(Evaluate(q, db, Semantics::kSet)),
                Unwrap(Evaluate(chased->result, db, Semantics::kSet)))
          << q.ToString() << " vs " << chased->result.ToString();
    }
  }
  EXPECT_GT(databases_checked, 0);
}

TEST_P(SeededTest, CandBOutputsEvaluateLikeTheInput) {
  Rng rng(GetParam() + 6000);
  Schema schema = Example41Schema();
  DependencySet sigma = Example41Sigma();
  ConjunctiveQuery q = RandomQuery(schema, rng.UniformInt(1, 3), 3, &rng);
  for (Semantics sem : {Semantics::kBag, Semantics::kBagSet}) {
    Result<CandBResult> result = ChaseAndBackchase(q, sigma, sem, schema);
    if (!result.ok()) continue;  // failed chase (constant clash) — fine
    for (const ConjunctiveQuery& reform : result->reformulations) {
      for (int i = 0; i < 5; ++i) {
        Database db = RandomDatabase(schema, 3, 3, sem == Semantics::kBag ? 2 : 1,
                                     &rng);
        if (!RepairDatabase(&db, sigma, 8)) continue;
        if (sem == Semantics::kBagSet) db = db.CoreSet();
        EXPECT_EQ(Unwrap(Evaluate(q, db, sem)), Unwrap(Evaluate(reform, db, sem)))
            << SemanticsToString(sem) << ": " << q.ToString() << " vs "
            << reform.ToString();
      }
    }
  }
}

TEST_P(SeededTest, ChaseResultUniqueAcrossSigmaPermutations) {
  // Thm 5.1: permute Σ randomly; the sound chase results stay equivalent.
  Rng rng(GetParam() + 7000);
  Schema schema = Example41Schema();
  DependencySet sigma = Example41Sigma();
  for (int round = 0; round < 4; ++round) {
    ConjunctiveQuery q = RandomQuery(schema, rng.UniformInt(1, 3), 3, &rng);
    DependencySet shuffled = sigma;
    rng.Shuffle(&shuffled);
    Result<ChaseOutcome> a = SoundChase(q, sigma, Semantics::kBag, schema);
    Result<ChaseOutcome> b = SoundChase(q, shuffled, Semantics::kBag, schema);
    ASSERT_TRUE(a.ok() && b.ok());
    if (a->failed || b->failed) {
      EXPECT_EQ(a->failed, b->failed);
      continue;
    }
    EXPECT_TRUE(BagEquivalentModuloSetRelations(a->result, b->result, schema))
        << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace sqleq
