// Unit tests for the worker pool behind the parallel backchase.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace sqleq {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  for (size_t threads : {0u, 1u, 3u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.ParallelFor(hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ThreadPool, ParallelForHandlesEmptyAndSingle) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&calls](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.ParallelFor(1, [&calls](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, PoolIsReusableAcrossCalls) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(17, [&total](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50u * 17u);
}

TEST(ThreadPool, SubmittedTasksRunBeforeDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }  // destructor completes pending tasks before joining
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ZeroWorkersRunInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  int ran = 0;
  pool.Submit([&ran] { ++ran; });  // inline, no data race possible
  EXPECT_EQ(ran, 1);
}

}  // namespace
}  // namespace sqleq
