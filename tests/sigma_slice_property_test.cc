// Randomized conservativity suite for query-aware Σ-slicing
// (analysis/sigma_graph.h): chasing with ChaseOptions::use_sigma_slicing on
// must be STEP-FOR-STEP identical to chasing the full Σ — same trace
// records, same final query, same failed flag, same statuses, same
// checkpoints — under all three semantics, on both the compiled-kernel and
// generic paths, through ChasePlan and the free SoundChase, and under fault
// injection. The slice only removes dependencies that can never fire, so
// every observable of the run must be untouched; these are equality
// assertions in the chase_plan_property_test style, not up-to-isomorphism
// ones. The dependency pool deliberately mixes the connected p/r/s/t
// dependencies with dependencies over the disconnected u/v/w relations, so
// random Σs routinely contain prunable dependencies.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/sigma_graph.h"
#include "chase/chase_plan.h"
#include "chase/checkpoint.h"
#include "chase/set_chase.h"
#include "chase/sound_chase.h"
#include "reformulation/candb.h"
#include "ir/term.h"
#include "util/fault.h"
#include "util/telemetry.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::Q;
using testing::RandomQuery;
using testing::Sigma;

class SeededTest : public ::testing::TestWithParam<uint64_t> {};

/// Relations the random queries range over.
Schema QuerySchema() {
  Schema s;
  s.Relation("p", 2).Relation("r", 1).Relation("s", 2).Relation("t", 3);
  return s;
}

/// The chase schema additionally declares the disconnected u/v/w island the
/// irrelevant dependencies live on.
Schema FullSchema() {
  Schema s = QuerySchema();
  s.Relation("u", 2).Relation("v", 1).Relation("w", 2);
  return s;
}

/// Dependencies reachable from p/r/s/t query bodies (the
/// chase_plan_property_test pool: existentials, multi-atom bodies, egds).
const std::vector<std::string>& ConnectedPool() {
  static const std::vector<std::string> pool = {
      "p(X, Y) -> r(X).",
      "r(X) -> p(X, Z).",
      "p(X, Y), p(Y, Z) -> t(X, Y, Z).",
      "t(X, Y, Z) -> s(X, Z).",
      "s(X, Y) -> p(X, Y).",
      "t(X, X, Y) -> r(Y).",
      "s(X, Y), s(X, Z) -> Y = Z.",
      "p(X, Y), p(X, Z) -> Y = Z.",
  };
  return pool;
}

/// Dependencies over the u/v/w island: no query over QuerySchema can ever
/// fire them, so the slicer must prune every one of them.
const std::vector<std::string>& IrrelevantPool() {
  static const std::vector<std::string> pool = {
      "u(X, Y) -> v(X).",
      "v(X) -> u(X, Z).",
      "u(X, Y), u(Y, Z) -> w(X, Z).",
      "w(X, Y) -> v(Y).",
      "u(X, Y), u(X, Z) -> Y = Z.",
  };
  return pool;
}

/// 1–4 connected plus 0–3 irrelevant dependencies, shuffled together so
/// slice indices interleave.
DependencySet RandomSigma(Rng* rng) {
  std::vector<std::string> picked;
  size_t connected = static_cast<size_t>(rng->UniformInt(1, 4));
  for (size_t i = 0; i < connected; ++i) {
    picked.push_back(ConnectedPool()[rng->Index(ConnectedPool().size())]);
  }
  size_t irrelevant = static_cast<size_t>(rng->UniformInt(0, 3));
  for (size_t i = 0; i < irrelevant; ++i) {
    size_t at = static_cast<size_t>(rng->Index(picked.size() + 1));
    picked.insert(picked.begin() + at,
                  IrrelevantPool()[rng->Index(IrrelevantPool().size())]);
  }
  return Sigma(picked);
}

ChaseOptions SlicedOptions(bool compiled, size_t max_steps = 64) {
  ChaseOptions options;
  options.budget.max_chase_steps = max_steps;
  options.use_compiled_kernels = compiled;
  options.use_sigma_slicing = true;
  return options;
}

ChaseOptions FullOptions(bool compiled, size_t max_steps = 64) {
  ChaseOptions options = SlicedOptions(compiled, max_steps);
  options.use_sigma_slicing = false;
  return options;
}

/// The conservativity assertion: both runs succeeded with byte-identical
/// traces and results, or both stopped with the same status.
void ExpectIdenticalOutcome(const Result<ChaseOutcome>& sliced,
                            const Result<ChaseOutcome>& full,
                            const std::string& context) {
  ASSERT_EQ(sliced.ok(), full.ok()) << context;
  if (!sliced.ok()) {
    EXPECT_EQ(sliced.status().code(), full.status().code()) << context;
    EXPECT_EQ(sliced.status().message(), full.status().message()) << context;
    return;
  }
  EXPECT_EQ(sliced->failed, full->failed) << context;
  EXPECT_EQ(sliced->result.ToString(), full->result.ToString()) << context;
  ASSERT_EQ(sliced->trace.size(), full->trace.size()) << context;
  for (size_t i = 0; i < sliced->trace.size(); ++i) {
    EXPECT_EQ(sliced->trace[i].dep_label, full->trace[i].dep_label)
        << context << " step " << i;
    EXPECT_EQ(sliced->trace[i].is_tgd, full->trace[i].is_tgd)
        << context << " step " << i;
    EXPECT_EQ(sliced->trace[i].result, full->trace[i].result)
        << context << " step " << i;
  }
}

// ---- Free SoundChase, all semantics, compiled and generic -------------

TEST_P(SeededTest, SoundChaseSlicedMatchesFullUnderAllSemantics) {
  Rng rng(GetParam() + 100);
  Schema query_schema = QuerySchema();
  Schema schema = FullSchema();
  for (int round = 0; round < 8; ++round) {
    ConjunctiveQuery q = RandomQuery(query_schema, rng.UniformInt(1, 4), 4, &rng);
    DependencySet sigma = RandomSigma(&rng);
    for (bool compiled : {true, false}) {
      for (Semantics sem :
           {Semantics::kSet, Semantics::kBag, Semantics::kBagSet}) {
        Term::ResetFreshCounterForTesting();
        Result<ChaseOutcome> sliced =
            SoundChase(q, sigma, sem, schema, SlicedOptions(compiled));
        Term::ResetFreshCounterForTesting();
        Result<ChaseOutcome> full =
            SoundChase(q, sigma, sem, schema, FullOptions(compiled));
        ExpectIdenticalOutcome(
            sliced, full,
            std::string(compiled ? "compiled " : "generic ") +
                SemanticsToString(sem) + " " + q.ToString() + " under " +
                SigmaToString(sigma));
      }
    }
  }
}

// ---- ChasePlan: the slicing path the engines actually take ------------

TEST_P(SeededTest, ChasePlanSlicedMatchesFull) {
  Rng rng(GetParam() + 200);
  Schema query_schema = QuerySchema();
  Schema schema = FullSchema();
  for (int round = 0; round < 6; ++round) {
    ConjunctiveQuery q = RandomQuery(query_schema, rng.UniformInt(1, 4), 4, &rng);
    DependencySet sigma = RandomSigma(&rng);
    for (Semantics sem :
         {Semantics::kSet, Semantics::kBag, Semantics::kBagSet}) {
      Term::ResetFreshCounterForTesting();
      ChasePlan sliced_plan(sigma, sem, schema, SlicedOptions(true));
      Result<ChaseOutcome> sliced = sliced_plan.Run(q);
      Term::ResetFreshCounterForTesting();
      ChasePlan full_plan(sigma, sem, schema, FullOptions(true));
      Result<ChaseOutcome> full = full_plan.Run(q);
      ExpectIdenticalOutcome(sliced, full,
                             std::string("plan ") + SemanticsToString(sem) +
                                 " " + q.ToString() + " under " +
                                 SigmaToString(sigma));
    }
  }
}

// ---- Fault injection: identical anytime behavior ----------------------

TEST_P(SeededTest, InjectedFaultsStopSlicedAndFullIdentically) {
  Rng rng(GetParam() + 300);
  Schema query_schema = QuerySchema();
  Schema schema = FullSchema();
  for (int round = 0; round < 6; ++round) {
    ConjunctiveQuery q = RandomQuery(query_schema, rng.UniformInt(2, 4), 4, &rng);
    DependencySet sigma = RandomSigma(&rng);
    FaultSpec spec;
    spec.kind = FaultKind::kExhausted;
    spec.start = static_cast<uint64_t>(rng.UniformInt(1, 4));

    auto run = [&](const ChaseOptions& options)
        -> std::pair<Result<ChaseOutcome>, std::string> {
      Term::ResetFreshCounterForTesting();
      FaultInjector faults(7);  // fresh injector per run: same schedule
      faults.Arm(fault_sites::kChaseStep, spec);
      ChaseRuntime runtime;
      runtime.faults = &faults;
      std::optional<ChaseCheckpoint> checkpoint;
      runtime.checkpoint_out = &checkpoint;
      Result<ChaseOutcome> outcome =
          SoundChase(q, sigma, Semantics::kSet, schema, options, runtime);
      std::string serialized =
          checkpoint.has_value() ? checkpoint->Serialize() : "";
      return {std::move(outcome), std::move(serialized)};
    };
    auto [sliced, sliced_cp] = run(SlicedOptions(true));
    auto [full, full_cp] = run(FullOptions(true));
    ExpectIdenticalOutcome(sliced, full,
                           "faulted " + q.ToString() + " under " +
                               SigmaToString(sigma));
    // The slice never fires, checks, or renames anything the full run
    // would not: the captured resume state is byte-identical too.
    EXPECT_EQ(sliced_cp, full_cp);
  }
}

// ---- C&B end-to-end: the pinned envelope slice is conservative --------
//
// ChaseAndBackchase pins the universal plan's slice for every backchase
// candidate (a sub-conjunction of U, so U's slice is sound for it). The
// whole pipeline — universal plan, confirmed reformulations, candidate
// accounting — must be identical with slicing on and off.
TEST_P(SeededTest, CandBPinnedEnvelopeMatchesFull) {
  Rng rng(GetParam() + 400);
  Schema query_schema = QuerySchema();
  Schema schema = FullSchema();
  for (int round = 0; round < 4; ++round) {
    ConjunctiveQuery q = RandomQuery(query_schema, rng.UniformInt(1, 3), 4, &rng);
    DependencySet sigma = RandomSigma(&rng);
    for (Semantics sem :
         {Semantics::kSet, Semantics::kBag, Semantics::kBagSet}) {
      auto run = [&](bool sliced) -> Result<CandBResult> {
        Term::ResetFreshCounterForTesting();
        CandBOptions options;
        options.chase = sliced ? SlicedOptions(true) : FullOptions(true);
        return ChaseAndBackchase(q, sigma, sem, schema, options);
      };
      Result<CandBResult> sliced = run(true);
      Result<CandBResult> full = run(false);
      std::string context = std::string("candb ") + SemanticsToString(sem) +
                            " " + q.ToString() + " under " +
                            SigmaToString(sigma);
      ASSERT_EQ(sliced.ok(), full.ok()) << context;
      if (!sliced.ok()) {
        EXPECT_EQ(sliced.status().code(), full.status().code()) << context;
        continue;
      }
      EXPECT_EQ(sliced->universal_plan.ToString(),
                full->universal_plan.ToString())
          << context;
      ASSERT_EQ(sliced->reformulations.size(), full->reformulations.size())
          << context;
      for (size_t i = 0; i < sliced->reformulations.size(); ++i) {
        EXPECT_EQ(sliced->reformulations[i].ToString(),
                  full->reformulations[i].ToString())
            << context << " reformulation " << i;
      }
      EXPECT_EQ(sliced->candidates_examined, full->candidates_examined)
          << context;
    }
  }
}

// ---- The suite is not vacuous: slices really prune --------------------

TEST(SigmaSlicePinned, IrrelevantDependenciesArePrunedAndCounted) {
  DependencySet sigma = Sigma({
      "p(X, Y) -> r(X).",
      "u(X, Y) -> v(X).",
      "v(X) -> u(X, Z).",
  });
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");

  // Static view: the slicer names exactly the u/v dependencies.
  SigmaGraph graph = SigmaGraph::Build(sigma, FullSchema());
  SigmaSlice slice = graph.SliceFor(q.body());
  ASSERT_EQ(slice.kept.size(), 1u);
  EXPECT_EQ(slice.kept[0], 0u);
  ASSERT_EQ(slice.pruned.size(), 2u);

  // Dynamic view: ChasePlan::Run takes the sliced path and reports the
  // slice.kept / slice.pruned counters.
  ChasePlan plan(sigma, Semantics::kSet, FullSchema(), SlicedOptions(true));
  MetricsRegistry metrics;
  ChaseRuntime runtime;
  runtime.metrics = &metrics;
  Term::ResetFreshCounterForTesting();
  Result<ChaseOutcome> sliced = plan.Run(q, runtime);
  ASSERT_TRUE(sliced.ok());

  uint64_t kept = 0, pruned = 0;
  for (const auto& [name, value] : metrics.Snapshot().counters) {
    if (name == metric::kSliceKept) kept = value;
    if (name == metric::kSlicePruned) pruned = value;
  }
  EXPECT_EQ(kept, 1u);
  EXPECT_EQ(pruned, 2u);

  // And the verdict still matches the full chase.
  ChasePlan full_plan(sigma, Semantics::kSet, FullSchema(), FullOptions(true));
  Term::ResetFreshCounterForTesting();
  Result<ChaseOutcome> full = full_plan.Run(q);
  ExpectIdenticalOutcome(sliced, full, "pinned prune");
}

TEST(SigmaSlicePinned, SliceSignatureKeysDistinctChaseMemoEntries) {
  // Two queries with different slices over the same plan must produce
  // different memo-key suffixes; SliceFor is also memoized per body shape,
  // so asking twice is cheap and deterministic.
  DependencySet sigma = Sigma({
      "p(X, Y) -> r(X).",
      "u(X, Y) -> v(X).",
  });
  ChasePlan plan(sigma, Semantics::kSet, FullSchema(), SlicedOptions(true));
  SigmaSlice for_p = plan.SliceFor(Q("Q(X) :- p(X, Y)."));
  SigmaSlice for_u = plan.SliceFor(Q("Q(X) :- u(X, Y)."));
  SigmaSlice for_p_again = plan.SliceFor(Q("Q2(A) :- p(A, B)."));
  EXPECT_NE(for_p.Signature(), for_u.Signature());
  EXPECT_EQ(for_p.Signature(), for_p_again.Signature());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

}  // namespace
}  // namespace sqleq
