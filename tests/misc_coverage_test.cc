// Targeted tests for branches not covered elsewhere: explain negatives
// under set semantics, Σ-minimality across semantics, view-set lookups,
// bag-duplicate normalization interplay, and renderer corner cases.
#include <gtest/gtest.h>

#include "chase/sound_chase.h"
#include "equivalence/explain.h"
#include "reformulation/minimize.h"
#include "reformulation/views.h"
#include "sql/render.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::Example41Schema;
using testing::Example41Sigma;
using testing::Q;
using testing::Sigma;
using testing::Unwrap;

TEST(MiscExplain, SetSemanticsNegativeShowsMissingDirection) {
  Schema schema;
  schema.Relation("p", 2).Relation("r", 1);
  ConjunctiveQuery narrow = Q("A(X) :- p(X, Y), r(X).");
  ConjunctiveQuery wide = Q("B(X) :- p(X, Y).");
  EquivalenceExplanation e =
      Unwrap(ExplainEquivalence(narrow, wide, {}, Semantics::kSet, schema));
  EXPECT_FALSE(e.equivalent);
  // narrow ⊑ wide: the forward witness (wide→narrow mapping) exists...
  EXPECT_TRUE(e.witness_forward.has_value());
  // ...but not the reverse.
  EXPECT_FALSE(e.witness_backward.has_value());
  EXPECT_TRUE(e.counterexample.has_value());
}

TEST(MiscExplain, TracesMentionDependencyLabels) {
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  EquivalenceExplanation e = Unwrap(ExplainEquivalence(
      q4, q4, Example41Sigma(), Semantics::kBag, Example41Schema()));
  EXPECT_TRUE(e.equivalent);
  ASSERT_FALSE(e.trace_q1.empty());
  EXPECT_NE(e.ToString().find("[sigma"), std::string::npos);
}

TEST(MiscMinimize, Example41Q5NotMinimalUnderBag) {
  // Q5 (duplicate s-subgoal over set-valued S) reduces to Q4 under B.
  ConjunctiveQuery q5 = Q("Q5(X) :- p(X, Y), t(X, Y, W), s(X, Z), s(X, Z).");
  EXPECT_FALSE(Unwrap(IsSigmaMinimal(q5, Example41Sigma(), Semantics::kBag,
                                     Example41Schema())));
}

TEST(MiscMinimize, SameQueryDifferentSemanticsDifferentVerdicts) {
  // Q2 = p,t,s,r: NOT minimal under BS (reduces to Q4) but IS minimal under
  // B (r cannot be re-derived by sound bag chase).
  ConjunctiveQuery q2 = Q("Q2(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X).");
  EXPECT_FALSE(Unwrap(IsSigmaMinimal(q2, Example41Sigma(), Semantics::kBagSet,
                                     Example41Schema())));
  EXPECT_FALSE(Unwrap(IsSigmaMinimal(q2, Example41Sigma(), Semantics::kBag,
                                     Example41Schema())));
  // (Q2 under B still reduces: dropping t and s is allowed since sound bag
  // chase re-derives them — the minimal form keeps p and r.)
  ConjunctiveQuery pr = Q("Qpr(X) :- p(X, Y), r(X).");
  EXPECT_TRUE(Unwrap(
      IsSigmaMinimal(pr, Example41Sigma(), Semantics::kBag, Example41Schema())));
}

TEST(MiscViews, GetUnknownViewFails) {
  ViewSet views;
  EXPECT_EQ(views.Get("nope").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(views.names().empty());
}

TEST(MiscViews, RewriteViewOfViewRejectedAtExpansion) {
  // A rewriting may reference a view atom with the wrong arity — caught.
  ViewSet views;
  ASSERT_TRUE(views.Add(Q("v(X) :- p(X, Y).")).ok());
  EXPECT_FALSE(ExpandRewriting(Q("R(A, B) :- v(A, B)."), views).ok());
}

TEST(MiscNormalize, TripleDuplicateCollapsesToOne) {
  Schema schema;
  schema.Relation("s", 2, /*set_valued=*/true);
  ConjunctiveQuery q = Q("Q(X) :- s(X, Z), s(X, Z), s(X, Z).");
  EXPECT_EQ(NormalizeForBag(q, schema).body().size(), 1u);
}

TEST(MiscNormalize, HeadUntouchedByNormalization) {
  Schema schema;
  schema.Relation("s", 2, /*set_valued=*/true);
  ConjunctiveQuery q = Q("Q(X, Z) :- s(X, Z), s(X, Z).");
  ConjunctiveQuery n = NormalizeForBag(q, schema);
  EXPECT_EQ(n.head(), q.head());
  EXPECT_EQ(n.name(), q.name());
}

TEST(MiscRender, AggregateWithJoinAndConstant) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("emp", 3, {"id", "dept", "salary"}).ok());
  ASSERT_TRUE(schema.AddRelation("dept", 2, {"id", "mgr"}).ok());
  AggregateQuery q = testing::AQ(
      "A(D, sum(S)) :- emp(E, D, S), dept(D, 7).");
  std::string out = Unwrap(sql::RenderAggregateSql(q, schema));
  EXPECT_NE(out.find("t1.mgr = 7"), std::string::npos) << out;
  EXPECT_NE(out.find("GROUP BY t0.dept"), std::string::npos) << out;
  EXPECT_NE(out.find("t0.dept = t1.id"), std::string::npos) << out;
}

TEST(MiscRender, BagSemanticsNeverEmitsDistinct) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("t", 1, {"a"}).ok());
  std::string b = Unwrap(sql::RenderSql(Q("Q(X) :- t(X)."), schema, Semantics::kBag));
  EXPECT_EQ(b.find("DISTINCT"), std::string::npos);
}

TEST(MiscSoundChase, EgdOnlySigmaTerminatesImmediatelyWhenSatisfied) {
  DependencySet sigma = Sigma({"s(A, B), s(A, C) -> B = C."});
  Schema schema;
  schema.Relation("s", 2);
  ConjunctiveQuery q = Q("Q(X) :- s(X, Y).");
  ChaseOutcome out = Unwrap(SoundChase(q, sigma, Semantics::kBag, schema));
  EXPECT_TRUE(out.trace.empty());
  EXPECT_TRUE(out.result.SameUpToAtomOrder(q));
}

TEST(MiscSoundChase, HeadVariablesSurviveEgdUnification) {
  // Unifying a head variable must keep the query safe and reflect the
  // substitution in the head.
  DependencySet sigma = Sigma({"s(A, B), s(A, C) -> B = C."});
  Schema schema;
  schema.Relation("s", 2, /*set_valued=*/true);
  ConjunctiveQuery q = Q("Q(Y, Z) :- s(X, Y), s(X, Z).");
  ChaseOutcome out = Unwrap(SoundChase(q, sigma, Semantics::kBag, schema));
  EXPECT_EQ(out.result.head()[0], out.result.head()[1]);
  EXPECT_EQ(out.result.body().size(), 1u);
}

}  // namespace
}  // namespace sqleq
