// Unit tests for ConjunctiveQuery, AggregateQuery, and TermMap application.
#include "ir/query.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sqleq {
namespace {

using testing::Q;

TEST(TermMapApply, VariablePassThroughAndReplace) {
  TermMap m{{Term::Var("X"), Term::Var("Y")}};
  EXPECT_EQ(ApplyTermMap(m, Term::Var("X")), Term::Var("Y"));
  EXPECT_EQ(ApplyTermMap(m, Term::Var("Z")), Term::Var("Z"));
  EXPECT_EQ(ApplyTermMap(m, Term::Int(1)), Term::Int(1));
}

TEST(TermMapApply, AtomAndConjunction) {
  TermMap m{{Term::Var("X"), Term::Int(5)}};
  Atom a("p", {Term::Var("X"), Term::Var("Y")});
  Atom mapped = ApplyTermMap(m, a);
  EXPECT_EQ(mapped.ToString(), "p(5, Y)");
  std::vector<Atom> conj = ApplyTermMap(m, std::vector<Atom>{a, a});
  EXPECT_EQ(conj[1].ToString(), "p(5, Y)");
}

TEST(ConjunctiveQuery, CreateRejectsEmptyBody) {
  Result<ConjunctiveQuery> r = ConjunctiveQuery::Create("Q", {Term::Var("X")}, {});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConjunctiveQuery, CreateRejectsUnsafeHead) {
  Result<ConjunctiveQuery> r = ConjunctiveQuery::Create(
      "Q", {Term::Var("Z")}, {Atom("p", {Term::Var("X"), Term::Var("Y")})});
  EXPECT_FALSE(r.ok());
}

TEST(ConjunctiveQuery, HeadConstantsAreAllowed) {
  Result<ConjunctiveQuery> r = ConjunctiveQuery::Create(
      "Q", {Term::Int(1), Term::Var("X")}, {Atom("p", {Term::Var("X")})});
  EXPECT_TRUE(r.ok());
}

TEST(ConjunctiveQuery, HeadAndBodyVariables) {
  ConjunctiveQuery q = Q("Q(X, X, Y) :- p(X, Y), q(Y, Z).");
  std::vector<Term> hv = q.HeadVariables();
  ASSERT_EQ(hv.size(), 2u);  // X deduplicated
  EXPECT_EQ(hv[0], Term::Var("X"));
  std::vector<Term> bv = q.BodyVariables();
  EXPECT_EQ(bv.size(), 3u);
}

TEST(ConjunctiveQuery, CanonicalRepresentationDropsDuplicates) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), p(X, Y), r(X).");
  EXPECT_EQ(q.size(), 3u);
  ConjunctiveQuery c = q.CanonicalRepresentation();
  EXPECT_EQ(c.size(), 2u);
  // Head and name survive.
  EXPECT_EQ(c.name(), "Q");
  EXPECT_EQ(c.head(), q.head());
}

TEST(ConjunctiveQuery, CanonicalRepresentationKeepsDistinctAtoms) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), p(X, Z).");
  EXPECT_EQ(q.CanonicalRepresentation().size(), 2u);
}

TEST(ConjunctiveQuery, SameUpToAtomOrder) {
  ConjunctiveQuery a = Q("Q(X) :- p(X, Y), r(X).");
  ConjunctiveQuery b = Q("Q(X) :- r(X), p(X, Y).");
  EXPECT_TRUE(a.SameUpToAtomOrder(b));
  // Multiplicity-sensitive:
  ConjunctiveQuery c = Q("Q(X) :- p(X, Y), p(X, Y), r(X).");
  EXPECT_FALSE(a.SameUpToAtomOrder(c));
  // Head-sensitive:
  ConjunctiveQuery d = Q("Q(Y) :- p(X, Y), r(X).");
  EXPECT_FALSE(a.SameUpToAtomOrder(d));
}

TEST(ConjunctiveQuery, SubstituteMapsHeadAndBody) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");
  TermMap m{{Term::Var("X"), Term::Var("W")}};
  ConjunctiveQuery s = q.Substitute(m);
  EXPECT_EQ(s.ToString(), "Q(W) :- p(W, Y).");
}

TEST(ConjunctiveQuery, RenameApartProducesIsomorphicDisjointCopy) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), r(Y).");
  TermMap renaming;
  ConjunctiveQuery renamed = q.RenameApart(&renaming);
  EXPECT_EQ(renamed.size(), q.size());
  EXPECT_EQ(renaming.size(), 2u);
  for (Term v : renamed.BodyVariables()) {
    for (Term old : q.BodyVariables()) EXPECT_NE(v, old);
  }
}

TEST(ConjunctiveQuery, PredicateCounts) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), p(Y, Z), r(X).");
  auto counts = q.PredicateCounts();
  EXPECT_EQ(counts.at("p"), 2u);
  EXPECT_EQ(counts.at("r"), 1u);
}

TEST(ConjunctiveQuery, ToStringRoundtripShape) {
  EXPECT_EQ(Q("Q(X) :- p(X, Y).").ToString(), "Q(X) :- p(X, Y).");
}

TEST(AggregateQuery, CreateValidatesCountStarTakesNoArg) {
  Result<AggregateQuery> bad = AggregateQuery::Create(
      "A", {}, AggregateFunction::kCountStar, Term::Var("Y"),
      {Atom("p", {Term::Var("X"), Term::Var("Y")})});
  EXPECT_FALSE(bad.ok());
  Result<AggregateQuery> good = AggregateQuery::Create(
      "A", {}, AggregateFunction::kCountStar, std::nullopt,
      {Atom("p", {Term::Var("X"), Term::Var("Y")})});
  EXPECT_TRUE(good.ok());
}

TEST(AggregateQuery, CreateRequiresArgForSum) {
  Result<AggregateQuery> bad = AggregateQuery::Create(
      "A", {}, AggregateFunction::kSum, std::nullopt,
      {Atom("p", {Term::Var("X"), Term::Var("Y")})});
  EXPECT_FALSE(bad.ok());
}

TEST(AggregateQuery, CreateRejectsAggArgInGrouping) {
  Result<AggregateQuery> bad = AggregateQuery::Create(
      "A", {Term::Var("Y")}, AggregateFunction::kSum, Term::Var("Y"),
      {Atom("p", {Term::Var("X"), Term::Var("Y")})});
  EXPECT_FALSE(bad.ok());
}

TEST(AggregateQuery, CreateRejectsUnsafeGroupingOrArg) {
  std::vector<Atom> body{Atom("p", {Term::Var("X"), Term::Var("Y")})};
  EXPECT_FALSE(AggregateQuery::Create("A", {Term::Var("Z")}, AggregateFunction::kSum,
                                      Term::Var("Y"), body)
                   .ok());
  EXPECT_FALSE(AggregateQuery::Create("A", {Term::Var("X")}, AggregateFunction::kSum,
                                      Term::Var("Z"), body)
                   .ok());
}

TEST(AggregateQuery, CoreAppendsAggregateArgument) {
  AggregateQuery a = testing::AQ("A(S, sum(Y)) :- p(S, Y).");
  ConjunctiveQuery core = a.Core();
  ASSERT_EQ(core.head().size(), 2u);
  EXPECT_EQ(core.head()[0], Term::Var("S"));
  EXPECT_EQ(core.head()[1], Term::Var("Y"));
}

TEST(AggregateQuery, CoreOfCountStarIsGroupingOnly) {
  AggregateQuery a = testing::AQ("A(S, count(*)) :- p(S, Y).");
  EXPECT_EQ(a.Core().head().size(), 1u);
}

TEST(AggregateQuery, Compatibility) {
  AggregateQuery a = testing::AQ("A(S, sum(Y)) :- p(S, Y).");
  AggregateQuery b = testing::AQ("B(T, sum(W)) :- p(T, W), p(T, T).");
  AggregateQuery c = testing::AQ("C(T, max(W)) :- p(T, W).");
  AggregateQuery d = testing::AQ("D(T, U, sum(W)) :- p(T, W), p(U, W).");
  EXPECT_TRUE(a.CompatibleWith(b));
  EXPECT_FALSE(a.CompatibleWith(c));  // different function
  EXPECT_FALSE(a.CompatibleWith(d));  // different grouping arity
}

TEST(AggregateQuery, ToStringShapes) {
  EXPECT_EQ(testing::AQ("A(S, sum(Y)) :- p(S, Y).").ToString(),
            "A(S, sum(Y)) :- p(S, Y).");
  EXPECT_EQ(testing::AQ("A(count(*)) :- p(S, Y).").ToString(),
            "A(count(*)) :- p(S, Y).");
}

TEST(AggregateFunctionNames, AllCovered) {
  EXPECT_STREQ(AggregateFunctionToString(AggregateFunction::kSum), "sum");
  EXPECT_STREQ(AggregateFunctionToString(AggregateFunction::kCount), "count");
  EXPECT_STREQ(AggregateFunctionToString(AggregateFunction::kCountStar), "count(*)");
  EXPECT_STREQ(AggregateFunctionToString(AggregateFunction::kMax), "max");
  EXPECT_STREQ(AggregateFunctionToString(AggregateFunction::kMin), "min");
}

}  // namespace
}  // namespace sqleq
