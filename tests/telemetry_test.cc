// util/telemetry and its engine instrumentation: counter/histogram
// semantics, span balance under concurrency (run under tsan via the test's
// label), MetricsRegistry totals vs the chase memo's own accounting, and
// the thread-count invariance contract — deterministic workloads produce
// identical counter totals and span multisets at 1, 4, and 8 threads.
#include "util/telemetry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "chase/chase_cache.h"
#include "equivalence/engine.h"
#include "reformulation/candb.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::Example41Schema;
using testing::Example41Sigma;
using testing::Q;
using testing::Unwrap;

TEST(CounterTest, AddValueReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(HistogramTest, PowerOfTwoBuckets) {
  Histogram h;
  h.Record(0);   // bucket 0: v == 0
  h.Record(1);   // bucket 1: [1, 2)
  h.Record(2);   // bucket 2: [2, 4)
  h.Record(3);   // bucket 2
  h.Record(100);  // bucket 7: [64, 128)
  Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.sum, 106u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 2u);
  EXPECT_EQ(s.buckets[7], 1u);
  EXPECT_DOUBLE_EQ(s.Mean(), 106.0 / 5.0);
  // The median sample (3) lives in bucket 2, upper bound 4.
  EXPECT_EQ(s.ApproxQuantile(0.5), 4u);
  EXPECT_EQ(s.ApproxQuantile(1.0), 128u);
  h.Reset();
  s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
}

TEST(MetricsRegistryTest, StableReferencesAndSnapshot) {
  MetricsRegistry registry;
  Counter& a = registry.counter("a");
  a.Add(3);
  // Second lookup returns the same instrument.
  EXPECT_EQ(&registry.counter("a"), &a);
  registry.histogram("h").Record(9);
  MetricsSnapshot s = registry.Snapshot();
  EXPECT_EQ(s.counters.at("a"), 3u);
  EXPECT_EQ(s.histograms.at("h").count, 1u);
  registry.Reset();
  // Reset zeroes values but keeps references valid.
  a.Add(1);
  EXPECT_EQ(registry.Snapshot().counters.at("a"), 1u);
}

TEST(MetricsRegistryTest, ConcurrentCountsAreExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      Counter& c = registry.counter("shared");
      Histogram& h = registry.histogram("samples");
      for (int i = 0; i < kPerThread; ++i) {
        c.Add();
        h.Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  MetricsSnapshot s = registry.Snapshot();
  EXPECT_EQ(s.counters.at("shared"), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(s.histograms.at("samples").count, uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(s.histograms.at("samples").max, uint64_t{kPerThread - 1});
}

/// Multiset of span names among the sink's Begin events.
std::vector<std::string> BeginNames(const TraceSink& sink) {
  std::vector<std::string> names;
  for (const TraceEvent& e : sink.events()) {
    if (e.phase == 'B') names.emplace_back(e.name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

TEST(TraceSinkTest, BalancedNestedSpansAcrossThreadCounts) {
  for (int threads : {1, 4, 8}) {
    TraceSink sink;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&sink] {
        for (int i = 0; i < 100; ++i) {
          TraceSpan outer(&sink, "outer");
          TraceSpan inner(&sink, "inner");
        }
      });
    }
    for (std::thread& w : workers) w.join();
    EXPECT_EQ(sink.size(), static_cast<size_t>(threads) * 400);
    std::string error;
    EXPECT_TRUE(sink.CheckBalanced(&error)) << error;
    // Every thread got its own small-int tid.
    uint32_t max_tid = 0;
    for (const TraceEvent& e : sink.events()) max_tid = std::max(max_tid, e.tid);
    EXPECT_EQ(max_tid, static_cast<uint32_t>(threads - 1));
  }
}

TEST(TraceSinkTest, DetectsUnbalancedSpans) {
  TraceSink sink;
  sink.Begin("open");
  std::string error;
  EXPECT_FALSE(sink.CheckBalanced(&error));
  EXPECT_NE(error.find("open"), std::string::npos);

  sink.Clear();
  EXPECT_TRUE(sink.CheckBalanced());
  sink.Begin("a");
  sink.End("b");
  EXPECT_FALSE(sink.CheckBalanced(&error));
  EXPECT_NE(error.find("b"), std::string::npos);
}

TEST(TraceSinkTest, TidRegistrationSurvivesClear) {
  TraceSink sink;
  sink.Begin("x");
  sink.End("x");
  ASSERT_EQ(sink.events()[0].tid, 0u);
  sink.Clear();
  EXPECT_EQ(sink.size(), 0u);
  sink.Begin("y");
  // Same thread, same tid after Clear.
  EXPECT_EQ(sink.events()[0].tid, 0u);
}

TEST(TraceSpanTest, NullSinkAndNullHistogramAreNoOps) {
  TraceSpan span(nullptr, "nothing");
  ScopedTimerUs timer(nullptr);
  // Reaching here without dereferencing null is the test.
  SUCCEED();
}

TEST(ScopedTimerTest, RecordsOneSample) {
  Histogram h;
  { ScopedTimerUs timer(&h); }
  EXPECT_EQ(h.snapshot().count, 1u);
}

TEST(TelemetryEngineTest, MemoMetricsMatchChaseMemoStats) {
  MetricsRegistry registry;
  ChaseRuntime runtime;
  runtime.metrics = &registry;
  ChaseMemo memo(Example41Sigma(), Semantics::kSet, Example41Schema(),
                 ChaseOptions{});
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");
  Unwrap(memo.Chase(q, runtime), "first chase");
  Unwrap(memo.Chase(q, runtime), "repeat chase");
  // Isomorphic variant: same canonical key, so a hit.
  Unwrap(memo.Chase(Q("Q(A) :- p(A, B)."), runtime), "isomorphic chase");

  ChaseMemo::Stats stats = memo.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);

  MetricsSnapshot s = registry.Snapshot();
  EXPECT_EQ(s.counters.at(metric::kMemoHits), stats.hits);
  EXPECT_EQ(s.counters.at(metric::kMemoMisses), stats.misses);
  EXPECT_EQ(s.counters.at(metric::kMemoInserts), stats.entries);
  EXPECT_GT(s.counters.at(metric::kMemoBytes), 0u);
  // The cache-miss chase ran under Σ with firing steps (a sound chase may
  // run several inner set chases, so runs is a lower bound).
  EXPECT_GE(s.counters.at(metric::kChaseRuns), 1u);
  EXPECT_GT(s.counters.at(metric::kChaseSteps), 0u);
}

TEST(TelemetryEngineTest, CandBCountersMatchResultAccounting) {
  MetricsRegistry registry;
  TraceSink trace;
  CandBOptions options;
  options.context.metrics = &registry;
  options.context.trace = &trace;
  ConjunctiveQuery q = Q("Q1(X) :- p(X, Y), s(X, Z), r(X).");
  CandBResult result =
      Unwrap(ChaseAndBackchase(q, Example41Sigma(), Semantics::kSet,
                               Example41Schema(), options));
  ASSERT_TRUE(result.complete);

  MetricsSnapshot s = registry.Snapshot();
  EXPECT_EQ(s.counters.at(metric::kBackchaseCandidates),
            result.candidates_examined);
  EXPECT_EQ(s.counters.at("backchase.cache_hits"), result.chase_cache_hits);
  EXPECT_EQ(s.counters.at("backchase.cache_misses"),
            result.chase_cache_misses);
  EXPECT_EQ(s.counters.at(metric::kBackchaseAccepted),
            result.reformulations.size());

  std::string error;
  EXPECT_TRUE(trace.CheckBalanced(&error)) << error;
  std::vector<std::string> names = BeginNames(trace);
  EXPECT_TRUE(std::count(names.begin(), names.end(), "candb") == 1);
  EXPECT_TRUE(std::count(names.begin(), names.end(), "backchase.sweep") == 1);
}

TEST(TelemetryEngineTest, EngineVerdictCountersBalance) {
  MetricsRegistry registry;
  EquivalenceEngine engine;
  DependencySet sigma = Example41Sigma();
  Schema schema = Example41Schema();

  EquivRequest request{Semantics::kSet, sigma, schema, {}};
  request.context.metrics = &registry;
  Unwrap(engine.Equivalent(Q("Q(X) :- p(X, Y)."), Q("Q(A) :- p(A, B)."),
                           request),
         "equivalent pair");
  Unwrap(engine.Equivalent(Q("Q(X) :- p(X, Y)."), Q("Q(X) :- r(X)."), request),
         "inequivalent pair");

  MetricsSnapshot s = registry.Snapshot();
  EXPECT_EQ(s.counters.at(metric::kEngineEquivCalls), 2u);
  EXPECT_EQ(s.counters.at(metric::kEngineEquivEquivalent), 1u);
  EXPECT_EQ(s.counters.at(metric::kEngineEquivNotEquivalent), 1u);
  EXPECT_EQ(s.counters.count(metric::kEngineEquivUnknown), 0u);
}

/// Deterministic backchase workload: n pairwise non-isomorphic atoms over
/// distinct relations, so every lattice mask has a unique canonical key and
/// the memo sees no cross-thread races on any key.
ConjunctiveQuery DistinctAtomQuery(int n) {
  std::string text = "Q(X) :- ";
  for (int i = 0; i < n; ++i) {
    if (i > 0) text += ", ";
    text += "p" + std::to_string(i) + "(X, Y" + std::to_string(i) + ")";
  }
  text += ".";
  return Q(text);
}

TEST(TelemetryEngineTest, IdenticalTotalsAtEveryThreadCount) {
  ConjunctiveQuery q = DistinctAtomQuery(5);
  std::map<std::string, uint64_t> baseline_counters;
  std::vector<std::string> baseline_spans;
  for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    MetricsRegistry registry;
    TraceSink trace;
    CandBOptions options;
    options.context.metrics = &registry;
    options.context.trace = &trace;
    options.context.budget.threads = threads;
    CandBResult result =
        Unwrap(ChaseAndBackchase(q, {}, Semantics::kSet, Schema(), options));
    ASSERT_TRUE(result.complete);

    std::string error;
    EXPECT_TRUE(trace.CheckBalanced(&error))
        << "threads=" << threads << ": " << error;

    std::map<std::string, uint64_t> counters = registry.Snapshot().counters;
    std::vector<std::string> spans = BeginNames(trace);
    if (threads == 1) {
      baseline_counters = counters;
      baseline_spans = spans;
      EXPECT_GT(counters.at(metric::kChaseRuns), 0u);
      continue;
    }
    EXPECT_EQ(counters, baseline_counters) << "threads=" << threads;
    EXPECT_EQ(spans, baseline_spans) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace sqleq
