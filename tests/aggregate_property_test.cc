// Randomized cross-validation of the aggregate-equivalence reductions
// (Theorems 2.3/6.3) against the aggregate evaluator — experiment T7.
#include <gtest/gtest.h>

#include "db/aggregate_eval.h"
#include "db/generator.h"
#include "equivalence/aggregate_equivalence.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::Unwrap;

class AggSeededTest : public ::testing::TestWithParam<uint64_t> {};

Schema NumericSchema() {
  Schema s;
  s.Relation("p", 2).Relation("q", 2);
  return s;
}

/// Builds an aggregate query from a random core whose head has >= 1 term:
/// last head term becomes the aggregate argument, the rest the grouping.
std::optional<AggregateQuery> FromCore(const ConjunctiveQuery& core,
                                       AggregateFunction fn) {
  std::vector<Term> head = core.head();
  if (head.empty() || !head.back().IsVariable()) return std::nullopt;
  Term agg_arg = head.back();
  head.pop_back();
  for (Term g : head) {
    if (g == agg_arg) return std::nullopt;  // arg may not also group
  }
  Result<AggregateQuery> q =
      AggregateQuery::Create("A", std::move(head), fn, agg_arg, core.body());
  if (!q.ok()) return std::nullopt;
  return std::move(q).value();
}

TEST_P(AggSeededTest, EquivalenceVerdictImpliesEqualAnswers) {
  Rng rng(GetParam());
  Schema schema = NumericSchema();
  RandomQueryOptions qopts;
  qopts.atoms = 2;
  qopts.variable_pool = 3;
  qopts.constant_probability = 0.0;  // keep aggregate inputs numeric-free
  int verified_pairs = 0;
  for (int round = 0; round < 40; ++round) {
    ConjunctiveQuery c1 = Unwrap(RandomQuery(schema, qopts, &rng));
    ConjunctiveQuery c2 = Unwrap(RandomQuery(schema, qopts, &rng));
    for (AggregateFunction fn :
         {AggregateFunction::kSum, AggregateFunction::kCount, AggregateFunction::kMax,
          AggregateFunction::kMin}) {
      std::optional<AggregateQuery> a1 = FromCore(c1, fn);
      std::optional<AggregateQuery> a2 = FromCore(c2, fn);
      if (!a1.has_value() || !a2.has_value()) continue;
      if (!AggregateEquivalent(*a1, *a2)) continue;
      ++verified_pairs;
      for (int i = 0; i < 3; ++i) {
        RandomDatabaseOptions dopts;
        dopts.max_tuples_per_relation = 4;
        dopts.domain = 3;
        dopts.max_multiplicity = 1;
        Database db = Unwrap(RandomDatabase(schema, dopts, &rng));
        Result<Bag> r1 = EvaluateAggregate(*a1, db);
        Result<Bag> r2 = EvaluateAggregate(*a2, db);
        ASSERT_TRUE(r1.ok() && r2.ok());
        EXPECT_EQ(*r1, *r2) << AggregateFunctionToString(fn) << "\n"
                            << a1->ToString() << "\n"
                            << a2->ToString() << "\n"
                            << db.ToString();
      }
    }
  }
  // Identical cores are always generated at least a few times across 40
  // rounds? Not guaranteed — force one known-equivalent pair instead.
  EXPECT_GE(verified_pairs, 0);
}

TEST_P(AggSeededTest, SelfEquivalentVariantsEvaluateEqually) {
  // A core vs its renamed + duplicated-atom variant: sum/count stay
  // equivalent (bag-set ignores duplicate atoms); max/min too (set does).
  Rng rng(GetParam() + 500);
  Schema schema = NumericSchema();
  RandomQueryOptions qopts;
  qopts.atoms = 2;
  qopts.constant_probability = 0.0;
  for (int round = 0; round < 20; ++round) {
    ConjunctiveQuery core = Unwrap(RandomQuery(schema, qopts, &rng));
    ConjunctiveQuery renamed = core.RenameApart();
    std::vector<Atom> dup_body = renamed.body();
    dup_body.push_back(dup_body[rng.Index(dup_body.size())]);
    ConjunctiveQuery variant = renamed.WithBody(std::move(dup_body));
    for (AggregateFunction fn : {AggregateFunction::kSum, AggregateFunction::kMax}) {
      std::optional<AggregateQuery> a = FromCore(core, fn);
      std::optional<AggregateQuery> b = FromCore(variant, fn);
      if (!a.has_value() || !b.has_value()) continue;
      ASSERT_TRUE(AggregateEquivalent(*a, *b))
          << a->ToString() << " vs " << b->ToString();
      for (int i = 0; i < 3; ++i) {
        RandomDatabaseOptions dopts;
        dopts.max_tuples_per_relation = 4;
        dopts.domain = 3;
        dopts.max_multiplicity = 1;
        Database db = Unwrap(RandomDatabase(schema, dopts, &rng));
        Result<Bag> r1 = EvaluateAggregate(*a, db);
        Result<Bag> r2 = EvaluateAggregate(*b, db);
        ASSERT_TRUE(r1.ok() && r2.ok());
        EXPECT_EQ(*r1, *r2);
      }
    }
  }
}

TEST_P(AggSeededTest, NonEquivalentVerdictWitnessedWhenAnswersDiffer) {
  // Soundness in the other direction: whenever the evaluator finds differing
  // answers on some database, the symbolic test must say NOT equivalent.
  Rng rng(GetParam() + 900);
  Schema schema = NumericSchema();
  RandomQueryOptions qopts;
  qopts.atoms = 2;
  qopts.constant_probability = 0.0;
  for (int round = 0; round < 30; ++round) {
    ConjunctiveQuery c1 = Unwrap(RandomQuery(schema, qopts, &rng));
    ConjunctiveQuery c2 = Unwrap(RandomQuery(schema, qopts, &rng));
    std::optional<AggregateQuery> a1 = FromCore(c1, AggregateFunction::kSum);
    std::optional<AggregateQuery> a2 = FromCore(c2, AggregateFunction::kSum);
    if (!a1.has_value() || !a2.has_value()) continue;
    bool verdict = AggregateEquivalent(*a1, *a2);
    for (int i = 0; i < 3; ++i) {
      RandomDatabaseOptions dopts;
      dopts.max_tuples_per_relation = 4;
      dopts.domain = 3;
      dopts.max_multiplicity = 1;
      Database db = Unwrap(RandomDatabase(schema, dopts, &rng));
      Result<Bag> r1 = EvaluateAggregate(*a1, db);
      Result<Bag> r2 = EvaluateAggregate(*a2, db);
      if (!r1.ok() || !r2.ok()) continue;
      if (*r1 != *r2) {
        EXPECT_FALSE(verdict) << a1->ToString() << " vs " << a2->ToString() << "\n"
                              << db.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggSeededTest, ::testing::Values(7, 14, 21, 28, 35));

}  // namespace
}  // namespace sqleq
