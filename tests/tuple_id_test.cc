// Unit tests for the Appendix C tuple-ID framework: set-enforcing egds.
#include "constraints/tuple_id.h"

#include <gtest/gtest.h>

#include "db/satisfaction.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::Unwrap;

Schema BaseSchema() {
  Schema s;
  s.Relation("p", 2).Relation("r", 1);
  return s;
}

TEST(TupleId, ExpandSchemaAddsTidColumn) {
  Schema expanded = Unwrap(ExpandSchemaWithTupleIds(BaseSchema()));
  EXPECT_EQ(expanded.ArityOf("p"), 3u);
  EXPECT_EQ(expanded.ArityOf("r"), 2u);
  RelationInfo info = Unwrap(expanded.GetRelation("p"));
  EXPECT_EQ(info.attributes.back(), kTupleIdAttribute);
  EXPECT_FALSE(info.set_valued);
}

TEST(TupleId, ExpandSchemaTracksSubset) {
  Schema expanded = Unwrap(ExpandSchemaWithTupleIds(BaseSchema(), {"p"}));
  EXPECT_EQ(expanded.ArityOf("p"), 3u);
  EXPECT_EQ(expanded.ArityOf("r"), 1u);  // untracked, unchanged
}

TEST(TupleId, ExpandSchemaRejectsUnknownTracked) {
  EXPECT_FALSE(ExpandSchemaWithTupleIds(BaseSchema(), {"zz"}).ok());
}

TEST(TupleId, SetEnforcingEgdShape) {
  Dependency dep = Unwrap(MakeSetEnforcingEgd("p", 2));
  ASSERT_TRUE(dep.IsEgd());
  const Egd& egd = dep.egd();
  ASSERT_EQ(egd.body().size(), 2u);
  EXPECT_EQ(egd.body()[0].arity(), 3u);  // visible arity + tid
  // Both atoms share the visible columns and differ in the tid column.
  EXPECT_EQ(egd.body()[0].args()[0], egd.body()[1].args()[0]);
  EXPECT_EQ(egd.body()[0].args()[1], egd.body()[1].args()[1]);
  EXPECT_NE(egd.body()[0].args()[2], egd.body()[1].args()[2]);
  EXPECT_FALSE(MakeSetEnforcingEgd("p", 0).ok());
}

TEST(TupleId, AssignRoundTripsThroughProjection) {
  Database db(BaseSchema());
  db.Add("p", {1, 2}, 3).Add("p", {4, 5}).Add("r", {9}, 2);
  Schema expanded = Unwrap(ExpandSchemaWithTupleIds(BaseSchema()));
  Database with_ids = Unwrap(AssignTupleIds(db, expanded));
  // Every copy got its own id: the expanded db is set valued.
  EXPECT_TRUE(with_ids.IsSetValued());
  EXPECT_TRUE(Unwrap(TupleIdsAreUnique(with_ids, "p")));
  EXPECT_TRUE(Unwrap(TupleIdsAreUnique(with_ids, "r")));
  // Projecting the ids away recovers the original bag exactly.
  Database back = Unwrap(ProjectOutTupleIds(with_ids, BaseSchema()));
  EXPECT_EQ(Unwrap(back.GetRelation("p")).Count(IntTuple({1, 2})), 3u);
  EXPECT_EQ(Unwrap(back.GetRelation("r")).Count(IntTuple({9})), 2u);
}

TEST(TupleId, UniquenessViolationDetected) {
  Schema expanded = Unwrap(ExpandSchemaWithTupleIds(BaseSchema(), {"p"}));
  Database db(expanded);
  db.Add("p", {1, 2, 100}).Add("p", {1, 3, 100});  // same tid twice
  EXPECT_FALSE(Unwrap(TupleIdsAreUnique(db, "p")));
}

TEST(TupleId, SetEnforcingEgdSemantics) {
  // With distinct visible values the egd holds; with duplicated visible
  // values and distinct tids it is violated — exactly the "must be a set"
  // reading of Appendix C.
  Schema expanded = Unwrap(ExpandSchemaWithTupleIds(BaseSchema(), {"p"}));
  Dependency egd = Unwrap(MakeSetEnforcingEgd("p", 2));

  Database ok_db(expanded);
  ok_db.Add("p", {1, 2, 100}).Add("p", {1, 3, 101});
  EXPECT_TRUE(Unwrap(Satisfies(ok_db, egd)));

  Database bad_db(expanded);
  bad_db.Add("p", {1, 2, 100}).Add("p", {1, 2, 101});  // duplicate row, two ids
  EXPECT_FALSE(Unwrap(Satisfies(bad_db, egd)));
}

TEST(TupleId, ProjectionDetectsMissingTidColumn) {
  // Projecting a db whose relation was never expanded fails loudly.
  Database not_expanded(BaseSchema());
  not_expanded.Add("p", {1, 2});
  EXPECT_FALSE(ProjectOutTupleIds(not_expanded, BaseSchema(), {"p"}).ok());
}

TEST(TupleId, FlagAndEgdAgree) {
  // The operational set_valued flag and the formal egd framework agree:
  // a bag-valued p violates the egd after tuple-IDs would have collided,
  // and the flag rejects the duplicate insert directly.
  Schema flagged;
  flagged.Relation("p", 2, /*set_valued=*/true);
  Database db(flagged);
  EXPECT_TRUE(db.Insert("p", IntTuple({1, 2})).ok());
  EXPECT_FALSE(db.Insert("p", IntTuple({1, 2})).ok());
}

}  // namespace
}  // namespace sqleq
