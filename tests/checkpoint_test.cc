// Checkpoint serialization tests (docs/robustness.md): ChaseCheckpoint,
// BackchaseCheckpoint, and CandBCheckpoint must round-trip byte-exactly
// through their text formats — including chase-introduced fresh variables
// ("v#7"), string constants with tabs/newlines/backslashes, and stamped
// subjects — and malformed inputs must be rejected with InvalidArgument, not
// crashes. A deserialized checkpoint must also actually *work*: resuming
// from it finishes the interrupted run exactly.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "chase/chase_cache.h"
#include "chase/checkpoint.h"
#include "chase/set_chase.h"
#include "reformulation/candb.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::Example41Schema;
using testing::Example41Sigma;
using testing::Q;
using testing::Unwrap;

ConjunctiveQuery Example41Q1() {
  return Q("Q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U).");
}

/// The single-atom projection of Example 4.1: σ1–σ4 all fire on it, so its
/// chase takes five steps and small step budgets genuinely interrupt it.
/// (Example41Q1's own body already satisfies Σ and chases in zero steps.)
ConjunctiveQuery StepHungryP() { return Q("P(X) :- p(X, Y)."); }

/// Captures a real mid-chase checkpoint by running StepHungryP's chase under
/// a step budget too small to finish.
std::optional<ChaseCheckpoint> CaptureChaseCheckpoint(size_t max_steps) {
  ChaseOptions options;
  options.budget.max_chase_steps = max_steps;
  ChaseRuntime runtime;
  std::optional<ChaseCheckpoint> checkpoint;
  runtime.checkpoint_out = &checkpoint;
  Result<ChaseOutcome> chased =
      SetChase(StepHungryP(), Example41Sigma(), options, runtime);
  EXPECT_FALSE(chased.ok());
  if (chased.ok()) return std::nullopt;
  EXPECT_EQ(chased.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(checkpoint.has_value());
  return checkpoint;
}

// ---- Field / query serialization helpers ----

TEST(CheckpointFields, EscapeRoundTripsControlCharacters) {
  for (const std::string& s :
       {std::string(""), std::string("plain"), std::string("tab\there"),
        std::string("line\nbreak"), std::string("back\\slash"),
        std::string("\\n is not \n"), std::string("\t\n\\\t\n")}) {
    std::string escaped = EscapeField(s);
    EXPECT_EQ(escaped.find('\n'), std::string::npos) << s;
    EXPECT_EQ(escaped.find('\t'), std::string::npos) << s;
    EXPECT_EQ(Unwrap(UnescapeField(escaped), "UnescapeField"), s);
  }
}

TEST(CheckpointFields, UnescapeRejectsDanglingEscape) {
  EXPECT_FALSE(UnescapeField("trailing\\").ok());
}

TEST(CheckpointFields, QueryRoundTripsFreshVariablesAndConstants) {
  // A query no parser would accept: chase-style fresh variables and mixed
  // constants, including a string constant with an embedded tab.
  Term fresh = Term::FreshVar("w");
  ConjunctiveQuery q = ConjunctiveQuery::Make(
      "Weird", {Term::Var("X"), fresh},
      {Atom("p", {Term::Var("X"), Term::Var("v#7")}),
       Atom("t", {Term::Int(-42), Term::Str("a\tb"), fresh})});
  ConjunctiveQuery back =
      Unwrap(DeserializeQuery(SerializeQuery(q)), "DeserializeQuery");
  EXPECT_EQ(back.ToString(), q.ToString());
  EXPECT_EQ(SerializeQuery(back), SerializeQuery(q));
}

TEST(CheckpointFields, QueryDeserializeRejectsGarbage) {
  EXPECT_FALSE(DeserializeQuery("").ok());
  EXPECT_FALSE(DeserializeQuery("not a query line").ok());
  EXPECT_FALSE(DeserializeQuery("Q\tV:X\tp\tQ:banana").ok());
}

TEST(CheckpointFields, StepRecordRoundTrips) {
  ChaseStepRecord record;
  record.dep_label = "sigma_1 (tgd)";
  record.is_tgd = true;
  record.result = "Q1(X) :- p(X, Y), s(X, v#3).";
  ChaseStepRecord back = Unwrap(DeserializeStepRecord(SerializeStepRecord(record)),
                                "DeserializeStepRecord");
  EXPECT_EQ(back.dep_label, record.dep_label);
  EXPECT_EQ(back.is_tgd, record.is_tgd);
  EXPECT_EQ(back.result, record.result);
}

// ---- ChaseCheckpoint ----

TEST(ChaseCheckpointTest, RealMidChaseStateRoundTripsByteExactly) {
  std::optional<ChaseCheckpoint> captured = CaptureChaseCheckpoint(2);
  ASSERT_TRUE(captured.has_value());
  const ChaseCheckpoint& cp = *captured;
  EXPECT_EQ(cp.phase, ChaseCheckpoint::kSetChasePhase);
  EXPECT_EQ(cp.steps_done, 2u);
  EXPECT_EQ(cp.trace.size(), 2u);

  std::string text = cp.Serialize();
  ChaseCheckpoint back = Unwrap(ChaseCheckpoint::Deserialize(text),
                                "ChaseCheckpoint::Deserialize");
  EXPECT_EQ(back.Serialize(), text);
  EXPECT_EQ(back.phase, cp.phase);
  EXPECT_EQ(back.subject, cp.subject);
  EXPECT_EQ(back.steps_done, cp.steps_done);
  EXPECT_EQ(back.state.ToString(), cp.state.ToString());
  ASSERT_EQ(back.trace.size(), cp.trace.size());
  for (size_t i = 0; i < cp.trace.size(); ++i) {
    EXPECT_EQ(back.trace[i].dep_label, cp.trace[i].dep_label);
    EXPECT_EQ(back.trace[i].is_tgd, cp.trace[i].is_tgd);
    EXPECT_EQ(back.trace[i].result, cp.trace[i].result);
  }
}

TEST(ChaseCheckpointTest, DeserializedCheckpointResumesTheChase) {
  // Finish the interrupted chase from the *deserialized* checkpoint; the
  // outcome must match an unbudgeted cold run (same chased-atom set and the
  // resumed trace must extend the checkpointed prefix).
  ChaseOutcome reference =
      Unwrap(SetChase(StepHungryP(), Example41Sigma()), "cold chase");

  std::optional<ChaseCheckpoint> cp = CaptureChaseCheckpoint(2);
  ASSERT_TRUE(cp.has_value());
  ChaseCheckpoint parked = Unwrap(ChaseCheckpoint::Deserialize(cp->Serialize()),
                                  "ChaseCheckpoint::Deserialize");
  ChaseRuntime runtime;
  runtime.resume = &parked;
  ChaseOutcome resumed = Unwrap(
      SetChase(StepHungryP(), Example41Sigma(), {}, runtime), "resumed chase");
  EXPECT_EQ(CanonicalQueryKey(resumed.result), CanonicalQueryKey(reference.result));
  ASSERT_GE(resumed.trace.size(), cp->trace.size());
  for (size_t i = 0; i < cp->trace.size(); ++i) {
    EXPECT_EQ(resumed.trace[i].dep_label, cp->trace[i].dep_label);
  }
}

TEST(ChaseCheckpointTest, MemoStampsSubjectAndIgnoresMismatches) {
  ChaseOptions options;
  options.budget.max_chase_steps = 1;
  ChaseMemo memo(Example41Sigma(), Semantics::kSet, Example41Schema(), options);
  ChaseRuntime runtime;
  std::optional<ChaseCheckpoint> checkpoint;
  runtime.checkpoint_out = &checkpoint;
  Result<ChaseOutcome> chased = memo.Chase(StepHungryP(), runtime);
  ASSERT_FALSE(chased.ok());
  ASSERT_TRUE(checkpoint.has_value());
  EXPECT_EQ(checkpoint->subject, CanonicalQueryKey(StepHungryP()));

  // Resuming a *different* query with this checkpoint must start cold, not
  // corrupt state: the unrelated query still chases to its correct result.
  ChaseMemo roomy(Example41Sigma(), Semantics::kSet, Example41Schema(), {});
  ChaseRuntime mismatched;
  mismatched.resume = &*checkpoint;
  ConjunctiveQuery other = Q("Other(X) :- r(X).");
  ChaseOutcome outcome = Unwrap(roomy.Chase(other, mismatched), "mismatched resume");
  ChaseOutcome cold = Unwrap(SetChase(other, Example41Sigma()), "cold");
  EXPECT_EQ(CanonicalQueryKey(outcome.result), CanonicalQueryKey(cold.result));
}

TEST(ChaseCheckpointTest, DeserializeRejectsMalformedInput) {
  EXPECT_FALSE(ChaseCheckpoint::Deserialize("").ok());
  EXPECT_FALSE(ChaseCheckpoint::Deserialize("not a checkpoint").ok());
  EXPECT_FALSE(
      ChaseCheckpoint::Deserialize("sqleq-chase-checkpoint v2\nphase x").ok());
  // Truncated: header only.
  EXPECT_FALSE(ChaseCheckpoint::Deserialize("sqleq-chase-checkpoint v1\n").ok());
  // A real serialization with a corrupted line injected before "end".
  std::optional<ChaseCheckpoint> cp = CaptureChaseCheckpoint(1);
  ASSERT_TRUE(cp.has_value());
  std::string text = cp->Serialize();
  text.insert(text.rfind("end\n"), "bogus keyline\n");
  EXPECT_FALSE(ChaseCheckpoint::Deserialize(text).ok());
}

// ---- BackchaseCheckpoint ----

TEST(BackchaseCheckpointTest, SyntheticStateRoundTripsByteExactly) {
  BackchaseCheckpoint cp;
  cp.cardinality = 3;
  cp.next_mask = 0b1101;
  cp.accepted_masks = {0b0011, 0b0101};
  cp.failed_masks = {0b0001};
  cp.accepted = {Q("Q(X) :- p(X, Y)."),
                 ConjunctiveQuery::Make("Q", {Term::Var("X")},
                                        {Atom("s", {Term::Var("X"), Term::FreshVar()})})};
  cp.stats.candidates_examined = 9;
  cp.stats.chase_cache_hits = 4;
  cp.stats.chase_cache_misses = 5;
  cp.stats.dominance_pruned = 2;
  cp.stats.failure_pruned = 1;
  cp.seen_chase_keys = {"key with\ttab", "plain-key"};
  cp.budget_consumed = 9;

  std::string text = cp.Serialize();
  BackchaseCheckpoint back = Unwrap(BackchaseCheckpoint::Deserialize(text),
                                    "BackchaseCheckpoint::Deserialize");
  EXPECT_EQ(back.Serialize(), text);
  EXPECT_EQ(back.cardinality, cp.cardinality);
  EXPECT_EQ(back.next_mask, cp.next_mask);
  EXPECT_EQ(back.accepted_masks, cp.accepted_masks);
  EXPECT_EQ(back.failed_masks, cp.failed_masks);
  ASSERT_EQ(back.accepted.size(), cp.accepted.size());
  for (size_t i = 0; i < cp.accepted.size(); ++i) {
    EXPECT_EQ(back.accepted[i].ToString(), cp.accepted[i].ToString());
  }
  EXPECT_EQ(back.stats.candidates_examined, cp.stats.candidates_examined);
  EXPECT_EQ(back.stats.dominance_pruned, cp.stats.dominance_pruned);
  EXPECT_EQ(back.stats.failure_pruned, cp.stats.failure_pruned);
  EXPECT_EQ(back.seen_chase_keys, cp.seen_chase_keys);
  EXPECT_EQ(back.budget_consumed, cp.budget_consumed);
}

TEST(BackchaseCheckpointTest, DeserializeRejectsMalformedInput) {
  EXPECT_FALSE(BackchaseCheckpoint::Deserialize("").ok());
  EXPECT_FALSE(BackchaseCheckpoint::Deserialize("sqleq-chase-checkpoint v1\n").ok());
  EXPECT_FALSE(
      BackchaseCheckpoint::Deserialize(
          "sqleq-backchase-checkpoint v1\nnext banana banana\nend\n")
          .ok());
  EXPECT_FALSE(
      BackchaseCheckpoint::Deserialize(
          "sqleq-backchase-checkpoint v1\nnonsense-line\nend\n")
          .ok());
}

// ---- CandBCheckpoint ----

TEST(CandBCheckpointTest, BackchasePhaseCheckpointFromRealRunRoundTrips) {
  CandBOptions options;
  options.context.budget.max_candidates = 4;
  CandBResult partial = Unwrap(
      ChaseAndBackchase(Example41Q1(), Example41Sigma(), Semantics::kSet,
                        Example41Schema(), options),
      "budgeted C&B");
  ASSERT_FALSE(partial.complete);
  ASSERT_TRUE(partial.checkpoint.has_value());
  ASSERT_EQ(partial.checkpoint->phase, CandBCheckpoint::kBackchasePhase);

  std::string text = partial.checkpoint->Serialize();
  CandBCheckpoint back = Unwrap(CandBCheckpoint::Deserialize(text),
                                "CandBCheckpoint::Deserialize");
  EXPECT_EQ(back.Serialize(), text);
  EXPECT_EQ(back.phase, partial.checkpoint->phase);
  ASSERT_TRUE(back.universal_plan.has_value());
  EXPECT_EQ(back.universal_plan->ToString(),
            partial.checkpoint->universal_plan->ToString());
  ASSERT_TRUE(back.backchase.has_value());
  EXPECT_EQ(back.backchase->Serialize(),
            partial.checkpoint->backchase->Serialize());
  EXPECT_FALSE(back.chase.has_value());
}

TEST(CandBCheckpointTest, ChasePhaseCheckpointFromRealRunRoundTrips) {
  CandBOptions options;
  options.context.budget.max_chase_steps = 2;
  CandBResult partial = Unwrap(
      ChaseAndBackchase(StepHungryP(), Example41Sigma(), Semantics::kSet,
                        Example41Schema(), options),
      "step-budgeted C&B");
  ASSERT_FALSE(partial.complete);
  ASSERT_TRUE(partial.checkpoint.has_value());
  ASSERT_EQ(partial.checkpoint->phase, CandBCheckpoint::kChasePhase);
  ASSERT_TRUE(partial.checkpoint->chase.has_value());

  std::string text = partial.checkpoint->Serialize();
  CandBCheckpoint back = Unwrap(CandBCheckpoint::Deserialize(text),
                                "CandBCheckpoint::Deserialize");
  EXPECT_EQ(back.Serialize(), text);
  EXPECT_EQ(back.phase, CandBCheckpoint::kChasePhase);
  ASSERT_TRUE(back.chase.has_value());
  EXPECT_EQ(back.chase->Serialize(), partial.checkpoint->chase->Serialize());
  EXPECT_FALSE(back.universal_plan.has_value());
  EXPECT_FALSE(back.backchase.has_value());
}

TEST(CandBCheckpointTest, ParkedCheckpointResumesAcrossDeserialization) {
  // Park an interrupted C&B as text, reload it, resume: the finished result
  // must match an uninterrupted run — the round trip a deadline-bound
  // service would do across processes.
  CandBOptions clean;
  std::string reference;
  {
    CandBResult full = Unwrap(
        ChaseAndBackchase(Example41Q1(), Example41Sigma(), Semantics::kSet,
                          Example41Schema(), clean),
        "clean C&B");
    reference = CanonicalQueryKey(full.universal_plan) + "|" +
                std::to_string(full.reformulations.size()) + "|" +
                std::to_string(full.candidates_examined);
  }
  CandBOptions budgeted;
  budgeted.context.budget.max_candidates = 4;
  CandBResult partial = Unwrap(
      ChaseAndBackchase(Example41Q1(), Example41Sigma(), Semantics::kSet,
                        Example41Schema(), budgeted),
      "budgeted C&B");
  ASSERT_FALSE(partial.complete);
  CandBCheckpoint parked =
      Unwrap(CandBCheckpoint::Deserialize(partial.checkpoint->Serialize()),
             "CandBCheckpoint::Deserialize");
  CandBOptions resumed_options;
  resumed_options.resume = &parked;
  CandBResult finished = Unwrap(
      ChaseAndBackchase(Example41Q1(), Example41Sigma(), Semantics::kSet,
                        Example41Schema(), resumed_options),
      "resumed C&B");
  EXPECT_TRUE(finished.complete);
  EXPECT_EQ(CanonicalQueryKey(finished.universal_plan) + "|" +
                std::to_string(finished.reformulations.size()) + "|" +
                std::to_string(finished.candidates_examined),
            reference);
}

TEST(CandBCheckpointTest, DeserializeRejectsMalformedInput) {
  EXPECT_FALSE(CandBCheckpoint::Deserialize("").ok());
  EXPECT_FALSE(CandBCheckpoint::Deserialize("sqleq-candb-checkpoint v1\n").ok());
  EXPECT_FALSE(
      CandBCheckpoint::Deserialize(
          "sqleq-candb-checkpoint v1\nphase banana\nend\n")
          .ok());
  EXPECT_FALSE(
      CandBCheckpoint::Deserialize(
          "sqleq-candb-checkpoint v1\nphase backchase\nbackchase-begin\nend\n")
          .ok());
}

}  // namespace
}  // namespace sqleq
