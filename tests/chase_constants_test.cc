// Edge cases: constants flowing through chase steps, sound chase, and
// equivalence tests — SQL queries carry literals everywhere, so the chase
// machinery must treat them as rigid designators.
#include <gtest/gtest.h>

#include "chase/set_chase.h"
#include "chase/sound_chase.h"
#include "db/eval.h"
#include "equivalence/isomorphism.h"
#include "equivalence/sigma_equivalence.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::EngineEquivalent;
using testing::Q;
using testing::Sigma;
using testing::Unwrap;

TEST(ChaseConstants, TgdWithConstantInHead) {
  // Every p-row gets status 1.
  DependencySet sigma = Sigma({"p(X) -> status(X, 1)."});
  ConjunctiveQuery q = Q("Q(X) :- p(X).");
  ChaseOutcome out = Unwrap(SetChase(q, sigma));
  ASSERT_EQ(out.result.body().size(), 2u);
  EXPECT_EQ(out.result.body()[1].ToString(), "status(X, 1)");
}

TEST(ChaseConstants, TgdWithConstantInBodyOnlyFiresOnMatch) {
  DependencySet sigma = Sigma({"p(X, 1) -> r(X)."});
  // Constant 2 in the query: no homomorphism (1 ≠ 2).
  ChaseOutcome no_fire = Unwrap(SetChase(Q("Q(X) :- p(X, 2)."), sigma));
  EXPECT_EQ(no_fire.result.body().size(), 1u);
  // Constant 1: fires.
  ChaseOutcome fires = Unwrap(SetChase(Q("Q(X) :- p(X, 1)."), sigma));
  EXPECT_EQ(fires.result.body().size(), 2u);
  // Variable in that position: also no fire (variables are not constants
  // under homomorphisms from the dependency body into the query).
  ChaseOutcome var = Unwrap(SetChase(Q("Q(X) :- p(X, Y)."), sigma));
  EXPECT_EQ(var.result.body().size(), 1u);
}

TEST(ChaseConstants, EgdBindsVariableToConstant) {
  DependencySet sigma = Sigma({"conf(X, V), conf(X, W) -> V = W."});
  ConjunctiveQuery q = Q("Q(X, V) :- conf(X, V), conf(X, 5).");
  ChaseOutcome out = Unwrap(SetChase(q, sigma));
  EXPECT_FALSE(out.failed);
  // V pinned to 5 in head and body; duplicates collapse.
  ASSERT_EQ(out.result.body().size(), 1u);
  EXPECT_EQ(out.result.head()[1], Term::Int(5));
}

TEST(ChaseConstants, SoundChaseWithConstantHeadIsFixing) {
  // Full tgd with constant: assignment-fixing (no existentials), applies
  // under BS; under B needs the set-valued flag on status.
  DependencySet sigma = Sigma({"p(X) -> status(X, 1)."});
  Schema bag_schema;
  bag_schema.Relation("p", 1).Relation("status", 2);
  ConjunctiveQuery q = Q("Q(X) :- p(X).");
  ChaseOutcome bs = Unwrap(SoundChase(q, sigma, Semantics::kBagSet, bag_schema));
  EXPECT_EQ(bs.result.body().size(), 2u);
  ChaseOutcome b = Unwrap(SoundChase(q, sigma, Semantics::kBag, bag_schema));
  EXPECT_EQ(b.result.body().size(), 1u);  // refused: status is a bag
  Schema set_schema;
  set_schema.Relation("p", 1).Relation("status", 2, /*set_valued=*/true);
  ChaseOutcome b2 = Unwrap(SoundChase(q, sigma, Semantics::kBag, set_schema));
  EXPECT_EQ(b2.result.body().size(), 2u);
}

TEST(ChaseConstants, EquivalenceWithLiteralFilters) {
  // Σ: rows with flag 1 are indexed in hot. Filtering on flag 1 joined to
  // the index is equivalent to the filter alone under bag-set semantics
  // (hot/1 behaves as a set there, and the tgd is full).
  DependencySet clean = Sigma({"item(X, 1) -> hot(X)."});
  ConjunctiveQuery filtered = Q("Q(X) :- item(X, 1).");
  ConjunctiveQuery joined = Q("Q(X) :- item(X, 1), hot(X).");
  EXPECT_TRUE(Unwrap(EngineEquivalent(filtered, joined, clean, Semantics::kBagSet)));
  // Different literal on the filter: not equivalent.
  ConjunctiveQuery other = Q("Q(X) :- item(X, 2), hot(X).");
  EXPECT_FALSE(Unwrap(EngineEquivalent(filtered, other, clean, Semantics::kBagSet)));
}

TEST(ChaseConstants, StringLiteralsDistinctFromIntegers) {
  DependencySet sigma = Sigma({"log(X, 'error') -> alert(X)."});
  ChaseOutcome fires = Unwrap(SetChase(Q("Q(X) :- log(X, 'error')."), sigma));
  EXPECT_EQ(fires.result.body().size(), 2u);
  ChaseOutcome no_fire = Unwrap(SetChase(Q("Q(X) :- log(X, 'info')."), sigma));
  EXPECT_EQ(no_fire.result.body().size(), 1u);
}

TEST(ChaseConstants, IsomorphismNeverMapsAcrossConstants) {
  EXPECT_FALSE(AreIsomorphic(Q("Q(X) :- p(X, 1)."), Q("Q(X) :- p(X, '1').")));
  EXPECT_TRUE(AreIsomorphic(Q("Q(X) :- p(X, '1')."), Q("Q(Y) :- p(Y, '1').")));
}

TEST(ChaseConstants, AssignmentFixingTestWithConstants) {
  // Existential tgd whose head carries a constant: the associated test query
  // still decides correctly (key on first attr of s unifies the copies).
  DependencySet sigma = Sigma({
      "p(X) -> s(X, Z, 1).",
      "s(X, Z1, C1), s(X, Z2, C2) -> Z1 = Z2.",
  });
  Schema schema;
  schema.Relation("p", 1).Relation("s", 3, /*set_valued=*/true);
  ConjunctiveQuery q = Q("Q(X) :- p(X).");
  ChaseOutcome out = Unwrap(SoundChase(q, sigma, Semantics::kBag, schema));
  EXPECT_EQ(out.result.body().size(), 2u);
  EXPECT_EQ(out.result.body()[1].args()[2], Term::Int(1));
}

}  // namespace
}  // namespace sqleq
