// Machine-checked reproductions of every worked example in the paper
// (experiment ids E1–E7 of DESIGN.md). Each test states the paper claim and
// verifies it with the decision procedures AND — where the paper gives a
// counterexample database — with the evaluation oracle.
#include <gtest/gtest.h>

#include "chase/assignment_fixing.h"
#include "chase/chase_step.h"
#include "chase/max_subset.h"
#include "chase/sound_chase.h"
#include "reformulation/minimize.h"
#include "db/eval.h"
#include "db/satisfaction.h"
#include "equivalence/bag_equivalence.h"
#include "equivalence/isomorphism.h"
#include "equivalence/sigma_equivalence.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::EngineEquivalent;
using testing::Example41Schema;
using testing::Example41Sigma;
using testing::Q;
using testing::Sigma;
using testing::Unwrap;

// ---------------------------------------------------------------- E1: 4.1
TEST(Example41, Q1SetEquivalentToQ4ButNotBagOrBagSet) {
  ConjunctiveQuery q1 =
      Q("Q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U).");
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  DependencySet sigma = Example41Sigma();
  Schema schema = Example41Schema();
  EXPECT_TRUE(Unwrap(EngineEquivalent(q1, q4, sigma)));
  EXPECT_FALSE(Unwrap(EngineEquivalent(q1, q4, sigma, Semantics::kBag, schema)));
  EXPECT_FALSE(Unwrap(EngineEquivalent(q1, q4, sigma, Semantics::kBagSet)));
}

TEST(Example41, NaiveCandBConjectureFails) {
  // (Q1)Σ,S ≡B (Q4)Σ,S — both set-chase results are isomorphic to Q1 — yet
  // Q1 ≢Σ,B Q4: the conjectured bag analog of Theorem 2.2 with set-chase is
  // wrong, which motivates sound chase.
  ConjunctiveQuery q1 =
      Q("Q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U).");
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  DependencySet sigma = Example41Sigma();
  ChaseOutcome c1 = Unwrap(SetChase(q1, sigma));
  ChaseOutcome c4 = Unwrap(SetChase(q4, sigma));
  // (Step order can leave one redundant t-atom; the cores are exactly Q1.)
  ConjunctiveQuery m1 = MinimizeSet(c1.result);
  ConjunctiveQuery m4 = MinimizeSet(c4.result);
  EXPECT_TRUE(AreIsomorphic(m1, q1));
  EXPECT_TRUE(AreIsomorphic(m4, q1.WithName("Q4")));
  EXPECT_TRUE(BagEquivalent(m1, m4));
}

TEST(Example41, CounterexampleDatabaseMultiplicities) {
  // D: P={(1,2)}, R={(1)}, S={(1,3)}, T={(1,2,4)}, U={(1,5),(1,6)};
  // Q4(D,B) = {{(1)}} vs Q1(D,B) = {{(1),(1)}}.
  Schema schema = Example41Schema();
  Database d(schema);
  d.Add("p", {1, 2}).Add("r", {1}).Add("s", {1, 3}).Add("t", {1, 2, 4});
  d.Add("u", {1, 5}).Add("u", {1, 6});
  ASSERT_TRUE(Unwrap(Satisfies(d, Example41Sigma())));
  ConjunctiveQuery q1 =
      Q("Q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U).");
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  Bag a1 = Unwrap(Evaluate(q1, d, Semantics::kBag));
  Bag a4 = Unwrap(Evaluate(q4, d, Semantics::kBag));
  EXPECT_EQ(a4.Count(IntTuple({1})), 1u);
  EXPECT_EQ(a1.Count(IntTuple({1})), 2u);
  // The same (set-valued) D disproves bag-set equivalence too.
  EXPECT_TRUE(d.IsSetValued());
  Bag bs1 = Unwrap(Evaluate(q1, d, Semantics::kBagSet));
  Bag bs4 = Unwrap(Evaluate(q4, d, Semantics::kBagSet));
  EXPECT_NE(bs1, bs4);
}

TEST(Example41, ChaseHierarchyQ1Q2Q3) {
  // (Q4)Σ,S ≅ Q1, (Q4)Σ,BS ≅ Q2, (Q4)Σ,B ≅ Q3.
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  DependencySet sigma = Example41Sigma();
  Schema schema = Example41Schema();
  EXPECT_TRUE(AreIsomorphic(
      MinimizeSet(Unwrap(SoundChase(q4, sigma, Semantics::kSet, schema)).result),
      Q("Q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U).")));
  EXPECT_TRUE(AreIsomorphic(
      Unwrap(SoundChase(q4, sigma, Semantics::kBagSet, schema)).result,
      Q("Q2(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X).")));
  EXPECT_TRUE(AreIsomorphic(
      Unwrap(SoundChase(q4, sigma, Semantics::kBag, schema)).result,
      Q("Q3(X) :- p(X, Y), t(X, Y, W), s(X, Z).")));
}

// ------------------------------------------------------------ E2: 4.2/4.3
// (Definitions exercised in depth in assignment_fixing_test; here the two
// headline verdicts only.)
TEST(Example42, Sigma1IsAssignmentFixing) {
  DependencySet sigma = Sigma({
      "p(X, Y) -> r(X, Z), s(Z, W).",
      "r(X, Y), r(X, Z) -> Y = Z.",
      "r(X, Y), s(Y, T), r(X, Z), s(Z, W) -> T = W.",
  });
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");
  EXPECT_TRUE(Unwrap(IsAssignmentFixingForQuery(q, sigma[0].tgd(), sigma)));
  // And the chased result of the test query is the paper's three-atom query.
  const Tgd& tgd = sigma[0].tgd();
  std::optional<TermMap> h = FindApplicableTgdHomomorphism(q, tgd);
  ASSERT_TRUE(h.has_value());
  AssociatedTestQuery test = BuildAssociatedTestQuery(q, tgd, *h);
  ChaseOutcome chased = Unwrap(SetChase(test.query, sigma));
  EXPECT_TRUE(
      AreIsomorphic(chased.result, Q("E(X) :- p(X, Y), r(X, Z), s(Z, W).")));
}

// --------------------------------------------------------- E3: 4.4 – 4.8
TEST(Example44, SkippingNonRegularSigma4MissesRewriting) {
  // Σ′ = Σ − {σ2}: Q3 ≡Σ′,B Q4 and ≡Σ′,BS — reachable only by applying the
  // regularized t-piece of σ4.
  DependencySet sigma_prime = Sigma({
      "p(X, Y) -> s(X, Z), t(X, V, W).",
      "p(X, Y) -> r(X).",
      "p(X, Y) -> u(X, Z), t(X, Y, W).",
      "s(X, Y), s(X, Z) -> Y = Z.",
      "t(X, Y, W1), t(X, Y, W2) -> W1 = W2.",
  });
  Schema schema = Example41Schema();
  ConjunctiveQuery q3 = Q("Q3(X) :- p(X, Y), t(X, Y, W), s(X, Z).");
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  EXPECT_TRUE(Unwrap(EngineEquivalent(q3, q4, sigma_prime, Semantics::kBag, schema)));
  EXPECT_TRUE(Unwrap(EngineEquivalent(q3, q4, sigma_prime, Semantics::kBagSet)));
}

TEST(Example45, ApplyingSigma4WholesaleIsUnsound) {
  // Q4' = p, t, u is NOT equivalent to Q4 under Σ′; counterexample
  // D = {P(1,2), T(1,2,3), U(1,4), U(1,5)}.
  Schema schema = Example41Schema();
  Database d(schema);
  d.Add("p", {1, 2}).Add("t", {1, 2, 3}).Add("u", {1, 4}).Add("u", {1, 5});
  DependencySet sigma_prime = Sigma({
      "p(X, Y) -> s(X, Z), t(X, V, W).",
      "p(X, Y) -> r(X).",
      "p(X, Y) -> u(X, Z), t(X, Y, W).",
      "s(X, Y), s(X, Z) -> Y = Z.",
      "t(X, Y, W1), t(X, Y, W2) -> W1 = W2.",
  });
  // D must satisfy the tgds relevant to the example; note the paper's D
  // omits S and R tuples, so σ1' and σ3' of Σ′ fail on D — the paper's
  // point needs only σ4 and the egds, so restrict to those.
  DependencySet relevant = Sigma({
      "p(X, Y) -> u(X, Z), t(X, Y, W).",
      "t(X, Y, W1), t(X, Y, W2) -> W1 = W2.",
  });
  ASSERT_TRUE(Unwrap(Satisfies(d, relevant)));
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  ConjunctiveQuery q4_prime = Q("Q4p(X) :- p(X, Y), t(X, Y, W), u(X, Z).");
  Bag a = Unwrap(Evaluate(q4, d, Semantics::kBagSet));
  Bag b = Unwrap(Evaluate(q4_prime, d, Semantics::kBagSet));
  EXPECT_EQ(a.Count(IntTuple({1})), 1u);
  EXPECT_EQ(b.Count(IntTuple({1})), 2u);
  // Sound chase never produces Q4': under BS it stops at p, t (u-piece is
  // not assignment-fixing).
  ChaseOutcome chased =
      Unwrap(SoundChase(q4, relevant, Semantics::kBagSet, schema));
  EXPECT_TRUE(AreIsomorphic(chased.result, Q("E(X) :- p(X, Y), t(X, Y, W).")));
}

TEST(Example46, ModifiedChaseStepWouldBeUnsound) {
  // Adding only t(Z,Y) (reusing the existing s-atom, as the conference
  // version's "modified chase" did) yields Q′ ≢Σ Q; the counterexample is
  // D = {P(1,2), S(1,1), S(1,3), T(3,2)}.
  DependencySet sigma = Sigma({
      "p(X, Y) -> s(X, Z), t(Z, Y).",
      "t(X, Y), t(Z, Y) -> X = Z.",
  });
  Schema schema;
  schema.Relation("p", 2).Relation("s", 2).Relation("t", 2);
  Database d(schema);
  d.Add("p", {1, 2}).Add("s", {1, 1}).Add("s", {1, 3}).Add("t", {3, 2});
  ASSERT_TRUE(Unwrap(Satisfies(d, sigma)));
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), s(X, Z).");
  ConjunctiveQuery q_bad = Q("Qb(X) :- p(X, Y), s(X, Z), t(Z, Y).");
  Bag a = Unwrap(Evaluate(q, d, Semantics::kBagSet));
  Bag b = Unwrap(Evaluate(q_bad, d, Semantics::kBagSet));
  EXPECT_EQ(a.Count(IntTuple({1})), 2u);
  EXPECT_EQ(b.Count(IntTuple({1})), 1u);
  // The traditional chase step (Example 4.8) adds BOTH a fresh s-atom and
  // the t-atom, and that query IS equivalent:
  ConjunctiveQuery q_good = Q("Qg(X) :- p(X, Y), s(X, Z), s(X, W), t(W, Y).");
  Bag g = Unwrap(Evaluate(q_good, d, Semantics::kBagSet));
  EXPECT_EQ(g, a);
  EXPECT_TRUE(Unwrap(EngineEquivalent(q_good, q, sigma, Semantics::kBagSet)));
}

TEST(Example48, SoundStepViaAssignmentFixingNotKeyBased) {
  DependencySet sigma = Sigma({
      "p(X, Y) -> s(X, Z), t(Z, Y).",
      "t(X, Y), t(Z, Y) -> X = Z.",
  });
  Schema schema;
  schema.Relation("p", 2)
      .Relation("s", 2, /*set_valued=*/true)
      .Relation("t", 2, /*set_valued=*/true);
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), s(X, Z).");
  // ν1 is assignment-fixing w.r.t. Q but not key-based (Def 5.1).
  EXPECT_TRUE(Unwrap(IsAssignmentFixingForQuery(q, sigma[0].tgd(), sigma)));
  EXPECT_FALSE(IsKeyBased(sigma[0].tgd(), sigma, schema));
  // Sound bag chase applies it (S, T set valued).
  ChaseOutcome chased = Unwrap(SoundChase(q, sigma, Semantics::kBag, schema));
  EXPECT_TRUE(AreIsomorphic(chased.result,
                            Q("E(X) :- p(X, Y), s(X, Z), s(X, W), t(W, Y).")));
}

// ------------------------------------------------------------- E4: 4.9/D.1
TEST(Example49AndD1, DuplicateSetValuedSubgoal) {
  Schema schema = Example41Schema();
  ConjunctiveQuery q3 = Q("Q3(X) :- p(X, Y), t(X, Y, W), s(X, Z).");
  ConjunctiveQuery q5 = Q("Q5(X) :- p(X, Y), t(X, Y, W), s(X, Z), s(X, Z).");
  // Plain Thm 2.1: NOT bag equivalent; Thm 4.2 modulo set-valued S: yes.
  EXPECT_FALSE(BagEquivalent(q3, q5));
  EXPECT_TRUE(BagEquivalentModuloSetRelations(q3, q5, schema));
  // Example D.1's database (S duplicated) separates them when S is a bag.
  Schema relaxed;
  relaxed.Relation("p", 2).Relation("r", 1).Relation("s", 2).Relation("t", 3);
  Database d(relaxed);
  d.Add("p", {1, 2}).Add("s", {1, 3}, 2).Add("t", {1, 2, 5});
  Bag a3 = Unwrap(Evaluate(q3, d, Semantics::kBag));
  Bag a5 = Unwrap(Evaluate(q5, d, Semantics::kBag));
  EXPECT_EQ(a3.Count(IntTuple({1})), 2u);
  EXPECT_EQ(a5.Count(IntTuple({1})), 4u);
}

// ---------------------------------------------------------------- E6: D.2
TEST(ExampleD2, AmplificationBeatsTheBound) {
  // Q7 has two r-subgoals, Q8 one; with m copies of R's tuple, Q7 yields
  // m², Q8 yields m; at m=5 > 4 the bag sizes must separate (Lemma D.1's
  // bound n1^{2n2} · n4^{n3-n2} · m^{n2} = 4m).
  Schema relaxed;
  relaxed.Relation("p", 2).Relation("r", 1);
  ConjunctiveQuery q7 = Q("Q7(X) :- p(X, Y), r(X), r(X).");
  ConjunctiveQuery q8 = Q("Q8(X) :- p(X, Y), r(X).");
  for (uint64_t m : {1u, 2u, 5u, 9u}) {
    Database d(relaxed);
    d.Add("p", {1, 2}).Add("r", {1}, m);
    Bag a7 = Unwrap(Evaluate(q7, d, Semantics::kBag));
    Bag a8 = Unwrap(Evaluate(q8, d, Semantics::kBag));
    EXPECT_EQ(a7.Count(IntTuple({1})), m * m);
    EXPECT_EQ(a8.Count(IntTuple({1})), m);
    if (m > 4) {
      EXPECT_GT(a7.TotalSize(), 4 * m);  // exceeds Eq. 4's bound
    }
  }
}

// ------------------------------------------------------------ E7: E.1/E.2
TEST(ExampleE1, KeyBasedStepUnsoundOnBagValuedTarget) {
  // σ2: r(X,Y) → p(X,Y) is key-based given σ1, but P is bag valued; the
  // counterexample D has P = {{(a,b),(a,b)}}.
  DependencySet sigma = Sigma({
      "p(X, Y), p(X, Z) -> Y = Z.",
      "r(X, Y) -> p(X, Y).",
  });
  Schema schema;
  schema.Relation("p", 2).Relation("r", 2);
  Database d(schema);
  ASSERT_TRUE(d.Insert("r", {Term::Str("a"), Term::Str("b")}).ok());
  ASSERT_TRUE(d.Insert("p", {Term::Str("a"), Term::Str("b")}, 2).ok());
  ASSERT_TRUE(Unwrap(Satisfies(d, sigma)));
  ConjunctiveQuery q = Q("Q(A) :- r(A, B).");
  ConjunctiveQuery q_prime = Q("Qp(A) :- r(A, B), p(A, B).");
  Bag a = Unwrap(Evaluate(q, d, Semantics::kBag));
  Bag b = Unwrap(Evaluate(q_prime, d, Semantics::kBag));
  EXPECT_EQ(a.Count({Term::Str("a")}), 1u);
  EXPECT_EQ(b.Count({Term::Str("a")}), 2u);
  // Sound bag chase refuses the step:
  ChaseOutcome chased = Unwrap(SoundChase(q, sigma, Semantics::kBag, schema));
  EXPECT_TRUE(AreIsomorphic(chased.result, q));
  // With P flagged set valued it applies:
  Schema strict;
  strict.Relation("p", 2, /*set_valued=*/true).Relation("r", 2);
  ChaseOutcome chased2 = Unwrap(SoundChase(q, sigma, Semantics::kBag, strict));
  EXPECT_TRUE(AreIsomorphic(chased2.result, q_prime.WithName("Q")));
}

TEST(ExampleE2, NonKeyBasedStepUnsoundUnderBagSet) {
  // σ: r(X,Y) → ∃Z p(X,Z): counterexample D = {R(a,b), P(a,c), P(a,d)}.
  DependencySet sigma = Sigma({"r(X, Y) -> p(X, Z)."});
  Schema schema;
  schema.Relation("p", 2).Relation("r", 2);
  Database d(schema);
  ASSERT_TRUE(d.Insert("r", {Term::Str("a"), Term::Str("b")}).ok());
  ASSERT_TRUE(d.Insert("p", {Term::Str("a"), Term::Str("c")}).ok());
  ASSERT_TRUE(d.Insert("p", {Term::Str("a"), Term::Str("d")}).ok());
  ASSERT_TRUE(Unwrap(Satisfies(d, sigma)));
  ConjunctiveQuery q = Q("Q(A) :- r(A, B).");
  ConjunctiveQuery q_prime = Q("Qp(A) :- r(A, B), p(A, C).");
  Bag a = Unwrap(Evaluate(q, d, Semantics::kBagSet));
  Bag b = Unwrap(Evaluate(q_prime, d, Semantics::kBagSet));
  EXPECT_EQ(a.Count({Term::Str("a")}), 1u);
  EXPECT_EQ(b.Count({Term::Str("a")}), 2u);
  ChaseOutcome chased = Unwrap(SoundChase(q, sigma, Semantics::kBagSet, schema));
  EXPECT_TRUE(AreIsomorphic(chased.result, q));
}

// ------------------------------------------------ §5.3 discussion fixture
TEST(Section53, MaxSubsetQueryDependenceDiscussion) {
  // "for query Q(X) :- p(X,Y), u(X,Z), the canonical database of (Q)Σ,B
  // does satisfy dependency σ4."
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), u(X, Z).");
  MaxSubsetResult r =
      Unwrap(MaxBagSigmaSubset(q, Example41Sigma(), Example41Schema()));
  bool sigma4_kept = false;
  for (const Dependency& d : r.max_subset) sigma4_kept |= (d.label() == "sigma4");
  EXPECT_TRUE(sigma4_kept);
}

}  // namespace
}  // namespace sqleq
