// util/json: the minimal JSON reader backing check_bench_json and the
// exporter round-trip tests — every serializer in the telemetry layer
// (MetricsSnapshot::ToJson, TraceSink::ToChromeTraceJson) must emit text
// this parser accepts.
#include "util/json.h"

#include <gtest/gtest.h>

#include <string>

#include "util/telemetry.h"

namespace sqleq {
namespace {

JsonValue Parse(const std::string& text) {
  Result<JsonValue> parsed = ParseJson(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << " for: " << text;
  if (!parsed.ok()) std::abort();
  return std::move(parsed).value();
}

TEST(JsonTest, ParsesScalars) {
  EXPECT_EQ(Parse("null").kind, JsonValue::Kind::kNull);
  EXPECT_TRUE(Parse("true").boolean);
  EXPECT_FALSE(Parse("false").boolean);
  EXPECT_DOUBLE_EQ(Parse("42").number, 42.0);
  EXPECT_DOUBLE_EQ(Parse("-3.5").number, -3.5);
  EXPECT_DOUBLE_EQ(Parse("1e3").number, 1000.0);
  EXPECT_EQ(Parse("\"hi\"").string, "hi");
}

TEST(JsonTest, ParsesStringEscapes) {
  EXPECT_EQ(Parse(R"("a\"b\\c\nd\te")").string, "a\"b\\c\nd\te");
  EXPECT_EQ(Parse(R"("A")").string, "A");
}

TEST(JsonTest, ParsesNestedContainers) {
  JsonValue v = Parse(R"({"a": [1, 2, {"b": "x"}], "c": {}})");
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[0].number, 1.0);
  const JsonValue* b = a->array[2].Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->string, "x");
  const JsonValue* c = v.Find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->is_object());
  EXPECT_TRUE(c->object.empty());
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonTest, RejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,", "{\"a\" 1}", "\"unterminated",
                          "tru", "01x", "{\"a\":1,}", "[1] trailing"}) {
    EXPECT_FALSE(ParseJson(bad).ok()) << "accepted: " << bad;
  }
}

TEST(JsonTest, EscapeJsonRoundTrips) {
  const std::string raw = "line\nquote\"slash\\tab\tend";
  JsonValue v = Parse("\"" + EscapeJson(raw) + "\"");
  EXPECT_EQ(v.string, raw);
}

// The exporter contract: telemetry serializers emit text util/json.h parses
// back into the expected shape.

TEST(JsonTest, MetricsSnapshotJsonRoundTrips) {
  MetricsRegistry registry;
  registry.counter("chase.steps").Add(7);
  registry.counter("memo.hits").Add(2);
  registry.histogram("pool.task_us").Record(150);
  registry.histogram("pool.task_us").Record(3);

  JsonValue v = Parse(registry.Snapshot().ToJson());
  const JsonValue* counters = v.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_TRUE(counters->is_object());
  const JsonValue* steps = counters->Find("chase.steps");
  ASSERT_NE(steps, nullptr);
  EXPECT_DOUBLE_EQ(steps->number, 7.0);
  const JsonValue* histograms = v.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* task = histograms->Find("pool.task_us");
  ASSERT_NE(task, nullptr);
  ASSERT_TRUE(task->is_object());
  EXPECT_DOUBLE_EQ(task->Find("count")->number, 2.0);
  EXPECT_DOUBLE_EQ(task->Find("sum")->number, 153.0);
  EXPECT_DOUBLE_EQ(task->Find("min")->number, 3.0);
  EXPECT_DOUBLE_EQ(task->Find("max")->number, 150.0);
}

TEST(JsonTest, ChromeTraceJsonRoundTrips) {
  TraceSink sink;
  {
    TraceSpan outer(&sink, "outer");
    TraceSpan inner(&sink, "inner \"quoted\"");
  }
  JsonValue v = Parse(sink.ToChromeTraceJson());
  const JsonValue* events = v.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 4u);
  const JsonValue& first = events->array[0];
  EXPECT_EQ(first.Find("name")->string, "outer");
  EXPECT_EQ(first.Find("ph")->string, "B");
  EXPECT_TRUE(first.Find("ts")->is_number());
  EXPECT_TRUE(first.Find("tid")->is_number());
  // The quoted name survives serialization.
  EXPECT_EQ(events->array[1].Find("name")->string, "inner \"quoted\"");
}

TEST(JsonTest, PrometheusTextIsWellFormed) {
  MetricsRegistry registry;
  registry.counter("backchase.level.2.accepted").Add(5);
  registry.histogram("pool.queue_wait_us").Record(10);
  const std::string text = registry.Snapshot().ToPrometheusText();
  // Names are sanitized (dots -> underscores) and prefixed.
  EXPECT_NE(text.find("sqleq_backchase_level_2_accepted 5"), std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE sqleq_backchase_level_2_accepted counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sqleq_pool_queue_wait_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("sqleq_pool_queue_wait_us_count 1"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
}

}  // namespace
}  // namespace sqleq
