// End-to-end exit-code contract of the sqleq-lint CLI (tools/sqleq_lint.cc):
//
//   0  clean (no errors, no warnings; info notes are fine)
//   1  warnings only
//   2  at least one error-severity diagnostic (--strict escalates warnings)
//   3  usage / IO problems
//
// Each case writes a script to a temp file and runs the real binary
// (SQLEQ_LINT_BIN, injected by tests/CMakeLists.txt), so regressions in
// main()'s wiring — not just LintScript — fail here.
#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#ifndef SQLEQ_LINT_BIN
#error "SQLEQ_LINT_BIN must point at the built sqleq-lint binary"
#endif

namespace sqleq {
namespace {

std::string WriteScript(const std::string& name, const std::string& text) {
  std::string path = ::testing::TempDir() + "lint_cli_" + name + ".sqleq";
  std::ofstream out(path, std::ios::trunc);
  out << text;
  EXPECT_TRUE(out.good());
  return path;
}

/// Runs `sqleq-lint <args>` with output discarded; returns the exit code.
int RunLint(const std::string& args) {
  std::string cmd =
      std::string(SQLEQ_LINT_BIN) + " " + args + " > /dev/null 2> /dev/null";
  int rc = std::system(cmd.c_str());
  EXPECT_NE(rc, -1);
  return WEXITSTATUS(rc);
}

constexpr char kCleanScript[] =
    "DEP p(X, Y) -> r(X);\n"
    "QUERY q(X) :- p(X, Y);\n";

// The second DEP restates the first, so the implication check reports the
// warning-severity dependency-implied (both directions) and nothing worse.
constexpr char kWarningScript[] =
    "DEP emp(E, D) -> dept(D);\n"
    "DEP emp(X, Y) -> dept(Y);\n";

constexpr char kErrorScript[] = "FROBNICATE q;\n";

TEST(LintCli, CleanScriptExitsZero) {
  std::string path = WriteScript("clean", kCleanScript);
  EXPECT_EQ(RunLint(path), 0);
}

TEST(LintCli, InfoNotesAreStillClean) {
  // Slicing diagnostics are info-severity; a pruned dependency must not
  // affect the exit code.
  std::string path = WriteScript("sliced", "DEP s(X) -> t(X);\n"
                                           "QUERY q(X) :- p(X, Y);\n");
  EXPECT_EQ(RunLint(path), 0);
}

TEST(LintCli, WarningsOnlyExitsOne) {
  std::string path = WriteScript("warn", kWarningScript);
  EXPECT_EQ(RunLint(path), 1);
}

TEST(LintCli, ErrorsExitTwo) {
  std::string path = WriteScript("error", kErrorScript);
  EXPECT_EQ(RunLint(path), 2);
}

TEST(LintCli, ErrorsDominateWarningsAcrossFiles) {
  std::string warn = WriteScript("warn2", kWarningScript);
  std::string error = WriteScript("error2", kErrorScript);
  EXPECT_EQ(RunLint(warn + " " + error), 2);
}

TEST(LintCli, StrictEscalatesWarningsToTwo) {
  std::string path = WriteScript("strict", kWarningScript);
  EXPECT_EQ(RunLint("--strict " + path), 2);
}

TEST(LintCli, StrictLeavesCleanAtZero) {
  std::string path = WriteScript("strict_clean", kCleanScript);
  EXPECT_EQ(RunLint("--strict " + path), 0);
}

TEST(LintCli, UnknownFlagExitsThree) {
  EXPECT_EQ(RunLint("--no-such-flag"), 3);
}

TEST(LintCli, MissingFileExitsThree) {
  EXPECT_EQ(RunLint(::testing::TempDir() + "lint_cli_nonesuch.sqleq"), 3);
}

}  // namespace
}  // namespace sqleq
