// Unit tests for INSERT parsing and script loading.
#include <gtest/gtest.h>

#include "db/eval.h"
#include "sql/sql_parser.h"
#include "sql/translate.h"

namespace sqleq {
namespace sql {
namespace {

template <typename T>
T Must(Result<T> r) {
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok()) std::abort();
  return std::move(r).value();
}

TEST(SqlInsertParse, SingleRow) {
  InsertStatement s = Must(ParseInsert("INSERT INTO t VALUES (1, 'x')"));
  EXPECT_EQ(s.table, "t");
  ASSERT_EQ(s.rows.size(), 1u);
  ASSERT_EQ(s.rows[0].size(), 2u);
  EXPECT_EQ(std::get<int64_t>(s.rows[0][0].value), 1);
  EXPECT_EQ(std::get<std::string>(s.rows[0][1].value), "x");
}

TEST(SqlInsertParse, MultiRow) {
  InsertStatement s = Must(ParseInsert("INSERT INTO t VALUES (1), (2), (3)"));
  EXPECT_EQ(s.rows.size(), 3u);
}

TEST(SqlInsertParse, Rejections) {
  EXPECT_FALSE(ParseInsert("INSERT t VALUES (1)").ok());
  EXPECT_FALSE(ParseInsert("INSERT INTO t (1)").ok());
  EXPECT_FALSE(ParseInsert("INSERT INTO t VALUES (a)").ok());  // no column refs
  EXPECT_FALSE(ParseInsert("INSERT INTO t VALUES ()").ok());
}

TEST(SqlInsertParse, StatementDispatch) {
  Statement s = Must(ParseStatement("INSERT INTO t VALUES (1)"));
  EXPECT_TRUE(std::holds_alternative<InsertStatement>(s));
}

TEST(LoadScriptTest, CreatesAndInserts) {
  LoadedDatabase loaded = Must(LoadScript(R"(
    CREATE TABLE emp (id INT PRIMARY KEY, dept INT);
    CREATE TABLE log (emp INT, action TEXT);
    INSERT INTO emp VALUES (1, 10), (2, 10);
    INSERT INTO log VALUES (1, 'login');
    INSERT INTO log VALUES (1, 'login');
  )"));
  RelationInstance emp = Must(loaded.database.GetRelation("emp"));
  EXPECT_EQ(emp.TotalSize(), 2u);
  // log has no key: duplicate rows accumulate multiplicity.
  RelationInstance log = Must(loaded.database.GetRelation("log"));
  EXPECT_EQ(log.Count({Term::Int(1), Term::Str("login")}), 2u);
}

TEST(LoadScriptTest, DuplicateIntoKeyedTableRejected) {
  Result<LoadedDatabase> r = LoadScript(R"(
    CREATE TABLE emp (id INT PRIMARY KEY, dept INT);
    INSERT INTO emp VALUES (1, 10), (1, 10);
  )");
  EXPECT_FALSE(r.ok());
}

TEST(LoadScriptTest, ArityMismatchRejected) {
  EXPECT_FALSE(LoadScript(R"(
    CREATE TABLE emp (id INT PRIMARY KEY, dept INT);
    INSERT INTO emp VALUES (1);
  )").ok());
}

TEST(LoadScriptTest, UnknownTableRejected) {
  EXPECT_FALSE(LoadScript("INSERT INTO nope VALUES (1)").ok());
}

TEST(LoadScriptTest, CreateAfterInsertRejected) {
  EXPECT_FALSE(LoadScript(R"(
    CREATE TABLE a (x INT);
    INSERT INTO a VALUES (1);
    CREATE TABLE b (y INT);
  )").ok());
}

TEST(LoadScriptTest, SelectInScriptRejected) {
  EXPECT_FALSE(LoadScript(R"(
    CREATE TABLE a (x INT);
    SELECT x FROM a;
  )").ok());
}

TEST(LoadScriptTest, EndToEndEvaluation) {
  LoadedDatabase loaded = Must(LoadScript(R"(
    CREATE TABLE emp (id INT PRIMARY KEY, dept INT);
    CREATE TABLE dept (id INT PRIMARY KEY, mgr INT);
    INSERT INTO emp VALUES (1, 10), (2, 10), (3, 11);
    INSERT INTO dept VALUES (10, 7), (11, 8);
  )"));
  TranslatedQuery q = Must(TranslateSql(
      "SELECT e.id FROM emp e, dept d WHERE e.dept = d.id AND d.mgr = 7",
      loaded.catalog));
  Bag answer = Must(Evaluate(*q.cq, loaded.database, q.semantics));
  EXPECT_EQ(answer.TotalSize(), 2u);
  EXPECT_EQ(answer.Count(IntTuple({1})), 1u);
  EXPECT_EQ(answer.Count(IntTuple({2})), 1u);
}

}  // namespace
}  // namespace sql
}  // namespace sqleq
