// Unit tests for the cost model used to rank reformulations.
#include "reformulation/cost.h"

#include <gtest/gtest.h>

#include "reformulation/bag_candb.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::Q;
using testing::Unwrap;

TEST(CostModelTest, DefaultsAndOverrides) {
  CostModel model;
  model.SetDefaultRows(100).SetRows("big", 1e6).SetDistinct("big", 0, 1000);
  EXPECT_EQ(model.RowsOf("unknown"), 100);
  EXPECT_EQ(model.RowsOf("big"), 1e6);
  EXPECT_EQ(model.DistinctOf("big", 0), 1000);
  // Missing distinct defaults to sqrt(rows).
  EXPECT_NEAR(model.DistinctOf("big", 1), 1000.0, 1e-9);
  EXPECT_NEAR(model.DistinctOf("unknown", 0), 10.0, 1e-9);
}

TEST(EstimateCostTest, SingleScan) {
  CostModel model;
  model.SetRows("p", 500);
  CostEstimate cost = EstimateCost(Q("Q(X) :- p(X, Y)."), model);
  EXPECT_EQ(cost.atoms, 1u);
  EXPECT_NEAR(cost.output_rows, 500, 1e-9);
  EXPECT_NEAR(cost.intermediate_tuples, 500, 1e-9);
}

TEST(EstimateCostTest, MoreAtomsCostMore) {
  CostModel model;
  CostEstimate one = EstimateCost(Q("Q(X) :- p(X, Y)."), model);
  CostEstimate two = EstimateCost(Q("Q(X) :- p(X, Y), r(X)."), model);
  EXPECT_GT(two.intermediate_tuples, one.intermediate_tuples);
}

TEST(EstimateCostTest, BoundJoinPositionShrinksContribution) {
  CostModel model;
  model.SetRows("p", 1000).SetRows("q", 1000).SetDistinct("q", 0, 1000);
  // Joined q: second atom's first position is bound, cut by distinct count.
  CostEstimate joined = EstimateCost(Q("Q(X) :- p(X, Y), q(Y, Z)."), model);
  // Cartesian q: nothing bound.
  CostEstimate cartesian = EstimateCost(Q("Q(X) :- p(X, Y), q(U, Z)."), model);
  EXPECT_LT(joined.output_rows, cartesian.output_rows);
}

TEST(EstimateCostTest, ConstantsAreBound) {
  CostModel model;
  model.SetRows("p", 1000).SetDistinct("p", 1, 100);
  CostEstimate filtered = EstimateCost(Q("Q(X) :- p(X, 5)."), model);
  EXPECT_NEAR(filtered.output_rows, 10.0, 1e-6);
}

TEST(PickCheapestTest, PrefersSmallerIntermediate) {
  CostModel model;
  model.SetRows("small", 10).SetRows("huge", 1e7);
  std::vector<ConjunctiveQuery> candidates{
      Q("A(X) :- huge(X, Y)."),
      Q("B(X) :- small(X, Y)."),
  };
  std::optional<size_t> best = PickCheapest(candidates, model);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, 1u);
}

TEST(PickCheapestTest, EmptyInput) {
  EXPECT_FALSE(PickCheapest({}, CostModel()).has_value());
}

TEST(PickCheapestTest, RanksCandBOutputs) {
  // End-to-end: multiple Σ-minimal reformulations (a ⇄ b) ranked by stats.
  DependencySet sigma = testing::Sigma({"a(X) -> b(X).", "b(X) -> a(X)."});
  ConjunctiveQuery q = Q("Q(X) :- a(X), b(X).");
  CandBResult result = Unwrap(SetCandB(q, sigma));
  ASSERT_EQ(result.reformulations.size(), 2u);
  CostModel model;
  model.SetRows("a", 10).SetRows("b", 100000);
  std::optional<size_t> best = PickCheapest(result.reformulations, model);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(result.reformulations[*best].body()[0].predicate(), "a");
}

}  // namespace
}  // namespace sqleq
