// Unit tests for weak acyclicity (Definition H.1).
#include "constraints/weak_acyclicity.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sqleq {
namespace {

using testing::Sigma;

TEST(WeakAcyclicity, EmptySigmaIsWeaklyAcyclic) {
  EXPECT_TRUE(IsWeaklyAcyclic({}));
}

TEST(WeakAcyclicity, EgdsContributeNothing) {
  DependencySet sigma = Sigma({"r(X, Y), r(X, Z) -> Y = Z."});
  EXPECT_TRUE(IsWeaklyAcyclic(sigma));
  EXPECT_TRUE(BuildDependencyGraph(sigma).empty());
}

TEST(WeakAcyclicity, SimpleAcyclicTgd) {
  DependencySet sigma = Sigma({"p(X, Y) -> s(X, Z)."});
  EXPECT_TRUE(IsWeaklyAcyclic(sigma));
}

TEST(WeakAcyclicity, SelfLoopWithExistentialRejected) {
  // The textbook non-terminating tgd: p(X,Y) → ∃Z p(Y,Z).
  DependencySet sigma = Sigma({"p(X, Y) -> p(Y, Z)."});
  EXPECT_FALSE(IsWeaklyAcyclic(sigma));
}

TEST(WeakAcyclicity, FullTgdCyclesAreFine) {
  // Cycles without special edges are allowed: p(X,Y) → p(Y,X).
  DependencySet sigma = Sigma({"p(X, Y) -> p(Y, X)."});
  EXPECT_TRUE(IsWeaklyAcyclic(sigma));
}

TEST(WeakAcyclicity, TwoStepSpecialCycleRejected) {
  DependencySet sigma = Sigma({
      "p(X, Y) -> q(Y, Z).",  // special (p,?) ->* (q,1)
      "q(X, Y) -> p(Y, Z).",  // special back into p
  });
  EXPECT_FALSE(IsWeaklyAcyclic(sigma));
}

TEST(WeakAcyclicity, DagOfSpecialEdgesAccepted) {
  DependencySet sigma = Sigma({
      "p(X, Y) -> q(Y, Z).",
      "q(X, Y) -> r(Y, Z).",
  });
  EXPECT_TRUE(IsWeaklyAcyclic(sigma));
}

TEST(WeakAcyclicity, Example41SigmaIsWeaklyAcyclic) {
  EXPECT_TRUE(IsWeaklyAcyclic(testing::Example41Sigma()));
}

TEST(WeakAcyclicity, AppendixHFamilyIsWeaklyAcyclic) {
  // The σ(1)_{i,j} / σ(2)_{i,j} family of Example H.1 for m = 3: strictly
  // acyclic (indices only increase).
  DependencySet sigma = Sigma({
      "p1(X, Y) -> p2(Z, X).",
      "p1(X, Y) -> p2(Y, W).",
      "p1(X, Y) -> p3(Z, X).",
      "p1(X, Y) -> p3(Y, W).",
      "p2(X, Y) -> p3(Z, X).",
      "p2(X, Y) -> p3(Y, W).",
  });
  EXPECT_TRUE(IsWeaklyAcyclic(sigma));
}

TEST(WeakAcyclicity, GraphEdgesClassifyRegularAndSpecial) {
  DependencySet sigma = Sigma({"p(X, Y) -> q(X, Z)."});
  std::vector<PositionEdge> edges = BuildDependencyGraph(sigma);
  bool saw_regular = false, saw_special = false;
  for (const PositionEdge& e : edges) {
    EXPECT_EQ(e.from.relation, "p");
    EXPECT_EQ(e.from.index, 0u);  // X occurs in p at position 0 only
    if (e.special) {
      saw_special = true;
      EXPECT_EQ(e.to, (Position{"q", 1}));
    } else {
      saw_regular = true;
      EXPECT_EQ(e.to, (Position{"q", 0}));
    }
  }
  EXPECT_TRUE(saw_regular);
  EXPECT_TRUE(saw_special);
}

TEST(WeakAcyclicity, BodyOnlyVariablesAddNoEdges) {
  // Y never reaches the head: no edges from (p, 1).
  DependencySet sigma = Sigma({"p(X, Y) -> q(X, X)."});
  for (const PositionEdge& e : BuildDependencyGraph(sigma)) {
    EXPECT_NE(e.from, (Position{"p", 1}));
  }
}

TEST(WeakAcyclicity, PositionToString) {
  EXPECT_EQ((Position{"p", 2}).ToString(), "(p, 2)");
}

}  // namespace
}  // namespace sqleq
