// Unit tests for weak acyclicity (Definition H.1).
#include "constraints/weak_acyclicity.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sqleq {
namespace {

using testing::Sigma;

TEST(WeakAcyclicity, EmptySigmaIsWeaklyAcyclic) {
  EXPECT_TRUE(IsWeaklyAcyclic({}));
}

TEST(WeakAcyclicity, EgdsContributeNothing) {
  DependencySet sigma = Sigma({"r(X, Y), r(X, Z) -> Y = Z."});
  EXPECT_TRUE(IsWeaklyAcyclic(sigma));
  EXPECT_TRUE(BuildDependencyGraph(sigma).empty());
}

TEST(WeakAcyclicity, SimpleAcyclicTgd) {
  DependencySet sigma = Sigma({"p(X, Y) -> s(X, Z)."});
  EXPECT_TRUE(IsWeaklyAcyclic(sigma));
}

TEST(WeakAcyclicity, SelfLoopWithExistentialRejected) {
  // The textbook non-terminating tgd: p(X,Y) → ∃Z p(Y,Z).
  DependencySet sigma = Sigma({"p(X, Y) -> p(Y, Z)."});
  EXPECT_FALSE(IsWeaklyAcyclic(sigma));
}

TEST(WeakAcyclicity, FullTgdCyclesAreFine) {
  // Cycles without special edges are allowed: p(X,Y) → p(Y,X).
  DependencySet sigma = Sigma({"p(X, Y) -> p(Y, X)."});
  EXPECT_TRUE(IsWeaklyAcyclic(sigma));
}

TEST(WeakAcyclicity, TwoStepSpecialCycleRejected) {
  DependencySet sigma = Sigma({
      "p(X, Y) -> q(Y, Z).",  // special (p,?) ->* (q,1)
      "q(X, Y) -> p(Y, Z).",  // special back into p
  });
  EXPECT_FALSE(IsWeaklyAcyclic(sigma));
}

TEST(WeakAcyclicity, DagOfSpecialEdgesAccepted) {
  DependencySet sigma = Sigma({
      "p(X, Y) -> q(Y, Z).",
      "q(X, Y) -> r(Y, Z).",
  });
  EXPECT_TRUE(IsWeaklyAcyclic(sigma));
}

TEST(WeakAcyclicity, Example41SigmaIsWeaklyAcyclic) {
  EXPECT_TRUE(IsWeaklyAcyclic(testing::Example41Sigma()));
}

TEST(WeakAcyclicity, AppendixHFamilyIsWeaklyAcyclic) {
  // The σ(1)_{i,j} / σ(2)_{i,j} family of Example H.1 for m = 3: strictly
  // acyclic (indices only increase).
  DependencySet sigma = Sigma({
      "p1(X, Y) -> p2(Z, X).",
      "p1(X, Y) -> p2(Y, W).",
      "p1(X, Y) -> p3(Z, X).",
      "p1(X, Y) -> p3(Y, W).",
      "p2(X, Y) -> p3(Z, X).",
      "p2(X, Y) -> p3(Y, W).",
  });
  EXPECT_TRUE(IsWeaklyAcyclic(sigma));
}

TEST(WeakAcyclicity, GraphEdgesClassifyRegularAndSpecial) {
  DependencySet sigma = Sigma({"p(X, Y) -> q(X, Z)."});
  std::vector<PositionEdge> edges = BuildDependencyGraph(sigma);
  bool saw_regular = false, saw_special = false;
  for (const PositionEdge& e : edges) {
    EXPECT_EQ(e.from.relation, "p");
    EXPECT_EQ(e.from.index, 0u);  // X occurs in p at position 0 only
    if (e.special) {
      saw_special = true;
      EXPECT_EQ(e.to, (Position{"q", 1}));
    } else {
      saw_regular = true;
      EXPECT_EQ(e.to, (Position{"q", 0}));
    }
  }
  EXPECT_TRUE(saw_regular);
  EXPECT_TRUE(saw_special);
}

TEST(WeakAcyclicity, BodyOnlyVariablesAddNoEdges) {
  // Y never reaches the head: no edges from (p, 1).
  DependencySet sigma = Sigma({"p(X, Y) -> q(X, X)."});
  for (const PositionEdge& e : BuildDependencyGraph(sigma)) {
    EXPECT_NE(e.from, (Position{"p", 1}));
  }
}

TEST(WeakAcyclicity, PositionToString) {
  EXPECT_EQ((Position{"p", 2}).ToString(), "(p, 2)");
}

// --- edge cases around self-loops, repeated existentials, egd/tgd mixing ---

TEST(WeakAcyclicity, SpecialEdgeIntoDeadEndPositionAccepted) {
  // p(X, Y) -> p(X, Z): regular self-loop on (p, 0) plus a special edge
  // (p, 0) =>* (p, 1) — but nothing ever leaves (p, 1) (Y is body-only), so
  // no cycle passes through the special edge. The chase saturates.
  DependencySet sigma = Sigma({"p(X, Y) -> p(X, Z)."});
  EXPECT_TRUE(IsWeaklyAcyclic(sigma));
}

TEST(WeakAcyclicity, SpecialSelfLoopOnSinglePositionRejected) {
  // p(X, Y) -> p(Y, Z): Y sits at (p, 1) in the body and the existential Z
  // lands at (p, 1) in the head — a special edge from (p, 1) to itself, the
  // shortest possible special cycle.
  DependencySet sigma = Sigma({"p(X, Y) -> p(Y, Z)."});
  std::optional<SpecialCycle> cycle = FindSpecialCycle(sigma);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->edges.size(), 1u);  // self-loop: empty path back
  EXPECT_TRUE(cycle->edges.front().special);
  EXPECT_EQ(cycle->edges.front().from, (Position{"p", 1}));
  EXPECT_EQ(cycle->edges.front().to, (Position{"p", 1}));
  EXPECT_EQ(cycle->ToString(), "(p, 1) =>* (p, 1)");
}

TEST(WeakAcyclicity, RegularSelfLoopAloneAccepted) {
  // p(X, Y) -> p(Y, X) has regular self-loops only (both head vars
  // universal): weakly acyclic even though every position is on a cycle.
  DependencySet sigma = Sigma({"p(X, Y) -> p(Y, X).", "p(X, X) -> p(X, X)."});
  EXPECT_TRUE(IsWeaklyAcyclic(sigma));
  EXPECT_FALSE(FindSpecialCycle(sigma).has_value());
}

TEST(WeakAcyclicity, RepeatedExistentialVariableMakesOneSpecialTargetPerPosition) {
  // The same existential Z fills two head positions: both are special
  // targets of (p, 0).
  DependencySet sigma = Sigma({"p(X, Y) -> q(X, Z, Z)."});
  std::vector<PositionEdge> edges = BuildDependencyGraph(sigma);
  size_t special = 0;
  for (const PositionEdge& e : edges) {
    if (e.special) {
      ++special;
      EXPECT_EQ(e.from, (Position{"p", 0}));
      EXPECT_EQ(e.to.relation, "q");
      EXPECT_TRUE(e.to.index == 1 || e.to.index == 2);
    }
  }
  EXPECT_EQ(special, 2u);
  EXPECT_TRUE(IsWeaklyAcyclic(sigma));
}

TEST(WeakAcyclicity, RepeatedExistentialClosingCycleRejected) {
  DependencySet sigma = Sigma({
      "p(X, Y) -> q(X, Z, Z).",
      "q(X, Y, W) -> p(Y, X).",  // (q,1) flows back into (p,0)
  });
  EXPECT_FALSE(IsWeaklyAcyclic(sigma));
}

TEST(WeakAcyclicity, EgdsMixedWithTgdsCreateNoSpecialEdges) {
  // The egd touches the same predicates as the tgds but must contribute no
  // edges at all: the verdict is identical with and without it.
  DependencySet tgds = Sigma({
      "p(X, Y) -> q(Y, Z).",
      "q(X, Y) -> r(Y).",
  });
  DependencySet mixed = Sigma({
      "p(X, Y) -> q(Y, Z).",
      "q(X, Y) -> r(Y).",
      "q(X, Y), q(X, Z) -> Y = Z.",
  });
  EXPECT_EQ(BuildDependencyGraph(tgds).size(), BuildDependencyGraph(mixed).size());
  EXPECT_TRUE(IsWeaklyAcyclic(mixed));

  DependencySet bad_mixed = Sigma({
      "p(X, Y) -> p(Y, Z).",
      "p(X, Y), p(X, Z) -> Y = Z.",
  });
  EXPECT_FALSE(IsWeaklyAcyclic(bad_mixed));
}

// --- witness cycles ---

TEST(SpecialCycleWitness, SelfLoopWitnessIsSingleEdge) {
  std::optional<SpecialCycle> cycle =
      FindSpecialCycle(Sigma({"p(X, Y) -> p(Y, Z)."}));
  ASSERT_TRUE(cycle.has_value());
  ASSERT_GE(cycle->edges.size(), 1u);
  EXPECT_TRUE(cycle->edges.front().special);
  // The remaining edges lead from the special target back to the source.
  EXPECT_EQ(cycle->edges.back().to, cycle->edges.front().from);
}

TEST(SpecialCycleWitness, TwoStepWitnessRoundTrips) {
  std::optional<SpecialCycle> cycle = FindSpecialCycle(Sigma({
      "p(X, Y) -> q(Y, Z).",
      "q(X, Y) -> p(Y, Z).",
  }));
  ASSERT_TRUE(cycle.has_value());
  EXPECT_TRUE(cycle->edges.front().special);
  EXPECT_EQ(cycle->edges.back().to, cycle->edges.front().from);
  std::string text = cycle->ToString();
  EXPECT_NE(text.find("=>*"), std::string::npos) << text;
}

TEST(SpecialCycleWitness, DeterministicAcrossCalls) {
  DependencySet sigma = Sigma({
      "p(X, Y) -> q(Y, Z).",
      "q(X, Y) -> p(Y, Z).",
      "r(X, Y) -> r(Y, Z).",
  });
  std::optional<SpecialCycle> a = FindSpecialCycle(sigma);
  std::optional<SpecialCycle> b = FindSpecialCycle(sigma);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->ToString(), b->ToString());
}

// --- stratification ---

TEST(Stratification, WeaklyAcyclicImpliesStratified) {
  StratificationResult r = CheckStratification(Sigma({"p(X, Y) -> q(X, Z)."}));
  EXPECT_TRUE(r.weakly_acyclic);
  EXPECT_TRUE(r.stratified);
  EXPECT_FALSE(r.witness.has_value());
  EXPECT_TRUE(r.offending_component.empty());
}

TEST(Stratification, SelfFiringSpecialLoopNotStratified) {
  StratificationResult r = CheckStratification(Sigma({"p(X, Y) -> p(Y, Z)."}));
  EXPECT_FALSE(r.weakly_acyclic);
  EXPECT_FALSE(r.stratified);
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_TRUE(r.witness->edges.front().special);
  EXPECT_EQ(r.offending_component, std::vector<size_t>{0});
}

TEST(Stratification, MutualRecursionReportsBothMembers) {
  StratificationResult r = CheckStratification(Sigma({
      "p(X, Y) -> q(Y, Z).",
      "q(X, Y) -> p(Y, Z).",
  }));
  EXPECT_FALSE(r.stratified);
  EXPECT_EQ(r.offending_component, (std::vector<size_t>{0, 1}));
}

TEST(Stratification, ConstantClashSeversFiringEdge) {
  // Globally there is a special cycle (p,0) =>* (q,1) -> (p,0), but the
  // first tgd only writes q-tuples ending in 2 while the second only reads
  // q-tuples ending in 3: the firing graph is acyclic, every component is
  // weakly acyclic on its own, and the chase terminates by stratification.
  StratificationResult r = CheckStratification(Sigma({
      "p(X, 1) -> q(X, Z, 2).",
      "q(X, Y, 3) -> p(Y, 1).",
  }));
  EXPECT_FALSE(r.weakly_acyclic);
  EXPECT_TRUE(r.stratified);
  // The informational witness carries the global cycle.
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_TRUE(r.witness->edges.front().special);
  EXPECT_TRUE(r.offending_component.empty());
}

TEST(Stratification, MatchingConstantsKeepFiringEdge) {
  // Same shape but the constants agree: the cycle is real.
  StratificationResult r = CheckStratification(Sigma({
      "p(X, 1) -> q(X, Z, 2).",
      "q(X, Y, 2) -> p(Y, 1).",
  }));
  EXPECT_FALSE(r.weakly_acyclic);
  EXPECT_FALSE(r.stratified);
  EXPECT_EQ(r.offending_component, (std::vector<size_t>{0, 1}));
}

TEST(Stratification, EgdBridgesComponents) {
  // The egd rewrites q-tuples (wildcard writes), so it may enable the
  // q-reader even though the q-writer's constants clash — the egd glues all
  // three into one component and the cycle is flagged.
  StratificationResult r = CheckStratification(Sigma({
      "p(X, 1) -> q(X, Z, 2).",
      "q(X, Y, 3) -> p(Y, 1).",
      "q(X, Y, W), q(X, Y2, W2) -> Y = Y2.",
  }));
  EXPECT_FALSE(r.weakly_acyclic);
  EXPECT_FALSE(r.stratified);
}

}  // namespace
}  // namespace sqleq
