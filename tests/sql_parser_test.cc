// Unit tests for the SQL parser (SELECT and CREATE TABLE fragment).
#include "sql/sql_parser.h"

#include <gtest/gtest.h>

namespace sqleq {
namespace sql {
namespace {

template <typename T>
T Must(Result<T> r) {
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok()) std::abort();
  return std::move(r).value();
}

TEST(SqlParseSelect, Basic) {
  SelectStatement s = Must(ParseSelect("SELECT a FROM t"));
  EXPECT_FALSE(s.distinct);
  ASSERT_EQ(s.items.size(), 1u);
  EXPECT_EQ(s.items[0].kind, SelectItem::Kind::kColumn);
  EXPECT_EQ(s.items[0].column.column, "a");
  ASSERT_EQ(s.from.size(), 1u);
  EXPECT_EQ(s.from[0].table, "t");
  EXPECT_EQ(s.from[0].alias, "t");
}

TEST(SqlParseSelect, DistinctAndQualifiedColumns) {
  SelectStatement s = Must(ParseSelect("SELECT DISTINCT t.a, u.b FROM t, u"));
  EXPECT_TRUE(s.distinct);
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[0].column.qualifier, "t");
  EXPECT_EQ(s.items[1].column.ToString(), "u.b");
}

TEST(SqlParseSelect, AliasesWithAndWithoutAs) {
  SelectStatement s = Must(ParseSelect("SELECT x.a FROM t AS x, u y"));
  EXPECT_EQ(s.from[0].alias, "x");
  EXPECT_EQ(s.from[1].alias, "y");
}

TEST(SqlParseSelect, WhereEqualityChain) {
  SelectStatement s =
      Must(ParseSelect("SELECT a FROM t, u WHERE t.a = u.b AND u.c = 5 AND 'x' = t.d"));
  ASSERT_EQ(s.where.size(), 3u);
  EXPECT_TRUE(std::holds_alternative<ColumnRef>(s.where[0].lhs));
  EXPECT_TRUE(std::holds_alternative<Literal>(s.where[1].rhs));
  EXPECT_TRUE(std::holds_alternative<Literal>(s.where[2].lhs));
}

TEST(SqlParseSelect, Aggregates) {
  SelectStatement s = Must(ParseSelect("SELECT d, SUM(sal) FROM emp GROUP BY d"));
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[1].kind, SelectItem::Kind::kAggregate);
  EXPECT_EQ(s.items[1].aggregate_function, "SUM");
  EXPECT_EQ(s.items[1].column.column, "sal");
  ASSERT_EQ(s.group_by.size(), 1u);
  EXPECT_EQ(s.group_by[0].column, "d");
}

TEST(SqlParseSelect, CountStar) {
  SelectStatement s = Must(ParseSelect("SELECT COUNT(*) FROM t"));
  EXPECT_EQ(s.items[0].kind, SelectItem::Kind::kCountStar);
}

TEST(SqlParseSelect, StarOnlyForCount) {
  EXPECT_FALSE(ParseSelect("SELECT MAX(*) FROM t").ok());
}

TEST(SqlParseSelect, LiteralsAndOutputAliases) {
  SelectStatement s = Must(ParseSelect("SELECT 1 AS one, a AS alpha FROM t"));
  EXPECT_EQ(s.items[0].kind, SelectItem::Kind::kLiteral);
  EXPECT_EQ(s.items[0].output_alias, "one");
  EXPECT_EQ(s.items[1].output_alias, "alpha");
}

TEST(SqlParseSelect, TrailingSemicolonOk) {
  EXPECT_TRUE(ParseSelect("SELECT a FROM t;").ok());
}

TEST(SqlParseSelect, Rejections) {
  EXPECT_FALSE(ParseSelect("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT a").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE a").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t GROUP a").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t extra garbage ,").ok());
}

TEST(SqlParseSelect, ExplicitJoinOnBecomesWhere) {
  SelectStatement s = Must(ParseSelect(
      "SELECT e.id FROM emp e JOIN dept d ON e.dept = d.id AND d.mgr = 7"));
  ASSERT_EQ(s.from.size(), 2u);
  EXPECT_EQ(s.from[1].alias, "d");
  ASSERT_EQ(s.where.size(), 2u);
}

TEST(SqlParseSelect, InnerJoinChain) {
  SelectStatement s = Must(ParseSelect(
      "SELECT a.x FROM t1 a INNER JOIN t2 b ON a.x = b.x JOIN t3 c ON b.y = c.y"));
  EXPECT_EQ(s.from.size(), 3u);
  EXPECT_EQ(s.where.size(), 2u);
}

TEST(SqlParseSelect, JoinMixedWithCommaAndWhere) {
  SelectStatement s = Must(ParseSelect(
      "SELECT a.x FROM t1 a JOIN t2 b ON a.x = b.x, t3 c WHERE c.y = 1"));
  EXPECT_EQ(s.from.size(), 3u);
  EXPECT_EQ(s.where.size(), 2u);
}

TEST(SqlParseSelect, JoinWithoutOnRejected) {
  EXPECT_FALSE(ParseSelect("SELECT a.x FROM t1 a JOIN t2 b").ok());
}

TEST(SqlParseSelect, SelectStar) {
  SelectStatement s = Must(ParseSelect("SELECT * FROM t"));
  EXPECT_TRUE(s.select_star);
  EXPECT_TRUE(s.items.empty());
  // '*' mixed with items is rejected (trailing input).
  EXPECT_FALSE(ParseSelect("SELECT *, a FROM t").ok());
}

TEST(SqlParseCreate, ColumnsAndTypes) {
  CreateTableStatement s =
      Must(ParseCreateTable("CREATE TABLE emp (id INT, name VARCHAR(40))"));
  EXPECT_EQ(s.table, "emp");
  ASSERT_EQ(s.columns.size(), 2u);
  EXPECT_EQ(s.columns[0].name, "id");
  EXPECT_EQ(s.columns[0].type, "INT");
  EXPECT_EQ(s.columns[1].type, "VARCHAR");
}

TEST(SqlParseCreate, InlineConstraints) {
  CreateTableStatement s = Must(ParseCreateTable(
      "CREATE TABLE emp (id INT PRIMARY KEY, ssn INT UNIQUE, note TEXT NOT NULL)"));
  EXPECT_TRUE(s.columns[0].primary_key);
  EXPECT_TRUE(s.columns[1].unique);
  EXPECT_FALSE(s.columns[2].primary_key);
}

TEST(SqlParseCreate, TableConstraints) {
  CreateTableStatement s = Must(ParseCreateTable(
      "CREATE TABLE t (a INT, b INT, c INT, PRIMARY KEY (a, b), UNIQUE (c), "
      "FOREIGN KEY (c) REFERENCES u (x))"));
  ASSERT_EQ(s.constraints.size(), 3u);
  EXPECT_EQ(s.constraints[0].kind, TableConstraint::Kind::kPrimaryKey);
  EXPECT_EQ(s.constraints[0].columns, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(s.constraints[1].kind, TableConstraint::Kind::kUnique);
  EXPECT_EQ(s.constraints[2].kind, TableConstraint::Kind::kForeignKey);
  EXPECT_EQ(s.constraints[2].ref_table, "u");
  EXPECT_EQ(s.constraints[2].ref_columns, (std::vector<std::string>{"x"}));
}

TEST(SqlParseCreate, Rejections) {
  EXPECT_FALSE(ParseCreateTable("CREATE TABLE t").ok());
  EXPECT_FALSE(ParseCreateTable("CREATE t (a INT)").ok());
  EXPECT_FALSE(ParseCreateTable("CREATE TABLE t (a INT").ok());
}

TEST(SqlParseStatement, Dispatch) {
  Statement s1 = Must(ParseStatement("SELECT a FROM t"));
  EXPECT_TRUE(std::holds_alternative<SelectStatement>(s1));
  Statement s2 = Must(ParseStatement("CREATE TABLE t (a INT)"));
  EXPECT_TRUE(std::holds_alternative<CreateTableStatement>(s2));
}

TEST(SqlParseScript, SplitsOnSemicolons) {
  std::vector<Statement> stmts = Must(
      ParseScript("CREATE TABLE t (a INT);\nCREATE TABLE u (b INT);\nSELECT a FROM t;"));
  ASSERT_EQ(stmts.size(), 3u);
  EXPECT_TRUE(std::holds_alternative<SelectStatement>(stmts[2]));
}

TEST(SqlParseScript, EmptyStatementsIgnored) {
  std::vector<Statement> stmts = Must(ParseScript(";;  SELECT a FROM t ;; "));
  EXPECT_EQ(stmts.size(), 1u);
}

}  // namespace
}  // namespace sql
}  // namespace sqleq
