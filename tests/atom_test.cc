// Unit tests for Atom.
#include "ir/atom.h"

#include <gtest/gtest.h>

namespace sqleq {
namespace {

Atom PXY() { return Atom("p", {Term::Var("X"), Term::Var("Y")}); }

TEST(Atom, Accessors) {
  Atom a = PXY();
  EXPECT_EQ(a.predicate(), "p");
  EXPECT_EQ(a.arity(), 2u);
  EXPECT_EQ(a.args()[0], Term::Var("X"));
}

TEST(Atom, EqualityIsStructural) {
  EXPECT_EQ(PXY(), PXY());
  EXPECT_NE(PXY(), Atom("p", {Term::Var("Y"), Term::Var("X")}));
  EXPECT_NE(PXY(), Atom("q", {Term::Var("X"), Term::Var("Y")}));
}

TEST(Atom, HashMatchesEquality) {
  EXPECT_EQ(PXY().Hash(), PXY().Hash());
}

TEST(Atom, IsGround) {
  EXPECT_FALSE(PXY().IsGround());
  EXPECT_TRUE(Atom("p", {Term::Int(1), Term::Str("a")}).IsGround());
}

TEST(Atom, ToString) {
  EXPECT_EQ(PXY().ToString(), "p(X, Y)");
  EXPECT_EQ(Atom("r", {Term::Int(1)}).ToString(), "r(1)");
}

TEST(Atom, CollectVariablesKeepsDuplicates) {
  Atom a("p", {Term::Var("X"), Term::Int(1), Term::Var("X")});
  std::vector<Term> vars;
  a.CollectVariables(&vars);
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0], Term::Var("X"));
  EXPECT_EQ(vars[1], Term::Var("X"));
}

TEST(Atom, AtomsToStringJoinsWithCommas) {
  std::vector<Atom> atoms{PXY(), Atom("r", {Term::Var("X")})};
  EXPECT_EQ(AtomsToString(atoms), "p(X, Y), r(X)");
}

TEST(Atom, DistinctVariablesFirstOccurrenceOrder) {
  std::vector<Atom> atoms{Atom("p", {Term::Var("B"), Term::Var("A")}),
                          Atom("q", {Term::Var("A"), Term::Var("C")})};
  std::vector<Term> vars = DistinctVariables(atoms);
  ASSERT_EQ(vars.size(), 3u);
  EXPECT_EQ(vars[0], Term::Var("B"));
  EXPECT_EQ(vars[1], Term::Var("A"));
  EXPECT_EQ(vars[2], Term::Var("C"));
}

TEST(Atom, DistinctVariablesIgnoresConstants) {
  std::vector<Atom> atoms{Atom("p", {Term::Int(1), Term::Str("x")})};
  EXPECT_TRUE(DistinctVariables(atoms).empty());
}

TEST(Atom, OrderingByPredicateThenArgs) {
  Atom p1("p", {Term::Var("X")});
  Atom q1("q", {Term::Var("X")});
  EXPECT_TRUE(p1 < q1 || q1 < p1);
  EXPECT_FALSE(p1 < p1);
}

}  // namespace
}  // namespace sqleq
