// Unit tests for homomorphism search and containment mappings (§2.1).
#include "chase/homomorphism.h"

#include <gtest/gtest.h>

#include "ir/parser.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::Q;
using testing::Unwrap;

std::vector<Atom> Atoms(std::string_view text) {
  return Unwrap(ParseAtoms(text), "ParseAtoms");
}

TEST(Homomorphism, IdentityAlwaysExists) {
  std::vector<Atom> a = Atoms("p(X, Y), r(X)");
  EXPECT_TRUE(HomomorphismExists(a, a));
}

TEST(Homomorphism, VariableCollapse) {
  // p(X, Y) maps into p(Z, Z) via X,Y -> Z.
  EXPECT_TRUE(HomomorphismExists(Atoms("p(X, Y)"), Atoms("p(Z, Z)")));
  // But not vice versa: p(Z, Z) needs a target with equal arguments.
  EXPECT_FALSE(HomomorphismExists(Atoms("p(Z, Z)"), Atoms("p(X, Y)")));
}

TEST(Homomorphism, ConstantsMustMatchExactly) {
  EXPECT_TRUE(HomomorphismExists(Atoms("p(X, 1)"), Atoms("p(a, 1)")));
  EXPECT_FALSE(HomomorphismExists(Atoms("p(X, 1)"), Atoms("p(a, 2)")));
  // A variable may map to a constant:
  EXPECT_TRUE(HomomorphismExists(Atoms("p(X, Y)"), Atoms("p(1, 2)")));
}

TEST(Homomorphism, PredicateMismatch) {
  EXPECT_FALSE(HomomorphismExists(Atoms("p(X)"), Atoms("q(X)")));
}

TEST(Homomorphism, ArityMismatchIsNoTarget) {
  EXPECT_FALSE(HomomorphismExists(Atoms("p(X)"), Atoms("p(X, Y)")));
}

TEST(Homomorphism, JoinStructureRespected) {
  // Chain of length 2 maps into a triangle, but not into two disjoint edges.
  std::vector<Atom> chain = Atoms("e(X, Y), e(Y, Z)");
  EXPECT_TRUE(HomomorphismExists(chain, Atoms("e(A, B), e(B, C), e(C, A)")));
  EXPECT_FALSE(HomomorphismExists(chain, Atoms("e(A, B), e(C, D)")));
}

TEST(Homomorphism, FixedBindingsRestrict) {
  std::vector<Atom> from = Atoms("p(X, Y)");
  std::vector<Atom> to = Atoms("p(A, B), p(C, D)");
  TermMap fixed{{Term::Var("X"), Term::Var("C")}};
  std::optional<TermMap> h = FindHomomorphism(from, to, fixed);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->at(Term::Var("Y")), Term::Var("D"));
}

TEST(Homomorphism, ForEachEnumeratesAllDistinctMaps) {
  std::vector<Atom> from = Atoms("p(X)");
  std::vector<Atom> to = Atoms("p(A), p(B), p(C)");
  int count = 0;
  ForEachHomomorphism(from, to, TermMap(), [&count](const TermMap&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 3);
}

TEST(Homomorphism, ForEachDeduplicatesEqualMaps) {
  // Two identical target atoms induce the same term map once.
  std::vector<Atom> from = Atoms("p(X)");
  std::vector<Atom> to = Atoms("p(A), p(A)");
  int count = 0;
  ForEachHomomorphism(from, to, TermMap(), [&count](const TermMap&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);
}

TEST(Homomorphism, EarlyStopHonored) {
  std::vector<Atom> from = Atoms("p(X)");
  std::vector<Atom> to = Atoms("p(A), p(B)");
  int count = 0;
  ForEachHomomorphism(from, to, TermMap(), [&count](const TermMap&) {
    ++count;
    return false;
  });
  EXPECT_EQ(count, 1);
}

TEST(ContainmentMapping, ChandraMerlinDirection) {
  // Q2 ⊒S Q1 via containment mapping Q2 → Q1: Q1 has an extra atom.
  ConjunctiveQuery q1 = Q("Q(X) :- p(X, Y), r(X).");
  ConjunctiveQuery q2 = Q("Q(X) :- p(X, Y).");
  EXPECT_TRUE(ContainmentMappingExists(q2, q1));
  EXPECT_FALSE(ContainmentMappingExists(q1, q2));
}

TEST(ContainmentMapping, HeadMustMapPositionally) {
  ConjunctiveQuery from = Q("Q(X, Y) :- p(X, Y).");
  ConjunctiveQuery to = Q("Q(A, A) :- p(A, A).");
  EXPECT_TRUE(ContainmentMappingExists(from, to));
  EXPECT_FALSE(ContainmentMappingExists(to, from));
}

TEST(ContainmentMapping, HeadArityMismatch) {
  ConjunctiveQuery from = Q("Q(X, Y) :- p(X, Y).");
  ConjunctiveQuery to = Q("Q(A) :- p(A, B).");
  EXPECT_FALSE(ContainmentMappingExists(from, to));
}

TEST(ContainmentMapping, HeadConstants) {
  ConjunctiveQuery from = Q("Q(1) :- p(X).");
  ConjunctiveQuery same = Q("Q(1) :- p(Y).");
  ConjunctiveQuery diff = Q("Q(2) :- p(Y).");
  EXPECT_TRUE(ContainmentMappingExists(from, same));
  EXPECT_FALSE(ContainmentMappingExists(from, diff));
}

TEST(ContainmentMapping, ReturnsTheWitness) {
  ConjunctiveQuery from = Q("Q(X) :- p(X, Y).");
  ConjunctiveQuery to = Q("Q(A) :- p(A, B), p(A, 7).");
  std::optional<TermMap> h = FindContainmentMapping(from, to);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->at(Term::Var("X")), Term::Var("A"));
}

}  // namespace
}  // namespace sqleq
