// Unit tests for the Datalog-style parser and the printing helpers.
#include "ir/parser.h"

#include <gtest/gtest.h>

#include "ir/printer.h"
#include "test_util.h"

namespace sqleq {
namespace {

TEST(ParseQuery, SimpleQuery) {
  Result<ConjunctiveQuery> q = ParseQuery("Q(X) :- p(X, Y).");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->name(), "Q");
  ASSERT_EQ(q->head().size(), 1u);
  EXPECT_EQ(q->head()[0], Term::Var("X"));
  ASSERT_EQ(q->body().size(), 1u);
  EXPECT_EQ(q->body()[0].ToString(), "p(X, Y)");
}

TEST(ParseQuery, TrailingPeriodOptional) {
  EXPECT_TRUE(ParseQuery("Q(X) :- p(X, Y)").ok());
}

TEST(ParseQuery, MultipleAtomsAndAndKeyword) {
  Result<ConjunctiveQuery> q = ParseQuery("Q(X) :- p(X, Y) AND r(X), s(X, Z).");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->body().size(), 3u);
}

TEST(ParseQuery, ConstantsInBodyAndHead) {
  Result<ConjunctiveQuery> q = ParseQuery("Q(X, 1, 'lit') :- p(X, 2), r(abc).");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->head()[1], Term::Int(1));
  EXPECT_EQ(q->head()[2], Term::Str("lit"));
  EXPECT_EQ(q->body()[0].args()[1], Term::Int(2));
  // Lowercase bare identifier is a string constant.
  EXPECT_EQ(q->body()[1].args()[0], Term::Str("abc"));
}

TEST(ParseQuery, NegativeIntegerConstant) {
  Result<ConjunctiveQuery> q = ParseQuery("Q(X) :- p(X, -5).");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->body()[0].args()[1], Term::Int(-5));
}

TEST(ParseQuery, UnderscoreStartsVariable) {
  Result<ConjunctiveQuery> q = ParseQuery("Q(X) :- p(X, _y).");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->body()[0].args()[1].IsVariable());
}

TEST(ParseQuery, RejectsUnsafeQuery) {
  EXPECT_FALSE(ParseQuery("Q(Z) :- p(X, Y).").ok());
}

TEST(ParseQuery, RejectsAggregateHead) {
  EXPECT_FALSE(ParseQuery("Q(X, sum(Y)) :- p(X, Y).").ok());
}

TEST(ParseQuery, RejectsGarbage) {
  EXPECT_FALSE(ParseQuery("Q(X) :-").ok());
  EXPECT_FALSE(ParseQuery("Q(X)").ok());
  EXPECT_FALSE(ParseQuery("Q(X) :- p(X, Y) extra").ok());
  EXPECT_FALSE(ParseQuery("Q(X) :- p(X, Y,)").ok());
  EXPECT_FALSE(ParseQuery("Q(X) :- p(X 'unterminated").ok());
}

TEST(ParseAggregateQuery, SumWithGrouping) {
  Result<AggregateQuery> q = ParseAggregateQuery("A(S, sum(Y)) :- p(S, Y).");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->function(), AggregateFunction::kSum);
  ASSERT_EQ(q->grouping().size(), 1u);
  EXPECT_EQ(*q->agg_arg(), Term::Var("Y"));
}

TEST(ParseAggregateQuery, CountStar) {
  Result<AggregateQuery> q = ParseAggregateQuery("A(S, count(*)) :- p(S, Y).");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->function(), AggregateFunction::kCountStar);
  EXPECT_FALSE(q->agg_arg().has_value());
}

TEST(ParseAggregateQuery, AllFunctions) {
  EXPECT_EQ(testing::AQ("A(X, count(Y)) :- p(X, Y).").function(),
            AggregateFunction::kCount);
  EXPECT_EQ(testing::AQ("A(X, max(Y)) :- p(X, Y).").function(), AggregateFunction::kMax);
  EXPECT_EQ(testing::AQ("A(X, min(Y)) :- p(X, Y).").function(), AggregateFunction::kMin);
}

TEST(ParseAggregateQuery, AggregateMustBeLast) {
  EXPECT_FALSE(ParseAggregateQuery("A(sum(Y), S) :- p(S, Y).").ok());
}

TEST(ParseAggregateQuery, RequiresAnAggregate) {
  EXPECT_FALSE(ParseAggregateQuery("A(S) :- p(S, Y).").ok());
}

TEST(ParseAggregateQuery, StarOnlyForCount) {
  EXPECT_FALSE(ParseAggregateQuery("A(sum(*)) :- p(S, Y).").ok());
}

TEST(ParseDependencyText, SimpleTgd) {
  Result<ParsedDependency> d = ParseDependencyText("p(X, Y) -> r(X).");
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(d->is_egd());
  EXPECT_EQ(d->body.size(), 1u);
  EXPECT_EQ(d->head_atoms.size(), 1u);
}

TEST(ParseDependencyText, TgdWithExistsPrefix) {
  Result<ParsedDependency> d =
      ParseDependencyText("p(X, Y) -> EXISTS Z, W: s(X, Z), t(Z, W).");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->head_atoms.size(), 2u);
}

TEST(ParseDependencyText, ExistsWithoutColon) {
  Result<ParsedDependency> d = ParseDependencyText("p(X, Y) -> exists Z s(X, Z).");
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->head_atoms.size(), 1u);
}

TEST(ParseDependencyText, Egd) {
  Result<ParsedDependency> d = ParseDependencyText("r(X, Y), r(X, Z) -> Y = Z.");
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->is_egd());
  ASSERT_EQ(d->equations.size(), 1u);
  EXPECT_EQ(d->equations[0].first, Term::Var("Y"));
  EXPECT_EQ(d->equations[0].second, Term::Var("Z"));
}

TEST(ParseDependencyText, MultiEquationEgd) {
  Result<ParsedDependency> d =
      ParseDependencyText("p(X, Y, Z), p(X, Y2, Z2) -> Y = Y2, Z = Z2.");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->equations.size(), 2u);
}

TEST(ParseDependencyText, RejectsMixedConclusion) {
  EXPECT_FALSE(ParseDependencyText("p(X, Y) -> r(X), X = Y.").ok());
}

TEST(ParseDependencyText, RejectsMissingArrow) {
  EXPECT_FALSE(ParseDependencyText("p(X, Y) r(X).").ok());
}

TEST(ParseAtoms, Conjunction) {
  Result<std::vector<Atom>> atoms = ParseAtoms("p(X, Y), q(Y)");
  ASSERT_TRUE(atoms.ok());
  EXPECT_EQ(atoms->size(), 2u);
}

TEST(ParseTermFn, Forms) {
  EXPECT_EQ(*ParseTerm("X1"), Term::Var("X1"));
  EXPECT_EQ(*ParseTerm("42"), Term::Int(42));
  EXPECT_EQ(*ParseTerm("'hi'"), Term::Str("hi"));
  EXPECT_EQ(*ParseTerm("abc"), Term::Str("abc"));
  EXPECT_FALSE(ParseTerm("X Y").ok());
}

TEST(Printer, TermMapToStringSorted) {
  TermMap m{{Term::Var("B"), Term::Var("C")}, {Term::Var("A"), Term::Int(1)}};
  EXPECT_EQ(TermMapToString(m), "{A -> 1, B -> C}");
}

TEST(Printer, QueriesToString) {
  std::vector<ConjunctiveQuery> qs{testing::Q("Q(X) :- p(X, Y).")};
  EXPECT_EQ(QueriesToString(qs), "Q(X) :- p(X, Y).\n");
}

TEST(Printer, AlignedTable) {
  std::string t = AlignedTable({{"ab", "1"}, {"a", "2"}});
  EXPECT_NE(t.find("ab  1"), std::string::npos);
  EXPECT_NE(t.find("a   2"), std::string::npos);
}

TEST(ParseRoundTrip, QueryToStringReparses) {
  ConjunctiveQuery q = testing::Q("Q(X, Y) :- p(X, Z), q(Z, Y), r(X).");
  ConjunctiveQuery q2 = testing::Q(q.ToString());
  EXPECT_TRUE(q.SameUpToAtomOrder(q2));
}

TEST(ParseRoundTrip, DependencyToStringReparses) {
  DependencySet sigma = testing::Sigma({"p(X, Y) -> EXISTS Z: s(X, Z)."});
  ASSERT_EQ(sigma.size(), 1u);
  Result<std::vector<Dependency>> again = ParseDependency(sigma[0].tgd().ToString());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ((*again)[0].tgd().head().size(), 1u);
}

}  // namespace
}  // namespace sqleq
