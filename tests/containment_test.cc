// Unit tests for Chandra–Merlin set containment / equivalence.
#include "equivalence/containment.h"

#include <gtest/gtest.h>

#include "db/eval.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::Q;
using testing::Unwrap;

TEST(SetContainment, MoreAtomsContainedInFewer) {
  ConjunctiveQuery narrow = Q("Q(X) :- p(X, Y), r(X).");
  ConjunctiveQuery wide = Q("Q(X) :- p(X, Y).");
  EXPECT_TRUE(SetContained(narrow, wide));
  EXPECT_FALSE(SetContained(wide, narrow));
}

TEST(SetContainment, Reflexive) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");
  EXPECT_TRUE(SetContained(q, q));
}

TEST(SetContainment, SharedVariableNamesDoNotConfuse) {
  // Both queries use X and Y with different roles; RenameApart must keep
  // the test honest.
  ConjunctiveQuery a = Q("Q(X) :- p(X, Y), p(Y, X).");
  ConjunctiveQuery b = Q("Q(Y) :- p(Y, X).");
  EXPECT_TRUE(SetContained(a, b));
  EXPECT_FALSE(SetContained(b, a));
}

TEST(SetContainment, ChainIntoCycle) {
  ConjunctiveQuery cycle = Q("Q(X) :- e(X, Y), e(Y, X).");
  ConjunctiveQuery chain = Q("Q(X) :- e(X, Y), e(Y, Z).");
  // cycle ⊑ chain (map chain into cycle), not vice versa.
  EXPECT_TRUE(SetContained(cycle, chain));
  EXPECT_FALSE(SetContained(chain, cycle));
}

TEST(SetEquivalence, RedundantAtomIsEquivalent) {
  ConjunctiveQuery a = Q("Q(X) :- p(X, Y).");
  ConjunctiveQuery b = Q("Q(X) :- p(X, Y), p(X, Z).");
  EXPECT_TRUE(SetEquivalent(a, b));
}

TEST(SetEquivalence, DifferentAnswersNotEquivalent) {
  ConjunctiveQuery a = Q("Q(X) :- p(X, Y).");
  ConjunctiveQuery b = Q("Q(Y) :- p(X, Y).");
  EXPECT_FALSE(SetEquivalent(a, b));
}

TEST(SetEquivalence, ConstantSpecialization) {
  ConjunctiveQuery a = Q("Q(X) :- p(X, 1).");
  ConjunctiveQuery b = Q("Q(X) :- p(X, Y).");
  EXPECT_TRUE(SetContained(a, b));
  EXPECT_FALSE(SetContained(b, a));
  EXPECT_FALSE(SetEquivalent(a, b));
}

TEST(SetContainment, AgreesWithEvaluationOnCanonicalDatabase) {
  // Soundness sanity: if Q1 ⊑S Q2, then on D(Q1) the head tuple of Q1 is in
  // Q2's answer (the Chandra–Merlin argument run through the oracle).
  ConjunctiveQuery q1 = Q("Q(X) :- p(X, Y), r(X).");
  ConjunctiveQuery q2 = Q("Q(X) :- p(X, Y).");
  ASSERT_TRUE(SetContained(q1, q2));
  CanonicalDatabase canon = Unwrap(BuildCanonicalDatabase(
      q1, Unwrap(InferSchema({q1, q2}))));
  Bag a1 = Unwrap(Evaluate(q1, canon.database, Semantics::kSet));
  Bag a2 = Unwrap(Evaluate(q2, canon.database, Semantics::kSet));
  for (const auto& [t, _] : a1.counts()) {
    EXPECT_GT(a2.Count(t), 0u) << TupleToString(t);
  }
}

}  // namespace
}  // namespace sqleq
