// Unit tests for SQL → CQ / aggregate-CQ translation, catalog building, and
// the SQL-standard semantics selection (§1, §2.2 of the paper).
#include "sql/translate.h"

#include <gtest/gtest.h>

#include "constraints/keys.h"
#include "test_util.h"

namespace sqleq {
namespace sql {
namespace {

template <typename T>
T Must(Result<T> r) {
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok()) std::abort();
  return std::move(r).value();
}

Catalog TestCatalog() {
  return Must(CatalogFromScript(R"(
    CREATE TABLE dept (id INT PRIMARY KEY, mgr INT);
    CREATE TABLE emp (id INT PRIMARY KEY, dept INT, salary INT,
                      FOREIGN KEY (dept) REFERENCES dept (id));
    CREATE TABLE log (emp INT, action TEXT);
  )"));
}

TEST(CatalogBuild, SchemaShape) {
  Catalog c = TestCatalog();
  EXPECT_EQ(c.schema.ArityOf("emp"), 3u);
  EXPECT_EQ(c.schema.ArityOf("dept"), 2u);
  EXPECT_EQ(c.schema.ArityOf("log"), 2u);
  // PRIMARY KEY ⇒ set valued (the paper's SQL-standard reading).
  EXPECT_TRUE(c.schema.IsSetValued("emp"));
  EXPECT_TRUE(c.schema.IsSetValued("dept"));
  // No key clause ⇒ bag valued.
  EXPECT_FALSE(c.schema.IsSetValued("log"));
}

TEST(CatalogBuild, KeyEgdsGenerated) {
  Catalog c = TestCatalog();
  std::vector<Fd> fds = ExtractFds(c.sigma);
  EXPECT_TRUE(IsSuperkey("emp", 3, {0}, fds));
  EXPECT_TRUE(IsSuperkey("dept", 2, {0}, fds));
}

TEST(CatalogBuild, ForeignKeyBecomesInclusionTgd) {
  Catalog c = TestCatalog();
  bool found = false;
  for (const Dependency& d : c.sigma) {
    if (d.IsTgd() && d.tgd().body()[0].predicate() == "emp" &&
        d.tgd().head()[0].predicate() == "dept") {
      found = true;
      // emp.dept (position 1) flows into dept.id (position 0).
      EXPECT_EQ(d.tgd().body()[0].args()[1], d.tgd().head()[0].args()[0]);
    }
  }
  EXPECT_TRUE(found);
}

TEST(CatalogBuild, Rejections) {
  EXPECT_FALSE(CatalogFromScript("CREATE TABLE t (a INT, a INT)").ok());
  EXPECT_FALSE(CatalogFromScript("SELECT a FROM t").ok());
  EXPECT_FALSE(
      CatalogFromScript("CREATE TABLE t (a INT, FOREIGN KEY (a) REFERENCES zz (b))")
          .ok());
  EXPECT_FALSE(
      CatalogFromScript("CREATE TABLE t (a INT, PRIMARY KEY (nope))").ok());
}

TEST(TranslateSelectTest, PlainJoinBecomesCq) {
  Catalog c = TestCatalog();
  TranslatedQuery t = Must(TranslateSql(
      "SELECT e.id FROM emp e, dept d WHERE e.dept = d.id", c));
  ASSERT_FALSE(t.is_aggregate);
  EXPECT_EQ(t.cq->body().size(), 2u);
  // Join condition realized as a shared variable.
  Term join_var = t.cq->body()[0].args()[1];
  EXPECT_EQ(t.cq->body()[1].args()[0], join_var);
  // Head is the emp id variable.
  ASSERT_EQ(t.cq->head().size(), 1u);
  EXPECT_EQ(t.cq->head()[0], t.cq->body()[0].args()[0]);
}

TEST(TranslateSelectTest, SemanticsSelection) {
  Catalog c = TestCatalog();
  // DISTINCT → set.
  EXPECT_EQ(Must(TranslateSql("SELECT DISTINCT id FROM emp", c)).semantics,
            Semantics::kSet);
  // All set-valued tables → bag-set.
  EXPECT_EQ(Must(TranslateSql("SELECT id FROM emp", c)).semantics,
            Semantics::kBagSet);
  // A bag-valued table in FROM → bag.
  EXPECT_EQ(Must(TranslateSql("SELECT emp FROM log", c)).semantics, Semantics::kBag);
}

TEST(TranslateSelectTest, LiteralConditionBindsConstant) {
  Catalog c = TestCatalog();
  TranslatedQuery t =
      Must(TranslateSql("SELECT id FROM emp WHERE salary = 100", c));
  EXPECT_EQ(t.cq->body()[0].args()[2], Term::Int(100));
}

TEST(TranslateSelectTest, TransitiveEqualitiesUnify) {
  Catalog c = TestCatalog();
  TranslatedQuery t = Must(TranslateSql(
      "SELECT e1.id FROM emp e1, emp e2 WHERE e1.dept = e2.dept AND e2.dept = 7", c));
  EXPECT_EQ(t.cq->body()[0].args()[1], Term::Int(7));
  EXPECT_EQ(t.cq->body()[1].args()[1], Term::Int(7));
}

TEST(TranslateSelectTest, ContradictoryWhereRejected) {
  Catalog c = TestCatalog();
  EXPECT_FALSE(TranslateSql("SELECT id FROM emp WHERE salary = 1 AND salary = 2", c)
                   .ok());
}

TEST(TranslateSelectTest, UnqualifiedColumnResolution) {
  Catalog c = TestCatalog();
  TranslatedQuery t = Must(TranslateSql("SELECT salary FROM emp", c));
  EXPECT_EQ(t.cq->head()[0], t.cq->body()[0].args()[2]);
  // Ambiguous across tables:
  EXPECT_FALSE(TranslateSql("SELECT id FROM emp, dept", c).ok());
  // Unknown column:
  EXPECT_FALSE(TranslateSql("SELECT nope FROM emp", c).ok());
  // Unknown alias:
  EXPECT_FALSE(TranslateSql("SELECT zz.id FROM emp", c).ok());
  // Unknown table:
  EXPECT_FALSE(TranslateSql("SELECT a FROM missing", c).ok());
  // Duplicate alias:
  EXPECT_FALSE(TranslateSql("SELECT e.id FROM emp e, dept e", c).ok());
}

TEST(TranslateSelectTest, SelfJoinGetsDistinctVariables) {
  Catalog c = TestCatalog();
  TranslatedQuery t =
      Must(TranslateSql("SELECT e1.id, e2.id FROM emp e1, emp e2", c));
  EXPECT_NE(t.cq->body()[0].args()[0], t.cq->body()[1].args()[0]);
}

TEST(TranslateSelectTest, GroupByAggregate) {
  Catalog c = TestCatalog();
  TranslatedQuery t = Must(TranslateSql(
      "SELECT dept, SUM(salary) FROM emp GROUP BY dept", c));
  ASSERT_TRUE(t.is_aggregate);
  EXPECT_EQ(t.aggregate->function(), AggregateFunction::kSum);
  ASSERT_EQ(t.aggregate->grouping().size(), 1u);
  EXPECT_EQ(t.aggregate->grouping()[0], t.aggregate->body()[0].args()[1]);
}

TEST(TranslateSelectTest, UngroupedAggregate) {
  Catalog c = TestCatalog();
  TranslatedQuery t = Must(TranslateSql("SELECT COUNT(*) FROM log", c));
  ASSERT_TRUE(t.is_aggregate);
  EXPECT_EQ(t.aggregate->function(), AggregateFunction::kCountStar);
  EXPECT_TRUE(t.aggregate->grouping().empty());
}

TEST(TranslateSelectTest, AggregateValidation) {
  Catalog c = TestCatalog();
  // Selected column not in GROUP BY:
  EXPECT_FALSE(
      TranslateSql("SELECT id, SUM(salary) FROM emp GROUP BY dept", c).ok());
  // GROUP BY without aggregate:
  EXPECT_FALSE(TranslateSql("SELECT dept FROM emp GROUP BY dept", c).ok());
  // Two aggregates:
  EXPECT_FALSE(
      TranslateSql("SELECT SUM(salary), MAX(salary) FROM emp", c).ok());
  // DISTINCT with aggregate:
  EXPECT_FALSE(TranslateSql("SELECT DISTINCT SUM(salary) FROM emp", c).ok());
}

TEST(TranslateSelectTest, JoinOnEquivalentToCommaWhere) {
  Catalog c = TestCatalog();
  TranslatedQuery join_syntax = Must(TranslateSql(
      "SELECT e.id FROM emp e JOIN dept d ON e.dept = d.id", c));
  TranslatedQuery comma_syntax = Must(TranslateSql(
      "SELECT e.id FROM emp e, dept d WHERE e.dept = d.id", c));
  // Identical translation up to variable names: same shape, same semantics.
  EXPECT_EQ(join_syntax.semantics, comma_syntax.semantics);
  EXPECT_EQ(join_syntax.cq->body().size(), comma_syntax.cq->body().size());
  EXPECT_EQ(join_syntax.cq->body()[0].args()[1], join_syntax.cq->body()[1].args()[0]);
}

TEST(TranslateSelectTest, SelectStarProjectsAllColumnsInOrder) {
  Catalog c = TestCatalog();
  TranslatedQuery t = Must(TranslateSql("SELECT * FROM dept", c));
  ASSERT_EQ(t.cq->head().size(), 2u);
  EXPECT_EQ(t.cq->head()[0], t.cq->body()[0].args()[0]);
  EXPECT_EQ(t.cq->head()[1], t.cq->body()[0].args()[1]);
  // Across two tables: emp columns then dept columns (FROM order).
  TranslatedQuery t2 = Must(TranslateSql(
      "SELECT * FROM emp e, dept d WHERE e.dept = d.id", c));
  EXPECT_EQ(t2.cq->head().size(), 5u);
}

TEST(TranslateSelectTest, ToStringMentionsSemantics) {
  Catalog c = TestCatalog();
  TranslatedQuery t = Must(TranslateSql("SELECT id FROM emp", c));
  EXPECT_NE(t.ToString().find("[semantics: BS]"), std::string::npos);
}

}  // namespace
}  // namespace sql
}  // namespace sqleq
