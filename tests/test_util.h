// Shared helpers for the sqleq test suite: unwrap-or-fail, paper fixtures,
// and random query/database generators used by the property tests.
#ifndef SQLEQ_TESTS_TEST_UTIL_H_
#define SQLEQ_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "constraints/dependency.h"
#include "db/database.h"
#include "equivalence/engine.h"
#include "ir/parser.h"
#include "ir/query.h"
#include "ir/schema.h"
#include "util/rng.h"
#include "util/status.h"

namespace sqleq {
namespace testing {

/// Unwraps a Result<T>, failing the test with the status message otherwise.
template <typename T>
T Unwrap(Result<T> r, const char* what = "Result") {
  EXPECT_TRUE(r.ok()) << what << ": " << r.status().ToString();
  if (!r.ok()) std::abort();
  return std::move(r).value();
}

/// Parses a query, failing the test on error.
inline ConjunctiveQuery Q(std::string_view text) {
  return Unwrap(ParseQuery(text), "ParseQuery");
}

/// Parses an aggregate query, failing the test on error.
inline AggregateQuery AQ(std::string_view text) {
  return Unwrap(ParseAggregateQuery(text), "ParseAggregateQuery");
}

/// Parses a Σ, failing the test on error.
inline DependencySet Sigma(const std::vector<std::string>& statements) {
  return Unwrap(ParseSigma(statements), "ParseSigma");
}

/// Q1 ≡Σ,X Q2 through a per-call EquivalenceEngine — the test-suite
/// replacement for the deprecated per-semantics wrappers.
inline Result<bool> EngineEquivalent(const ConjunctiveQuery& q1,
                                     const ConjunctiveQuery& q2,
                                     const DependencySet& sigma,
                                     Semantics semantics = Semantics::kSet,
                                     const Schema& schema = {},
                                     const ChaseOptions& options = {}) {
  EquivalenceEngine engine;
  EquivRequest request{semantics, sigma, schema, options};
  // The engine takes its budget from the context; mirror the legacy
  // ChaseOptions budget there so wrapper callers keep their caps.
  request.context.budget = options.budget;
  SQLEQ_ASSIGN_OR_RETURN(EquivVerdict verdict,
                         engine.Equivalent(q1, q2, request));
  return VerdictToBool(verdict);
}

/// The schema of Example 4.1: D = {P, R, S, T, U} with S and T set valued.
inline Schema Example41Schema() {
  Schema schema;
  schema.Relation("p", 2)
      .Relation("r", 1)
      .Relation("s", 2, /*set_valued=*/true)
      .Relation("t", 3, /*set_valued=*/true)
      .Relation("u", 2);
  return schema;
}

/// Σ of Example 4.1: tgds σ1–σ4 plus key egds σ7 (key of S) and σ8 (key of
/// T). The set-enforcing constraints σ5/σ6 are modelled by the schema's
/// set_valued flags (see App. C and src/constraints/tuple_id).
inline DependencySet Example41Sigma() {
  return Sigma({
      "p(X, Y) -> s(X, Z), t(X, V, W).",
      "p(X, Y) -> t(X, Y, W).",
      "p(X, Y) -> r(X).",
      "p(X, Y) -> u(X, Z), t(X, Y, W).",
      "s(X, Y), s(X, Z) -> Y = Z.",
      "t(X, Y, W1), t(X, Y, W2) -> W1 = W2.",
  });
}

/// Chain query e(X0,X1), ..., e(X{n-1},Xn) with head (X0, Xn).
inline ConjunctiveQuery ChainQuery(int n, const std::string& var_prefix = "X") {
  std::vector<Atom> body;
  for (int i = 0; i < n; ++i) {
    body.emplace_back("e",
                      std::vector<Term>{Term::Var(var_prefix + std::to_string(i)),
                                        Term::Var(var_prefix + std::to_string(i + 1))});
  }
  return ConjunctiveQuery::Make(
      "Chain", {Term::Var(var_prefix + "0"), Term::Var(var_prefix + std::to_string(n))},
      std::move(body));
}

/// A random CQ over `schema`: `n_atoms` atoms drawn uniformly, arguments
/// drawn from a pool of `n_vars` variables and small constants; the head
/// projects a random nonempty subset of the used variables.
ConjunctiveQuery RandomQuery(const Schema& schema, int n_atoms, int n_vars, Rng* rng);

/// A random instance of `schema` with ~`n_tuples` tuples per relation over
/// an integer domain of size `domain`; multiplicities up to `max_mult` for
/// relations not flagged set valued.
Database RandomDatabase(const Schema& schema, int n_tuples, int domain, int max_mult,
                        Rng* rng);

/// Repairs `db` to satisfy Σ by a bounded oblivious fix-point (inserting
/// tgd-required tuples with fresh values, merging egd-equated constants is
/// NOT attempted — egd-violating databases are discarded by returning
/// false). Returns true when db |= Σ on exit.
bool RepairDatabase(Database* db, const DependencySet& sigma, int max_rounds);

}  // namespace testing
}  // namespace sqleq

#endif  // SQLEQ_TESTS_TEST_UTIL_H_
