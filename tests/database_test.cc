// Unit tests for RelationInstance, Database, and canonical databases.
#include "db/database.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sqleq {
namespace {

using testing::Q;

TEST(RelationInstance, InsertValidatesArityAndGroundness) {
  RelationInstance rel("p", 2);
  EXPECT_TRUE(rel.Insert(IntTuple({1, 2})).ok());
  EXPECT_FALSE(rel.Insert(IntTuple({1})).ok());
  EXPECT_FALSE(rel.Insert({Term::Var("X"), Term::Int(1)}).ok());
}

TEST(RelationInstance, CountsAndSetValuedness) {
  RelationInstance rel("p", 1);
  ASSERT_TRUE(rel.Insert(IntTuple({1}), 3).ok());
  EXPECT_EQ(rel.Count(IntTuple({1})), 3u);
  EXPECT_TRUE(rel.Contains(IntTuple({1})));
  EXPECT_FALSE(rel.Contains(IntTuple({2})));
  EXPECT_FALSE(rel.IsSetValued());
  EXPECT_TRUE(rel.CoreSet().IsSetValued());
  EXPECT_EQ(rel.TotalSize(), 3u);
  EXPECT_EQ(rel.CoreSize(), 1u);
}

TEST(Database, InsertUnknownRelationFails) {
  Database db((Schema()));
  EXPECT_EQ(db.Insert("p", IntTuple({1})).code(), StatusCode::kNotFound);
}

TEST(Database, SetValuedFlagRejectsDuplicates) {
  Schema schema;
  schema.Relation("p", 1, /*set_valued=*/true);
  Database db(schema);
  EXPECT_TRUE(db.Insert("p", IntTuple({1})).ok());
  EXPECT_EQ(db.Insert("p", IntTuple({1})).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(db.Insert("p", IntTuple({2}), 2).code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(db.Insert("p", IntTuple({2}), 1).ok());
}

TEST(Database, GetRelationReturnsEmptyInstance) {
  Schema schema;
  schema.Relation("p", 2);
  Database db(schema);
  RelationInstance rel = std::move(db.GetRelation("p")).value();
  EXPECT_TRUE(rel.empty());
  EXPECT_EQ(rel.arity(), 2u);
  EXPECT_FALSE(db.GetRelation("q").ok());
}

TEST(Database, IsSetValuedAndCoreSet) {
  Schema schema;
  schema.Relation("p", 1);
  Database db(schema);
  db.Add("p", {1}, 2);
  EXPECT_FALSE(db.IsSetValued());
  EXPECT_EQ(db.TotalSize(), 2u);
  Database core = db.CoreSet();
  EXPECT_TRUE(core.IsSetValued());
  EXPECT_EQ(core.TotalSize(), 1u);
}

TEST(Database, ToStringSkipsEmptyRelations) {
  Schema schema;
  schema.Relation("p", 1).Relation("q", 1);
  Database db(schema);
  db.Add("p", {1});
  std::string text = db.ToString();
  EXPECT_NE(text.find("p ="), std::string::npos);
  EXPECT_EQ(text.find("q ="), std::string::npos);
}

TEST(CanonicalDatabase, TurnsAtomsIntoTuples) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), r(X).");
  CanonicalDatabase canon = std::move(BuildCanonicalDatabase(q)).value();
  RelationInstance p = std::move(canon.database.GetRelation("p")).value();
  RelationInstance r = std::move(canon.database.GetRelation("r")).value();
  EXPECT_EQ(p.TotalSize(), 1u);
  EXPECT_EQ(r.TotalSize(), 1u);
  // The assignment is a satisfying homomorphism by construction.
  Term cx = canon.assignment.at(Term::Var("X"));
  EXPECT_TRUE(cx.IsConstant());
  EXPECT_TRUE(r.Contains({cx}));
}

TEST(CanonicalDatabase, SharedVariablesShareConstants) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), q(Y, Z).");
  CanonicalDatabase canon = std::move(BuildCanonicalDatabase(q)).value();
  Term cy = canon.assignment.at(Term::Var("Y"));
  RelationInstance p = std::move(canon.database.GetRelation("p")).value();
  RelationInstance qq = std::move(canon.database.GetRelation("q")).value();
  bool y_in_p = false, y_in_q = false;
  for (const auto& [t, _] : p.bag().counts()) y_in_p |= (t[1] == cy);
  for (const auto& [t, _] : qq.bag().counts()) y_in_q |= (t[0] == cy);
  EXPECT_TRUE(y_in_p);
  EXPECT_TRUE(y_in_q);
}

TEST(CanonicalDatabase, ConstantsKeptVerbatim) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, 7).");
  CanonicalDatabase canon = std::move(BuildCanonicalDatabase(q)).value();
  RelationInstance p = std::move(canon.database.GetRelation("p")).value();
  bool found = false;
  for (const auto& [t, _] : p.bag().counts()) found |= (t[1] == Term::Int(7));
  EXPECT_TRUE(found);
}

TEST(CanonicalDatabase, DuplicateAtomsCollapse) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), p(X, Y).");
  CanonicalDatabase canon = std::move(BuildCanonicalDatabase(q)).value();
  RelationInstance p = std::move(canon.database.GetRelation("p")).value();
  EXPECT_EQ(p.TotalSize(), 1u);
  EXPECT_TRUE(canon.database.IsSetValued());
}

TEST(CanonicalDatabase, SetValuedSchemaDoesNotBlockConstruction) {
  Schema schema;
  schema.Relation("p", 2, /*set_valued=*/true);
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), p(X, Y).");
  EXPECT_TRUE(BuildCanonicalDatabase(q, schema).ok());
}

TEST(CanonicalDatabase, UnknownPredicateFails) {
  Schema schema;
  schema.Relation("p", 2);
  ConjunctiveQuery q = Q("Q(X) :- r(X).");
  EXPECT_FALSE(BuildCanonicalDatabase(q, schema).ok());
}

TEST(CanonicalDatabase, ArityMismatchFails) {
  Schema schema;
  schema.Relation("p", 3);
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");
  EXPECT_FALSE(BuildCanonicalDatabase(q, schema).ok());
}

TEST(InferSchema, CollectsAritiesAndRejectsConflicts) {
  ConjunctiveQuery q1 = Q("Q(X) :- p(X, Y).");
  ConjunctiveQuery q2 = Q("Q(X) :- p(X, Y), r(X).");
  Schema s = std::move(InferSchema({q1, q2})).value();
  EXPECT_EQ(s.ArityOf("p"), 2u);
  EXPECT_EQ(s.ArityOf("r"), 1u);
  ConjunctiveQuery bad = Q("Q(X) :- p(X).");
  EXPECT_FALSE(InferSchema({q1, bad}).ok());
}

TEST(InferSchema, ExtraAtomsContribute) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");
  std::vector<Atom> extra{Atom("s", {Term::Var("A")})};
  Schema s = std::move(InferSchema({q}, extra)).value();
  EXPECT_TRUE(s.HasRelation("s"));
}

}  // namespace
}  // namespace sqleq
