// End-to-end tests for the sqleqd service layer (src/service): verdict
// parity with the in-process engine, per-connection sessions, the shared
// chase memo, admission control, graceful drain with resumable C&B
// checkpoints, and the service.* fault sites (connection drops must never
// wedge the server or leak sessions — this file runs under tsan).
#include "service/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "equivalence/engine.h"
#include "service/connection.h"
#include "service/protocol.h"
#include "shell/engine.h"
#include "test_util.h"
#include "util/fault.h"

namespace sqleq {
namespace service {
namespace {

using ::sqleq::testing::Q;
using ::sqleq::testing::Sigma;
using ::sqleq::testing::Unwrap;

Connection Dial(const Server& server) {
  return Unwrap(Connection::Connect("127.0.0.1", server.port()), "Connect");
}

/// Sends the r/2, s/1 catalog with Σ = { r(X,Y) -> s(X) } over `client`,
/// mirroring TestSchema()/TestSigma() below.
void UploadCatalog(Connection& client) {
  Unwrap(client.Call(
      JsonObject().Str("cmd", "relation").Str("name", "r").Int("arity", 2).Build()));
  Unwrap(client.Call(
      JsonObject().Str("cmd", "relation").Str("name", "s").Int("arity", 1).Build()));
  Unwrap(client.Call(JsonObject()
                         .Str("cmd", "dep")
                         .Str("text", "r(X, Y) -> s(X).")
                         .Str("label", "fk")
                         .Build()));
}

Schema TestSchema() {
  Schema schema;
  schema.AddRelation("r", 2);
  schema.AddRelation("s", 1);
  return schema;
}

DependencySet TestSigma() { return Sigma({"r(X, Y) -> s(X)."}); }

std::string CheckLine(const std::string& q1, const std::string& q2,
                      const std::string& semantics = "set") {
  return JsonObject()
      .Str("cmd", "check")
      .Str("q1", q1)
      .Str("q2", q2)
      .Str("semantics", semantics)
      .Build();
}

const JsonValue* Field(const JsonValue& response, const char* key) {
  const JsonValue* v = response.Find(key);
  EXPECT_NE(v, nullptr) << "response missing field " << key;
  return v;
}

bool PollUntil(const std::function<bool()>& done, int timeout_ms = 5000) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return done();
}

TEST(Service, HelloAndSessionState) {
  Server server;
  ASSERT_TRUE(server.Start().ok());
  Connection client = Dial(server);

  JsonValue hello = Unwrap(client.Call(JsonObject().Str("cmd", "hello").Build()));
  EXPECT_TRUE(Field(hello, "ok")->boolean);
  EXPECT_EQ(static_cast<int>(Field(hello, "protocol")->number), kProtocolVersion);

  UploadCatalog(client);
  JsonValue ddl = Unwrap(client.Call(
      JsonObject()
          .Str("cmd", "ddl")
          .Str("script", "CREATE TABLE t (a INT, b INT, PRIMARY KEY (a))")
          .Build()));
  EXPECT_TRUE(Field(ddl, "ok")->boolean);
  EXPECT_EQ(Field(ddl, "relations")->number, 3.0);  // r, s, t

  // Unknown commands and bad requests answer with ok:false, not a drop.
  std::string raw;
  JsonValue bad =
      Unwrap(client.Call(JsonObject().Str("cmd", "no-such-cmd").Build(), &raw));
  EXPECT_FALSE(Field(bad, "ok")->boolean);
  JsonValue still_alive = Unwrap(client.Call(JsonObject().Str("cmd", "hello").Build()));
  EXPECT_TRUE(Field(still_alive, "ok")->boolean);
  server.Stop();
}

TEST(Service, VerdictParityWithInProcessEngine) {
  struct Case {
    const char* q1;
    const char* q2;
    Semantics semantics;
    const char* wire;
  };
  const std::vector<Case> cases = {
      // Σ makes the s-atom redundant under set semantics.
      {"Q(X) :- r(X, Y), s(X).", "Q(X) :- r(X, Y).", Semantics::kSet, "set"},
      {"Q(X) :- r(X, Y).", "Q(X) :- r(X, X).", Semantics::kSet, "set"},
      {"Q(X) :- r(X, Y), r(X, Y).", "Q(X) :- r(X, Y).", Semantics::kBag, "bag"},
      {"Q(X) :- r(X, Y), s(X).", "Q(X) :- r(X, Y).", Semantics::kBagSet, "bag-set"},
  };

  Server server;
  ASSERT_TRUE(server.Start().ok());
  Connection client = Dial(server);
  UploadCatalog(client);

  for (const Case& c : cases) {
    EquivalenceEngine engine;
    EquivRequest request;
    request.semantics = c.semantics;
    request.sigma = TestSigma();
    request.schema = TestSchema();
    EquivVerdict local = Unwrap(engine.Equivalent(Q(c.q1), Q(c.q2), request));
    ASSERT_NE(local.verdict, Verdict::kUnknown);

    JsonValue remote = Unwrap(client.Call(CheckLine(c.q1, c.q2, c.wire)));
    ASSERT_TRUE(Field(remote, "ok")->boolean) << c.q1 << " vs " << c.q2;
    EXPECT_EQ(Field(remote, "equivalent")->boolean,
              local.verdict == Verdict::kEquivalent)
        << c.q1 << " vs " << c.q2 << " under " << c.wire;
    EXPECT_EQ(Field(remote, "verdict")->string, VerdictToString(local.verdict));
  }
  server.Stop();
}

TEST(Service, ConcurrentClientsAgreeWithLocalVerdict) {
  Server server;
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 4;
  std::vector<std::string> verdicts(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&server, &verdicts, i] {
      Connection client = Dial(server);
      UploadCatalog(client);
      JsonValue response = Unwrap(
          client.Call(CheckLine("Q(X) :- r(X, Y), s(X).", "Q(X) :- r(X, Y).")));
      ASSERT_TRUE(Field(response, "ok")->boolean);
      verdicts[i] = Field(response, "verdict")->string;
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& v : verdicts) EXPECT_EQ(v, "equivalent");
  server.Stop();
}

TEST(Service, MemoIsSharedAcrossConnections) {
  Server server;
  ASSERT_TRUE(server.Start().ok());
  const std::string line = CheckLine("Q(X) :- r(X, Y), s(X).", "Q(X) :- r(X, Y).");

  Connection first = Dial(server);
  UploadCatalog(first);
  Unwrap(first.Call(line));

  Connection second = Dial(server);
  UploadCatalog(second);
  JsonValue warm = Unwrap(second.Call(line));
  const JsonValue* metrics = Field(warm, "metrics");
  ASSERT_EQ(metrics->kind, JsonValue::Kind::kObject);
  const JsonValue* hits = metrics->Find("memo.hits");
  ASSERT_NE(hits, nullptr) << "second identical check should hit the shared memo";
  EXPECT_GE(hits->number, 1.0);
  server.Stop();
}

TEST(Service, AdmissionControlShedsLoad) {
  FaultInjector faults;
  FaultSpec slow;
  slow.kind = FaultKind::kDelay;
  slow.delay = std::chrono::microseconds(100000);  // 100ms per candidate
  slow.start = 1;
  slow.period = 1;
  faults.Arm(fault_sites::kBackchaseCandidate, slow);

  ServerOptions options;
  options.max_inflight = 1;
  options.faults = &faults;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  std::thread slow_request([&server] {
    Connection client = Dial(server);
    UploadCatalog(client);
    JsonValue response = Unwrap(client.Call(
        JsonObject()
            .Str("cmd", "reformulate")
            .Str("query", "Q(X) :- r(X, Y), r(X, Z), s(X).")
            .Str("semantics", "set")
            .Build()));
    EXPECT_TRUE(Field(response, "ok")->boolean);
  });

  // Wait for the slow request to occupy the only admission slot.
  ASSERT_TRUE(PollUntil([&server] { return server.inflight() >= 1; }));
  Connection client = Dial(server);
  UploadCatalog(client);
  JsonValue shed = Unwrap(
      client.Call(CheckLine("Q(X) :- r(X, Y).", "Q(X) :- r(X, Z).")));
  EXPECT_FALSE(Field(shed, "ok")->boolean);
  ASSERT_NE(shed.Find("overloaded"), nullptr);
  EXPECT_TRUE(Field(shed, "overloaded")->boolean);
  EXPECT_EQ(Field(shed, "error")->Find("code")->string, "ResourceExhausted");

  // Cheap commands bypass admission even while saturated.
  JsonValue hello = Unwrap(client.Call(JsonObject().Str("cmd", "hello").Build()));
  EXPECT_TRUE(Field(hello, "ok")->boolean);

  slow_request.join();
  server.Stop();
}

TEST(Service, DrainCheckpointsInflightReformulateAndResumes) {
  const std::string query = "Q(X) :- r(X, Y), r(X, Z), s(X).";
  const std::string request_line = JsonObject()
                                       .Str("cmd", "reformulate")
                                       .Str("query", query)
                                       .Str("semantics", "set")
                                       .Build();

  // Clean run first: the expected reformulations.
  std::vector<std::string> clean;
  {
    Server server;
    ASSERT_TRUE(server.Start().ok());
    Connection client = Dial(server);
    UploadCatalog(client);
    JsonValue response = Unwrap(client.Call(request_line));
    ASSERT_TRUE(Field(response, "ok")->boolean);
    ASSERT_TRUE(Field(response, "complete")->boolean);
    for (const JsonValue& r : Field(response, "reformulations")->array) {
      clean.push_back(r.string);
    }
    server.Stop();
  }

  // Now the same request against a server whose backchase crawls; drain
  // mid-flight and expect a resumable partial answer.
  FaultInjector faults;
  FaultSpec slow;
  slow.kind = FaultKind::kDelay;
  slow.delay = std::chrono::microseconds(100000);
  slow.start = 1;
  slow.period = 1;
  faults.Arm(fault_sites::kBackchaseCandidate, slow);
  ServerOptions options;
  options.faults = &faults;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  Connection client = Dial(server);
  UploadCatalog(client);
  ASSERT_TRUE(client.Send(request_line).ok());
  ASSERT_TRUE(PollUntil([&server] { return server.inflight() >= 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  server.RequestDrain();

  std::optional<std::string> raw = Unwrap(client.ReadLine(), "drained response");
  ASSERT_TRUE(raw.has_value());
  JsonValue partial = Unwrap(ParseJson(*raw));
  ASSERT_TRUE(Field(partial, "ok")->boolean);
  server.Wait();

  if (!Field(partial, "complete")->boolean) {
    ASSERT_NE(partial.Find("drained"), nullptr);
    const JsonValue* checkpoint = partial.Find("checkpoint");
    ASSERT_NE(checkpoint, nullptr) << "cancelled C&B must checkpoint";

    // Resume on a fresh, unfaulted server: same reformulations as clean.
    Server fresh;
    ASSERT_TRUE(fresh.Start().ok());
    Connection resume_client = Dial(fresh);
    UploadCatalog(resume_client);
    JsonValue resumed = Unwrap(resume_client.Call(JsonObject()
                                                      .Str("cmd", "reformulate")
                                                      .Str("query", query)
                                                      .Str("semantics", "set")
                                                      .Str("resume", checkpoint->string)
                                                      .Build()));
    ASSERT_TRUE(Field(resumed, "ok")->boolean);
    ASSERT_TRUE(Field(resumed, "complete")->boolean);
    std::vector<std::string> after;
    for (const JsonValue& r : Field(resumed, "reformulations")->array) {
      after.push_back(r.string);
    }
    EXPECT_EQ(after, clean);
    fresh.Stop();
  }
}

TEST(Service, AcceptFaultDropsConnectionButServerSurvives) {
  FaultInjector faults;
  FaultSpec drop;  // kExhausted, start=1, period=0: exactly the first accept
  faults.Arm(fault_sites::kServiceAccept, drop);
  ServerOptions options;
  options.faults = &faults;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  // The first connection is accepted at TCP level, then dropped before it
  // gets a session: its first call must fail cleanly.
  Result<Connection> doomed = Connection::Connect("127.0.0.1", server.port());
  if (doomed.ok()) {
    EXPECT_FALSE(doomed->Call(JsonObject().Str("cmd", "hello").Build()).ok());
  }
  EXPECT_EQ(faults.FiredCount(fault_sites::kServiceAccept), 1u);

  // The next connection is served normally.
  Connection client = Dial(server);
  JsonValue hello = Unwrap(client.Call(JsonObject().Str("cmd", "hello").Build()));
  EXPECT_TRUE(Field(hello, "ok")->boolean);
  ASSERT_TRUE(PollUntil([&server] { return server.active_sessions() == 1; }));
  server.Stop();
}

TEST(Service, ParseFaultDropsConnectionMidStream) {
  FaultInjector faults;
  FaultSpec drop;
  drop.start = 2;  // first request fine, second line drops the connection
  faults.Arm(fault_sites::kServiceParse, drop);
  ServerOptions options;
  options.faults = &faults;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  Connection client = Dial(server);
  JsonValue hello = Unwrap(client.Call(JsonObject().Str("cmd", "hello").Build()));
  EXPECT_TRUE(Field(hello, "ok")->boolean);
  EXPECT_FALSE(client.Call(JsonObject().Str("cmd", "hello").Build()).ok());

  // No session leak, and new connections still work.
  ASSERT_TRUE(PollUntil([&server] { return server.active_sessions() == 0; }));
  Connection next = Dial(server);
  EXPECT_TRUE(Field(Unwrap(next.Call(JsonObject().Str("cmd", "hello").Build())),
                    "ok")
                  ->boolean);
  server.Stop();
}

TEST(Service, DispatchFaultFailsOneRequestOnly) {
  FaultInjector faults;
  FaultSpec fail;  // kExhausted on the first dispatched request
  faults.Arm(fault_sites::kServiceDispatch, fail);
  ServerOptions options;
  options.faults = &faults;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  Connection client = Dial(server);
  JsonValue failed = Unwrap(client.Call(JsonObject().Str("cmd", "hello").Build()));
  EXPECT_FALSE(Field(failed, "ok")->boolean);
  EXPECT_EQ(Field(failed, "error")->Find("code")->string, "ResourceExhausted");
  // Same connection, next request succeeds.
  JsonValue ok = Unwrap(client.Call(JsonObject().Str("cmd", "hello").Build()));
  EXPECT_TRUE(Field(ok, "ok")->boolean);
  server.Stop();
}

TEST(Service, AbruptDisconnectsLeakNoSessions) {
  Server server;
  ASSERT_TRUE(server.Start().ok());
  for (int i = 0; i < 4; ++i) {
    Connection client = Dial(server);
    if (i % 2 == 0) {
      // Half the clients send something first, half vanish silently.
      ASSERT_TRUE(client.Send(JsonObject().Str("cmd", "hello").Build()).ok());
    }
    client.Close();
  }
  EXPECT_TRUE(PollUntil([&server] { return server.active_sessions() == 0; }));
  server.Stop();
  EXPECT_EQ(server.active_sessions(), 0u);
}

TEST(Service, StatsExportsPrometheusAndMemoCounters) {
  Server server;
  ASSERT_TRUE(server.Start().ok());
  Connection client = Dial(server);
  UploadCatalog(client);
  Unwrap(client.Call(CheckLine("Q(X) :- r(X, Y).", "Q(X) :- r(X, Z).")));

  JsonValue stats = Unwrap(client.Call(JsonObject().Str("cmd", "stats").Build()));
  ASSERT_TRUE(Field(stats, "ok")->boolean);
  const std::string& prometheus = Field(stats, "prometheus")->string;
  EXPECT_NE(prometheus.find("sqleq_service_requests"), std::string::npos);
  EXPECT_NE(prometheus.find("sqleq_service_connections"), std::string::npos);
  const JsonValue* memo = Field(stats, "memo");
  ASSERT_EQ(memo->kind, JsonValue::Kind::kObject);
  EXPECT_GE(Field(*memo, "misses")->number, 1.0);
  server.Stop();
}

TEST(Service, ShellConnectForwardsEquivAndMinimize) {
  Server server;
  ASSERT_TRUE(server.Start().ok());

  shell::ScriptEngine engine;
  Unwrap(engine.Run("CREATE TABLE r (a INT, b INT);"
                    "CREATE TABLE s (a INT);"
                    "DEP r(X, Y) -> s(X);"
                    "QUERY q1(X) :- r(X, Y), s(X);"
                    "QUERY q2(X) :- r(X, Y)"));
  std::string local_equiv = Unwrap(engine.Execute("EQUIV q1 q2 UNDER S"));

  std::string connected = Unwrap(engine.Execute(
      "CONNECT 127.0.0.1 " + std::to_string(server.port())));
  EXPECT_NE(connected.find("uploaded 2 relation(s)"), std::string::npos);
  EXPECT_TRUE(engine.connected());

  // Remote EQUIV reaches the same verdict, marked as remote.
  std::string remote_equiv = Unwrap(engine.Execute("EQUIV q1 q2 UNDER S"));
  EXPECT_NE(remote_equiv.find("q1 == q2"), std::string::npos) << remote_equiv;
  EXPECT_NE(remote_equiv.find("[remote"), std::string::npos);

  // Remote MINIMIZE renders the daemon's reformulation back as SQL.
  std::string minimized = Unwrap(engine.Execute("MINIMIZE q1 UNDER S"));
  EXPECT_NE(minimized.find("SELECT"), std::string::npos) << minimized;
  EXPECT_NE(minimized.find("[remote"), std::string::npos);

  // Mirrored DDL/DEP keep the daemon's session in sync.
  std::string mirrored = Unwrap(engine.Execute("CREATE TABLE t (a INT)"));
  EXPECT_NE(mirrored.find("mirrored"), std::string::npos);

  Unwrap(engine.Execute("DISCONNECT"));
  EXPECT_FALSE(engine.connected());
  std::string local_again = Unwrap(engine.Execute("EQUIV q1 q2 UNDER S"));
  EXPECT_EQ(local_again, local_equiv);
  EXPECT_EQ(local_again.find("[remote"), std::string::npos);
  server.Stop();
}

TEST(Service, DrainingResponseIsStructured) {
  Server server;
  ASSERT_TRUE(server.Start().ok());
  Connection client = Dial(server);
  UploadCatalog(client);
  server.RequestDrain();

  // If the request raced through before the read-side shutdown, the
  // rejection must be machine-readable: draining:true plus a retry_after_ms
  // hint, so a retrying client backs off and redials a replacement.
  Result<JsonValue> response =
      client.Call(CheckLine("Q(X) :- r(X, Y).", "Q(X) :- r(X, Z)."));
  if (response.ok()) {
    EXPECT_FALSE(Field(*response, "ok")->boolean);
    EXPECT_TRUE(Field(*response, "draining")->boolean);
    EXPECT_GE(Field(*response, "retry_after_ms")->number, 1.0);
    EXPECT_EQ(Field(*response, "error")->Find("code")->string,
              "FailedPrecondition");
    EXPECT_GE(server.metrics().counter(metric::kServiceDrainingRejected).value(),
              1u);
    std::optional<uint64_t> hint;
    EXPECT_TRUE(service::IsRetryableResponse(*response, &hint));
    ASSERT_TRUE(hint.has_value());
    EXPECT_GE(*hint, 1u);
  }
  server.Wait();
}

TEST(Service, DrainRaceLosesNoInflightRequest) {
  // Several connections are mid-reformulate when the drain lands, and one
  // more tries to connect during it. Every in-flight request must get a
  // well-formed response (complete, or checkpointed partial); the late
  // arrival gets either a clean connection failure or a structured
  // draining rejection. Nothing hangs, nothing is silently dropped.
  FaultInjector faults;
  FaultSpec slow;
  slow.kind = FaultKind::kDelay;
  slow.delay = std::chrono::microseconds(100000);
  slow.start = 1;
  slow.period = 1;
  faults.Arm(fault_sites::kBackchaseCandidate, slow);
  ServerOptions options;
  options.faults = &faults;
  options.worker_threads = 3;
  options.max_inflight = 4;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  const std::string request_line = JsonObject()
                                       .Str("cmd", "reformulate")
                                       .Str("query", "Q(X) :- r(X, Y), r(X, Z), s(X).")
                                       .Str("semantics", "set")
                                       .Build();
  constexpr int kInflight = 3;
  std::vector<std::thread> threads;
  std::vector<bool> answered(kInflight, false);
  for (int i = 0; i < kInflight; ++i) {
    threads.emplace_back([&server, &request_line, &answered, i] {
      Connection client = Dial(server);
      UploadCatalog(client);
      ASSERT_TRUE(client.Send(request_line).ok());
      std::optional<std::string> raw =
          Unwrap(client.ReadLine(), "drained in-flight response");
      ASSERT_TRUE(raw.has_value()) << "in-flight request " << i << " lost";
      JsonValue response = Unwrap(ParseJson(*raw));
      ASSERT_TRUE(Field(response, "ok")->boolean);
      if (!Field(response, "complete")->boolean) {
        // A cancelled C&B run must hand back a resumable checkpoint.
        EXPECT_NE(response.Find("checkpoint"), nullptr);
        EXPECT_NE(response.Find("drained"), nullptr);
      }
      answered[i] = true;
    });
  }

  ASSERT_TRUE(PollUntil([&server] { return server.inflight() >= kInflight; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  server.RequestDrain();

  // A connection attempt racing the drain: accepted-then-rejected or
  // refused outright are both clean; a hang or a malformed line is not.
  Result<Connection> late = Connection::Connect("127.0.0.1", server.port());
  if (late.ok()) {
    Result<JsonValue> response =
        late->Call(CheckLine("Q(X) :- r(X, Y).", "Q(X) :- r(X, Z)."));
    if (response.ok()) {
      EXPECT_FALSE(Field(*response, "ok")->boolean);
      EXPECT_TRUE(Field(*response, "draining")->boolean);
    }
  }

  for (std::thread& t : threads) t.join();
  server.Wait();
  for (int i = 0; i < kInflight; ++i) EXPECT_TRUE(answered[i]);
}

TEST(Service, DegradedAdmissionAnswersInsteadOfShedding) {
  FaultInjector faults;
  FaultSpec slow;
  slow.kind = FaultKind::kDelay;
  slow.delay = std::chrono::microseconds(100000);
  slow.start = 1;
  slow.period = 1;
  faults.Arm(fault_sites::kBackchaseCandidate, slow);

  ServerOptions options;
  options.max_inflight = 1;
  options.faults = &faults;
  options.degraded_admission = true;
  options.degraded_chase_steps = 1;
  options.degraded_candidates = 1;
  options.retry_after_ms = 25;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  // Warm the shared memo at full budget before saturating the server: the
  // degraded lane must still resolve memo hits to real verdicts.
  const std::string warm_line =
      CheckLine("Q(X) :- r(X, Y), s(X).", "Q(X) :- r(X, Y).");
  {
    Connection warm = Dial(server);
    UploadCatalog(warm);
    JsonValue response = Unwrap(warm.Call(warm_line));
    ASSERT_TRUE(Field(response, "ok")->boolean);
    ASSERT_EQ(Field(response, "verdict")->string, "equivalent");
  }

  std::thread slow_request([&server] {
    Connection client = Dial(server);
    UploadCatalog(client);
    JsonValue response = Unwrap(client.Call(
        JsonObject()
            .Str("cmd", "reformulate")
            .Str("query", "Q(X) :- r(X, Y), r(X, Z), s(X).")
            .Str("semantics", "set")
            .Build()));
    EXPECT_TRUE(Field(response, "ok")->boolean);
  });
  ASSERT_TRUE(PollUntil([&server] { return server.inflight() >= 1; }));

  Connection client = Dial(server);
  UploadCatalog(client);

  // Over-cap memo hit: answered with the full-budget verdict, not shed.
  JsonValue hit = Unwrap(client.Call(warm_line));
  ASSERT_TRUE(Field(hit, "ok")->boolean) << "degraded lane must not shed";
  EXPECT_TRUE(Field(hit, "degraded")->boolean);
  EXPECT_EQ(Field(hit, "verdict")->string, "equivalent");
  EXPECT_EQ(hit.Find("overloaded"), nullptr);

  // Over-cap fresh work: either finishes inside the narrowed budget or
  // returns an anytime kUnknown with the exhaustion report and a
  // machine-readable retry hint — never a bare rejection.
  JsonValue fresh = Unwrap(
      client.Call(CheckLine("Q(X) :- r(X, Y).", "Q(X) :- r(X, Z).")));
  ASSERT_TRUE(Field(fresh, "ok")->boolean);
  EXPECT_TRUE(Field(fresh, "degraded")->boolean);
  if (Field(fresh, "verdict")->string == "unknown") {
    EXPECT_NE(fresh.Find("exhaustion"), nullptr);
    EXPECT_EQ(Field(fresh, "retry_after_ms")->number, 25.0);
    std::optional<uint64_t> hint;
    // A degraded kUnknown is settled "try again later", not backpressure:
    // the client retry loop must not treat it as retryable transport-level
    // failure (ok:true, no overloaded/draining marker).
    EXPECT_FALSE(service::IsRetryableResponse(fresh, &hint));
  }

  EXPECT_GE(server.metrics().counter(metric::kServiceDegraded).value(), 2u);
  EXPECT_EQ(server.metrics().counter(metric::kServiceOverloaded).value(), 0u);

  slow_request.join();
  server.Stop();
}

TEST(Service, IdempotentRequestIdReplaysSettledResponseBytes) {
  Server server;
  ASSERT_TRUE(server.Start().ok());
  Connection client = Dial(server);
  UploadCatalog(client);

  const std::string line = JsonObject()
                               .Str("id", "idem-1")
                               .Str("cmd", "check")
                               .Str("q1", "Q(X) :- r(X, Y), s(X).")
                               .Str("q2", "Q(X) :- r(X, Y).")
                               .Str("semantics", "set")
                               .Build();
  std::string first_raw;
  JsonValue first = Unwrap(client.Call(line, &first_raw));
  ASSERT_TRUE(Field(first, "ok")->boolean);
  EXPECT_EQ(Field(first, "id")->string, "idem-1");

  // The retried id replays the settled response byte-for-byte instead of
  // re-dispatching (the metrics object inside is the original's too).
  std::string second_raw;
  JsonValue second = Unwrap(client.Call(line, &second_raw));
  EXPECT_EQ(second_raw, first_raw);
  EXPECT_TRUE(Field(second, "ok")->boolean);
  EXPECT_EQ(server.metrics().counter(metric::kServiceIdempotentReplays).value(),
            1u);

  // A different id is fresh work, not a replay.
  const std::string other = JsonObject()
                                .Str("id", "idem-2")
                                .Str("cmd", "check")
                                .Str("q1", "Q(X) :- r(X, Y), s(X).")
                                .Str("q2", "Q(X) :- r(X, Y).")
                                .Str("semantics", "set")
                                .Build();
  JsonValue fresh = Unwrap(client.Call(other));
  EXPECT_TRUE(Field(fresh, "ok")->boolean);
  EXPECT_EQ(server.metrics().counter(metric::kServiceIdempotentReplays).value(),
            1u);

  // Error responses are not settled: the same bad id re-dispatches (a fixed
  // client must not be stuck replaying its own typo).
  const std::string bad = JsonObject()
                              .Str("id", "idem-bad")
                              .Str("cmd", "check")
                              .Str("q1", "this does not parse")
                              .Str("q2", "Q(X) :- r(X, Y).")
                              .Build();
  JsonValue bad1 = Unwrap(client.Call(bad));
  EXPECT_FALSE(Field(bad1, "ok")->boolean);
  JsonValue bad2 = Unwrap(client.Call(bad));
  EXPECT_FALSE(Field(bad2, "ok")->boolean);
  EXPECT_EQ(server.metrics().counter(metric::kServiceIdempotentReplays).value(),
            1u);
  server.Stop();
}

TEST(ServiceRetry, BackoffScheduleIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 50;
  policy.multiplier = 2.0;
  policy.max_backoff_ms = 2000;
  policy.seed = 42;

  uint64_t expected_base = 50;
  for (size_t attempt = 1; attempt <= 8; ++attempt) {
    uint64_t backoff = RetryBackoffMs(policy, attempt, std::nullopt);
    // Jittered into [base/2, base] of the capped exponential step.
    EXPECT_GE(backoff, expected_base / 2) << "attempt " << attempt;
    EXPECT_LE(backoff, expected_base) << "attempt " << attempt;
    // Pure: the same (seed, attempt) always sleeps the same amount.
    EXPECT_EQ(backoff, RetryBackoffMs(policy, attempt, std::nullopt));
    expected_base = std::min<uint64_t>(expected_base * 2, 2000);
  }

  // A server retry_after_ms hint raises the base, never lowers the floor.
  uint64_t hinted = RetryBackoffMs(policy, 1, 500);
  EXPECT_GE(hinted, 250u);
  EXPECT_LE(hinted, 500u);
  EXPECT_GE(RetryBackoffMs(policy, 1, 10), 25u);  // small hint: exp step wins
}

TEST(ServiceRetry, IsRetryableResponseRecognizesBackpressure) {
  std::optional<uint64_t> hint;

  JsonValue overloaded = Unwrap(ParseJson(OverloadedResponse("r1", 120)));
  EXPECT_TRUE(service::IsRetryableResponse(overloaded, &hint));
  ASSERT_TRUE(hint.has_value());
  EXPECT_EQ(*hint, 120u);

  hint.reset();
  JsonValue draining = Unwrap(ParseJson(DrainingResponse("r2", 75)));
  EXPECT_TRUE(service::IsRetryableResponse(draining, &hint));
  ASSERT_TRUE(hint.has_value());
  EXPECT_EQ(*hint, 75u);

  hint.reset();
  JsonValue ok = Unwrap(ParseJson(
      JsonObject().Str("id", "r3").Bool("ok", true).Str("verdict", "equivalent").Build()));
  EXPECT_FALSE(service::IsRetryableResponse(ok, &hint));
  JsonValue plain_error = Unwrap(ParseJson(
      ErrorResponse("r4", Status::InvalidArgument("bad query"))));
  EXPECT_FALSE(service::IsRetryableResponse(plain_error, &hint));
}

TEST(ServiceRetry, RetryBudgetExhaustsOnPersistentOverload) {
  FaultInjector faults;
  FaultSpec slow;
  slow.kind = FaultKind::kDelay;
  slow.delay = std::chrono::microseconds(100000);
  slow.start = 1;
  slow.period = 1;
  faults.Arm(fault_sites::kBackchaseCandidate, slow);
  ServerOptions options;
  options.max_inflight = 1;
  options.faults = &faults;
  options.retry_after_ms = 10;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  std::thread slow_request([&server] {
    Connection client = Dial(server);
    UploadCatalog(client);
    JsonValue response = Unwrap(client.Call(
        JsonObject()
            .Str("cmd", "reformulate")
            .Str("query", "Q(X) :- r(X, Y), r(X, Z), s(X).")
            .Str("semantics", "set")
            .Build()));
    EXPECT_TRUE(Field(response, "ok")->boolean);
  });
  ASSERT_TRUE(PollUntil([&server] { return server.inflight() >= 1; }));

  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff_ms = 1;
  policy.seed = 7;
  Connection client = Dial(server);
  UploadCatalog(client);
  RetryStats stats;
  JsonValue last = Unwrap(client.CallWithRetry(
      CheckLine("Q(X) :- r(X, Y).", "Q(X) :- r(X, Z)."), policy,
      /*raw_response=*/nullptr, &stats));

  // Both attempts were shed (the slow request holds the only slot for far
  // longer than the two ~10ms hinted backoffs), so the loop hands back the
  // last overloaded response with a reproducible sleep schedule.
  EXPECT_TRUE(Field(last, "overloaded")->boolean);
  EXPECT_EQ(stats.attempts, 2u);
  EXPECT_EQ(stats.reconnects, 0u);
  EXPECT_EQ(stats.total_backoff_ms, RetryBackoffMs(policy, 1, 10));

  slow_request.join();
  server.Stop();
}

TEST(ServiceRetry, TransportDropRedialsAndResends) {
  FaultInjector faults;
  FaultSpec drop;
  drop.start = 2;  // first request parses fine, second drops the connection
  faults.Arm(fault_sites::kServiceParse, drop);
  ServerOptions options;
  options.faults = &faults;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 1;
  policy.connect_timeout = std::chrono::milliseconds(2000);
  Connection client = Unwrap(
      Connection::Connect("127.0.0.1", server.port(), policy), "Connect");

  RetryStats stats;
  JsonValue first = Unwrap(client.CallWithRetry(
      JsonObject().Str("cmd", "hello").Build(), policy, nullptr, &stats));
  EXPECT_TRUE(Field(first, "ok")->boolean);
  EXPECT_EQ(stats.attempts, 1u);

  // The server drops the connection mid-read; the client redials the stored
  // endpoint and resends the same line, invisibly to the caller.
  JsonValue second = Unwrap(client.CallWithRetry(
      JsonObject().Str("cmd", "hello").Build(), policy, nullptr, &stats));
  EXPECT_TRUE(Field(second, "ok")->boolean);
  EXPECT_EQ(stats.attempts, 2u);
  EXPECT_EQ(stats.reconnects, 1u);
  server.Stop();
}

TEST(Service, DrainingRejectsNewExpensiveWork) {
  Server server;
  ASSERT_TRUE(server.Start().ok());
  Connection client = Dial(server);
  UploadCatalog(client);
  server.RequestDrain();
  // The read side is shut, but responses to already-connected clients that
  // raced the drain must still be well-formed; a fresh expensive request on
  // this connection is either answered with FailedPrecondition or the
  // connection is already closed — both are clean outcomes.
  Result<JsonValue> response =
      client.Call(CheckLine("Q(X) :- r(X, Y).", "Q(X) :- r(X, Z)."));
  if (response.ok()) {
    EXPECT_FALSE(Field(*response, "ok")->boolean);
    EXPECT_EQ(Field(*response, "error")->Find("code")->string,
              "FailedPrecondition");
  }
  server.Wait();
}

}  // namespace
}  // namespace service
}  // namespace sqleq
