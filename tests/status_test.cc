// Unit tests for Status / Result<T> / propagation macros.
#include "util/status.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sqleq {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoryOk) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(Status, InvalidArgumentCarriesMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(Status, AllFactoriesSetTheirCode) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(Status, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(Result, ArrowOperator) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  EXPECT_EQ(r->size(), 3u);
}

namespace {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status ChainTwo(int a, int b) {
  SQLEQ_RETURN_IF_ERROR(FailIfNegative(a));
  SQLEQ_RETURN_IF_ERROR(FailIfNegative(b));
  return Status::OK();
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterDivisibleBy4(int x) {
  SQLEQ_ASSIGN_OR_RETURN(int half, HalveEven(x));
  SQLEQ_ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return quarter;
}

}  // namespace

TEST(StatusMacros, ReturnIfErrorPassesThrough) {
  EXPECT_TRUE(ChainTwo(1, 2).ok());
  EXPECT_FALSE(ChainTwo(-1, 2).ok());
  EXPECT_FALSE(ChainTwo(1, -2).ok());
}

TEST(StatusMacros, AssignOrReturn) {
  Result<int> ok = QuarterDivisibleBy4(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(QuarterDivisibleBy4(6).ok());  // fails at the second halving
  EXPECT_FALSE(QuarterDivisibleBy4(3).ok());  // fails at the first
}

}  // namespace
}  // namespace sqleq
