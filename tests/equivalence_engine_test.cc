// Tests for the EquivalenceEngine facade: evidence (traces + witnesses),
// chase-memo reuse across calls, and ResourceBudget deadline enforcement.
#include "equivalence/engine.h"

#include <gtest/gtest.h>

#include <chrono>

#include "equivalence/bag_equivalence.h"
#include "equivalence/bag_set_equivalence.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::Example41Schema;
using testing::Example41Sigma;
using testing::Q;
using testing::Sigma;
using testing::Unwrap;

TEST(EquivalenceEngine, DecidesExample41PerSemantics) {
  // Q1 ≡Σ Q4 under S but not under B/BS (Example 4.1 / §6.3).
  ConjunctiveQuery q1 =
      Q("Q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U).");
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  EquivalenceEngine engine;
  for (Semantics sem : {Semantics::kSet, Semantics::kBag, Semantics::kBagSet}) {
    EquivRequest request{sem, Example41Sigma(), Example41Schema(), {}};
    EquivVerdict verdict = Unwrap(engine.Equivalent(q1, q4, request));
    EXPECT_EQ(verdict.equivalent, sem == Semantics::kSet) << SemanticsToString(sem);
    EXPECT_EQ(verdict.semantics, sem);
  }
  // The set-semantics verdict specifically is "equivalent".
  EquivRequest set_request{Semantics::kSet, Example41Sigma(), Example41Schema(), {}};
  EXPECT_TRUE(Unwrap(engine.Equivalent(q1, q4, set_request)).equivalent);
}

TEST(EquivalenceEngine, VerdictCarriesTracesAndWitness) {
  DependencySet sigma = Sigma({"a(X) -> b(X)."});
  ConjunctiveQuery q1 = Q("Q1(X) :- a(X).");
  ConjunctiveQuery q2 = Q("Q2(X) :- a(X), b(X).");
  EquivalenceEngine engine;
  EquivVerdict v =
      Unwrap(engine.Equivalent(q1, q2, EquivRequest{Semantics::kSet, sigma, {}, {}}));
  EXPECT_TRUE(v.equivalent);
  // Q1's chase applies the tgd once; the trace records it.
  EXPECT_EQ(v.trace_q1.size(), 1u);
  EXPECT_TRUE(v.trace_q2.empty());
  // The chased queries are remapped onto the callers' variables.
  EXPECT_EQ(v.chased_q1.name(), "Q1");
  EXPECT_EQ(v.chased_q1.body().size(), 2u);
  ASSERT_EQ(v.chased_q1.head().size(), 1u);
  EXPECT_EQ(v.chased_q1.head()[0], Term::Var("X"));
  // Set semantics: containment mappings both ways.
  EXPECT_TRUE(v.witness_forward.has_value());
  EXPECT_TRUE(v.witness_backward.has_value());
}

TEST(EquivalenceEngine, NonEquivalentVerdictHasNoWitness) {
  EquivalenceEngine engine;
  EquivVerdict v = Unwrap(engine.Equivalent(
      Q("Q1(X) :- p(X, Y)."), Q("Q2(X) :- p(Y, X)."), EquivRequest{}));
  EXPECT_FALSE(v.equivalent);
  EXPECT_FALSE(v.witness_forward.has_value());
  EXPECT_FALSE(v.witness_backward.has_value());
}

TEST(EquivalenceEngine, BothChasesFailingMeansEquivalent) {
  DependencySet sigma = Sigma({"s(A, B), s(A, C) -> B = C."});
  ConjunctiveQuery q1 = Q("Q1(X) :- s(X, 4), s(X, 5).");
  ConjunctiveQuery q2 = Q("Q2(X) :- s(X, 1), s(X, 2), p(X, Y).");
  EquivalenceEngine engine;
  EquivVerdict v = Unwrap(
      engine.Equivalent(q1, q2, EquivRequest{Semantics::kSet, sigma, {}, {}}));
  EXPECT_TRUE(v.q1_failed);
  EXPECT_TRUE(v.q2_failed);
  EXPECT_TRUE(v.equivalent);  // both empty on every D |= Σ
}

TEST(EquivalenceEngine, EmptySigmaBagMatchesTheorem21) {
  // With Σ = ∅ the facade's kBag verdict is Theorem 2.1(1) isomorphism —
  // exactly what the legacy bool entry point reports.
  ConjunctiveQuery a = Q("Q(X) :- p(X, Y), p(Y, Z).");
  ConjunctiveQuery b = Q("P(A) :- p(B, C), p(A, B).");
  ConjunctiveQuery c = Q("R(X) :- p(X, Y), p(Y, Z), p(X, W).");
  EquivalenceEngine engine;
  EXPECT_TRUE(
      Unwrap(engine.Equivalent(a, b, EquivRequest{Semantics::kBag, {}, {}, {}}))
          .equivalent);
  EXPECT_EQ(BagEquivalent(a, b), true);
  EXPECT_FALSE(
      Unwrap(engine.Equivalent(a, c, EquivRequest{Semantics::kBag, {}, {}, {}}))
          .equivalent);
  EXPECT_EQ(BagEquivalent(a, c), false);
  // And the BS wrapper still implements Theorem 2.1(2) duplicate-blindness.
  EXPECT_TRUE(BagSetEquivalent(Q("Q(X) :- p(X, Y)."), Q("Q(X) :- p(X, Y), p(X, Y).")));
  EXPECT_FALSE(BagEquivalent(Q("Q(X) :- p(X, Y)."), Q("Q(X) :- p(X, Y), p(X, Y).")));
}

TEST(EquivalenceEngine, RepeatCallsHitTheChaseMemo) {
  ConjunctiveQuery q1 =
      Q("Q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U).");
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  EquivalenceEngine engine;
  EquivRequest request{Semantics::kSet, Example41Sigma(), Example41Schema(), {}};
  Unwrap(engine.Equivalent(q1, q4, request));
  EquivalenceEngine::CacheStats first = engine.cache_stats();
  EXPECT_EQ(first.contexts, 1u);
  EXPECT_EQ(first.misses, 2u);  // q1 and q4, both fresh
  EXPECT_EQ(first.hits, 0u);
  Unwrap(engine.Equivalent(q1, q4, request));
  EquivalenceEngine::CacheStats second = engine.cache_stats();
  EXPECT_EQ(second.contexts, 1u);
  EXPECT_EQ(second.misses, 2u);  // nothing re-chased
  EXPECT_EQ(second.hits, 2u);
}

TEST(EquivalenceEngine, DistinctSigmaDistinctContexts) {
  ConjunctiveQuery a = Q("Q(X) :- a(X).");
  ConjunctiveQuery b = Q("P(X) :- a(X), b(X).");
  EquivalenceEngine engine;
  Unwrap(engine.Equivalent(a, b, EquivRequest{Semantics::kSet, {}, {}, {}}));
  Unwrap(engine.Equivalent(
      a, b, EquivRequest{Semantics::kSet, Sigma({"a(X) -> b(X)."}), {}, {}}));
  EXPECT_EQ(engine.cache_stats().contexts, 2u);
}

TEST(EquivalenceEngine, ExpiredDeadlineReportsResourceExhausted) {
  EquivalenceEngine engine;
  EquivRequest request{Semantics::kSet, Sigma({"a(X) -> b(X)."}), {}, {}};
  request.context.budget.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  Result<EquivVerdict> v =
      engine.Equivalent(Q("Q(X) :- a(X)."), Q("P(X) :- a(X), b(X)."), request);
  // Anytime contract: the expired deadline yields kUnknown, not an error.
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->verdict, Verdict::kUnknown);
  EXPECT_FALSE(v->equivalent);
  ASSERT_TRUE(v->exhaustion.has_value());
  EXPECT_EQ(v->exhaustion->limit, "deadline");
  EXPECT_NE(v->exhaustion->progress.find("deadline"), std::string::npos)
      << v->exhaustion->ToString();
}

}  // namespace
}  // namespace sqleq
