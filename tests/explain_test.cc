// Unit tests for the explainable-equivalence API.
#include "equivalence/explain.h"

#include <gtest/gtest.h>

#include "equivalence/sigma_equivalence.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::EngineEquivalent;
using testing::Example41Schema;
using testing::Example41Sigma;
using testing::Q;
using testing::Unwrap;

TEST(Explain, PositiveSetDecisionCarriesBothWitnesses) {
  ConjunctiveQuery q1 =
      Q("Q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U).");
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  EquivalenceExplanation e = Unwrap(
      ExplainEquivalence(q1, q4, Example41Sigma(), Semantics::kSet, Example41Schema()));
  EXPECT_TRUE(e.equivalent);
  EXPECT_TRUE(e.witness_forward.has_value());
  EXPECT_TRUE(e.witness_backward.has_value());
  EXPECT_FALSE(e.counterexample.has_value());
  // Q4's chase trace must be non-trivial; Q1's may be empty.
  EXPECT_FALSE(e.trace_q2.empty());
  std::string text = e.ToString();
  EXPECT_NE(text.find("EQUIVALENT"), std::string::npos);
  EXPECT_NE(text.find("witness"), std::string::npos);
}

TEST(Explain, PositiveBagDecisionCarriesIsomorphism) {
  ConjunctiveQuery q3 = Q("Q3(X) :- p(X, Y), t(X, Y, W), s(X, Z).");
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  EquivalenceExplanation e = Unwrap(
      ExplainEquivalence(q3, q4, Example41Sigma(), Semantics::kBag, Example41Schema()));
  EXPECT_TRUE(e.equivalent);
  EXPECT_TRUE(e.witness_forward.has_value());
}

TEST(Explain, NegativeBagDecisionFindsCounterexample) {
  ConjunctiveQuery q1 =
      Q("Q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U).");
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  EquivalenceExplanation e = Unwrap(
      ExplainEquivalence(q1, q4, Example41Sigma(), Semantics::kBag, Example41Schema()));
  EXPECT_FALSE(e.equivalent);
  ASSERT_TRUE(e.counterexample.has_value()) << e.ToString();
  EXPECT_NE(e.ToString().find("counterexample"), std::string::npos);
}

TEST(Explain, NegativeBagSetDecisionFindsCounterexample) {
  ConjunctiveQuery q1 =
      Q("Q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U).");
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  EquivalenceExplanation e = Unwrap(ExplainEquivalence(
      q1, q4, Example41Sigma(), Semantics::kBagSet, Example41Schema()));
  EXPECT_FALSE(e.equivalent);
  EXPECT_TRUE(e.counterexample.has_value());
}

TEST(Explain, DuplicateAtomUnderBagAmplifiedCounterexample) {
  // Q vs Q+duplicate over a bag-valued relation: only the amplified database
  // separates them (multiplicity 2 squares vs doubles).
  Schema schema;
  schema.Relation("p", 2);
  ConjunctiveQuery a = Q("A(X) :- p(X, Y).");
  ConjunctiveQuery b = Q("B(X) :- p(X, Y), p(X, Y).");
  EquivalenceExplanation e =
      Unwrap(ExplainEquivalence(a, b, {}, Semantics::kBag, schema));
  EXPECT_FALSE(e.equivalent);
  ASSERT_TRUE(e.counterexample.has_value()) << e.ToString();
}

TEST(Explain, FailedChasesCompareEqual) {
  DependencySet sigma = testing::Sigma({"s(A, B), s(A, C) -> B = C."});
  Schema schema;
  schema.Relation("s", 2);
  ConjunctiveQuery bad1 = Q("Q(X) :- s(X, 4), s(X, 5).");
  ConjunctiveQuery bad2 = Q("Q(X) :- s(X, 1), s(X, 2).");
  EquivalenceExplanation e =
      Unwrap(ExplainEquivalence(bad1, bad2, sigma, Semantics::kBag, schema));
  EXPECT_TRUE(e.equivalent);
  EXPECT_TRUE(e.q1_failed);
  EXPECT_TRUE(e.q2_failed);
  EXPECT_NE(e.ToString().find("FAILED"), std::string::npos);
}

TEST(Explain, AgreesWithEquivalentUnderOnExample41Grid) {
  DependencySet sigma = Example41Sigma();
  Schema schema = Example41Schema();
  std::vector<ConjunctiveQuery> queries{
      Q("Q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U)."),
      Q("Q2(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X)."),
      Q("Q3(X) :- p(X, Y), t(X, Y, W), s(X, Z)."),
      Q("Q4(X) :- p(X, Y)."),
  };
  for (Semantics sem : {Semantics::kSet, Semantics::kBag, Semantics::kBagSet}) {
    for (const ConjunctiveQuery& a : queries) {
      for (const ConjunctiveQuery& b : queries) {
        bool expected = Unwrap(EngineEquivalent(a, b, sigma, sem, schema));
        EquivalenceExplanation e =
            Unwrap(ExplainEquivalence(a, b, sigma, sem, schema));
        EXPECT_EQ(e.equivalent, expected)
            << SemanticsToString(sem) << " " << a.name() << " vs " << b.name();
      }
    }
  }
}

}  // namespace
}  // namespace sqleq
