// Unit tests for set-semantics chase to termination (§2.4, Theorem 2.2).
#include "chase/set_chase.h"

#include <gtest/gtest.h>

#include "db/satisfaction.h"
#include "equivalence/containment.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::Q;
using testing::Sigma;
using testing::Unwrap;

TEST(SetChase, NoApplicableDependencyIsIdentity) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), r(X).");
  DependencySet sigma = Sigma({"p(X, Y) -> r(X)."});
  ChaseOutcome out = Unwrap(SetChase(q, sigma));
  EXPECT_FALSE(out.failed);
  EXPECT_TRUE(out.trace.empty());
  EXPECT_TRUE(out.result.SameUpToAtomOrder(q));
}

TEST(SetChase, SingleTgdStep) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");
  DependencySet sigma = Sigma({"p(X, Y) -> r(X)."});
  ChaseOutcome out = Unwrap(SetChase(q, sigma));
  EXPECT_EQ(out.result.body().size(), 2u);
  EXPECT_EQ(out.trace.size(), 1u);
  EXPECT_TRUE(out.trace[0].is_tgd);
}

TEST(SetChase, TerminalResultSatisfiesSigma) {
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  DependencySet sigma = testing::Example41Sigma();
  ChaseOutcome out = Unwrap(SetChase(q4, sigma));
  CanonicalDatabase canon =
      Unwrap(BuildCanonicalDatabase(out.result, testing::Example41Schema()));
  EXPECT_TRUE(Unwrap(Satisfies(canon.database, sigma)));
}

TEST(SetChase, Example41UniversalPlanIsQ1) {
  // (Q4)Σ,S must be set-equivalent to Q1 (the paper's universal plan).
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  ConjunctiveQuery q1 =
      Q("Q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U).");
  ChaseOutcome out = Unwrap(SetChase(q4, testing::Example41Sigma()));
  EXPECT_TRUE(SetEquivalent(out.result, q1));
}

TEST(SetChase, EgdUnifiesVariables) {
  ConjunctiveQuery q = Q("Q(X) :- s(X, Y), s(X, Z), r(Y), r(Z).");
  DependencySet sigma = Sigma({"s(A, B), s(A, C) -> B = C."});
  ChaseOutcome out = Unwrap(SetChase(q, sigma));
  // Unification collapses the duplicate s and r atoms.
  EXPECT_EQ(out.result.body().size(), 2u);
}

TEST(SetChase, ChaseFailureOnConstantClash) {
  ConjunctiveQuery q = Q("Q(X) :- s(X, 4), s(X, 5).");
  DependencySet sigma = Sigma({"s(A, B), s(A, C) -> B = C."});
  ChaseOutcome out = Unwrap(SetChase(q, sigma));
  EXPECT_TRUE(out.failed);
}

TEST(SetChase, NonTerminatingChaseHitsBudget) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");
  DependencySet sigma = Sigma({"p(X, Y) -> p(Y, Z)."});  // not weakly acyclic
  ChaseOptions options;
  options.budget.max_chase_steps = 50;
  Result<ChaseOutcome> out = SetChase(q, sigma, options);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(Unwrap(SetChaseTerminates(q, sigma, options)));
  // The diagnostic distinguishes divergence from a too-small budget.
  EXPECT_NE(out.status().message().find("NOT weakly acyclic"), std::string::npos)
      << out.status().ToString();
}

TEST(SetChase, BudgetDiagnosticForWeaklyAcyclicSigma) {
  // A weakly acyclic Σ with a budget of 0 steps: the message must say that
  // raising the budget will terminate.
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");
  DependencySet sigma = Sigma({"p(X, Y) -> r(X)."});
  ChaseOptions options;
  options.budget.max_chase_steps = 0;
  Result<ChaseOutcome> out = SetChase(q, sigma, options);
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("is weakly acyclic"), std::string::npos)
      << out.status().ToString();
}

TEST(SetChase, TerminatesReportsTrue) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");
  DependencySet sigma = Sigma({"p(X, Y) -> r(X)."});
  EXPECT_TRUE(Unwrap(SetChaseTerminates(q, sigma)));
}

TEST(SetChase, ChaseResultContainedInOriginal) {
  // Each tgd chase step only adds atoms: (Q)Σ,S ⊑S Q (Prop 6.2 tail).
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");
  DependencySet sigma = Sigma({"p(X, Y) -> s(X, Z).", "s(X, Z) -> r(Z)."});
  ChaseOutcome out = Unwrap(SetChase(q, sigma));
  EXPECT_EQ(out.result.body().size(), 3u);
  EXPECT_TRUE(SetContained(out.result, q));
}

TEST(SetChase, TransitiveTgdCascade) {
  ConjunctiveQuery q = Q("Q(X) :- a(X).");
  DependencySet sigma = Sigma({"a(X) -> b(X).", "b(X) -> c(X).", "c(X) -> d(X)."});
  ChaseOutcome out = Unwrap(SetChase(q, sigma));
  EXPECT_EQ(out.result.body().size(), 4u);
  EXPECT_EQ(out.trace.size(), 3u);
}

TEST(SetChase, EgdsLastOptionStillTerminates) {
  ConjunctiveQuery q = Q("Q(X) :- s(X, Y), s(X, Z).");
  DependencySet sigma = Sigma({"s(A, B), s(A, C) -> B = C."});
  ChaseOptions options;
  options.egds_first = false;
  ChaseOutcome out = Unwrap(SetChase(q, sigma, options));
  EXPECT_EQ(out.result.body().size(), 1u);
}

TEST(SetChase, TraceRecordsLabels) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");
  DependencySet sigma = Sigma({"p(X, Y) -> r(X)."});
  ChaseOutcome out = Unwrap(SetChase(q, sigma));
  ASSERT_EQ(out.trace.size(), 1u);
  EXPECT_EQ(out.trace[0].dep_label, "sigma1");
}

TEST(SetChase, InputDuplicateAtomsCanonicalizedUpFront) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), p(X, Y).");
  ChaseOutcome out = Unwrap(SetChase(q, {}));
  EXPECT_EQ(out.result.body().size(), 1u);
}

TEST(SetChase, Theorem22EquivalenceViaChasedQueries) {
  // Q ≡Σ,S Q′ iff (Q)Σ,S ≡S (Q′)Σ,S — sanity-check on a small instance.
  DependencySet sigma = Sigma({"p(X, Y) -> r(X)."});
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");
  ConjunctiveQuery q_with_r = Q("Q(X) :- p(X, Y), r(X).");
  ChaseOutcome c1 = Unwrap(SetChase(q, sigma));
  ChaseOutcome c2 = Unwrap(SetChase(q_with_r, sigma));
  EXPECT_TRUE(SetEquivalent(c1.result, c2.result));
}

}  // namespace
}  // namespace sqleq
