// Unit tests for the Σ-lint static analyzer (src/analysis) and the engine
// pre-flights built on it: every diagnostic code fires on its documented
// minimal trigger, and error-severity findings make EquivalenceEngine /
// ChaseAndBackchase refuse the input with a named diagnostic instead of
// spending their chase budget.
#include "analysis/analyzer.h"

#include <gtest/gtest.h>

#include "analysis/diagnostic.h"
#include "equivalence/engine.h"
#include "ir/parser.h"
#include "reformulation/candb.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::Q;
using testing::Sigma;

bool HasCode(const AnalysisReport& report, const std::string& code) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == code) return true;
  }
  return false;
}

const Diagnostic* Find(const AnalysisReport& report, const std::string& code) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

// --- dependency-set checks ---

TEST(AnalyzeDependencies, Example41SigmaHasNoErrors) {
  // σ1/σ4 trip the Def 4.1 warning (their heads split on the universal X) —
  // the paper's own regularization examples — but nothing is error-severity.
  AnalysisReport report = AnalyzeDependencies(
      testing::Example41Schema(), testing::Example41Sigma(), AnalyzeOptions());
  EXPECT_FALSE(report.HasErrors());
}

TEST(AnalyzeDependencies, FullyRegularSigmaHasNoFindings) {
  Schema schema;
  schema.Relation("p", 2).Relation("r", 1);
  AnalysisReport report =
      AnalyzeDependencies(schema, Sigma({"p(X, Y) -> r(X)."}), AnalyzeOptions());
  EXPECT_EQ(report.ToString(), "no findings");
}

TEST(AnalyzeDependencies, NonTerminatingSigmaIsAnError) {
  AnalysisReport report =
      AnalyzeDependencies(Schema(), Sigma({"e(X, Y) -> e(Y, Z)."}));
  const Diagnostic* d = Find(report, "chase-nontermination");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->subject, "sigma");
  // The message carries the special-edge cycle witness.
  EXPECT_NE(d->message.find("=>*"), std::string::npos) << d->message;
  EXPECT_TRUE(report.HasErrors());
}

TEST(AnalyzeDependencies, StratifiedButNotWeaklyAcyclicIsInfoOnly) {
  AnalysisReport report = AnalyzeDependencies(Schema(), Sigma({
      "p(X, 1) -> q(X, Z, 2).",
      "q(X, Y, 3) -> p(Y, 1).",
  }));
  EXPECT_FALSE(report.HasErrors());
  const Diagnostic* d = Find(report, "sigma-not-weakly-acyclic");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kInfo);
}

TEST(AnalyzeDependencies, ConstantClashEgdIsAWarning) {
  AnalysisReport report = AnalyzeDependencies(Schema(), Sigma({"p(X) -> 1 = 2."}));
  const Diagnostic* d = Find(report, "egd-constant-contradiction");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_FALSE(report.HasErrors());
}

TEST(AnalyzeDependencies, UnregularizedTgdIsAWarning) {
  // r(X,Z1) and s(X,Z2) share only the universal X: Def 4.1 nonshared
  // partition into two components.
  AnalysisReport report =
      AnalyzeDependencies(Schema(), Sigma({"p(X, Y) -> r(X, Z1), s(X, Z2)."}));
  const Diagnostic* d = Find(report, "tgd-unregularized");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->message.find("2 components"), std::string::npos) << d->message;
}

TEST(AnalyzeDependencies, WarningsEscalateUnderStrictMode) {
  AnalyzeOptions opts;
  opts.warnings_as_errors = true;
  AnalysisReport report =
      AnalyzeDependencies(Schema(), Sigma({"p(X, Y) -> r(X, Z1), s(X, Z2)."}), opts);
  const Diagnostic* d = Find(report, "tgd-unregularized");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_TRUE(report.HasErrors());
}

TEST(AnalyzeDependencies, SchemaDriftInDependencies) {
  Schema schema;
  schema.Relation("p", 2).Relation("r", 1);
  AnalysisReport report = AnalyzeDependencies(schema, Sigma({
      "p(X, Y) -> nosuch(X).",   // unknown relation in head
      "p(X, Y, W) -> r(X).",     // p used at arity 3
  }));
  EXPECT_TRUE(HasCode(report, "unknown-relation"));
  EXPECT_TRUE(HasCode(report, "arity-mismatch"));
}

TEST(AnalyzeDependencies, EmptySchemaSkipsSchemaChecks) {
  AnalysisReport report = AnalyzeDependencies(Schema(), Sigma({"p(X, Y) -> r(X)."}));
  EXPECT_FALSE(HasCode(report, "unknown-relation"));
}

TEST(AnalyzeDependencies, ImpliedDependencyFlaggedOnlyWithImplicationCheck) {
  // The second dependency is the first one weakened (p(X,X) ⊆ p(X,Y)), so
  // Σ \ {σ2} implies σ2.
  DependencySet sigma = Sigma({
      "p(X, Y) -> r(X).",
      "p(X, X) -> r(X).",
  });
  AnalysisReport preflight = AnalyzeDependencies(Schema(), sigma);
  EXPECT_FALSE(HasCode(preflight, "dependency-implied"));

  AnalysisReport full =
      AnalyzeDependencies(Schema(), sigma, AnalyzeOptions::Full());
  const Diagnostic* d = Find(full, "dependency-implied");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->subject, "dependency sigma2");
}

TEST(AnalyzeDependencies, ImpliedEgdDetected) {
  DependencySet sigma = Sigma({
      "s(X, Y), s(X, Z) -> Y = Z.",
      "s(a, Y), s(a, Z) -> Y = Z.",  // instance of the key egd
  });
  AnalysisReport full =
      AnalyzeDependencies(Schema(), sigma, AnalyzeOptions::Full());
  const Diagnostic* d = Find(full, "dependency-implied");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->subject, "dependency sigma2");
}

TEST(AnalyzeDependencies, UnsatisfiableBodyDetected) {
  // σ2's body requires q(X, 1) and q-tuples force their second column to 2
  // via σ1's egd... simpler: chase of σ2's body fires σ1 equating 1 = 2.
  DependencySet sigma = Sigma({
      "q(X, Y) -> Y = 2.",
      "q(X, 1) -> r(X).",
  });
  AnalysisReport full =
      AnalyzeDependencies(Schema(), sigma, AnalyzeOptions::Full());
  const Diagnostic* d = Find(full, "dependency-unsatisfiable-body");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->subject, "dependency sigma2");
}

TEST(AnalyzeDependencies, ImplicationCheckBudgetYieldsIncompleteNote) {
  AnalyzeOptions opts = AnalyzeOptions::Full();
  opts.budget.max_chase_steps = 1;
  DependencySet sigma = Sigma({
      "p(X, Y) -> q(X, Z).",
      "q(X, Y) -> r(X, W).",
      "r(X, Y) -> t(X, V).",
      "p(X, Y), t(X, W) -> u(X).",
  });
  AnalysisReport report = AnalyzeDependencies(Schema(), sigma, opts);
  EXPECT_TRUE(HasCode(report, "analysis-incomplete"));
  EXPECT_FALSE(report.HasErrors());
}

TEST(AnalyzeDependencies, ImplicationBudgetIsPerDependency) {
  // Regression pin: every dependency's implication check gets opts.budget
  // AFRESH. A slow check early in Σ (the chain below burns through two
  // chase steps immediately) must not starve the checks after it — the
  // cheap duplicate pair at the END of Σ is still detected as implied,
  // which would be impossible if the budget drained across dependencies.
  AnalyzeOptions opts = AnalyzeOptions::Full();
  opts.budget.max_chase_steps = 2;
  DependencySet sigma = Sigma({
      "p(X, Y) -> q(X, Z).",
      "q(X, Y) -> r(X, W).",
      "r(X, Y) -> t(X, V).",
      "p(X, Y), t(X, W) -> u(X).",
      "s(X, Y) -> v(X).",
      "s(A, B) -> v(A).",
  });
  AnalysisReport report = AnalyzeDependencies(Schema(), sigma, opts);
  EXPECT_TRUE(HasCode(report, "analysis-incomplete"));
  const Diagnostic* implied = Find(report, "dependency-implied");
  ASSERT_NE(implied, nullptr)
      << "late cheap checks were starved by an early slow one:\n"
      << report.ToString();
  EXPECT_EQ(implied->subject.rfind("dependency sigma", 0), 0u);
  EXPECT_FALSE(report.HasErrors());
}

// --- query checks ---

TEST(AnalyzeQuery, UnsafeHeadViaWithBody) {
  // ConjunctiveQuery::Create enforces safety, so break it after the fact.
  ConjunctiveQuery q = Q("Q(X, Y) :- p(X, Y), r(Y).");
  ConjunctiveQuery unsafe = q.WithBody({q.body()[1]});  // drop p(X, Y)
  AnalysisReport report = AnalyzeQuery(Schema(), unsafe);
  const Diagnostic* d = Find(report, "query-unsafe-head");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->subject, "query Q");
  EXPECT_NE(d->message.find("X"), std::string::npos);
}

TEST(AnalyzeQuery, UnsafePartsFromLenientParser) {
  Result<ParsedQueryParts> parts = ParseQueryParts("Q(X, Y) :- p(X, Z).");
  ASSERT_TRUE(parts.ok());
  AnalysisReport report =
      AnalyzeQueryParts(Schema(), parts->name, parts->head, parts->body, {});
  EXPECT_TRUE(HasCode(report, "query-unsafe-head"));
}

TEST(AnalyzeQuery, EmptyBodyIsAnError) {
  ConjunctiveQuery q = Q("Q(X) :- p(X).").WithBody({});
  AnalysisReport report = AnalyzeQuery(Schema(), q);
  EXPECT_TRUE(HasCode(report, "query-empty-body"));
}

TEST(AnalyzeQuery, SchemaDriftInQueryBody) {
  Schema schema;
  schema.Relation("p", 2);
  AnalysisReport report = AnalyzeQuery(schema, Q("Q(X) :- p(X, Y), ghost(X)."));
  EXPECT_TRUE(HasCode(report, "unknown-relation"));
  AnalysisReport arity = AnalyzeQuery(schema, Q("Q(X) :- p(X)."));
  EXPECT_TRUE(HasCode(arity, "arity-mismatch"));
}

TEST(AnalyzeProgram, CombinesSigmaAndQueryFindings) {
  Schema schema;
  schema.Relation("p", 2);
  AnalysisReport report = AnalyzeProgram(
      schema, Sigma({"p(X, Y) -> p(Y, Z)."}),
      {Q("Q1(X) :- p(X, Y)."), Q("Q2(X) :- p(X, X), missing(X).")}, {});
  EXPECT_TRUE(HasCode(report, "chase-nontermination"));
  EXPECT_TRUE(HasCode(report, "unknown-relation"));
  EXPECT_GE(report.CountOf(Severity::kError), 2u);
}

// --- report plumbing ---

TEST(Diagnostics, ToStringAndStatusShape) {
  Diagnostic d{"chase-nontermination", Severity::kError, "cycle found", "sigma",
               "drop it"};
  EXPECT_EQ(d.ToString(),
            "error[chase-nontermination] sigma: cycle found (fix: drop it)");
  AnalysisReport report;
  report.diagnostics.push_back(d);
  Status status = ReportToStatus(report);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("rejected by sigma-lint"), std::string::npos);
  EXPECT_NE(status.message().find("chase-nontermination"), std::string::npos);
}

TEST(Diagnostics, WarningsDoNotRejectViaStatus) {
  AnalysisReport report;
  report.diagnostics.push_back(Diagnostic{"tgd-unregularized", Severity::kWarning,
                                          "msg", "dependency #1", ""});
  EXPECT_TRUE(ReportToStatus(report).ok());
}

// --- engine pre-flights refuse error-severity inputs ---

TEST(Preflight, EngineRefusesNonTerminatingSigma) {
  EquivalenceEngine engine;
  ConjunctiveQuery q1 = Q("Q1(X) :- e(X, Y).");
  ConjunctiveQuery q2 = Q("Q2(X) :- e(X, Y), e(Y, Z).");
  EquivRequest request{Semantics::kSet, Sigma({"e(X, Y) -> e(Y, Z)."}),
                       Schema(), ChaseOptions()};
  Result<EquivVerdict> verdict = engine.Equivalent(q1, q2, request);
  ASSERT_FALSE(verdict.ok());
  EXPECT_NE(verdict.status().message().find("chase-nontermination"),
            std::string::npos)
      << verdict.status().message();
}

TEST(Preflight, EngineRefusesUnsafeQuery) {
  EquivalenceEngine engine;
  ConjunctiveQuery q1 = Q("Q1(X, Y) :- p(X, Y), r(Y).");
  ConjunctiveQuery unsafe = q1.WithBody({q1.body()[1]});
  EquivRequest request{Semantics::kSet, {}, Schema(), ChaseOptions()};
  Result<EquivVerdict> verdict = engine.Equivalent(q1, unsafe, request);
  ASSERT_FALSE(verdict.ok());
  EXPECT_NE(verdict.status().message().find("query-unsafe-head"),
            std::string::npos);
}

TEST(Preflight, StrictModeRefusesDef41Violation) {
  // The default pre-flight lets an unregularized tgd through (SoundChase
  // regularizes Σ itself); warnings_as_errors makes the engine refuse it.
  EquivalenceEngine engine;
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");
  EquivRequest request{Semantics::kBagSet,
                       Sigma({"p(X, Y) -> r(X, Z1), s(X, Z2)."}), Schema(),
                       ChaseOptions()};
  EXPECT_TRUE(engine.Equivalent(q, q, request).ok());

  request.analyze.warnings_as_errors = true;
  Result<EquivVerdict> strict = engine.Equivalent(q, q, request);
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find("tgd-unregularized"), std::string::npos)
      << strict.status().message();
}

TEST(Preflight, DisablingAnalyzeSkipsTheGate) {
  // With the gate off the engine falls back to its chase budget, which the
  // non-terminating Σ exhausts: a ResourceExhausted error, not a lint one.
  EquivalenceEngine engine;
  ConjunctiveQuery q = Q("Q(X) :- e(X, Y).");
  EquivRequest request{Semantics::kSet, Sigma({"e(X, Y) -> e(Y, Z)."}),
                       Schema(), ChaseOptions()};
  request.analyze.enabled = false;
  request.context.budget.max_chase_steps = 50;
  Result<EquivVerdict> verdict = engine.Equivalent(q, q, request);
  // Anytime contract: the exhausted chase budget yields kUnknown (with no
  // lint diagnostic in sight), not a lint rejection.
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  EXPECT_EQ(verdict->verdict, Verdict::kUnknown);
  ASSERT_TRUE(verdict->exhaustion.has_value());
  EXPECT_EQ(verdict->exhaustion->limit, "max_chase_steps");
  EXPECT_EQ(verdict->exhaustion->progress.find("sigma-lint"), std::string::npos)
      << verdict->exhaustion->progress;
}

TEST(Preflight, CandBRefusesNonTerminatingSigma) {
  ConjunctiveQuery q = Q("Q(X) :- e(X, Y).");
  Result<CandBResult> result = ChaseAndBackchase(
      q, Sigma({"e(X, Y) -> e(Y, Z)."}), Semantics::kSet, Schema());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("chase-nontermination"),
            std::string::npos);
}

TEST(Preflight, StratifiedSigmaIsAcceptedDespiteFailingWeakAcyclicity) {
  // Constant-severed firing cycle: not weakly acyclic, but stratified — the
  // gate must let it through (info finding only).
  EquivalenceEngine engine;
  ConjunctiveQuery q = Q("Q(X) :- p(X, 1).");
  EquivRequest request{Semantics::kSet,
                       Sigma({
                           "p(X, 1) -> q(X, Z, 2).",
                           "q(X, Y, 3) -> p(Y, 1).",
                       }),
                       Schema(), ChaseOptions()};
  EXPECT_TRUE(engine.Equivalent(q, q, request).ok());
}

}  // namespace
}  // namespace sqleq
