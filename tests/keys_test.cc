// Unit tests for functional dependencies, closure, superkeys, and keys
// (Appendix B).
#include "constraints/keys.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sqleq {
namespace {

using testing::Sigma;

TEST(ExtractFd, RecognizesTextbookShape) {
  DependencySet sigma = Sigma({"r(X, Y), r(X, Z) -> Y = Z."});
  std::optional<Fd> fd = ExtractFd(sigma[0].egd());
  ASSERT_TRUE(fd.has_value());
  EXPECT_EQ(fd->relation, "r");
  EXPECT_EQ(fd->lhs, (std::set<size_t>{0}));
  EXPECT_EQ(fd->rhs, 1u);
}

TEST(ExtractFd, RecognizesReversedConclusion) {
  DependencySet sigma = Sigma({"r(X, Y), r(X, Z) -> Z = Y."});
  ASSERT_TRUE(ExtractFd(sigma[0].egd()).has_value());
}

TEST(ExtractFd, CompositeLhs) {
  DependencySet sigma = Sigma({"t(X, Y, W1), t(X, Y, W2) -> W1 = W2."});
  std::optional<Fd> fd = ExtractFd(sigma[0].egd());
  ASSERT_TRUE(fd.has_value());
  EXPECT_EQ(fd->lhs, (std::set<size_t>{0, 1}));
  EXPECT_EQ(fd->rhs, 2u);
}

TEST(ExtractFd, RejectsDifferentPredicates) {
  DependencySet sigma = Sigma({"r(X, Y), s(X, Z) -> Y = Z."});
  EXPECT_FALSE(ExtractFd(sigma[0].egd()).has_value());
}

TEST(ExtractFd, RejectsThreeAtomBodies) {
  DependencySet sigma = Sigma({"r(X, Y), r(X, Z), r(X, W) -> Y = Z."});
  EXPECT_FALSE(ExtractFd(sigma[0].egd()).has_value());
}

TEST(ExtractFd, RejectsNonLinearAtoms) {
  // Repeated variable within an atom is not the fd shape.
  DependencySet sigma = Sigma({"r(X, X, Y), r(X, X, Z) -> Y = Z."});
  EXPECT_FALSE(ExtractFd(sigma[0].egd()).has_value());
}

TEST(ExtractFd, RejectsCrossSharing) {
  // A variable shared across non-matching positions encodes a join, not an fd.
  DependencySet sigma = Sigma({"r(X, Y), r(Y, Z) -> Y = Z."});
  EXPECT_FALSE(ExtractFd(sigma[0].egd()).has_value());
}

TEST(ExtractFd, RejectsFullySharedBody) {
  DependencySet sigma = Sigma({"r(X, Y), r(X, Y) -> X = Y."});
  EXPECT_FALSE(ExtractFd(sigma[0].egd()).has_value());
}

TEST(ExtractFds, FiltersTgdsAndNonFdEgds) {
  DependencySet sigma = Sigma({
      "p(X, Y) -> r(X).",
      "r(X, Y), r(X, Z) -> Y = Z.",
      "r(X, Y), s(Y, Z) -> X = Z.",
  });
  std::vector<Fd> fds = ExtractFds(sigma);
  ASSERT_EQ(fds.size(), 1u);
  EXPECT_EQ(fds[0].relation, "r");
}

TEST(AttributeClosureTest, TransitiveClosure) {
  // A -> B, B -> C on rel(A, B, C): {0}+ = {0, 1, 2}.
  std::vector<Fd> fds{{"rel", {0}, 1}, {"rel", {1}, 2}};
  std::set<size_t> closure = AttributeClosure("rel", {0}, fds);
  EXPECT_EQ(closure, (std::set<size_t>{0, 1, 2}));
}

TEST(AttributeClosureTest, IgnoresOtherRelations) {
  std::vector<Fd> fds{{"other", {0}, 1}};
  EXPECT_EQ(AttributeClosure("rel", {0}, fds), (std::set<size_t>{0}));
}

TEST(ImpliesFdTest, ArmstrongDerivation) {
  std::vector<Fd> fds{{"rel", {0}, 1}, {"rel", {1}, 2}};
  EXPECT_TRUE(ImpliesFd(fds, {"rel", {0}, 2}));
  EXPECT_FALSE(ImpliesFd(fds, {"rel", {2}, 0}));
  // Trivial (reflexive) fd:
  EXPECT_TRUE(ImpliesFd(fds, {"rel", {0, 2}, 2}));
}

TEST(IsSuperkeyTest, Basic) {
  std::vector<Fd> fds{{"rel", {0}, 1}, {"rel", {1}, 2}};
  EXPECT_TRUE(IsSuperkey("rel", 3, {0}, fds));
  EXPECT_TRUE(IsSuperkey("rel", 3, {0, 2}, fds));
  EXPECT_FALSE(IsSuperkey("rel", 3, {1}, fds));  // 1 -> 2 but not -> 0
  // Full attribute set is always a superkey:
  EXPECT_TRUE(IsSuperkey("rel", 3, {0, 1, 2}, {}));
}

TEST(IsKeyTest, MinimalityMatters) {
  std::vector<Fd> fds{{"rel", {0}, 1}, {"rel", {1}, 2}};
  EXPECT_TRUE(IsKey("rel", 3, {0}, fds));
  EXPECT_FALSE(IsKey("rel", 3, {0, 2}, fds));  // superkey but not minimal
  EXPECT_FALSE(IsKey("rel", 3, {1}, fds));     // not even a superkey
  EXPECT_FALSE(IsKey("rel", 3, {}, fds));
}

TEST(FindKeysTest, SingleKey) {
  std::vector<Fd> fds{{"rel", {0}, 1}, {"rel", {0}, 2}};
  std::vector<std::set<size_t>> keys = FindKeys("rel", 3, fds);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], (std::set<size_t>{0}));
}

TEST(FindKeysTest, MultipleMinimalKeys) {
  // A -> B and B -> A on rel(A, B): both {A} and {B} are keys of rel(A, B).
  std::vector<Fd> fds{{"rel", {0}, 1}, {"rel", {1}, 0}};
  std::vector<std::set<size_t>> keys = FindKeys("rel", 2, fds);
  EXPECT_EQ(keys.size(), 2u);
}

TEST(FindKeysTest, NoFdsMeansAllAttributesKey) {
  std::vector<std::set<size_t>> keys = FindKeys("rel", 2, {});
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], (std::set<size_t>{0, 1}));
}

TEST(FdToString, Shape) {
  Fd fd{"rel", {0, 1}, 2};
  EXPECT_EQ(fd.ToString(), "rel: {0, 1} -> 2");
}

TEST(Keys, Example41TKeysFirstTwoAttributes) {
  // In Example 4.1, the first two attributes of T form its key (σ8).
  DependencySet sigma = testing::Example41Sigma();
  std::vector<Fd> fds = ExtractFds(sigma);
  EXPECT_TRUE(IsSuperkey("t", 3, {0, 1}, fds));
  EXPECT_FALSE(IsSuperkey("t", 3, {0}, fds));
  EXPECT_TRUE(IsKey("t", 3, {0, 1}, fds));
  // U has no declared fds: only the full attribute set is a superkey.
  EXPECT_FALSE(IsSuperkey("u", 2, {0}, fds));
}

}  // namespace
}  // namespace sqleq
