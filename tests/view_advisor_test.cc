// ViewAdvisor (src/cache/view_advisor.h): clustering partitions the
// workload by Σ-equivalence, and — the acceptance property — every advised
// rewrite is engine-validated kEquivalent to EVERY member of its cluster,
// across seeds and all three schema templates.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "cache/view_advisor.h"
#include "equivalence/engine.h"
#include "test_util.h"
#include "workload/generator.h"
#include "workload/schema_templates.h"

namespace sqleq {
namespace cache {
namespace {

using ::sqleq::testing::Q;
using ::sqleq::testing::Unwrap;

std::vector<ConjunctiveQuery> Queries(const workload::Workload& w) {
  std::vector<ConjunctiveQuery> out;
  out.reserve(w.queries.size());
  for (const workload::WorkloadQuery& wq : w.queries) out.push_back(wq.query);
  return out;
}

TEST(ViewAdvisor, EmptyWorkload) {
  workload::SchemaTemplate tmpl =
      Unwrap(workload::MakeSchemaTemplate("warehouse"));
  ViewAdvice advice = Unwrap(
      AdviseViews({}, tmpl.catalog.sigma, tmpl.catalog.schema));
  EXPECT_TRUE(advice.clusters.empty());
  EXPECT_EQ(advice.queries_clustered, 0u);
}

TEST(ViewAdvisor, ClustersPartitionTheWorkload) {
  workload::WorkloadOptions options;
  options.seed = 3;
  options.num_queries = 24;
  options.overlap_rate = 0.6;
  workload::Workload w = Unwrap(workload::GenerateWorkload(options));
  ViewAdvice advice = Unwrap(AdviseViews(Queries(w), w.schema.catalog.sigma,
                                         w.schema.catalog.schema));
  EXPECT_EQ(advice.queries_clustered, w.queries.size());
  std::set<size_t> seen;
  for (const ViewAdvice::Cluster& c : advice.clusters) {
    ASSERT_FALSE(c.members.empty());
    for (size_t m : c.members) {
      EXPECT_LT(m, w.queries.size());
      EXPECT_TRUE(seen.insert(m).second)
          << "query " << m << " appears in two clusters";
    }
  }
  EXPECT_EQ(seen.size(), w.queries.size());
  // The generator's classes give a lower bound on cluster granularity:
  // clustering may merge generator classes that happen to coincide, but it
  // must never split one (all members of a generated class are equivalent).
  EXPECT_LE(advice.clusters.size(), w.num_classes);
}

TEST(ViewAdvisor, FoldsRedundantDimensionJoin) {
  workload::SchemaTemplate tmpl =
      Unwrap(workload::MakeSchemaTemplate("warehouse"));
  // Two equivalent spellings of the same query: the second carries a
  // dim_time join the FK makes redundant. The advised rewrite must be
  // Σ-equivalent to both, and C&B should shed the redundant atom.
  std::vector<ConjunctiveQuery> queries = {
      Q("Q(X, T) :- fact(X, T, C, P, G, M)."),
      Q("Q(X, T) :- fact(X, T, C, P, G, M), dim_time(T, D)."),
  };
  ViewAdvice advice = Unwrap(
      AdviseViews(queries, tmpl.catalog.sigma, tmpl.catalog.schema));
  ASSERT_EQ(advice.clusters.size(), 1u);
  const ViewAdvice::Cluster& c = advice.clusters[0];
  EXPECT_EQ(c.members, (std::vector<size_t>{0, 1}));
  EXPECT_TRUE(c.rewritten);
  EXPECT_EQ(c.rewrite.body().size(), 1u)
      << "C&B kept the redundant dim join: " << c.rewrite.ToString();
  EXPECT_GE(c.ProjectedSaving(), 0.0);
}

/// Acceptance property: for seeds × all templates, every advised rewrite is
/// engine-validated kEquivalent to every member of its cluster.
TEST(ViewAdvisor, RewritesAreEquivalentToEveryClusterMember) {
  for (const std::string& tmpl : workload::KnownSchemaTemplates()) {
    for (uint64_t seed : {2u, 8u}) {
      workload::WorkloadOptions options;
      options.schema_template = tmpl;
      options.seed = seed;
      options.num_queries = 15;
      options.overlap_rate = 0.6;
      workload::Workload w = Unwrap(workload::GenerateWorkload(options));
      std::vector<ConjunctiveQuery> queries = Queries(w);
      ViewAdvice advice = Unwrap(AdviseViews(queries, w.schema.catalog.sigma,
                                             w.schema.catalog.schema));
      EquivalenceEngine engine;
      EquivRequest request(Semantics::kSet, w.schema.catalog.sigma,
                           w.schema.catalog.schema);
      for (const ViewAdvice::Cluster& c : advice.clusters) {
        for (size_t m : c.members) {
          EquivVerdict v =
              Unwrap(engine.Equivalent(c.rewrite, queries[m], request));
          EXPECT_EQ(v.verdict, Verdict::kEquivalent)
              << tmpl << " seed " << seed << ": rewrite "
              << c.rewrite.ToString() << " not equivalent to member " << m
              << ": " << queries[m].ToString();
        }
      }
    }
  }
}

}  // namespace
}  // namespace cache
}  // namespace sqleq
