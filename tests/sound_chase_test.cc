// Unit tests for sound chase under bag and bag-set semantics (Theorems 4.1,
// 4.3, 5.1; Proposition 5.1).
#include "chase/sound_chase.h"

#include <gtest/gtest.h>

#include "equivalence/bag_equivalence.h"
#include "equivalence/bag_set_equivalence.h"
#include "equivalence/isomorphism.h"
#include "reformulation/minimize.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::Example41Schema;
using testing::Example41Sigma;
using testing::Q;
using testing::Sigma;
using testing::Unwrap;

TEST(NormalizeForBagTest, DropsOnlySetValuedDuplicates) {
  Schema schema;
  schema.Relation("s", 2, /*set_valued=*/true).Relation("u", 2);
  ConjunctiveQuery q = Q("Q(X) :- s(X, Z), s(X, Z), u(X, W), u(X, W).");
  ConjunctiveQuery n = NormalizeForBag(q, schema);
  ASSERT_EQ(n.body().size(), 3u);
  auto counts = n.PredicateCounts();
  EXPECT_EQ(counts.at("s"), 1u);
  EXPECT_EQ(counts.at("u"), 2u);
}

TEST(SoundChase, SetSemanticsDispatchesToSetChase) {
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  ChaseOutcome out =
      Unwrap(SoundChase(q4, Example41Sigma(), Semantics::kSet, Example41Schema()));
  // The set-chase result may carry one redundant t-atom depending on step
  // order; its core is exactly Q1 of Example 4.1 (5 atoms).
  EXPECT_EQ(MinimizeSet(out.result).body().size(), 5u);
}

TEST(SoundChase, Example41BagChaseGivesQ3) {
  // (Q4)Σ,B = Q3: p, t, s (r is excluded because R is bag valued; u because
  // σ4's u-piece is not assignment fixing).
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  ChaseOutcome out =
      Unwrap(SoundChase(q4, Example41Sigma(), Semantics::kBag, Example41Schema()));
  ConjunctiveQuery q3 = Q("Q3(X) :- p(X, Y), t(X, Y, W), s(X, Z).");
  EXPECT_TRUE(AreIsomorphic(out.result, q3));
}

TEST(SoundChase, Example41BagSetChaseGivesQ2) {
  // (Q4)Σ,BS = Q2: p, t, s, r (r comes back: full tgds need no set-valued
  // target under BS).
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  ChaseOutcome out =
      Unwrap(SoundChase(q4, Example41Sigma(), Semantics::kBagSet, Example41Schema()));
  ConjunctiveQuery q2 = Q("Q2(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X).");
  EXPECT_TRUE(AreIsomorphic(out.result, q2));
}

TEST(SoundChase, PropositionSixTwoContainmentChain) {
  // (Q)Σ,S ⊑S (Q)Σ,BS ⊑S (Q)Σ,B ⊑S Q on Example 4.1 (Prop 6.2).
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  ChaseOutcome s =
      Unwrap(SoundChase(q4, Example41Sigma(), Semantics::kSet, Example41Schema()));
  ChaseOutcome bs =
      Unwrap(SoundChase(q4, Example41Sigma(), Semantics::kBagSet, Example41Schema()));
  ChaseOutcome b =
      Unwrap(SoundChase(q4, Example41Sigma(), Semantics::kBag, Example41Schema()));
  EXPECT_GE(s.result.body().size(), bs.result.body().size());
  EXPECT_GE(bs.result.body().size(), b.result.body().size());
  EXPECT_GE(b.result.body().size(), q4.body().size());
}

TEST(SoundChase, Example48AppliesNu1) {
  // ν1 is assignment-fixing w.r.t. Q; under BS the sound chase applies it
  // (Example 4.8 — adds both an S- and a T-subgoal).
  DependencySet sigma = Sigma({
      "p(X, Y) -> s(X, Z), t(Z, Y).",
      "t(X, Y), t(Z, Y) -> X = Z.",
  });
  Schema schema;
  schema.Relation("p", 2)
      .Relation("s", 2, /*set_valued=*/true)
      .Relation("t", 2, /*set_valued=*/true);
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), s(X, Z).");
  ChaseOutcome out = Unwrap(SoundChase(q, sigma, Semantics::kBag, schema));
  // Q'' of Example 4.8: p(X,Y), s(X,Z), s(X,W), t(W,Y).
  ConjunctiveQuery expected = Q("E(X) :- p(X, Y), s(X, Z), s(X, W), t(W, Y).");
  EXPECT_TRUE(AreIsomorphic(out.result, expected));
}

TEST(SoundChase, Example48BagValuedTargetBlocksUnderBag) {
  // Same ν1, but with S and T bag valued: under B the step is unsound
  // (Thm 4.1 requires set-valued targets) — the chase must refuse it.
  DependencySet sigma = Sigma({
      "p(X, Y) -> s(X, Z), t(Z, Y).",
      "t(X, Y), t(Z, Y) -> X = Z.",
  });
  Schema schema;
  schema.Relation("p", 2).Relation("s", 2).Relation("t", 2);
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), s(X, Z).");
  ChaseOutcome out = Unwrap(SoundChase(q, sigma, Semantics::kBag, schema));
  EXPECT_TRUE(AreIsomorphic(out.result, q));
  // Under BS the set-valuedness requirement disappears (Thm 4.3).
  ChaseOutcome bs = Unwrap(SoundChase(q, sigma, Semantics::kBagSet, schema));
  EXPECT_EQ(bs.result.body().size(), 4u);
}

TEST(SoundChase, EgdStepsAlwaysApply) {
  DependencySet sigma = Sigma({"s(A, B), s(A, C) -> B = C."});
  Schema schema;
  schema.Relation("s", 2).Relation("r", 1);
  ConjunctiveQuery q = Q("Q(X) :- s(X, Y), s(X, Z), r(Y), r(Z).");
  ChaseOutcome out = Unwrap(SoundChase(q, sigma, Semantics::kBag, schema));
  // Y and Z unify. S is bag valued here, so the duplicate s-subgoals MUST
  // survive under B (Thm 4.1(2)); duplicate r-subgoals likewise.
  auto counts = out.result.PredicateCounts();
  EXPECT_EQ(counts.at("s"), 2u);
  EXPECT_EQ(counts.at("r"), 2u);
}

TEST(SoundChase, EgdDuplicateDroppedWhenSetValued) {
  DependencySet sigma = Sigma({"s(A, B), s(A, C) -> B = C."});
  Schema schema;
  schema.Relation("s", 2, /*set_valued=*/true).Relation("r", 1);
  ConjunctiveQuery q = Q("Q(X) :- s(X, Y), s(X, Z), r(Y), r(Z).");
  ChaseOutcome out = Unwrap(SoundChase(q, sigma, Semantics::kBag, schema));
  auto counts = out.result.PredicateCounts();
  EXPECT_EQ(counts.at("s"), 1u);  // set-valued duplicate dropped
  EXPECT_EQ(counts.at("r"), 2u);  // bag-valued duplicates kept
}

TEST(SoundChase, UnderBagSetAllDuplicatesNormalizedAway) {
  DependencySet sigma = Sigma({"s(A, B), s(A, C) -> B = C."});
  Schema schema;
  schema.Relation("s", 2).Relation("r", 1);
  ConjunctiveQuery q = Q("Q(X) :- s(X, Y), s(X, Z), r(Y), r(Z).");
  ChaseOutcome out = Unwrap(SoundChase(q, sigma, Semantics::kBagSet, schema));
  EXPECT_EQ(out.result.body().size(), 2u);
}

TEST(SoundChase, FailurePropagates) {
  DependencySet sigma = Sigma({"s(A, B), s(A, C) -> B = C."});
  Schema schema;
  schema.Relation("s", 2);
  ConjunctiveQuery q = Q("Q(X) :- s(X, 4), s(X, 5).");
  ChaseOutcome out = Unwrap(SoundChase(q, sigma, Semantics::kBag, schema));
  EXPECT_TRUE(out.failed);
}

TEST(SoundChase, NonRegularTgdRegularizedInternally) {
  // σ4 of Example 4.1 alone (non-regularized): under BS its t-piece applies
  // (key on t) while its u-piece does not — exactly Example 4.4/4.5's fix.
  DependencySet sigma = Sigma({
      "p(X, Y) -> u(X, Z), t(X, Y, W).",
      "t(X, Y, W1), t(X, Y, W2) -> W1 = W2.",
  });
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  ChaseOutcome out =
      Unwrap(SoundChase(q4, sigma, Semantics::kBagSet, Example41Schema()));
  ConjunctiveQuery expected = Q("E(X) :- p(X, Y), t(X, Y, W).");
  EXPECT_TRUE(AreIsomorphic(out.result, expected));
}

TEST(SoundChase, Theorem51UniquenessAcrossStatementOrder) {
  // Permute Σ; the sound-chase results must stay isomorphic (after the bag
  // normalization the theorem prescribes).
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  DependencySet sigma = Example41Sigma();
  ChaseOutcome base =
      Unwrap(SoundChase(q4, sigma, Semantics::kBag, Example41Schema()));
  std::vector<size_t> order{5, 4, 3, 2, 1, 0};
  DependencySet permuted;
  for (size_t i : order) permuted.push_back(sigma[i]);
  ChaseOutcome alt =
      Unwrap(SoundChase(q4, permuted, Semantics::kBag, Example41Schema()));
  EXPECT_TRUE(AreIsomorphic(base.result, alt.result));
  // Same for bag-set.
  ChaseOutcome base_bs =
      Unwrap(SoundChase(q4, sigma, Semantics::kBagSet, Example41Schema()));
  ChaseOutcome alt_bs =
      Unwrap(SoundChase(q4, permuted, Semantics::kBagSet, Example41Schema()));
  EXPECT_TRUE(BagSetEquivalent(base_bs.result, alt_bs.result));
}

TEST(SoundChase, BudgetExhaustionSurfaces) {
  DependencySet sigma = Sigma({"p(X, Y) -> p(Y, Z)."});
  Schema schema;
  schema.Relation("p", 2, /*set_valued=*/true);
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");
  ChaseOptions options;
  options.budget.max_chase_steps = 20;
  Result<ChaseOutcome> out = SoundChase(q, sigma, Semantics::kBag, schema, options);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

TEST(SoundChase, KeyBasedFastPathIsPureOptimization) {
  // Ablation: the fast path must never change a chase result, only its
  // cost. Random queries over the Example 4.1 setting, both semantics.
  DependencySet sigma = Example41Sigma();
  Schema schema = Example41Schema();
  Rng rng(4242);
  ChaseOptions with_fast, without_fast;
  without_fast.key_based_fast_path = false;
  for (int round = 0; round < 15; ++round) {
    ConjunctiveQuery q = testing::RandomQuery(schema, rng.UniformInt(1, 3), 3, &rng);
    for (Semantics sem : {Semantics::kBag, Semantics::kBagSet}) {
      Result<ChaseOutcome> a = SoundChase(q, sigma, sem, schema, with_fast);
      Result<ChaseOutcome> b = SoundChase(q, sigma, sem, schema, without_fast);
      ASSERT_EQ(a.ok(), b.ok());
      if (!a.ok()) continue;
      ASSERT_EQ(a->failed, b->failed);
      if (a->failed) continue;
      EXPECT_TRUE(AreIsomorphic(a->result, b->result))
          << SemanticsToString(sem) << " " << q.ToString() << "\n"
          << a->result.ToString() << "\n"
          << b->result.ToString();
    }
  }
}

TEST(ClassifyStepTest, ThreeWayClassification) {
  DependencySet sigma = Example41Sigma();
  Schema schema = Example41Schema();
  ConjunctiveQuery q3 = Q("Q3(X) :- p(X, Y), t(X, Y, W), s(X, Z).");
  // σ3 (p → r): applicable to Q3, but R is bag valued → unsound only.
  EXPECT_EQ(Unwrap(ClassifyStep(q3, sigma[2], sigma, Semantics::kBag, schema)),
            StepAvailability::kUnsoundOnly);
  // Under BS the same step is sound.
  EXPECT_EQ(Unwrap(ClassifyStep(q3, sigma[2], sigma, Semantics::kBagSet, schema)),
            StepAvailability::kSoundApplicable);
  // σ2 (p → t with key): already satisfied by Q3 → not applicable.
  EXPECT_EQ(Unwrap(ClassifyStep(q3, sigma[1], sigma, Semantics::kBag, schema)),
            StepAvailability::kNotApplicable);
}

}  // namespace
}  // namespace sqleq
