// Anytime-verdict and checkpoint/resume tests (docs/robustness.md): budget
// and deadline exhaustion yield kUnknown verdicts / partial results instead
// of errors through every entry point (EquivalenceEngine, C&B, rewriting),
// a budget-exhausted C&B returns a prefix-consistent subset of the
// unbudgeted output, resuming with a larger budget reproduces the unbudgeted
// result exactly at threads 1/4/8, and the EscalatingBudget retry policy
// finishes interrupted runs.
#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "chase/chase_cache.h"
#include "equivalence/engine.h"
#include "reformulation/candb.h"
#include "reformulation/views.h"
#include "test_util.h"
#include "util/fault.h"

namespace sqleq {
namespace {

using testing::Example41Schema;
using testing::Example41Sigma;
using testing::Q;
using testing::Unwrap;

std::string Canon(const CandBResult& r) {
  std::string out = "U=" + CanonicalQueryKey(r.universal_plan) + "\n";
  for (const ConjunctiveQuery& q : r.reformulations) {
    out += "R=" + CanonicalQueryKey(q) + "\n";
  }
  out += "examined=" + std::to_string(r.candidates_examined);
  out += " hits=" + std::to_string(r.chase_cache_hits);
  out += " misses=" + std::to_string(r.chase_cache_misses);
  return out;
}

std::string Canon(const RewriteResult& r) {
  std::string out = "U=" + CanonicalQueryKey(r.universal_plan) + "\n";
  for (const ConjunctiveQuery& q : r.rewritings) {
    out += "R=" + CanonicalQueryKey(q) + "\n";
  }
  out += "examined=" + std::to_string(r.candidates_examined);
  out += " hits=" + std::to_string(r.chase_cache_hits);
  out += " misses=" + std::to_string(r.chase_cache_misses);
  return out;
}

ConjunctiveQuery Example41Q1() {
  return Q("Q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U).");
}

/// The single-atom projection of Example 4.1: σ1–σ4 all fire on it, so its
/// chase takes five steps and small step budgets genuinely interrupt it.
/// (Example41Q1's own body already satisfies Σ and chases in zero steps.)
ConjunctiveQuery StepHungryP() { return Q("P(X) :- p(X, Y)."); }

/// A view set and target query whose rewrite sweep examines five candidates
/// (two of them rewritings), so a candidate cap of 2 interrupts it.
ViewSet RewriteViews() {
  ViewSet views;
  EXPECT_TRUE(views.Add(Q("v1(X, Y) :- p(X, Y).")).ok());
  EXPECT_TRUE(views.Add(Q("v2(X) :- r(X).")).ok());
  EXPECT_TRUE(views.Add(Q("v3(X, Z) :- s(X, Z).")).ok());
  EXPECT_TRUE(views.Add(Q("v4(X) :- p(X, Y), r(X).")).ok());
  return views;
}

ConjunctiveQuery RewriteTarget() { return Q("Q(X) :- p(X, Y), r(X), s(X, Z)."); }

/// An already-expired zero-window deadline — the portable way to force the
/// deadline path deterministically.
ResourceBudget ExpiredBudget() {
  return ResourceBudget::WithDeadlineIn(std::chrono::milliseconds(0));
}

// ---- ResourceBudget deadline boundary (the >= fix) and messages ----

TEST(DeadlineBoundary, ZeroWindowDeadlineIsExpiredImmediately) {
  // now >= deadline must already hold at the deadline instant itself; a
  // zero-width window may not race past the first check.
  ResourceBudget budget = ExpiredBudget();
  EXPECT_TRUE(budget.DeadlineExpired());
  Status s = budget.CheckDeadline("probe");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("deadline exceeded during probe"),
            std::string::npos)
      << s.ToString();
  // With a known origin the message reports elapsed-vs-budget timings.
  EXPECT_NE(s.message().find("ms budget"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("elapsed"), std::string::npos) << s.ToString();
}

TEST(DeadlineBoundary, UnsetDeadlineNeverExpires) {
  ResourceBudget budget;
  EXPECT_FALSE(budget.DeadlineExpired());
  EXPECT_TRUE(budget.CheckDeadline("probe").ok());
}

// ---- EscalatingBudget ----

TEST(EscalatingBudgetTest, ScalesLimitsGeometrically) {
  ResourceBudget base;
  base.max_chase_steps = 10;
  base.max_candidates = 20;
  EscalatingBudget policy;
  policy.growth = 2.0;
  ResourceBudget attempt0 = policy.Escalate(base, 0);
  EXPECT_EQ(attempt0.max_chase_steps, 10u);
  EXPECT_EQ(attempt0.max_candidates, 20u);
  ResourceBudget attempt3 = policy.Escalate(base, 3);
  EXPECT_EQ(attempt3.max_chase_steps, 80u);
  EXPECT_EQ(attempt3.max_candidates, 160u);
}

TEST(EscalatingBudgetTest, SaturatesInsteadOfOverflowing) {
  ResourceBudget base;
  base.max_chase_steps = std::numeric_limits<size_t>::max() / 2;
  EscalatingBudget policy;
  policy.growth = 8.0;
  ResourceBudget scaled = policy.Escalate(base, 5);
  EXPECT_EQ(scaled.max_chase_steps, std::numeric_limits<size_t>::max());
}

TEST(EscalatingBudgetTest, ReanchorsTheDeadlineWindow) {
  // A retry inheriting an already-expired deadline verbatim would be born
  // dead; Escalate re-anchors the (scaled) window at the attempt's start.
  ResourceBudget base =
      ResourceBudget::WithDeadlineIn(std::chrono::milliseconds(5));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(base.DeadlineExpired());
  EscalatingBudget policy;
  policy.growth = 2.0;
  ResourceBudget retry = policy.Escalate(base, 10);  // 5ms * 2^10 ≈ 5s window
  EXPECT_FALSE(retry.DeadlineExpired());

  EscalatingBudget per_attempt;
  per_attempt.deadline_per_attempt = std::chrono::milliseconds(60000);
  ResourceBudget no_deadline_base;
  ResourceBudget with_deadline = per_attempt.Escalate(no_deadline_base, 0);
  ASSERT_TRUE(with_deadline.deadline.has_value());
  EXPECT_FALSE(with_deadline.DeadlineExpired());
}

// ---- kUnknown through the EquivalenceEngine ----

TEST(AnytimeEngine, ExpiredDeadlineYieldsUnknownUnderAllSemantics) {
  EquivalenceEngine engine;
  ConjunctiveQuery q1 = Example41Q1();
  for (Semantics sem : {Semantics::kSet, Semantics::kBag, Semantics::kBagSet}) {
    EquivRequest request{sem, Example41Sigma(), Example41Schema(),
                         ChaseOptions()};
    request.context.budget = ExpiredBudget();
    EquivVerdict verdict =
        Unwrap(engine.Equivalent(q1, q1, request), "Equivalent");
    EXPECT_EQ(verdict.verdict, Verdict::kUnknown) << SemanticsToString(sem);
    ASSERT_TRUE(verdict.exhaustion.has_value()) << SemanticsToString(sem);
    EXPECT_EQ(verdict.exhaustion->limit, "deadline") << SemanticsToString(sem);

    // The legacy boolean contract resurfaces the exhaustion as a status.
    Result<bool> legacy = VerdictToBool(verdict);
    ASSERT_FALSE(legacy.ok());
    EXPECT_EQ(legacy.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(AnytimeEngine, StepBudgetYieldsUnknownWithResumableCheckpoint) {
  EquivalenceEngine engine;
  ConjunctiveQuery q1 = StepHungryP();
  EquivRequest small{Semantics::kSet, Example41Sigma(), Example41Schema(),
                     ChaseOptions()};
  small.context.budget.max_chase_steps = 2;
  EquivVerdict verdict = Unwrap(engine.Equivalent(q1, q1, small), "budgeted");
  ASSERT_EQ(verdict.verdict, Verdict::kUnknown);
  ASSERT_TRUE(verdict.exhaustion.has_value());
  EXPECT_EQ(verdict.exhaustion->limit, "max_chase_steps");
  ASSERT_TRUE(verdict.checkpoint.has_value());
  EXPECT_FALSE(verdict.checkpoint->subject.empty());

  // Resume under a roomy budget: the interrupted chase finishes and the
  // verdict is decided.
  EquivRequest roomy{Semantics::kSet, Example41Sigma(), Example41Schema(),
                     ChaseOptions()};
  roomy.resume = &*verdict.checkpoint;
  EquivVerdict resumed = Unwrap(engine.Equivalent(q1, q1, roomy), "resumed");
  EXPECT_EQ(resumed.verdict, Verdict::kEquivalent);
  EXPECT_TRUE(resumed.equivalent);
}

TEST(AnytimeEngine, RetryPolicyDecidesUnderAllSemantics) {
  EquivalenceEngine engine;
  ConjunctiveQuery q1 = Example41Q1();
  ConjunctiveQuery q2 = Q("Q1(X) :- p(X, Y), r(X).");
  EscalatingBudget policy;
  policy.growth = 4.0;
  policy.max_attempts = 5;
  for (Semantics sem : {Semantics::kSet, Semantics::kBag, Semantics::kBagSet}) {
    EquivRequest request{sem, Example41Sigma(), Example41Schema(),
                         ChaseOptions()};
    request.context.budget.max_chase_steps = 1;
    EquivVerdict verdict = Unwrap(
        engine.EquivalentWithRetry(q1, q2, request, policy), "WithRetry");
    EXPECT_NE(verdict.verdict, Verdict::kUnknown) << SemanticsToString(sem);
    // Reference: the same question with no budget pressure.
    EquivRequest roomy{sem, Example41Sigma(), Example41Schema(), ChaseOptions()};
    EquivVerdict want = Unwrap(engine.Equivalent(q1, q2, roomy), "reference");
    EXPECT_EQ(verdict.equivalent, want.equivalent) << SemanticsToString(sem);
  }
}

TEST(AnytimeEngine, ExhaustedRetriesStayUnknown) {
  EquivalenceEngine engine;
  ConjunctiveQuery q1 = StepHungryP();
  EquivRequest request{Semantics::kSet, Example41Sigma(), Example41Schema(),
                       ChaseOptions()};
  request.context.budget.max_chase_steps = 1;
  EscalatingBudget policy;
  policy.growth = 1.0;  // never escalates
  policy.max_attempts = 2;
  EquivVerdict verdict =
      Unwrap(engine.EquivalentWithRetry(q1, q1, request, policy), "WithRetry");
  EXPECT_EQ(verdict.verdict, Verdict::kUnknown);
  ASSERT_TRUE(verdict.exhaustion.has_value());
  EXPECT_EQ(verdict.exhaustion->limit, "max_chase_steps");
}

TEST(AnytimeEngine, CancelledVerdictConvertsToCancelledStatus) {
  EquivalenceEngine engine;
  ConjunctiveQuery q1 = Example41Q1();
  EquivRequest request{Semantics::kSet, Example41Sigma(), Example41Schema(),
                       ChaseOptions()};
  CancellationToken cancel;
  cancel.Cancel();
  request.context.cancel = &cancel;
  EquivVerdict verdict = Unwrap(engine.Equivalent(q1, q1, request), "cancelled");
  EXPECT_EQ(verdict.verdict, Verdict::kUnknown);
  ASSERT_TRUE(verdict.exhaustion.has_value());
  EXPECT_EQ(verdict.exhaustion->limit, "cancelled");
  Result<bool> legacy = VerdictToBool(verdict);
  ASSERT_FALSE(legacy.ok());
  EXPECT_EQ(legacy.status().code(), StatusCode::kCancelled);
}

TEST(AnytimeEngine, LegacyWrapperPropagatesExhaustionAsError) {
  ChaseOptions options;
  options.budget.max_chase_steps = 1;
  Result<bool> legacy = testing::EngineEquivalent(
      StepHungryP(), StepHungryP(), Example41Sigma(), Semantics::kSet,
      Example41Schema(), options);
  ASSERT_FALSE(legacy.ok());
  EXPECT_EQ(legacy.status().code(), StatusCode::kResourceExhausted);
}

// ---- Partial C&B results: prefix consistency and exact resume ----

TEST(AnytimeCandB, BudgetedRunReturnsPrefixOfUnbudgetedOutput) {
  CandBResult full = Unwrap(
      ChaseAndBackchase(Example41Q1(), Example41Sigma(), Semantics::kSet,
                        Example41Schema()),
      "unbudgeted");
  ASSERT_TRUE(full.complete);
  std::vector<std::string> want;
  for (const ConjunctiveQuery& q : full.reformulations) {
    want.push_back(CanonicalQueryKey(q));
  }
  for (size_t cap : {1u, 2u, 4u, 8u, 16u}) {
    CandBOptions options;
    options.context.budget.max_candidates = cap;
    CandBResult partial = Unwrap(
        ChaseAndBackchase(Example41Q1(), Example41Sigma(), Semantics::kSet,
                          Example41Schema(), options),
        "budgeted");
    if (partial.complete) continue;  // cap large enough to finish
    ASSERT_TRUE(partial.exhaustion.has_value());
    EXPECT_EQ(partial.exhaustion->limit, "max_candidates");
    EXPECT_LE(partial.candidates_examined, cap);
    ASSERT_TRUE(partial.checkpoint.has_value());
    ASSERT_LE(partial.reformulations.size(), want.size()) << "cap " << cap;
    for (size_t i = 0; i < partial.reformulations.size(); ++i) {
      EXPECT_EQ(CanonicalQueryKey(partial.reformulations[i]), want[i])
          << "cap " << cap << " reformulation " << i;
    }
  }
}

TEST(AnytimeCandB, ResumeWithLargerBudgetMatchesUnbudgetedAtEveryThreadCount) {
  CandBOptions clean;
  clean.context.budget.threads = 1;
  std::string reference = Canon(Unwrap(
      ChaseAndBackchase(Example41Q1(), Example41Sigma(), Semantics::kSet,
                        Example41Schema(), clean),
      "unbudgeted"));
  for (size_t threads : {1u, 4u, 8u}) {
    CandBOptions budgeted;
    budgeted.context.budget.max_candidates = 3;
    budgeted.context.budget.threads = threads;
    CandBResult partial = Unwrap(
        ChaseAndBackchase(Example41Q1(), Example41Sigma(), Semantics::kSet,
                          Example41Schema(), budgeted),
        "budgeted");
    ASSERT_FALSE(partial.complete) << threads << " threads";
    ASSERT_TRUE(partial.checkpoint.has_value());

    CandBOptions resumed_options;
    resumed_options.context.budget.threads = threads;
    resumed_options.resume = &*partial.checkpoint;
    CandBResult finished = Unwrap(
        ChaseAndBackchase(Example41Q1(), Example41Sigma(), Semantics::kSet,
                          Example41Schema(), resumed_options),
        "resumed");
    EXPECT_TRUE(finished.complete) << threads << " threads";
    EXPECT_EQ(Canon(finished), reference) << threads << " threads";
  }
}

TEST(AnytimeCandB, ChainedEscalatingResumesConvergeToTheUnbudgetedResult) {
  // max_candidates caps the *cumulative* candidate count (checkpoints carry
  // budget_consumed), so each resume doubles the cap — the shape SET RETRY
  // produces. Every round advances the cut, and the final stitched result is
  // byte-identical to an uninterrupted run.
  CandBOptions clean;
  std::string reference = Canon(Unwrap(
      ChaseAndBackchase(Example41Q1(), Example41Sigma(), Semantics::kSet,
                        Example41Schema(), clean),
      "unbudgeted"));
  CandBOptions options;
  options.context.budget.max_candidates = 2;
  CandBResult result = Unwrap(
      ChaseAndBackchase(Example41Q1(), Example41Sigma(), Semantics::kSet,
                        Example41Schema(), options),
      "round 0");
  int rounds = 0;
  CandBCheckpoint checkpoint;
  while (!result.complete) {
    ASSERT_TRUE(result.checkpoint.has_value());
    ASSERT_LT(rounds, 32) << "resume loop failed to make progress";
    checkpoint = *result.checkpoint;
    CandBOptions next;
    next.context.budget.max_candidates = size_t(2) << (rounds + 1);
    next.resume = &checkpoint;
    result = Unwrap(ChaseAndBackchase(Example41Q1(), Example41Sigma(),
                                      Semantics::kSet, Example41Schema(), next),
                    "resume round");
    ++rounds;
  }
  EXPECT_GT(rounds, 0);
  EXPECT_EQ(Canon(result), reference);
}

TEST(AnytimeCandB, DeadlineStopIsResumable) {
  CandBOptions clean;
  std::string reference = Canon(Unwrap(
      ChaseAndBackchase(Example41Q1(), Example41Sigma(), Semantics::kSet,
                        Example41Schema(), clean),
      "unbudgeted"));
  CandBOptions expired;
  expired.context.budget = ExpiredBudget();
  CandBResult partial = Unwrap(
      ChaseAndBackchase(Example41Q1(), Example41Sigma(), Semantics::kSet,
                        Example41Schema(), expired),
      "expired");
  ASSERT_FALSE(partial.complete);
  ASSERT_TRUE(partial.exhaustion.has_value());
  EXPECT_EQ(partial.exhaustion->limit, "deadline");
  ASSERT_TRUE(partial.checkpoint.has_value());

  CandBOptions resumed_options;
  resumed_options.resume = &*partial.checkpoint;
  CandBResult finished = Unwrap(
      ChaseAndBackchase(Example41Q1(), Example41Sigma(), Semantics::kSet,
                        Example41Schema(), resumed_options),
      "resumed");
  EXPECT_TRUE(finished.complete);
  EXPECT_EQ(Canon(finished), reference);
}

TEST(AnytimeCandB, RetryPolicyFinishesAnInterruptedRun) {
  CandBOptions clean;
  std::string reference = Canon(Unwrap(
      ChaseAndBackchase(Example41Q1(), Example41Sigma(), Semantics::kSet,
                        Example41Schema(), clean),
      "unbudgeted"));
  CandBOptions options;
  options.context.budget.max_candidates = 2;
  EscalatingBudget policy;
  policy.growth = 4.0;
  policy.max_attempts = 6;
  CandBResult result = Unwrap(
      ChaseAndBackchaseWithRetry(Example41Q1(), Example41Sigma(),
                                 Semantics::kSet, Example41Schema(), options,
                                 policy),
      "WithRetry");
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(Canon(result), reference);

  // A policy too stingy to finish still returns a usable partial result.
  EscalatingBudget stingy;
  stingy.growth = 1.0;
  stingy.max_attempts = 2;
  CandBResult partial = Unwrap(
      ChaseAndBackchaseWithRetry(Example41Q1(), Example41Sigma(),
                                 Semantics::kSet, Example41Schema(), options,
                                 stingy),
      "stingy WithRetry");
  EXPECT_FALSE(partial.complete);
  EXPECT_TRUE(partial.checkpoint.has_value());
}

TEST(AnytimeCandB, StepBudgetedChasePhaseEchoesInputAndResumes) {
  CandBOptions options;
  options.context.budget.max_chase_steps = 2;
  CandBResult partial = Unwrap(
      ChaseAndBackchase(StepHungryP(), Example41Sigma(), Semantics::kSet,
                        Example41Schema(), options),
      "step-budgeted");
  ASSERT_FALSE(partial.complete);
  ASSERT_TRUE(partial.exhaustion.has_value());
  EXPECT_EQ(partial.exhaustion->limit, "max_chase_steps");
  // The plan does not exist yet; the result echoes the input query.
  EXPECT_EQ(CanonicalQueryKey(partial.universal_plan),
            CanonicalQueryKey(StepHungryP()));
  EXPECT_TRUE(partial.reformulations.empty());
  ASSERT_TRUE(partial.checkpoint.has_value());
  EXPECT_EQ(partial.checkpoint->phase, CandBCheckpoint::kChasePhase);

  CandBOptions resumed_options;
  resumed_options.resume = &*partial.checkpoint;
  CandBResult finished = Unwrap(
      ChaseAndBackchase(StepHungryP(), Example41Sigma(), Semantics::kSet,
                        Example41Schema(), resumed_options),
      "resumed");
  EXPECT_TRUE(finished.complete);
  CandBResult reference = Unwrap(
      ChaseAndBackchase(StepHungryP(), Example41Sigma(), Semantics::kSet,
                        Example41Schema()),
      "unbudgeted");
  EXPECT_EQ(Canon(finished), Canon(reference));
}

// ---- RewriteWithViews ----

TEST(AnytimeRewrite, BudgetExhaustionIsResumable) {
  ViewSet views = RewriteViews();
  ConjunctiveQuery q = RewriteTarget();

  RewriteOptions clean;
  RewriteResult full = Unwrap(
      RewriteWithViews(q, views, Example41Sigma(), Semantics::kSet,
                       Example41Schema(), clean),
      "unbudgeted");
  ASSERT_TRUE(full.complete);
  std::string reference = Canon(full);

  RewriteOptions budgeted;
  budgeted.context.budget.max_candidates = 2;
  RewriteResult partial = Unwrap(
      RewriteWithViews(q, views, Example41Sigma(), Semantics::kSet,
                       Example41Schema(), budgeted),
      "budgeted");
  ASSERT_FALSE(partial.complete);
  ASSERT_TRUE(partial.exhaustion.has_value());
  EXPECT_EQ(partial.exhaustion->limit, "max_candidates");
  ASSERT_TRUE(partial.checkpoint.has_value());
  // Prefix consistency against the full run.
  ASSERT_LE(partial.rewritings.size(), full.rewritings.size());
  for (size_t i = 0; i < partial.rewritings.size(); ++i) {
    EXPECT_EQ(CanonicalQueryKey(partial.rewritings[i]),
              CanonicalQueryKey(full.rewritings[i]));
  }

  RewriteOptions resumed_options;
  resumed_options.resume = &*partial.checkpoint;
  RewriteResult finished = Unwrap(
      RewriteWithViews(q, views, Example41Sigma(), Semantics::kSet,
                       Example41Schema(), resumed_options),
      "resumed");
  EXPECT_TRUE(finished.complete);
  EXPECT_EQ(Canon(finished), reference);
}

TEST(AnytimeRewrite, ResumeMatchesAtEveryThreadCount) {
  ViewSet views = RewriteViews();
  ConjunctiveQuery q = RewriteTarget();
  RewriteOptions clean;
  std::string reference = Canon(Unwrap(
      RewriteWithViews(q, views, Example41Sigma(), Semantics::kSet,
                       Example41Schema(), clean),
      "unbudgeted"));
  for (size_t threads : {1u, 4u, 8u}) {
    RewriteOptions budgeted;
    budgeted.context.budget.max_candidates = 2;
    budgeted.context.budget.threads = threads;
    RewriteResult partial = Unwrap(
        RewriteWithViews(q, views, Example41Sigma(), Semantics::kSet,
                         Example41Schema(), budgeted),
        "budgeted");
    ASSERT_FALSE(partial.complete) << threads << " threads";
    ASSERT_TRUE(partial.checkpoint.has_value());
    RewriteOptions resumed_options;
    resumed_options.context.budget.threads = threads;
    resumed_options.resume = &*partial.checkpoint;
    RewriteResult finished = Unwrap(
        RewriteWithViews(q, views, Example41Sigma(), Semantics::kSet,
                         Example41Schema(), resumed_options),
        "resumed");
    EXPECT_TRUE(finished.complete) << threads << " threads";
    EXPECT_EQ(Canon(finished), reference) << threads << " threads";
  }
}

TEST(AnytimeRewrite, RetryPolicyFinishesAnInterruptedRewrite) {
  ViewSet views = RewriteViews();
  ConjunctiveQuery q = RewriteTarget();
  RewriteOptions clean;
  std::string reference = Canon(Unwrap(
      RewriteWithViews(q, views, Example41Sigma(), Semantics::kSet,
                       Example41Schema(), clean),
      "unbudgeted"));
  RewriteOptions options;
  options.context.budget.max_candidates = 2;
  EscalatingBudget policy;
  policy.growth = 4.0;
  policy.max_attempts = 6;
  RewriteResult result = Unwrap(
      RewriteWithViewsWithRetry(q, views, Example41Sigma(), Semantics::kSet,
                                Example41Schema(), options, policy),
      "WithRetry");
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(Canon(result), reference);
}

}  // namespace
}  // namespace sqleq
