// Unit tests for the SQL tokenizer.
#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace sqleq {
namespace sql {
namespace {

std::vector<Token> Lex(std::string_view text) {
  Result<std::vector<Token>> r = Tokenize(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : std::vector<Token>{};
}

TEST(SqlLexer, EmptyInputYieldsEnd) {
  std::vector<Token> tokens = Lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEnd);
}

TEST(SqlLexer, IdentifiersPreserveCase) {
  std::vector<Token> tokens = Lex("SELECT foo_Bar");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].text, "foo_Bar");
}

TEST(SqlLexer, NumbersIncludingNegative) {
  std::vector<Token> tokens = Lex("42 -7");
  EXPECT_EQ(tokens[0].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens[0].text, "42");
  EXPECT_EQ(tokens[1].text, "-7");
}

TEST(SqlLexer, StringsSingleQuoted) {
  std::vector<Token> tokens = Lex("'hello world'");
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "hello world");
}

TEST(SqlLexer, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(SqlLexer, Punctuation) {
  std::vector<Token> tokens = Lex("( ) , . = * ;");
  EXPECT_EQ(tokens[0].kind, TokenKind::kLParen);
  EXPECT_EQ(tokens[1].kind, TokenKind::kRParen);
  EXPECT_EQ(tokens[2].kind, TokenKind::kComma);
  EXPECT_EQ(tokens[3].kind, TokenKind::kDot);
  EXPECT_EQ(tokens[4].kind, TokenKind::kEquals);
  EXPECT_EQ(tokens[5].kind, TokenKind::kStar);
  EXPECT_EQ(tokens[6].kind, TokenKind::kSemicolon);
}

TEST(SqlLexer, QualifiedName) {
  std::vector<Token> tokens = Lex("t1.col");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "t1");
  EXPECT_EQ(tokens[1].kind, TokenKind::kDot);
  EXPECT_EQ(tokens[2].text, "col");
}

TEST(SqlLexer, UnexpectedCharacterFails) {
  EXPECT_FALSE(Tokenize("SELECT @x").ok());
}

TEST(SqlLexer, PositionsRecorded) {
  std::vector<Token> tokens = Lex("ab  cd");
  EXPECT_EQ(tokens[0].pos, 0u);
  EXPECT_EQ(tokens[1].pos, 4u);
}

}  // namespace
}  // namespace sql
}  // namespace sqleq
