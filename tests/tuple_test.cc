// Unit tests for Tuple and Bag.
#include "db/tuple.h"

#include <gtest/gtest.h>

namespace sqleq {
namespace {

TEST(Tuple, IntTupleBuilder) {
  Tuple t = IntTuple({1, 2, 3});
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], Term::Int(1));
  EXPECT_EQ(TupleToString(t), "(1, 2, 3)");
}

TEST(Tuple, HashConsistency) {
  EXPECT_EQ(TupleHash()(IntTuple({1, 2})), TupleHash()(IntTuple({1, 2})));
}

TEST(Bag, EmptyBag) {
  Bag b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.CoreSize(), 0u);
  EXPECT_EQ(b.TotalSize(), 0u);
  EXPECT_TRUE(b.IsSetValued());
  EXPECT_EQ(b.ToString(), "{{}}");
}

TEST(Bag, AddAccumulatesMultiplicity) {
  Bag b;
  b.Add(IntTuple({1}));
  b.Add(IntTuple({1}), 2);
  b.Add(IntTuple({2}));
  EXPECT_EQ(b.Count(IntTuple({1})), 3u);
  EXPECT_EQ(b.Count(IntTuple({2})), 1u);
  EXPECT_EQ(b.Count(IntTuple({3})), 0u);
  EXPECT_EQ(b.CoreSize(), 2u);
  EXPECT_EQ(b.TotalSize(), 4u);
  EXPECT_FALSE(b.IsSetValued());
}

TEST(Bag, AddZeroIsNoOp) {
  Bag b;
  b.Add(IntTuple({1}), 0);
  EXPECT_TRUE(b.empty());
}

TEST(Bag, CoreSetCollapsesMultiplicities) {
  Bag b;
  b.Add(IntTuple({1}), 5);
  b.Add(IntTuple({2}), 1);
  Bag core = b.CoreSet();
  EXPECT_EQ(core.Count(IntTuple({1})), 1u);
  EXPECT_EQ(core.TotalSize(), 2u);
  EXPECT_TRUE(core.IsSetValued());
}

TEST(Bag, EqualityIsMultisetEquality) {
  Bag a, b;
  a.Add(IntTuple({1}), 2);
  b.Add(IntTuple({1}));
  EXPECT_NE(a, b);
  b.Add(IntTuple({1}));
  EXPECT_EQ(a, b);
}

TEST(Bag, ToStringSmallMultiplicitiesExpanded) {
  Bag b;
  b.Add(IntTuple({1}), 2);
  EXPECT_EQ(b.ToString(), "{{(1), (1)}}");
}

TEST(Bag, ToStringLargeMultiplicitiesAbbreviated) {
  Bag b;
  b.Add(IntTuple({1}), 100);
  EXPECT_EQ(b.ToString(), "{{(1) x 100}}");
}

TEST(Bag, MixedTypeTuples) {
  Bag b;
  b.Add({Term::Int(1), Term::Str("x")});
  EXPECT_EQ(b.Count({Term::Int(1), Term::Str("x")}), 1u);
  EXPECT_EQ(b.Count({Term::Int(1), Term::Str("y")}), 0u);
}

}  // namespace
}  // namespace sqleq
