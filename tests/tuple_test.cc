// Unit tests for Tuple and Bag.
#include "db/tuple.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace sqleq {
namespace {

TEST(Tuple, IntTupleBuilder) {
  Tuple t = IntTuple({1, 2, 3});
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], Term::Int(1));
  EXPECT_EQ(TupleToString(t), "(1, 2, 3)");
}

TEST(Tuple, HashConsistency) {
  EXPECT_EQ(TupleHash()(IntTuple({1, 2})), TupleHash()(IntTuple({1, 2})));
}

TEST(Tuple, HashCollisionRateOnDenseGrid) {
  // 64×64 grid of small-int pairs plus their reversals: a workload where
  // the old 32-bit-constant FNV clustered badly. Distinct tuples should
  // hash to (nearly) distinct values — tolerate a handful of accidental
  // 64-bit collisions, not systematic clustering.
  TupleHash hash;
  std::unordered_set<size_t> seen;
  size_t total = 0;
  for (int64_t a = 0; a < 64; ++a) {
    for (int64_t b = 0; b < 64; ++b) {
      seen.insert(hash(IntTuple({a, b})));
      seen.insert(hash(IntTuple({b, a, a})));
      total += 2;
    }
  }
  EXPECT_GE(seen.size() + 4, total);
  // The hash must also spread across the full size_t range, not just the
  // low 32 bits (the old constants left the high half nearly constant).
  size_t high_bits_seen = 0;
  std::unordered_set<size_t> high_halves;
  for (size_t h : seen) high_halves.insert(h >> 32);
  high_bits_seen = high_halves.size();
  EXPECT_GT(high_bits_seen, seen.size() / 2);
}

TEST(Tuple, HashPositionSensitive) {
  // Permutations and boundary-shifted tuples must not collide.
  TupleHash hash;
  EXPECT_NE(hash(IntTuple({1, 2, 3})), hash(IntTuple({3, 2, 1})));
  EXPECT_NE(hash(IntTuple({1, 2})), hash(IntTuple({2, 1})));
  EXPECT_NE(hash(IntTuple({0, 1})), hash(IntTuple({1, 0})));
  EXPECT_NE(hash(IntTuple({})), hash(IntTuple({0})));
}

TEST(Bag, EmptyBag) {
  Bag b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.CoreSize(), 0u);
  EXPECT_EQ(b.TotalSize(), 0u);
  EXPECT_TRUE(b.IsSetValued());
  EXPECT_EQ(b.ToString(), "{{}}");
}

TEST(Bag, AddAccumulatesMultiplicity) {
  Bag b;
  b.Add(IntTuple({1}));
  b.Add(IntTuple({1}), 2);
  b.Add(IntTuple({2}));
  EXPECT_EQ(b.Count(IntTuple({1})), 3u);
  EXPECT_EQ(b.Count(IntTuple({2})), 1u);
  EXPECT_EQ(b.Count(IntTuple({3})), 0u);
  EXPECT_EQ(b.CoreSize(), 2u);
  EXPECT_EQ(b.TotalSize(), 4u);
  EXPECT_FALSE(b.IsSetValued());
}

TEST(Bag, AddZeroIsNoOp) {
  Bag b;
  b.Add(IntTuple({1}), 0);
  EXPECT_TRUE(b.empty());
}

TEST(Bag, CoreSetCollapsesMultiplicities) {
  Bag b;
  b.Add(IntTuple({1}), 5);
  b.Add(IntTuple({2}), 1);
  Bag core = b.CoreSet();
  EXPECT_EQ(core.Count(IntTuple({1})), 1u);
  EXPECT_EQ(core.TotalSize(), 2u);
  EXPECT_TRUE(core.IsSetValued());
}

TEST(Bag, EqualityIsMultisetEquality) {
  Bag a, b;
  a.Add(IntTuple({1}), 2);
  b.Add(IntTuple({1}));
  EXPECT_NE(a, b);
  b.Add(IntTuple({1}));
  EXPECT_EQ(a, b);
}

TEST(Bag, ToStringSmallMultiplicitiesExpanded) {
  Bag b;
  b.Add(IntTuple({1}), 2);
  EXPECT_EQ(b.ToString(), "{{(1), (1)}}");
}

TEST(Bag, ToStringLargeMultiplicitiesAbbreviated) {
  Bag b;
  b.Add(IntTuple({1}), 100);
  EXPECT_EQ(b.ToString(), "{{(1) x 100}}");
}

TEST(Bag, MixedTypeTuples) {
  Bag b;
  b.Add({Term::Int(1), Term::Str("x")});
  EXPECT_EQ(b.Count({Term::Int(1), Term::Str("x")}), 1u);
  EXPECT_EQ(b.Count({Term::Int(1), Term::Str("y")}), 0u);
}

}  // namespace
}  // namespace sqleq
