// Unit tests for CQ isomorphism (the Theorem 2.1(1) bag-equivalence test).
#include "equivalence/isomorphism.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sqleq {
namespace {

using testing::Q;

TEST(Isomorphism, IdenticalQueries) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");
  EXPECT_TRUE(AreIsomorphic(q, q));
}

TEST(Isomorphism, RenamedVariables) {
  EXPECT_TRUE(AreIsomorphic(Q("Q(X) :- p(X, Y)."), Q("Q(A) :- p(A, B).")));
}

TEST(Isomorphism, AtomOrderIrrelevant) {
  EXPECT_TRUE(AreIsomorphic(Q("Q(X) :- p(X, Y), r(X)."), Q("Q(A) :- r(A), p(A, B).")));
}

TEST(Isomorphism, MultiplicityMatters) {
  EXPECT_FALSE(AreIsomorphic(Q("Q(X) :- p(X, Y)."), Q("Q(A) :- p(A, B), p(A, B).")));
  EXPECT_TRUE(AreIsomorphic(Q("Q(X) :- p(X, Y), p(X, Y)."),
                            Q("Q(A) :- p(A, B), p(A, B).")));
}

TEST(Isomorphism, InjectivityRequired) {
  // p(X, Y) is NOT isomorphic to p(Z, Z): the map would not be injective.
  EXPECT_FALSE(AreIsomorphic(Q("Q(X) :- p(X, Y)."), Q("Q(Z) :- p(Z, Z).")));
  EXPECT_FALSE(AreIsomorphic(Q("Q(Z) :- p(Z, Z)."), Q("Q(X) :- p(X, Y).")));
}

TEST(Isomorphism, HeadPositionsMustCorrespond) {
  EXPECT_FALSE(AreIsomorphic(Q("Q(X, Y) :- p(X, Y)."), Q("Q(B, A) :- p(A, B).")));
  EXPECT_TRUE(AreIsomorphic(Q("Q(X, Y) :- p(X, Y)."), Q("Q(A, B) :- p(A, B).")));
}

TEST(Isomorphism, ConstantsMustMatchExactly) {
  EXPECT_TRUE(AreIsomorphic(Q("Q(X) :- p(X, 1)."), Q("Q(A) :- p(A, 1).")));
  EXPECT_FALSE(AreIsomorphic(Q("Q(X) :- p(X, 1)."), Q("Q(A) :- p(A, 2).")));
  // A variable never maps onto a constant.
  EXPECT_FALSE(AreIsomorphic(Q("Q(X) :- p(X, Y)."), Q("Q(A) :- p(A, 1).")));
}

TEST(Isomorphism, PredicateCountsQuickReject) {
  EXPECT_FALSE(AreIsomorphic(Q("Q(X) :- p(X, Y), r(X)."), Q("Q(A) :- p(A, B), p(B, A).")));
}

TEST(Isomorphism, JoinShapeDistinguished) {
  // Chain vs fork with equal predicate counts.
  ConjunctiveQuery chain = Q("Q(X) :- e(X, Y), e(Y, Z).");
  ConjunctiveQuery fork = Q("Q(X) :- e(X, Y), e(X, Z).");
  EXPECT_FALSE(AreIsomorphic(chain, fork));
}

TEST(Isomorphism, AutomorphicBodiesStillMatch) {
  ConjunctiveQuery a = Q("Q(X) :- e(X, Y), e(Y, X).");
  ConjunctiveQuery b = Q("Q(A) :- e(B, A), e(A, B).");
  EXPECT_TRUE(AreIsomorphic(a, b));
}

TEST(Isomorphism, WitnessIsConsistent) {
  ConjunctiveQuery a = Q("Q(X) :- p(X, Y), r(Y).");
  ConjunctiveQuery b = Q("Q(A) :- p(A, B), r(B).");
  std::optional<TermMap> iso = FindIsomorphism(a, b);
  ASSERT_TRUE(iso.has_value());
  EXPECT_EQ(iso->at(Term::Var("X")), Term::Var("A"));
  EXPECT_EQ(iso->at(Term::Var("Y")), Term::Var("B"));
}

TEST(Isomorphism, HeadArityMismatch) {
  EXPECT_FALSE(AreIsomorphic(Q("Q(X) :- p(X, Y)."), Q("Q(A, B) :- p(A, B).")));
}

TEST(Isomorphism, SetEquivalentButNotIsomorphic) {
  // The Chaudhuri–Vardi gap: redundant atoms break isomorphism.
  ConjunctiveQuery a = Q("Q(X) :- p(X, Y).");
  ConjunctiveQuery b = Q("Q(X) :- p(X, Y), p(X, Z).");
  EXPECT_FALSE(AreIsomorphic(a, b));
}

}  // namespace
}  // namespace sqleq
