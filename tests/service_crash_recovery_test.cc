// Process-level crash/recovery harness for the tier-2 durable memo
// (docs/service.md, "Durability & Recovery"): a real sqleqd is killed with
// SIGKILL mid-workload and restarted on the same --memo-dir. The restarted
// daemon must recover the spilled chase verdicts (memo.disk.recovered > 0),
// answer warm checks byte-identically to the pre-crash warm responses, and
// tolerate a torn/corrupt segment tail (memo.disk.corrupt_records counted,
// never a crash or a wrong verdict). The daemon binary path is injected by
// CMake as SQLEQ_SQLEQD_BIN.
#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/connection.h"
#include "service/protocol.h"
#include "test_util.h"

namespace sqleq {
namespace service {
namespace {

using ::sqleq::testing::Unwrap;

std::string TempDir(const char* tag) {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr ? base : "/tmp") + "/sqleq_" +
                     tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* made = mkdtemp(buf.data());
  EXPECT_NE(made, nullptr) << "mkdtemp failed for " << tmpl;
  return made != nullptr ? std::string(made) : std::string();
}

/// One sqleqd incarnation: fork/exec the real binary, discover the
/// ephemeral port through --port-file, SIGKILL it on demand.
class Daemon {
 public:
  Daemon(const std::string& memo_dir, const std::string& port_file)
      : port_file_(port_file) {
    ::unlink(port_file.c_str());
    pid_ = fork();
    if (pid_ == 0) {
      const char* bin = SQLEQ_SQLEQD_BIN;
      execl(bin, bin, "--port", "0", "--port-file", port_file.c_str(),
            "--memo-dir", memo_dir.c_str(), "--workers", "2",
            static_cast<char*>(nullptr));
      _exit(127);  // exec failed
    }
  }

  ~Daemon() { Kill(); }

  bool running() const { return pid_ > 0; }

  /// Polls the port file the daemon writes once it is listening.
  int WaitForPort(int timeout_ms = 10000) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      std::ifstream in(port_file_);
      int port = 0;
      if (in >> port && port > 0) return port;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return 0;
  }

  /// SIGKILL — no drain, no fsync window, exactly the crash being tested.
  void Kill() {
    if (pid_ <= 0) return;
    kill(pid_, SIGKILL);
    int status = 0;
    waitpid(pid_, &status, 0);
    pid_ = -1;
  }

 private:
  pid_t pid_ = -1;
  std::string port_file_;
};

Connection DialPort(int port) {
  RetryPolicy policy;
  policy.connect_timeout = std::chrono::milliseconds(5000);
  // The port file appears as soon as the listener is bound, but give the
  // accept loop a few tries to be safe on a loaded machine.
  for (int i = 0; i < 50; ++i) {
    Result<Connection> client =
        Connection::Connect("127.0.0.1", port, policy);
    if (client.ok()) return std::move(*client);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return Unwrap(Connection::Connect("127.0.0.1", port, policy),
                "connect to sqleqd");
}

void UploadCatalog(Connection& client) {
  Unwrap(client.Call(
      JsonObject().Str("cmd", "relation").Str("name", "r").Int("arity", 2).Build()));
  Unwrap(client.Call(
      JsonObject().Str("cmd", "relation").Str("name", "s").Int("arity", 1).Build()));
  Unwrap(client.Call(JsonObject()
                         .Str("cmd", "dep")
                         .Str("text", "r(X, Y) -> s(X).")
                         .Str("label", "fk")
                         .Build()));
}

std::string CheckLine() {
  return JsonObject()
      .Str("cmd", "check")
      .Str("q1", "Q(X) :- r(X, Y), s(X).")
      .Str("q2", "Q(X) :- r(X, Y).")
      .Str("semantics", "set")
      .Build();
}

const JsonValue* Field(const JsonValue& response, const char* key) {
  const JsonValue* v = response.Find(key);
  EXPECT_NE(v, nullptr) << "response missing field " << key;
  return v;
}

double Metric(const JsonValue& response, const char* object, const char* key) {
  const JsonValue* obj = response.Find(object);
  if (obj == nullptr) return -1.0;
  const JsonValue* v = obj->Find(key);
  return v == nullptr ? -1.0 : v->number;
}

/// The largest memo segment in `dir` — the one holding the pre-crash
/// records (recovery starts a fresh, possibly empty segment).
std::string LargestSegment(const std::string& dir) {
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return "";
  std::string best;
  off_t best_size = -1;
  while (dirent* entry = readdir(d)) {
    std::string name = entry->d_name;
    if (name.size() < 4 || name.substr(name.size() - 4) != ".seg") continue;
    std::string path = dir + "/" + name;
    struct stat st;
    if (stat(path.c_str(), &st) == 0 && st.st_size > best_size) {
      best_size = st.st_size;
      best = path;
    }
  }
  closedir(d);
  return best;
}

/// Tears the segment's tail the way a crash mid-append would: the last
/// bytes of the final record vanish, then a few garbage bytes land where
/// the next record header should be.
void TearTail(const std::string& path) {
  struct stat st;
  ASSERT_EQ(stat(path.c_str(), &st), 0) << path;
  ASSERT_GT(st.st_size, 8) << path << " too small to tear";
  ASSERT_EQ(truncate(path.c_str(), st.st_size - 7), 0);
  int fd = open(path.c_str(), O_WRONLY | O_APPEND);
  ASSERT_GE(fd, 0);
  const unsigned char garbage[12] = {0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
                                     0xff, 0xff, 0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(write(fd, garbage, sizeof(garbage)),
            static_cast<ssize_t>(sizeof(garbage)));
  close(fd);
}

TEST(ServiceCrashRecovery, WarmVerdictsSurviveSigkillByteIdentically) {
  const std::string memo_dir = TempDir("crash_memo");
  const std::string port_file = memo_dir + "/port";
  ASSERT_FALSE(memo_dir.empty());

  // --- Incarnation 1: build up warm state, then die without warning. ----
  std::string warm_before;
  {
    Daemon daemon(memo_dir, port_file);
    ASSERT_TRUE(daemon.running());
    int port = daemon.WaitForPort();
    ASSERT_GT(port, 0) << "sqleqd never published its port";
    Connection client = DialPort(port);
    UploadCatalog(client);

    JsonValue cold = Unwrap(client.Call(CheckLine()));
    ASSERT_TRUE(Field(cold, "ok")->boolean);
    ASSERT_EQ(Field(cold, "verdict")->string, "equivalent");

    JsonValue warm = Unwrap(client.Call(CheckLine(), &warm_before));
    ASSERT_TRUE(Field(warm, "ok")->boolean);
    ASSERT_GE(Metric(warm, "metrics", "memo.hits"), 1.0)
        << "second identical check should be a memory-tier hit";

    // Leave a request in flight so the kill lands mid-work, like a real
    // crash would: the response is never read.
    ASSERT_TRUE(client
                    .Send(JsonObject()
                              .Str("cmd", "reformulate")
                              .Str("query", "Q(X) :- r(X, Y), r(X, Z), s(X).")
                              .Str("semantics", "set")
                              .Build())
                    .ok());
    daemon.Kill();
  }

  // --- Incarnation 2: same --memo-dir; verdicts must come back warm. ----
  {
    Daemon daemon(memo_dir, port_file);
    int port = daemon.WaitForPort();
    ASSERT_GT(port, 0) << "restart on a recovered memo dir failed";
    Connection client = DialPort(port);
    UploadCatalog(client);

    JsonValue stats = Unwrap(client.Call(JsonObject().Str("cmd", "stats").Build()));
    ASSERT_TRUE(Field(stats, "ok")->boolean);
    EXPECT_GT(Metric(stats, "disk", "recovered"), 0.0)
        << "restart must recover the spilled records";

    // First post-restart check: a disk-tier hit, promoted — no re-chase.
    JsonValue promoted = Unwrap(client.Call(CheckLine()));
    ASSERT_TRUE(Field(promoted, "ok")->boolean);
    EXPECT_EQ(Field(promoted, "verdict")->string, "equivalent");
    EXPECT_GE(Metric(promoted, "metrics", "memo.disk.hits"), 1.0)
        << "warm verdict should come from the durable tier, not a re-chase";
    EXPECT_LE(Metric(promoted, "metrics", "chase.steps"), 0.0)
        << "promotion must not re-run the chase";

    // Second post-restart check: a pure memory hit again — byte-identical
    // to the pre-crash warm response.
    std::string warm_after;
    JsonValue warm = Unwrap(client.Call(CheckLine(), &warm_after));
    ASSERT_TRUE(Field(warm, "ok")->boolean);
    EXPECT_EQ(warm_after, warm_before)
        << "recovered warm response must match the pre-crash bytes";
    daemon.Kill();
  }

  // --- Incarnation 3: a torn + garbage tail must be skipped, not fatal. --
  const std::string segment = LargestSegment(memo_dir);
  ASSERT_FALSE(segment.empty()) << "no segment files under " << memo_dir;
  TearTail(segment);
  {
    Daemon daemon(memo_dir, port_file);
    int port = daemon.WaitForPort();
    ASSERT_GT(port, 0) << "sqleqd must start on a corrupt memo dir";
    Connection client = DialPort(port);
    UploadCatalog(client);

    JsonValue stats = Unwrap(client.Call(JsonObject().Str("cmd", "stats").Build()));
    ASSERT_TRUE(Field(stats, "ok")->boolean);
    EXPECT_GE(Metric(stats, "disk", "corrupt_records"), 1.0)
        << "the torn tail must be counted";

    // The verdict is still correct: served from the surviving records or
    // re-chased if the torn record happened to be this one.
    JsonValue check = Unwrap(client.Call(CheckLine()));
    ASSERT_TRUE(Field(check, "ok")->boolean);
    EXPECT_EQ(Field(check, "verdict")->string, "equivalent");
    daemon.Kill();
  }
}

}  // namespace
}  // namespace service
}  // namespace sqleq
