// Unit tests for string utilities and the deterministic RNG.
#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"
#include "util/string_util.h"

namespace sqleq {
namespace {

TEST(StringUtil, JoinEmpty) { EXPECT_EQ(Join({}, ", "), ""); }

TEST(StringUtil, JoinOne) { EXPECT_EQ(Join({"a"}, ", "), "a"); }

TEST(StringUtil, JoinMany) { EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c"); }

TEST(StringUtil, TrimBothSides) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\nx"), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtil, SplitAndTrimDropsEmptyPieces) {
  std::vector<std::string> parts = SplitAndTrim(" a, b ,, c ,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtil, SplitEmptyInput) { EXPECT_TRUE(SplitAndTrim("", ',').empty()); }

TEST(StringUtil, CaseInsensitiveComparisons) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_TRUE(StartsWithIgnoreCase("CREATE TABLE t", "create"));
  EXPECT_FALSE(StartsWithIgnoreCase("abc", "abcd"));
}

TEST(StringUtil, CaseConversion) {
  EXPECT_EQ(ToLower("AbC1"), "abc1");
  EXPECT_EQ(ToUpper("AbC1"), "ABC1");
}

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(Rng, UniformIntRespectsRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int x = rng.UniformInt(-3, 5);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 5);
  }
}

TEST(Rng, IndexCoversAllSlots) {
  Rng rng(2);
  std::set<size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Index(4));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(4);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace sqleq
