// Unit tests for CQ → SQL rendering, including round-trips through the
// translator.
#include "sql/render.h"

#include <gtest/gtest.h>

#include "db/eval.h"
#include "equivalence/isomorphism.h"
#include "sql/translate.h"
#include "test_util.h"

namespace sqleq {
namespace sql {
namespace {

using sqleq::testing::AQ;
using sqleq::testing::Q;

template <typename T>
T Must(Result<T> r) {
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok()) std::abort();
  return std::move(r).value();
}

Schema EmpSchema() {
  Schema s;
  EXPECT_TRUE(s.AddRelation("emp", 3, {"id", "dept", "salary"}).ok());
  EXPECT_TRUE(s.AddRelation("dept", 2, {"id", "mgr"}).ok());
  return s;
}

TEST(RenderSqlTest, SimpleProjection) {
  std::string out = Must(RenderSql(Q("Q(X) :- emp(X, D, S)."), EmpSchema()));
  EXPECT_EQ(out, "SELECT t0.id FROM emp t0");
}

TEST(RenderSqlTest, DistinctForSetSemantics) {
  std::string out =
      Must(RenderSql(Q("Q(X) :- emp(X, D, S)."), EmpSchema(), Semantics::kSet));
  EXPECT_EQ(out, "SELECT DISTINCT t0.id FROM emp t0");
}

TEST(RenderSqlTest, JoinConditionFromSharedVariable) {
  std::string out = Must(
      RenderSql(Q("Q(X) :- emp(X, D, S), dept(D, M)."), EmpSchema()));
  EXPECT_EQ(out,
            "SELECT t0.id FROM emp t0, dept t1 WHERE t0.dept = t1.id");
}

TEST(RenderSqlTest, ConstantBecomesEquality) {
  std::string out = Must(RenderSql(Q("Q(X) :- emp(X, D, 100)."), EmpSchema()));
  EXPECT_EQ(out, "SELECT t0.id FROM emp t0 WHERE t0.salary = 100");
}

TEST(RenderSqlTest, StringConstantQuoted) {
  Schema s;
  ASSERT_TRUE(s.AddRelation("log", 2, {"emp", "action"}).ok());
  std::string out = Must(RenderSql(Q("Q(X) :- log(X, 'login')."), s));
  EXPECT_EQ(out, "SELECT t0.emp FROM log t0 WHERE t0.action = 'login'");
}

TEST(RenderSqlTest, SelfJoinRepeatedVariable) {
  std::string out =
      Must(RenderSql(Q("Q(X) :- emp(X, D, S), emp(Y, D, S2)."), EmpSchema()));
  EXPECT_EQ(out,
            "SELECT t0.id FROM emp t0, emp t1 WHERE t0.dept = t1.dept");
}

TEST(RenderSqlTest, ConstantHeadTerm) {
  std::string out = Must(RenderSql(Q("Q(1, X) :- emp(X, D, S)."), EmpSchema()));
  EXPECT_EQ(out, "SELECT 1, t0.id FROM emp t0");
}

TEST(RenderSqlTest, UnknownRelationFails) {
  EXPECT_FALSE(RenderSql(Q("Q(X) :- zz(X)."), EmpSchema()).ok());
}

TEST(RenderSqlTest, ArityMismatchFails) {
  EXPECT_FALSE(RenderSql(Q("Q(X) :- emp(X, D)."), EmpSchema()).ok());
}

TEST(RenderAggregateSqlTest, GroupBy) {
  std::string out =
      Must(RenderAggregateSql(AQ("A(D, sum(S)) :- emp(E, D, S)."), EmpSchema()));
  EXPECT_EQ(out,
            "SELECT t0.dept, SUM(t0.salary) FROM emp t0 GROUP BY t0.dept");
}

TEST(RenderAggregateSqlTest, CountStarNoGrouping) {
  std::string out =
      Must(RenderAggregateSql(AQ("A(count(*)) :- emp(E, D, S)."), EmpSchema()));
  EXPECT_EQ(out, "SELECT COUNT(*) FROM emp t0");
}

TEST(RenderAggregateSqlTest, MaxMinCount) {
  EXPECT_NE(Must(RenderAggregateSql(AQ("A(max(S)) :- emp(E, D, S)."), EmpSchema()))
                .find("MAX(t0.salary)"),
            std::string::npos);
  EXPECT_NE(Must(RenderAggregateSql(AQ("A(min(S)) :- emp(E, D, S)."), EmpSchema()))
                .find("MIN(t0.salary)"),
            std::string::npos);
  EXPECT_NE(Must(RenderAggregateSql(AQ("A(count(S)) :- emp(E, D, S)."), EmpSchema()))
                .find("COUNT(t0.salary)"),
            std::string::npos);
}

TEST(RenderRoundTrip, SqlToCqToSqlToCqIsIsomorphic) {
  // render(translate(sql)) re-translates to an isomorphic query.
  Catalog catalog = Must(CatalogFromScript(R"(
    CREATE TABLE emp (id INT PRIMARY KEY, dept INT, salary INT);
    CREATE TABLE dept (id INT PRIMARY KEY, mgr INT);
  )"));
  TranslatedQuery first = Must(TranslateSql(
      "SELECT e.id FROM emp e, dept d WHERE e.dept = d.id AND d.mgr = 7",
      catalog));
  std::string rendered = Must(RenderSql(*first.cq, catalog.schema));
  TranslatedQuery second = Must(TranslateSql(rendered, catalog));
  EXPECT_TRUE(AreIsomorphic(*first.cq, *second.cq))
      << rendered << "\n"
      << first.cq->ToString() << "\n"
      << second.cq->ToString();
}

TEST(RenderRoundTrip, AggregateRoundTrip) {
  Catalog catalog = Must(CatalogFromScript(
      "CREATE TABLE emp (id INT PRIMARY KEY, dept INT, salary INT)"));
  TranslatedQuery first = Must(TranslateSql(
      "SELECT dept, SUM(salary) FROM emp GROUP BY dept", catalog));
  std::string rendered = Must(RenderAggregateSql(*first.aggregate, catalog.schema));
  TranslatedQuery second = Must(TranslateSql(rendered, catalog));
  ASSERT_TRUE(second.is_aggregate);
  EXPECT_EQ(second.aggregate->function(), AggregateFunction::kSum);
  EXPECT_TRUE(AreIsomorphic(first.aggregate->Core(), second.aggregate->Core()));
}

}  // namespace
}  // namespace sql
}  // namespace sqleq
