// Tests for the canonical query key and the thread-safe chase memo.
#include "chase/chase_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "equivalence/isomorphism.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::Example41Schema;
using testing::Example41Sigma;
using testing::Q;
using testing::Sigma;
using testing::Unwrap;

TEST(CanonicalQueryKey, InvariantUnderRenamingAndAtomOrder) {
  ConjunctiveQuery a = Q("Q(X) :- p(X, Y), r(Y), p(Y, Z).");
  ConjunctiveQuery b = Q("P(A) :- p(B, C), p(A, B), r(B).");  // renamed + reordered
  EXPECT_EQ(CanonicalQueryKey(a), CanonicalQueryKey(b));
}

TEST(CanonicalQueryKey, DistinguishesDifferentQueries) {
  EXPECT_NE(CanonicalQueryKey(Q("Q(X) :- p(X, Y).")),
            CanonicalQueryKey(Q("Q(X) :- p(Y, X).")));
  EXPECT_NE(CanonicalQueryKey(Q("Q(X) :- p(X, Y).")),
            CanonicalQueryKey(Q("Q(X) :- p(X, Y), p(X, Z).")));
  EXPECT_NE(CanonicalQueryKey(Q("Q(X) :- p(X, 1).")),
            CanonicalQueryKey(Q("Q(X) :- p(X, 2).")));
  // Head projection matters.
  EXPECT_NE(CanonicalQueryKey(Q("Q(X) :- p(X, Y).")),
            CanonicalQueryKey(Q("Q(Y) :- p(X, Y).")));
}

TEST(CanonicalQueryKey, CanonicalQueryIsIsomorphicToInput) {
  ConjunctiveQuery q = Q("Q(X, Z) :- p(X, Y), p(Y, Z), r(Y).");
  ConjunctiveQuery canonical = q;
  TermMap from_canonical;
  CanonicalQueryKey(q, &canonical, &from_canonical);
  EXPECT_TRUE(AreIsomorphic(q, canonical));
  // The inverse map restores the original variables.
  ConjunctiveQuery restored = canonical.Substitute(from_canonical);
  EXPECT_EQ(restored.head(), q.head());
}

TEST(ChaseMemo, IsomorphicQueriesShareOneChase) {
  ChaseMemo memo(Example41Sigma(), Semantics::kSet, Example41Schema(), {});
  Unwrap(memo.ChaseCanonical(Q("Q(X) :- p(X, Y).")));
  Unwrap(memo.ChaseCanonical(Q("P(A) :- p(A, B).")));  // isomorphic
  ChaseMemo::Stats stats = memo.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ChaseMemo, ChaseRemapsOntoCallerVariables) {
  DependencySet sigma = Sigma({"a(X) -> b(X)."});
  ChaseMemo memo(sigma, Semantics::kSet, Schema(), {});
  ChaseOutcome outcome = Unwrap(memo.Chase(Q("Q(W) :- a(W).")));
  EXPECT_EQ(outcome.result.name(), "Q");
  ASSERT_EQ(outcome.result.head().size(), 1u);
  EXPECT_EQ(outcome.result.head()[0], Term::Var("W"));
  ASSERT_EQ(outcome.result.body().size(), 2u);
  // Cached entry serves an isomorphic query under ITS variables.
  ChaseOutcome second = Unwrap(memo.Chase(Q("P(V) :- a(V).")));
  EXPECT_EQ(second.result.head()[0], Term::Var("V"));
  EXPECT_EQ(memo.stats().hits, 1u);
}

TEST(ChaseMemo, FailedChasesAreCachedAsOutcomes) {
  DependencySet sigma = Sigma({"s(A, B), s(A, C) -> B = C."});
  ChaseMemo memo(sigma, Semantics::kSet, Schema(), {});
  std::shared_ptr<const ChaseOutcome> first =
      Unwrap(memo.ChaseCanonical(Q("Q(X) :- s(X, 1), s(X, 2).")));
  EXPECT_TRUE(first->failed);
  std::shared_ptr<const ChaseOutcome> second =
      Unwrap(memo.ChaseCanonical(Q("P(Y) :- s(Y, 1), s(Y, 2).")));
  EXPECT_TRUE(second->failed);
  EXPECT_EQ(memo.stats().misses, 1u);
}

TEST(ChaseMemo, ConcurrentCallersAgreeOnOutcomes) {
  // Hammer one memo from many threads with a mix of isomorphic and distinct
  // queries; every caller must see the same chase results. (Runs under the
  // `tsan` label in sanitizer builds.)
  ChaseMemo memo(Example41Sigma(), Semantics::kSet, Example41Schema(), {});
  std::vector<ConjunctiveQuery> queries = {
      Q("Q(X) :- p(X, Y)."),          Q("P(A) :- p(A, B)."),
      Q("Q(X) :- p(X, Y), r(X)."),    Q("P(A) :- r(A), p(A, B)."),
      Q("Q(X) :- p(X, Y), u(X, U)."), Q("P(A) :- u(A, C), p(A, B)."),
  };
  std::vector<std::jthread> workers;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&memo, &queries, &mismatches, t] {
      for (int round = 0; round < 20; ++round) {
        const ConjunctiveQuery& q = queries[(t + round) % queries.size()];
        Result<std::shared_ptr<const ChaseOutcome>> outcome = memo.ChaseCanonical(q);
        if (!outcome.ok() || (*outcome)->failed) mismatches.fetch_add(1);
      }
    });
  }
  workers.clear();  // join
  EXPECT_EQ(mismatches.load(), 0);
  ChaseMemo::Stats stats = memo.stats();
  EXPECT_EQ(stats.entries, 3u);  // three distinct canonical forms
  EXPECT_EQ(stats.hits + stats.misses, 8u * 20u);
}

}  // namespace
}  // namespace sqleq
