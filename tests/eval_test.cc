// Unit tests for CQ evaluation under set / bag / bag-set semantics — the
// §2.1–2.2 definitions, including the paper's worked multiplicities.
#include "db/eval.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sqleq {
namespace {

using testing::Q;
using testing::Unwrap;

Schema PSchema() {
  Schema s;
  s.Relation("p", 2).Relation("r", 1);
  return s;
}

TEST(Evaluate, SetSemanticsDeduplicates) {
  Database db(PSchema());
  db.Add("p", {1, 2}).Add("p", {1, 3});
  Bag ans = Unwrap(Evaluate(Q("Q(X) :- p(X, Y)."), db, Semantics::kSet));
  EXPECT_EQ(ans.Count(IntTuple({1})), 1u);
  EXPECT_EQ(ans.TotalSize(), 1u);
}

TEST(Evaluate, BagSetSemanticsCountsAssignments) {
  Database db(PSchema());
  db.Add("p", {1, 2}).Add("p", {1, 3});
  Bag ans = Unwrap(Evaluate(Q("Q(X) :- p(X, Y)."), db, Semantics::kBagSet));
  // Two satisfying assignments (Y=2, Y=3) for the same head tuple.
  EXPECT_EQ(ans.Count(IntTuple({1})), 2u);
}

TEST(Evaluate, BagSemanticsMultipliesMultiplicities) {
  Database db(PSchema());
  db.Add("p", {1, 2}, 3);
  Bag ans = Unwrap(Evaluate(Q("Q(X) :- p(X, Y)."), db, Semantics::kBag));
  EXPECT_EQ(ans.Count(IntTuple({1})), 3u);
}

TEST(Evaluate, BagSemanticsSelfJoinSquaresMultiplicity) {
  // §2.2: each subgoal contributes its matched tuple's multiplicity.
  Database db(PSchema());
  db.Add("p", {1, 2}, 3);
  Bag ans = Unwrap(Evaluate(Q("Q(X) :- p(X, Y), p(X, Y)."), db, Semantics::kBag));
  EXPECT_EQ(ans.Count(IntTuple({1})), 9u);
}

TEST(Evaluate, BagSetIgnoresBaseMultiplicities) {
  // BS reads relations as core-sets: Q(D,BS) = Q(coreSet(D),BS).
  Database db(PSchema());
  db.Add("p", {1, 2}, 5);
  Bag ans = Unwrap(Evaluate(Q("Q(X) :- p(X, Y)."), db, Semantics::kBagSet));
  EXPECT_EQ(ans.Count(IntTuple({1})), 1u);
}

TEST(Evaluate, JoinAcrossRelations) {
  Database db(PSchema());
  db.Add("p", {1, 2}).Add("p", {2, 3}).Add("r", {1});
  Bag ans = Unwrap(Evaluate(Q("Q(X, Y) :- p(X, Y), r(X)."), db, Semantics::kSet));
  EXPECT_EQ(ans.Count(IntTuple({1, 2})), 1u);
  EXPECT_EQ(ans.TotalSize(), 1u);
}

TEST(Evaluate, ConstantInBodyFilters) {
  Database db(PSchema());
  db.Add("p", {1, 2}).Add("p", {1, 7});
  Bag ans = Unwrap(Evaluate(Q("Q(X) :- p(X, 7)."), db, Semantics::kBagSet));
  EXPECT_EQ(ans.Count(IntTuple({1})), 1u);
  EXPECT_EQ(ans.TotalSize(), 1u);
}

TEST(Evaluate, ConstantInHeadEmitted) {
  Database db(PSchema());
  db.Add("p", {1, 2});
  Bag ans = Unwrap(Evaluate(Q("Q(X, 9) :- p(X, Y)."), db, Semantics::kSet));
  EXPECT_EQ(ans.Count(IntTuple({1, 9})), 1u);
}

TEST(Evaluate, RepeatedVariableEnforcesEquality) {
  Database db(PSchema());
  db.Add("p", {1, 1}).Add("p", {1, 2});
  Bag ans = Unwrap(Evaluate(Q("Q(X) :- p(X, X)."), db, Semantics::kSet));
  EXPECT_EQ(ans.TotalSize(), 1u);
  EXPECT_EQ(ans.Count(IntTuple({1})), 1u);
}

TEST(Evaluate, EmptyRelationGivesEmptyAnswer) {
  Database db(PSchema());
  Bag ans = Unwrap(Evaluate(Q("Q(X) :- p(X, Y)."), db, Semantics::kBag));
  EXPECT_TRUE(ans.empty());
}

TEST(Evaluate, CartesianProductUnderBag) {
  Database db(PSchema());
  db.Add("p", {1, 1}, 2).Add("r", {5}, 3);
  Bag ans = Unwrap(Evaluate(Q("Q(X, Z) :- p(X, Y), r(Z)."), db, Semantics::kBag));
  EXPECT_EQ(ans.Count(IntTuple({1, 5})), 6u);
}

TEST(Evaluate, UnknownRelationFails) {
  Database db(PSchema());
  EXPECT_FALSE(Evaluate(Q("Q(X) :- zz(X)."), db, Semantics::kSet).ok());
}

TEST(Evaluate, ArityMismatchFails) {
  Database db(PSchema());
  EXPECT_FALSE(Evaluate(Q("Q(X) :- p(X)."), db, Semantics::kSet).ok());
}

TEST(Evaluate, ChaudhuriVardiBagCounterexample) {
  // Classic: Q1(X):-p(X,Y),p(X,Z) vs Q2(X):-p(X,Y) are set-equivalent but
  // not bag-set-equivalent; the evaluation engine must witness that.
  Database db(PSchema());
  db.Add("p", {1, 2}).Add("p", {1, 3});
  Bag a1 = Unwrap(Evaluate(Q("Q(X) :- p(X, Y), p(X, Z)."), db, Semantics::kBagSet));
  Bag a2 = Unwrap(Evaluate(Q("Q(X) :- p(X, Y)."), db, Semantics::kBagSet));
  EXPECT_EQ(a1.Count(IntTuple({1})), 4u);
  EXPECT_EQ(a2.Count(IntTuple({1})), 2u);
  Bag s1 = Unwrap(Evaluate(Q("Q(X) :- p(X, Y), p(X, Z)."), db, Semantics::kSet));
  Bag s2 = Unwrap(Evaluate(Q("Q(X) :- p(X, Y)."), db, Semantics::kSet));
  EXPECT_EQ(s1, s2);
}

TEST(ForEachSatisfyingAssignment, EnumeratesAll) {
  Database db(PSchema());
  db.Add("p", {1, 2}).Add("p", {3, 4});
  int count = 0;
  Status s = ForEachSatisfyingAssignment(
      std::vector<Atom>{Atom("p", {Term::Var("X"), Term::Var("Y")})}, db, TermMap(),
      [&count](const TermMap&) {
        ++count;
        return true;
      });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(count, 2);
}

TEST(ForEachSatisfyingAssignment, RespectsFixedBindings) {
  Database db(PSchema());
  db.Add("p", {1, 2}).Add("p", {3, 4});
  int count = 0;
  TermMap fixed{{Term::Var("X"), Term::Int(3)}};
  Status s = ForEachSatisfyingAssignment(
      std::vector<Atom>{Atom("p", {Term::Var("X"), Term::Var("Y")})}, db, fixed,
      [&count](const TermMap& gamma) {
        EXPECT_EQ(gamma.at(Term::Var("Y")), Term::Int(4));
        ++count;
        return true;
      });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(count, 1);
}

TEST(ForEachSatisfyingAssignment, EarlyStop) {
  Database db(PSchema());
  db.Add("p", {1, 2}).Add("p", {3, 4});
  int count = 0;
  Status s = ForEachSatisfyingAssignment(
      std::vector<Atom>{Atom("p", {Term::Var("X"), Term::Var("Y")})}, db, TermMap(),
      [&count](const TermMap&) {
        ++count;
        return false;
      });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(count, 1);
}

TEST(HasSatisfyingAssignment, PositiveAndNegative) {
  Database db(PSchema());
  db.Add("p", {1, 2});
  std::vector<Atom> atoms{Atom("p", {Term::Var("X"), Term::Var("Y")})};
  EXPECT_TRUE(*HasSatisfyingAssignment(atoms, db, TermMap()));
  TermMap fixed{{Term::Var("X"), Term::Int(9)}};
  EXPECT_FALSE(*HasSatisfyingAssignment(atoms, db, fixed));
}

TEST(SemanticsToStringNames, AllCovered) {
  EXPECT_STREQ(SemanticsToString(Semantics::kSet), "S");
  EXPECT_STREQ(SemanticsToString(Semantics::kBag), "B");
  EXPECT_STREQ(SemanticsToString(Semantics::kBagSet), "BS");
}

}  // namespace
}  // namespace sqleq
