// Unit tests for CQ minimization and Σ-minimality (Definition 3.1).
#include "reformulation/minimize.h"

#include <gtest/gtest.h>

#include "equivalence/containment.h"
#include "equivalence/isomorphism.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::Example41Schema;
using testing::Example41Sigma;
using testing::Q;
using testing::Unwrap;

TEST(MinimizeSet, RedundantAtomRemoved) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), p(X, Z).");
  ConjunctiveQuery m = MinimizeSet(q);
  EXPECT_EQ(m.body().size(), 1u);
  EXPECT_TRUE(SetEquivalent(m, q));
}

TEST(MinimizeSet, AlreadyMinimalUntouched) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), r(Y).");
  ConjunctiveQuery m = MinimizeSet(q);
  EXPECT_TRUE(AreIsomorphic(m, q));
}

TEST(MinimizeSet, DuplicatesCollapseFirst) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), p(X, Y), p(X, Y).");
  EXPECT_EQ(MinimizeSet(q).body().size(), 1u);
}

TEST(MinimizeSet, ChainFoldsIntoCycleCore) {
  // e(X,Y), e(Y,Z), e(Z,X) plus a redundant appendix e(X,W): the appendix
  // maps into the cycle, the cycle itself is a core.
  ConjunctiveQuery q = Q("Q(X) :- e(X, Y), e(Y, Z), e(Z, X), e(X, W).");
  ConjunctiveQuery m = MinimizeSet(q);
  EXPECT_EQ(m.body().size(), 3u);
  EXPECT_TRUE(SetEquivalent(m, q));
}

TEST(MinimizeSet, HeadVariablesProtectAtoms) {
  // The head uses W, so e(X, W) cannot be dropped even though it maps in.
  ConjunctiveQuery q = Q("Q(X, W) :- e(X, Y), e(Y, Z), e(Z, X), e(X, W).");
  EXPECT_EQ(MinimizeSet(q).body().size(), 4u);
}

TEST(MinimizeSet, BooleanQueryShrinksToOneAtom) {
  ConjunctiveQuery q = Q("Q(1) :- e(X, Y), e(Z, W).");
  EXPECT_EQ(MinimizeSet(q).body().size(), 1u);
}

TEST(IsSigmaMinimalTest, Example41Q4IsMinimal) {
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  EXPECT_TRUE(Unwrap(IsSigmaMinimal(q4, Example41Sigma(), Semantics::kBag,
                                    Example41Schema())));
}

TEST(IsSigmaMinimalTest, Example41Q3NotMinimalUnderBag) {
  // Q3 ≡Σ,B Q4 and Q4 is a proper subquery: Q3 is not Σ-minimal under B.
  ConjunctiveQuery q3 = Q("Q3(X) :- p(X, Y), t(X, Y, W), s(X, Z).");
  EXPECT_FALSE(Unwrap(IsSigmaMinimal(q3, Example41Sigma(), Semantics::kBag,
                                     Example41Schema())));
}

TEST(IsSigmaMinimalTest, WithoutDependenciesRedundancyDetected) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), p(X, Z).");
  Schema schema;
  schema.Relation("p", 2);
  EXPECT_FALSE(Unwrap(IsSigmaMinimal(q, {}, Semantics::kSet, schema)));
  // Under bag semantics that query IS minimal (no subquery is ≡B).
  EXPECT_TRUE(Unwrap(IsSigmaMinimal(q, {}, Semantics::kBag, schema)));
}

TEST(IsSigmaMinimalTest, VariableIdentificationWitness) {
  // Q(X) :- p(X,Y), p(Y,X), p(X,X): substituting Y→X gives S1 with three
  // copies of p(X,X); S1 ≡S Q? S1 maps into Q (all to p(X,X)) and Q maps
  // into S1? p(X,Y)→p(X,X) needs Y→X fine. So both contain each other —
  // then dropping two atoms leaves p(X,X) which is still ≡S Q.
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), p(Y, X), p(X, X).");
  Schema schema;
  schema.Relation("p", 2);
  EXPECT_FALSE(Unwrap(IsSigmaMinimal(q, {}, Semantics::kSet, schema)));
}

TEST(IsSigmaMinimalTest, BudgetSurfacesAsError) {
  // 12 distinct variables => 12^12 substitutions: must trip the budget.
  ConjunctiveQuery q = Q(
      "Q(A) :- e(A, B), e(B, C), e(C, D), e(D, E), e(E, F), e(F, G), e(G, H), "
      "e(H, I), e(I, J), e(J, K), e(K, L).");
  Schema schema;
  schema.Relation("e", 2);
  Result<bool> r = IsSigmaMinimal(q, {}, Semantics::kSet, schema, {}, 1000);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace sqleq
