// Unit tests for Max-Bag-Σ-Subset / Max-Bag-Set-Σ-Subset (Algorithms 1–2,
// Theorems 5.3, 5.4, I.1, Proposition 5.2).
#include "chase/max_subset.h"

#include <gtest/gtest.h>

#include <set>

#include "db/satisfaction.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::Example41Schema;
using testing::Example41Sigma;
using testing::Q;
using testing::Unwrap;

std::set<std::string> Labels(const DependencySet& sigma) {
  std::set<std::string> out;
  for (const Dependency& d : sigma) out.insert(d.label());
  return out;
}

TEST(MaxSubset, Example41BagSubset) {
  // D(Q3) satisfies σ1 (s+t pieces), σ2, and the egds, but neither σ3
  // (needs r) nor σ4 (needs u).
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  MaxSubsetResult r =
      Unwrap(MaxBagSigmaSubset(q4, Example41Sigma(), Example41Schema()));
  std::set<std::string> labels = Labels(r.max_subset);
  EXPECT_TRUE(labels.count("sigma1") > 0);
  EXPECT_TRUE(labels.count("sigma2") > 0);
  EXPECT_EQ(labels.count("sigma3"), 0u);
  EXPECT_EQ(labels.count("sigma4"), 0u);
  EXPECT_TRUE(labels.count("sigma5") > 0);
  EXPECT_TRUE(labels.count("sigma6") > 0);
}

TEST(MaxSubset, Example41BagSetSubsetLarger) {
  // ΣmaxB ⊆ ΣmaxBS ⊆ Σ, both proper here (Prop 5.2): σ3 returns under BS.
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  MaxSubsetResult b = Unwrap(MaxBagSigmaSubset(q4, Example41Sigma(), Example41Schema()));
  MaxSubsetResult bs =
      Unwrap(MaxBagSetSigmaSubset(q4, Example41Sigma(), Example41Schema()));
  std::set<std::string> lb = Labels(b.max_subset);
  std::set<std::string> lbs = Labels(bs.max_subset);
  for (const std::string& l : lb) EXPECT_TRUE(lbs.count(l) > 0) << l;
  EXPECT_TRUE(lbs.count("sigma3") > 0);
  EXPECT_EQ(lbs.count("sigma4"), 0u);
  EXPECT_LT(lb.size(), lbs.size());
  EXPECT_LT(lbs.size(), Example41Sigma().size());
}

TEST(MaxSubset, CanonicalDatabaseSatisfiesSubset) {
  // The defining property (Thm 5.3): D(Qn) |= ΣmaxB(Q, Σ).
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  MaxSubsetResult r =
      Unwrap(MaxBagSigmaSubset(q4, Example41Sigma(), Example41Schema()));
  CanonicalDatabase canon =
      Unwrap(BuildCanonicalDatabase(r.chase_result, Example41Schema()));
  EXPECT_TRUE(Unwrap(Satisfies(canon.database, r.max_subset)));
}

TEST(MaxSubset, MaximalityEachDroppedDependencyIsViolated) {
  // Maximality (Thm 5.3): every dependency outside the subset is violated
  // by D(Qn), so no strict superset works.
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  DependencySet sigma = Example41Sigma();
  MaxSubsetResult r = Unwrap(MaxBagSigmaSubset(q4, sigma, Example41Schema()));
  CanonicalDatabase canon =
      Unwrap(BuildCanonicalDatabase(r.chase_result, Example41Schema()));
  std::set<std::string> kept = Labels(r.max_subset);
  for (const Dependency& dep : sigma) {
    if (kept.count(dep.label()) > 0) continue;
    EXPECT_FALSE(Unwrap(Satisfies(canon.database, dep))) << dep.ToString();
  }
}

TEST(MaxSubset, QueryDependence) {
  // §5.3: for Q(X) :- p(X,Y), u(X,Z) the canonical database of (Q)Σ,B does
  // satisfy σ4 (the u-subgoal is already there).
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), u(X, Z).");
  MaxSubsetResult r = Unwrap(MaxBagSigmaSubset(q, Example41Sigma(), Example41Schema()));
  EXPECT_TRUE(Labels(r.max_subset).count("sigma4") > 0);
}

TEST(MaxSubset, AllSatisfiedWhenNothingApplies) {
  DependencySet sigma = testing::Sigma({"p(X, Y) -> r(X)."});
  Schema schema;
  schema.Relation("p", 2).Relation("r", 1, /*set_valued=*/true);
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), r(X).");
  MaxSubsetResult r = Unwrap(MaxSigmaSubset(q, sigma, Semantics::kBag, schema));
  EXPECT_EQ(r.max_subset.size(), sigma.size());
}

TEST(MaxSubset, RejectsSetSemantics) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");
  Result<MaxSubsetResult> r =
      MaxSigmaSubset(q, Example41Sigma(), Semantics::kSet, Example41Schema());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(MaxSubset, ChaseResultReturnedMatchesSoundChase) {
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  MaxSubsetResult r =
      Unwrap(MaxBagSigmaSubset(q4, Example41Sigma(), Example41Schema()));
  EXPECT_EQ(r.chase_result.body().size(), 3u);  // Q3
}

}  // namespace
}  // namespace sqleq
