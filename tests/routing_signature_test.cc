// Regression property test for CanonicalRequestSignature on constant-heavy
// queries (service/routing.h): the canonicalization that makes renamed /
// reordered queries share a shard must never identify two queries that
// differ only in constant *values* — that would route inequivalent checks
// to one warm memo key and, worse, collide their cache identities.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "service/protocol.h"
#include "service/routing.h"
#include "test_util.h"

namespace sqleq {
namespace service {
namespace {

using ::sqleq::testing::Unwrap;

std::string SignatureOf(const std::string& line) {
  Request request = Unwrap(ParseRequest(line));
  return CanonicalRequestSignature(request.cmd, request.body);
}

std::string CheckLine(const std::string& q1, const std::string& q2) {
  return std::string(R"({"cmd":"check","q1":")") + q1 + R"(","q2":")" + q2 +
         R"(","semantics":"set"})";
}

/// Sweep constant values through every body position of a fixed shape: all
/// signatures must be pairwise distinct, and distinct from the all-variable
/// query of the same shape.
TEST(RoutingSignature, ConstantValuesNeverCollide) {
  const std::string all_vars = "Q(X) :- r(X, Y, Z), s(Y, W).";
  std::set<std::string> seen;
  seen.insert(SignatureOf(CheckLine(all_vars, all_vars)));
  for (int position = 0; position < 2; ++position) {
    for (int value = 0; value < 25; ++value) {
      std::string q =
          position == 0
              ? "Q(X) :- r(X, Y, " + std::to_string(value) + "), s(Y, W)."
              : "Q(X) :- r(X, Y, Z), s(Y, " + std::to_string(value) + ").";
      EXPECT_TRUE(seen.insert(SignatureOf(CheckLine(q, q))).second)
          << "signature collision for constant " << value << " at position "
          << position;
    }
  }
}

/// Multiple constants in one query: permuting which value sits at which
/// position must change the signature (values are tied to positions, not
/// pooled into a bag).
TEST(RoutingSignature, ConstantPositionsAreDistinguished) {
  std::string a = SignatureOf(
      CheckLine("Q(X) :- r(X, 1, 2).", "Q(X) :- r(X, 1, 2)."));
  std::string b = SignatureOf(
      CheckLine("Q(X) :- r(X, 2, 1).", "Q(X) :- r(X, 2, 1)."));
  EXPECT_NE(a, b);
}

/// The flip side: canonicalization must still hold with constants present —
/// renaming variables and reordering atoms around the constants does not
/// change the signature.
TEST(RoutingSignature, RenamingInvariantWithConstants) {
  std::string a = SignatureOf(
      CheckLine("Q(X) :- r(X, Y, 7), s(Y, 3).", "Q(X) :- r(X, Y, 7)."));
  std::string b = SignatureOf(
      CheckLine("Q(A) :- s(B, 3), r(A, B, 7).", "Q(A) :- r(A, B, 7)."));
  EXPECT_EQ(a, b);
  // And the q1/q2 symmetrization still applies.
  std::string swapped = SignatureOf(
      CheckLine("Q(X) :- r(X, Y, 7).", "Q(X) :- r(X, Y, 7), s(Y, 3)."));
  EXPECT_EQ(a, swapped);
}

/// A constant must never be confused with a variable occupying the same
/// position.
TEST(RoutingSignature, ConstantVersusVariableDiffer) {
  std::string constant = SignatureOf(
      CheckLine("Q(X) :- r(X, 0).", "Q(X) :- r(X, 0)."));
  std::string variable = SignatureOf(
      CheckLine("Q(X) :- r(X, Y).", "Q(X) :- r(X, Y)."));
  EXPECT_NE(constant, variable);
}

}  // namespace
}  // namespace service
}  // namespace sqleq
