// Fleet-mode tests (docs/fleet.md): the v2 protocol surface (negotiation,
// version-gated verbs, byte-identical v1 hello), consistent-hash routing and
// not_owner redirects across a real 3-shard fleet of in-process Servers,
// the peer memo tier (memo.peer.hits across shards), and the FleetClient
// pool lifecycle — reuse, eviction of dead connections, redial-and-resend
// with catalog replay.
#include "service/fleet_client.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "service/connection.h"
#include "service/protocol.h"
#include "service/routing.h"
#include "service/server.h"
#include "test_util.h"
#include "util/socket.h"

namespace sqleq {
namespace service {
namespace {

using ::sqleq::testing::Unwrap;

const JsonValue* Field(const JsonValue& response, const char* key) {
  const JsonValue* v = response.Find(key);
  EXPECT_NE(v, nullptr) << "response missing field " << key;
  return v;
}

/// N shards on loopback with concrete ports picked by ephemeral-bind probes
/// (released before any server starts; same small race as sqleq-fleet).
std::vector<ShardId> ProbeTopology(size_t n) {
  std::vector<ShardId> topology;
  for (size_t i = 0; i < n; ++i) {
    TcpListener probe;
    EXPECT_TRUE(probe.Listen(0).ok());
    ShardId shard;
    shard.name = "shard" + std::to_string(i);
    shard.host = "127.0.0.1";
    shard.port = probe.port();
    topology.push_back(std::move(shard));
  }
  return topology;
}

/// An in-process fleet: one Server per topology entry, all sharing the
/// fleet spec, like sqleq-fleet does with real processes.
struct TestFleet {
  std::vector<ShardId> topology;
  std::vector<std::unique_ptr<Server>> servers;

  static TestFleet Start(size_t n, uint64_t epoch = 7) {
    TestFleet fleet;
    fleet.topology = ProbeTopology(n);
    for (size_t i = 0; i < n; ++i) {
      ServerOptions options;
      options.fleet = fleet.topology;
      options.shard_name = fleet.topology[i].name;
      options.shard_epoch = epoch;
      fleet.servers.push_back(std::make_unique<Server>(options));
      EXPECT_TRUE(fleet.servers.back()->Start().ok());
    }
    return fleet;
  }

  void Stop() {
    for (auto& server : servers) server->Stop();
  }
};

Connection DialShard(const ShardId& shard) {
  return Unwrap(Connection::Connect(shard.host, shard.port), "Connect");
}

/// The r0..r3 / s catalog every fleet test uses: four distinct relations so
/// different check lines land on different ring owners.
void UploadCatalog(Connection& client) {
  for (int v = 0; v < 4; ++v) {
    std::string r = "r" + std::to_string(v);
    Unwrap(client.Call(
        JsonObject().Str("cmd", "relation").Str("name", r).Int("arity", 2).Build()));
    Unwrap(client.Call(JsonObject()
                           .Str("cmd", "dep")
                           .Str("text", r + "(X, Y) -> s(X).")
                           .Str("label", "fk" + std::to_string(v))
                           .Build()));
  }
  Unwrap(client.Call(
      JsonObject().Str("cmd", "relation").Str("name", "s").Int("arity", 1).Build()));
}

void UploadCatalog(FleetClient& client) {
  for (int v = 0; v < 4; ++v) {
    std::string r = "r" + std::to_string(v);
    Unwrap(client.Call(
        JsonObject().Str("cmd", "relation").Str("name", r).Int("arity", 2).Build()));
    Unwrap(client.Call(JsonObject()
                           .Str("cmd", "dep")
                           .Str("text", r + "(X, Y) -> s(X).")
                           .Str("label", "fk" + std::to_string(v))
                           .Build()));
  }
  Unwrap(client.Call(
      JsonObject().Str("cmd", "relation").Str("name", "s").Int("arity", 1).Build()));
}

/// The Σ-redundant-atom check over relation family member `variant`.
std::string CheckLine(int variant) {
  std::string r = "r" + std::to_string(variant);
  return JsonObject()
      .Str("cmd", "check")
      .Str("q1", "Q(X) :- " + r + "(X, Y), s(X).")
      .Str("q2", "Q(X) :- " + r + "(X, Y).")
      .Str("semantics", "set")
      .Build();
}

std::unique_ptr<FleetClient> MakeClient(std::vector<ShardId> topology,
                                        bool route_to_first = false) {
  FleetClientOptions options;
  options.shards = std::move(topology);
  options.route_to_first = route_to_first;
  options.retry.max_attempts = 4;
  options.retry.initial_backoff_ms = 5;
  options.retry.max_backoff_ms = 50;
  return Unwrap(FleetClient::Create(std::move(options)), "FleetClient::Create");
}

// ---- Routing primitives. ----

TEST(FleetRouting, FleetSpecRoundTrip) {
  std::vector<ShardId> shards = Unwrap(
      ParseFleetSpec("alpha=10.0.0.1:7100,beta=10.0.0.2:7101"));
  ASSERT_EQ(shards.size(), 2u);
  EXPECT_EQ(shards[0].name, "alpha");
  EXPECT_EQ(shards[0].host, "10.0.0.1");
  EXPECT_EQ(shards[0].port, 7100);
  EXPECT_EQ(RenderFleetSpec(shards), "alpha=10.0.0.1:7100,beta=10.0.0.2:7101");

  // Bare host:port entries are named by position.
  shards = Unwrap(ParseFleetSpec("127.0.0.1:7000,127.0.0.1:7001"));
  ASSERT_EQ(shards.size(), 2u);
  EXPECT_EQ(shards[0].name, "shard0");
  EXPECT_EQ(shards[1].name, "shard1");

  EXPECT_FALSE(ParseFleetSpec("").ok());
  EXPECT_FALSE(ParseFleetSpec("no-port-here").ok());
  EXPECT_FALSE(ParseFleetSpec("a=1.1.1.1:1,a=2.2.2.2:2").ok());  // dup name
}

TEST(FleetRouting, HashRingIsDeterministicAndCoversEveryShard) {
  std::vector<ShardId> shards =
      Unwrap(ParseFleetSpec("a=h:1,b=h:2,c=h:3"));
  HashRing ring_one(shards);
  HashRing ring_two(shards);
  ASSERT_EQ(ring_one.size(), 3u);

  std::vector<int> owned(3, 0);
  for (int i = 0; i < 500; ++i) {
    std::string key = "key-" + std::to_string(i);
    size_t owner = ring_one.OwnerIndex(key);
    ASSERT_LT(owner, 3u);
    // Same topology, same key, same owner — client and server agree.
    EXPECT_EQ(owner, ring_two.OwnerIndex(key));
    owned[owner]++;
  }
  for (int count : owned) EXPECT_GT(count, 0) << "a shard owns no keys";

  EXPECT_EQ(ring_one.IndexOf("b"), 1);
  EXPECT_EQ(ring_one.IndexOf("nope"), -1);
}

TEST(FleetRouting, CanonicalSignatureIsOrderAndRenamingInvariant) {
  auto signature_of = [](const std::string& line) {
    Request request = Unwrap(ParseRequest(line));
    return CanonicalRequestSignature(request.cmd, request.body);
  };
  // q1/q2 swap, variable renaming, and whitespace must not split ownership.
  std::string base = signature_of(
      R"({"cmd":"check","q1":"Q(X) :- r0(X, Y), s(X).","q2":"Q(X) :- r0(X, Y).","semantics":"set"})");
  EXPECT_EQ(base, signature_of(
      R"({"cmd":"check","q1":"Q(X) :- r0(X, Y).","q2":"Q(X) :- r0(X, Y), s(X).","semantics":"set"})"));
  EXPECT_EQ(base, signature_of(
      R"({"cmd":"check","q1":"Q(A) :-  r0(A,B), s(A).","q2":"Q(A) :- r0(A, B).","semantics":"set"})"));
  // A different query family or different semantics is a different key.
  EXPECT_NE(base, signature_of(
      R"({"cmd":"check","q1":"Q(X) :- r1(X, Y), s(X).","q2":"Q(X) :- r1(X, Y).","semantics":"set"})"));
  EXPECT_NE(base, signature_of(
      R"({"cmd":"check","q1":"Q(X) :- r0(X, Y), s(X).","q2":"Q(X) :- r0(X, Y).","semantics":"bag"})"));
  // Memo verbs route by their memo key.
  EXPECT_EQ(signature_of(R"({"cmd":"memo_fetch","key":"k1"})"),
            signature_of(R"({"cmd":"memo_fetch","key":"k1","id":"9"})"));
  EXPECT_NE(signature_of(R"({"cmd":"memo_fetch","key":"k1"})"),
            signature_of(R"({"cmd":"memo_fetch","key":"k2"})"));
}

// ---- Protocol versioning. ----

TEST(FleetProtocol, MinVersionTableGatesTheFleetVerbs) {
  for (const char* v1_verb : {"hello", "ddl", "relation", "dep", "check",
                              "reformulate", "lint", "stats"}) {
    EXPECT_EQ(MinVersionForVerb(v1_verb), ProtocolVersion::kV1) << v1_verb;
  }
  EXPECT_EQ(MinVersionForVerb("memo_fetch"), ProtocolVersion::kV2);
  EXPECT_EQ(MinVersionForVerb("memo_offer"), ProtocolVersion::kV2);
  EXPECT_FALSE(MinVersionForVerb("no-such-verb").has_value());
}

TEST(FleetProtocol, NegotiateVersionClampsIntoSupportedRange) {
  EXPECT_EQ(NegotiateVersion(std::nullopt), ProtocolVersion::kV1);  // legacy hello
  EXPECT_EQ(NegotiateVersion(0.0), ProtocolVersion::kV1);
  EXPECT_EQ(NegotiateVersion(1.0), ProtocolVersion::kV1);
  EXPECT_EQ(NegotiateVersion(2.0), ProtocolVersion::kV2);
  EXPECT_EQ(NegotiateVersion(99.0), kMaxProtocolVersion);  // future client
}

TEST(FleetProtocol, EncodeRequestEnforcesTheVersionTable) {
  std::string line = Unwrap(EncodeRequest(
      RequestSpec("check", "7").Str("q1", "a").Str("q2", "b"), ProtocolVersion::kV1));
  Request request = Unwrap(ParseRequest(line));
  EXPECT_EQ(request.id, "7");
  EXPECT_EQ(request.cmd, "check");
  EXPECT_EQ(Unwrap(RequireString(request.body, "q1")), "a");

  // A v1 connection cannot send the fleet verbs; an unknown verb never encodes.
  EXPECT_FALSE(EncodeRequest(RequestSpec("memo_fetch").Str("key", "k"),
                             ProtocolVersion::kV1)
                   .ok());
  EXPECT_TRUE(EncodeRequest(RequestSpec("memo_fetch").Str("key", "k"),
                            ProtocolVersion::kV2)
                  .ok());
  EXPECT_FALSE(EncodeRequest(RequestSpec("frobnicate")).ok());
}

TEST(FleetProtocol, NotOwnerResponseDecodesToARedirect) {
  RedirectInfo owner;
  owner.shard = "shard2";
  owner.host = "10.1.2.3";
  owner.port = 7102;
  owner.epoch = 9;
  DecodedResponse decoded =
      Unwrap(DecodeResponse(NotOwnerResponse("req1", owner)));
  EXPECT_EQ(decoded.id, "req1");
  EXPECT_FALSE(decoded.ok);
  EXPECT_EQ(decoded.error_code, StatusCode::kFailedPrecondition);
  ASSERT_TRUE(decoded.redirect.has_value());
  EXPECT_EQ(decoded.redirect->shard, "shard2");
  EXPECT_EQ(decoded.redirect->host, "10.1.2.3");
  EXPECT_EQ(decoded.redirect->port, 7102);
  EXPECT_EQ(decoded.redirect->epoch, 9u);
  EXPECT_FALSE(Unwrap(DecodeResponse(R"({"id":"x","ok":true})")).redirect.has_value());
}

// ---- Negotiation against a live fleet server. ----

TEST(FleetNegotiation, V1HelloStaysByteIdentical) {
  // Both a plain single node and a fleet shard must answer a legacy hello
  // with the exact v1 line — no new fields, no reordering.
  Server single;
  ASSERT_TRUE(single.Start().ok());
  TestFleet fleet = TestFleet::Start(3);

  const std::string hello = R"({"id":"1","cmd":"hello"})";
  const std::string expected =
      R"({"id":"1","ok":true,"server":"sqleqd","protocol":1})";

  Connection to_single = Unwrap(Connection::Connect("127.0.0.1", single.port()));
  std::string raw;
  Unwrap(to_single.Call(hello, &raw));
  EXPECT_EQ(raw, expected);

  Connection to_shard = DialShard(fleet.topology[0]);
  Unwrap(to_shard.Call(hello, &raw));
  EXPECT_EQ(raw, expected);

  fleet.Stop();
  single.Stop();
}

TEST(FleetNegotiation, MaxProtocolUpgradesAndGatesTheFleetVerbs) {
  TestFleet fleet = TestFleet::Start(3, /*epoch=*/7);
  Connection conn = DialShard(fleet.topology[1]);

  // Before negotiation the session is v1: the fleet verbs are refused with
  // a FailedPrecondition naming the required version.
  JsonValue refused = Unwrap(
      conn.Call(JsonObject().Str("cmd", "memo_fetch").Str("key", "k").Build()));
  EXPECT_FALSE(Field(refused, "ok")->boolean);
  DecodedResponse decoded = DecodeResponseObject(std::move(refused));
  EXPECT_EQ(decoded.error_code, StatusCode::kFailedPrecondition);

  // hello max_protocol:99 clamps to v2 and, on a fleet shard, reports the
  // shard identity, epoch, and fleet size.
  JsonValue hello = Unwrap(conn.Call(
      JsonObject().Str("cmd", "hello").Int("max_protocol", 99).Build()));
  EXPECT_EQ(static_cast<int>(Field(hello, "protocol")->number),
            ToInt(ProtocolVersion::kV2));
  EXPECT_EQ(Field(hello, "shard")->string, "shard1");
  EXPECT_EQ(static_cast<int>(Field(hello, "epoch")->number), 7);
  EXPECT_EQ(static_cast<int>(Field(hello, "shards")->number), 3);

  // Now memo_fetch dispatches (a miss, but a served one).
  JsonValue fetched = Unwrap(conn.Call(
      JsonObject().Str("cmd", "memo_fetch").Str("key", "k").Build()));
  EXPECT_TRUE(Field(fetched, "ok")->boolean);
  EXPECT_FALSE(Field(fetched, "found")->boolean);

  // A later legacy hello downgrades the session back to v1.
  JsonValue downgraded = Unwrap(conn.Call(JsonObject().Str("cmd", "hello").Build()));
  EXPECT_EQ(static_cast<int>(Field(downgraded, "protocol")->number), 1);
  JsonValue refused_again = Unwrap(
      conn.Call(JsonObject().Str("cmd", "memo_fetch").Str("key", "k").Build()));
  EXPECT_FALSE(Field(refused_again, "ok")->boolean);

  fleet.Stop();
}

// ---- Redirects. ----

TEST(FleetRedirect, V2NonOwnerRedirectsAndV1IsServedLocally) {
  TestFleet fleet = TestFleet::Start(3, /*epoch=*/7);
  HashRing ring(fleet.topology);
  const std::string line = CheckLine(0);
  Request request = Unwrap(ParseRequest(line));
  const size_t owner = ring.OwnerIndex(
      CanonicalRequestSignature(request.cmd, request.body));
  const size_t non_owner = (owner + 1) % fleet.topology.size();

  // A v1 session on a non-owner shard is served locally, verdict and all.
  Connection v1 = DialShard(fleet.topology[non_owner]);
  UploadCatalog(v1);
  JsonValue served = Unwrap(v1.Call(line));
  EXPECT_TRUE(Field(served, "ok")->boolean);
  EXPECT_EQ(Field(served, "verdict")->string, "equivalent");
  EXPECT_EQ(served.Find("not_owner"), nullptr);

  // The same request on a v2 session answers not_owner with the owner's
  // coordinates and the topology epoch.
  Connection v2 = DialShard(fleet.topology[non_owner]);
  Unwrap(v2.Call(JsonObject().Str("cmd", "hello").Int("max_protocol", 2).Build()));
  UploadCatalog(v2);
  JsonValue redirected = Unwrap(v2.Call(line));
  EXPECT_FALSE(Field(redirected, "ok")->boolean);
  DecodedResponse decoded = DecodeResponseObject(std::move(redirected));
  ASSERT_TRUE(decoded.redirect.has_value());
  EXPECT_EQ(decoded.redirect->shard, fleet.topology[owner].name);
  EXPECT_EQ(decoded.redirect->port, fleet.topology[owner].port);
  EXPECT_EQ(decoded.redirect->epoch, 7u);

  // On the owner itself, the same v2 session shape is served.
  Connection at_owner = DialShard(fleet.topology[owner]);
  Unwrap(at_owner.Call(
      JsonObject().Str("cmd", "hello").Int("max_protocol", 2).Build()));
  UploadCatalog(at_owner);
  JsonValue at_home = Unwrap(at_owner.Call(line));
  EXPECT_TRUE(Field(at_home, "ok")->boolean);

  // The redirecting shard counted it.
  JsonValue stats = Unwrap(v1.Call(JsonObject().Str("cmd", "stats").Build()));
  EXPECT_GE(Field(stats, "redirects")->number, 1.0);

  fleet.Stop();
}

TEST(FleetRedirect, FleetClientFollowsRedirectsTransparently) {
  TestFleet fleet = TestFleet::Start(3);
  // route_to_first sends everything to shard 0; any check owned elsewhere
  // comes back not_owner and the client must follow it to a verdict.
  std::unique_ptr<FleetClient> client = MakeClient(fleet.topology,
                                                   /*route_to_first=*/true);
  UploadCatalog(*client);
  for (int v = 0; v < 4; ++v) {
    JsonValue response = Unwrap(client->Call(CheckLine(v)));
    EXPECT_TRUE(Field(response, "ok")->boolean);
    EXPECT_EQ(Field(response, "verdict")->string, "equivalent");
  }
  // With 4 distinct signatures over 3 shards, at least one is not owned by
  // shard 0, so at least one redirect was followed.
  EXPECT_GE(client->stats().redirects_followed, 1u);
  fleet.Stop();
}

// ---- Fleet vs single node parity. ----

TEST(FleetParity, VerdictsAreByteIdenticalToASingleNode) {
  Server single;
  ASSERT_TRUE(single.Start().ok());
  Connection solo = Unwrap(Connection::Connect("127.0.0.1", single.port()));
  UploadCatalog(solo);

  TestFleet fleet = TestFleet::Start(3);
  std::unique_ptr<FleetClient> client = MakeClient(fleet.topology);
  UploadCatalog(*client);

  std::vector<std::string> cases;
  for (int v = 0; v < 4; ++v) cases.push_back(CheckLine(v));
  cases.push_back(JsonObject()
                      .Str("cmd", "check")
                      .Str("q1", "Q(X) :- r0(X, Y).")
                      .Str("q2", "Q(X) :- r0(X, X).")
                      .Str("semantics", "set")
                      .Build());
  cases.push_back(JsonObject()
                      .Str("cmd", "reformulate")
                      .Str("query", "Q(X) :- r1(X, Y), s(X).")
                      .Str("semantics", "set")
                      .Build());

  for (const std::string& line : cases) {
    JsonValue from_single = Unwrap(solo.Call(line));
    JsonValue from_fleet = Unwrap(client->Call(line));
    ASSERT_TRUE(Field(from_single, "ok")->boolean) << line;
    ASSERT_TRUE(Field(from_fleet, "ok")->boolean) << line;
    const JsonValue* single_verdict = from_single.Find("verdict");
    const JsonValue* fleet_verdict = from_fleet.Find("verdict");
    ASSERT_EQ(single_verdict == nullptr, fleet_verdict == nullptr) << line;
    if (single_verdict != nullptr) {
      EXPECT_EQ(single_verdict->string, fleet_verdict->string) << line;
    }
    // reformulate answers with a reformulations array; compare rendered size.
    const JsonValue* single_ref = from_single.Find("reformulations");
    const JsonValue* fleet_ref = from_fleet.Find("reformulations");
    ASSERT_EQ(single_ref == nullptr, fleet_ref == nullptr) << line;
    if (single_ref != nullptr) {
      EXPECT_EQ(single_ref->array.size(), fleet_ref->array.size()) << line;
    }
  }
  fleet.Stop();
  single.Stop();
}

// ---- Peer memo tier. ----

TEST(FleetPeerMemo, WarmVerdictsCrossShardsThroughThePeerTier) {
  TestFleet fleet = TestFleet::Start(3);
  const std::string line = CheckLine(0);

  // Warm shard 0 through a v1 session: it chases locally and offers the
  // settled record to the memo key's ring owner.
  Connection warm = DialShard(fleet.topology[0]);
  UploadCatalog(warm);
  EXPECT_TRUE(Field(Unwrap(warm.Call(line)), "ok")->boolean);

  // The same check on the other two shards: whichever does not own the memo
  // key misses locally and pulls the record from the owner — at least one
  // of these two is a peer-tier hit, never a re-chase.
  for (size_t shard = 1; shard < 3; ++shard) {
    Connection conn = DialShard(fleet.topology[shard]);
    UploadCatalog(conn);
    JsonValue response = Unwrap(conn.Call(line));
    EXPECT_TRUE(Field(response, "ok")->boolean);
    EXPECT_EQ(Field(response, "verdict")->string, "equivalent");
  }

  // The fleet rollup surfaces the cross-shard traffic.
  std::unique_ptr<FleetClient> client = MakeClient(fleet.topology);
  JsonValue rollup = Unwrap(client->FleetStats("s1"));
  EXPECT_TRUE(Field(rollup, "fleet")->boolean);
  EXPECT_EQ(static_cast<int>(Field(rollup, "shards")->number), 3);
  EXPECT_GE(Field(rollup, "memo.peer.hits")->number, 1.0);
  const JsonValue* peer = Field(rollup, "peer");
  EXPECT_GE(peer->Find("fetches")->number, 1.0);
  EXPECT_GE(peer->Find("served")->number, 1.0);
  ASSERT_NE(rollup.Find("per_shard"), nullptr);
  EXPECT_EQ(rollup.Find("per_shard")->array.size(), 3u);
  fleet.Stop();
}

// ---- FleetClient pool lifecycle. ----

TEST(FleetPool, ReusesPooledConnections) {
  TestFleet fleet = TestFleet::Start(1);
  std::unique_ptr<FleetClient> client = MakeClient(fleet.topology);
  UploadCatalog(*client);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(Field(Unwrap(client->Call(CheckLine(0))), "ok")->boolean);
  }
  FleetClient::Stats stats = client->stats();
  EXPECT_GE(stats.pool_reuses, 2u);
  EXPECT_LE(stats.dials, 2u);  // the catalog upload conn, maybe one more
  fleet.Stop();
}

TEST(FleetPool, EvictsDeadConnectionsAndResendsAfterRedial) {
  std::vector<ShardId> topology = ProbeTopology(1);
  auto make_server = [&topology] {
    ServerOptions options;
    options.port = topology[0].port;
    return std::make_unique<Server>(options);
  };
  std::unique_ptr<Server> server = make_server();
  ASSERT_TRUE(server->Start().ok());

  std::unique_ptr<FleetClient> client = MakeClient(topology);
  UploadCatalog(*client);
  EXPECT_TRUE(Field(Unwrap(client->Call(CheckLine(0))), "ok")->boolean);
  const uint64_t dials_before = client->stats().dials;

  // Kill the server and bring a fresh one up on the same port: the pooled
  // connection is now dead. The next call must evict it, redial, replay the
  // catalog onto the fresh session, and resend — invisibly to the caller.
  server->Stop();
  server = make_server();
  ASSERT_TRUE(server->Start().ok());

  JsonValue response = Unwrap(client->Call(CheckLine(1)), "resend after redial");
  EXPECT_TRUE(Field(response, "ok")->boolean);
  EXPECT_EQ(Field(response, "verdict")->string, "equivalent");

  FleetClient::Stats stats = client->stats();
  EXPECT_GE(stats.pool_evictions, 1u);
  EXPECT_GT(stats.dials, dials_before);
  EXPECT_GE(stats.catalog_replays, 1u);
  server->Stop();
}

TEST(FleetPool, CatalogBroadcastReachesEveryShardSession) {
  TestFleet fleet = TestFleet::Start(3);
  std::unique_ptr<FleetClient> client = MakeClient(fleet.topology);
  UploadCatalog(*client);
  // Every shard can serve a check from a pooled connection: the catalog was
  // broadcast and replays onto whatever connection each call checks out.
  for (int v = 0; v < 4; ++v) {
    JsonValue response = Unwrap(client->Call(CheckLine(v)));
    EXPECT_TRUE(Field(response, "ok")->boolean);
  }
  EXPECT_GE(client->stats().broadcasts, 1u);
  // A deterministic catalog failure is not retried into the log: a bad dep
  // fails the broadcast but later checks still replay cleanly.
  JsonValue bad = Unwrap(client->Call(
      JsonObject().Str("cmd", "dep").Str("text", "not a dependency").Build()));
  EXPECT_FALSE(Field(bad, "ok")->boolean);
  EXPECT_TRUE(Field(Unwrap(client->Call(CheckLine(0))), "ok")->boolean);
  fleet.Stop();
}

}  // namespace
}  // namespace service
}  // namespace sqleq
