// SemanticCache (src/cache): exact-tier hits on canonical-key matches,
// semantic-tier hits on Σ-equivalent variants, misses on inequivalent
// queries, bucket-key invariance under the workload transforms, and the
// memo-stability regression — replayed equivalents must not grow the chase
// memo (a semantic hit may never insert a duplicate memo entry under a
// different slice-signature key).
#include <gtest/gtest.h>

#include <string>

#include "cache/semantic_cache.h"
#include "equivalence/engine.h"
#include "test_util.h"
#include "workload/generator.h"
#include "workload/schema_templates.h"

namespace sqleq {
namespace cache {
namespace {

using ::sqleq::testing::Q;
using ::sqleq::testing::Unwrap;

workload::SchemaTemplate Warehouse() {
  return Unwrap(workload::MakeSchemaTemplate("warehouse"));
}

TEST(SemanticCache, ExactTierHitOnRenamedReorderedQuery) {
  workload::SchemaTemplate tmpl = Warehouse();
  SemanticCache cache(tmpl.catalog.sigma, tmpl.catalog.schema);
  ConjunctiveQuery q1 =
      Q("Q(X) :- fact(X, T, C, P, G, M), dim_time(T, D).");
  // Same query modulo variable names and atom order.
  ConjunctiveQuery q2 =
      Q("Q(A) :- dim_time(B, E), fact(A, B, C2, P2, G2, M2).");
  cache.Admit(q1, "plan-1");
  SemanticCache::Lookup hit = Unwrap(cache.Get(q2));
  EXPECT_EQ(hit.tier, SemanticCache::Tier::kExact);
  EXPECT_EQ(hit.payload, "plan-1");
  SemanticCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.exact_hits, 1u);
  EXPECT_EQ(stats.confirms, 0u) << "exact tier must not consult the engine";
}

TEST(SemanticCache, SemanticTierHitOnFkUnfoldedVariant) {
  workload::SchemaTemplate tmpl = Warehouse();
  SemanticCache cache(tmpl.catalog.sigma, tmpl.catalog.schema);
  ConjunctiveQuery base = Q("Q(X, T) :- fact(X, T, C, P, G, M).");
  // FK fact.1 -> dim_time.0 makes the extra dim_time atom redundant.
  ConjunctiveQuery unfolded =
      Q("Q(X, T) :- fact(X, T, C, P, G, M), dim_time(T, D).");
  cache.Admit(base, "plan-base");
  SemanticCache::Lookup hit = Unwrap(cache.Get(unfolded));
  EXPECT_EQ(hit.tier, SemanticCache::Tier::kSemantic);
  EXPECT_EQ(hit.payload, "plan-base");
  SemanticCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.semantic_hits, 1u);
  EXPECT_GE(stats.confirms, 1u) << "semantic tier must confirm via engine";
}

TEST(SemanticCache, MissOnInequivalentQuery) {
  workload::SchemaTemplate tmpl = Warehouse();
  SemanticCache cache(tmpl.catalog.sigma, tmpl.catalog.schema);
  cache.Admit(Q("Q(X) :- fact(X, T, C, P, G, M)."), "plan-base");
  // Different constant selection: inequivalent, must miss.
  SemanticCache::Lookup miss =
      Unwrap(cache.Get(Q("Q(X) :- fact(X, T, 3, P, G, M).")));
  EXPECT_EQ(miss.tier, SemanticCache::Tier::kMiss);
  // Head projects a different column: inequivalent, must miss.
  miss = Unwrap(cache.Get(Q("Q(T) :- fact(X, T, C, P, G, M).")));
  EXPECT_EQ(miss.tier, SemanticCache::Tier::kMiss);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(SemanticCache, EmptyCacheMissesWithoutConfirms) {
  workload::SchemaTemplate tmpl = Warehouse();
  SemanticCache cache(tmpl.catalog.sigma, tmpl.catalog.schema);
  SemanticCache::Lookup miss =
      Unwrap(cache.Get(Q("Q(X) :- fact(X, T, C, P, G, M).")));
  EXPECT_EQ(miss.tier, SemanticCache::Tier::kMiss);
  EXPECT_EQ(cache.stats().confirms, 0u);
}

TEST(SemanticCache, AdmitDedupesOnCanonicalKey) {
  workload::SchemaTemplate tmpl = Warehouse();
  SemanticCache cache(tmpl.catalog.sigma, tmpl.catalog.schema);
  cache.Admit(Q("Q(X) :- fact(X, T, C, P, G, M)."), "first");
  cache.Admit(Q("Q(A) :- fact(A, B, C2, D2, E2, F2)."), "second");
  EXPECT_EQ(cache.stats().entries, 1u);
  SemanticCache::Lookup hit =
      Unwrap(cache.Get(Q("Q(X) :- fact(X, T, C, P, G, M).")));
  EXPECT_EQ(hit.tier, SemanticCache::Tier::kExact);
  EXPECT_EQ(hit.payload, "first") << "first admit wins on the same key";
}

/// Bucket keys must be invariant under every transform the generator
/// applies, or semantic-tier candidates are never even considered.
TEST(SemanticCache, BucketKeyInvariantUnderWorkloadTransforms) {
  for (const std::string& name : workload::KnownSchemaTemplates()) {
    workload::WorkloadOptions options;
    options.schema_template = name;
    options.seed = 5;
    options.num_queries = 30;
    options.overlap_rate = 0.7;
    workload::Workload w = Unwrap(workload::GenerateWorkload(options));
    SemanticCache cache(w.schema.catalog.sigma, w.schema.catalog.schema);
    for (const workload::WorkloadQuery& wq : w.queries) {
      if (!wq.is_variant) continue;
      EXPECT_EQ(cache.BucketKey(wq.query),
                cache.BucketKey(w.queries[wq.class_id].query))
          << name << " transform '" << wq.transform
          << "': " << wq.query.ToString();
    }
  }
}

/// Replay of a generated corpus: the measured hit rate must land exactly on
/// the generator's ground truth (every variant hits, every base misses) for
/// this fixed seed.
TEST(SemanticCache, ReplayRecoversGroundTruthHitRate) {
  workload::WorkloadOptions options;
  options.seed = 9;
  options.num_queries = 40;
  options.overlap_rate = 0.5;
  workload::Workload w = Unwrap(workload::GenerateWorkload(options));
  SemanticCache cache(w.schema.catalog.sigma, w.schema.catalog.schema);
  for (const workload::WorkloadQuery& wq : w.queries) {
    SemanticCache::Lookup hit = Unwrap(cache.Get(wq.query));
    if (wq.is_variant) {
      EXPECT_NE(hit.tier, SemanticCache::Tier::kMiss)
          << "variant missed: " << wq.query.ToString() << " (transform "
          << wq.transform << ")";
    }
    if (hit.tier == SemanticCache::Tier::kMiss) {
      cache.Admit(wq.query, wq.query.name());
    }
  }
  EXPECT_NEAR(cache.stats().HitRate(), w.GroundTruthHitRate(), 1e-9);
}

/// Regression (memo stability): once a corpus has been replayed, looking the
/// same Σ-equivalent variants up again must be answered from warm state —
/// the engine's chase memo must not grow, i.e. a semantic-cache hit never
/// inserts a duplicate memo entry under a different slice-signature key.
TEST(SemanticCache, ReplayedEquivalentsDoNotGrowChaseMemo) {
  workload::WorkloadOptions options;
  options.seed = 13;
  options.num_queries = 30;
  options.overlap_rate = 0.6;
  workload::Workload w = Unwrap(workload::GenerateWorkload(options));
  SemanticCache cache(w.schema.catalog.sigma, w.schema.catalog.schema);
  for (const workload::WorkloadQuery& wq : w.queries) {
    SemanticCache::Lookup hit = Unwrap(cache.Get(wq.query));
    if (hit.tier == SemanticCache::Tier::kMiss) {
      cache.Admit(wq.query, wq.query.name());
    }
  }
  const EquivalenceEngine::CacheStats before = cache.engine().cache_stats();
  // Replay every variant a second time: all warm, all already chased.
  for (const workload::WorkloadQuery& wq : w.queries) {
    if (!wq.is_variant) continue;
    SemanticCache::Lookup hit = Unwrap(cache.Get(wq.query));
    EXPECT_NE(hit.tier, SemanticCache::Tier::kMiss);
  }
  const EquivalenceEngine::CacheStats after = cache.engine().cache_stats();
  EXPECT_EQ(after.entries, before.entries)
      << "replayed equivalents inserted duplicate chase-memo entries";
  EXPECT_EQ(after.misses, before.misses)
      << "replayed equivalents re-chased instead of hitting the memo";
}

}  // namespace
}  // namespace cache
}  // namespace sqleq
