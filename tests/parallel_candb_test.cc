// Determinism and accounting tests for the parallel memoized backchase:
// serial and multi-threaded sweeps must return identical CandBResults /
// RewriteResults (reformulation sets, order, and cache statistics), the
// chase memo accounting must be exact, and ResourceBudget limits must trip
// with errors naming the limit.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "chase/chase_cache.h"
#include "reformulation/bag_candb.h"
#include "reformulation/candb.h"
#include "reformulation/views.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::Example41Schema;
using testing::Example41Sigma;
using testing::Q;
using testing::Sigma;
using testing::Unwrap;

/// Canonical serialization of a CandBResult: queries rendered through
/// CanonicalQueryKey so the comparison is insensitive to the process-global
/// fresh-variable counter (which advances between runs), while reformulation
/// ORDER and all statistics compare exactly.
std::string Canon(const CandBResult& r) {
  std::string out = "U=" + CanonicalQueryKey(r.universal_plan) + "\n";
  for (const ConjunctiveQuery& q : r.reformulations) {
    out += "R=" + CanonicalQueryKey(q) + "\n";
  }
  out += "examined=" + std::to_string(r.candidates_examined);
  out += " hits=" + std::to_string(r.chase_cache_hits);
  out += " misses=" + std::to_string(r.chase_cache_misses);
  return out;
}

std::string Canon(const RewriteResult& r) {
  std::string out = "U=" + CanonicalQueryKey(r.universal_plan) + "\n";
  for (const ConjunctiveQuery& q : r.rewritings) {
    out += "R=" + CanonicalQueryKey(q) + "\n";
  }
  out += "examined=" + std::to_string(r.candidates_examined);
  out += " hits=" + std::to_string(r.chase_cache_hits);
  out += " misses=" + std::to_string(r.chase_cache_misses);
  return out;
}

TEST(ParallelCandB, ThreadCountDoesNotChangeResultsExample41) {
  // Example 4.1's Q1 under all three semantics, serial vs 2/4/8 threads.
  ConjunctiveQuery q1 =
      Q("Q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U).");
  for (Semantics sem : {Semantics::kSet, Semantics::kBag, Semantics::kBagSet}) {
    CandBOptions serial;
    serial.context.budget.threads = 1;
    std::string reference = Canon(Unwrap(
        ChaseAndBackchase(q1, Example41Sigma(), sem, Example41Schema(), serial)));
    for (size_t threads : {2u, 4u, 8u}) {
      CandBOptions parallel;
      parallel.context.budget.threads = threads;
      std::string got = Canon(Unwrap(ChaseAndBackchase(
          q1, Example41Sigma(), sem, Example41Schema(), parallel)));
      EXPECT_EQ(got, reference)
          << SemanticsToString(sem) << " at " << threads << " threads";
    }
  }
}

TEST(ParallelCandB, ThreadCountDoesNotChangeResultsWideQuery) {
  // A wider lattice (2^8 masks) with both accepted-superset and failure
  // pruning live; full-tgd Σ so the chase introduces no fresh variables.
  DependencySet sigma = Sigma({"a(X) -> b(X).", "b(X) -> a(X)."});
  ConjunctiveQuery q = Q(
      "Q(X) :- a(X), b(X), p(X, Y1), p(X, Y2), p(X, Y3), p(X, Y4), "
      "p(X, Y5), p(X, Y6).");
  CandBOptions serial;
  serial.context.budget.threads = 1;
  std::string reference =
      Canon(Unwrap(ChaseAndBackchase(q, sigma, Semantics::kSet, Schema(), serial)));
  for (size_t threads : {2u, 4u, 8u}) {
    CandBOptions parallel;
    parallel.context.budget.threads = threads;
    std::string got = Canon(
        Unwrap(ChaseAndBackchase(q, sigma, Semantics::kSet, Schema(), parallel)));
    EXPECT_EQ(got, reference) << threads << " threads";
  }
}

TEST(ParallelCandB, ByteIdenticalWhenChaseAddsNoFreshVariables) {
  // With full tgds only, the universal plan reuses the query's own variables,
  // so even the raw ToString rendering is byte-identical across runs and
  // thread counts.
  DependencySet sigma = Sigma({"p(X, Y) -> q2(Y, X)."});
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), p(X, Z), q2(Y, X).");
  auto serialize = [](const CandBResult& r) {
    std::string out = r.universal_plan.ToString() + "\n";
    for (const ConjunctiveQuery& reform : r.reformulations) {
      out += reform.ToString() + "\n";
    }
    out += std::to_string(r.candidates_examined) + "/" +
           std::to_string(r.chase_cache_hits) + "/" +
           std::to_string(r.chase_cache_misses);
    return out;
  };
  CandBOptions serial;
  serial.context.budget.threads = 1;
  std::string reference =
      serialize(Unwrap(ChaseAndBackchase(q, sigma, Semantics::kSet, Schema(), serial)));
  for (size_t threads : {2u, 4u, 8u}) {
    CandBOptions parallel;
    parallel.context.budget.threads = threads;
    std::string got = serialize(
        Unwrap(ChaseAndBackchase(q, sigma, Semantics::kSet, Schema(), parallel)));
    EXPECT_EQ(got, reference) << threads << " threads";
  }
}

TEST(ParallelCandB, CacheHitAccountingIsExactAndDeterministic) {
  // Q(X) :- p(X,Y1), p(X,Y2), p(X,Y3): the three single-atom candidates are
  // isomorphic, so the memo chases one of them and serves the others from
  // cache. The single-atom candidates are accepted (set semantics), so every
  // two-atom superset is pruned: examined = 3, misses = 1, hits = 2 — at
  // every thread count.
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y1), p(X, Y2), p(X, Y3).");
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    CandBOptions options;
    options.context.budget.threads = threads;
    CandBResult result =
        Unwrap(ChaseAndBackchase(q, {}, Semantics::kSet, Schema(), options));
    EXPECT_EQ(result.candidates_examined, 3u) << threads << " threads";
    EXPECT_EQ(result.chase_cache_misses, 1u) << threads << " threads";
    EXPECT_EQ(result.chase_cache_hits, 2u) << threads << " threads";
    EXPECT_EQ(result.chase_cache_hits + result.chase_cache_misses,
              result.candidates_examined);
    ASSERT_EQ(result.reformulations.size(), 1u);
    EXPECT_EQ(result.reformulations[0].body().size(), 1u);
  }
}

TEST(ParallelCandB, DeadlineExpiryReportsResourceExhausted) {
  ConjunctiveQuery q1 =
      Q("Q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U).");
  CandBOptions options;
  options.context.budget.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  Result<CandBResult> result = ChaseAndBackchase(q1, Example41Sigma(),
                                                 Semantics::kSet,
                                                 Example41Schema(), options);
  // Anytime contract: deadline expiry yields a partial result, not an error.
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->complete);
  ASSERT_TRUE(result->exhaustion.has_value());
  EXPECT_EQ(result->exhaustion->limit, "deadline");
  EXPECT_NE(result->exhaustion->progress.find("deadline"), std::string::npos)
      << result->exhaustion->ToString();
  EXPECT_TRUE(result->checkpoint.has_value());
}

TEST(ParallelCandB, CandidateBudgetErrorNamesTheLimit) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), r(X).");
  CandBOptions options;
  options.context.budget.max_candidates = 1;
  Result<CandBResult> result =
      ChaseAndBackchase(q, {}, Semantics::kSet, Schema(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->complete);
  ASSERT_TRUE(result->exhaustion.has_value());
  EXPECT_EQ(result->exhaustion->limit, "max_candidates");
  EXPECT_NE(result->exhaustion->progress.find("max_candidates"), std::string::npos)
      << result->exhaustion->ToString();
  ASSERT_TRUE(result->checkpoint.has_value());
  EXPECT_EQ(result->checkpoint->phase, CandBCheckpoint::kBackchasePhase);
}

TEST(ParallelCandB, ChaseStepBudgetErrorNamesTheLimit) {
  // One tgd application is needed; a zero-ish step budget trips first.
  DependencySet sigma = Sigma({"a(X) -> b(X).", "b(X) -> a(X)."});
  ConjunctiveQuery q = Q("Q(X) :- a(X), b(X).");
  CandBOptions options;
  options.context.budget.max_chase_steps = 0;
  Result<CandBResult> result =
      ChaseAndBackchase(q, sigma, Semantics::kSet, Schema(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->complete);
  ASSERT_TRUE(result->exhaustion.has_value());
  EXPECT_EQ(result->exhaustion->limit, "max_chase_steps");
  ASSERT_TRUE(result->checkpoint.has_value());
  EXPECT_EQ(result->checkpoint->phase, CandBCheckpoint::kChasePhase);
}

TEST(ParallelRewrite, ThreadCountDoesNotChangeRewritings) {
  ViewSet views;
  ASSERT_TRUE(views.Add(Q("v1(X, Y) :- p(X, Y), r(Y).")).ok());
  ASSERT_TRUE(views.Add(Q("v2(X) :- p(X, Y).")).ok());
  DependencySet sigma = Sigma({"p(X, Y) -> r(Y)."});
  ConjunctiveQuery q = Q("Q(X, Y) :- p(X, Y), r(Y).");
  RewriteOptions serial;
  serial.context.budget.threads = 1;
  std::string reference = Canon(
      Unwrap(RewriteWithViews(q, views, sigma, Semantics::kSet, Schema(), serial)));
  for (size_t threads : {2u, 4u, 8u}) {
    RewriteOptions parallel;
    parallel.context.budget.threads = threads;
    std::string got = Canon(Unwrap(
        RewriteWithViews(q, views, sigma, Semantics::kSet, Schema(), parallel)));
    EXPECT_EQ(got, reference) << threads << " threads";
  }
}

TEST(ParallelRewrite, MemoizedUniversalPlanCountsAsPreseededHit) {
  // The view copies the query exactly, so the candidate v(X,Y)'s expansion
  // is isomorphic to U: its chase must be served from the preseeded memo
  // entry (U was chased before the sweep), i.e. hits >= 1.
  ViewSet views;
  ASSERT_TRUE(views.Add(Q("v(X, Y) :- p(X, Y).")).ok());
  ConjunctiveQuery q = Q("Q(X, Y) :- p(X, Y).");
  RewriteResult result =
      Unwrap(RewriteWithViews(q, views, {}, Semantics::kSet, Schema()));
  ASSERT_EQ(result.rewritings.size(), 1u);
  EXPECT_GE(result.chase_cache_hits, 1u);
}

}  // namespace
}  // namespace sqleq
