// Unit tests for equivalence under dependencies (Theorems 2.2, 6.1, 6.2;
// Propositions 6.1, 6.2) — the paper's headline decision procedures,
// exercised through the EquivalenceEngine facade (testing::EngineEquivalent).
#include "equivalence/sigma_equivalence.h"  // SetContainedUnder

#include <gtest/gtest.h>

#include "db/satisfaction.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::Example41Schema;
using testing::Example41Sigma;
using testing::EngineEquivalent;
using testing::Q;
using testing::Sigma;
using testing::Unwrap;

TEST(SigmaEquivalence, Theorem22SetEquivalence) {
  // Example 4.1: Q1 ≡Σ,S Q4.
  ConjunctiveQuery q1 =
      Q("Q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U).");
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  EXPECT_TRUE(Unwrap(EngineEquivalent(q1, q4, Example41Sigma())));
  // Without dependencies they are not even set equivalent.
  EXPECT_FALSE(Unwrap(EngineEquivalent(q1, q4, {})));
}

TEST(SigmaEquivalence, Example41BagAndBagSetFail) {
  ConjunctiveQuery q1 =
      Q("Q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U).");
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  EXPECT_FALSE(Unwrap(EngineEquivalent(q1, q4, Example41Sigma(), Semantics::kBag, Example41Schema())));
  EXPECT_FALSE(Unwrap(EngineEquivalent(q1, q4, Example41Sigma(), Semantics::kBagSet)));
}

TEST(SigmaEquivalence, Example41PositivePairs) {
  DependencySet sigma = Example41Sigma();
  Schema schema = Example41Schema();
  ConjunctiveQuery q2 = Q("Q2(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X).");
  ConjunctiveQuery q3 = Q("Q3(X) :- p(X, Y), t(X, Y, W), s(X, Z).");
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  // Q3 = (Q4)Σ,B: bag-equivalent to Q4 under Σ.
  EXPECT_TRUE(Unwrap(EngineEquivalent(q3, q4, sigma, Semantics::kBag, schema)));
  // Q2 = (Q4)Σ,BS: bag-set-equivalent to Q4 under Σ.
  EXPECT_TRUE(Unwrap(EngineEquivalent(q2, q4, sigma, Semantics::kBagSet)));
  // But Q2 is NOT bag-equivalent to Q4 under Σ (r is bag valued).
  EXPECT_FALSE(Unwrap(EngineEquivalent(q2, q4, sigma, Semantics::kBag, schema)));
}

TEST(SigmaEquivalence, Proposition21ChainUnderDependencies) {
  // B-equivalence ⇒ BS-equivalence ⇒ S-equivalence (Prop 6.1 / K.1),
  // checked on Example 4.1 pairs.
  DependencySet sigma = Example41Sigma();
  Schema schema = Example41Schema();
  ConjunctiveQuery q3 = Q("Q3(X) :- p(X, Y), t(X, Y, W), s(X, Z).");
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  ASSERT_TRUE(Unwrap(EngineEquivalent(q3, q4, sigma, Semantics::kBag, schema)));
  EXPECT_TRUE(Unwrap(EngineEquivalent(q3, q4, sigma, Semantics::kBagSet)));
  EXPECT_TRUE(Unwrap(EngineEquivalent(q3, q4, sigma)));
}

TEST(SigmaEquivalence, EmptySigmaReducesToPlainTests) {
  ConjunctiveQuery a = Q("Q(X) :- p(X, Y).");
  ConjunctiveQuery dup = Q("Q(X) :- p(X, Y), p(X, Y).");
  ConjunctiveQuery redundant = Q("Q(X) :- p(X, Y), p(X, Z).");
  Schema schema;
  schema.Relation("p", 2);
  EXPECT_FALSE(Unwrap(EngineEquivalent(a, dup, {}, Semantics::kBag, schema)));
  EXPECT_TRUE(Unwrap(EngineEquivalent(a, dup, {}, Semantics::kBagSet)));
  EXPECT_TRUE(Unwrap(EngineEquivalent(a, redundant, {})));
  EXPECT_FALSE(Unwrap(EngineEquivalent(a, redundant, {}, Semantics::kBagSet)));
}

TEST(SigmaEquivalence, GenericEntryPointDispatches) {
  ConjunctiveQuery a = Q("Q(X) :- p(X, Y).");
  ConjunctiveQuery dup = Q("Q(X) :- p(X, Y), p(X, Y).");
  Schema schema;
  schema.Relation("p", 2);
  EXPECT_FALSE(Unwrap(EngineEquivalent(a, dup, {}, Semantics::kBag, schema)));
  EXPECT_TRUE(Unwrap(EngineEquivalent(a, dup, {}, Semantics::kBagSet, schema)));
  EXPECT_TRUE(Unwrap(EngineEquivalent(a, dup, {}, Semantics::kSet, schema)));
}

TEST(SigmaEquivalence, InclusionDependencyMakesJoinRedundant) {
  // emp(E, D) with fk emp.D ⊆ dept.D: joining dept back is a no-op under
  // set AND bag-set semantics when dept's key is D... here dept is unary so
  // each emp row matches exactly one dept row IF dept is set valued.
  DependencySet sigma = Sigma({"emp(E, D) -> dept(D)."});
  Schema schema;
  schema.Relation("emp", 2).Relation("dept", 1, /*set_valued=*/true);
  ConjunctiveQuery with_join = Q("Q(E) :- emp(E, D), dept(D).");
  ConjunctiveQuery without = Q("Q(E) :- emp(E, D).");
  EXPECT_TRUE(Unwrap(EngineEquivalent(with_join, without, sigma)));
  EXPECT_TRUE(Unwrap(EngineEquivalent(with_join, without, sigma, Semantics::kBagSet)));
  EXPECT_TRUE(Unwrap(EngineEquivalent(with_join, without, sigma, Semantics::kBag, schema)));
}

TEST(SigmaEquivalence, BagValuedTargetBlocksBagEquivalence) {
  // Same but dept is bag valued: duplicates in dept multiply the join.
  DependencySet sigma = Sigma({"emp(E, D) -> dept(D)."});
  Schema schema;
  schema.Relation("emp", 2).Relation("dept", 1);
  ConjunctiveQuery with_join = Q("Q(E) :- emp(E, D), dept(D).");
  ConjunctiveQuery without = Q("Q(E) :- emp(E, D).");
  EXPECT_FALSE(Unwrap(EngineEquivalent(with_join, without, sigma, Semantics::kBag, schema)));
  // Bag-set is still fine (set-valued database by definition).
  EXPECT_TRUE(Unwrap(EngineEquivalent(with_join, without, sigma, Semantics::kBagSet)));
}

TEST(SigmaEquivalence, SetContainedUnderDependencies) {
  DependencySet sigma = Sigma({"p(X, Y) -> r(X)."});
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");
  ConjunctiveQuery qr = Q("Q(X) :- p(X, Y), r(X).");
  // Without Σ: qr ⊑ q but not conversely.
  EXPECT_TRUE(Unwrap(SetContainedUnder(qr, q, {})));
  EXPECT_FALSE(Unwrap(SetContainedUnder(q, qr, {})));
  // With Σ: both directions hold.
  EXPECT_TRUE(Unwrap(SetContainedUnder(q, qr, sigma)));
}

TEST(SigmaEquivalence, EquivalenceIsWitnessedOnSatisfyingDatabases) {
  // Model-check the Q3 ≡Σ,B Q4 verdict on hand-built databases D |= Σ.
  DependencySet sigma = Example41Sigma();
  Schema schema = Example41Schema();
  ConjunctiveQuery q3 = Q("Q3(X) :- p(X, Y), t(X, Y, W), s(X, Z).");
  ConjunctiveQuery q4 = Q("Q4(X) :- p(X, Y).");
  Database d(schema);
  d.Add("p", {1, 2}, 2).Add("t", {1, 2, 4}).Add("s", {1, 3}).Add("r", {1});
  d.Add("u", {1, 5}).Add("u", {1, 6});
  ASSERT_TRUE(Unwrap(Satisfies(d, sigma)));
  EXPECT_EQ(Unwrap(Evaluate(q3, d, Semantics::kBag)),
            Unwrap(Evaluate(q4, d, Semantics::kBag)));
}

TEST(SigmaEquivalence, FailedChaseOnBothSidesMeansEquivalent) {
  DependencySet sigma = Sigma({"s(A, B), s(A, C) -> B = C."});
  Schema schema;
  schema.Relation("s", 2);
  ConjunctiveQuery impossible1 = Q("Q(X) :- s(X, 4), s(X, 5).");
  ConjunctiveQuery impossible2 = Q("Q(X) :- s(X, 1), s(X, 2).");
  ConjunctiveQuery fine = Q("Q(X) :- s(X, 4).");
  EXPECT_TRUE(Unwrap(EngineEquivalent(impossible1, impossible2, sigma, Semantics::kBag, schema)));
  EXPECT_FALSE(
      Unwrap(EngineEquivalent(impossible1, fine, sigma, Semantics::kBag, schema)));
}

}  // namespace
}  // namespace sqleq
