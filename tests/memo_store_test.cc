// Tests for the tier-2 on-disk chase memo (chase/memo_store.h): record
// roundtrips, restart recovery, torn-tail and corruption tolerance, segment
// rotation + compaction under the disk budget, and the deterministic
// memo.disk.{write,read,fsync} fault sites — including short-write
// injection, the in-process model of a crash mid-append.
#include "chase/memo_store.h"

#include <gtest/gtest.h>

#include <dirent.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "chase/set_chase.h"
#include "test_util.h"
#include "util/fault.h"
#include "util/telemetry.h"

namespace sqleq {
namespace {

using ::sqleq::testing::Q;
using ::sqleq::testing::Unwrap;

/// A fresh empty directory under TMPDIR, removed by the harness' tmp
/// cleanup (tests also reopen stores in place, so no eager deletion).
std::string TempDir() {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr ? base : "/tmp") +
                     "/sqleq_memo_store_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* made = ::mkdtemp(buf.data());
  EXPECT_NE(made, nullptr);
  return std::string(made);
}

MemoStoreOptions DirOptions(const std::string& dir) {
  MemoStoreOptions options;
  options.dir = dir;
  return options;
}

std::unique_ptr<MemoStore> MustOpen(MemoStoreOptions options) {
  return Unwrap(MemoStore::Open(std::move(options)), "MemoStore::Open");
}

/// Truncates the file to `keep` bytes (or grows with zeros — not used).
void Truncate(const std::string& path, long keep) {
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << path;
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GE(static_cast<long>(data.size()), keep);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), keep);
}

/// The single segment file in `dir` (fails the test unless exactly one).
/// Fresh stores start at seq 1, so the name is memo-00000001.seg — but list
/// the directory rather than bake the numbering in.
std::string OnlySegment(const std::string& dir, MemoStore* store) {
  EXPECT_EQ(store->stats().segments, 1u);
  std::vector<std::string> segs;
  DIR* d = ::opendir(dir.c_str());
  EXPECT_NE(d, nullptr);
  while (struct dirent* ent = ::readdir(d)) {
    std::string name = ent->d_name;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".seg") == 0) {
      segs.push_back(dir + "/" + name);
    }
  }
  ::closedir(d);
  EXPECT_EQ(segs.size(), 1u);
  return segs.empty() ? dir + "/missing.seg" : segs.front();
}

TEST(MemoStore, PutGetRoundtrip) {
  std::string dir = TempDir();
  std::unique_ptr<MemoStore> store = MustOpen(DirOptions(dir));
  EXPECT_EQ(Unwrap(store->Get("absent")), std::nullopt);
  ASSERT_TRUE(store->Put("k1", "body one").ok());
  ASSERT_TRUE(store->Put("k2", "body two\nwith a second line").ok());
  EXPECT_EQ(Unwrap(store->Get("k1")), std::optional<std::string>("body one"));
  EXPECT_EQ(Unwrap(store->Get("k2")),
            std::optional<std::string>("body two\nwith a second line"));
  MemoStore::Stats stats = store->stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.writes, 2u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_GT(stats.disk_bytes, 0u);
}

TEST(MemoStore, LastWriterWinsAndIdenticalPutIsFree) {
  std::string dir = TempDir();
  std::unique_ptr<MemoStore> store = MustOpen(DirOptions(dir));
  ASSERT_TRUE(store->Put("k", "v1").ok());
  ASSERT_TRUE(store->Put("k", "v2").ok());
  EXPECT_EQ(Unwrap(store->Get("k")), std::optional<std::string>("v2"));
  EXPECT_EQ(store->stats().writes, 2u);
  // A byte-identical re-Put (the eviction-spill backstop path) appends
  // nothing.
  size_t bytes = store->stats().disk_bytes;
  ASSERT_TRUE(store->Put("k", "v2").ok());
  EXPECT_EQ(store->stats().writes, 2u);
  EXPECT_EQ(store->stats().disk_bytes, bytes);
}

TEST(MemoStore, ReopenRecoversEveryRecord) {
  std::string dir = TempDir();
  {
    std::unique_ptr<MemoStore> store = MustOpen(DirOptions(dir));
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(store->Put("key" + std::to_string(i),
                             "value " + std::to_string(i)).ok());
    }
  }
  MetricsRegistry metrics;
  MemoStoreOptions options = DirOptions(dir);
  options.metrics = &metrics;
  std::unique_ptr<MemoStore> store = MustOpen(std::move(options));
  MemoStore::Stats stats = store->stats();
  EXPECT_EQ(stats.entries, 10u);
  EXPECT_EQ(stats.recovered, 10u);
  EXPECT_EQ(stats.corrupt_records, 0u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(Unwrap(store->Get("key" + std::to_string(i))),
              std::optional<std::string>("value " + std::to_string(i)));
  }
  MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.counters[metric::kMemoDiskRecovered], 10u);
}

TEST(MemoStore, TornTailIsSkippedNotFatal) {
  std::string dir = TempDir();
  std::string segment;
  size_t full_bytes = 0;
  {
    std::unique_ptr<MemoStore> store = MustOpen(DirOptions(dir));
    ASSERT_TRUE(store->Put("intact", "intact body").ok());
    ASSERT_TRUE(store->Put("torn", "this record will lose its tail").ok());
    segment = OnlySegment(dir, store.get());
    full_bytes = store->stats().disk_bytes;
  }
  // Tear mid-record: keep the frame header and half the last payload.
  Truncate(segment, static_cast<long>(full_bytes - 10));

  MetricsRegistry metrics;
  MemoStoreOptions options = DirOptions(dir);
  options.metrics = &metrics;
  std::unique_ptr<MemoStore> store = MustOpen(std::move(options));
  EXPECT_EQ(Unwrap(store->Get("intact")),
            std::optional<std::string>("intact body"));
  EXPECT_EQ(Unwrap(store->Get("torn")), std::nullopt);
  MemoStore::Stats stats = store->stats();
  EXPECT_EQ(stats.recovered, 1u);
  EXPECT_EQ(stats.corrupt_records, 1u);
  EXPECT_EQ(metrics.Snapshot().counters[metric::kMemoDiskCorrupt], 1u);

  // New appends go to a fresh segment — never after a torn tail — and a
  // further reopen sees them.
  ASSERT_TRUE(store->Put("after", "appended after recovery").ok());
  store.reset();
  store = MustOpen(DirOptions(dir));
  EXPECT_EQ(Unwrap(store->Get("after")),
            std::optional<std::string>("appended after recovery"));
  EXPECT_EQ(Unwrap(store->Get("intact")),
            std::optional<std::string>("intact body"));
}

TEST(MemoStore, FlippedByteFailsChecksumAndStopsThatSegment) {
  std::string dir = TempDir();
  std::string segment;
  {
    std::unique_ptr<MemoStore> store = MustOpen(DirOptions(dir));
    ASSERT_TRUE(store->Put("a", "aaaaaaaaaaaaaaaa").ok());
    ASSERT_TRUE(store->Put("b", "bbbbbbbbbbbbbbbb").ok());
    segment = OnlySegment(dir, store.get());
  }
  {
    // Flip one payload byte of the FIRST record: its CRC fails, and the
    // scan conservatively stops there (frame boundaries after a corrupt
    // frame cannot be trusted), dropping "b" with it.
    std::fstream f(segment, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(12);  // 8-byte frame header + a few bytes into the payload
    f.put('X');
  }
  std::unique_ptr<MemoStore> store = MustOpen(DirOptions(dir));
  EXPECT_EQ(store->stats().recovered, 0u);
  EXPECT_GE(store->stats().corrupt_records, 1u);
  EXPECT_EQ(Unwrap(store->Get("a")), std::nullopt);
  EXPECT_EQ(Unwrap(store->Get("b")), std::nullopt);
  // The store still accepts and serves new work.
  ASSERT_TRUE(store->Put("c", "fresh").ok());
  EXPECT_EQ(Unwrap(store->Get("c")), std::optional<std::string>("fresh"));
}

TEST(MemoStore, RotationAndCompactionHonorTheDiskBudget) {
  std::string dir = TempDir();
  MemoStoreOptions options = DirOptions(dir);
  options.segment_bytes = 1024;       // rotate often
  options.max_disk_bytes = 8 * 1024;  // force compaction
  MetricsRegistry metrics;
  options.metrics = &metrics;
  std::unique_ptr<MemoStore> store = MustOpen(std::move(options));
  const std::string filler(200, 'x');
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(store->Put("key" + std::to_string(i),
                           filler + std::to_string(i)).ok());
  }
  MemoStore::Stats stats = store->stats();
  EXPECT_LE(stats.disk_bytes, 8u * 1024u);
  EXPECT_GT(stats.compactions, 0u);
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_GT(metrics.Snapshot().counters[metric::kMemoDiskCompactions], 0u);
  // The newest record always survives compaction.
  EXPECT_EQ(Unwrap(store->Get("key199")),
            std::optional<std::string>(filler + "199"));
  // Reopen agrees with the in-memory index.
  size_t live = stats.entries;
  store.reset();
  store = MustOpen(DirOptions(dir));
  EXPECT_EQ(store->stats().recovered, live);
  EXPECT_EQ(Unwrap(store->Get("key199")),
            std::optional<std::string>(filler + "199"));
}

TEST(MemoStoreFault, InjectedWriteFailureSurfacesAndSparesTheStore) {
  std::string dir = TempDir();
  FaultInjector faults(7);
  faults.Arm(fault_sites::kMemoDiskWrite, {FaultKind::kExhausted, 2, 0, {}, 1.0});
  MemoStoreOptions options = DirOptions(dir);
  options.faults = &faults;
  std::unique_ptr<MemoStore> store = MustOpen(std::move(options));
  ASSERT_TRUE(store->Put("k1", "first").ok());
  Status failed = store->Put("k2", "second");
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(faults.FiredCount(fault_sites::kMemoDiskWrite), 1u);
  // The failed record is not indexed; the store keeps serving.
  EXPECT_EQ(Unwrap(store->Get("k2")), std::nullopt);
  ASSERT_TRUE(store->Put("k3", "third").ok());
  EXPECT_EQ(Unwrap(store->Get("k1")), std::optional<std::string>("first"));
  EXPECT_EQ(Unwrap(store->Get("k3")), std::optional<std::string>("third"));
}

TEST(MemoStoreFault, InjectedShortWriteLeavesARecoverableTornTail) {
  std::string dir = TempDir();
  FaultInjector faults(11);
  faults.Arm(fault_sites::kMemoDiskWrite, {FaultKind::kShortWrite, 2, 0, {}, 1.0});
  MemoStoreOptions options = DirOptions(dir);
  options.faults = &faults;
  std::unique_ptr<MemoStore> store = MustOpen(std::move(options));
  ASSERT_TRUE(store->Put("whole", "a record that lands in full").ok());
  Status torn = store->Put("torn", "a record that is cut mid-frame");
  EXPECT_FALSE(torn.ok());
  EXPECT_NE(torn.message().find("short write"), std::string::npos) << torn.ToString();
  EXPECT_EQ(Unwrap(store->Get("torn")), std::nullopt);
  // The next Put rotates off the poisoned segment and succeeds.
  ASSERT_TRUE(store->Put("next", "after the torn append").ok());
  EXPECT_GE(store->stats().segments, 2u);

  // Restart: exactly the crash-mid-append picture — the torn frame is
  // skipped, everything else recovers.
  store.reset();
  MetricsRegistry metrics;
  MemoStoreOptions reopen = DirOptions(dir);
  reopen.metrics = &metrics;
  store = MustOpen(std::move(reopen));
  EXPECT_EQ(Unwrap(store->Get("whole")),
            std::optional<std::string>("a record that lands in full"));
  EXPECT_EQ(Unwrap(store->Get("next")),
            std::optional<std::string>("after the torn append"));
  EXPECT_EQ(Unwrap(store->Get("torn")), std::nullopt);
  EXPECT_EQ(store->stats().recovered, 2u);
}

TEST(MemoStoreFault, InjectedReadFailureIsAMissNotACrash) {
  std::string dir = TempDir();
  FaultInjector faults(3);
  MemoStoreOptions options = DirOptions(dir);
  options.faults = &faults;
  std::unique_ptr<MemoStore> store = MustOpen(std::move(options));
  ASSERT_TRUE(store->Put("k", "v").ok());
  faults.Arm(fault_sites::kMemoDiskRead, {FaultKind::kExhausted, 1, 0, {}, 1.0});
  Result<std::optional<std::string>> read = store->Get("k");
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(faults.FiredCount(fault_sites::kMemoDiskRead), 1u);
  // Next read (site fires only on hit 1) serves the record intact.
  EXPECT_EQ(Unwrap(store->Get("k")), std::optional<std::string>("v"));
}

TEST(MemoStoreFault, InjectedFsyncFailureKeepsTheRecord) {
  std::string dir = TempDir();
  FaultInjector faults(5);
  faults.Arm(fault_sites::kMemoDiskFsync, {FaultKind::kExhausted, 1, 0, {}, 1.0});
  MemoStoreOptions options = DirOptions(dir);
  options.faults = &faults;
  options.fsync_each_put = true;
  std::unique_ptr<MemoStore> store = MustOpen(std::move(options));
  // The bytes reached the file even though the barrier failed: the record
  // stays indexed (process-crash durability is unaffected) and the error
  // surfaces to the caller.
  Status put = store->Put("k", "v");
  EXPECT_FALSE(put.ok());
  EXPECT_EQ(faults.FiredCount(fault_sites::kMemoDiskFsync), 1u);
  EXPECT_EQ(Unwrap(store->Get("k")), std::optional<std::string>("v"));
  // Second Put: fsync site no longer fires.
  ASSERT_TRUE(store->Put("k2", "v2").ok());
}

TEST(MemoStore, ChaseOutcomeBodyRoundtrip) {
  ChaseOutcome outcome{Q("Q(X) :- r(X, Y), s(Y)."),
                       {{"d1", true, "Q(X) :- r(X, Y), s(Y), t(Y)."},
                        {"e1", false, "Q(X) :- r(X, X), s(X)."}},
                       /*failed=*/false};
  std::string body = SerializeChaseOutcomeBody(outcome);
  ChaseOutcome back = Unwrap(ParseChaseOutcomeBody(body), "ParseChaseOutcomeBody");
  EXPECT_EQ(back.result.ToString(), outcome.result.ToString());
  ASSERT_EQ(back.trace.size(), 2u);
  EXPECT_EQ(back.trace[0].dep_label, "d1");
  EXPECT_TRUE(back.trace[0].is_tgd);
  EXPECT_EQ(back.trace[1].result, outcome.trace[1].result);
  EXPECT_FALSE(back.failed);

  ChaseOutcome failed{Q("Q(X) :- r(X, X)."), {}, /*failed=*/true};
  ChaseOutcome failed_back =
      Unwrap(ParseChaseOutcomeBody(SerializeChaseOutcomeBody(failed)));
  EXPECT_TRUE(failed_back.failed);
  EXPECT_TRUE(failed_back.trace.empty());

  EXPECT_FALSE(ParseChaseOutcomeBody("not a record").ok());
  EXPECT_FALSE(ParseChaseOutcomeBody("failed 0\nresult Q\n").ok());
}

}  // namespace
}  // namespace sqleq
