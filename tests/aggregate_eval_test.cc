// Unit tests for the three-step aggregate evaluation semantics (§2.5).
#include "db/aggregate_eval.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sqleq {
namespace {

using testing::AQ;
using testing::Unwrap;

Schema SalesSchema() {
  Schema s;
  s.Relation("sales", 2);  // (store, amount)
  return s;
}

Database SalesDb() {
  Database db(SalesSchema());
  db.Add("sales", {1, 10}).Add("sales", {1, 20}).Add("sales", {2, 5});
  return db;
}

TEST(AggregateEval, SumGroups) {
  Bag out = Unwrap(EvaluateAggregate(AQ("A(S, sum(Y)) :- sales(S, Y)."), SalesDb()));
  EXPECT_EQ(out.Count(IntTuple({1, 30})), 1u);
  EXPECT_EQ(out.Count(IntTuple({2, 5})), 1u);
  EXPECT_EQ(out.TotalSize(), 2u);
}

TEST(AggregateEval, CountGroups) {
  Bag out = Unwrap(EvaluateAggregate(AQ("A(S, count(Y)) :- sales(S, Y)."), SalesDb()));
  EXPECT_EQ(out.Count(IntTuple({1, 2})), 1u);
  EXPECT_EQ(out.Count(IntTuple({2, 1})), 1u);
}

TEST(AggregateEval, CountStarGroups) {
  Bag out = Unwrap(EvaluateAggregate(AQ("A(S, count(*)) :- sales(S, Y)."), SalesDb()));
  EXPECT_EQ(out.Count(IntTuple({1, 2})), 1u);
  EXPECT_EQ(out.Count(IntTuple({2, 1})), 1u);
}

TEST(AggregateEval, MaxAndMin) {
  Bag mx = Unwrap(EvaluateAggregate(AQ("A(S, max(Y)) :- sales(S, Y)."), SalesDb()));
  EXPECT_EQ(mx.Count(IntTuple({1, 20})), 1u);
  Bag mn = Unwrap(EvaluateAggregate(AQ("A(S, min(Y)) :- sales(S, Y)."), SalesDb()));
  EXPECT_EQ(mn.Count(IntTuple({1, 10})), 1u);
}

TEST(AggregateEval, NoGroupingProducesSingleRow) {
  Bag out = Unwrap(EvaluateAggregate(AQ("A(sum(Y)) :- sales(S, Y)."), SalesDb()));
  EXPECT_EQ(out.Count(IntTuple({35})), 1u);
  EXPECT_EQ(out.TotalSize(), 1u);
}

TEST(AggregateEval, EmptyInputYieldsNoGroups) {
  Database db(SalesSchema());
  Bag out = Unwrap(EvaluateAggregate(AQ("A(S, sum(Y)) :- sales(S, Y)."), db));
  EXPECT_TRUE(out.empty());
}

TEST(AggregateEval, SumSeesBagSetDuplicatesFromJoins) {
  // The first step computes Q̆(D,BS): a join that produces the same (S, Y)
  // twice makes Y count twice in the sum.
  Schema schema;
  schema.Relation("sales", 2).Relation("tag", 1);
  Database db(schema);
  db.Add("sales", {1, 10}).Add("tag", {7}).Add("tag", {8});
  Bag out =
      Unwrap(EvaluateAggregate(AQ("A(S, sum(Y)) :- sales(S, Y), tag(T)."), db));
  EXPECT_EQ(out.Count(IntTuple({1, 20})), 1u);
}

TEST(AggregateEval, CountDistinctAssignmentsNotTuples) {
  // count(Y) counts assignment occurrences (bag), not distinct values.
  Database db(SalesSchema());
  db.Add("sales", {1, 10}).Add("sales", {2, 10});
  Bag out = Unwrap(EvaluateAggregate(AQ("A(count(Y)) :- sales(S, Y)."), db));
  EXPECT_EQ(out.Count(IntTuple({2})), 1u);
}

TEST(AggregateEval, SumOverStringsFails) {
  Schema schema;
  schema.Relation("t", 1);
  Database db(schema);
  ASSERT_TRUE(db.Insert("t", {Term::Str("x")}).ok());
  EXPECT_FALSE(EvaluateAggregate(AQ("A(sum(Y)) :- t(Y)."), db).ok());
}

TEST(AggregateEval, MaxOverStringsIsLexicographic) {
  Schema schema;
  schema.Relation("t", 1);
  Database db(schema);
  ASSERT_TRUE(db.Insert("t", {Term::Str("apple")}).ok());
  ASSERT_TRUE(db.Insert("t", {Term::Str("pear")}).ok());
  Bag out = Unwrap(EvaluateAggregate(AQ("A(max(Y)) :- t(Y)."), db));
  EXPECT_EQ(out.Count({Term::Str("pear")}), 1u);
}

TEST(AggregateEval, MixedTypeGroupFails) {
  Schema schema;
  schema.Relation("t", 1);
  Database db(schema);
  ASSERT_TRUE(db.Insert("t", {Term::Str("x")}).ok());
  ASSERT_TRUE(db.Insert("t", {Term::Int(1)}).ok());
  EXPECT_FALSE(EvaluateAggregate(AQ("A(max(Y)) :- t(Y)."), db).ok());
}

TEST(AggregateEval, NegativeSums) {
  Database db(SalesSchema());
  db.Add("sales", {1, -10}).Add("sales", {1, 4});
  Bag out = Unwrap(EvaluateAggregate(AQ("A(S, sum(Y)) :- sales(S, Y)."), db));
  EXPECT_EQ(out.Count(IntTuple({1, -6})), 1u);
}

}  // namespace
}  // namespace sqleq
