// Unit tests for bag and bag-set equivalence without dependencies
// (Theorem 2.1) and the Theorem 4.2 extension modulo set-valued relations.
#include "equivalence/bag_equivalence.h"

#include <gtest/gtest.h>

#include "db/eval.h"
#include "equivalence/bag_set_equivalence.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::Q;
using testing::Unwrap;

TEST(BagEquivalence, IsomorphicQueriesEquivalent) {
  EXPECT_TRUE(BagEquivalent(Q("Q(X) :- p(X, Y)."), Q("Q(A) :- p(A, B).")));
}

TEST(BagEquivalence, RedundantAtomBreaksBagEquivalence) {
  // Set-equivalent, bag-inequivalent (Chaudhuri–Vardi).
  EXPECT_FALSE(BagEquivalent(Q("Q(X) :- p(X, Y)."), Q("Q(X) :- p(X, Y), p(X, Z).")));
}

TEST(BagEquivalence, DuplicateAtomBreaksBagEquivalence) {
  EXPECT_FALSE(BagEquivalent(Q("Q(X) :- p(X, Y)."), Q("Q(X) :- p(X, Y), p(X, Y).")));
}

TEST(BagSetEquivalence, DuplicateAtomsIrrelevant) {
  EXPECT_TRUE(BagSetEquivalent(Q("Q(X) :- p(X, Y)."), Q("Q(X) :- p(X, Y), p(X, Y).")));
}

TEST(BagSetEquivalence, RedundantNonDuplicateAtomStillMatters) {
  // p(X, Z) is not a duplicate of p(X, Y): canonical representations differ.
  EXPECT_FALSE(BagSetEquivalent(Q("Q(X) :- p(X, Y)."), Q("Q(X) :- p(X, Y), p(X, Z).")));
}

TEST(BagSetEquivalence, ImpliedByBagEquivalence) {
  // Prop 2.1 chain on a small pair.
  ConjunctiveQuery a = Q("Q(X) :- p(X, Y), r(X).");
  ConjunctiveQuery b = Q("Q(A) :- r(A), p(A, B).");
  EXPECT_TRUE(BagEquivalent(a, b));
  EXPECT_TRUE(BagSetEquivalent(a, b));
}

TEST(Theorem42, DuplicateOverSetValuedRelationIgnored) {
  // Example 4.9: Q3 vs Q5 — bag equivalent exactly because S is set valued.
  Schema schema = testing::Example41Schema();
  ConjunctiveQuery q3 = Q("Q3(X) :- p(X, Y), t(X, Y, W), s(X, Z).");
  ConjunctiveQuery q5 = Q("Q5(X) :- p(X, Y), t(X, Y, W), s(X, Z), s(X, Z).");
  EXPECT_FALSE(BagEquivalent(q3, q5));
  EXPECT_TRUE(BagEquivalentModuloSetRelations(q3, q5, schema));
}

TEST(Theorem42, DuplicateOverBagValuedRelationStillCounts) {
  // Example D.2: Q7 has two copies of r(X); R is bag valued.
  Schema schema = testing::Example41Schema();
  ConjunctiveQuery q7 = Q("Q7(X) :- p(X, Y), r(X), r(X).");
  ConjunctiveQuery q8 = Q("Q8(X) :- p(X, Y), r(X).");
  EXPECT_FALSE(BagEquivalentModuloSetRelations(q7, q8, schema));
}

TEST(Theorem42, WithoutSetValuedFlagsReducesToTheorem21) {
  Schema plain;
  plain.Relation("p", 2).Relation("s", 2);
  ConjunctiveQuery a = Q("Q(X) :- p(X, Y), s(X, Z).");
  ConjunctiveQuery b = Q("Q(X) :- p(X, Y), s(X, Z), s(X, Z).");
  EXPECT_FALSE(BagEquivalentModuloSetRelations(a, b, plain));
}

TEST(Theorem42, EvaluationOracleConfirmsExample49) {
  // Example D.1's database: with S forced to be a set, Q3 and Q5 agree; on
  // a bag-valued S they differ.
  Schema schema = testing::Example41Schema();
  ConjunctiveQuery q3 = Q("Q3(X) :- p(X, Y), t(X, Y, W), s(X, Z).");
  ConjunctiveQuery q5 = Q("Q5(X) :- p(X, Y), t(X, Y, W), s(X, Z), s(X, Z).");

  // Set-valued S (flag enforced by the schema): answers agree.
  Database d_ok(schema);
  d_ok.Add("p", {1, 2}).Add("s", {1, 3}).Add("t", {1, 2, 5});
  EXPECT_EQ(Unwrap(Evaluate(q3, d_ok, Semantics::kBag)),
            Unwrap(Evaluate(q5, d_ok, Semantics::kBag)));

  // Bag-valued S (schema without flags): Q5 squares the multiplicity.
  Schema relaxed;
  relaxed.Relation("p", 2).Relation("r", 1).Relation("s", 2).Relation("t", 3);
  Database d_bad(relaxed);
  d_bad.Add("p", {1, 2}).Add("s", {1, 3}, 2).Add("t", {1, 2, 5});
  Bag a3 = Unwrap(Evaluate(q3, d_bad, Semantics::kBag));
  Bag a5 = Unwrap(Evaluate(q5, d_bad, Semantics::kBag));
  EXPECT_EQ(a3.Count(IntTuple({1})), 2u);
  EXPECT_EQ(a5.Count(IntTuple({1})), 4u);
}

TEST(BagEquivalence, AgreesWithBagEvaluationOnRandomDatabases) {
  // Theorem 2.1(1) spot-check by model checking: isomorphic pairs evaluate
  // identically under B on random bag databases.
  ConjunctiveQuery a = Q("Q(X) :- e(X, Y), e(Y, Z).");
  ConjunctiveQuery b = Q("Q(U) :- e(V, W), e(U, V).");
  ASSERT_TRUE(BagEquivalent(a, b));
  Schema schema;
  schema.Relation("e", 2);
  Rng rng(99);
  for (int i = 0; i < 20; ++i) {
    Database db = testing::RandomDatabase(schema, 6, 4, 3, &rng);
    EXPECT_EQ(Unwrap(Evaluate(a, db, Semantics::kBag)),
              Unwrap(Evaluate(b, db, Semantics::kBag)));
  }
}

}  // namespace
}  // namespace sqleq
