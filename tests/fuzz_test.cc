// Robustness fuzzing: random byte soup and mutated valid inputs fed to
// every parser entry point must produce Status errors, never crashes or
// hangs. Seeds are parameterized so each instantiation explores different
// garbage.
#include <gtest/gtest.h>

#include <string>

#include "ir/parser.h"
#include "sql/sql_parser.h"
#include "sql/translate.h"
#include "util/rng.h"

namespace sqleq {
namespace {

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

std::string RandomSoup(Rng* rng, int len) {
  static const char kAlphabet[] =
      "abcXYZ01(),.:->=EXISTS AND'\"#_*;\t\n SELECT FROM WHERE";
  std::string out;
  for (int i = 0; i < len; ++i) {
    out += kAlphabet[rng->Index(sizeof(kAlphabet) - 1)];
  }
  return out;
}

std::string Mutate(std::string base, Rng* rng) {
  if (base.empty()) return base;
  int edits = rng->UniformInt(1, 4);
  for (int i = 0; i < edits; ++i) {
    size_t pos = rng->Index(base.size());
    switch (rng->UniformInt(0, 2)) {
      case 0:
        base.erase(pos, 1);
        break;
      case 1:
        base.insert(pos, 1, static_cast<char>(rng->UniformInt(32, 126)));
        break;
      default:
        base[pos] = static_cast<char>(rng->UniformInt(32, 126));
        break;
    }
    if (base.empty()) break;
  }
  return base;
}

TEST_P(FuzzTest, DatalogParsersNeverCrashOnSoup) {
  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    std::string soup = RandomSoup(&rng, rng.UniformInt(0, 60));
    (void)ParseQuery(soup);
    (void)ParseAggregateQuery(soup);
    (void)ParseDependencyText(soup);
    (void)ParseAtoms(soup);
    (void)ParseTerm(soup);
  }
}

TEST_P(FuzzTest, DatalogParsersNeverCrashOnMutatedValidInput) {
  Rng rng(GetParam() + 100);
  const std::string valid_query = "Q(X, Y) :- p(X, Z), q(Z, Y), r(X, 1, 'a').";
  const std::string valid_dep = "p(X, Y) -> EXISTS Z: s(X, Z), t(Z, Y).";
  for (int i = 0; i < 300; ++i) {
    (void)ParseQuery(Mutate(valid_query, &rng));
    (void)ParseDependencyText(Mutate(valid_dep, &rng));
  }
}

TEST_P(FuzzTest, SqlParsersNeverCrashOnSoup) {
  Rng rng(GetParam() + 200);
  for (int i = 0; i < 300; ++i) {
    std::string soup = RandomSoup(&rng, rng.UniformInt(0, 80));
    (void)sql::ParseStatement(soup);
    (void)sql::ParseScript(soup);
  }
}

TEST_P(FuzzTest, SqlParsersNeverCrashOnMutatedValidInput) {
  Rng rng(GetParam() + 300);
  const std::string valid_select =
      "SELECT DISTINCT e.id, SUM(e.salary) FROM emp e, dept d "
      "WHERE e.dept = d.id AND d.mgr = 7 GROUP BY e.id";
  const std::string valid_create =
      "CREATE TABLE emp (id INT PRIMARY KEY, dept INT, "
      "FOREIGN KEY (dept) REFERENCES dept (id))";
  const std::string valid_insert = "INSERT INTO emp VALUES (1, 2), (3, 4)";
  for (int i = 0; i < 200; ++i) {
    (void)sql::ParseStatement(Mutate(valid_select, &rng));
    (void)sql::ParseStatement(Mutate(valid_create, &rng));
    (void)sql::ParseStatement(Mutate(valid_insert, &rng));
  }
}

TEST_P(FuzzTest, ValidParsesStayValidUnderWhitespaceMutation) {
  // Inserting whitespace anywhere between tokens must not change the parse.
  Rng rng(GetParam() + 400);
  const std::string text = "Q(X) :- p(X, Y), r(Y).";
  Result<ConjunctiveQuery> base = ParseQuery(text);
  ASSERT_TRUE(base.ok());
  for (int i = 0; i < 50; ++i) {
    std::string padded = text;
    // Insert spaces at token boundaries only (after commas/parens).
    for (size_t pos = padded.size(); pos-- > 0;) {
      if ((padded[pos] == ',' || padded[pos] == '(' || padded[pos] == ')') &&
          rng.Chance(0.5)) {
        padded.insert(pos + 1, " ");
      }
    }
    Result<ConjunctiveQuery> again = ParseQuery(padded);
    ASSERT_TRUE(again.ok()) << padded;
    EXPECT_TRUE(base->SameUpToAtomOrder(*again));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace sqleq
