// Unit tests for view-based rewriting (ViewSet, expansion, equivalence
// tests, and the C&B-with-views enumerator).
#include "reformulation/views.h"

#include <gtest/gtest.h>

#include "db/eval.h"
#include "equivalence/isomorphism.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::Q;
using testing::Sigma;
using testing::Unwrap;

ViewSet EmpViews() {
  ViewSet views;
  // v_ed(E, D): employees with their departments.
  EXPECT_TRUE(views.Add(Q("v_ed(E, D) :- emp(E, D).")).ok());
  // v_em(E, M): employees with their managers (through dept).
  EXPECT_TRUE(views.Add(Q("v_em(E, M) :- emp(E, D), dept(D, M).")).ok());
  return views;
}

Schema EmpSchema() {
  Schema s;
  s.Relation("emp", 2).Relation("dept", 2, /*set_valued=*/true);
  return s;
}

TEST(ViewSetTest, AddValidates) {
  ViewSet views;
  EXPECT_TRUE(views.Add(Q("v1(X) :- emp(X, D).")).ok());
  // Duplicate name:
  EXPECT_FALSE(views.Add(Q("v1(X, Y) :- emp(X, Y).")).ok());
  // Nested views (referencing an existing view):
  EXPECT_FALSE(views.Add(Q("v2(X) :- v1(X).")).ok());
  EXPECT_TRUE(views.Has("v1"));
  EXPECT_FALSE(views.Has("v2"));
  EXPECT_EQ(views.size(), 1u);
}

TEST(ViewSetTest, AddRejectsViewReferencedByExisting) {
  ViewSet views;
  EXPECT_TRUE(views.Add(Q("v1(X) :- future(X).")).ok());
  EXPECT_FALSE(views.Add(Q("future(X) :- emp(X, D).")).ok());
}

TEST(ViewSetTest, AsSchemaUsesHeadArities) {
  ViewSet views = EmpViews();
  Schema s = views.AsSchema(/*set_valued=*/true);
  EXPECT_EQ(s.ArityOf("v_ed"), 2u);
  EXPECT_TRUE(s.IsSetValued("v_em"));
}

TEST(ExpandRewritingTest, SplicesViewBody) {
  ViewSet views = EmpViews();
  ConjunctiveQuery r = Q("R(E) :- v_em(E, M).");
  ConjunctiveQuery expanded = Unwrap(ExpandRewriting(r, views));
  EXPECT_TRUE(AreIsomorphic(expanded, Q("R(E) :- emp(E, D), dept(D, M).")));
}

TEST(ExpandRewritingTest, BaseAtomsPassThrough) {
  ViewSet views = EmpViews();
  ConjunctiveQuery r = Q("R(E) :- v_ed(E, D), dept(D, M).");
  ConjunctiveQuery expanded = Unwrap(ExpandRewriting(r, views));
  EXPECT_TRUE(AreIsomorphic(expanded, Q("R(E) :- emp(E, D), dept(D, M).")));
}

TEST(ExpandRewritingTest, FreshensExistentialsPerOccurrence) {
  ViewSet views = EmpViews();
  // Two v_em atoms must NOT share the hidden dept variable.
  ConjunctiveQuery r = Q("R(E1, E2) :- v_em(E1, M), v_em(E2, M).");
  ConjunctiveQuery expanded = Unwrap(ExpandRewriting(r, views));
  EXPECT_EQ(expanded.body().size(), 4u);
  EXPECT_TRUE(AreIsomorphic(
      expanded, Q("R(E1, E2) :- emp(E1, D1), dept(D1, M), emp(E2, D2), dept(D2, M).")));
}

TEST(ExpandRewritingTest, RepeatedHeadVariableForcesUnification) {
  ViewSet views;
  ASSERT_TRUE(views.Add(Q("v_same(X, X) :- emp(X, X).")).ok());
  ConjunctiveQuery r = Q("R(A) :- v_same(A, B), dept(B, M).");
  ConjunctiveQuery expanded = Unwrap(ExpandRewriting(r, views));
  // A and B unify; the dept atom follows the survivor.
  EXPECT_TRUE(AreIsomorphic(expanded, Q("R(A) :- emp(A, A), dept(A, M).")));
}

TEST(ExpandRewritingTest, HeadConstantBindsArgument) {
  ViewSet views;
  ASSERT_TRUE(views.Add(Q("v_c(X, 1) :- emp(X, 1).")).ok());
  ConjunctiveQuery r = Q("R(A, B) :- v_c(A, B).");
  ConjunctiveQuery expanded = Unwrap(ExpandRewriting(r, views));
  EXPECT_TRUE(AreIsomorphic(expanded, Q("R(A, 1) :- emp(A, 1).")));
}

TEST(ExpandRewritingTest, ConstantClashIsUnsatisfiable) {
  ViewSet views;
  ASSERT_TRUE(views.Add(Q("v_c(X, 1) :- emp(X, 1).")).ok());
  ConjunctiveQuery r = Q("R(A) :- v_c(A, 2).");
  Result<ConjunctiveQuery> expanded = ExpandRewriting(r, views);
  ASSERT_FALSE(expanded.ok());
  EXPECT_EQ(expanded.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ExpandRewritingTest, ArityMismatchRejected) {
  ViewSet views = EmpViews();
  EXPECT_FALSE(ExpandRewriting(Q("R(E) :- v_em(E)."), views).ok());
}

TEST(IsEquivalentRewritingTest, SetSemantics) {
  ViewSet views = EmpViews();
  ConjunctiveQuery q = Q("Q(E, M) :- emp(E, D), dept(D, M).");
  EXPECT_TRUE(Unwrap(IsEquivalentRewriting(q, Q("R(E, M) :- v_em(E, M)."), views, {},
                                           Semantics::kSet, EmpSchema())));
  EXPECT_FALSE(Unwrap(IsEquivalentRewriting(q, Q("R(E, M) :- v_ed(E, M)."), views, {},
                                            Semantics::kSet, EmpSchema())));
}

TEST(IsEquivalentRewritingTest, ViewRewriteBagDuplicate) {
  // Precise version of the above: dept set valued ⇒ duplicate dept subgoal
  // is removable (Thm 4.2) ⇒ the v_em rewriting IS bag-equivalent. With
  // dept bag valued it is NOT.
  ViewSet views = EmpViews();
  ConjunctiveQuery q = Q("Q(E, M) :- emp(E, D), dept(D, M), dept(D, M).");
  ConjunctiveQuery r = Q("R(E, M) :- v_em(E, M).");
  Schema set_schema = EmpSchema();
  EXPECT_TRUE(
      Unwrap(IsEquivalentRewriting(q, r, views, {}, Semantics::kBag, set_schema)));
  Schema bag_schema;
  bag_schema.Relation("emp", 2).Relation("dept", 2);
  EXPECT_FALSE(
      Unwrap(IsEquivalentRewriting(q, r, views, {}, Semantics::kBag, bag_schema)));
}

TEST(IsEquivalentRewritingTest, UnderDependencies) {
  // Σ: every employee's dept exists in dept (fk) with key on dept. Then
  // Q(E) :- emp(E, D) can be rewritten as R(E) :- v_em(E, M)? Only under
  // set/bag-set-style reasoning: the expansion adds the dept join, which Σ
  // makes redundant.
  ViewSet views = EmpViews();
  DependencySet sigma = Sigma({
      "emp(E, D) -> dept(D, M).",
      "dept(D, M1), dept(D, M2) -> M1 = M2.",
  });
  ConjunctiveQuery q = Q("Q(E) :- emp(E, D).");
  ConjunctiveQuery r = Q("R(E) :- v_em(E, M).");
  EXPECT_TRUE(
      Unwrap(IsEquivalentRewriting(q, r, views, sigma, Semantics::kSet, EmpSchema())));
  EXPECT_TRUE(Unwrap(
      IsEquivalentRewriting(q, r, views, sigma, Semantics::kBagSet, EmpSchema())));
  // Without the key egd, BS fails (the dept join may duplicate rows).
  DependencySet weak = Sigma({"emp(E, D) -> dept(D, M)."});
  EXPECT_FALSE(Unwrap(
      IsEquivalentRewriting(q, r, views, weak, Semantics::kBagSet, EmpSchema())));
  EXPECT_TRUE(
      Unwrap(IsEquivalentRewriting(q, r, views, weak, Semantics::kSet, EmpSchema())));
}

TEST(RewriteWithViewsTest, FindsTotalRewriting) {
  ViewSet views = EmpViews();
  ConjunctiveQuery q = Q("Q(E, M) :- emp(E, D), dept(D, M).");
  RewriteResult result =
      Unwrap(RewriteWithViews(q, views, {}, Semantics::kSet, EmpSchema()));
  ASSERT_GE(result.rewritings.size(), 1u);
  bool found = false;
  for (const ConjunctiveQuery& r : result.rewritings) {
    if (AreIsomorphic(r, Q("R(E, M) :- v_em(E, M)."))) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(RewriteWithViewsTest, NoRewritingWhenViewsLoseColumns) {
  ViewSet views;
  ASSERT_TRUE(views.Add(Q("v_e(E) :- emp(E, D).")).ok());
  ConjunctiveQuery q = Q("Q(E, D) :- emp(E, D).");
  RewriteResult result =
      Unwrap(RewriteWithViews(q, views, {}, Semantics::kSet, EmpSchema()));
  EXPECT_TRUE(result.rewritings.empty());
}

TEST(RewriteWithViewsTest, AllowBaseAtomsOption) {
  ViewSet views;
  ASSERT_TRUE(views.Add(Q("v_e(E) :- emp(E, D).")).ok());
  ConjunctiveQuery q = Q("Q(E) :- emp(E, D), dept(D, M).");
  // Views only: impossible (dept join unexpressible).
  RewriteResult total =
      Unwrap(RewriteWithViews(q, views, {}, Semantics::kSet, EmpSchema()));
  EXPECT_TRUE(total.rewritings.empty());
  // With base atoms allowed the original body itself is found.
  RewriteOptions options;
  options.allow_base_atoms = true;
  RewriteResult partial =
      Unwrap(RewriteWithViews(q, views, {}, Semantics::kSet, EmpSchema(), options));
  EXPECT_FALSE(partial.rewritings.empty());
}

TEST(RewriteWithViewsTest, BagSemanticsRejectsMultiplicityChangingView) {
  // v_join(E) projects a join: under bag semantics its multiplicities differ
  // from Q(E) :- emp(E, D) whenever dept fans out; no equivalent rewriting.
  ViewSet views;
  ASSERT_TRUE(views.Add(Q("v_join(E) :- emp(E, D), dept(D, M).")).ok());
  Schema bag_schema;
  bag_schema.Relation("emp", 2).Relation("dept", 2);
  ConjunctiveQuery q = Q("Q(E) :- emp(E, D).");
  RewriteResult result =
      Unwrap(RewriteWithViews(q, views, {}, Semantics::kBag, bag_schema));
  EXPECT_TRUE(result.rewritings.empty());
}

TEST(RewriteWithViewsTest, ExpansionOracleAgreement) {
  // Every produced rewriting, expanded, evaluates exactly like Q.
  ViewSet views = EmpViews();
  ConjunctiveQuery q = Q("Q(E, M) :- emp(E, D), dept(D, M).");
  RewriteResult result =
      Unwrap(RewriteWithViews(q, views, {}, Semantics::kBagSet, EmpSchema()));
  ASSERT_FALSE(result.rewritings.empty());
  Database db(EmpSchema());
  db.Add("emp", {1, 10}).Add("emp", {2, 10}).Add("dept", {10, 7}).Add("dept", {11, 8});
  for (const ConjunctiveQuery& r : result.rewritings) {
    ConjunctiveQuery expanded = Unwrap(ExpandRewriting(r, views));
    EXPECT_EQ(Unwrap(Evaluate(q, db, Semantics::kBagSet)),
              Unwrap(Evaluate(expanded, db, Semantics::kBagSet)));
  }
}

}  // namespace
}  // namespace sqleq
