#include "test_util.h"

#include "db/generator.h"

namespace sqleq {
namespace testing {

// The test-facing helpers are thin wrappers over the library's generator
// (src/db/generator.h) that fail the test on generator errors.

ConjunctiveQuery RandomQuery(const Schema& schema, int n_atoms, int n_vars, Rng* rng) {
  RandomQueryOptions options;
  options.atoms = n_atoms;
  options.variable_pool = n_vars;
  return Unwrap(sqleq::RandomQuery(schema, options, rng), "RandomQuery");
}

Database RandomDatabase(const Schema& schema, int n_tuples, int domain, int max_mult,
                        Rng* rng) {
  RandomDatabaseOptions options;
  options.max_tuples_per_relation = n_tuples;
  options.domain = domain;
  options.max_multiplicity = max_mult;
  return Unwrap(sqleq::RandomDatabase(schema, options, rng), "RandomDatabase");
}

bool RepairDatabase(Database* db, const DependencySet& sigma, int max_rounds) {
  Result<bool> repaired = RepairTowardSigma(db, sigma, max_rounds);
  EXPECT_TRUE(repaired.ok()) << repaired.status().ToString();
  return repaired.ok() && *repaired;
}

}  // namespace testing
}  // namespace sqleq
