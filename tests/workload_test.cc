// Workload corpus generator (src/workload): template compilation,
// seed-determinism, ground-truth bookkeeping, and the central soundness
// property — every generated variant is Σ-equivalent to its base under set
// semantics, across seeds and every schema template.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "chase/chase_cache.h"
#include "equivalence/engine.h"
#include "test_util.h"
#include "workload/generator.h"
#include "workload/schema_templates.h"

namespace sqleq {
namespace workload {
namespace {

using ::sqleq::testing::Unwrap;

TEST(SchemaTemplates, AllKnownTemplatesBuild) {
  for (const std::string& name : KnownSchemaTemplates()) {
    SchemaTemplate tmpl = Unwrap(MakeSchemaTemplate(name));
    EXPECT_EQ(tmpl.name, name);
    EXPECT_FALSE(tmpl.catalog.schema.RelationNames().empty()) << name;
    EXPECT_FALSE(tmpl.catalog.sigma.empty()) << name;
    EXPECT_FALSE(tmpl.fks.empty()) << name;
    // FK edges must reference declared relations with in-range columns.
    for (const ForeignKeyEdge& fk : tmpl.fks) {
      ASSERT_EQ(fk.src_cols.size(), fk.dst_cols.size());
      size_t src_arity = tmpl.catalog.schema.ArityOf(fk.src);
      size_t dst_arity = tmpl.catalog.schema.ArityOf(fk.dst);
      ASSERT_GT(src_arity, 0u) << name << " fk src " << fk.src;
      ASSERT_GT(dst_arity, 0u) << name << " fk dst " << fk.dst;
      for (size_t c : fk.src_cols) EXPECT_LT(c, src_arity);
      for (size_t c : fk.dst_cols) EXPECT_LT(c, dst_arity);
    }
  }
}

TEST(SchemaTemplates, UnknownTemplateIsRejected) {
  EXPECT_FALSE(MakeSchemaTemplate("no_such_template").ok());
}

TEST(SchemaTemplates, BuildIsDeterministic) {
  SchemaTemplate a = Unwrap(MakeSchemaTemplate("tpch"));
  SchemaTemplate b = Unwrap(MakeSchemaTemplate("tpch"));
  ASSERT_EQ(a.catalog.sigma.size(), b.catalog.sigma.size());
  for (size_t i = 0; i < a.catalog.sigma.size(); ++i) {
    EXPECT_EQ(a.catalog.sigma[i].ToString(), b.catalog.sigma[i].ToString());
  }
}

TEST(WorkloadGenerator, RejectsBadOptions) {
  WorkloadOptions options;
  options.num_queries = 0;
  EXPECT_FALSE(GenerateWorkload(options).ok());
  options = WorkloadOptions();
  options.overlap_rate = 1.5;
  EXPECT_FALSE(GenerateWorkload(options).ok());
  options = WorkloadOptions();
  options.min_join_depth = 3;
  options.max_join_depth = 2;
  EXPECT_FALSE(GenerateWorkload(options).ok());
  options = WorkloadOptions();
  options.schema_template = "bogus";
  EXPECT_FALSE(GenerateWorkload(options).ok());
}

TEST(WorkloadGenerator, SeedDeterminism) {
  WorkloadOptions options;
  options.num_queries = 30;
  options.seed = 42;
  Workload a = Unwrap(GenerateWorkload(options));
  Workload b = Unwrap(GenerateWorkload(options));
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].query.ToString(), b.queries[i].query.ToString());
    EXPECT_EQ(a.queries[i].class_id, b.queries[i].class_id);
    EXPECT_EQ(a.queries[i].transform, b.queries[i].transform);
  }
  options.seed = 43;
  Workload c = Unwrap(GenerateWorkload(options));
  bool any_differ = false;
  for (size_t i = 0; i < a.queries.size() && i < c.queries.size(); ++i) {
    if (a.queries[i].query.ToString() != c.queries[i].query.ToString()) {
      any_differ = true;
    }
  }
  EXPECT_TRUE(any_differ) << "different seeds produced an identical corpus";
}

TEST(WorkloadGenerator, GroundTruthBookkeeping) {
  WorkloadOptions options;
  options.num_queries = 50;
  options.overlap_rate = 0.5;
  options.seed = 7;
  Workload w = Unwrap(GenerateWorkload(options));
  ASSERT_EQ(w.queries.size(), 50u);
  EXPECT_FALSE(w.queries[0].is_variant) << "first query must be a base";
  size_t variants = 0;
  for (const WorkloadQuery& wq : w.queries) {
    if (wq.is_variant) {
      ++variants;
      EXPECT_LT(wq.class_id, w.queries.size());
      EXPECT_FALSE(w.queries[wq.class_id].is_variant)
          << "class_id must point at a base";
      EXPECT_NE(wq.transform, "base");
    } else {
      EXPECT_EQ(wq.class_id, static_cast<size_t>(&wq - w.queries.data()));
      EXPECT_EQ(wq.transform, "base");
    }
  }
  EXPECT_DOUBLE_EQ(w.GroundTruthHitRate(),
                   static_cast<double>(variants) / w.queries.size());
  EXPECT_GT(variants, 10u) << "overlap 0.5 over 50 queries";
  EXPECT_LT(variants, 40u);
}

TEST(WorkloadGenerator, BasesHaveDistinctCanonicalKeys) {
  WorkloadOptions options;
  options.num_queries = 40;
  options.seed = 11;
  Workload w = Unwrap(GenerateWorkload(options));
  std::set<std::string> keys;
  for (const WorkloadQuery& wq : w.queries) {
    if (wq.is_variant) continue;
    EXPECT_TRUE(keys.insert(CanonicalQueryKey(wq.query)).second)
        << "duplicate base canonical key for " << wq.query.ToString();
  }
  EXPECT_EQ(keys.size(), w.num_classes);
}

/// The load-bearing property: every variant the generator labels with a
/// class is engine-confirmed Σ-equivalent to that class's base under set
/// semantics — across seeds and all three schema templates.
TEST(WorkloadGenerator, VariantsAreSigmaEquivalentToTheirBase) {
  for (const std::string& tmpl : KnownSchemaTemplates()) {
    for (uint64_t seed : {1u, 2u, 3u}) {
      WorkloadOptions options;
      options.schema_template = tmpl;
      options.seed = seed;
      options.num_queries = 20;
      options.overlap_rate = 0.6;
      Workload w = Unwrap(GenerateWorkload(options));
      EquivalenceEngine engine;
      EquivRequest request(Semantics::kSet, w.schema.catalog.sigma,
                           w.schema.catalog.schema);
      for (const WorkloadQuery& wq : w.queries) {
        if (!wq.is_variant) continue;
        EquivVerdict v = Unwrap(engine.Equivalent(
            wq.query, w.queries[wq.class_id].query, request));
        EXPECT_EQ(v.verdict, Verdict::kEquivalent)
            << tmpl << " seed " << seed << " transform '" << wq.transform
            << "': " << wq.query.ToString() << "  vs  "
            << w.queries[wq.class_id].query.ToString();
      }
    }
  }
}

}  // namespace
}  // namespace workload
}  // namespace sqleq
