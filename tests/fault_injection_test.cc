// Deterministic fault-injection suite (docs/robustness.md): every named
// site — chase.step, backchase.candidate, memo.insert, pool.task — is driven
// through real engine calls with a fixed seed, injected stops surface as
// checkpointed partial results (never errors), schedules replay identically
// run over run, and cooperative cancellation stops the same loops. Labeled
// `fault` and `tsan` (delay faults stress the sweep's worker pool).
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "chase/chase_cache.h"
#include "chase/set_chase.h"
#include "reformulation/candb.h"
#include "reformulation/views.h"
#include "test_util.h"
#include "util/fault.h"

namespace sqleq {
namespace {

using testing::Example41Schema;
using testing::Example41Sigma;
using testing::Q;
using testing::Sigma;
using testing::Unwrap;

/// Canonical serialization of a CandBResult (see parallel_candb_test.cc):
/// insensitive to the process-global fresh-variable counter, exact on
/// reformulation order and statistics.
std::string Canon(const CandBResult& r) {
  std::string out = "U=" + CanonicalQueryKey(r.universal_plan) + "\n";
  for (const ConjunctiveQuery& q : r.reformulations) {
    out += "R=" + CanonicalQueryKey(q) + "\n";
  }
  out += "examined=" + std::to_string(r.candidates_examined);
  out += " hits=" + std::to_string(r.chase_cache_hits);
  out += " misses=" + std::to_string(r.chase_cache_misses);
  return out;
}

ConjunctiveQuery Example41Q1() {
  return Q("Q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U).");
}

/// The single-atom projection of Example 4.1: σ1–σ4 all fire on it, so its
/// chase takes five steps and the chase.step site probes on every one of
/// them. (Example41Q1's own body already satisfies Σ and chases in zero
/// steps — its chase.step site probes exactly once.)
ConjunctiveQuery StepHungryP() { return Q("P(X) :- p(X, Y)."); }

// ---- FaultInjector unit behavior ----

TEST(FaultInjector, UnarmedSitesCountButNeverFire) {
  FaultInjector faults(7);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(faults.Hit(fault_sites::kChaseStep).ok());
  }
  EXPECT_EQ(faults.HitCount(fault_sites::kChaseStep), 5u);
  EXPECT_EQ(faults.FiredCount(fault_sites::kChaseStep), 0u);
  EXPECT_EQ(faults.HitCount(fault_sites::kPoolTask), 0u);
}

TEST(FaultInjector, StartAndPeriodSelectHits) {
  FaultInjector faults(7);
  FaultSpec spec;
  spec.kind = FaultKind::kExhausted;
  spec.start = 2;
  spec.period = 3;  // hits 2, 5, 8, ...
  faults.Arm(fault_sites::kChaseStep, spec);
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) {
    fired.push_back(!faults.Hit(fault_sites::kChaseStep).ok());
  }
  std::vector<bool> want = {false, true, false, false, true,
                            false, false, true, false};
  EXPECT_EQ(fired, want);
  EXPECT_EQ(faults.FiredCount(fault_sites::kChaseStep), 3u);
}

TEST(FaultInjector, PeriodZeroFiresExactlyOnce) {
  FaultInjector faults(7);
  FaultSpec spec;
  spec.start = 3;
  faults.Arm(fault_sites::kMemoInsert, spec);
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (!faults.Hit(fault_sites::kMemoInsert).ok()) ++fired;
  }
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(faults.FiredCount(fault_sites::kMemoInsert), 1u);
}

TEST(FaultInjector, ExhaustedFaultNamesSiteAndHit) {
  FaultInjector faults(7);
  faults.Arm(fault_sites::kBackchaseCandidate, FaultSpec{});
  Status s = faults.Hit(fault_sites::kBackchaseCandidate);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("injected"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find(fault_sites::kBackchaseCandidate),
            std::string::npos)
      << s.ToString();
}

TEST(FaultInjector, BadAllocSurfacesAsInternal) {
  FaultInjector faults(7);
  FaultSpec spec;
  spec.kind = FaultKind::kBadAlloc;
  faults.Arm(fault_sites::kPoolTask, spec);
  Status s = faults.Hit(fault_sites::kPoolTask);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find(fault_sites::kPoolTask), std::string::npos)
      << s.ToString();
}

TEST(FaultInjector, DelayFaultReturnsOk) {
  FaultInjector faults(7);
  FaultSpec spec;
  spec.kind = FaultKind::kDelay;
  spec.delay = std::chrono::microseconds(100);
  spec.period = 1;
  faults.Arm(fault_sites::kChaseStep, spec);
  EXPECT_TRUE(faults.Hit(fault_sites::kChaseStep).ok());
  EXPECT_EQ(faults.FiredCount(fault_sites::kChaseStep), 1u);
}

TEST(FaultInjector, ProbabilisticFiringIsSeedDeterministic) {
  FaultSpec spec;
  spec.start = 1;
  spec.period = 1;
  spec.probability = 0.5;
  FaultInjector a(42), b(42);
  a.Arm(fault_sites::kPoolTask, spec);
  b.Arm(fault_sites::kPoolTask, spec);
  std::vector<bool> fired_a, fired_b;
  for (int i = 0; i < 200; ++i) {
    fired_a.push_back(!a.Hit(fault_sites::kPoolTask).ok());
    fired_b.push_back(!b.Hit(fault_sites::kPoolTask).ok());
  }
  EXPECT_EQ(fired_a, fired_b);
  // The hash should neither always fire nor never fire over 200 eligible
  // hits at p = 0.5.
  EXPECT_GT(a.FiredCount(fault_sites::kPoolTask), 0u);
  EXPECT_LT(a.FiredCount(fault_sites::kPoolTask), 200u);
}

TEST(FaultInjector, DisarmStopsInjectionResetCountersRestartsSchedule) {
  FaultInjector faults(7);
  faults.Arm(fault_sites::kChaseStep, FaultSpec{});
  EXPECT_FALSE(faults.Hit(fault_sites::kChaseStep).ok());
  faults.Disarm(fault_sites::kChaseStep);
  EXPECT_TRUE(faults.Hit(fault_sites::kChaseStep).ok());
  EXPECT_EQ(faults.HitCount(fault_sites::kChaseStep), 2u);

  // Re-arming preserves counters: start=1 already passed, so no new firing.
  faults.Arm(fault_sites::kChaseStep, FaultSpec{});
  EXPECT_TRUE(faults.Hit(fault_sites::kChaseStep).ok());
  // ResetCounters restarts the schedule: hit 1 fires again.
  faults.ResetCounters();
  EXPECT_FALSE(faults.Hit(fault_sites::kChaseStep).ok());
}

// ---- CancellationToken / ProbeSite ----

TEST(CancellationToken, ChecksOkUntilCancelled) {
  CancellationToken cancel;
  EXPECT_FALSE(cancel.cancelled());
  EXPECT_TRUE(cancel.Check(fault_sites::kChaseStep).ok());
  cancel.Cancel();
  EXPECT_TRUE(cancel.cancelled());
  Status s = cancel.Check(fault_sites::kChaseStep);
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_NE(s.message().find(fault_sites::kChaseStep), std::string::npos);
  cancel.Reset();
  EXPECT_TRUE(cancel.Check(fault_sites::kChaseStep).ok());
}

TEST(ProbeSite, NullPointersAreInert) {
  EXPECT_TRUE(ProbeSite(nullptr, nullptr, fault_sites::kPoolTask).ok());
}

TEST(ProbeSite, CancellationBeatsInjectedFault) {
  FaultInjector faults(7);
  faults.Arm(fault_sites::kChaseStep, FaultSpec{});
  CancellationToken cancel;
  cancel.Cancel();
  Status s = ProbeSite(&faults, &cancel, fault_sites::kChaseStep);
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
}

// ---- Named sites driven through real engine calls ----

TEST(FaultSites, ChaseStepFiresInsideSetChase) {
  FaultInjector faults(7);
  FaultSpec spec;
  spec.start = 2;  // let one step fire, trip on the second
  faults.Arm(fault_sites::kChaseStep, spec);
  ChaseRuntime runtime;
  runtime.faults = &faults;
  std::optional<ChaseCheckpoint> checkpoint;
  runtime.checkpoint_out = &checkpoint;
  Result<ChaseOutcome> chased =
      SetChase(StepHungryP(), Example41Sigma(), {}, runtime);
  ASSERT_FALSE(chased.ok());
  EXPECT_EQ(chased.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(chased.status().message().find("injected"), std::string::npos);
  EXPECT_GE(faults.FiredCount(fault_sites::kChaseStep), 1u);
  ASSERT_TRUE(checkpoint.has_value());
  EXPECT_EQ(checkpoint->phase, ChaseCheckpoint::kSetChasePhase);
}

TEST(FaultSites, ChaseStepFaultYieldsChasePhaseCheckpointInCandB) {
  CandBOptions options;
  FaultInjector faults(7);
  FaultSpec spec;
  spec.start = 2;
  faults.Arm(fault_sites::kChaseStep, spec);
  options.context.faults = &faults;
  CandBResult partial = Unwrap(ChaseAndBackchase(
      StepHungryP(), Example41Sigma(), Semantics::kSet, Example41Schema(),
      options));
  EXPECT_FALSE(partial.complete);
  ASSERT_TRUE(partial.exhaustion.has_value());
  EXPECT_EQ(partial.exhaustion->limit, "fault");
  ASSERT_TRUE(partial.checkpoint.has_value());
  EXPECT_EQ(partial.checkpoint->phase, CandBCheckpoint::kChasePhase);
  EXPECT_GE(faults.FiredCount(fault_sites::kChaseStep), 1u);
}

TEST(FaultSites, BackchaseCandidateFaultYieldsBackchaseCheckpoint) {
  CandBOptions options;
  FaultInjector faults(7);
  FaultSpec spec;
  spec.start = 3;
  faults.Arm(fault_sites::kBackchaseCandidate, spec);
  options.context.faults = &faults;
  CandBResult partial = Unwrap(ChaseAndBackchase(
      Example41Q1(), Example41Sigma(), Semantics::kSet, Example41Schema(),
      options));
  EXPECT_FALSE(partial.complete);
  ASSERT_TRUE(partial.exhaustion.has_value());
  EXPECT_EQ(partial.exhaustion->limit, "fault");
  ASSERT_TRUE(partial.checkpoint.has_value());
  EXPECT_EQ(partial.checkpoint->phase, CandBCheckpoint::kBackchasePhase);
  EXPECT_GE(faults.FiredCount(fault_sites::kBackchaseCandidate), 1u);
}

TEST(FaultSites, MemoInsertFaultStopsTheSweep) {
  CandBOptions options;
  FaultInjector faults(7);
  FaultSpec spec;
  spec.start = 2;  // survive the universal plan's insert, trip a candidate's
  faults.Arm(fault_sites::kMemoInsert, spec);
  options.context.faults = &faults;
  CandBResult partial = Unwrap(ChaseAndBackchase(
      Example41Q1(), Example41Sigma(), Semantics::kSet, Example41Schema(),
      options));
  EXPECT_FALSE(partial.complete);
  ASSERT_TRUE(partial.exhaustion.has_value());
  EXPECT_EQ(partial.exhaustion->limit, "fault");
  EXPECT_GE(faults.FiredCount(fault_sites::kMemoInsert), 1u);
}

TEST(FaultSites, PoolTaskFaultStopsTheSweep) {
  CandBOptions options;
  FaultInjector faults(7);
  FaultSpec spec;
  spec.start = 4;
  faults.Arm(fault_sites::kPoolTask, spec);
  options.context.faults = &faults;
  CandBResult partial = Unwrap(ChaseAndBackchase(
      Example41Q1(), Example41Sigma(), Semantics::kSet, Example41Schema(),
      options));
  EXPECT_FALSE(partial.complete);
  ASSERT_TRUE(partial.exhaustion.has_value());
  EXPECT_EQ(partial.exhaustion->limit, "fault");
  ASSERT_TRUE(partial.checkpoint.has_value());
  EXPECT_EQ(partial.checkpoint->phase, CandBCheckpoint::kBackchasePhase);
  EXPECT_GE(faults.FiredCount(fault_sites::kPoolTask), 1u);
}

TEST(FaultSites, MemoInsertSiteFiresInChaseMemo) {
  FaultInjector faults(7);
  faults.Arm(fault_sites::kMemoInsert, FaultSpec{});
  ChaseMemo memo(Example41Sigma(), Semantics::kSet, Example41Schema(), {});
  ChaseRuntime runtime;
  runtime.faults = &faults;
  Result<ChaseOutcome> chased = memo.Chase(Example41Q1(), runtime);
  ASSERT_FALSE(chased.ok());
  EXPECT_EQ(chased.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(faults.FiredCount(fault_sites::kMemoInsert), 1u);
  // Nothing was cached: a clean retry re-chases and succeeds.
  faults.Disarm(fault_sites::kMemoInsert);
  EXPECT_TRUE(memo.Chase(Example41Q1(), runtime).ok());
}

// ---- Determinism of faulted schedules ----

TEST(FaultDeterminism, IdenticalSeedsReplayIdenticalPartialResults) {
  auto run = [] {
    CandBOptions options;
    FaultInjector faults(123);
    FaultSpec spec;
    spec.start = 5;
    faults.Arm(fault_sites::kBackchaseCandidate, spec);
    options.context.faults = &faults;
    CandBResult partial = Unwrap(ChaseAndBackchase(
        Example41Q1(), Example41Sigma(), Semantics::kSet, Example41Schema(),
        options));
    EXPECT_FALSE(partial.complete);
    return Canon(partial) + "\n" + partial.exhaustion->ToString();
  };
  std::string first = run();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(run(), first) << "replay " << i;
  }
}

TEST(FaultDeterminism, DelayFaultsDoNotChangeParallelResults) {
  // Delays reshuffle the pool's completion order without changing any
  // verdict; the merged result must stay byte-identical to the clean serial
  // run at every thread count.
  CandBOptions serial;
  serial.context.budget.threads = 1;
  std::string reference = Canon(Unwrap(ChaseAndBackchase(
      Example41Q1(), Example41Sigma(), Semantics::kSet, Example41Schema(),
      serial)));
  for (size_t threads : {2u, 4u, 8u}) {
    CandBOptions options;
    options.context.budget.threads = threads;
    FaultInjector faults(99);
    FaultSpec spec;
    spec.kind = FaultKind::kDelay;
    spec.delay = std::chrono::microseconds(200);
    spec.start = 1;
    spec.period = 2;
    faults.Arm(fault_sites::kPoolTask, spec);
    options.context.faults = &faults;
    std::string got = Canon(Unwrap(ChaseAndBackchase(
        Example41Q1(), Example41Sigma(), Semantics::kSet, Example41Schema(),
        options)));
    EXPECT_EQ(got, reference) << threads << " threads";
    EXPECT_GE(faults.FiredCount(fault_sites::kPoolTask), 1u);
  }
}

TEST(FaultDeterminism, ResumeAfterInjectedFaultMatchesCleanRun) {
  CandBOptions clean;
  std::string reference = Canon(Unwrap(ChaseAndBackchase(
      Example41Q1(), Example41Sigma(), Semantics::kSet, Example41Schema(),
      clean)));

  CandBOptions faulted;
  FaultInjector faults(7);
  FaultSpec spec;
  spec.start = 6;
  faults.Arm(fault_sites::kBackchaseCandidate, spec);
  faulted.context.faults = &faults;
  CandBResult partial = Unwrap(ChaseAndBackchase(
      Example41Q1(), Example41Sigma(), Semantics::kSet, Example41Schema(),
      faulted));
  ASSERT_FALSE(partial.complete);
  ASSERT_TRUE(partial.checkpoint.has_value());

  CandBOptions resumed;
  resumed.resume = &*partial.checkpoint;
  CandBResult finished = Unwrap(ChaseAndBackchase(
      Example41Q1(), Example41Sigma(), Semantics::kSet, Example41Schema(),
      resumed));
  EXPECT_TRUE(finished.complete);
  EXPECT_EQ(Canon(finished), reference);
}

// ---- Cancellation through the engine stack ----

TEST(Cancellation, PreCancelledTokenStopsCandBImmediately) {
  CandBOptions options;
  CancellationToken cancel;
  cancel.Cancel();
  options.context.cancel = &cancel;
  CandBResult partial = Unwrap(ChaseAndBackchase(
      Example41Q1(), Example41Sigma(), Semantics::kSet, Example41Schema(),
      options));
  EXPECT_FALSE(partial.complete);
  ASSERT_TRUE(partial.exhaustion.has_value());
  EXPECT_EQ(partial.exhaustion->limit, "cancelled");
  EXPECT_TRUE(partial.reformulations.empty());
  ASSERT_TRUE(partial.checkpoint.has_value());
}

TEST(Cancellation, ResumeAfterCancellationMatchesCleanRun) {
  CandBOptions clean;
  std::string reference = Canon(Unwrap(ChaseAndBackchase(
      Example41Q1(), Example41Sigma(), Semantics::kSet, Example41Schema(),
      clean)));

  CandBOptions cancelled_options;
  CancellationToken cancel;
  cancel.Cancel();
  cancelled_options.context.cancel = &cancel;
  CandBResult partial = Unwrap(ChaseAndBackchase(
      Example41Q1(), Example41Sigma(), Semantics::kSet, Example41Schema(),
      cancelled_options));
  ASSERT_FALSE(partial.complete);
  ASSERT_TRUE(partial.checkpoint.has_value());

  cancel.Reset();
  CandBOptions resumed;
  resumed.context.cancel = &cancel;
  resumed.resume = &*partial.checkpoint;
  CandBResult finished = Unwrap(ChaseAndBackchase(
      Example41Q1(), Example41Sigma(), Semantics::kSet, Example41Schema(),
      resumed));
  EXPECT_TRUE(finished.complete);
  EXPECT_EQ(Canon(finished), reference);
}

TEST(Cancellation, CancelledRewriteWithViewsReturnsPartial) {
  ViewSet views;
  ASSERT_TRUE(views.Add(Q("v1(X, Y) :- p(X, Y).")).ok());
  ASSERT_TRUE(views.Add(Q("v2(X) :- r(X).")).ok());
  RewriteOptions options;
  CancellationToken cancel;
  cancel.Cancel();
  options.context.cancel = &cancel;
  RewriteResult partial = Unwrap(RewriteWithViews(
      Q("Q(X) :- p(X, Y), r(X)."), views, Example41Sigma(), Semantics::kSet,
      Example41Schema(), options));
  EXPECT_FALSE(partial.complete);
  ASSERT_TRUE(partial.exhaustion.has_value());
  EXPECT_EQ(partial.exhaustion->limit, "cancelled");
}

}  // namespace
}  // namespace sqleq
