// Unit tests for dependency builders (keys, inclusion deps, foreign keys).
#include "constraints/builders.h"

#include <gtest/gtest.h>

#include "constraints/keys.h"
#include "db/satisfaction.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::Unwrap;

TEST(MakeKeyEgdsTest, OneFdPerNonKeyAttribute) {
  std::vector<Dependency> egds = Unwrap(MakeKeyEgds("r", 3, {0}, "key_r"));
  ASSERT_EQ(egds.size(), 2u);
  for (const Dependency& d : egds) {
    ASSERT_TRUE(d.IsEgd());
    std::optional<Fd> fd = ExtractFd(d.egd());
    ASSERT_TRUE(fd.has_value());
    EXPECT_EQ(fd->relation, "r");
    EXPECT_EQ(fd->lhs, (std::set<size_t>{0}));
  }
  EXPECT_EQ(egds[0].label(), "key_r_1");
  EXPECT_EQ(egds[1].label(), "key_r_2");
}

TEST(MakeKeyEgdsTest, CompositeKey) {
  std::vector<Dependency> egds = Unwrap(MakeKeyEgds("t", 3, {0, 1}));
  ASSERT_EQ(egds.size(), 1u);
  std::optional<Fd> fd = ExtractFd(egds[0].egd());
  ASSERT_TRUE(fd.has_value());
  EXPECT_EQ(fd->lhs, (std::set<size_t>{0, 1}));
  EXPECT_EQ(fd->rhs, 2u);
}

TEST(MakeKeyEgdsTest, KeySemanticsOnInstances) {
  std::vector<Dependency> egds = Unwrap(MakeKeyEgds("r", 2, {0}));
  Schema schema;
  schema.Relation("r", 2);
  Database good(schema);
  good.Add("r", {1, 5}).Add("r", {2, 6});
  EXPECT_TRUE(Unwrap(Satisfies(good, egds[0])));
  Database bad(schema);
  bad.Add("r", {1, 5}).Add("r", {1, 6});
  EXPECT_FALSE(Unwrap(Satisfies(bad, egds[0])));
}

TEST(MakeKeyEgdsTest, Validation) {
  EXPECT_FALSE(MakeKeyEgds("r", 3, {}).ok());
  EXPECT_FALSE(MakeKeyEgds("r", 3, {7}).ok());
  // Key covering all attributes yields no egd — reported as error here.
  EXPECT_FALSE(MakeKeyEgds("r", 2, {0, 1}).ok());
}

TEST(MakeInclusionDependencyTest, ProjectionInclusion) {
  Dependency dep = Unwrap(MakeInclusionDependency("emp", 3, {1}, "dept", 2, {0}, "fk"));
  ASSERT_TRUE(dep.IsTgd());
  const Tgd& tgd = dep.tgd();
  ASSERT_EQ(tgd.body().size(), 1u);
  ASSERT_EQ(tgd.head().size(), 1u);
  EXPECT_EQ(tgd.body()[0].predicate(), "emp");
  EXPECT_EQ(tgd.head()[0].predicate(), "dept");
  // Position 1 of emp flows into position 0 of dept.
  EXPECT_EQ(tgd.body()[0].args()[1], tgd.head()[0].args()[0]);
  // The other dept attribute is existential.
  EXPECT_EQ(tgd.ExistentialVariables().size(), 1u);
}

TEST(MakeInclusionDependencyTest, SemanticsOnInstances) {
  Dependency dep = Unwrap(MakeInclusionDependency("emp", 2, {1}, "dept", 1, {0}));
  Schema schema;
  schema.Relation("emp", 2).Relation("dept", 1);
  Database good(schema);
  good.Add("emp", {1, 10}).Add("dept", {10});
  EXPECT_TRUE(Unwrap(Satisfies(good, dep)));
  Database bad(schema);
  bad.Add("emp", {1, 10});
  EXPECT_FALSE(Unwrap(Satisfies(bad, dep)));
}

TEST(MakeInclusionDependencyTest, Validation) {
  EXPECT_FALSE(MakeInclusionDependency("a", 2, {}, "b", 2, {}).ok());
  EXPECT_FALSE(MakeInclusionDependency("a", 2, {0, 1}, "b", 2, {0}).ok());
  EXPECT_FALSE(MakeInclusionDependency("a", 2, {5}, "b", 2, {0}).ok());
  EXPECT_FALSE(MakeInclusionDependency("a", 2, {0}, "b", 2, {5}).ok());
}

TEST(MakeForeignKeyTest, IsAnInclusionDependency) {
  Dependency dep = Unwrap(MakeForeignKey("emp", 2, {1}, "dept", 2, {0}, "fk"));
  EXPECT_TRUE(dep.IsTgd());
  EXPECT_EQ(dep.label(), "fk");
}

TEST(KeyEgdsFromSchemaTest, GeneratesPerDeclaredKey) {
  Schema schema;
  schema.Relation("s", 2).Relation("t", 3);
  ASSERT_TRUE(schema.DeclareKey("s", {0}).ok());
  ASSERT_TRUE(schema.DeclareKey("t", {0, 1}).ok());
  DependencySet sigma = Unwrap(KeyEgdsFromSchema(schema));
  ASSERT_EQ(sigma.size(), 2u);  // one fd for s, one for t
  std::vector<Fd> fds = ExtractFds(sigma);
  EXPECT_TRUE(IsSuperkey("s", 2, {0}, fds));
  EXPECT_TRUE(IsSuperkey("t", 3, {0, 1}, fds));
}

TEST(KeyEgdsFromSchemaTest, AllAttributeKeySkipped) {
  Schema schema;
  schema.Relation("u", 2);
  ASSERT_TRUE(schema.DeclareKey("u", {0, 1}).ok());
  DependencySet sigma = Unwrap(KeyEgdsFromSchema(schema));
  EXPECT_TRUE(sigma.empty());
}

}  // namespace
}  // namespace sqleq
