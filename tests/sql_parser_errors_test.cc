// Error-path hardening for the SQL front end: malformed inputs must come
// back as Status values — never crash, hang, or return a half-built AST.
// Runs under the asan/ubsan presets (see tests/CMakeLists.txt labels).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sql/sql_parser.h"
#include "sql/translate.h"
#include "test_util.h"

namespace sqleq {
namespace {

sql::Catalog TestCatalog() {
  sql::Catalog catalog;
  catalog.schema.AddRelation("r", 2);
  catalog.schema.AddRelation("s", 1);
  return catalog;
}

TEST(SqlParserErrors, MalformedSelects) {
  const std::vector<std::string> inputs = {
      "",
      ";",
      "SELECT",
      "SELECT FROM r",
      "SELECT * FROM",
      "SELECT a FROM r WHERE",
      "SELECT a, FROM r",
      "SELECT a FROM r t0,",
      "SELECT a FROM r WHERE a =",
      "SELECT a FROM r WHERE a = b AND",
      "SELECT a FROM r GROUP",
      "SELECT a FROM r GROUP BY",
      "SELECT (a FROM r",
      "SELECT a FROM r WHERE (a = b",
      "SELECT 'unterminated FROM r",
  };
  for (const std::string& text : inputs) {
    EXPECT_FALSE(sql::ParseSelect(text).ok()) << "accepted: " << text;
  }
}

TEST(SqlParserErrors, MalformedCreateTables) {
  const std::vector<std::string> inputs = {
      "CREATE",
      "CREATE TABLE",
      "CREATE TABLE t",
      "CREATE TABLE t (",
      "CREATE TABLE t ()",
      "CREATE TABLE t (a)",             // missing type
      "CREATE TABLE t (a INT",          // unclosed
      "CREATE TABLE t (a INT,)",
      "CREATE TABLE t (a INT, PRIMARY)",
      "CREATE TABLE t (a INT, PRIMARY KEY)",
      "CREATE TABLE t (a INT, FOREIGN KEY (a))",   // missing REFERENCES
      "CREATE TABLE (a INT)",
  };
  for (const std::string& text : inputs) {
    EXPECT_FALSE(sql::ParseCreateTable(text).ok()) << "accepted: " << text;
  }
  // And the dispatcher rejects non-CREATE input outright.
  EXPECT_FALSE(sql::ParseCreateTable("SELECT a FROM r").ok());
}

TEST(SqlParserErrors, ApplyCreateTableRejectsSemanticErrors) {
  // These parse (column-level validation is deferred) but must fail apply.
  const std::vector<std::string> inputs = {
      "CREATE TABLE t (a INT, a INT)",            // duplicate column
      "CREATE TABLE t (a INT, PRIMARY KEY (b))",  // unknown key column
      "CREATE TABLE t (a INT, FOREIGN KEY (a) REFERENCES nope (x))",
  };
  for (const std::string& text : inputs) {
    sql::Catalog catalog = TestCatalog();
    sql::CreateTableStatement stmt =
        testing::Unwrap(sql::ParseCreateTable(text), text.c_str());
    EXPECT_FALSE(sql::ApplyCreateTable(stmt, &catalog).ok()) << "applied: " << text;
  }
  // Re-creating an existing relation is also an apply-time error.
  sql::Catalog catalog = TestCatalog();
  sql::CreateTableStatement stmt =
      testing::Unwrap(sql::ParseCreateTable("CREATE TABLE r (a INT)"));
  EXPECT_FALSE(sql::ApplyCreateTable(stmt, &catalog).ok());
}

TEST(SqlParserErrors, MalformedInserts) {
  const std::vector<std::string> inputs = {
      "INSERT",
      "INSERT INTO",
      "INSERT INTO t",
      "INSERT INTO t VALUES",
      "INSERT INTO t VALUES (",
      "INSERT INTO t VALUES ()",
      "INSERT INTO t VALUES (1,)",
      "INSERT INTO t VALUES (1) (2",
      "INSERT t VALUES (1)",
      "INSERT INTO t VALUES (1), ",
  };
  for (const std::string& text : inputs) {
    EXPECT_FALSE(sql::ParseInsert(text).ok()) << "accepted: " << text;
  }
}

TEST(SqlParserErrors, MalformedStatementsAndScripts) {
  EXPECT_FALSE(sql::ParseStatement("DROP TABLE r").ok());
  EXPECT_FALSE(sql::ParseStatement("UPDATE r SET a = 1").ok());
  EXPECT_FALSE(sql::ParseStatement("garbage ; more garbage").ok());
  EXPECT_FALSE(sql::ParseScript("CREATE TABLE t (a INT); SELECT FROM").ok());
  EXPECT_FALSE(sql::ParseScript("SELECT a FROM r; ; DROP").ok());
}

TEST(SqlParserErrors, TranslateRejectsSemanticNonsense) {
  sql::Catalog catalog = TestCatalog();
  // Unknown relation / column; ambiguous column; bad alias references.
  EXPECT_FALSE(sql::TranslateSql("SELECT a FROM nope", catalog, "q").ok());
  EXPECT_FALSE(sql::TranslateSql("SELECT zz FROM r", catalog, "q").ok());
  EXPECT_FALSE(
      sql::TranslateSql("SELECT t9.a FROM r t0", catalog, "q").ok());
}

TEST(SqlParserErrors, DeepNestingDoesNotOverflow) {
  // A pathological WHERE chain; the parser must fail (or succeed) finitely.
  std::string text = "SELECT a FROM r t0 WHERE ";
  for (int i = 0; i < 2000; ++i) text += "(";
  text += "t0.a = 1";
  Result<sql::SelectStatement> result = sql::ParseSelect(text);
  EXPECT_FALSE(result.ok());  // unbalanced parens
}

}  // namespace
}  // namespace sqleq
