// Tests for the ChaseMemo byte bound: LRU eviction order, the
// never-evict-most-recent guarantee, immediate shrink on set_byte_limit,
// and the memo.evictions metric. This is what keeps the sqleqd
// process-lifetime memo finite. The Tier2* tests cover the interaction with
// the on-disk MemoStore: eviction spill, disk re-promotion on a memory
// miss, and the single-count guarantees for evictions and bytes.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "chase/chase_cache.h"
#include "chase/memo_store.h"
#include "test_util.h"
#include "util/telemetry.h"

namespace sqleq {
namespace {

using ::sqleq::testing::Q;
using ::sqleq::testing::Unwrap;

/// Distinct (non-isomorphic) chain queries over r/2 of growing length, so
/// each occupies its own memo entry.
ConjunctiveQuery Chain(int n) {
  std::string text = "Q(X0) :- ";
  for (int i = 0; i < n; ++i) {
    if (i > 0) text += ", ";
    text += "r(X" + std::to_string(i) + ", X" + std::to_string(i + 1) + ")";
  }
  text += ".";
  return Q(text);
}

/// Fills `memo` with chains 1..n and returns the canonical keys in
/// insertion order.
std::vector<std::string> Fill(ChaseMemo* memo, int n) {
  std::vector<std::string> keys;
  for (int i = 1; i <= n; ++i) {
    std::string key;
    Unwrap(memo->ChaseCanonical(Chain(i), &key));
    keys.push_back(key);
  }
  return keys;
}

TEST(ChaseMemoLru, UnboundedByDefault) {
  ChaseMemo memo({}, Semantics::kSet, Schema(), {});
  Fill(&memo, 8);
  ChaseMemo::Stats stats = memo.stats();
  EXPECT_EQ(stats.entries, 8u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.byte_limit, 0u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(ChaseMemoLru, ByteLimitHoldsAndEvictionsAreCounted) {
  // Learn a realistic per-entry size first, then bound to ~3 entries.
  ChaseMemo probe({}, Semantics::kSet, Schema(), {});
  Fill(&probe, 8);
  size_t limit = probe.stats().bytes * 3 / 8;

  ChaseMemo memo({}, Semantics::kSet, Schema(), {}, limit);
  Fill(&memo, 8);
  ChaseMemo::Stats stats = memo.stats();
  EXPECT_LE(stats.bytes, limit);
  EXPECT_LT(stats.entries, 8u);
  EXPECT_EQ(stats.evictions, 8u - stats.entries);
  EXPECT_EQ(stats.byte_limit, limit);
}

TEST(ChaseMemoLru, EvictsLeastRecentlyUsedFirst) {
  ChaseMemo probe({}, Semantics::kSet, Schema(), {});
  Fill(&probe, 4);
  // One byte short of all four chains: inserting the fourth overflows and
  // must evict exactly the LRU entry.
  ChaseMemo memo({}, Semantics::kSet, Schema(), {}, probe.stats().bytes - 1);
  Fill(&memo, 3);

  // Touch chains 1 and 2 so chain 3 becomes the LRU entry...
  Unwrap(memo.ChaseCanonical(Chain(1)));
  Unwrap(memo.ChaseCanonical(Chain(2)));
  EXPECT_EQ(memo.stats().hits, 2u);
  // ...then overflow with chain 4: 3 must go, 1 and 2 must stay.
  Unwrap(memo.ChaseCanonical(Chain(4)));
  size_t hits_before = memo.stats().hits;
  Unwrap(memo.ChaseCanonical(Chain(1)));
  Unwrap(memo.ChaseCanonical(Chain(2)));
  EXPECT_EQ(memo.stats().hits, hits_before + 2);
  size_t misses_before = memo.stats().misses;
  Unwrap(memo.ChaseCanonical(Chain(3)));  // evicted -> re-chased
  EXPECT_EQ(memo.stats().misses, misses_before + 1);
}

TEST(ChaseMemoLru, MostRecentEntryIsNeverEvicted) {
  // A limit far below one entry's footprint: every insert overflows, yet
  // the just-inserted outcome must survive (single oversized results still
  // cache, per the header contract).
  ChaseMemo memo({}, Semantics::kSet, Schema(), {}, 1);
  Fill(&memo, 4);
  ChaseMemo::Stats stats = memo.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 3u);
  // The survivor is the last insert: chaining it again is a hit.
  Unwrap(memo.ChaseCanonical(Chain(4)));
  EXPECT_EQ(memo.stats().hits, 1u);
}

TEST(ChaseMemoLru, SetByteLimitShrinksImmediately) {
  ChaseMemo memo({}, Semantics::kSet, Schema(), {});
  Fill(&memo, 6);
  ASSERT_EQ(memo.stats().entries, 6u);
  size_t limit = memo.stats().bytes / 3;
  memo.set_byte_limit(limit);
  ChaseMemo::Stats stats = memo.stats();
  EXPECT_LE(stats.bytes, limit);
  EXPECT_LT(stats.entries, 6u);
  EXPECT_GT(stats.evictions, 0u);
  // Growing the bound back does not resurrect anything.
  size_t entries = stats.entries;
  memo.set_byte_limit(0);
  EXPECT_EQ(memo.stats().entries, entries);
}

/// A fresh tier-2 store in a throwaway TMPDIR directory.
std::shared_ptr<MemoStore> TempStore() {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr ? base : "/tmp") +
                     "/sqleq_memo_tier2_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* made = ::mkdtemp(buf.data());
  EXPECT_NE(made, nullptr);
  MemoStoreOptions options;
  options.dir = made;
  return std::shared_ptr<MemoStore>(
      Unwrap(MemoStore::Open(std::move(options)), "MemoStore::Open"));
}

TEST(ChaseMemoLruTier2, EvictedEntriesRepromoteFromDiskWithoutRechasing) {
  std::shared_ptr<MemoStore> store = TempStore();
  ChaseMemo memo({}, Semantics::kSet, Schema(), {}, 1);  // keeps 1 entry
  memo.AttachStore(store, "ctx-a");
  MetricsRegistry metrics;
  ChaseRuntime runtime;
  runtime.metrics = &metrics;
  for (int i = 1; i <= 4; ++i) Unwrap(memo.ChaseCanonical(Chain(i), nullptr, runtime));
  ASSERT_EQ(memo.stats().entries, 1u);  // 1..3 evicted, spilled to disk
  EXPECT_GE(store->stats().entries, 4u);  // write-through covered all 4 (+sentinel)

  // Chain(2) is gone from memory but on disk: the lookup is a memory miss
  // served by a disk hit, with no fresh chase.
  uint64_t steps_before = metrics.Snapshot().counters[metric::kChaseSteps];
  auto outcome = Unwrap(memo.ChaseCanonical(Chain(2), nullptr, runtime));
  MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.counters[metric::kMemoDiskHits], 1u);
  EXPECT_EQ(snap.counters[metric::kChaseSteps], steps_before);
  // No Σ: the chased result is the query itself.
  EXPECT_EQ(outcome->result.body().size(), 2u);
  // The promotion re-entered the memory tier: chasing again is a pure
  // memory hit (no second disk hit).
  size_t hits_before = memo.stats().hits;
  Unwrap(memo.ChaseCanonical(Chain(2), nullptr, runtime));
  EXPECT_EQ(memo.stats().hits, hits_before + 1);
  EXPECT_EQ(metrics.Snapshot().counters[metric::kMemoDiskHits], 1u);
}

TEST(ChaseMemoLruTier2, MostRecentEntryIsNeverEvictedWithStoreAttached) {
  std::shared_ptr<MemoStore> store = TempStore();
  ChaseMemo memo({}, Semantics::kSet, Schema(), {}, 1);
  memo.AttachStore(store, "ctx-b");
  Fill(&memo, 4);
  ChaseMemo::Stats stats = memo.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 3u);
  Unwrap(memo.ChaseCanonical(Chain(4)));
  EXPECT_EQ(memo.stats().hits, 1u);
}

TEST(ChaseMemoLruTier2, EvictionsAreCountedExactlyOnce) {
  std::shared_ptr<MemoStore> store = TempStore();
  MetricsRegistry metrics;
  ChaseRuntime runtime;
  runtime.metrics = &metrics;
  ChaseMemo memo({}, Semantics::kSet, Schema(), {}, 1);
  memo.AttachStore(store, "ctx-c");
  for (int i = 1; i <= 4; ++i) Unwrap(memo.ChaseCanonical(Chain(i), nullptr, runtime));
  // The spill path must not double-count the eviction.
  EXPECT_EQ(memo.stats().evictions, 3u);
  EXPECT_EQ(metrics.Snapshot().counters[metric::kMemoEvictions], 3u);
}

TEST(ChaseMemoLruTier2, DiskPromotionDoesNotDoubleCountBytes) {
  std::shared_ptr<MemoStore> store = TempStore();
  MetricsRegistry chased_metrics;
  ChaseRuntime chased_runtime;
  chased_runtime.metrics = &chased_metrics;
  ChaseMemo first({}, Semantics::kSet, Schema(), {});
  first.AttachStore(store, "ctx-d");
  Unwrap(first.ChaseCanonical(Chain(3), nullptr, chased_runtime));
  size_t chased_bytes = first.stats().bytes;
  size_t disk_bytes = store->stats().disk_bytes;
  uint64_t disk_writes = store->stats().writes;
  MetricsSnapshot chased_snap = chased_metrics.Snapshot();
  EXPECT_EQ(chased_snap.counters[metric::kMemoInserts], 1u);
  EXPECT_EQ(chased_snap.counters[metric::kMemoBytes], chased_bytes);
  EXPECT_EQ(chased_snap.counters[metric::kMemoDiskWrites], 1u);

  // A second memo over the same context warms from disk: the entry is
  // charged to the memory tier once (stats().bytes matches the chased
  // case) but the memo.inserts / memo.bytes metrics — and the disk tier —
  // see no new traffic.
  MetricsRegistry warm_metrics;
  ChaseRuntime warm_runtime;
  warm_runtime.metrics = &warm_metrics;
  ChaseMemo second({}, Semantics::kSet, Schema(), {});
  second.AttachStore(store, "ctx-d");
  Unwrap(second.ChaseCanonical(Chain(3), nullptr, warm_runtime));
  EXPECT_EQ(second.stats().bytes, chased_bytes);
  MetricsSnapshot warm_snap = warm_metrics.Snapshot();
  EXPECT_EQ(warm_snap.counters[metric::kMemoDiskHits], 1u);
  EXPECT_EQ(warm_snap.counters[metric::kMemoInserts], 0u);
  EXPECT_EQ(warm_snap.counters[metric::kMemoBytes], 0u);
  EXPECT_EQ(warm_snap.counters[metric::kMemoDiskWrites], 0u);
  // And the promotion wrote nothing back.
  EXPECT_EQ(store->stats().writes, disk_writes);
  EXPECT_EQ(store->stats().disk_bytes, disk_bytes);
}

TEST(ChaseMemoLruTier2, ContextFingerprintsDoNotMix) {
  std::shared_ptr<MemoStore> store = TempStore();
  ChaseMemo a({}, Semantics::kSet, Schema(), {});
  a.AttachStore(store, "ctx-one");
  Unwrap(a.ChaseCanonical(Chain(2)));

  // A different context fingerprint must not see ctx-one's records.
  MetricsRegistry metrics;
  ChaseRuntime runtime;
  runtime.metrics = &metrics;
  ChaseMemo b({}, Semantics::kSet, Schema(), {});
  b.AttachStore(store, "ctx-two");
  Unwrap(b.ChaseCanonical(Chain(2), nullptr, runtime));
  EXPECT_EQ(metrics.Snapshot().counters[metric::kMemoDiskHits], 0u);
}

TEST(ChaseMemoLru, EvictionMetricIsRecorded) {
  MetricsRegistry metrics;
  ChaseRuntime runtime;
  runtime.metrics = &metrics;
  ChaseMemo memo({}, Semantics::kSet, Schema(), {}, 1);
  for (int i = 1; i <= 4; ++i) Unwrap(memo.ChaseCanonical(Chain(i), nullptr, runtime));
  MetricsSnapshot snap = metrics.Snapshot();
  auto it = snap.counters.find(metric::kMemoEvictions);
  ASSERT_NE(it, snap.counters.end());
  EXPECT_EQ(it->second, memo.stats().evictions);
  EXPECT_EQ(it->second, 3u);
}

}  // namespace
}  // namespace sqleq
