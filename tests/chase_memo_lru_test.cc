// Tests for the ChaseMemo byte bound: LRU eviction order, the
// never-evict-most-recent guarantee, immediate shrink on set_byte_limit,
// and the memo.evictions metric. This is what keeps the sqleqd
// process-lifetime memo finite.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chase/chase_cache.h"
#include "test_util.h"
#include "util/telemetry.h"

namespace sqleq {
namespace {

using ::sqleq::testing::Q;
using ::sqleq::testing::Unwrap;

/// Distinct (non-isomorphic) chain queries over r/2 of growing length, so
/// each occupies its own memo entry.
ConjunctiveQuery Chain(int n) {
  std::string text = "Q(X0) :- ";
  for (int i = 0; i < n; ++i) {
    if (i > 0) text += ", ";
    text += "r(X" + std::to_string(i) + ", X" + std::to_string(i + 1) + ")";
  }
  text += ".";
  return Q(text);
}

/// Fills `memo` with chains 1..n and returns the canonical keys in
/// insertion order.
std::vector<std::string> Fill(ChaseMemo* memo, int n) {
  std::vector<std::string> keys;
  for (int i = 1; i <= n; ++i) {
    std::string key;
    Unwrap(memo->ChaseCanonical(Chain(i), &key));
    keys.push_back(key);
  }
  return keys;
}

TEST(ChaseMemoLru, UnboundedByDefault) {
  ChaseMemo memo({}, Semantics::kSet, Schema(), {});
  Fill(&memo, 8);
  ChaseMemo::Stats stats = memo.stats();
  EXPECT_EQ(stats.entries, 8u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.byte_limit, 0u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(ChaseMemoLru, ByteLimitHoldsAndEvictionsAreCounted) {
  // Learn a realistic per-entry size first, then bound to ~3 entries.
  ChaseMemo probe({}, Semantics::kSet, Schema(), {});
  Fill(&probe, 8);
  size_t limit = probe.stats().bytes * 3 / 8;

  ChaseMemo memo({}, Semantics::kSet, Schema(), {}, limit);
  Fill(&memo, 8);
  ChaseMemo::Stats stats = memo.stats();
  EXPECT_LE(stats.bytes, limit);
  EXPECT_LT(stats.entries, 8u);
  EXPECT_EQ(stats.evictions, 8u - stats.entries);
  EXPECT_EQ(stats.byte_limit, limit);
}

TEST(ChaseMemoLru, EvictsLeastRecentlyUsedFirst) {
  ChaseMemo probe({}, Semantics::kSet, Schema(), {});
  Fill(&probe, 4);
  // One byte short of all four chains: inserting the fourth overflows and
  // must evict exactly the LRU entry.
  ChaseMemo memo({}, Semantics::kSet, Schema(), {}, probe.stats().bytes - 1);
  Fill(&memo, 3);

  // Touch chains 1 and 2 so chain 3 becomes the LRU entry...
  Unwrap(memo.ChaseCanonical(Chain(1)));
  Unwrap(memo.ChaseCanonical(Chain(2)));
  EXPECT_EQ(memo.stats().hits, 2u);
  // ...then overflow with chain 4: 3 must go, 1 and 2 must stay.
  Unwrap(memo.ChaseCanonical(Chain(4)));
  size_t hits_before = memo.stats().hits;
  Unwrap(memo.ChaseCanonical(Chain(1)));
  Unwrap(memo.ChaseCanonical(Chain(2)));
  EXPECT_EQ(memo.stats().hits, hits_before + 2);
  size_t misses_before = memo.stats().misses;
  Unwrap(memo.ChaseCanonical(Chain(3)));  // evicted -> re-chased
  EXPECT_EQ(memo.stats().misses, misses_before + 1);
}

TEST(ChaseMemoLru, MostRecentEntryIsNeverEvicted) {
  // A limit far below one entry's footprint: every insert overflows, yet
  // the just-inserted outcome must survive (single oversized results still
  // cache, per the header contract).
  ChaseMemo memo({}, Semantics::kSet, Schema(), {}, 1);
  Fill(&memo, 4);
  ChaseMemo::Stats stats = memo.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 3u);
  // The survivor is the last insert: chaining it again is a hit.
  Unwrap(memo.ChaseCanonical(Chain(4)));
  EXPECT_EQ(memo.stats().hits, 1u);
}

TEST(ChaseMemoLru, SetByteLimitShrinksImmediately) {
  ChaseMemo memo({}, Semantics::kSet, Schema(), {});
  Fill(&memo, 6);
  ASSERT_EQ(memo.stats().entries, 6u);
  size_t limit = memo.stats().bytes / 3;
  memo.set_byte_limit(limit);
  ChaseMemo::Stats stats = memo.stats();
  EXPECT_LE(stats.bytes, limit);
  EXPECT_LT(stats.entries, 6u);
  EXPECT_GT(stats.evictions, 0u);
  // Growing the bound back does not resurrect anything.
  size_t entries = stats.entries;
  memo.set_byte_limit(0);
  EXPECT_EQ(memo.stats().entries, entries);
}

TEST(ChaseMemoLru, EvictionMetricIsRecorded) {
  MetricsRegistry metrics;
  ChaseRuntime runtime;
  runtime.metrics = &metrics;
  ChaseMemo memo({}, Semantics::kSet, Schema(), {}, 1);
  for (int i = 1; i <= 4; ++i) Unwrap(memo.ChaseCanonical(Chain(i), nullptr, runtime));
  MetricsSnapshot snap = metrics.Snapshot();
  auto it = snap.counters.find(metric::kMemoEvictions);
  ASSERT_NE(it, snap.counters.end());
  EXPECT_EQ(it->second, memo.stats().evictions);
  EXPECT_EQ(it->second, 3u);
}

}  // namespace
}  // namespace sqleq
