// Unit tests for dependency satisfaction D |= σ / D |= Σ.
#include "db/satisfaction.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sqleq {
namespace {

using testing::Sigma;
using testing::Unwrap;

Schema TwoRelSchema() {
  Schema s;
  s.Relation("p", 2).Relation("r", 1).Relation("s", 2);
  return s;
}

TEST(Satisfaction, FullTgdHolds) {
  Database db(TwoRelSchema());
  db.Add("p", {1, 2}).Add("r", {1});
  DependencySet sigma = Sigma({"p(X, Y) -> r(X)."});
  EXPECT_TRUE(Unwrap(Satisfies(db, sigma[0])));
}

TEST(Satisfaction, FullTgdViolated) {
  Database db(TwoRelSchema());
  db.Add("p", {1, 2});
  DependencySet sigma = Sigma({"p(X, Y) -> r(X)."});
  EXPECT_FALSE(Unwrap(Satisfies(db, sigma[0])));
}

TEST(Satisfaction, ExistentialTgdHolds) {
  Database db(TwoRelSchema());
  db.Add("p", {1, 2}).Add("s", {1, 99});
  DependencySet sigma = Sigma({"p(X, Y) -> EXISTS Z: s(X, Z)."});
  EXPECT_TRUE(Unwrap(Satisfies(db, sigma[0])));
}

TEST(Satisfaction, ExistentialTgdViolated) {
  Database db(TwoRelSchema());
  db.Add("p", {1, 2}).Add("s", {3, 99});
  DependencySet sigma = Sigma({"p(X, Y) -> EXISTS Z: s(X, Z)."});
  EXPECT_FALSE(Unwrap(Satisfies(db, sigma[0])));
}

TEST(Satisfaction, EgdHolds) {
  Database db(TwoRelSchema());
  db.Add("s", {1, 5}).Add("s", {2, 6});
  DependencySet sigma = Sigma({"s(X, Y), s(X, Z) -> Y = Z."});
  EXPECT_TRUE(Unwrap(Satisfies(db, sigma[0])));
}

TEST(Satisfaction, EgdViolated) {
  Database db(TwoRelSchema());
  db.Add("s", {1, 5}).Add("s", {1, 6});
  DependencySet sigma = Sigma({"s(X, Y), s(X, Z) -> Y = Z."});
  EXPECT_FALSE(Unwrap(Satisfies(db, sigma[0])));
}

TEST(Satisfaction, EmptyDatabaseSatisfiesEverything) {
  Database db(TwoRelSchema());
  DependencySet sigma = Sigma({
      "p(X, Y) -> r(X).",
      "s(X, Y), s(X, Z) -> Y = Z.",
  });
  EXPECT_TRUE(Unwrap(Satisfies(db, sigma)));
}

TEST(Satisfaction, InsensitiveToMultiplicities) {
  // Satisfaction reads core-sets; duplicate tuples do not create violations.
  Database db(TwoRelSchema());
  db.Add("s", {1, 5}, 4);
  DependencySet sigma = Sigma({"s(X, Y), s(X, Z) -> Y = Z."});
  EXPECT_TRUE(Unwrap(Satisfies(db, sigma[0])));
}

TEST(Satisfaction, SigmaConjunction) {
  Database db(TwoRelSchema());
  db.Add("p", {1, 2}).Add("r", {1}).Add("s", {1, 5}).Add("s", {1, 6});
  DependencySet sigma = Sigma({
      "p(X, Y) -> r(X).",
      "s(X, Y), s(X, Z) -> Y = Z.",
  });
  EXPECT_FALSE(Unwrap(Satisfies(db, sigma)));
}

TEST(Satisfaction, FirstViolatedReportsLabel) {
  Database db(TwoRelSchema());
  db.Add("s", {1, 5}).Add("s", {1, 6});
  DependencySet sigma = Sigma({
      "p(X, Y) -> r(X).",
      "s(X, Y), s(X, Z) -> Y = Z.",
  });
  auto violated = Unwrap(FirstViolated(db, sigma));
  ASSERT_TRUE(violated.has_value());
  EXPECT_EQ(*violated, "sigma2");
}

TEST(Satisfaction, FirstViolatedNulloptWhenAllHold) {
  Database db(TwoRelSchema());
  DependencySet sigma = Sigma({"p(X, Y) -> r(X)."});
  EXPECT_FALSE(Unwrap(FirstViolated(db, sigma)).has_value());
}

TEST(Satisfaction, EgdWithConstantSide) {
  Database db(TwoRelSchema());
  db.Add("r", {7});
  DependencySet sigma = Sigma({"r(X) -> X = 7."});
  EXPECT_TRUE(Unwrap(Satisfies(db, sigma[0])));
  db.Add("r", {8});
  EXPECT_FALSE(Unwrap(Satisfies(db, sigma[0])));
}

TEST(Satisfaction, CanonicalDatabaseOfChasedQuerySatisfiesSigma) {
  // The defining property of terminal chase results, checked through the
  // db layer: chase Q4 of Example 4.1 under set semantics, then D(Qn) |= Σ.
  DependencySet sigma = testing::Example41Sigma();
  ConjunctiveQuery q4 = testing::Q("Q4(X) :- p(X, Y).");
  // Hand-rolled (Q4)Σ,S = Q1 of Example 4.1:
  ConjunctiveQuery q1 =
      testing::Q("Q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U).");
  CanonicalDatabase canon =
      Unwrap(BuildCanonicalDatabase(q1, testing::Example41Schema()));
  EXPECT_TRUE(Unwrap(Satisfies(canon.database, sigma)));
  // Whereas D(Q4) does not satisfy the tgds:
  CanonicalDatabase canon4 =
      Unwrap(BuildCanonicalDatabase(q4, testing::Example41Schema()));
  EXPECT_FALSE(Unwrap(Satisfies(canon4.database, sigma)));
}

}  // namespace
}  // namespace sqleq
