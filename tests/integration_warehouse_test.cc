// Integration suite on a realistic TPC-H-flavoured warehouse schema: the
// whole stack (DDL → Σ, SQL → CQ, chase, equivalence, C&B, views, cost,
// rendering) exercised on the kind of queries the paper's introduction
// motivates.
#include <gtest/gtest.h>

#include "db/eval.h"
#include "equivalence/aggregate_equivalence.h"
#include "ir/parser.h"
#include "equivalence/sigma_equivalence.h"
#include "reformulation/candb.h"
#include "reformulation/cost.h"
#include "reformulation/views.h"
#include "shell/engine.h"
#include "sql/render.h"
#include "sql/translate.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::EngineEquivalent;
using testing::Unwrap;

/// nation — customer — orders — lineitem, keys + foreign keys throughout;
/// weblog has no key (a bag table).
sql::Catalog Warehouse() {
  return Unwrap(sql::CatalogFromScript(R"(
    CREATE TABLE nation (nkey INT PRIMARY KEY, nname TEXT);
    CREATE TABLE customer (ckey INT PRIMARY KEY, nkey INT, segment TEXT,
                           FOREIGN KEY (nkey) REFERENCES nation (nkey));
    CREATE TABLE orders (okey INT PRIMARY KEY, ckey INT, total INT,
                         FOREIGN KEY (ckey) REFERENCES customer (ckey));
    CREATE TABLE lineitem (okey INT, part INT, qty INT,
                           FOREIGN KEY (okey) REFERENCES orders (okey));
    CREATE TABLE weblog (ckey INT, url TEXT);
  )"));
}

TEST(Warehouse, SchemaAndSigmaShape) {
  sql::Catalog c = Warehouse();
  EXPECT_TRUE(c.schema.IsSetValued("orders"));
  EXPECT_FALSE(c.schema.IsSetValued("lineitem"));  // no key declared
  EXPECT_FALSE(c.schema.IsSetValued("weblog"));
  // 3 key fd egds (arity>1 keyed tables: nation 1, customer 2, orders 2 →
  // nation: 1 egd, customer: 2, orders: 2) + 3 fk tgds.
  size_t egds = 0, tgds = 0;
  for (const Dependency& d : c.sigma) (d.IsEgd() ? egds : tgds)++;
  EXPECT_EQ(tgds, 3u);
  EXPECT_EQ(egds, 5u);
}

TEST(Warehouse, FkChainJoinsAreRedundantUnderBagSet) {
  // Climbing the fk chain adds nothing: orders ⋈ customer ⋈ nation over the
  // keys preserves multiplicity, so a plain SELECT (bag-set) can drop both.
  sql::Catalog c = Warehouse();
  sql::TranslatedQuery with_joins = Unwrap(sql::TranslateSql(
      "SELECT o.okey FROM orders o, customer cu, nation n "
      "WHERE o.ckey = cu.ckey AND cu.nkey = n.nkey",
      c));
  sql::TranslatedQuery plain =
      Unwrap(sql::TranslateSql("SELECT okey FROM orders", c));
  EXPECT_EQ(with_joins.semantics, Semantics::kBagSet);
  EXPECT_TRUE(Unwrap(EngineEquivalent(*with_joins.cq, *plain.cq, c.sigma,
                                     Semantics::kBagSet, c.schema)));
}

TEST(Warehouse, LineitemFanOutIsNotRedundant) {
  // lineitem → orders is many-to-one the other way: joining lineitem to an
  // orders scan changes multiplicities AND answers; never redundant.
  sql::Catalog c = Warehouse();
  sql::TranslatedQuery with_join = Unwrap(sql::TranslateSql(
      "SELECT o.okey FROM orders o, lineitem l WHERE o.okey = l.okey", c));
  sql::TranslatedQuery plain =
      Unwrap(sql::TranslateSql("SELECT okey FROM orders", c));
  EXPECT_EQ(with_join.semantics, Semantics::kBag);  // lineitem is a bag
  EXPECT_FALSE(Unwrap(EngineEquivalent(*with_join.cq, *plain.cq, c.sigma,
                                      Semantics::kBag, c.schema)));
  EXPECT_FALSE(Unwrap(EngineEquivalent(*with_join.cq, *plain.cq, c.sigma,
                                      Semantics::kSet, c.schema)));
}

TEST(Warehouse, CandBMinimizesFourWayJoin) {
  sql::Catalog c = Warehouse();
  sql::TranslatedQuery q = Unwrap(sql::TranslateSql(
      "SELECT l.part FROM lineitem l, orders o, customer cu, nation n "
      "WHERE l.okey = o.okey AND o.ckey = cu.ckey AND cu.nkey = n.nkey",
      c));
  CandBResult result =
      Unwrap(ChaseAndBackchase(*q.cq, c.sigma, q.semantics, c.schema));
  ASSERT_EQ(result.reformulations.size(), 1u);
  // Everything above lineitem is fk-implied: the minimal body is lineitem
  // alone.
  EXPECT_EQ(result.reformulations[0].body().size(), 1u);
  EXPECT_EQ(result.reformulations[0].body()[0].predicate(), "lineitem");
  std::string rendered =
      Unwrap(sql::RenderSql(result.reformulations[0], c.schema, q.semantics));
  EXPECT_EQ(rendered, "SELECT t0.part FROM lineitem t0");
}

TEST(Warehouse, DistinctVsPlainSelectDiverge) {
  // Self-join of weblog on ckey: redundant with DISTINCT (set semantics),
  // NOT redundant without (bag semantics over the bag table).
  sql::Catalog c = Warehouse();
  sql::TranslatedQuery dup = Unwrap(sql::TranslateSql(
      "SELECT w1.ckey FROM weblog w1, weblog w2 WHERE w1.ckey = w2.ckey", c));
  sql::TranslatedQuery single =
      Unwrap(sql::TranslateSql("SELECT ckey FROM weblog", c));
  EXPECT_TRUE(Unwrap(
      EngineEquivalent(*dup.cq, *single.cq, c.sigma, Semantics::kSet, c.schema)));
  EXPECT_FALSE(Unwrap(
      EngineEquivalent(*dup.cq, *single.cq, c.sigma, Semantics::kBag, c.schema)));
}

TEST(Warehouse, ViewRewritingWithCostRanking) {
  sql::Catalog c = Warehouse();
  ViewSet views;
  ASSERT_TRUE(views
                  .Add(Unwrap(ParseQuery(
                      "v_order_cust(O, C, S) :- orders(O, C, T), "
                      "customer(C, N, S).")))
                  .ok());
  sql::TranslatedQuery q = Unwrap(sql::TranslateSql(
      "SELECT o.okey, cu.segment FROM orders o, customer cu "
      "WHERE o.ckey = cu.ckey",
      c));
  RewriteOptions options;
  options.allow_base_atoms = true;
  RewriteResult rewrites = Unwrap(RewriteWithViews(*q.cq, views, c.sigma,
                                                   q.semantics, c.schema, options));
  ASSERT_GE(rewrites.rewritings.size(), 2u);  // view-based + base-based
  // With an expensive base join and a cheap materialized view, the cost
  // model must pick the view rewriting.
  CostModel model;
  model.SetRows("orders", 1e6).SetRows("customer", 1e5).SetRows("v_order_cust", 1e4);
  std::optional<size_t> best = PickCheapest(rewrites.rewritings, model);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(rewrites.rewritings[*best].body()[0].predicate(), "v_order_cust");
}

TEST(Warehouse, EndToEndThroughTheShell) {
  shell::ScriptEngine engine;
  Result<std::string> out = engine.Run(R"(
    CREATE TABLE nation (nkey INT PRIMARY KEY, nname TEXT);
    CREATE TABLE customer (ckey INT PRIMARY KEY, nkey INT, segment TEXT,
                           FOREIGN KEY (nkey) REFERENCES nation (nkey));
    CREATE TABLE orders (okey INT PRIMARY KEY, ckey INT, total INT,
                         FOREIGN KEY (ckey) REFERENCES customer (ckey));
    INSERT INTO nation VALUES (1, 'de'), (2, 'fr');
    INSERT INTO customer VALUES (10, 1, 'retail'), (11, 2, 'corp');
    INSERT INTO orders VALUES (100, 10, 5), (101, 10, 7), (102, 11, 9);
    QUERY joined := SELECT o.okey FROM orders o, customer cu
                    WHERE o.ckey = cu.ckey;
    QUERY plain := SELECT okey FROM orders;
    EVAL joined;
    EQUIV joined plain;
    MINIMIZE joined
  )");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("joined(D,BS) = {{(100), (101), (102)}}"), std::string::npos)
      << *out;
  EXPECT_NE(out->find("joined == plain"), std::string::npos);
  EXPECT_NE(out->find("SELECT t0.okey FROM orders t0"), std::string::npos);
}

TEST(Warehouse, AggregateRevenuePerNation) {
  // Revenue per nation: the nation join is needed (it projects nname), but
  // an extra re-join of customer is droppable by Sum-Count-C&B reasoning.
  sql::Catalog c = Warehouse();
  sql::TranslatedQuery q1 = Unwrap(sql::TranslateSql(
      "SELECT n.nname, SUM(o.total) FROM orders o, customer cu, nation n "
      "WHERE o.ckey = cu.ckey AND cu.nkey = n.nkey GROUP BY n.nname",
      c));
  ASSERT_TRUE(q1.is_aggregate);
  sql::TranslatedQuery q2 = Unwrap(sql::TranslateSql(
      "SELECT n.nname, SUM(o.total) FROM orders o, customer cu, customer cu2, "
      "nation n WHERE o.ckey = cu.ckey AND cu.nkey = n.nkey AND "
      "cu.ckey = cu2.ckey GROUP BY n.nname",
      c));
  EXPECT_TRUE(
      Unwrap(AggregateEquivalentUnder(*q1.aggregate, *q2.aggregate, c.sigma)));
}

}  // namespace
}  // namespace sqleq
