// Unit tests for associated test queries, assignment-fixing tgds
// (Definitions 4.2, 4.3) and key-based tgds (Definition 5.1).
#include "chase/assignment_fixing.h"

#include <gtest/gtest.h>

#include "chase/chase_step.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::Q;
using testing::Sigma;
using testing::Unwrap;

TEST(AssociatedTestQuery, TwoParallelCopies) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");
  DependencySet sigma = Sigma({"p(X, Y) -> r(X, Z), s(Z, W)."});
  const Tgd& tgd = sigma[0].tgd();
  std::optional<TermMap> h = FindApplicableTgdHomomorphism(q, tgd);
  ASSERT_TRUE(h.has_value());
  AssociatedTestQuery test = BuildAssociatedTestQuery(q, tgd, *h);
  // body(Q) + 2 copies of the 2-atom head.
  EXPECT_EQ(test.query.body().size(), 1u + 2u + 2u);
  ASSERT_EQ(test.existential_pairs.size(), 2u);
  for (const auto& [z, tz] : test.existential_pairs) {
    EXPECT_NE(z, tz);
    EXPECT_TRUE(z.IsVariable());
    EXPECT_TRUE(tz.IsVariable());
  }
  EXPECT_EQ(test.query.head(), q.head());
}

TEST(AssociatedTestQuery, FullTgdSingleCopy) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");
  DependencySet sigma = Sigma({"p(X, Y) -> r(X)."});
  const Tgd& tgd = sigma[0].tgd();
  std::optional<TermMap> h = FindApplicableTgdHomomorphism(q, tgd);
  ASSERT_TRUE(h.has_value());
  AssociatedTestQuery test = BuildAssociatedTestQuery(q, tgd, *h);
  EXPECT_EQ(test.query.body().size(), 2u);  // Eq. 3: one copy only
  EXPECT_TRUE(test.existential_pairs.empty());
}

TEST(AssignmentFixing, Example42Positive) {
  // σ1 of Example 4.2 is assignment-fixing w.r.t. Q(X) :- p(X,Y) given the
  // key σ2 and the egd σ3.
  DependencySet sigma = Sigma({
      "p(X, Y) -> r(X, Z), s(Z, W).",
      "r(X, Y), r(X, Z) -> Y = Z.",
      "r(X, Y), s(Y, T), r(X, Z), s(Z, W) -> T = W.",
  });
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");
  EXPECT_TRUE(Unwrap(IsAssignmentFixingForQuery(q, sigma[0].tgd(), sigma)));
}

TEST(AssignmentFixing, Example43NegativeWithoutSigma5) {
  // The intended negative of Example 4.3: σ4 is NOT assignment-fixing w.r.t.
  // Q(X) :- p(X,Y) when no egd pins down the s-values. (The paper's printed
  // Σ′ includes an egd σ5 so strong that it unifies all four existential
  // copies — see Example43LiteralSigma5MakesFixing below and EXPERIMENTS.md;
  // the literal Example 4.7 counterexample database actually violates σ5.)
  DependencySet sigma = Sigma({
      "r(X, Y), r(X, Z) -> Y = Z.",
      "p(X, Y) -> r(X, Z), s(Z, W), s(X, T).",
      "p(X, Y), r(A, X), s(X, T) -> X = T.",
  });
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");
  EXPECT_FALSE(Unwrap(IsAssignmentFixingForQuery(q, sigma[1].tgd(), sigma)));
}

TEST(AssignmentFixing, Example43LiteralSigma5MakesFixing) {
  // With the paper's σ5 taken literally, every pair of s-values with the
  // right first arguments is equated, so the associated-test-query chase
  // unifies W, T, W1, T1 and σ4 IS assignment-fixing by Def 4.3.
  DependencySet sigma = Sigma({
      "r(X, Y), r(X, Z) -> Y = Z.",
      "p(X, Y) -> r(X, Z), s(Z, W), s(X, T).",
      "r(X, Z), s(Z, W), s(X, T) -> W = T.",
      "p(X, Y), r(A, X), s(X, T) -> X = T.",
  });
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");
  EXPECT_TRUE(Unwrap(IsAssignmentFixingForQuery(q, sigma[1].tgd(), sigma)));
}

TEST(AssignmentFixing, Example51QueryDependence) {
  // The Example 5.1 phenomenon: the same tgd can be assignment-fixing w.r.t.
  // Q′ but not w.r.t. Q. Here σ6's r(A,X) premise only fires for the query
  // that carries an r-atom.
  DependencySet sigma = Sigma({
      "p(X, Y) -> s(X, T).",
      "p(X, Y), r(A, X), s(X, T) -> X = T.",
  });
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");
  ConjunctiveQuery q_prime = Q("Qp(X) :- p(X, Y), r(A, X).");
  EXPECT_FALSE(Unwrap(IsAssignmentFixingForQuery(q, sigma[0].tgd(), sigma)));
  EXPECT_TRUE(Unwrap(IsAssignmentFixingForQuery(q_prime, sigma[0].tgd(), sigma)));
}

TEST(AssignmentFixing, FullTgdAlwaysFixing) {
  DependencySet sigma = Sigma({"p(X, Y) -> r(X)."});
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");
  std::optional<TermMap> h = FindApplicableTgdHomomorphism(q, sigma[0].tgd());
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(Unwrap(IsAssignmentFixing(q, sigma[0].tgd(), *h, sigma)));
}

TEST(AssignmentFixing, KeyOnHeadRelationMakesFixing) {
  // σ2 of Example 4.1: t's key (attrs 1,2) covers the universal variables.
  DependencySet sigma = Sigma({
      "p(X, Y) -> t(X, Y, W).",
      "t(X, Y, W1), t(X, Y, W2) -> W1 = W2.",
  });
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");
  EXPECT_TRUE(Unwrap(IsAssignmentFixingForQuery(q, sigma[0].tgd(), sigma)));
}

TEST(AssignmentFixing, NoKeyNotFixing) {
  // σ4's u-piece in Example 4.1: U has no key — not assignment-fixing.
  DependencySet sigma = Sigma({"p(X, Y) -> u(X, Z)."});
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");
  EXPECT_FALSE(Unwrap(IsAssignmentFixingForQuery(q, sigma[0].tgd(), sigma)));
}

TEST(AssignmentFixing, NotApplicableReportsFalse) {
  DependencySet sigma = Sigma({"p(X, Y) -> r(X)."});
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), r(X).");
  EXPECT_FALSE(Unwrap(IsAssignmentFixingForQuery(q, sigma[0].tgd(), sigma)));
}

TEST(AssignmentFixing, Example46Nu1IsFixing) {
  // ν1 of Example 4.6/4.8: regularized and assignment-fixing w.r.t.
  // Q(X) :- p(X,Y), s(X,Z) given ν2.
  DependencySet sigma = Sigma({
      "p(X, Y) -> s(X, Z), t(Z, Y).",
      "t(X, Y), t(Z, Y) -> X = Z.",
  });
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), s(X, Z).");
  EXPECT_TRUE(Unwrap(IsAssignmentFixingForQuery(q, sigma[0].tgd(), sigma)));
}

TEST(KeyBased, PositiveWithKeyAndSetValued) {
  DependencySet sigma = Sigma({
      "p(X, Y) -> t(X, Y, W).",
      "t(X, Y, W1), t(X, Y, W2) -> W1 = W2.",
  });
  Schema schema;
  schema.Relation("p", 2).Relation("t", 3, /*set_valued=*/true);
  EXPECT_TRUE(IsKeyBased(sigma[0].tgd(), sigma, schema));
}

TEST(KeyBased, FailsWithoutSetValuedFlag) {
  DependencySet sigma = Sigma({
      "p(X, Y) -> t(X, Y, W).",
      "t(X, Y, W1), t(X, Y, W2) -> W1 = W2.",
  });
  Schema schema;
  schema.Relation("p", 2).Relation("t", 3, /*set_valued=*/false);
  EXPECT_FALSE(IsKeyBased(sigma[0].tgd(), sigma, schema));
}

TEST(KeyBased, FailsWithoutKey) {
  DependencySet sigma = Sigma({"p(X, Y) -> u(X, Z)."});
  Schema schema;
  schema.Relation("p", 2).Relation("u", 2, /*set_valued=*/true);
  EXPECT_FALSE(IsKeyBased(sigma[0].tgd(), sigma, schema));
}

TEST(KeyBased, StrictlyWeakerThanAssignmentFixing) {
  // ν1 of Example 4.8: assignment-fixing w.r.t. the query, but NOT key-based
  // (the s-atom's universal position {0} is not a superkey of S).
  DependencySet sigma = Sigma({
      "p(X, Y) -> s(X, Z), t(Z, Y).",
      "t(X, Y), t(Z, Y) -> X = Z.",
  });
  Schema schema;
  schema.Relation("p", 2)
      .Relation("s", 2, /*set_valued=*/true)
      .Relation("t", 2, /*set_valued=*/true);
  EXPECT_FALSE(IsKeyBased(sigma[0].tgd(), sigma, schema));
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), s(X, Z).");
  EXPECT_TRUE(Unwrap(IsAssignmentFixingForQuery(q, sigma[0].tgd(), sigma)));
}

}  // namespace
}  // namespace sqleq
