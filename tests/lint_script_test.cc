// Unit tests for the script-level Σ-lint (src/shell/lint.h): lenient replay
// of shell scripts into diagnostics, plus the LINT shell command.
#include "shell/lint.h"

#include <gtest/gtest.h>

#include "shell/engine.h"
#include "test_util.h"

namespace sqleq {
namespace {

using shell::LintResult;
using shell::LintScript;

bool HasCode(const LintResult& result, const std::string& code) {
  for (const Diagnostic& d : result.report.diagnostics) {
    if (d.code == code) return true;
  }
  return false;
}

const Diagnostic* Find(const LintResult& result, const std::string& code) {
  for (const Diagnostic& d : result.report.diagnostics) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

TEST(LintScript, CleanScriptHasNoErrors) {
  LintResult result = LintScript(R"(
    CREATE TABLE p (a INT, b INT, PRIMARY KEY (a, b));
    CREATE TABLE r (a INT, PRIMARY KEY (a));
    DEP p(X, Y) -> r(X);
    VIEW v(X) :- p(X, Y);
    QUERY q(X) :- p(X, Y), r(X);
    EQUIV q v UNDER S;
    MINIMIZE q;
    REWRITE q;
    LINT STRICT;
    SHOW SIGMA
  )");
  EXPECT_FALSE(result.HasErrors()) << result.ToString();
  EXPECT_EQ(result.statements, 10u);
}

TEST(LintScript, LineCommentsAreIgnored) {
  LintResult result = LintScript(
      "-- a full-line comment\n"
      "CREATE TABLE p (a INT, PRIMARY KEY (a));  -- trailing comment\n"
      "QUERY q(X) :- p(X)");
  EXPECT_FALSE(result.HasErrors()) << result.ToString();
}

TEST(LintScript, NonTerminatingSigmaFlagged) {
  LintResult result = LintScript(
      "CREATE TABLE e (a INT, b INT, PRIMARY KEY (a, b));"
      "DEP e(X, Y) -> e(Y, Z)");
  EXPECT_TRUE(HasCode(result, "chase-nontermination"));
  EXPECT_TRUE(result.HasErrors());
}

TEST(LintScript, UnsafeQueryFlaggedNotFatal) {
  // The shell's QUERY statement would reject this outright; the linter keeps
  // going and diagnoses it with the analyzer's code.
  LintResult result = LintScript(
      "CREATE TABLE p (a INT, b INT, PRIMARY KEY (a, b));"
      "QUERY q(X, Y) :- p(X, Z);"
      "EVAL q");
  const Diagnostic* d = Find(result, "query-unsafe-head");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->subject, "query q");
  // q still counts as defined: no unknown-query for the EVAL.
  EXPECT_FALSE(HasCode(result, "unknown-query"));
}

TEST(LintScript, UnknownQueryReference) {
  LintResult result = LintScript(
      "CREATE TABLE p (a INT, PRIMARY KEY (a));"
      "QUERY q(X) :- p(X);"
      "EQUIV q nonesuch");
  const Diagnostic* d = Find(result, "unknown-query");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("nonesuch"), std::string::npos);
}

TEST(LintScript, ParseErrorsDoNotStopTheScan) {
  LintResult result = LintScript(
      "FROBNICATE everything;"
      "CREATE TABLE p (a INT, PRIMARY KEY (a));"
      "QUERY q(X) :- p(X);"
      "EVAL q");
  EXPECT_TRUE(HasCode(result, "parse-error"));
  // The statements after the bad one were still processed.
  EXPECT_FALSE(HasCode(result, "unknown-query"));
  EXPECT_EQ(result.statements, 4u);
}

TEST(LintScript, InsertChecksTableAndArity) {
  LintResult result = LintScript(
      "CREATE TABLE p (a INT, b INT, PRIMARY KEY (a, b));"
      "INSERT INTO p VALUES (1, 2);"
      "INSERT INTO p VALUES (3);"
      "INSERT INTO ghost VALUES (1)");
  EXPECT_TRUE(HasCode(result, "arity-mismatch"));
  EXPECT_TRUE(HasCode(result, "unknown-relation"));
}

TEST(LintScript, SqlQueriesTranslateAgainstAccumulatedCatalog) {
  LintResult result = LintScript(
      "CREATE TABLE emp (id INT PRIMARY KEY, dept INT);"
      "QUERY a := SELECT e.id FROM emp e;"
      "QUERY b := SELECT nope FROM missing;"
      "EVAL a");
  EXPECT_TRUE(HasCode(result, "parse-error"));  // the bad SELECT
  EXPECT_FALSE(HasCode(result, "unknown-query"));  // a is defined
}

TEST(LintScript, RewriteWithoutViewsFlagged) {
  LintResult result = LintScript(
      "CREATE TABLE p (a INT, PRIMARY KEY (a));"
      "QUERY q(X) :- p(X);"
      "REWRITE q");
  EXPECT_TRUE(HasCode(result, "parse-error"));
}

TEST(LintScript, StrictModeEscalatesWarnings) {
  const char* script =
      "CREATE TABLE p (a INT, b INT, PRIMARY KEY (a, b));"
      "CREATE TABLE r (a INT, b INT, PRIMARY KEY (a, b));"
      "CREATE TABLE s (a INT, b INT, PRIMARY KEY (a, b));"
      "DEP p(X, Y) -> r(X, Z1), s(X, Z2)";  // Def 4.1 violation: warning
  LintResult lenient = LintScript(script);
  EXPECT_FALSE(lenient.HasErrors()) << lenient.ToString();
  EXPECT_EQ(lenient.report.CountOf(Severity::kWarning), 1u);

  AnalyzeOptions strict = AnalyzeOptions::Full();
  strict.warnings_as_errors = true;
  LintResult escalated = LintScript(script, strict);
  EXPECT_TRUE(escalated.HasErrors());
}

TEST(LintScript, SummaryLineCountsBySeverity) {
  LintResult result = LintScript("DEP e(X, Y) -> e(Y, Z)");
  std::string text = result.ToString();
  EXPECT_NE(text.find("lint: 1 error(s), 0 warning(s), 0 note(s)"),
            std::string::npos)
      << text;
}

TEST(LintScript, EmptyScriptIsClean) {
  LintResult result = LintScript("   \n  ;;  \n");
  EXPECT_FALSE(result.HasErrors());
  EXPECT_EQ(result.statements, 0u);
  EXPECT_NE(result.ToString().find("no findings"), std::string::npos);
}

// --- the LINT shell command ---

TEST(ShellLint, ReportsSessionFindings) {
  shell::ScriptEngine engine;
  ASSERT_TRUE(engine.Run("CREATE TABLE e (a INT, b INT, PRIMARY KEY (a, b));").ok());
  ASSERT_TRUE(engine.Execute("DEP e(X, Y) -> e(Y, Z)").ok());
  Result<std::string> out = engine.Execute("LINT");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("chase-nontermination"), std::string::npos) << *out;
  EXPECT_NE(out->find("lint: 1 error(s)"), std::string::npos) << *out;
}

TEST(ShellLint, CleanSessionReportsNoFindings) {
  shell::ScriptEngine engine;
  ASSERT_TRUE(engine.Run("CREATE TABLE p (a INT, PRIMARY KEY (a));"
                         "QUERY q(X) :- p(X);")
                  .ok());
  Result<std::string> out = engine.Execute("LINT");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("no findings"), std::string::npos) << *out;
  EXPECT_NE(out->find("lint: 0 error(s)"), std::string::npos) << *out;
}

TEST(ShellLint, StrictEscalatesAndRejectsBadArgs) {
  shell::ScriptEngine engine;
  ASSERT_TRUE(engine.Run("CREATE TABLE p (a INT, b INT, PRIMARY KEY (a, b));"
                         "CREATE TABLE r (a INT, b INT, PRIMARY KEY (a, b));"
                         "CREATE TABLE s (a INT, b INT, PRIMARY KEY (a, b));"
                         "DEP p(X, Y) -> r(X, Z1), s(X, Z2);")
                  .ok());
  Result<std::string> relaxed = engine.Execute("LINT");
  ASSERT_TRUE(relaxed.ok());
  EXPECT_NE(relaxed->find("warning[tgd-unregularized]"), std::string::npos)
      << *relaxed;
  Result<std::string> strict = engine.Execute("LINT STRICT");
  ASSERT_TRUE(strict.ok());
  EXPECT_NE(strict->find("error[tgd-unregularized]"), std::string::npos) << *strict;
  EXPECT_FALSE(engine.Execute("LINT LOUDLY").ok());
}

TEST(ShellLint, EngineCommandsRefuseLintErrors) {
  // The same diagnostics gate EQUIV: a non-stratified Σ is refused by name
  // instead of exhausting the chase budget.
  shell::ScriptEngine engine;
  ASSERT_TRUE(engine.Run("CREATE TABLE e (a INT, b INT, PRIMARY KEY (a, b));"
                         "DEP e(X, Y) -> e(Y, Z);"
                         "QUERY q(X) :- e(X, Y);")
                  .ok());
  Result<std::string> out = engine.Execute("EQUIV q q");
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("chase-nontermination"), std::string::npos)
      << out.status().message();
}

}  // namespace
}  // namespace sqleq
