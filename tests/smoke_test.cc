// End-to-end smoke test: Example 4.1 of the paper, driven through the whole
// stack — parser, chase, equivalence tests, and the evaluation oracle.
#include <gtest/gtest.h>

#include "chase/sound_chase.h"
#include "db/eval.h"
#include "equivalence/sigma_equivalence.h"
#include "ir/parser.h"

namespace sqleq {
namespace {

TEST(Smoke, Example41PipelineRuns) {
  auto q4 = ParseQuery("Q4(X) :- p(X, Y).");
  ASSERT_TRUE(q4.ok()) << q4.status().ToString();

  auto sigma = ParseSigma({
      "p(X, Y) -> s(X, Z), t(X, V, W).",
      "p(X, Y) -> t(X, Y, W).",
      "p(X, Y) -> r(X).",
      "p(X, Y) -> u(X, Z), t(X, Y, W).",
      "s(X, Y), s(X, Z) -> Y = Z.",
      "t(X, Y, W1), t(X, Y, W2) -> W1 = W2.",
  });
  ASSERT_TRUE(sigma.ok()) << sigma.status().ToString();

  Schema schema;
  schema.Relation("p", 2)
      .Relation("r", 1)
      .Relation("s", 2, /*set_valued=*/true)
      .Relation("t", 3, /*set_valued=*/true)
      .Relation("u", 2);

  auto chased = SoundChase(*q4, *sigma, Semantics::kBag, schema);
  ASSERT_TRUE(chased.ok()) << chased.status().ToString();
  EXPECT_FALSE(chased->failed);
  // (Q4)Σ,B = Q3: p, t, s — three subgoals.
  EXPECT_EQ(chased->result.body().size(), 3u);
}

}  // namespace
}  // namespace sqleq
