// Randomized identity suite for the compiled chase core: the per-Σ compiled
// kernels (ChaseOptions::use_compiled_kernels = true, the default) must be
// STEP-FOR-STEP identical to the generic executable-spec path — same trace
// records, same final query, same failed flag, same anytime statuses, same
// checkpoints — under all three semantics, under fault injection, and
// through checkpoint/resume. The compiled matcher emulates the generic
// backtracking enumeration order exactly (chase/pattern.h), so these are
// equality assertions, not up-to-isomorphism ones. Fresh variables draw
// from a process-global counter, so each paired run rewinds it
// (Term::ResetFreshCounterForTesting) to make the names comparable
// byte-for-byte.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "chase/chase_plan.h"
#include "chase/checkpoint.h"
#include "chase/homomorphism.h"
#include "chase/set_chase.h"
#include "chase/sound_chase.h"
#include "ir/term.h"
#include "util/fault.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::Example41Schema;
using testing::Example41Sigma;
using testing::Q;
using testing::RandomQuery;
using testing::Sigma;
using testing::Unwrap;

class SeededTest : public ::testing::TestWithParam<uint64_t> {};

Schema PropSchema() {
  Schema s;
  s.Relation("p", 2).Relation("r", 1).Relation("s", 2).Relation("t", 3);
  return s;
}

/// Dependency pool the random Σs draw from: tgds with and without
/// existentials, multi-atom bodies, and egds; every subset yields a
/// terminating chase on PropSchema queries.
const std::vector<std::string>& DependencyPool() {
  static const std::vector<std::string> pool = {
      "p(X, Y) -> r(X).",
      "r(X) -> p(X, Z).",
      "p(X, Y), p(Y, Z) -> t(X, Y, Z).",
      "t(X, Y, Z) -> s(X, Z).",
      "s(X, Y) -> p(X, Y).",
      "t(X, X, Y) -> r(Y).",
      "s(X, Y), s(X, Z) -> Y = Z.",
      "p(X, Y), p(X, Z) -> Y = Z.",
  };
  return pool;
}

DependencySet RandomSigma(Rng* rng) {
  const std::vector<std::string>& pool = DependencyPool();
  std::vector<std::string> picked;
  size_t count = static_cast<size_t>(rng->UniformInt(1, 5));
  for (size_t i = 0; i < count; ++i) {
    picked.push_back(pool[rng->Index(pool.size())]);
  }
  return Sigma(picked);
}

ChaseOptions CompiledOptions(size_t max_steps = 64) {
  ChaseOptions options;
  options.budget.max_chase_steps = max_steps;
  options.use_compiled_kernels = true;
  return options;
}

ChaseOptions GenericOptions(size_t max_steps = 64) {
  ChaseOptions options = CompiledOptions(max_steps);
  options.use_compiled_kernels = false;
  return options;
}

/// The identity assertion: both runs succeeded with byte-identical traces
/// and results, or both stopped with the same status.
void ExpectIdenticalOutcome(const Result<ChaseOutcome>& compiled,
                            const Result<ChaseOutcome>& generic,
                            const std::string& context) {
  ASSERT_EQ(compiled.ok(), generic.ok()) << context;
  if (!compiled.ok()) {
    EXPECT_EQ(compiled.status().code(), generic.status().code()) << context;
    EXPECT_EQ(compiled.status().message(), generic.status().message()) << context;
    return;
  }
  EXPECT_EQ(compiled->failed, generic->failed) << context;
  EXPECT_EQ(compiled->result.ToString(), generic->result.ToString()) << context;
  ASSERT_EQ(compiled->trace.size(), generic->trace.size()) << context;
  for (size_t i = 0; i < compiled->trace.size(); ++i) {
    EXPECT_EQ(compiled->trace[i].dep_label, generic->trace[i].dep_label)
        << context << " step " << i;
    EXPECT_EQ(compiled->trace[i].is_tgd, generic->trace[i].is_tgd)
        << context << " step " << i;
    EXPECT_EQ(compiled->trace[i].result, generic->trace[i].result)
        << context << " step " << i;
  }
}

// ---- Matcher-level enumeration order ---------------------------------

TEST_P(SeededTest, CompiledMatcherEnumeratesInGenericOrder) {
  Rng rng(GetParam());
  Schema schema = PropSchema();
  for (int round = 0; round < 20; ++round) {
    ConjunctiveQuery from = RandomQuery(schema, rng.UniformInt(1, 3), 3, &rng);
    ConjunctiveQuery to = RandomQuery(schema, rng.UniformInt(1, 5), 4, &rng);
    auto render = [](const TermMap& h) {
      std::vector<std::string> entries;
      for (const auto& [k, v] : h) {
        entries.push_back(k.ToString() + "->" + v.ToString());
      }
      std::sort(entries.begin(), entries.end());
      std::string out;
      for (const std::string& e : entries) out += e + ";";
      return out;
    };
    std::vector<std::string> compiled, generic;
    ForEachHomomorphism(from.body(), to.body(), TermMap(),
                        [&](const TermMap& h) {
                          compiled.push_back(render(h));
                          return true;
                        });
    ForEachHomomorphismGeneric(from.body(), to.body(), TermMap(),
                               [&](const TermMap& h) {
                                 generic.push_back(render(h));
                                 return true;
                               });
    // Same homomorphisms, in the same order — not just the same set.
    EXPECT_EQ(compiled, generic)
        << from.ToString() << " into " << to.ToString();
  }
}

// ---- Chase-level identity, all three semantics ------------------------

TEST_P(SeededTest, SetChaseCompiledMatchesGenericStepForStep) {
  Rng rng(GetParam() + 100);
  Schema schema = PropSchema();
  for (int round = 0; round < 15; ++round) {
    ConjunctiveQuery q = RandomQuery(schema, rng.UniformInt(1, 4), 4, &rng);
    DependencySet sigma = RandomSigma(&rng);
    Term::ResetFreshCounterForTesting();
    Result<ChaseOutcome> compiled = SetChase(q, sigma, CompiledOptions());
    Term::ResetFreshCounterForTesting();
    Result<ChaseOutcome> generic = SetChase(q, sigma, GenericOptions());
    ExpectIdenticalOutcome(compiled, generic,
                           q.ToString() + " under " + SigmaToString(sigma));
  }
}

TEST_P(SeededTest, SoundChaseVerdictIdenticalUnderAllSemantics) {
  Rng rng(GetParam() + 200);
  Schema schema = PropSchema();
  for (int round = 0; round < 8; ++round) {
    ConjunctiveQuery q = RandomQuery(schema, rng.UniformInt(1, 4), 4, &rng);
    DependencySet sigma = RandomSigma(&rng);
    for (Semantics sem :
         {Semantics::kSet, Semantics::kBag, Semantics::kBagSet}) {
      Term::ResetFreshCounterForTesting();
      Result<ChaseOutcome> compiled =
          SoundChase(q, sigma, sem, schema, CompiledOptions());
      Term::ResetFreshCounterForTesting();
      Result<ChaseOutcome> generic =
          SoundChase(q, sigma, sem, schema, GenericOptions());
      ExpectIdenticalOutcome(compiled, generic,
                             std::string(SemanticsToString(sem)) + " " +
                                 q.ToString() + " under " + SigmaToString(sigma));
    }
  }
}

TEST_P(SeededTest, ChasePlanRunMatchesFreeFunction) {
  Rng rng(GetParam() + 300);
  Schema schema = PropSchema();
  for (int round = 0; round < 8; ++round) {
    ConjunctiveQuery q = RandomQuery(schema, rng.UniformInt(1, 4), 4, &rng);
    DependencySet sigma = RandomSigma(&rng);
    for (Semantics sem :
         {Semantics::kSet, Semantics::kBag, Semantics::kBagSet}) {
      // Reset before construction: plan construction regularizes Σ up
      // front, the free function does it per call, and both paths must see
      // the same counter state when they do.
      Term::ResetFreshCounterForTesting();
      ChasePlan plan(sigma, sem, schema, CompiledOptions());
      EXPECT_GT(plan.stats().kernels.dependencies, 0u);
      EXPECT_TRUE(plan.stats().compiled_path);
      Result<ChaseOutcome> via_plan = plan.Run(q);
      Term::ResetFreshCounterForTesting();
      Result<ChaseOutcome> via_free =
          SoundChase(q, sigma, sem, schema, CompiledOptions());
      ExpectIdenticalOutcome(via_plan, via_free,
                             std::string("plan vs free, ") + SemanticsToString(sem));
    }
  }
}

// ---- Paper Example 4.1, pinned explicitly ----------------------------

TEST(ChasePlanIdentity, Example41TraceIdenticalAcrossPaths) {
  ConjunctiveQuery q = Q("P(X) :- p(X, Y).");
  for (Semantics sem : {Semantics::kSet, Semantics::kBag, Semantics::kBagSet}) {
    Term::ResetFreshCounterForTesting();
    Result<ChaseOutcome> compiled = SoundChase(q, Example41Sigma(), sem,
                                               Example41Schema(), CompiledOptions());
    Term::ResetFreshCounterForTesting();
    Result<ChaseOutcome> generic = SoundChase(q, Example41Sigma(), sem,
                                              Example41Schema(), GenericOptions());
    ExpectIdenticalOutcome(compiled, generic, SemanticsToString(sem));
    ASSERT_TRUE(compiled.ok());
    EXPECT_FALSE(compiled->trace.empty());
  }
}

// ---- Checkpoint/resume through compiled kernels ----------------------

TEST(ChasePlanIdentity, CheckpointsInteroperateBetweenPaths) {
  // Interrupt the compiled chase, resume it on the generic path (and vice
  // versa): exact-order emulation makes the checkpoints interchangeable,
  // and every combination finishes with the uninterrupted result.
  ConjunctiveQuery q = Q("P(X) :- p(X, Y).");
  Term::ResetFreshCounterForTesting();
  ChaseOutcome full = Unwrap(
      SetChase(q, Example41Sigma(), CompiledOptions()), "uninterrupted");

  for (bool capture_compiled : {true, false}) {
    ChaseOptions small = capture_compiled ? CompiledOptions(2) : GenericOptions(2);
    ChaseRuntime runtime;
    std::optional<ChaseCheckpoint> checkpoint;
    runtime.checkpoint_out = &checkpoint;
    Term::ResetFreshCounterForTesting();
    Result<ChaseOutcome> interrupted =
        SetChase(q, Example41Sigma(), small, runtime);
    // Exact-order emulation means the interrupted prefix allocated exactly
    // the fresh names the full run did; replaying each resume from this
    // mark makes the finished bodies byte-identical to `full`.
    uint64_t mark = Term::FreshCounterForTesting();
    ASSERT_FALSE(interrupted.ok());
    EXPECT_EQ(interrupted.status().code(), StatusCode::kResourceExhausted);
    ASSERT_TRUE(checkpoint.has_value()) << "capture_compiled=" << capture_compiled;

    for (bool resume_compiled : {true, false}) {
      Term::ResetFreshCounterForTesting(mark);
      ChaseRuntime resume_runtime;
      resume_runtime.resume = &*checkpoint;
      Result<ChaseOutcome> finished =
          SetChase(q, Example41Sigma(),
                   resume_compiled ? CompiledOptions() : GenericOptions(),
                   resume_runtime);
      ASSERT_TRUE(finished.ok())
          << "capture_compiled=" << capture_compiled
          << " resume_compiled=" << resume_compiled;
      EXPECT_EQ(finished->result.ToString(), full.result.ToString());
      EXPECT_EQ(finished->failed, full.failed);
    }
  }
}

TEST(ChasePlanIdentity, SoundChaseCheckpointResumesThroughPlan) {
  ConjunctiveQuery q = Q("P(X) :- p(X, Y).");
  Term::ResetFreshCounterForTesting();
  ChaseOutcome full = Unwrap(SoundChase(q, Example41Sigma(), Semantics::kSet,
                                        Example41Schema(), CompiledOptions()),
                             "uninterrupted");
  ChaseRuntime runtime;
  std::optional<ChaseCheckpoint> checkpoint;
  runtime.checkpoint_out = &checkpoint;
  Term::ResetFreshCounterForTesting();
  Result<ChaseOutcome> interrupted =
      SoundChase(q, Example41Sigma(), Semantics::kSet, Example41Schema(),
                 CompiledOptions(2), runtime);
  uint64_t mark = Term::FreshCounterForTesting();
  ASSERT_FALSE(interrupted.ok());
  ASSERT_TRUE(checkpoint.has_value());
  // Round-trip through the text format, then resume through the plan.
  ChaseCheckpoint restored =
      Unwrap(ChaseCheckpoint::Deserialize(checkpoint->Serialize()), "restore");
  ChasePlan plan(Example41Sigma(), Semantics::kSet, Example41Schema(),
                 CompiledOptions());
  ChaseRuntime resume_runtime;
  resume_runtime.resume = &restored;
  Term::ResetFreshCounterForTesting(mark);
  ChaseOutcome finished = Unwrap(plan.Run(q, resume_runtime), "resume");
  EXPECT_EQ(finished.result.ToString(), full.result.ToString());
}

// ---- Fault injection: identical anytime behavior ---------------------

TEST_P(SeededTest, InjectedFaultsStopBothPathsIdentically) {
  Rng rng(GetParam() + 400);
  Schema schema = PropSchema();
  for (int round = 0; round < 6; ++round) {
    ConjunctiveQuery q = RandomQuery(schema, rng.UniformInt(2, 4), 4, &rng);
    DependencySet sigma = RandomSigma(&rng);
    FaultSpec spec;
    spec.kind = FaultKind::kExhausted;
    spec.start = static_cast<uint64_t>(rng.UniformInt(1, 4));

    auto run = [&](const ChaseOptions& options)
        -> std::pair<Result<ChaseOutcome>, std::string> {
      Term::ResetFreshCounterForTesting();
      FaultInjector faults(7);  // fresh injector per run: same schedule
      faults.Arm(fault_sites::kChaseStep, spec);
      ChaseRuntime runtime;
      runtime.faults = &faults;
      std::optional<ChaseCheckpoint> checkpoint;
      runtime.checkpoint_out = &checkpoint;
      Result<ChaseOutcome> outcome =
          SoundChase(q, sigma, Semantics::kSet, schema, options, runtime);
      std::string serialized =
          checkpoint.has_value() ? checkpoint->Serialize() : "";
      return {std::move(outcome), std::move(serialized)};
    };
    auto [compiled, compiled_cp] = run(CompiledOptions());
    auto [generic, generic_cp] = run(GenericOptions());
    ExpectIdenticalOutcome(compiled, generic,
                           "faulted " + q.ToString() + " under " +
                               SigmaToString(sigma));
    // Trace-identity extends to the captured resume state.
    EXPECT_EQ(compiled_cp, generic_cp);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

}  // namespace
}  // namespace sqleq
