// Unit tests for the workload generator.
#include "db/generator.h"

#include <gtest/gtest.h>

#include "db/satisfaction.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::Unwrap;

Schema SmallSchema() {
  Schema s;
  s.Relation("p", 2).Relation("r", 1).Relation("s", 2, /*set_valued=*/true);
  return s;
}

TEST(GeneratorRandomQuery, ProducesSafeQueriesOverTheSchema) {
  Schema schema = SmallSchema();
  Rng rng(42);
  RandomQueryOptions options;
  options.atoms = 4;
  for (int i = 0; i < 50; ++i) {
    ConjunctiveQuery q = Unwrap(RandomQuery(schema, options, &rng));
    EXPECT_EQ(q.body().size(), 4u);
    for (const Atom& a : q.body()) {
      ASSERT_TRUE(schema.HasRelation(a.predicate()));
      EXPECT_EQ(schema.ArityOf(a.predicate()), a.arity());
    }
    EXPECT_FALSE(q.head().empty());
  }
}

TEST(GeneratorRandomQuery, RejectsBadInputs) {
  Rng rng(1);
  EXPECT_FALSE(RandomQuery(Schema(), RandomQueryOptions(), &rng).ok());
  RandomQueryOptions zero;
  zero.atoms = 0;
  EXPECT_FALSE(RandomQuery(SmallSchema(), zero, &rng).ok());
}

TEST(GeneratorRandomQuery, DeterministicForSeed) {
  Schema schema = SmallSchema();
  Rng a(7), b(7);
  RandomQueryOptions options;
  for (int i = 0; i < 10; ++i) {
    ConjunctiveQuery qa = Unwrap(RandomQuery(schema, options, &a));
    ConjunctiveQuery qb = Unwrap(RandomQuery(schema, options, &b));
    EXPECT_EQ(qa.ToString(), qb.ToString());
  }
}

TEST(GeneratorRandomDatabase, HonoursSetValuedFlags) {
  Schema schema = SmallSchema();
  Rng rng(3);
  RandomDatabaseOptions options;
  options.max_tuples_per_relation = 20;
  options.domain = 2;  // tight domain forces duplicate attempts
  options.max_multiplicity = 4;
  for (int i = 0; i < 20; ++i) {
    Database db = Unwrap(RandomDatabase(schema, options, &rng));
    RelationInstance s_rel = Unwrap(db.GetRelation("s"));
    EXPECT_TRUE(s_rel.IsSetValued());
  }
}

TEST(GeneratorRepair, FixesTgdViolations) {
  DependencySet sigma = testing::Sigma({"p(X, Y) -> r(X)."});
  Schema schema = SmallSchema();
  Database db(schema);
  db.Add("p", {1, 2}).Add("p", {3, 4});
  ASSERT_FALSE(Unwrap(Satisfies(db, sigma)));
  EXPECT_TRUE(Unwrap(RepairTowardSigma(&db, sigma, 5)));
  EXPECT_TRUE(Unwrap(Satisfies(db, sigma)));
}

TEST(GeneratorRepair, ExistentialHeadsGetFreshValues) {
  DependencySet sigma = testing::Sigma({"r(X) -> p(X, Z)."});
  Schema schema = SmallSchema();
  Database db(schema);
  db.Add("r", {1});
  EXPECT_TRUE(Unwrap(RepairTowardSigma(&db, sigma, 5)));
  RelationInstance p = Unwrap(db.GetRelation("p"));
  EXPECT_EQ(p.TotalSize(), 1u);
}

TEST(GeneratorRepair, CascadingTgdsConverge) {
  DependencySet sigma = testing::Sigma({
      "p(X, Y) -> s(X, Y).",
      "s(X, Y) -> r(X).",
  });
  Schema schema = SmallSchema();
  Database db(schema);
  db.Add("p", {1, 2});
  EXPECT_TRUE(Unwrap(RepairTowardSigma(&db, sigma, 5)));
}

TEST(GeneratorRepair, EgdViolationsReportedNotFixed) {
  DependencySet sigma = testing::Sigma({"s(X, Y), s(X, Z) -> Y = Z."});
  Schema schema;
  schema.Relation("s", 2);
  Database db(schema);
  db.Add("s", {1, 2}).Add("s", {1, 3});
  EXPECT_FALSE(Unwrap(RepairTowardSigma(&db, sigma, 5)));
}

TEST(GeneratorRepair, WeaklyAcyclicSigmaOfExample41Repairable) {
  Schema schema = testing::Example41Schema();
  DependencySet sigma = testing::Example41Sigma();
  Rng rng(11);
  int repaired = 0;
  for (int i = 0; i < 30; ++i) {
    RandomDatabaseOptions options;
    options.max_tuples_per_relation = 2;
    options.domain = 3;
    options.max_multiplicity = 2;
    Database db = Unwrap(RandomDatabase(schema, options, &rng));
    Result<bool> ok = RepairTowardSigma(&db, sigma, 10);
    ASSERT_TRUE(ok.ok());
    if (*ok) ++repaired;
  }
  EXPECT_GT(repaired, 0);
}

}  // namespace
}  // namespace sqleq
