// Unit/integration tests for the script engine behind sqleq_cli.
#include "shell/engine.h"

#include <gtest/gtest.h>

#include "util/fault.h"

namespace sqleq {
namespace shell {
namespace {

std::string Must(Result<std::string> r) {
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok()) std::abort();
  return std::move(r).value();
}

const char kSetup[] = R"(
  CREATE TABLE dept (id INT PRIMARY KEY, mgr INT);
  CREATE TABLE emp (id INT PRIMARY KEY, dept INT,
                    FOREIGN KEY (dept) REFERENCES dept (id));
  CREATE TABLE clicks (cid INT, page TEXT);
  INSERT INTO dept VALUES (10, 7), (11, 8);
  INSERT INTO emp VALUES (1, 10), (2, 11);
  INSERT INTO clicks VALUES (1, 'home');
  INSERT INTO clicks VALUES (1, 'home');
)";

TEST(ShellEngine, CreateAndInsert) {
  ScriptEngine engine;
  std::string out = Must(engine.Run(kSetup));
  EXPECT_NE(out.find("created table dept"), std::string::npos);
  EXPECT_NE(out.find("inserted 2 row(s) into emp"), std::string::npos);
  EXPECT_TRUE(engine.catalog().schema.HasRelation("emp"));
  EXPECT_EQ(engine.database().TotalSize(), 6u);
}

TEST(ShellEngine, CreateAfterInsertKeepsData) {
  ScriptEngine engine;
  Must(engine.Run("CREATE TABLE a (x INT); INSERT INTO a VALUES (1);"));
  Must(engine.Execute("CREATE TABLE b (y INT)"));
  RelationInstance a = std::move(engine.database().GetRelation("a")).value();
  EXPECT_EQ(a.TotalSize(), 1u);
}

TEST(ShellEngine, FailedInsertLeavesStateUnchanged) {
  ScriptEngine engine;
  Must(engine.Run("CREATE TABLE a (x INT PRIMARY KEY); INSERT INTO a VALUES (1);"));
  // Second row duplicates the key; the whole INSERT must be rolled back.
  Result<std::string> r = engine.Execute("INSERT INTO a VALUES (2), (1)");
  EXPECT_FALSE(r.ok());
  RelationInstance a = std::move(engine.database().GetRelation("a")).value();
  EXPECT_EQ(a.TotalSize(), 1u);
  EXPECT_FALSE(a.Contains(IntTuple({2})));
}

TEST(ShellEngine, QueryFromSqlDerivesSemantics) {
  ScriptEngine engine;
  Must(engine.Run(kSetup));
  Must(engine.Execute("QUERY q1 := SELECT id FROM emp"));
  Must(engine.Execute("QUERY q2 := SELECT cid FROM clicks"));
  Must(engine.Execute("QUERY q3 := SELECT DISTINCT cid FROM clicks"));
  EXPECT_EQ(std::move(engine.GetQuery("q1")).value().semantics, Semantics::kBagSet);
  EXPECT_EQ(std::move(engine.GetQuery("q2")).value().semantics, Semantics::kBag);
  EXPECT_EQ(std::move(engine.GetQuery("q3")).value().semantics, Semantics::kSet);
}

TEST(ShellEngine, QueryFromDatalog) {
  ScriptEngine engine;
  Must(engine.Run(kSetup));
  std::string out = Must(engine.Execute("QUERY qd(X) :- emp(X, D), clicks(X, P)"));
  EXPECT_NE(out.find("defined qd"), std::string::npos);
  // clicks is bag valued → bag semantics.
  EXPECT_EQ(std::move(engine.GetQuery("qd")).value().semantics, Semantics::kBag);
}

TEST(ShellEngine, EvalUsesRecordedSemantics) {
  ScriptEngine engine;
  Must(engine.Run(kSetup));
  Must(engine.Execute("QUERY q := SELECT cid FROM clicks"));
  std::string bag_out = Must(engine.Execute("EVAL q"));
  EXPECT_NE(bag_out.find("{{(1), (1)}}"), std::string::npos) << bag_out;
  std::string set_out = Must(engine.Execute("EVAL q UNDER S"));
  EXPECT_NE(set_out.find("{{(1)}}"), std::string::npos) << set_out;
}

TEST(ShellEngine, EquivUsesDdlSigma) {
  ScriptEngine engine;
  Must(engine.Run(kSetup));
  Must(engine.Execute(
      "QUERY a := SELECT e.id FROM emp e, dept d WHERE e.dept = d.id"));
  Must(engine.Execute("QUERY b := SELECT id FROM emp"));
  EXPECT_NE(Must(engine.Execute("EQUIV a b")).find("a == b"), std::string::npos);
  EXPECT_NE(Must(engine.Execute("EQUIV a b UNDER B")).find("a == b"),
            std::string::npos);
}

TEST(ShellEngine, DepAddsUserDependency) {
  ScriptEngine engine;
  Must(engine.Run("CREATE TABLE p (a INT, b INT); CREATE TABLE r (a INT);"));
  Must(engine.Execute("DEP p(X, Y) -> r(X)"));
  Must(engine.Execute("QUERY a(X) :- p(X, Y), r(X)"));
  Must(engine.Execute("QUERY b(X) :- p(X, Y)"));
  EXPECT_NE(Must(engine.Execute("EQUIV a b UNDER S")).find("a == b"),
            std::string::npos);
  // Under bag semantics r is bag valued: NOT equivalent.
  EXPECT_NE(Must(engine.Execute("EQUIV a b UNDER B")).find("a != b"),
            std::string::npos);
}

TEST(ShellEngine, ExplainProducesTraces) {
  ScriptEngine engine;
  Must(engine.Run(kSetup));
  Must(engine.Execute(
      "QUERY a := SELECT e.id FROM emp e, dept d WHERE e.dept = d.id"));
  Must(engine.Execute("QUERY b := SELECT id FROM emp"));
  std::string out = Must(engine.Execute("EXPLAIN a b"));
  EXPECT_NE(out.find("EQUIVALENT"), std::string::npos);
  EXPECT_NE(out.find("witness"), std::string::npos);
}

TEST(ShellEngine, MinimizeRendersSql) {
  ScriptEngine engine;
  Must(engine.Run(kSetup));
  Must(engine.Execute(
      "QUERY a := SELECT e.id FROM emp e, dept d WHERE e.dept = d.id"));
  std::string out = Must(engine.Execute("MINIMIZE a"));
  EXPECT_NE(out.find("SELECT t0.id FROM emp t0"), std::string::npos) << out;
}

TEST(ShellEngine, RewriteUsesRegisteredViews) {
  ScriptEngine engine;
  Must(engine.Run(kSetup));
  Must(engine.Execute("VIEW v_ed(E, M) :- emp(E, D), dept(D, M)"));
  Must(engine.Execute(
      "QUERY a := SELECT e.id, d.mgr FROM emp e, dept d WHERE e.dept = d.id"));
  std::string out = Must(engine.Execute("REWRITE a"));
  EXPECT_NE(out.find("v_ed"), std::string::npos) << out;
}

TEST(ShellEngine, RewriteWithoutViewsFails) {
  ScriptEngine engine;
  Must(engine.Run(kSetup));
  Must(engine.Execute("QUERY a := SELECT id FROM emp"));
  EXPECT_FALSE(engine.Execute("REWRITE a").ok());
}

TEST(ShellEngine, ShowCommands) {
  ScriptEngine engine;
  Must(engine.Run(kSetup));
  Must(engine.Execute("QUERY a := SELECT id FROM emp"));
  EXPECT_NE(Must(engine.Execute("SHOW SCHEMA")).find("emp"), std::string::npos);
  EXPECT_NE(Must(engine.Execute("SHOW SIGMA")).find("fk_emp_dept"),
            std::string::npos);
  EXPECT_NE(Must(engine.Execute("SHOW DATA")).find("clicks"), std::string::npos);
  EXPECT_NE(Must(engine.Execute("SHOW QUERIES")).find("a:"), std::string::npos);
  EXPECT_FALSE(engine.Execute("SHOW NONSENSE").ok());
}

TEST(ShellEngine, ErrorsForUnknownThings) {
  ScriptEngine engine;
  EXPECT_FALSE(engine.Execute("FROBNICATE x").ok());
  EXPECT_FALSE(engine.Execute("EVAL missing").ok());
  EXPECT_FALSE(engine.Execute("EQUIV a").ok());
  EXPECT_FALSE(engine.Execute("EQUIV a b UNDER XY").ok());
  EXPECT_FALSE(engine.Execute("QUERY q := SELECT x FROM missing").ok());
}

TEST(ShellEngine, EmptyStatementsIgnored) {
  ScriptEngine engine;
  EXPECT_EQ(Must(engine.Run(";;  ;")), "");
}

TEST(ShellEngine, Example41EntirelyThroughSql) {
  // The paper's Example 4.1 expressed as DDL + DEP statements: S and T get
  // their set-valuedness and keys from PRIMARY KEY clauses; the four tgds
  // arrive via DEP; the three semantics disagree exactly as in §4.1.
  shell::ScriptEngine engine;
  Result<std::string> out = engine.Run(R"(
    CREATE TABLE p (c0 INT, c1 INT);
    CREATE TABLE r (c0 INT);
    CREATE TABLE s (c0 INT PRIMARY KEY, c1 INT);
    CREATE TABLE t (c0 INT, c1 INT, c2 INT, PRIMARY KEY (c0, c1));
    CREATE TABLE u (c0 INT, c1 INT);
    DEP p(X, Y) -> s(X, Z), t(X, V, W);
    DEP p(X, Y) -> t(X, Y, W);
    DEP p(X, Y) -> r(X);
    DEP p(X, Y) -> u(X, Z), t(X, Y, W);
    QUERY q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U);
    QUERY q4(X) :- p(X, Y);
    EQUIV q1 q4 UNDER S;
    EQUIV q1 q4 UNDER BS;
    EQUIV q1 q4 UNDER B;
    MINIMIZE q1 UNDER B
  )");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // The key egds from the PRIMARY KEY clauses stand in for σ7/σ8.
  EXPECT_NE(out->find("q1 == q4  under S"), std::string::npos) << *out;
  EXPECT_NE(out->find("q1 != q4  under BS"), std::string::npos) << *out;
  EXPECT_NE(out->find("q1 != q4  under B"), std::string::npos) << *out;
  // Bag-C&B's Σ-minimal reformulation of q1 keeps p, r, u.
  EXPECT_NE(out->find("FROM p t0, r t1, u t2"), std::string::npos) << *out;
}

TEST(ShellEngine, QueryRedefinitionReplaces) {
  ScriptEngine engine;
  Must(engine.Run("CREATE TABLE p (a INT, b INT);"));
  Must(engine.Execute("QUERY q(X) :- p(X, Y)"));
  Must(engine.Execute("QUERY q(X, Y) :- p(X, Y)"));
  NamedQuery q = std::move(engine.GetQuery("q")).value();
  EXPECT_EQ(q.query.head().size(), 2u);
}

TEST(ShellEngine, SetThreadsAndBudget) {
  ScriptEngine engine;
  EXPECT_NE(Must(engine.Execute("SET THREADS 4")).find("4"), std::string::npos);
  EXPECT_EQ(engine.budget().threads, 4u);
  Must(engine.Execute("SET BUDGET 100 50"));
  EXPECT_EQ(engine.budget().max_chase_steps, 100u);
  EXPECT_EQ(engine.budget().max_candidates, 50u);
  EXPECT_EQ(engine.budget().threads, 4u);  // SET BUDGET leaves threads alone
  std::string shown = Must(engine.Execute("SHOW BUDGET"));
  EXPECT_NE(shown.find("steps=100"), std::string::npos) << shown;
  EXPECT_NE(shown.find("candidates=50"), std::string::npos) << shown;
  EXPECT_NE(shown.find("threads=4"), std::string::npos) << shown;
}

TEST(ShellEngine, SetRejectsBadArguments) {
  ScriptEngine engine;
  EXPECT_FALSE(engine.Execute("SET THREADS 0").ok());
  EXPECT_FALSE(engine.Execute("SET THREADS many").ok());
  EXPECT_FALSE(engine.Execute("SET THREADS -2").ok());
  EXPECT_FALSE(engine.Execute("SET BUDGET 100").ok());
  EXPECT_FALSE(engine.Execute("SET BUDGET 0 10").ok());
  EXPECT_FALSE(engine.Execute("SET BUDGET 10 0").ok());
  EXPECT_FALSE(engine.Execute("SET BUDGET -5 10").ok());
  EXPECT_FALSE(engine.Execute("SET GIZMO 3").ok());
  // A count bigger than size_t is rejected as overflow, not wrapped.
  Result<std::string> overflow =
      engine.Execute("SET BUDGET 99999999999999999999999999 10");
  ASSERT_FALSE(overflow.ok());
  EXPECT_NE(overflow.status().message().find("overflows"), std::string::npos)
      << overflow.status().ToString();
  // Failed SETs leave the budget at its defaults.
  EXPECT_EQ(engine.budget().threads, ResourceBudget{}.threads);
  EXPECT_EQ(engine.budget().max_chase_steps, ResourceBudget{}.max_chase_steps);
}

TEST(ShellEngine, SetRetryConfiguresAndValidatesThePolicy) {
  ScriptEngine engine;
  EXPECT_FALSE(engine.retry().has_value());
  std::string on = Must(engine.Execute("SET RETRY 4 3.5"));
  EXPECT_NE(on.find("4 attempt"), std::string::npos) << on;
  ASSERT_TRUE(engine.retry().has_value());
  EXPECT_EQ(engine.retry()->max_attempts, 4u);
  EXPECT_DOUBLE_EQ(engine.retry()->growth, 3.5);
  std::string shown = Must(engine.Execute("SHOW BUDGET"));
  EXPECT_NE(shown.find("retry"), std::string::npos) << shown;

  EXPECT_FALSE(engine.Execute("SET RETRY 0").ok());
  EXPECT_FALSE(engine.Execute("SET RETRY two").ok());
  EXPECT_FALSE(engine.Execute("SET RETRY 3 0.5").ok());
  EXPECT_FALSE(engine.Execute("SET RETRY 3 fast").ok());
  // Failed SETs leave the policy untouched.
  ASSERT_TRUE(engine.retry().has_value());
  EXPECT_EQ(engine.retry()->max_attempts, 4u);

  Must(engine.Execute("SET RETRY OFF"));
  EXPECT_FALSE(engine.retry().has_value());
}

TEST(ShellEngine, RetryFinishesWhatTheBaseBudgetCannot) {
  ScriptEngine engine;
  Must(engine.Run(R"(
    CREATE TABLE p (a INT, b INT);
    QUERY q(X) :- p(X, Y1), p(X, Y2);
  )"));
  Must(engine.Execute("SET BUDGET 5000 1"));
  // Without retries: a partial result.
  EXPECT_NE(Must(engine.Execute("MINIMIZE q UNDER S")).find("(incomplete:"),
            std::string::npos);
  // With an escalating retry policy the same statement finishes.
  Must(engine.Execute("SET RETRY 4 4"));
  std::string out = Must(engine.Execute("MINIMIZE q UNDER S"));
  EXPECT_EQ(out.find("(incomplete:"), std::string::npos) << out;
  EXPECT_NE(out.find("FROM p"), std::string::npos) << out;
}

TEST(ShellEngine, CancellationAnnotatesEquivAsUnknown) {
  ScriptEngine engine;
  CancellationToken cancel;
  cancel.Cancel();
  engine.set_cancellation(&cancel);
  Must(engine.Run(R"(
    CREATE TABLE p (a INT, b INT);
    QUERY q1(X) :- p(X, Y);
    QUERY q2(X) :- p(X, Y);
  )"));
  std::string out = Must(engine.Execute("EQUIV q1 q2 UNDER S"));
  EXPECT_NE(out.find("??"), std::string::npos) << out;
  EXPECT_NE(out.find("(incomplete: cancelled"), std::string::npos) << out;
  // Clearing the token restores decided verdicts.
  cancel.Reset();
  std::string decided = Must(engine.Execute("EQUIV q1 q2 UNDER S"));
  EXPECT_EQ(decided.find("??"), std::string::npos) << decided;
}

TEST(ShellEngine, BudgetFlowsIntoMinimize) {
  ScriptEngine engine;
  Must(engine.Run(R"(
    CREATE TABLE p (a INT, b INT);
    QUERY q(X) :- p(X, Y1), p(X, Y2);
  )"));
  // A 1-candidate budget cannot finish the 2-atom lattice: the statement
  // still succeeds, reporting a partial result (anytime contract).
  Must(engine.Execute("SET BUDGET 5000 1"));
  std::string partial = Must(engine.Execute("MINIMIZE q UNDER S"));
  EXPECT_NE(partial.find("(incomplete:"), std::string::npos) << partial;
  EXPECT_NE(partial.find("max_candidates"), std::string::npos) << partial;
  // Restoring a roomy budget makes the same MINIMIZE finish.
  Must(engine.Execute("SET BUDGET 5000 1000"));
  EXPECT_NE(Must(engine.Execute("MINIMIZE q UNDER S")).find("FROM p"),
            std::string::npos);
}

}  // namespace
}  // namespace shell
}  // namespace sqleq
