// Catalogue-sync test: docs/diagnostics.md and the code stay in lockstep.
//
// 1. Every code KnownDiagnosticCodes() declares has a `### `code` (sev)`
//    entry in the catalogue, and every catalogue entry names a known code.
// 2. Every catalogue entry has a triggering fixture: either a fenced shell
//    snippet right in its docs section (linted here, expected to emit the
//    code at the documented severity), or an API-level fixture in this file
//    for the codes the docs explain cannot fire from script text alone.
//
// Adding an Emit call with a new code therefore fails this test until the
// code is registered in KnownDiagnosticCodes(), documented with a trigger,
// and (if the trigger is not a script snippet) given a fixture below.
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "shell/lint.h"
#include "test_util.h"

#ifndef SQLEQ_DIAGNOSTICS_MD
#error "SQLEQ_DIAGNOSTICS_MD must point at docs/diagnostics.md"
#endif

namespace sqleq {
namespace {

struct CatalogueEntry {
  std::string severity;  // "error" / "warning" / "info"
  std::string snippet;   // first fenced block of the section, "" if none
};

/// Parses docs/diagnostics.md: each `### `code` (severity)` heading opens a
/// section; the first fenced ``` block before the next heading is the
/// section's trigger snippet.
std::map<std::string, CatalogueEntry> ParseCatalogue(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::map<std::string, CatalogueEntry> entries;
  std::string current;  // code of the open section, "" outside sections
  bool in_fence = false;
  bool fence_captured = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("```", 0) == 0) {
      if (!in_fence) {
        in_fence = true;
      } else {
        in_fence = false;
        if (!current.empty()) fence_captured = true;
      }
      continue;
    }
    if (in_fence) {
      if (!current.empty() && !fence_captured) {
        entries[current].snippet += line + "\n";
      }
      continue;
    }
    if (line.rfind("### `", 0) == 0) {
      size_t close = line.find('`', 5);
      size_t open_paren = line.find('(', close);
      size_t close_paren = line.find(')', close);
      if (close == std::string::npos || open_paren == std::string::npos ||
          close_paren == std::string::npos) {
        ADD_FAILURE() << "malformed catalogue heading: " << line;
        current.clear();
        continue;
      }
      current = line.substr(5, close - 5);
      fence_captured = false;
      entries[current].severity =
          line.substr(open_paren + 1, close_paren - open_paren - 1);
      continue;
    }
    if (line.rfind("## ", 0) == 0) current.clear();  // new chapter
  }
  return entries;
}

const std::map<std::string, CatalogueEntry>& Catalogue() {
  static const auto* entries =
      new std::map<std::string, CatalogueEntry>(ParseCatalogue(SQLEQ_DIAGNOSTICS_MD));
  return *entries;
}

bool HasCodeAtSeverity(const AnalysisReport& report, const std::string& code,
                       const std::string& severity) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == code && SeverityToString(d.severity) == severity) return true;
  }
  return false;
}

TEST(DiagnosticsCatalogue, EveryKnownCodeIsDocumented) {
  for (const std::string& code : KnownDiagnosticCodes()) {
    EXPECT_TRUE(Catalogue().count(code))
        << "code '" << code
        << "' (KnownDiagnosticCodes) has no catalogue entry in docs/diagnostics.md";
  }
}

TEST(DiagnosticsCatalogue, EveryDocumentedCodeIsKnown) {
  std::set<std::string> known(KnownDiagnosticCodes().begin(),
                              KnownDiagnosticCodes().end());
  for (const auto& [code, entry] : Catalogue()) {
    EXPECT_TRUE(known.count(code))
        << "docs/diagnostics.md documents '" << code
        << "', which KnownDiagnosticCodes() does not declare";
  }
}

// The codes whose docs sections explain why no script snippet can trigger
// them; each has an API-level fixture test below instead.
const std::set<std::string>& ApiOnlyCodes() {
  static const std::set<std::string> codes = {"query-empty-body",
                                              "analysis-incomplete"};
  return codes;
}

TEST(DiagnosticsCatalogue, EveryEntryHasATriggeringFixture) {
  for (const auto& [code, entry] : Catalogue()) {
    if (ApiOnlyCodes().count(code)) {
      EXPECT_TRUE(entry.snippet.empty())
          << "'" << code << "' gained a docs snippet; drop it from ApiOnlyCodes";
      continue;
    }
    EXPECT_FALSE(entry.snippet.empty())
        << "catalogue entry '" << code
        << "' has no triggering snippet (and no API fixture registered here)";
  }
}

TEST(DiagnosticsCatalogue, SnippetsTriggerTheirCodeAtTheDocumentedSeverity) {
  for (const auto& [code, entry] : Catalogue()) {
    if (entry.snippet.empty()) continue;
    shell::LintResult result =
        shell::LintScript(entry.snippet, AnalyzeOptions::Full());
    EXPECT_TRUE(HasCodeAtSeverity(result.report, code, entry.severity))
        << "docs snippet for '" << code << "' (" << entry.severity
        << ") does not trigger it; lint said:\n"
        << result.report.ToString();
  }
}

TEST(DiagnosticsCatalogue, ApiFixtureQueryEmptyBody) {
  ConjunctiveQuery q = testing::Q("Q(X) :- p(X).").WithBody({});
  AnalysisReport report = AnalyzeQuery(Schema(), q);
  EXPECT_TRUE(HasCodeAtSeverity(report, "query-empty-body",
                                Catalogue().at("query-empty-body").severity));
}

TEST(DiagnosticsCatalogue, ApiFixtureAnalysisIncomplete) {
  AnalyzeOptions opts = AnalyzeOptions::Full();
  opts.budget.max_chase_steps = 1;
  DependencySet sigma = testing::Sigma({
      "p(X, Y) -> q(X, Z).",
      "q(X, Y) -> r(X, W).",
      "r(X, Y) -> t(X, V).",
      "p(X, Y), t(X, W) -> u(X).",
  });
  AnalysisReport report = AnalyzeDependencies(Schema(), sigma, opts);
  EXPECT_TRUE(HasCodeAtSeverity(report, "analysis-incomplete",
                                Catalogue().at("analysis-incomplete").severity));
}

}  // namespace
}  // namespace sqleq
