// Unit tests for the Chase & Backchase family (Appendix A; Theorems A.1,
// 6.4, K.1, K.2) — soundness checked against the Σ-equivalence tests, and
// completeness on the paper's Example 4.1 instance.
#include "reformulation/candb.h"

#include <gtest/gtest.h>

#include "equivalence/aggregate_equivalence.h"
#include "equivalence/isomorphism.h"
#include "equivalence/sigma_equivalence.h"
#include "reformulation/aggregate_candb.h"
#include "reformulation/bag_candb.h"
#include "reformulation/minimize.h"
#include "test_util.h"

namespace sqleq {
namespace {

using testing::AQ;
using testing::EngineEquivalent;
using testing::Example41Schema;
using testing::Example41Sigma;
using testing::Q;
using testing::Sigma;
using testing::Unwrap;

TEST(CandB, SetSemanticsFindsMinimalReformulation) {
  // C&B on Q1 of Example 4.1 under set semantics: the Σ-minimal
  // reformulation is Q4.
  ConjunctiveQuery q1 =
      Q("Q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U).");
  CandBResult result = Unwrap(SetCandB(q1, Example41Sigma()));
  ASSERT_EQ(result.reformulations.size(), 1u);
  EXPECT_TRUE(AreIsomorphic(result.reformulations[0], Q("Q4(X) :- p(X, Y).")));
  EXPECT_EQ(result.universal_plan.body().size(), 5u);
}

TEST(CandB, BagSemanticsExample41) {
  // Bag-C&B on Q1: the Σ-minimal bag reformulation keeps r and u (which
  // sound bag chase cannot re-derive) and drops t and s (which it can).
  ConjunctiveQuery q1 =
      Q("Q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U).");
  CandBResult result = Unwrap(BagCandB(q1, Example41Sigma(), Example41Schema()));
  ASSERT_EQ(result.reformulations.size(), 1u);
  EXPECT_TRUE(AreIsomorphic(result.reformulations[0],
                            Q("E(X) :- p(X, Y), r(X), u(X, U).")));
}

TEST(CandB, BagSetSemanticsExample41) {
  // Bag-Set-C&B on Q1: r is re-derivable under BS, u is not.
  ConjunctiveQuery q1 =
      Q("Q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U).");
  CandBResult result = Unwrap(BagSetCandB(q1, Example41Sigma(), Example41Schema()));
  ASSERT_EQ(result.reformulations.size(), 1u);
  EXPECT_TRUE(
      AreIsomorphic(result.reformulations[0], Q("E(X) :- p(X, Y), u(X, U).")));
}

TEST(CandB, OutputsAreEquivalentToInput) {
  // Soundness: every output is ≡Σ,X to the input, for all three semantics.
  ConjunctiveQuery q1 =
      Q("Q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U).");
  for (Semantics sem : {Semantics::kSet, Semantics::kBag, Semantics::kBagSet}) {
    CandBResult result = Unwrap(
        ChaseAndBackchase(q1, Example41Sigma(), sem, Example41Schema()));
    for (const ConjunctiveQuery& reform : result.reformulations) {
      EXPECT_TRUE(Unwrap(EngineEquivalent(reform, q1, Example41Sigma(), sem,
                                          Example41Schema())))
          << SemanticsToString(sem) << ": " << reform.ToString();
    }
  }
}

TEST(CandB, OutputsAreSigmaMinimal) {
  ConjunctiveQuery q1 =
      Q("Q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U).");
  for (Semantics sem : {Semantics::kSet, Semantics::kBag, Semantics::kBagSet}) {
    CandBResult result = Unwrap(
        ChaseAndBackchase(q1, Example41Sigma(), sem, Example41Schema()));
    for (const ConjunctiveQuery& reform : result.reformulations) {
      EXPECT_TRUE(Unwrap(IsSigmaMinimal(reform, Example41Sigma(), sem,
                                        Example41Schema())))
          << SemanticsToString(sem) << ": " << reform.ToString();
    }
  }
}

TEST(CandB, NoDependenciesReducesToMinimization) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), p(X, Z).");
  CandBResult result = Unwrap(SetCandB(q, {}));
  ASSERT_EQ(result.reformulations.size(), 1u);
  EXPECT_EQ(result.reformulations[0].body().size(), 1u);
}

TEST(CandB, VerifySigmaMinimalityFlag) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), p(X, Z).");
  CandBOptions options;
  options.verify_sigma_minimality = true;
  CandBResult result =
      Unwrap(ChaseAndBackchase(q, {}, Semantics::kSet, Schema(), options));
  ASSERT_EQ(result.reformulations.size(), 1u);
}

TEST(CandB, MultipleIncomparableReformulations) {
  // Two symmetric inclusion dependencies a ⇄ b: both Q(X):-a(X) and
  // Q(X):-b(X) are Σ-minimal reformulations of Q(X):-a(X),b(X).
  DependencySet sigma = Sigma({"a(X) -> b(X).", "b(X) -> a(X)."});
  ConjunctiveQuery q = Q("Q(X) :- a(X), b(X).");
  CandBResult result = Unwrap(SetCandB(q, sigma));
  ASSERT_EQ(result.reformulations.size(), 2u);
}

TEST(CandB, CandidatesExaminedCounted) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");
  CandBResult result = Unwrap(SetCandB(q, {}));
  EXPECT_GE(result.candidates_examined, 1u);
}

TEST(CandB, FailedChaseReported) {
  DependencySet sigma = Sigma({"s(A, B), s(A, C) -> B = C."});
  ConjunctiveQuery q = Q("Q(X) :- s(X, 4), s(X, 5).");
  Result<CandBResult> result = SetCandB(q, sigma);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CandB, CompletenessAgainstBruteForceLattice) {
  // Meta-test of Thm 6.4/A.1 completeness: enumerate EVERY subquery of the
  // universal plan directly, decide equivalence with the independent
  // Σ-equivalence test, and check that C&B's outputs are exactly the minimal
  // equivalent subqueries (up to isomorphism).
  ConjunctiveQuery q1 =
      Q("Q1(X) :- p(X, Y), t(X, Y, W), s(X, Z), r(X), u(X, U).");
  DependencySet sigma = Example41Sigma();
  Schema schema = Example41Schema();
  for (Semantics sem : {Semantics::kSet, Semantics::kBag, Semantics::kBagSet}) {
    CandBResult result =
        Unwrap(ChaseAndBackchase(q1, sigma, sem, schema));
    const ConjunctiveQuery& u = result.universal_plan;
    size_t n = u.body().size();
    ASSERT_LT(n, 16u);
    // Brute force: all equivalent subqueries, by mask.
    std::vector<uint64_t> equivalent_masks;
    for (uint64_t mask = 1; mask < (uint64_t(1) << n); ++mask) {
      std::vector<Atom> body;
      for (size_t i = 0; i < n; ++i) {
        if ((mask >> i) & 1) body.push_back(u.body()[i]);
      }
      Result<ConjunctiveQuery> candidate =
          ConjunctiveQuery::Create("C", u.head(), std::move(body));
      if (!candidate.ok()) continue;
      if (Unwrap(EngineEquivalent(*candidate, q1, sigma, sem, schema))) {
        equivalent_masks.push_back(mask);
      }
    }
    // Minimal elements of the brute-force set.
    std::vector<uint64_t> minimal;
    for (uint64_t m : equivalent_masks) {
      bool is_minimal = true;
      for (uint64_t other : equivalent_masks) {
        if (other != m && (m & other) == other) {
          is_minimal = false;
          break;
        }
      }
      if (is_minimal) minimal.push_back(m);
    }
    // Every brute-force minimal subquery must be isomorphic to some C&B
    // output, and vice versa (as sets up to isomorphism).
    for (uint64_t m : minimal) {
      std::vector<Atom> body;
      for (size_t i = 0; i < n; ++i) {
        if ((m >> i) & 1) body.push_back(u.body()[i]);
      }
      ConjunctiveQuery reference = ConjunctiveQuery::Make("C", u.head(), body);
      bool found = false;
      for (const ConjunctiveQuery& out : result.reformulations) {
        if (AreIsomorphic(out, reference)) found = true;
      }
      EXPECT_TRUE(found) << SemanticsToString(sem) << ": brute-force minimal "
                         << reference.ToString() << " missing from C&B outputs";
    }
    for (const ConjunctiveQuery& out : result.reformulations) {
      bool found = false;
      for (uint64_t m : minimal) {
        std::vector<Atom> body;
        for (size_t i = 0; i < n; ++i) {
          if ((m >> i) & 1) body.push_back(u.body()[i]);
        }
        if (AreIsomorphic(out, ConjunctiveQuery::Make("C", u.head(), body))) {
          found = true;
        }
      }
      EXPECT_TRUE(found) << SemanticsToString(sem) << ": C&B output "
                         << out.ToString() << " not brute-force minimal";
    }
  }
}

TEST(AggregateCandBTest, SumDropsKeyedJoin) {
  // Sum-Count-C&B: the dept join is removable thanks to the key fd.
  DependencySet sigma = Sigma({
      "emp(E, D) -> dept(D, M).",
      "dept(D, M1), dept(D, M2) -> M1 = M2.",
  });
  Schema schema;
  schema.Relation("emp", 2).Relation("dept", 2).Relation("sal", 2);
  AggregateQuery q = AQ("A(E, sum(S)) :- sal(E, S), emp(E, D), dept(D, M).");
  AggregateCandBResult result = Unwrap(AggregateCandB(q, sigma, schema));
  ASSERT_EQ(result.reformulations.size(), 1u);
  EXPECT_EQ(result.reformulations[0].body().size(), 2u);
  EXPECT_EQ(result.reformulations[0].function(), AggregateFunction::kSum);
  // The output is Σ-equivalent to the input (Thm K.2).
  EXPECT_TRUE(Unwrap(AggregateEquivalentUnder(result.reformulations[0], q, sigma)));
}

TEST(AggregateCandBTest, SumKeepsUnkeyedJoin) {
  // Without the key fd the join multiplies sums: the only Σ-minimal
  // reformulation keeps all three atoms.
  DependencySet sigma = Sigma({"emp(E, D) -> dept(D, M)."});
  Schema schema;
  schema.Relation("emp", 2).Relation("dept", 2).Relation("sal", 2);
  AggregateQuery q = AQ("A(E, sum(S)) :- sal(E, S), emp(E, D), dept(D, M).");
  AggregateCandBResult result = Unwrap(AggregateCandB(q, sigma, schema));
  ASSERT_EQ(result.reformulations.size(), 1u);
  EXPECT_EQ(result.reformulations[0].body().size(), 3u);
}

TEST(AggregateCandBTest, MaxDropsUnkeyedJoin) {
  // Max-Min-C&B needs only set equivalence: the join goes even without the
  // key fd (Thm 6.3(1)).
  DependencySet sigma = Sigma({"emp(E, D) -> dept(D, M)."});
  Schema schema;
  schema.Relation("emp", 2).Relation("dept", 2).Relation("sal", 2);
  AggregateQuery q = AQ("A(E, max(S)) :- sal(E, S), emp(E, D), dept(D, M).");
  AggregateCandBResult result = Unwrap(AggregateCandB(q, sigma, schema));
  ASSERT_EQ(result.reformulations.size(), 1u);
  EXPECT_EQ(result.reformulations[0].body().size(), 2u);
  EXPECT_EQ(result.reformulations[0].function(), AggregateFunction::kMax);
}

TEST(AggregateCandBTest, CountStarSupported) {
  DependencySet sigma = Sigma({
      "emp(E, D) -> dept(D, M).",
      "dept(D, M1), dept(D, M2) -> M1 = M2.",
  });
  Schema schema;
  schema.Relation("emp", 2).Relation("dept", 2);
  AggregateQuery q = AQ("A(E, count(*)) :- emp(E, D), dept(D, M).");
  AggregateCandBResult result = Unwrap(AggregateCandB(q, sigma, schema));
  ASSERT_EQ(result.reformulations.size(), 1u);
  EXPECT_EQ(result.reformulations[0].body().size(), 1u);
  EXPECT_EQ(result.reformulations[0].function(), AggregateFunction::kCountStar);
}

}  // namespace
}  // namespace sqleq
