// Unit tests for single chase steps with tgds and egds (§2.4).
#include "chase/chase_step.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sqleq {
namespace {

using testing::Q;
using testing::Sigma;

TEST(TgdStep, ApplicableWhenHeadMissing) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");
  DependencySet sigma = Sigma({"p(X, Y) -> r(X)."});
  std::optional<TermMap> h = FindApplicableTgdHomomorphism(q, sigma[0].tgd());
  ASSERT_TRUE(h.has_value());
  ConjunctiveQuery q2 = ApplyTgdStep(q, sigma[0].tgd(), *h);
  ASSERT_EQ(q2.body().size(), 2u);
  EXPECT_EQ(q2.body()[1].ToString(), "r(X)");
}

TEST(TgdStep, NotApplicableWhenHeadPresent) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), r(X).");
  DependencySet sigma = Sigma({"p(X, Y) -> r(X)."});
  EXPECT_FALSE(FindApplicableTgdHomomorphism(q, sigma[0].tgd()).has_value());
  EXPECT_FALSE(IsApplicable(q, sigma[0]));
}

TEST(TgdStep, ExistentialsFreshlyRenamed) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Z).");  // query already uses Z
  DependencySet sigma = Sigma({"p(X, Y) -> s(X, Z)."});
  std::optional<TermMap> h = FindApplicableTgdHomomorphism(q, sigma[0].tgd());
  ASSERT_TRUE(h.has_value());
  ConjunctiveQuery q2 = ApplyTgdStep(q, sigma[0].tgd(), *h);
  ASSERT_EQ(q2.body().size(), 2u);
  // The fresh existential must not capture the query's Z.
  EXPECT_NE(q2.body()[1].args()[1], Term::Var("Z"));
  EXPECT_TRUE(q2.body()[1].args()[1].IsVariable());
}

TEST(TgdStep, ExtendableHomomorphismNotApplicable) {
  // The restricted chase: h extends to the head via existing atoms.
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), s(X, W).");
  DependencySet sigma = Sigma({"p(X, Y) -> s(X, Z)."});
  EXPECT_FALSE(FindApplicableTgdHomomorphism(q, sigma[0].tgd()).has_value());
}

TEST(TgdStep, MultipleApplicableHomomorphisms) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y), p(Y, X).");
  DependencySet sigma = Sigma({"p(A, B) -> r(A)."});
  std::vector<TermMap> hs = FindApplicableTgdHomomorphisms(q, sigma[0].tgd());
  EXPECT_EQ(hs.size(), 2u);  // A→X and A→Y
}

TEST(TgdStep, InstantiateTgdHeadReportsFreshMap) {
  DependencySet sigma = Sigma({"p(X, Y) -> s(X, Z), t(Z, W)."});
  TermMap h{{Term::Var("X"), Term::Var("QX")}, {Term::Var("Y"), Term::Var("QY")}};
  TermMap fresh;
  std::vector<Atom> atoms = InstantiateTgdHead(sigma[0].tgd(), h, &fresh);
  ASSERT_EQ(atoms.size(), 2u);
  ASSERT_EQ(fresh.size(), 2u);
  // Shared existential Z instantiates to the same fresh variable in both.
  EXPECT_EQ(atoms[0].args()[1], atoms[1].args()[0]);
  EXPECT_EQ(atoms[0].args()[0], Term::Var("QX"));
}

TEST(EgdStep, AppliesAndSubstitutes) {
  ConjunctiveQuery q = Q("Q(X) :- s(X, Y), s(X, Z), r(Y).");
  DependencySet sigma = Sigma({"s(A, B), s(A, C) -> B = C."});
  std::optional<EgdApplication> app = FindEgdApplication(q, sigma[0].egd());
  ASSERT_TRUE(app.has_value());
  EXPECT_FALSE(app->failure);
  ConjunctiveQuery q2 = ApplyEgdStep(q, *app);
  // Y and Z unified: both s-atoms become equal, r follows the survivor.
  EXPECT_EQ(q2.body()[0], q2.body()[1]);
}

TEST(EgdStep, NotApplicableWhenSatisfied) {
  ConjunctiveQuery q = Q("Q(X) :- s(X, Y), r(Y).");
  DependencySet sigma = Sigma({"s(A, B), s(A, C) -> B = C."});
  // Only one s-atom: every h maps B and C to the same Y.
  EXPECT_FALSE(FindEgdApplication(q, sigma[0].egd()).has_value());
}

TEST(EgdStep, SubstitutesIntoHead) {
  ConjunctiveQuery q = Q("Q(Y, Z) :- s(X, Y), s(X, Z).");
  DependencySet sigma = Sigma({"s(A, B), s(A, C) -> B = C."});
  std::optional<EgdApplication> app = FindEgdApplication(q, sigma[0].egd());
  ASSERT_TRUE(app.has_value());
  ConjunctiveQuery q2 = ApplyEgdStep(q, *app);
  EXPECT_EQ(q2.head()[0], q2.head()[1]);
}

TEST(EgdStep, ConstantWinsAsReplacement) {
  ConjunctiveQuery q = Q("Q(X) :- s(X, Y), s(X, 5).");
  DependencySet sigma = Sigma({"s(A, B), s(A, C) -> B = C."});
  std::optional<EgdApplication> app = FindEgdApplication(q, sigma[0].egd());
  ASSERT_TRUE(app.has_value());
  EXPECT_FALSE(app->failure);
  EXPECT_TRUE(app->from.IsVariable());
  EXPECT_EQ(app->to, Term::Int(5));
  ConjunctiveQuery q2 = ApplyEgdStep(q, *app);
  for (const Atom& a : q2.body()) EXPECT_EQ(a.args()[1], Term::Int(5));
}

TEST(EgdStep, TwoDistinctConstantsIsFailure) {
  ConjunctiveQuery q = Q("Q(X) :- s(X, 4), s(X, 5).");
  DependencySet sigma = Sigma({"s(A, B), s(A, C) -> B = C."});
  std::optional<EgdApplication> app = FindEgdApplication(q, sigma[0].egd());
  ASSERT_TRUE(app.has_value());
  EXPECT_TRUE(app->failure);
}

TEST(EgdStep, PrefersNonFailingApplication) {
  // One h fails (4 vs 5) but another succeeds (Y vs 4): the non-failing
  // application must be preferred.
  ConjunctiveQuery q = Q("Q(X) :- s(X, 4), s(X, 5), s(X, Y).");
  DependencySet sigma = Sigma({"s(A, B), s(A, C) -> B = C."});
  std::optional<EgdApplication> app = FindEgdApplication(q, sigma[0].egd());
  ASSERT_TRUE(app.has_value());
  EXPECT_FALSE(app->failure);
}

TEST(IsApplicableTest, DispatchesOnKind) {
  ConjunctiveQuery q = Q("Q(X) :- p(X, Y).");
  DependencySet sigma = Sigma({
      "p(X, Y) -> r(X).",
      "p(A, B), p(A, C) -> B = C.",
  });
  EXPECT_TRUE(IsApplicable(q, sigma[0]));
  EXPECT_FALSE(IsApplicable(q, sigma[1]));
}

}  // namespace
}  // namespace sqleq
