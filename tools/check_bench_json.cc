// check_bench_json: validates the BENCH_<name>.json files the benchmark
// driver (bench/bench_main.cc) emits against the Google Benchmark JSON
// shape the downstream tooling depends on:
//
//   { "context":   { object with "date" and "library_build_type" },
//     "benchmarks": [ { "name": string, "iterations": number,
//                       "real_time": number, "cpu_time": number,
//                       "time_unit": string }, ... ] }
//
// A benchmark entry carrying "error_occurred": true fails validation (its
// message is printed). `tools/ci.sh bench-smoke` runs this over every file
// a smoke run produced.
//
//   check_bench_json BENCH_candb.json [more.json ...]
//
// Exit status: 0 when every file validates, 1 when any fails, 2 on usage/IO
// problems.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.h"

namespace {

using sqleq::JsonValue;

/// Appends "file: problem" to `problems`; returns false for use as a check.
bool Fail(std::vector<std::string>* problems, const std::string& file,
          const std::string& problem) {
  problems->push_back(file + ": " + problem);
  return false;
}

bool ValidateEntry(const JsonValue& entry, size_t index, const std::string& file,
                   std::vector<std::string>* problems) {
  std::string where = "benchmarks[" + std::to_string(index) + "]";
  if (!entry.is_object()) return Fail(problems, file, where + " is not an object");
  const JsonValue* name = entry.Find("name");
  if (name == nullptr || !name->is_string() || name->string.empty()) {
    return Fail(problems, file, where + " missing string \"name\"");
  }
  where += " (" + name->string + ")";
  const JsonValue* error = entry.Find("error_occurred");
  if (error != nullptr && error->kind == JsonValue::Kind::kBool && error->boolean) {
    const JsonValue* message = entry.Find("error_message");
    return Fail(problems, file,
                where + " reported an error: " +
                    (message != nullptr && message->is_string() ? message->string
                                                                : "(no message)"));
  }
  // Aggregate rows (mean/median/stddev) carry the same numeric fields, so
  // one shape check covers both run types.
  for (const char* field : {"iterations", "real_time", "cpu_time"}) {
    const JsonValue* v = entry.Find(field);
    if (v == nullptr || !v->is_number()) {
      return Fail(problems, file,
                  where + " missing numeric \"" + field + "\"");
    }
    if (v->number < 0) {
      return Fail(problems, file, where + " has negative \"" + field + "\"");
    }
  }
  const JsonValue* unit = entry.Find("time_unit");
  if (unit == nullptr || !unit->is_string() || unit->string.empty()) {
    return Fail(problems, file, where + " missing string \"time_unit\"");
  }
  return true;
}

bool ValidateFile(const std::string& file, const std::string& text,
                  std::vector<std::string>* problems) {
  sqleq::Result<JsonValue> parsed = sqleq::ParseJson(text);
  if (!parsed.ok()) {
    return Fail(problems, file, "not valid JSON: " + parsed.status().ToString());
  }
  if (!parsed->is_object()) return Fail(problems, file, "top level is not an object");
  const JsonValue* context = parsed->Find("context");
  if (context == nullptr || !context->is_object()) {
    return Fail(problems, file, "missing object \"context\"");
  }
  for (const char* field : {"date", "library_build_type"}) {
    const JsonValue* v = context->Find(field);
    if (v == nullptr || !v->is_string()) {
      return Fail(problems, file,
                  std::string("context missing string \"") + field + "\"");
    }
  }
  const JsonValue* benchmarks = parsed->Find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) {
    return Fail(problems, file, "missing array \"benchmarks\"");
  }
  if (benchmarks->array.empty()) {
    return Fail(problems, file, "\"benchmarks\" is empty (no benchmark ran)");
  }
  bool ok = true;
  for (size_t i = 0; i < benchmarks->array.size(); ++i) {
    ok = ValidateEntry(benchmarks->array[i], i, file, problems) && ok;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <BENCH_*.json> [more.json ...]\n", argv[0]);
    return 2;
  }
  std::vector<std::string> problems;
  int checked = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    ValidateFile(argv[i], buffer.str(), &problems);
    ++checked;
  }
  for (const std::string& problem : problems) {
    std::fprintf(stderr, "check_bench_json: %s\n", problem.c_str());
  }
  if (problems.empty()) {
    std::printf("check_bench_json: %d file(s) ok\n", checked);
    return 0;
  }
  return 1;
}
