// sqleq-fleet — launcher/supervisor for a sharded sqleqd fleet
// (docs/fleet.md). Picks N loopback ports, renders the fleet topology spec,
// launches one sqleqd per shard with --fleet/--shard-name, and supervises
// them: with --restart, a shard that dies (e.g. SIGKILL in the fleet-smoke
// stage) is relaunched with the same arguments — same name, same port, same
// --memo-dir — so it rejoins the fleet and re-warms from its durable memo.
// SIGTERM/SIGINT drain the whole fleet (TERM to every child, then wait).
//
// The sqleqd binary is found next to this executable unless --sqleqd is
// given. --fleet-file/--pids-file export the topology spec and child pids
// for scripts (ci.sh fleet-smoke reads both).
//
// Usage:
//   sqleq-fleet --shards N [--base-port P] [--sqleqd PATH]
//               [--memo-root DIR] [--fleet-file PATH] [--pids-file PATH]
//               [--restart] [--shard-epoch N] [--workers N]
//               [--max-inflight N] [--degraded-admission]
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "service/routing.h"
#include "util/socket.h"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --shards N [--base-port P] [--sqleqd PATH] [--memo-root DIR]\n"
               "       [--fleet-file PATH] [--pids-file PATH] [--restart]\n"
               "       [--shard-epoch N] [--workers N] [--max-inflight N]\n"
               "       [--degraded-admission]\n";
  return 2;
}

/// The directory holding this executable, via /proc/self/exe.
std::string SelfDir() {
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return ".";
  buf[n] = '\0';
  std::string path(buf);
  size_t slash = path.rfind('/');
  return slash == std::string::npos ? "." : path.substr(0, slash);
}

struct ShardProc {
  std::vector<std::string> argv;
  pid_t pid = -1;
};

pid_t Launch(const ShardProc& shard) {
  std::vector<char*> argv;
  argv.reserve(shard.argv.size() + 1);
  for (const std::string& arg : shard.argv) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);
  pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    std::perror("sqleq-fleet: execv");
    _exit(127);
  }
  return pid;
}

void WritePids(const std::string& path, const std::vector<ShardProc>& shards) {
  if (path.empty()) return;
  std::ofstream out(path, std::ios::trunc);
  for (const ShardProc& shard : shards) out << shard.pid << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  size_t shard_count = 0;
  int base_port = 0;
  std::string sqleqd = SelfDir() + "/sqleqd";
  std::string memo_root;
  std::string fleet_file;
  std::string pids_file;
  bool restart = false;
  std::string shard_epoch = "1";
  std::string workers;
  std::string max_inflight;
  bool degraded = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      shard_count = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--base-port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      base_port = std::atoi(v);
    } else if (arg == "--sqleqd") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      sqleqd = v;
    } else if (arg == "--memo-root") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      memo_root = v;
    } else if (arg == "--fleet-file") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      fleet_file = v;
    } else if (arg == "--pids-file") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      pids_file = v;
    } else if (arg == "--restart") {
      restart = true;
    } else if (arg == "--shard-epoch") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      shard_epoch = v;
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      workers = v;
    } else if (arg == "--max-inflight") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      max_inflight = v;
    } else if (arg == "--degraded-admission") {
      degraded = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return Usage(argv[0]);
    }
  }
  if (shard_count == 0) return Usage(argv[0]);

  // Resolve one concrete port per shard up front — the topology must be
  // final before any shard starts. With --base-port the ports are
  // sequential; otherwise each is picked by binding an ephemeral listener
  // and releasing it (a small race against other processes, fine for CI).
  std::vector<sqleq::service::ShardId> topology;
  for (size_t i = 0; i < shard_count; ++i) {
    sqleq::service::ShardId shard;
    shard.name = "shard" + std::to_string(i);
    shard.host = "127.0.0.1";
    if (base_port > 0) {
      shard.port = base_port + static_cast<int>(i);
    } else {
      sqleq::TcpListener probe;
      sqleq::Status listening = probe.Listen(0);
      if (!listening.ok()) {
        std::cerr << "sqleq-fleet: cannot pick a port: " << listening.ToString()
                  << "\n";
        return 1;
      }
      shard.port = probe.port();
    }
    topology.push_back(std::move(shard));
  }
  const std::string spec = sqleq::service::RenderFleetSpec(topology);
  if (!fleet_file.empty()) {
    std::ofstream out(fleet_file, std::ios::trunc);
    out << spec << "\n";
  }

  std::vector<ShardProc> shards;
  for (size_t i = 0; i < shard_count; ++i) {
    ShardProc shard;
    shard.argv = {sqleqd,
                  "--port",       std::to_string(topology[i].port),
                  "--fleet",      spec,
                  "--shard-name", topology[i].name,
                  "--shard-epoch", shard_epoch};
    if (!memo_root.empty()) {
      // MemoStore creates its own directory but not missing parents; make
      // the whole path here so a shard never dies on a fresh --memo-root.
      std::string memo_dir = memo_root + "/" + topology[i].name;
      std::error_code ec;
      std::filesystem::create_directories(memo_dir, ec);
      if (ec) {
        std::cerr << "sqleq-fleet: cannot create " << memo_dir << ": "
                  << ec.message() << "\n";
        return 1;
      }
      shard.argv.push_back("--memo-dir");
      shard.argv.push_back(std::move(memo_dir));
    }
    if (!workers.empty()) {
      shard.argv.push_back("--workers");
      shard.argv.push_back(workers);
    }
    if (!max_inflight.empty()) {
      shard.argv.push_back("--max-inflight");
      shard.argv.push_back(max_inflight);
    }
    if (degraded) shard.argv.push_back("--degraded-admission");
    shard.pid = Launch(shard);
    if (shard.pid < 0) {
      std::cerr << "sqleq-fleet: fork failed for " << topology[i].name << "\n";
      return 1;
    }
    std::cout << "sqleq-fleet: " << topology[i].name << " pid " << shard.pid
              << " port " << topology[i].port << std::endl;
    shards.push_back(std::move(shard));
  }
  WritePids(pids_file, shards);
  std::cout << "sqleq-fleet: up with " << shard_count << " shard(s): " << spec
            << std::endl;

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  // Supervision loop: reap exited children; with --restart relaunch them on
  // the same port/name/memo-dir, otherwise shut the whole fleet down (one
  // dead shard without a supervisor is a degraded fleet, not a working one).
  int exit_code = 0;
  while (g_shutdown == 0) {
    int wstatus = 0;
    pid_t dead = ::waitpid(-1, &wstatus, WNOHANG);
    if (dead > 0) {
      for (size_t i = 0; i < shards.size(); ++i) {
        if (shards[i].pid != dead) continue;
        if (restart) {
          shards[i].pid = Launch(shards[i]);
          std::cout << "sqleq-fleet: restarted " << topology[i].name
                    << " as pid " << shards[i].pid << std::endl;
          WritePids(pids_file, shards);
        } else {
          std::cerr << "sqleq-fleet: " << topology[i].name
                    << " exited; draining the fleet\n";
          shards[i].pid = -1;
          g_shutdown = 1;
          exit_code = 1;
        }
        break;
      }
      continue;
    }
    ::usleep(50 * 1000);
  }

  for (const ShardProc& shard : shards) {
    if (shard.pid > 0) ::kill(shard.pid, SIGTERM);
  }
  for (const ShardProc& shard : shards) {
    if (shard.pid > 0) ::waitpid(shard.pid, nullptr, 0);
  }
  std::cout << "sqleq-fleet: stopped" << std::endl;
  return exit_code;
}
