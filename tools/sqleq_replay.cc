// sqleq-replay — workload replay driver for the semantic query cache
// (docs/workload.md). Generates a seed-deterministic CQ corpus over a
// schema template, replays it through a SemanticCache in generation order
// (lookup, then admit on miss), and reports the measured hit rate against
// the generator's ground truth.
//
// Two confirm paths:
//  - in-process (default): the cache's own EquivalenceEngine decides the
//    semantic-tier confirms;
//  - fleet (--shards SPEC or --port N): the template catalog is uploaded to
//    a live sqleqd fleet (relation + dep requests through FleetClient) and
//    every semantic-tier confirm routes as a `check` request, so warm memos
//    concentrate on the shard owning each equivalence class's signature.
//
// --assert-tolerance T makes the tool its own gate: exit 1 unless
// |measured - ground truth| <= T. `tools/ci.sh workload-smoke` replays a
// 200-query corpus at overlap 0.5 against a 1-shard daemon under T = 0.10.
//
// Usage:
//   sqleq-replay [--template warehouse|tpch|job] [--queries N]
//                [--overlap X] [--seed N]
//                [--shards SPEC | --port N [--host H]]
//                [--assert-tolerance X] [--advise]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "cache/semantic_cache.h"
#include "cache/view_advisor.h"
#include "service/fleet_client.h"
#include "service/protocol.h"
#include "service/routing.h"
#include "util/json.h"
#include "workload/generator.h"

namespace {

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--template NAME] [--queries N] [--overlap X] [--seed N]\n"
               "       [--shards SPEC | --port N [--host H]]\n"
               "       [--assert-tolerance X] [--advise]\n";
  return 2;
}

/// Uploads the template's catalog to every shard: relation name/arity/
/// set-valuedness plus each dependency of Σ (keys and FKs travel as the
/// dependencies they compile to, the same contract the shell's CONNECT
/// uses).
sqleq::Status UploadCatalog(sqleq::service::FleetClient& client,
                            const sqleq::workload::SchemaTemplate& tmpl) {
  for (const sqleq::RelationInfo& info : tmpl.catalog.schema.Relations()) {
    sqleq::service::RequestSpec req("relation");
    req.Str("name", info.name)
        .Int("arity", info.arity)
        .Bool("set_valued", info.set_valued);
    SQLEQ_ASSIGN_OR_RETURN(std::string line, sqleq::service::EncodeRequest(req));
    SQLEQ_RETURN_IF_ERROR(client.Call(line).status());
  }
  for (const sqleq::Dependency& dep : tmpl.catalog.sigma) {
    sqleq::service::RequestSpec req("dep");
    req.Str("text", dep.IsTgd() ? dep.tgd().ToString() : dep.egd().ToString())
        .Str("label", dep.label());
    SQLEQ_ASSIGN_OR_RETURN(std::string line, sqleq::service::EncodeRequest(req));
    SQLEQ_RETURN_IF_ERROR(client.Call(line).status());
  }
  return sqleq::Status::OK();
}

/// A Confirmer that routes each semantic-tier confirm through the fleet as
/// a `check` request.
sqleq::cache::Confirmer FleetConfirmer(sqleq::service::FleetClient* client,
                                       sqleq::Semantics semantics) {
  return [client, semantics](const sqleq::ConjunctiveQuery& q1,
                             const sqleq::ConjunctiveQuery& q2)
             -> sqleq::Result<sqleq::Verdict> {
    sqleq::service::RequestSpec req("check");
    req.Str("q1", q1.ToString())
        .Str("q2", q2.ToString())
        .Str("semantics", sqleq::service::SemanticsWireName(semantics));
    SQLEQ_ASSIGN_OR_RETURN(std::string line, sqleq::service::EncodeRequest(req));
    SQLEQ_ASSIGN_OR_RETURN(sqleq::JsonValue response, client->Call(line));
    const sqleq::JsonValue* ok = response.Find("ok");
    if (ok == nullptr || ok->kind != sqleq::JsonValue::Kind::kBool ||
        !ok->boolean) {
      return sqleq::Status::FailedPrecondition("server rejected check request");
    }
    const sqleq::JsonValue* verdict = response.Find("verdict");
    if (verdict != nullptr && verdict->is_string() &&
        verdict->string == "unknown") {
      return sqleq::Verdict::kUnknown;
    }
    const sqleq::JsonValue* equivalent = response.Find("equivalent");
    const bool eq = equivalent != nullptr &&
                    equivalent->kind == sqleq::JsonValue::Kind::kBool &&
                    equivalent->boolean;
    return eq ? sqleq::Verdict::kEquivalent : sqleq::Verdict::kNotEquivalent;
  };
}

}  // namespace

int main(int argc, char** argv) {
  sqleq::workload::WorkloadOptions gen;
  gen.num_queries = 200;
  std::string host = "127.0.0.1";
  int port = 0;
  std::string shards_spec;
  double assert_tolerance = -1.0;
  bool advise = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--template") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      gen.schema_template = v;
    } else if (arg == "--queries") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      gen.num_queries = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--overlap") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      gen.overlap_rate = std::atof(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      gen.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      port = std::atoi(v);
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      shards_spec = v;
    } else if (arg == "--assert-tolerance") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      assert_tolerance = std::atof(v);
    } else if (arg == "--advise") {
      advise = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return Usage(argv[0]);
    }
  }
  if (port > 0 && !shards_spec.empty()) {
    std::cerr << "--shards and --port are mutually exclusive\n";
    return Usage(argv[0]);
  }
  if (port > 0) shards_spec = host + ":" + std::to_string(port);

  sqleq::Result<sqleq::workload::Workload> generated =
      sqleq::workload::GenerateWorkload(gen);
  if (!generated.ok()) {
    std::cerr << "generation failed: " << generated.status().ToString() << "\n";
    return 1;
  }
  sqleq::workload::Workload& w = generated.value();
  std::fprintf(stderr,
               "generated template=%s queries=%zu classes=%zu "
               "ground-truth=%.3f\n",
               w.schema.name.c_str(), w.queries.size(), w.num_classes,
               w.GroundTruthHitRate());

  sqleq::cache::SemanticCacheOptions cache_options;
  sqleq::cache::SemanticCache cache(w.schema.catalog.sigma,
                                    w.schema.catalog.schema, cache_options);

  std::unique_ptr<sqleq::service::FleetClient> client;
  if (!shards_spec.empty()) {
    sqleq::service::FleetClientOptions options;
    sqleq::Result<std::vector<sqleq::service::ShardId>> shards =
        sqleq::service::ParseFleetSpec(shards_spec);
    if (!shards.ok()) {
      std::cerr << "bad shard spec: " << shards.status().ToString() << "\n";
      return 1;
    }
    options.shards = *std::move(shards);
    auto created = sqleq::service::FleetClient::Create(std::move(options));
    if (!created.ok()) {
      std::cerr << "connect failed: " << created.status().ToString() << "\n";
      return 1;
    }
    client = std::move(created).value();
    if (sqleq::Status s = UploadCatalog(*client, w.schema); !s.ok()) {
      std::cerr << "catalog upload failed: " << s.ToString() << "\n";
      return 1;
    }
    cache.set_confirmer(FleetConfirmer(client.get(), cache.semantics()));
    std::fprintf(stderr, "confirming through fleet %s (%zu shards)\n",
                 shards_spec.c_str(), client->shard_count());
  }

  for (const sqleq::workload::WorkloadQuery& wq : w.queries) {
    sqleq::Result<sqleq::cache::SemanticCache::Lookup> hit =
        cache.Get(wq.query);
    if (!hit.ok()) {
      std::cerr << "lookup failed: " << hit.status().ToString() << "\n";
      return 1;
    }
    if (hit->tier == sqleq::cache::SemanticCache::Tier::kMiss) {
      cache.Admit(wq.query, wq.query.name());
    }
  }

  sqleq::cache::SemanticCache::Stats stats = cache.stats();
  const double measured = stats.HitRate();
  const double truth = w.GroundTruthHitRate();
  std::printf(
      "sqleq-replay: queries=%zu hit_rate=%.3f ground_truth=%.3f exact=%zu "
      "semantic=%zu misses=%zu confirms=%zu unknown=%zu\n",
      stats.lookups, measured, truth, stats.exact_hits, stats.semantic_hits,
      stats.misses, stats.confirms, stats.unknown_confirms);

  if (advise) {
    std::vector<sqleq::ConjunctiveQuery> queries;
    queries.reserve(w.queries.size());
    for (const sqleq::workload::WorkloadQuery& wq : w.queries) {
      queries.push_back(wq.query);
    }
    sqleq::Result<sqleq::cache::ViewAdvice> advice = sqleq::cache::AdviseViews(
        queries, w.schema.catalog.sigma, w.schema.catalog.schema);
    if (!advice.ok()) {
      std::cerr << "advise failed: " << advice.status().ToString() << "\n";
      return 1;
    }
    for (const sqleq::cache::ViewAdvice::Cluster& c : advice->clusters) {
      if (!c.rewritten) continue;
      std::printf("advise: members=%zu saving=%.0f rewrite=%s\n",
                  c.members.size(), c.ProjectedSaving(),
                  c.rewrite.ToString().c_str());
    }
  }

  if (assert_tolerance >= 0.0) {
    const double delta = measured > truth ? measured - truth : truth - measured;
    if (delta > assert_tolerance) {
      std::fprintf(stderr,
                   "FAIL: |hit_rate - ground_truth| = %.3f exceeds tolerance "
                   "%.3f\n",
                   delta, assert_tolerance);
      return 1;
    }
    std::fprintf(stderr, "OK: hit rate within %.3f of ground truth\n",
                 assert_tolerance);
  }
  return 0;
}
