// sqleq command-line tool: runs a sqleq script (see src/shell/engine.h for
// the command language) from a file or stdin.
//
//   sqleq_cli script.sqleq
//   echo "CREATE TABLE t (a INT); SHOW SCHEMA;" | sqleq_cli
//
// Ctrl-C requests cooperative cancellation: the running statement stops at
// its next chase step / backchase candidate and reports a partial result
// annotated "(incomplete: cancelled ...)"; a second Ctrl-C aborts.
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "shell/engine.h"
#include "util/fault.h"

namespace {

sqleq::CancellationToken g_cancel;

void HandleInterrupt(int /*sig*/) {
  if (g_cancel.cancelled()) {
    // Second Ctrl-C: the cooperative path is apparently stuck; hard exit.
    std::signal(SIGINT, SIG_DFL);
    std::raise(SIGINT);
    return;
  }
  g_cancel.Cancel();
}

}  // namespace

int main(int argc, char** argv) {
  std::string script;
  if (argc > 2) {
    std::fprintf(stderr, "usage: %s [script-file]\n", argv[0]);
    return 2;
  }
  if (argc == 2) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    script = buffer.str();
  } else {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    script = buffer.str();
  }

  std::signal(SIGINT, HandleInterrupt);

  sqleq::shell::ScriptEngine engine;
  engine.set_cancellation(&g_cancel);
  sqleq::Result<std::string> out = engine.Run(script);
  if (!out.ok()) {
    std::fprintf(stderr, "error: %s\n", out.status().ToString().c_str());
    return 1;
  }
  std::fputs(out->c_str(), stdout);
  return 0;
}
