// sqleq command-line tool: runs a sqleq script (see src/shell/engine.h for
// the command language) from a file or stdin.
//
//   sqleq_cli script.sqleq
//   echo "CREATE TABLE t (a INT); SHOW SCHEMA;" | sqleq_cli
//   sqleq_cli --metrics-out metrics.prom --trace-out trace.json script.sqleq
//
// --metrics-out writes the session's engine metrics (Prometheus text
// exposition format) on exit; --trace-out enables span tracing for the whole
// run and writes Chrome trace_event JSON on exit (docs/observability.md).
//
// Ctrl-C requests cooperative cancellation: the running statement stops at
// its next chase step / backchase candidate and reports a partial result
// annotated "(incomplete: cancelled ...)"; a second Ctrl-C aborts.
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "shell/engine.h"
#include "util/fault.h"

namespace {

sqleq::CancellationToken g_cancel;

void HandleInterrupt(int /*sig*/) {
  if (g_cancel.cancelled()) {
    // Second Ctrl-C: the cooperative path is apparently stuck; hard exit.
    std::signal(SIGINT, SIG_DFL);
    std::raise(SIGINT);
    return;
  }
  g_cancel.Cancel();
}

int Usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--metrics-out <file>] [--trace-out <file>] "
               "[script-file]\n"
               "  runs a sqleq script (stdin when no file is given)\n"
               "  --metrics-out  write engine metrics (Prometheus text) on exit\n"
               "  --trace-out    record spans; write Chrome trace JSON on exit\n",
               prog);
  return 2;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  out << content;
  out.close();
  if (!out) {
    std::fprintf(stderr, "failed writing %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_out;
  std::string trace_out;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--metrics-out" || arg == "--trace-out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a file argument\n", arg.c_str());
        return Usage(argv[0]);
      }
      (arg == "--metrics-out" ? metrics_out : trace_out) = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return Usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() > 1) return Usage(argv[0]);

  std::string script;
  if (files.size() == 1) {
    std::ifstream in(files[0]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", files[0].c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    script = buffer.str();
  } else {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    script = buffer.str();
  }

  std::signal(SIGINT, HandleInterrupt);

  sqleq::shell::ScriptEngine engine;
  engine.set_cancellation(&g_cancel);
  if (!trace_out.empty()) engine.set_tracing(true);
  sqleq::Result<std::string> out = engine.Run(script);

  // Telemetry is written even when the script failed: a partial run's
  // metrics and trace are exactly what post-mortems need.
  int exit_code = 0;
  if (!out.ok()) {
    std::fprintf(stderr, "error: %s\n", out.status().ToString().c_str());
    exit_code = 1;
  } else {
    std::fputs(out->c_str(), stdout);
  }
  if (!metrics_out.empty() &&
      !WriteFile(metrics_out, engine.metrics().Snapshot().ToPrometheusText())) {
    exit_code = exit_code == 0 ? 2 : exit_code;
  }
  if (!trace_out.empty() &&
      !WriteFile(trace_out, engine.trace().ToChromeTraceJson())) {
    exit_code = exit_code == 0 ? 2 : exit_code;
  }
  return exit_code;
}
