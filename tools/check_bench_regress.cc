// check_bench_regress: compares a freshly measured BENCH_<name>.json against
// a committed baseline and fails when the suite regressed.
//
// Both files are Google Benchmark JSON (the shape check_bench_json pins).
// For every benchmark name present in both files the tool takes the median
// cpu_time on each side (a single pinned SQLEQ_BENCH_ITERS=1 run has one
// entry per name, so the median is just that value) and forms the ratio
// fresh / baseline. The verdict is the MEDIAN of those per-name ratios: a
// suite-wide slowdown fails, one noisy entry in a single-iteration smoke
// run does not. `tools/ci.sh bench-smoke` runs this for the chase-scaling
// and homomorphism suites before the fresh output replaces the baseline.
//
//   check_bench_regress <fresh.json> <baseline.json> [threshold]
//
// `threshold` defaults to 1.5 (fail when the median ratio exceeds 1.5x).
// Exit status: 0 when within threshold, 1 on regression (or when the files
// share no benchmark names), 2 on usage/IO/parse problems.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.h"

namespace {

using sqleq::JsonValue;

/// Per-benchmark-name cpu_time samples from one Google Benchmark JSON file.
using Samples = std::map<std::string, std::vector<double>>;

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

bool LoadSamples(const char* path, Samples* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "check_bench_regress: cannot open %s\n", path);
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  sqleq::Result<JsonValue> parsed = sqleq::ParseJson(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "check_bench_regress: %s: not valid JSON: %s\n", path,
                 parsed.status().ToString().c_str());
    return false;
  }
  const JsonValue* benchmarks =
      parsed->is_object() ? parsed->Find("benchmarks") : nullptr;
  if (benchmarks == nullptr || !benchmarks->is_array()) {
    std::fprintf(stderr, "check_bench_regress: %s: missing \"benchmarks\" array\n",
                 path);
    return false;
  }
  for (const JsonValue& entry : benchmarks->array) {
    if (!entry.is_object()) continue;
    const JsonValue* name = entry.Find("name");
    const JsonValue* cpu = entry.Find("cpu_time");
    if (name == nullptr || !name->is_string() || cpu == nullptr ||
        !cpu->is_number() || cpu->number <= 0) {
      continue;  // aggregate/malformed rows are check_bench_json's problem
    }
    (*out)[name->string].push_back(cpu->number);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3 || argc > 4) {
    std::fprintf(stderr,
                 "usage: %s <fresh.json> <baseline.json> [threshold]\n",
                 argv[0]);
    return 2;
  }
  double threshold = 1.5;
  if (argc == 4) {
    char* end = nullptr;
    threshold = std::strtod(argv[3], &end);
    if (end == argv[3] || *end != '\0' || threshold <= 0) {
      std::fprintf(stderr, "check_bench_regress: bad threshold %s\n", argv[3]);
      return 2;
    }
  }

  Samples fresh;
  Samples baseline;
  if (!LoadSamples(argv[1], &fresh) || !LoadSamples(argv[2], &baseline)) {
    return 2;
  }

  std::vector<double> ratios;
  double worst_ratio = 0.0;
  std::string worst_name;
  for (const auto& [name, base_samples] : baseline) {
    auto it = fresh.find(name);
    if (it == fresh.end()) continue;  // renamed/retired benchmarks don't gate
    double ratio = Median(it->second) / Median(base_samples);
    ratios.push_back(ratio);
    if (ratio > worst_ratio) {
      worst_ratio = ratio;
      worst_name = name;
    }
  }
  if (ratios.empty()) {
    std::fprintf(stderr,
                 "check_bench_regress: %s and %s share no benchmark names\n",
                 argv[1], argv[2]);
    return 1;
  }

  double median_ratio = Median(ratios);
  std::printf(
      "check_bench_regress: %s vs %s: %zu shared benchmark(s), median ratio "
      "%.3fx, worst %.3fx (%s), threshold %.2fx\n",
      argv[1], argv[2], ratios.size(), median_ratio, worst_ratio,
      worst_name.c_str(), threshold);
  if (median_ratio > threshold) {
    std::fprintf(stderr,
                 "check_bench_regress: REGRESSION: median cpu_time ratio "
                 "%.3fx exceeds %.2fx\n",
                 median_ratio, threshold);
    return 1;
  }
  return 0;
}
