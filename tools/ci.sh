#!/usr/bin/env bash
# Tier-1 CI entry point: configure + build + full test suite, then the two
# static-analysis gates — clang-tidy over the sources (tools/lint.sh, skipped
# when clang-tidy is absent) and a lint smoke over the example scripts: each
# examples/scripts/*.sqleq must exit sqleq-lint with its expected code
# (examples/scripts/lint_expected.txt, default 0 = clean).
#
# usage: tools/ci.sh [build-dir]
#        tools/ci.sh bench-smoke [build-dir]
#        tools/ci.sh service-smoke [build-dir]
#        tools/ci.sh crash-smoke [build-dir]
#        tools/ci.sh fleet-smoke [build-dir]
#        tools/ci.sh workload-smoke [build-dir]
#
# bench-smoke builds the benchmarks, runs each one for a single pinned
# iteration (SQLEQ_BENCH_ITERS=1) from the repo root so every binary emits
# its BENCH_<name>.json there, and validates each file against the Google
# Benchmark JSON shape with check_bench_json. For the chase-scaling and
# homomorphism suites it also snapshots the committed baseline JSON before
# the run and gates the fresh output on check_bench_regress (fails when the
# median cpu_time ratio exceeds 1.5x).
#
# service-smoke builds sqleqd + sqleq-client, boots the daemon on an
# ephemeral port, drives a catalog upload, check, reformulate, and stats
# through the client, then SIGTERMs the daemon and asserts a clean drain
# and a valid Prometheus export (docs/service.md).
#
# crash-smoke exercises the durable memo end to end (docs/service.md,
# "Durability & Recovery"): boot sqleqd with --memo-dir, warm the memo,
# SIGKILL the daemon (no drain), restart it on the same directory, and
# assert the verdict comes back from the recovered tier-2 store
# (memo.disk.recovered > 0 and a memo hit instead of a re-chase).
#
# workload-smoke exercises the semantic query cache end to end
# (docs/workload.md): generate a 200-query corpus at overlap 0.5, boot a
# 1-shard daemon, and replay the corpus through sqleq-replay with every
# semantic-tier confirm routed to the daemon, gating on the measured hit
# rate landing within ±10% of the generator's ground truth
# (--assert-tolerance 0.10). It also re-runs bench_workload_e2e for one
# pinned iteration and gates it on check_bench_regress against the
# committed BENCH_workload_e2e.json baseline.
#
# fleet-smoke exercises the sharded fleet end to end (docs/fleet.md): a
# 3-shard sqleq-fleet with --restart and per-shard durable memos, verdicts
# byte-identical to a single node with every request forced through the
# not_owner redirect path (--route first), cross-shard peer memo hits from
# a legacy v1 client, a SIGKILL of one shard mid-run with byte-identical
# verdicts after its supervised restart, and a fleet stats rollup showing
# memo.peer.hits > 0 and followed redirects.
set -eu

cd "$(dirname "$0")/.."

bench_smoke() {
  local build_dir="${1:-build}"

  echo "== configure =="
  cmake -B "${build_dir}" -S .

  echo "== build (benchmarks + checker) =="
  local targets=()
  for src in bench/bench_*.cc; do
    local name
    name="$(basename "${src}" .cc)"
    [ "${name}" = "bench_main" ] && continue
    targets+=("${name}")
  done
  cmake --build "${build_dir}" -j --target check_bench_json check_bench_regress \
      "${targets[@]}"

  # The bench binaries overwrite BENCH_<name>.json in place, so stash the
  # committed baselines for the regression-gated suites before running.
  local regress_suites=(chase_scaling homomorphism workload_e2e)
  local baseline_dir
  baseline_dir="$(mktemp -d)"
  local suite
  for suite in "${regress_suites[@]}"; do
    if [ -f "BENCH_${suite}.json" ]; then
      cp "BENCH_${suite}.json" "${baseline_dir}/BENCH_${suite}.json"
    fi
  done

  echo "== bench smoke (SQLEQ_BENCH_ITERS=1) =="
  local jsons=()
  for name in "${targets[@]}"; do
    echo "-- ${name}"
    SQLEQ_BENCH_ITERS=1 "${build_dir}/bench/${name}"
    jsons+=("BENCH_${name#bench_}.json")
  done

  echo "== check_bench_json =="
  "${build_dir}/tools/check_bench_json" "${jsons[@]}"

  echo "== check_bench_regress (median cpu_time vs committed baseline) =="
  for suite in "${regress_suites[@]}"; do
    if [ -f "${baseline_dir}/BENCH_${suite}.json" ]; then
      "${build_dir}/tools/check_bench_regress" \
          "BENCH_${suite}.json" "${baseline_dir}/BENCH_${suite}.json" 1.5
    else
      echo "-- no committed baseline for BENCH_${suite}.json, skipping"
    fi
  done
  rm -rf "${baseline_dir}"

  echo "bench-smoke OK"
}

service_smoke() {
  local build_dir="${1:-build}"

  echo "== configure =="
  cmake -B "${build_dir}" -S .

  echo "== build (daemon + client) =="
  cmake --build "${build_dir}" -j --target sqleqd sqleq_client

  echo "== service smoke =="
  local workdir
  workdir="$(mktemp -d)"
  local port_file="${workdir}/port"
  local log="${workdir}/sqleqd.log"
  local metrics="${workdir}/metrics.prom"

  "${build_dir}/tools/sqleqd" --port 0 --port-file "${port_file}" \
      --metrics-out "${metrics}" > "${log}" 2>&1 &
  local pid=$!

  local i
  for i in $(seq 1 100); do
    [ -s "${port_file}" ] && break
    sleep 0.05
  done
  if [ ! -s "${port_file}" ]; then
    echo "sqleqd did not report a port:"
    cat "${log}"
    exit 1
  fi
  local port
  port="$(cat "${port_file}")"
  echo "-- sqleqd up on port ${port} (pid ${pid})"

  cat > "${workdir}/requests.jsonl" <<'EOF'
{"id":"1","cmd":"hello"}
{"id":"2","cmd":"relation","name":"r","arity":2}
{"id":"3","cmd":"relation","name":"s","arity":1}
{"id":"4","cmd":"dep","text":"r(X, Y) -> s(X).","label":"fk"}
{"id":"5","cmd":"check","q1":"Q(X) :- r(X, Y), s(X).","q2":"Q(X) :- r(X, Y).","semantics":"set"}
{"id":"6","cmd":"reformulate","query":"Q(X) :- r(X, Y), s(X).","semantics":"set"}
{"id":"7","cmd":"stats"}
EOF
  local responses="${workdir}/responses.jsonl"
  local prometheus="${workdir}/prometheus.txt"
  "${build_dir}/tools/sqleq-client" --port "${port}" \
      --file "${workdir}/requests.jsonl" --print-prometheus \
      > "${responses}" 2> "${prometheus}"

  grep -Fq '"verdict":"equivalent"' "${responses}" \
      || { echo "check did not come back equivalent:"; cat "${responses}"; exit 1; }
  grep -Fq '"reformulations":["Q(X) :- r(X, Y)."]' "${responses}" \
      || { echo "reformulate missing the minimized query:"; cat "${responses}"; exit 1; }
  grep -Fq 'sqleq_service_requests' "${prometheus}" \
      || { echo "stats export missing service counters:"; cat "${prometheus}"; exit 1; }

  echo "-- draining (SIGTERM)"
  kill -TERM "${pid}"
  local rc=0
  wait "${pid}" || rc=$?
  if [ "${rc}" -ne 0 ]; then
    echo "sqleqd exited with rc=${rc}:"
    cat "${log}"
    exit 1
  fi
  grep -Fq "sqleqd stopped" "${log}" \
      || { echo "no clean shutdown line:"; cat "${log}"; exit 1; }
  grep -Fq 'sqleq_service_requests' "${metrics}" \
      || { echo "--metrics-out export missing service counters:"; cat "${metrics}"; exit 1; }

  rm -rf "${workdir}"
  echo "service-smoke OK"
}

crash_smoke() {
  local build_dir="${1:-build}"

  echo "== configure =="
  cmake -B "${build_dir}" -S .

  echo "== build (daemon + client) =="
  cmake --build "${build_dir}" -j --target sqleqd sqleq_client

  echo "== crash-recovery smoke =="
  local workdir
  workdir="$(mktemp -d)"
  local memo_dir="${workdir}/memo"
  local port_file="${workdir}/port"
  local log="${workdir}/sqleqd.log"

  start_daemon() {
    : > "${port_file}"
    "${build_dir}/tools/sqleqd" --port 0 --port-file "${port_file}" \
        --memo-dir "${memo_dir}" >> "${log}" 2>&1 &
    DAEMON_PID=$!
    local i
    for i in $(seq 1 100); do
      [ -s "${port_file}" ] && break
      sleep 0.05
    done
    if [ ! -s "${port_file}" ]; then
      echo "sqleqd did not report a port:"
      cat "${log}"
      exit 1
    fi
    DAEMON_PORT="$(cat "${port_file}")"
  }

  cat > "${workdir}/warmup.jsonl" <<'EOF'
{"id":"w1","cmd":"relation","name":"r","arity":2}
{"id":"w2","cmd":"relation","name":"s","arity":1}
{"id":"w3","cmd":"dep","text":"r(X, Y) -> s(X).","label":"fk"}
{"id":"w4","cmd":"check","q1":"Q(X) :- r(X, Y), s(X).","q2":"Q(X) :- r(X, Y).","semantics":"set"}
EOF
  cat > "${workdir}/warm.jsonl" <<'EOF'
{"id":"c1","cmd":"relation","name":"r","arity":2}
{"id":"c2","cmd":"relation","name":"s","arity":1}
{"id":"c3","cmd":"dep","text":"r(X, Y) -> s(X).","label":"fk"}
{"id":"c4","cmd":"stats"}
{"id":"c5","cmd":"check","q1":"Q(X) :- r(X, Y), s(X).","q2":"Q(X) :- r(X, Y).","semantics":"set"}
EOF

  start_daemon
  echo "-- sqleqd up on port ${DAEMON_PORT} (pid ${DAEMON_PID}); warming the memo"
  "${build_dir}/tools/sqleq-client" --port "${DAEMON_PORT}" \
      --retries 2 --backoff-ms 10 \
      --file "${workdir}/warmup.jsonl" > "${workdir}/warmup_responses.jsonl"
  grep -Fq '"verdict":"equivalent"' "${workdir}/warmup_responses.jsonl" \
      || { echo "warmup check failed:"; cat "${workdir}/warmup_responses.jsonl"; exit 1; }

  echo "-- SIGKILL (no drain, no warning)"
  kill -KILL "${DAEMON_PID}"
  wait "${DAEMON_PID}" 2>/dev/null || true

  echo "-- restart on the same --memo-dir"
  start_daemon
  local responses="${workdir}/warm_responses.jsonl"
  "${build_dir}/tools/sqleq-client" --port "${DAEMON_PORT}" \
      --retries 2 --backoff-ms 10 \
      --file "${workdir}/warm.jsonl" > "${responses}"

  grep -Eq '"recovered":[1-9]' "${responses}" \
      || { echo "restart recovered nothing from the memo dir:"; cat "${responses}"; exit 1; }
  grep -Fq '"verdict":"equivalent"' "${responses}" \
      || { echo "post-restart check lost the verdict:"; cat "${responses}"; exit 1; }
  grep -Eq '"memo\.disk\.hits":[1-9]' "${responses}" \
      || { echo "post-restart check re-chased instead of hitting the disk tier:"; \
           cat "${responses}"; exit 1; }

  kill -TERM "${DAEMON_PID}"
  local rc=0
  wait "${DAEMON_PID}" || rc=$?
  if [ "${rc}" -ne 0 ]; then
    echo "sqleqd exited with rc=${rc} after drain:"
    cat "${log}"
    exit 1
  fi

  rm -rf "${workdir}"
  echo "crash-smoke OK"
}

workload_smoke() {
  local build_dir="${1:-build}"

  echo "== configure =="
  cmake -B "${build_dir}" -S .

  echo "== build (daemon + replay driver + bench + regress checker) =="
  cmake --build "${build_dir}" -j --target sqleqd sqleq_replay \
      bench_workload_e2e check_bench_regress

  echo "== workload smoke =="
  local workdir
  workdir="$(mktemp -d)"
  local port_file="${workdir}/port"
  local log="${workdir}/sqleqd.log"

  "${build_dir}/tools/sqleqd" --port 0 --port-file "${port_file}" \
      > "${log}" 2>&1 &
  local pid=$!

  local i
  for i in $(seq 1 100); do
    [ -s "${port_file}" ] && break
    sleep 0.05
  done
  if [ ! -s "${port_file}" ]; then
    echo "sqleqd did not report a port:"
    cat "${log}"
    exit 1
  fi
  local port
  port="$(cat "${port_file}")"
  echo "-- sqleqd up on port ${port} (pid ${pid})"

  echo "-- replaying a 200-query corpus (overlap 0.5) through the daemon"
  "${build_dir}/tools/sqleq-replay" --template warehouse --queries 200 \
      --overlap 0.5 --seed 1 --port "${port}" --assert-tolerance 0.10 \
      || { echo "replay hit rate outside tolerance"; cat "${log}"; exit 1; }

  echo "-- draining (SIGTERM)"
  kill -TERM "${pid}"
  local rc=0
  wait "${pid}" || rc=$?
  if [ "${rc}" -ne 0 ]; then
    echo "sqleqd exited with rc=${rc}:"
    cat "${log}"
    exit 1
  fi

  echo "-- bench_workload_e2e regression vs committed baseline"
  if [ -f "BENCH_workload_e2e.json" ]; then
    cp "BENCH_workload_e2e.json" "${workdir}/BENCH_workload_e2e.json"
    SQLEQ_BENCH_ITERS=1 "${build_dir}/bench/bench_workload_e2e"
    "${build_dir}/tools/check_bench_regress" \
        "BENCH_workload_e2e.json" "${workdir}/BENCH_workload_e2e.json" 1.5
    # Restore the committed baseline; the smoke run is not a new baseline.
    cp "${workdir}/BENCH_workload_e2e.json" "BENCH_workload_e2e.json"
  else
    echo "-- no committed BENCH_workload_e2e.json, skipping regress gate"
  fi

  rm -rf "${workdir}"
  echo "workload-smoke OK"
}

fleet_smoke() {
  local build_dir="${1:-build}"

  echo "== configure =="
  cmake -B "${build_dir}" -S .

  echo "== build (daemon + fleet launcher + client) =="
  cmake --build "${build_dir}" -j --target sqleqd sqleq_client sqleq_fleet

  echo "== fleet smoke =="
  local workdir
  workdir="$(mktemp -d)"
  local fleet_file="${workdir}/fleet.spec"
  local pids_file="${workdir}/fleet.pids"
  local fleet_log="${workdir}/fleet.log"

  "${build_dir}/tools/sqleq-fleet" --shards 3 --restart \
      --memo-root "${workdir}/memo" \
      --fleet-file "${fleet_file}" --pids-file "${pids_file}" \
      > "${fleet_log}" 2>&1 &
  local fleet_pid=$!

  local i
  for i in $(seq 1 100); do
    grep -Fq "up with 3 shard(s)" "${fleet_log}" 2>/dev/null && break
    sleep 0.05
  done
  grep -Fq "up with 3 shard(s)" "${fleet_log}" \
      || { echo "fleet did not come up:"; cat "${fleet_log}"; exit 1; }
  local spec
  spec="$(cat "${fleet_file}")"
  echo "-- fleet up: ${spec}"

  # No bare hello lines here: a legacy hello (no max_protocol) would drop
  # the negotiated session back to v1 and disable redirects (docs/fleet.md).
  local checks="${workdir}/checks.jsonl"
  : > "${checks}"
  local v
  for v in 0 1 2 3 4 5; do
    cat >> "${checks}" <<EOF
{"id":"r${v}","cmd":"relation","name":"r${v}","arity":2}
{"id":"d${v}","cmd":"dep","text":"r${v}(X, Y) -> s(X).","label":"fk${v}"}
EOF
  done
  echo '{"id":"s","cmd":"relation","name":"s","arity":1}' >> "${checks}"
  for v in 0 1 2 3 4 5; do
    cat >> "${checks}" <<EOF
{"id":"c${v}","cmd":"check","q1":"Q(X) :- r${v}(X, Y), s(X).","q2":"Q(X) :- r${v}(X, Y).","semantics":"set"}
EOF
  done

  echo "-- single-node baseline"
  local port_file="${workdir}/solo.port"
  local solo_log="${workdir}/solo.log"
  "${build_dir}/tools/sqleqd" --port 0 --port-file "${port_file}" \
      > "${solo_log}" 2>&1 &
  local solo_pid=$!
  for i in $(seq 1 100); do
    [ -s "${port_file}" ] && break
    sleep 0.05
  done
  [ -s "${port_file}" ] || { echo "baseline sqleqd has no port:"; cat "${solo_log}"; exit 1; }
  "${build_dir}/tools/sqleq-client" --port "$(cat "${port_file}")" \
      --file "${checks}" > "${workdir}/solo.jsonl"
  kill -TERM "${solo_pid}"; wait "${solo_pid}" || true
  grep -o '"verdict":"[a-z-]*"' "${workdir}/solo.jsonl" > "${workdir}/solo.verdicts"
  [ -s "${workdir}/solo.verdicts" ] \
      || { echo "baseline produced no verdicts:"; cat "${workdir}/solo.jsonl"; exit 1; }

  echo "-- fleet traffic through the redirect path (--route first)"
  "${build_dir}/tools/sqleq-client" --shards "${spec}" --route first \
      --retries 6 --backoff-ms 50 \
      --file "${checks}" > "${workdir}/fleet.jsonl"
  grep -o '"verdict":"[a-z-]*"' "${workdir}/fleet.jsonl" > "${workdir}/fleet.verdicts"
  diff "${workdir}/solo.verdicts" "${workdir}/fleet.verdicts" \
      || { echo "fleet verdicts differ from the single node"; exit 1; }

  echo "-- cross-shard warm reads from a legacy v1 client"
  # A v1 client pinned to shard 0 is always served locally; any check whose
  # record lives elsewhere must arrive through the peer memo tier.
  "${build_dir}/tools/sqleq-client" --shards "${spec}" --route first \
      --max-protocol 1 --retries 6 --backoff-ms 50 \
      --file "${checks}" > "${workdir}/v1.jsonl"
  grep -o '"verdict":"[a-z-]*"' "${workdir}/v1.jsonl" > "${workdir}/v1.verdicts"
  diff "${workdir}/solo.verdicts" "${workdir}/v1.verdicts" \
      || { echo "v1 client verdicts differ from the single node"; exit 1; }

  echo "-- SIGKILL shard1, await supervised restart"
  local shard1_pid
  shard1_pid="$(sed -n '2p' "${pids_file}")"
  kill -KILL "${shard1_pid}"
  for i in $(seq 1 100); do
    grep -Fq "restarted shard1" "${fleet_log}" 2>/dev/null && break
    sleep 0.05
  done
  grep -Fq "restarted shard1" "${fleet_log}" \
      || { echo "supervisor did not restart shard1:"; cat "${fleet_log}"; exit 1; }

  echo "-- fleet traffic again after the restart"
  "${build_dir}/tools/sqleq-client" --shards "${spec}" --route first \
      --retries 6 --backoff-ms 50 \
      --file "${checks}" > "${workdir}/after.jsonl"
  grep -o '"verdict":"[a-z-]*"' "${workdir}/after.jsonl" > "${workdir}/after.verdicts"
  diff "${workdir}/solo.verdicts" "${workdir}/after.verdicts" \
      || { echo "post-restart fleet verdicts differ from the single node"; exit 1; }

  echo "-- fleet stats rollup"
  echo '{"id":"st","cmd":"stats"}' > "${workdir}/stats.jsonl"
  "${build_dir}/tools/sqleq-client" --shards "${spec}" \
      --retries 6 --backoff-ms 50 \
      --file "${workdir}/stats.jsonl" > "${workdir}/stats.out"
  grep -Fq '"fleet":true' "${workdir}/stats.out" \
      || { echo "stats is not a fleet rollup:"; cat "${workdir}/stats.out"; exit 1; }
  grep -Eq '"memo\.peer\.hits":[1-9]' "${workdir}/stats.out" \
      || { echo "no cross-shard peer memo hits:"; cat "${workdir}/stats.out"; exit 1; }
  # --route first forced every check to shard 0; the ones it does not own
  # show up in its server-lifetime redirect counter (per_shard detail).
  grep -Eq '"redirects":[1-9]' "${workdir}/stats.out" \
      || { echo "no not_owner redirects were served:"; cat "${workdir}/stats.out"; exit 1; }

  echo "-- draining the fleet (SIGTERM)"
  kill -TERM "${fleet_pid}"
  local rc=0
  wait "${fleet_pid}" || rc=$?
  if [ "${rc}" -ne 0 ]; then
    echo "sqleq-fleet exited with rc=${rc}:"
    cat "${fleet_log}"
    exit 1
  fi
  grep -Fq "sqleq-fleet: stopped" "${fleet_log}" \
      || { echo "no clean fleet shutdown line:"; cat "${fleet_log}"; exit 1; }

  rm -rf "${workdir}"
  echo "fleet-smoke OK"
}

# Lints every example script, gating each on its expected sqleq-lint exit
# code (0 clean / 1 warnings-only / 2 errors). Scripts that intentionally
# carry diagnostics declare their expected code in
# examples/scripts/lint_expected.txt as "<file> <code>"; everything else
# must be clean (exit 0).
lint_smoke() {
  local build_dir="${1:-build}"
  local manifest="examples/scripts/lint_expected.txt"
  local script rc expected
  for script in examples/scripts/*.sqleq; do
    expected=0
    if [ -f "${manifest}" ]; then
      local line
      line="$(grep -E "^$(basename "${script}")[[:space:]]" "${manifest}" || true)"
      [ -n "${line}" ] && expected="$(echo "${line}" | awk '{print $2}')"
    fi
    rc=0
    "${build_dir}/tools/sqleq-lint" "${script}" > /dev/null || rc=$?
    if [ "${rc}" -ne "${expected}" ]; then
      echo "sqleq-lint ${script}: exit ${rc}, expected ${expected}"
      "${build_dir}/tools/sqleq-lint" "${script}" || true
      exit 1
    fi
    echo "-- $(basename "${script}"): exit ${rc} (expected ${expected})"
  done
}

if [ "${1:-}" = "bench-smoke" ]; then
  shift
  bench_smoke "$@"
  exit 0
fi

if [ "${1:-}" = "service-smoke" ]; then
  shift
  service_smoke "$@"
  exit 0
fi

if [ "${1:-}" = "crash-smoke" ]; then
  shift
  crash_smoke "$@"
  exit 0
fi

if [ "${1:-}" = "fleet-smoke" ]; then
  shift
  fleet_smoke "$@"
  exit 0
fi

if [ "${1:-}" = "workload-smoke" ]; then
  shift
  workload_smoke "$@"
  exit 0
fi

BUILD_DIR="${1:-build}"

echo "== configure =="
cmake -B "${BUILD_DIR}" -S .

echo "== build =="
cmake --build "${BUILD_DIR}" -j

echo "== ctest =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j

echo "== fault/anytime suite =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j -L fault

echo "== clang-tidy =="
tools/lint.sh "${BUILD_DIR}"

echo "== lint smoke (examples/scripts) =="
lint_smoke "${BUILD_DIR}"

echo "CI OK"
