#!/usr/bin/env bash
# Tier-1 CI entry point: configure + build + full test suite, then the two
# static-analysis gates — clang-tidy over the sources (tools/lint.sh, skipped
# when clang-tidy is absent) and sqleq-lint over the example scripts.
#
# usage: tools/ci.sh [build-dir]
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== configure =="
cmake -B "${BUILD_DIR}" -S .

echo "== build =="
cmake --build "${BUILD_DIR}" -j

echo "== ctest =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j

echo "== fault/anytime suite =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j -L fault

echo "== clang-tidy =="
tools/lint.sh "${BUILD_DIR}"

echo "== sqleq-lint (examples/scripts) =="
"${BUILD_DIR}/tools/sqleq-lint" examples/scripts/*.sqleq

echo "CI OK"
