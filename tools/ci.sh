#!/usr/bin/env bash
# Tier-1 CI entry point: configure + build + full test suite, then the two
# static-analysis gates — clang-tidy over the sources (tools/lint.sh, skipped
# when clang-tidy is absent) and a lint smoke over the example scripts: each
# examples/scripts/*.sqleq must exit sqleq-lint with its expected code
# (examples/scripts/lint_expected.txt, default 0 = clean).
#
# usage: tools/ci.sh [build-dir]
#        tools/ci.sh bench-smoke [build-dir]
#        tools/ci.sh service-smoke [build-dir]
#        tools/ci.sh crash-smoke [build-dir]
#
# bench-smoke builds the benchmarks, runs each one for a single pinned
# iteration (SQLEQ_BENCH_ITERS=1) from the repo root so every binary emits
# its BENCH_<name>.json there, and validates each file against the Google
# Benchmark JSON shape with check_bench_json. For the chase-scaling and
# homomorphism suites it also snapshots the committed baseline JSON before
# the run and gates the fresh output on check_bench_regress (fails when the
# median cpu_time ratio exceeds 1.5x).
#
# service-smoke builds sqleqd + sqleq-client, boots the daemon on an
# ephemeral port, drives a catalog upload, check, reformulate, and stats
# through the client, then SIGTERMs the daemon and asserts a clean drain
# and a valid Prometheus export (docs/service.md).
#
# crash-smoke exercises the durable memo end to end (docs/service.md,
# "Durability & Recovery"): boot sqleqd with --memo-dir, warm the memo,
# SIGKILL the daemon (no drain), restart it on the same directory, and
# assert the verdict comes back from the recovered tier-2 store
# (memo.disk.recovered > 0 and a memo hit instead of a re-chase).
set -eu

cd "$(dirname "$0")/.."

bench_smoke() {
  local build_dir="${1:-build}"

  echo "== configure =="
  cmake -B "${build_dir}" -S .

  echo "== build (benchmarks + checker) =="
  local targets=()
  for src in bench/bench_*.cc; do
    local name
    name="$(basename "${src}" .cc)"
    [ "${name}" = "bench_main" ] && continue
    targets+=("${name}")
  done
  cmake --build "${build_dir}" -j --target check_bench_json check_bench_regress \
      "${targets[@]}"

  # The bench binaries overwrite BENCH_<name>.json in place, so stash the
  # committed baselines for the regression-gated suites before running.
  local regress_suites=(chase_scaling homomorphism)
  local baseline_dir
  baseline_dir="$(mktemp -d)"
  local suite
  for suite in "${regress_suites[@]}"; do
    if [ -f "BENCH_${suite}.json" ]; then
      cp "BENCH_${suite}.json" "${baseline_dir}/BENCH_${suite}.json"
    fi
  done

  echo "== bench smoke (SQLEQ_BENCH_ITERS=1) =="
  local jsons=()
  for name in "${targets[@]}"; do
    echo "-- ${name}"
    SQLEQ_BENCH_ITERS=1 "${build_dir}/bench/${name}"
    jsons+=("BENCH_${name#bench_}.json")
  done

  echo "== check_bench_json =="
  "${build_dir}/tools/check_bench_json" "${jsons[@]}"

  echo "== check_bench_regress (median cpu_time vs committed baseline) =="
  for suite in "${regress_suites[@]}"; do
    if [ -f "${baseline_dir}/BENCH_${suite}.json" ]; then
      "${build_dir}/tools/check_bench_regress" \
          "BENCH_${suite}.json" "${baseline_dir}/BENCH_${suite}.json" 1.5
    else
      echo "-- no committed baseline for BENCH_${suite}.json, skipping"
    fi
  done
  rm -rf "${baseline_dir}"

  echo "bench-smoke OK"
}

service_smoke() {
  local build_dir="${1:-build}"

  echo "== configure =="
  cmake -B "${build_dir}" -S .

  echo "== build (daemon + client) =="
  cmake --build "${build_dir}" -j --target sqleqd sqleq_client

  echo "== service smoke =="
  local workdir
  workdir="$(mktemp -d)"
  local port_file="${workdir}/port"
  local log="${workdir}/sqleqd.log"
  local metrics="${workdir}/metrics.prom"

  "${build_dir}/tools/sqleqd" --port 0 --port-file "${port_file}" \
      --metrics-out "${metrics}" > "${log}" 2>&1 &
  local pid=$!

  local i
  for i in $(seq 1 100); do
    [ -s "${port_file}" ] && break
    sleep 0.05
  done
  if [ ! -s "${port_file}" ]; then
    echo "sqleqd did not report a port:"
    cat "${log}"
    exit 1
  fi
  local port
  port="$(cat "${port_file}")"
  echo "-- sqleqd up on port ${port} (pid ${pid})"

  cat > "${workdir}/requests.jsonl" <<'EOF'
{"id":"1","cmd":"hello"}
{"id":"2","cmd":"relation","name":"r","arity":2}
{"id":"3","cmd":"relation","name":"s","arity":1}
{"id":"4","cmd":"dep","text":"r(X, Y) -> s(X).","label":"fk"}
{"id":"5","cmd":"check","q1":"Q(X) :- r(X, Y), s(X).","q2":"Q(X) :- r(X, Y).","semantics":"set"}
{"id":"6","cmd":"reformulate","query":"Q(X) :- r(X, Y), s(X).","semantics":"set"}
{"id":"7","cmd":"stats"}
EOF
  local responses="${workdir}/responses.jsonl"
  local prometheus="${workdir}/prometheus.txt"
  "${build_dir}/tools/sqleq-client" --port "${port}" \
      --file "${workdir}/requests.jsonl" --print-prometheus \
      > "${responses}" 2> "${prometheus}"

  grep -Fq '"verdict":"equivalent"' "${responses}" \
      || { echo "check did not come back equivalent:"; cat "${responses}"; exit 1; }
  grep -Fq '"reformulations":["Q(X) :- r(X, Y)."]' "${responses}" \
      || { echo "reformulate missing the minimized query:"; cat "${responses}"; exit 1; }
  grep -Fq 'sqleq_service_requests' "${prometheus}" \
      || { echo "stats export missing service counters:"; cat "${prometheus}"; exit 1; }

  echo "-- draining (SIGTERM)"
  kill -TERM "${pid}"
  local rc=0
  wait "${pid}" || rc=$?
  if [ "${rc}" -ne 0 ]; then
    echo "sqleqd exited with rc=${rc}:"
    cat "${log}"
    exit 1
  fi
  grep -Fq "sqleqd stopped" "${log}" \
      || { echo "no clean shutdown line:"; cat "${log}"; exit 1; }
  grep -Fq 'sqleq_service_requests' "${metrics}" \
      || { echo "--metrics-out export missing service counters:"; cat "${metrics}"; exit 1; }

  rm -rf "${workdir}"
  echo "service-smoke OK"
}

crash_smoke() {
  local build_dir="${1:-build}"

  echo "== configure =="
  cmake -B "${build_dir}" -S .

  echo "== build (daemon + client) =="
  cmake --build "${build_dir}" -j --target sqleqd sqleq_client

  echo "== crash-recovery smoke =="
  local workdir
  workdir="$(mktemp -d)"
  local memo_dir="${workdir}/memo"
  local port_file="${workdir}/port"
  local log="${workdir}/sqleqd.log"

  start_daemon() {
    : > "${port_file}"
    "${build_dir}/tools/sqleqd" --port 0 --port-file "${port_file}" \
        --memo-dir "${memo_dir}" >> "${log}" 2>&1 &
    DAEMON_PID=$!
    local i
    for i in $(seq 1 100); do
      [ -s "${port_file}" ] && break
      sleep 0.05
    done
    if [ ! -s "${port_file}" ]; then
      echo "sqleqd did not report a port:"
      cat "${log}"
      exit 1
    fi
    DAEMON_PORT="$(cat "${port_file}")"
  }

  cat > "${workdir}/warmup.jsonl" <<'EOF'
{"id":"w1","cmd":"relation","name":"r","arity":2}
{"id":"w2","cmd":"relation","name":"s","arity":1}
{"id":"w3","cmd":"dep","text":"r(X, Y) -> s(X).","label":"fk"}
{"id":"w4","cmd":"check","q1":"Q(X) :- r(X, Y), s(X).","q2":"Q(X) :- r(X, Y).","semantics":"set"}
EOF
  cat > "${workdir}/warm.jsonl" <<'EOF'
{"id":"c1","cmd":"relation","name":"r","arity":2}
{"id":"c2","cmd":"relation","name":"s","arity":1}
{"id":"c3","cmd":"dep","text":"r(X, Y) -> s(X).","label":"fk"}
{"id":"c4","cmd":"stats"}
{"id":"c5","cmd":"check","q1":"Q(X) :- r(X, Y), s(X).","q2":"Q(X) :- r(X, Y).","semantics":"set"}
EOF

  start_daemon
  echo "-- sqleqd up on port ${DAEMON_PORT} (pid ${DAEMON_PID}); warming the memo"
  "${build_dir}/tools/sqleq-client" --port "${DAEMON_PORT}" \
      --retries 2 --backoff-ms 10 \
      --file "${workdir}/warmup.jsonl" > "${workdir}/warmup_responses.jsonl"
  grep -Fq '"verdict":"equivalent"' "${workdir}/warmup_responses.jsonl" \
      || { echo "warmup check failed:"; cat "${workdir}/warmup_responses.jsonl"; exit 1; }

  echo "-- SIGKILL (no drain, no warning)"
  kill -KILL "${DAEMON_PID}"
  wait "${DAEMON_PID}" 2>/dev/null || true

  echo "-- restart on the same --memo-dir"
  start_daemon
  local responses="${workdir}/warm_responses.jsonl"
  "${build_dir}/tools/sqleq-client" --port "${DAEMON_PORT}" \
      --retries 2 --backoff-ms 10 \
      --file "${workdir}/warm.jsonl" > "${responses}"

  grep -Eq '"recovered":[1-9]' "${responses}" \
      || { echo "restart recovered nothing from the memo dir:"; cat "${responses}"; exit 1; }
  grep -Fq '"verdict":"equivalent"' "${responses}" \
      || { echo "post-restart check lost the verdict:"; cat "${responses}"; exit 1; }
  grep -Eq '"memo\.disk\.hits":[1-9]' "${responses}" \
      || { echo "post-restart check re-chased instead of hitting the disk tier:"; \
           cat "${responses}"; exit 1; }

  kill -TERM "${DAEMON_PID}"
  local rc=0
  wait "${DAEMON_PID}" || rc=$?
  if [ "${rc}" -ne 0 ]; then
    echo "sqleqd exited with rc=${rc} after drain:"
    cat "${log}"
    exit 1
  fi

  rm -rf "${workdir}"
  echo "crash-smoke OK"
}

# Lints every example script, gating each on its expected sqleq-lint exit
# code (0 clean / 1 warnings-only / 2 errors). Scripts that intentionally
# carry diagnostics declare their expected code in
# examples/scripts/lint_expected.txt as "<file> <code>"; everything else
# must be clean (exit 0).
lint_smoke() {
  local build_dir="${1:-build}"
  local manifest="examples/scripts/lint_expected.txt"
  local script rc expected
  for script in examples/scripts/*.sqleq; do
    expected=0
    if [ -f "${manifest}" ]; then
      local line
      line="$(grep -E "^$(basename "${script}")[[:space:]]" "${manifest}" || true)"
      [ -n "${line}" ] && expected="$(echo "${line}" | awk '{print $2}')"
    fi
    rc=0
    "${build_dir}/tools/sqleq-lint" "${script}" > /dev/null || rc=$?
    if [ "${rc}" -ne "${expected}" ]; then
      echo "sqleq-lint ${script}: exit ${rc}, expected ${expected}"
      "${build_dir}/tools/sqleq-lint" "${script}" || true
      exit 1
    fi
    echo "-- $(basename "${script}"): exit ${rc} (expected ${expected})"
  done
}

if [ "${1:-}" = "bench-smoke" ]; then
  shift
  bench_smoke "$@"
  exit 0
fi

if [ "${1:-}" = "service-smoke" ]; then
  shift
  service_smoke "$@"
  exit 0
fi

if [ "${1:-}" = "crash-smoke" ]; then
  shift
  crash_smoke "$@"
  exit 0
fi

BUILD_DIR="${1:-build}"

echo "== configure =="
cmake -B "${BUILD_DIR}" -S .

echo "== build =="
cmake --build "${BUILD_DIR}" -j

echo "== ctest =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j

echo "== fault/anytime suite =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j -L fault

echo "== clang-tidy =="
tools/lint.sh "${BUILD_DIR}"

echo "== lint smoke (examples/scripts) =="
lint_smoke "${BUILD_DIR}"

echo "CI OK"
