#!/usr/bin/env bash
# Tier-1 CI entry point: configure + build + full test suite, then the two
# static-analysis gates — clang-tidy over the sources (tools/lint.sh, skipped
# when clang-tidy is absent) and sqleq-lint over the example scripts.
#
# usage: tools/ci.sh [build-dir]
#        tools/ci.sh bench-smoke [build-dir]
#
# bench-smoke builds the benchmarks, runs each one for a single pinned
# iteration (SQLEQ_BENCH_ITERS=1) from the repo root so every binary emits
# its BENCH_<name>.json there, and validates each file against the Google
# Benchmark JSON shape with check_bench_json.
set -eu

cd "$(dirname "$0")/.."

bench_smoke() {
  local build_dir="${1:-build}"

  echo "== configure =="
  cmake -B "${build_dir}" -S .

  echo "== build (benchmarks + checker) =="
  local targets=()
  for src in bench/bench_*.cc; do
    local name
    name="$(basename "${src}" .cc)"
    [ "${name}" = "bench_main" ] && continue
    targets+=("${name}")
  done
  cmake --build "${build_dir}" -j --target check_bench_json "${targets[@]}"

  echo "== bench smoke (SQLEQ_BENCH_ITERS=1) =="
  local jsons=()
  for name in "${targets[@]}"; do
    echo "-- ${name}"
    SQLEQ_BENCH_ITERS=1 "${build_dir}/bench/${name}"
    jsons+=("BENCH_${name#bench_}.json")
  done

  echo "== check_bench_json =="
  "${build_dir}/tools/check_bench_json" "${jsons[@]}"

  echo "bench-smoke OK"
}

if [ "${1:-}" = "bench-smoke" ]; then
  shift
  bench_smoke "$@"
  exit 0
fi

BUILD_DIR="${1:-build}"

echo "== configure =="
cmake -B "${BUILD_DIR}" -S .

echo "== build =="
cmake --build "${BUILD_DIR}" -j

echo "== ctest =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j

echo "== fault/anytime suite =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j -L fault

echo "== clang-tidy =="
tools/lint.sh "${BUILD_DIR}"

echo "== sqleq-lint (examples/scripts) =="
"${BUILD_DIR}/tools/sqleq-lint" examples/scripts/*.sqleq

echo "CI OK"
