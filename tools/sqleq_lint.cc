// sqleq-lint: standalone Σ-lint driver over sqleq script files (the command
// language src/shell/engine.h documents). Statically analyzes each script —
// no data is loaded and no chase-and-backchase runs — and prints the
// diagnostics plus a per-file summary line.
//
//   sqleq-lint script.sqleq [more.sqleq ...]
//   sqleq-lint --strict script.sqleq     # warnings count as errors
//   echo "DEP p(X) -> r(X);" | sqleq-lint
//
// Exit status: 0 when every file is clean of errors, 1 when any file has at
// least one error-severity diagnostic, 2 on usage/IO problems.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "shell/lint.h"

namespace {

int Usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--strict] [script-file ...]\n"
               "  lints sqleq scripts (stdin when no files are given)\n"
               "  --strict  escalate warnings to errors\n",
               prog);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--strict") {
      strict = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return Usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }

  sqleq::AnalyzeOptions opts = sqleq::AnalyzeOptions::Full();
  opts.warnings_as_errors = strict;

  bool any_errors = false;
  if (files.empty()) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    sqleq::shell::LintResult result = sqleq::shell::LintScript(buffer.str(), opts);
    std::fputs(result.ToString().c_str(), stdout);
    any_errors = result.HasErrors();
  } else {
    for (const std::string& file : files) {
      std::ifstream in(file);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", file.c_str());
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      sqleq::shell::LintResult result = sqleq::shell::LintScript(buffer.str(), opts);
      if (files.size() > 1) std::printf("== %s ==\n", file.c_str());
      std::fputs(result.ToString().c_str(), stdout);
      any_errors = any_errors || result.HasErrors();
    }
  }
  return any_errors ? 1 : 0;
}
