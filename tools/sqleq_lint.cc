// sqleq-lint: standalone Σ-lint driver over sqleq script files (the command
// language src/shell/engine.h documents). Statically analyzes each script —
// no data is loaded and no chase-and-backchase runs — and prints the
// diagnostics plus a per-file summary line.
//
//   sqleq-lint script.sqleq [more.sqleq ...]
//   sqleq-lint --strict script.sqleq     # warnings count as errors
//   sqleq-lint --metrics-out lint.prom --trace-out lint.json script.sqleq
//   echo "DEP p(X) -> r(X);" | sqleq-lint
//
// --metrics-out writes lint counters (files, statements, per-severity
// diagnostics) in Prometheus text format; --trace-out writes one span per
// linted input as Chrome trace_event JSON (docs/observability.md).
//
// Exit status: 0 when every file is clean (no errors, no warnings), 1 when
// there are warnings but no errors, 2 when any file has at least one
// error-severity diagnostic, 3 on usage/IO problems. --strict escalates
// warnings to errors at emission time, so a warnings-only run exits 2 under
// it (docs/diagnostics.md documents the contract).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "shell/lint.h"
#include "util/telemetry.h"

namespace {

int Usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--strict] [--metrics-out <file>] [--trace-out <file>] "
               "[script-file ...]\n"
               "  lints sqleq scripts (stdin when no files are given)\n"
               "  --strict       escalate warnings to errors\n"
               "  --metrics-out  write lint counters (Prometheus text)\n"
               "  --trace-out    write per-file spans (Chrome trace JSON)\n"
               "  exit: 0 clean, 1 warnings only, 2 errors, 3 usage/IO\n",
               prog);
  return 3;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  out << content;
  out.close();
  if (!out) {
    std::fprintf(stderr, "failed writing %s\n", path.c_str());
    return false;
  }
  return true;
}

/// Lints one input under a "lint.file" span, tallying the counters SHOW in
/// --metrics-out.
sqleq::shell::LintResult LintOne(const std::string& text,
                                 const sqleq::AnalyzeOptions& opts,
                                 sqleq::MetricsRegistry* metrics,
                                 sqleq::TraceSink* trace) {
  sqleq::TraceSpan span(trace, "lint.file");
  sqleq::shell::LintResult result = sqleq::shell::LintScript(text, opts);
  metrics->counter("lint.files").Add();
  metrics->counter("lint.statements").Add(result.statements);
  metrics->counter("lint.errors")
      .Add(result.report.CountOf(sqleq::Severity::kError));
  metrics->counter("lint.warnings")
      .Add(result.report.CountOf(sqleq::Severity::kWarning));
  metrics->counter("lint.notes")
      .Add(result.report.CountOf(sqleq::Severity::kInfo));
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  std::string metrics_out;
  std::string trace_out;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--strict") {
      strict = true;
    } else if (arg == "--metrics-out" || arg == "--trace-out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a file argument\n", arg.c_str());
        return Usage(argv[0]);
      }
      (arg == "--metrics-out" ? metrics_out : trace_out) = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return Usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }

  sqleq::MetricsRegistry metrics;
  sqleq::AnalyzeOptions opts = sqleq::AnalyzeOptions::Full();
  opts.warnings_as_errors = strict;
  opts.metrics = &metrics;  // analysis.diag.<code> counters in --metrics-out

  sqleq::TraceSink trace_sink;
  sqleq::TraceSink* trace = trace_out.empty() ? nullptr : &trace_sink;

  bool any_errors = false;
  bool any_warnings = false;
  if (files.empty()) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    sqleq::shell::LintResult result = LintOne(buffer.str(), opts, &metrics, trace);
    std::fputs(result.ToString().c_str(), stdout);
    any_errors = result.HasErrors();
    any_warnings = result.report.CountOf(sqleq::Severity::kWarning) > 0;
  } else {
    for (const std::string& file : files) {
      std::ifstream in(file);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", file.c_str());
        return 3;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      sqleq::shell::LintResult result =
          LintOne(buffer.str(), opts, &metrics, trace);
      if (files.size() > 1) std::printf("== %s ==\n", file.c_str());
      std::fputs(result.ToString().c_str(), stdout);
      any_errors = any_errors || result.HasErrors();
      any_warnings =
          any_warnings || result.report.CountOf(sqleq::Severity::kWarning) > 0;
    }
  }

  if (!metrics_out.empty() &&
      !WriteFile(metrics_out, metrics.Snapshot().ToPrometheusText())) {
    return 3;
  }
  if (!trace_out.empty() &&
      !WriteFile(trace_out, trace_sink.ToChromeTraceJson())) {
    return 3;
  }
  if (any_errors) return 2;
  return any_warnings ? 1 : 0;
}
