// sqleq-client — line-oriented client for sqleqd (docs/service.md). Reads
// JSON request lines from a file (or stdin), sends each through a
// FleetClient, and prints the response lines. Exits 1 if any response has
// "ok":false, unless --allow-errors. --print-prometheus additionally dumps
// the decoded Prometheus payload of every `stats` response to stderr, which
// is what the ci.sh service-smoke stage validates.
//
// Fleet mode (docs/fleet.md): --shards "a=h:p,b=h:p,..." targets a whole
// fleet — catalog lines broadcast to every shard, expensive lines route to
// the shard owning their canonical signature, stats lines return the
// fleet-wide rollup. --route first sends routed lines to shard 0 instead
// and follows the v2 not_owner redirects (the fleet-smoke stage uses this
// to exercise the redirect path). --max-protocol 1 pins the client to the
// legacy v1 wire behavior (no negotiation, no redirects).
//
// Robustness (docs/robustness.md): --retries enables the pool-level bounded
// retry/backoff loop for overloaded/draining responses and transport
// failures (dead connections are evicted, redialed, and the catalog is
// replayed before the resend); --timeout-ms / --connect-timeout-ms bound
// each read and each (re)dial; --retry-seed fixes the deterministic jitter.
// When retries are on, a request line without an "id" gets one spliced in
// ("auto-<n>") so a resend after a lost response is idempotent on the
// server.
//
// Usage:
//   sqleq-client (--port N [--host H] | --shards SPEC) [--file PATH]
//                [--allow-errors] [--print-prometheus] [--route first]
//                [--max-protocol N] [--retries N] [--backoff-ms N]
//                [--timeout-ms N] [--connect-timeout-ms N] [--retry-seed N]
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "service/fleet_client.h"
#include "service/protocol.h"
#include "service/routing.h"
#include "util/string_util.h"

namespace {

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " (--port N [--host H] | --shards SPEC) [--file PATH]\n"
               "       [--allow-errors] [--print-prometheus] [--route first]\n"
               "       [--max-protocol N] [--retries N] [--backoff-ms N]\n"
               "       [--timeout-ms N] [--connect-timeout-ms N] [--retry-seed N]\n";
  return 2;
}

/// Splices "id":"auto-<n>" into a request line that parses as a JSON object
/// without an id, so retried sends are idempotent. Lines that already carry
/// an id (or do not parse — the server will reject them) pass through.
std::string EnsureRequestId(const std::string& line, uint64_t n) {
  sqleq::Result<sqleq::JsonValue> doc = sqleq::ParseJson(line);
  if (!doc.ok() || !doc->is_object() || doc->Find("id") != nullptr) return line;
  std::string trimmed(sqleq::Trim(line));
  if (trimmed.empty() || trimmed.front() != '{') return line;
  return "{\"id\":\"auto-" + std::to_string(n) + "\"," + trimmed.substr(1);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string shards_spec;
  std::string file;
  bool allow_errors = false;
  bool print_prometheus = false;
  sqleq::service::FleetClientOptions options;
  options.retry.max_attempts = 1;  // retries off unless --retries is given

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      port = std::atoi(v);
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      shards_spec = v;
    } else if (arg == "--route") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      if (std::string(v) == "first") {
        options.route_to_first = true;
      } else if (std::string(v) != "owner") {
        std::cerr << "--route takes 'owner' (default) or 'first'\n";
        return Usage(argv[0]);
      }
    } else if (arg == "--max-protocol") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.max_protocol = std::atoi(v) <= 1
                                 ? sqleq::service::ProtocolVersion::kV1
                                 : sqleq::service::ProtocolVersion::kV2;
    } else if (arg == "--file") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      file = v;
    } else if (arg == "--allow-errors") {
      allow_errors = true;
    } else if (arg == "--print-prometheus") {
      print_prometheus = true;
    } else if (arg == "--retries") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.retry.max_attempts = 1 + static_cast<size_t>(std::atoi(v));
    } else if (arg == "--backoff-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.retry.initial_backoff_ms = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--timeout-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.retry.request_timeout = std::chrono::milliseconds(std::atoll(v));
    } else if (arg == "--connect-timeout-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.retry.connect_timeout = std::chrono::milliseconds(std::atoll(v));
    } else if (arg == "--retry-seed") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.retry.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return Usage(argv[0]);
    }
  }
  if (shards_spec.empty()) {
    if (port <= 0) return Usage(argv[0]);
    shards_spec = host + ":" + std::to_string(port);
  } else if (port > 0) {
    std::cerr << "--shards and --port are mutually exclusive\n";
    return Usage(argv[0]);
  }
  const bool retries_on = options.retry.max_attempts > 1;

  std::istream* in = &std::cin;
  std::ifstream file_in;
  if (!file.empty()) {
    file_in.open(file);
    if (!file_in) {
      std::cerr << "cannot open " << file << "\n";
      return 1;
    }
    in = &file_in;
  }

  {
    sqleq::Result<std::vector<sqleq::service::ShardId>> shards =
        sqleq::service::ParseFleetSpec(shards_spec);
    if (!shards.ok()) {
      std::cerr << "bad shard spec: " << shards.status().ToString() << "\n";
      return 1;
    }
    options.shards = *std::move(shards);
  }
  auto client = sqleq::service::FleetClient::Create(std::move(options));
  if (!client.ok()) {
    std::cerr << "connect failed: " << client.status().ToString() << "\n";
    return 1;
  }

  bool saw_error = false;
  std::string line;
  uint64_t line_no = 0;
  while (std::getline(*in, line)) {
    if (sqleq::Trim(line).empty()) continue;
    ++line_no;
    if (retries_on) line = EnsureRequestId(line, line_no);
    std::string raw;
    auto response = (*client)->Call(line, &raw);
    if (!response.ok()) {
      std::cerr << "request failed: " << response.status().ToString() << "\n";
      return 1;
    }
    std::cout << raw << "\n";
    const sqleq::JsonValue* ok = response->Find("ok");
    if (ok == nullptr || ok->kind != sqleq::JsonValue::Kind::kBool || !ok->boolean) {
      saw_error = true;
    }
    if (print_prometheus) {
      if (const sqleq::JsonValue* prom = response->Find("prometheus");
          prom != nullptr && prom->is_string()) {
        std::cerr << prom->string;
      }
    }
  }
  return (saw_error && !allow_errors) ? 1 : 0;
}
