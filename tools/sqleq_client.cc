// sqleq-client — line-oriented client for sqleqd (docs/service.md). Reads
// JSON request lines from a file (or stdin), sends each to the server, and
// prints the response lines. Exits 1 if any response has "ok":false, unless
// --allow-errors. --print-prometheus additionally dumps the decoded
// Prometheus payload of every `stats` response to stderr, which is what the
// ci.sh service-smoke stage validates.
//
// Usage:
//   sqleq-client --port N [--host H] [--file PATH] [--allow-errors]
//                [--print-prometheus]
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "service/client.h"
#include "service/protocol.h"
#include "util/string_util.h"

namespace {

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --port N [--host H] [--file PATH] [--allow-errors] "
               "[--print-prometheus]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string file;
  bool allow_errors = false;
  bool print_prometheus = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      port = std::atoi(v);
    } else if (arg == "--file") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      file = v;
    } else if (arg == "--allow-errors") {
      allow_errors = true;
    } else if (arg == "--print-prometheus") {
      print_prometheus = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return Usage(argv[0]);
    }
  }
  if (port <= 0) return Usage(argv[0]);

  std::istream* in = &std::cin;
  std::ifstream file_in;
  if (!file.empty()) {
    file_in.open(file);
    if (!file_in) {
      std::cerr << "cannot open " << file << "\n";
      return 1;
    }
    in = &file_in;
  }

  auto client = sqleq::service::ServiceClient::Connect(host, port);
  if (!client.ok()) {
    std::cerr << "connect failed: " << client.status().ToString() << "\n";
    return 1;
  }

  bool saw_error = false;
  std::string line;
  while (std::getline(*in, line)) {
    if (sqleq::Trim(line).empty()) continue;
    std::string raw;
    auto response = client->Call(line, &raw);
    if (!response.ok()) {
      std::cerr << "request failed: " << response.status().ToString() << "\n";
      return 1;
    }
    std::cout << raw << "\n";
    const sqleq::JsonValue* ok = response->Find("ok");
    if (ok == nullptr || ok->kind != sqleq::JsonValue::Kind::kBool || !ok->boolean) {
      saw_error = true;
    }
    if (print_prometheus) {
      if (const sqleq::JsonValue* prom = response->Find("prometheus");
          prom != nullptr && prom->is_string()) {
        std::cerr << prom->string;
      }
    }
  }
  return (saw_error && !allow_errors) ? 1 : 0;
}
