// sqleqd — the sqleq equivalence daemon (docs/service.md). Serves the
// newline-delimited JSON protocol (check / reformulate / lint / stats plus
// the session-state commands) on a TCP port, with a shared byte-bounded
// chase memo, worker-pool execution, admission control, and graceful drain
// on SIGTERM/SIGINT: in-flight C&B runs are cancelled, checkpoint, and
// answer with resumable partial results before the process exits.
//
// Usage:
//   sqleqd [--port N] [--port-file PATH] [--workers N] [--max-inflight N]
//          [--memo-bytes N] [--engine-threads N] [--max-chase-steps N]
//          [--max-candidates N] [--metrics-out PATH]
//          [--memo-dir PATH] [--memo-disk-bytes N] [--memo-fsync]
//          [--degraded-admission] [--degraded-chase-steps N]
//          [--degraded-candidates N] [--retry-after-ms N]
//          [--fleet SPEC --shard-name NAME] [--shard-epoch N]
//
// --memo-dir turns on the tier-2 durable memo (docs/service.md, "Durability
// & Recovery"): warm chase verdicts persist across SIGKILL and restart.
// --degraded-admission swaps load shedding for the narrowed-budget lane
// (docs/robustness.md). --fleet ("a=h:p,b=h:p,...") + --shard-name join a
// sharded fleet (docs/fleet.md): v2 sessions are redirected to the shard
// owning each request, and chase verdicts are pulled from / offered to the
// peer tier of the two-level memo.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "service/server.h"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

bool ParseSizeFlag(const char* value, size_t* out) {
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') return false;
  *out = static_cast<size_t>(parsed);
  return true;
}

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--port N] [--port-file PATH] [--workers N] [--max-inflight N]\n"
               "       [--memo-bytes N] [--engine-threads N] [--max-chase-steps N]\n"
               "       [--max-candidates N] [--metrics-out PATH]\n"
               "       [--memo-dir PATH] [--memo-disk-bytes N] [--memo-fsync]\n"
               "       [--degraded-admission] [--degraded-chase-steps N]\n"
               "       [--degraded-candidates N] [--retry-after-ms N]\n"
               "       [--fleet SPEC --shard-name NAME] [--shard-epoch N]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  sqleq::service::ServerOptions options;
  std::string port_file;
  std::string metrics_out;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    size_t parsed = 0;
    if (arg == "--port") {
      const char* v = next();
      if (v == nullptr || !ParseSizeFlag(v, &parsed)) return Usage(argv[0]);
      options.port = static_cast<int>(parsed);
    } else if (arg == "--port-file") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      port_file = v;
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr || !ParseSizeFlag(v, &parsed)) return Usage(argv[0]);
      options.worker_threads = parsed;
    } else if (arg == "--max-inflight") {
      const char* v = next();
      if (v == nullptr || !ParseSizeFlag(v, &parsed)) return Usage(argv[0]);
      options.max_inflight = parsed;
    } else if (arg == "--memo-bytes") {
      const char* v = next();
      if (v == nullptr || !ParseSizeFlag(v, &parsed)) return Usage(argv[0]);
      options.memo_byte_limit = parsed;
    } else if (arg == "--engine-threads") {
      const char* v = next();
      if (v == nullptr || !ParseSizeFlag(v, &parsed)) return Usage(argv[0]);
      options.default_budget.threads = parsed;
    } else if (arg == "--max-chase-steps") {
      const char* v = next();
      if (v == nullptr || !ParseSizeFlag(v, &parsed)) return Usage(argv[0]);
      options.default_budget.max_chase_steps = parsed;
    } else if (arg == "--max-candidates") {
      const char* v = next();
      if (v == nullptr || !ParseSizeFlag(v, &parsed)) return Usage(argv[0]);
      options.default_budget.max_candidates = parsed;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      metrics_out = v;
    } else if (arg == "--memo-dir") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.memo_dir = v;
    } else if (arg == "--memo-disk-bytes") {
      const char* v = next();
      if (v == nullptr || !ParseSizeFlag(v, &parsed)) return Usage(argv[0]);
      options.memo_disk_bytes = parsed;
    } else if (arg == "--memo-fsync") {
      options.memo_fsync = true;
    } else if (arg == "--degraded-admission") {
      options.degraded_admission = true;
    } else if (arg == "--degraded-chase-steps") {
      const char* v = next();
      if (v == nullptr || !ParseSizeFlag(v, &parsed)) return Usage(argv[0]);
      options.degraded_chase_steps = parsed;
    } else if (arg == "--degraded-candidates") {
      const char* v = next();
      if (v == nullptr || !ParseSizeFlag(v, &parsed)) return Usage(argv[0]);
      options.degraded_candidates = parsed;
    } else if (arg == "--retry-after-ms") {
      const char* v = next();
      if (v == nullptr || !ParseSizeFlag(v, &parsed)) return Usage(argv[0]);
      options.retry_after_ms = parsed;
    } else if (arg == "--fleet") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      sqleq::Result<std::vector<sqleq::service::ShardId>> fleet =
          sqleq::service::ParseFleetSpec(v);
      if (!fleet.ok()) {
        std::cerr << "sqleqd: --fleet: " << fleet.status().ToString() << "\n";
        return 2;
      }
      options.fleet = *std::move(fleet);
    } else if (arg == "--shard-name") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.shard_name = v;
    } else if (arg == "--shard-epoch") {
      const char* v = next();
      if (v == nullptr || !ParseSizeFlag(v, &parsed)) return Usage(argv[0]);
      options.shard_epoch = parsed;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return Usage(argv[0]);
    }
  }

  sqleq::service::Server server(options);
  sqleq::Status status = server.Start();
  if (!status.ok()) {
    std::cerr << "sqleqd: " << status.ToString() << "\n";
    return 1;
  }
  std::cout << "sqleqd listening on port " << server.port() << std::endl;
  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::trunc);
    out << server.port() << "\n";
  }

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  // Signal handlers only set a flag; the drain itself (mutexes, socket
  // shutdowns) runs on this thread.
  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::cout << "sqleqd draining..." << std::endl;
  server.RequestDrain();
  server.Wait();

  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out, std::ios::trunc);
    out << server.metrics().Snapshot().ToPrometheusText();
  }
  std::cout << "sqleqd stopped" << std::endl;
  return 0;
}
