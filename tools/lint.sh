#!/usr/bin/env bash
# clang-tidy runner over the sqleq sources, driven by the .clang-tidy config
# at the repo root. Needs a configured build directory with
# compile_commands.json (cmake -B build -S . produces one; see
# CMAKE_EXPORT_COMPILE_COMMANDS in CMakeLists.txt). Skips cleanly when
# clang-tidy is not installed, so CI works on minimal toolchains.
#
# usage: tools/lint.sh [build-dir]
set -u

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint.sh: clang-tidy not found; skipping static analysis" >&2
  exit 0
fi
if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  echo "lint.sh: ${BUILD_DIR}/compile_commands.json missing;" \
       "configure with: cmake -B ${BUILD_DIR} -S ." >&2
  exit 2
fi

FILES=$(find src tools examples -name '*.cc' -o -name '*.cpp' | sort)
STATUS=0
for f in ${FILES}; do
  clang-tidy -p "${BUILD_DIR}" --quiet "$f" || STATUS=1
done
exit ${STATUS}
