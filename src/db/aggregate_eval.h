// Evaluation of aggregate queries: the three-step bag-set → group →
// aggregate semantics of §2.5.
#ifndef SQLEQ_DB_AGGREGATE_EVAL_H_
#define SQLEQ_DB_AGGREGATE_EVAL_H_

#include "db/database.h"
#include "db/eval.h"
#include "ir/query.h"
#include "util/status.h"

namespace sqleq {

/// Evaluates an aggregate query on a (set-valued) database:
///   1. compute B = Q̆(D, BS) for the core Q̆;
///   2. group B's tuples by the grouping arguments;
///   3. per group, fold the aggregate over the bag of aggregate-argument
///      values and emit one tuple (grouping values..., aggregate value).
///
/// sum and count produce integer results; sum requires integer inputs.
/// max/min compare integers numerically and strings lexicographically, and
/// require a type-homogeneous group. The result is a set-valued Bag.
Result<Bag> EvaluateAggregate(const AggregateQuery& q, const Database& db);

}  // namespace sqleq

#endif  // SQLEQ_DB_AGGREGATE_EVAL_H_
