// Dependency satisfaction on instances: D |= σ and D |= Σ (§2.4).
#ifndef SQLEQ_DB_SATISFACTION_H_
#define SQLEQ_DB_SATISFACTION_H_

#include <optional>
#include <string>

#include "constraints/dependency.h"
#include "db/database.h"
#include "util/status.h"

namespace sqleq {

/// True iff `db` (read as core-sets; satisfaction is insensitive to
/// multiplicities) satisfies the dependency: every satisfying assignment of
/// the body extends to the head (tgd) or equates the two sides (egd).
Result<bool> Satisfies(const Database& db, const Dependency& dep);

/// True iff `db` satisfies every dependency of Σ.
Result<bool> Satisfies(const Database& db, const DependencySet& sigma);

/// Like Satisfies(Σ) but reports the first violated dependency's label (or
/// its text if unlabelled); nullopt if all hold.
Result<std::optional<std::string>> FirstViolated(const Database& db,
                                                 const DependencySet& sigma);

}  // namespace sqleq

#endif  // SQLEQ_DB_SATISFACTION_H_
