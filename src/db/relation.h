// RelationInstance: one bag-valued relation of a database instance.
#ifndef SQLEQ_DB_RELATION_H_
#define SQLEQ_DB_RELATION_H_

#include <string>

#include "db/tuple.h"
#include "util/status.h"

namespace sqleq {

/// A named, fixed-arity, bag-valued relation. A relation is set valued when
/// every multiplicity is 1 (§2.1).
class RelationInstance {
 public:
  RelationInstance() = default;
  RelationInstance(std::string name, size_t arity)
      : name_(std::move(name)), arity_(arity) {}

  const std::string& name() const { return name_; }
  size_t arity() const { return arity_; }

  /// Inserts `count` copies of `t`. Fails on arity mismatch or a tuple
  /// containing variables.
  Status Insert(const Tuple& t, uint64_t count = 1);

  /// Multiplicity of `t` in the bag.
  uint64_t Count(const Tuple& t) const { return bag_.Count(t); }

  /// True iff some copy of `t` is present.
  bool Contains(const Tuple& t) const { return bag_.Count(t) > 0; }

  const Bag& bag() const { return bag_; }
  size_t CoreSize() const { return bag_.CoreSize(); }
  uint64_t TotalSize() const { return bag_.TotalSize(); }
  bool IsSetValued() const { return bag_.IsSetValued(); }
  bool empty() const { return bag_.empty(); }

  /// Collapses all multiplicities to 1.
  RelationInstance CoreSet() const;

  std::string ToString() const;

 private:
  std::string name_;
  size_t arity_ = 0;
  Bag bag_;
};

}  // namespace sqleq

#endif  // SQLEQ_DB_RELATION_H_
