#include "db/database.h"

#include <cassert>

namespace sqleq {

Status Database::Insert(const std::string& name, const Tuple& t, uint64_t count) {
  if (!schema_.HasRelation(name)) {
    return Status::NotFound("unknown relation '" + name + "'");
  }
  size_t arity = schema_.ArityOf(name);
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    it = relations_.emplace(name, RelationInstance(name, arity)).first;
  }
  if (schema_.IsSetValued(name) && count > 0) {
    uint64_t existing = it->second.Count(t);
    if (existing + count > 1) {
      return Status::FailedPrecondition(
          "relation '" + name + "' is set valued in all instances; duplicate insert of " +
          TupleToString(t));
    }
  }
  return it->second.Insert(t, count);
}

Database& Database::Add(const std::string& name, std::initializer_list<int64_t> values,
                        uint64_t count) {
  Status s = Insert(name, IntTuple(values), count);
  assert(s.ok() && "Database::Add failed");
  (void)s;
  return *this;
}

Result<RelationInstance> Database::GetRelation(const std::string& name) const {
  if (!schema_.HasRelation(name)) {
    return Status::NotFound("unknown relation '" + name + "'");
  }
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return RelationInstance(name, schema_.ArityOf(name));
  }
  return it->second;
}

RelationInstance* Database::GetMutableRelation(const std::string& name) {
  if (!schema_.HasRelation(name)) return nullptr;
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    it = relations_.emplace(name, RelationInstance(name, schema_.ArityOf(name))).first;
  }
  return &it->second;
}

bool Database::IsSetValued() const {
  for (const auto& [_, rel] : relations_) {
    if (!rel.IsSetValued()) return false;
  }
  return true;
}

Database Database::CoreSet() const {
  Database out(schema_);
  for (const auto& [name, rel] : relations_) {
    out.relations_.emplace(name, rel.CoreSet());
  }
  return out;
}

uint64_t Database::TotalSize() const {
  uint64_t total = 0;
  for (const auto& [_, rel] : relations_) total += rel.TotalSize();
  return total;
}

std::string Database::ToString() const {
  std::string out;
  for (const auto& [_, rel] : relations_) {
    if (rel.empty()) continue;
    out += rel.ToString();
    out += '\n';
  }
  return out;
}

Result<CanonicalDatabase> BuildCanonicalDatabase(const ConjunctiveQuery& q,
                                                 const Schema& schema) {
  CanonicalDatabase out;
  // Drop set-valued flags during construction: D(Q) is set valued by
  // definition and duplicate atoms in Q map to a single tuple anyway, but a
  // schema flag must not reject the (idempotent) repeat insert.
  Schema relaxed = schema;
  for (const std::string& name : schema.RelationNames()) {
    SQLEQ_RETURN_IF_ERROR(relaxed.SetSetValued(name, false));
  }
  out.database = Database(relaxed);
  for (Term v : q.BodyVariables()) {
    // Fresh constants are namespaced with '@' so they cannot collide with
    // user constants (which never render with a leading '@').
    out.assignment.emplace(v, Term::Str("@" + std::string(v.name())));
  }
  for (const Atom& atom : q.body()) {
    if (!schema.HasRelation(atom.predicate())) {
      return Status::NotFound("query atom uses unknown relation '" + atom.predicate() +
                              "'");
    }
    if (schema.ArityOf(atom.predicate()) != atom.arity()) {
      return Status::InvalidArgument("atom " + atom.ToString() +
                                     " disagrees with schema arity " +
                                     std::to_string(schema.ArityOf(atom.predicate())));
    }
    Tuple t;
    t.reserve(atom.arity());
    for (Term arg : atom.args()) t.push_back(ApplyTermMap(out.assignment, arg));
    // Duplicate atoms yield the same ground tuple; keep D(Q) set valued.
    RelationInstance* rel = out.database.GetMutableRelation(atom.predicate());
    if (rel->Count(t) == 0) {
      SQLEQ_RETURN_IF_ERROR(out.database.Insert(atom.predicate(), t));
    }
  }
  return out;
}

Result<CanonicalDatabase> BuildCanonicalDatabase(const ConjunctiveQuery& q) {
  SQLEQ_ASSIGN_OR_RETURN(Schema schema, InferSchema({q}));
  return BuildCanonicalDatabase(q, schema);
}

Result<Schema> InferSchema(const std::vector<ConjunctiveQuery>& queries,
                           const std::vector<Atom>& extra_atoms) {
  Schema schema;
  auto add_atom = [&schema](const Atom& atom) -> Status {
    if (schema.HasRelation(atom.predicate())) {
      if (schema.ArityOf(atom.predicate()) != atom.arity()) {
        return Status::InvalidArgument("predicate '" + atom.predicate() +
                                       "' used with arities " +
                                       std::to_string(schema.ArityOf(atom.predicate())) +
                                       " and " + std::to_string(atom.arity()));
      }
      return Status::OK();
    }
    return schema.AddRelation(atom.predicate(), atom.arity());
  };
  for (const ConjunctiveQuery& q : queries) {
    for (const Atom& atom : q.body()) SQLEQ_RETURN_IF_ERROR(add_atom(atom));
  }
  for (const Atom& atom : extra_atoms) SQLEQ_RETURN_IF_ERROR(add_atom(atom));
  return schema;
}

}  // namespace sqleq
