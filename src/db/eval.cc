#include "db/eval.h"

namespace sqleq {
namespace {

/// Backtracking enumeration of satisfying assignments. Atoms are matched in
/// most-constrained-first order: at each step the pending atom with the most
/// already-bound arguments is chosen, which prunes the search sharply on the
/// join-heavy conjunctions produced by the chase.
class AssignmentEnumerator {
 public:
  AssignmentEnumerator(const std::vector<Atom>& atoms, const Database& db,
                       const TermMap& fixed)
      : atoms_(atoms), db_(db), assignment_(fixed) {}

  /// Validates atoms against the schema, then runs the search. `fn` returns
  /// false to stop. On completion, reports whether enumeration ran to
  /// exhaustion (true) or was stopped by `fn` (false).
  Result<bool> Run(const std::function<bool(const TermMap&)>& fn) {
    for (const Atom& atom : atoms_) {
      if (!db_.schema().HasRelation(atom.predicate())) {
        return Status::NotFound("atom " + atom.ToString() + " uses unknown relation '" +
                                atom.predicate() + "'");
      }
      if (db_.schema().ArityOf(atom.predicate()) != atom.arity()) {
        return Status::InvalidArgument("atom " + atom.ToString() +
                                       " disagrees with schema arity");
      }
    }
    used_.assign(atoms_.size(), false);
    return Recurse(0, fn);
  }

 private:
  size_t PickNextAtom() const {
    size_t best = atoms_.size();
    int best_bound = -1;
    for (size_t i = 0; i < atoms_.size(); ++i) {
      if (used_[i]) continue;
      int bound = 0;
      for (Term t : atoms_[i].args()) {
        if (t.IsConstant() || assignment_.count(t) > 0) ++bound;
      }
      if (bound > best_bound) {
        best_bound = bound;
        best = i;
      }
    }
    return best;
  }

  bool Recurse(size_t depth, const std::function<bool(const TermMap&)>& fn) {
    if (depth == atoms_.size()) return fn(assignment_);
    size_t idx = PickNextAtom();
    used_[idx] = true;
    const Atom& atom = atoms_[idx];
    // GetRelation cannot fail: predicates were validated in Run().
    RelationInstance rel = std::move(db_.GetRelation(atom.predicate())).value();
    bool keep_going = true;
    for (const auto& [tuple, _] : rel.bag().counts()) {
      std::vector<Term> newly_bound;
      bool match = true;
      for (size_t i = 0; i < atom.arity(); ++i) {
        Term arg = atom.args()[i];
        Term val = tuple[i];
        if (arg.IsConstant()) {
          if (arg != val) {
            match = false;
            break;
          }
          continue;
        }
        auto it = assignment_.find(arg);
        if (it != assignment_.end()) {
          if (it->second != val) {
            match = false;
            break;
          }
        } else {
          assignment_.emplace(arg, val);
          newly_bound.push_back(arg);
        }
      }
      if (match) {
        keep_going = Recurse(depth + 1, fn);
      }
      for (Term v : newly_bound) assignment_.erase(v);
      if (!keep_going) break;
    }
    used_[idx] = false;
    return keep_going;
  }

  const std::vector<Atom>& atoms_;
  const Database& db_;
  TermMap assignment_;
  std::vector<bool> used_;
};

}  // namespace

const char* SemanticsToString(Semantics s) {
  switch (s) {
    case Semantics::kSet:
      return "S";
    case Semantics::kBag:
      return "B";
    case Semantics::kBagSet:
      return "BS";
  }
  return "?";
}

Status ForEachSatisfyingAssignment(const std::vector<Atom>& atoms, const Database& db,
                                   const TermMap& fixed,
                                   const std::function<bool(const TermMap&)>& fn) {
  AssignmentEnumerator e(atoms, db, fixed);
  SQLEQ_ASSIGN_OR_RETURN(bool exhausted, e.Run(fn));
  (void)exhausted;
  return Status::OK();
}

Result<bool> HasSatisfyingAssignment(const std::vector<Atom>& atoms, const Database& db,
                                     const TermMap& fixed) {
  AssignmentEnumerator e(atoms, db, fixed);
  SQLEQ_ASSIGN_OR_RETURN(bool exhausted, e.Run([](const TermMap&) { return false; }));
  // The search stops at the first satisfying assignment; if it ran to
  // exhaustion none exists.
  return !exhausted;
}

Result<Bag> Evaluate(const ConjunctiveQuery& q, const Database& db, Semantics sem) {
  Bag out;
  auto head_tuple = [&q](const TermMap& gamma) {
    Tuple t;
    t.reserve(q.head().size());
    for (Term h : q.head()) t.push_back(ApplyTermMap(gamma, h));
    return t;
  };
  Status status = Status::OK();
  SQLEQ_RETURN_IF_ERROR(ForEachSatisfyingAssignment(
      q.body(), db, TermMap(), [&](const TermMap& gamma) {
        switch (sem) {
          case Semantics::kSet: {
            Tuple t = head_tuple(gamma);
            if (out.Count(t) == 0) out.Add(t, 1);
            break;
          }
          case Semantics::kBagSet: {
            out.Add(head_tuple(gamma), 1);
            break;
          }
          case Semantics::kBag: {
            // Multiplicity contribution Π mᵢ over the subgoals (§2.2).
            uint64_t mult = 1;
            for (const Atom& atom : q.body()) {
              Tuple t;
              t.reserve(atom.arity());
              for (Term arg : atom.args()) t.push_back(ApplyTermMap(gamma, arg));
              Result<RelationInstance> rel = db.GetRelation(atom.predicate());
              if (!rel.ok()) {
                status = rel.status();
                return false;
              }
              mult *= rel->Count(t);
            }
            out.Add(head_tuple(gamma), mult);
            break;
          }
        }
        return true;
      }));
  SQLEQ_RETURN_IF_ERROR(status);
  return out;
}

}  // namespace sqleq
