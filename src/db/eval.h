// Evaluation of CQ queries under set, bag, and bag-set semantics — the
// literal implementation of the paper's §2.1–2.2 definitions. This engine is
// the model-checking oracle used by tests to cross-validate the symbolic
// equivalence procedures.
#ifndef SQLEQ_DB_EVAL_H_
#define SQLEQ_DB_EVAL_H_

#include <functional>

#include "db/database.h"
#include "ir/query.h"
#include "util/status.h"

namespace sqleq {

/// The three query-evaluation semantics of the paper.
enum class Semantics {
  kSet,     ///< S: set-valued database, set answer.
  kBag,     ///< B: bag-valued database, bag answer (SQL default without keys).
  kBagSet,  ///< BS: set-valued database, bag answer (SQL without DISTINCT).
};

/// "S", "B", or "BS".
const char* SemanticsToString(Semantics s);

/// Evaluates `q` on `db`.
///
/// * kSet: the set of tuples γ(X̄) over satisfying assignments γ (§2.1);
///   multiplicities in the result are all 1. Relations are read as their
///   core-sets.
/// * kBagSet: each satisfying assignment γ w.r.t. the core-sets contributes
///   one copy of γ(X̄) (§2.2). For a set-valued `db` this is exactly the
///   paper's Q(D,BS); for a bag-valued `db` it equals Q(coreSet(D),BS).
/// * kBag: each satisfying assignment γ contributes Π mᵢ copies, where mᵢ is
///   the multiplicity of the tuple matched by the i-th subgoal (§2.2).
///
/// Fails if a body atom references a relation unknown to the database schema
/// or with the wrong arity.
Result<Bag> Evaluate(const ConjunctiveQuery& q, const Database& db, Semantics sem);

/// Enumerates every assignment γ of the variables of `atoms` to constants
/// that satisfies the conjunction w.r.t. the core-sets of `db`, extending the
/// (possibly empty) partial assignment `fixed`. Invokes `fn` once per
/// satisfying assignment; `fn` returns false to stop the enumeration early.
/// The TermMap passed to `fn` maps every variable of `atoms` (plus the fixed
/// bindings) to constants.
Status ForEachSatisfyingAssignment(const std::vector<Atom>& atoms, const Database& db,
                                   const TermMap& fixed,
                                   const std::function<bool(const TermMap&)>& fn);

/// True if at least one satisfying assignment extends `fixed`.
Result<bool> HasSatisfyingAssignment(const std::vector<Atom>& atoms, const Database& db,
                                     const TermMap& fixed);

}  // namespace sqleq

#endif  // SQLEQ_DB_EVAL_H_
