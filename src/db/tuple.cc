#include "db/tuple.h"

namespace sqleq {

Tuple IntTuple(std::initializer_list<int64_t> values) {
  Tuple t;
  t.reserve(values.size());
  for (int64_t v : values) t.push_back(Term::Int(v));
  return t;
}

std::string TupleToString(const Tuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += t[i].ToString();
  }
  out += ")";
  return out;
}

void Bag::Add(const Tuple& t, uint64_t count) {
  if (count == 0) return;
  counts_[t] += count;
}

uint64_t Bag::Count(const Tuple& t) const {
  auto it = counts_.find(t);
  return it == counts_.end() ? 0 : it->second;
}

uint64_t Bag::TotalSize() const {
  uint64_t total = 0;
  for (const auto& [_, c] : counts_) total += c;
  return total;
}

bool Bag::IsSetValued() const {
  for (const auto& [_, c] : counts_) {
    if (c != 1) return false;
  }
  return true;
}

Bag Bag::CoreSet() const {
  Bag out;
  for (const auto& [t, _] : counts_) out.Add(t, 1);
  return out;
}

std::string Bag::ToString() const {
  std::string out = "{{";
  bool first = true;
  for (const auto& [t, c] : counts_) {
    if (c <= 4) {
      for (uint64_t i = 0; i < c; ++i) {
        if (!first) out += ", ";
        first = false;
        out += TupleToString(t);
      }
    } else {
      if (!first) out += ", ";
      first = false;
      out += TupleToString(t) + " x " + std::to_string(c);
    }
  }
  out += "}}";
  return out;
}

}  // namespace sqleq
