// Workload generation: random queries, random instances, and a bounded
// repair loop that upgrades random instances to models of Σ. Shared by the
// randomized property tests and the benchmark harness; downstream users get
// the same machinery for fuzzing their own dependency sets.
#ifndef SQLEQ_DB_GENERATOR_H_
#define SQLEQ_DB_GENERATOR_H_

#include "constraints/dependency.h"
#include "db/database.h"
#include "ir/query.h"
#include "ir/schema.h"
#include "util/rng.h"
#include "util/status.h"

namespace sqleq {

struct RandomQueryOptions {
  int atoms = 3;
  int variable_pool = 3;
  /// Probability that an argument position holds a small integer constant.
  double constant_probability = 0.1;
  int constant_domain = 3;
};

/// A random safe CQ over `schema`: atoms drawn uniformly over the relations,
/// arguments from a shared variable pool (plus occasional constants), head
/// projecting a random nonempty subset of the used variables (or a constant
/// for variable-free bodies). Requires a nonempty schema.
Result<ConjunctiveQuery> RandomQuery(const Schema& schema, const RandomQueryOptions& options,
                                     Rng* rng);

struct RandomDatabaseOptions {
  int max_tuples_per_relation = 5;
  int domain = 4;
  /// Maximum multiplicity for bag-valued relations (set-valued relations
  /// always get multiplicity 1).
  int max_multiplicity = 3;
};

/// A random instance of `schema` over a small integer domain, honouring the
/// schema's set-valued flags.
Result<Database> RandomDatabase(const Schema& schema, const RandomDatabaseOptions& options,
                                Rng* rng);

/// Repairs `db` toward Σ by an oblivious-chase-style fix-point: violated
/// tgds insert their head tuples with fresh integer constants (outside the
/// random domain); egd violations are NOT repaired. Returns true iff
/// db |= Σ on exit within `max_rounds` rounds — callers discard instances
/// where it returns false.
Result<bool> RepairTowardSigma(Database* db, const DependencySet& sigma, int max_rounds);

}  // namespace sqleq

#endif  // SQLEQ_DB_GENERATOR_H_
