#include "db/generator.h"

#include "db/eval.h"
#include "db/satisfaction.h"

namespace sqleq {

Result<ConjunctiveQuery> RandomQuery(const Schema& schema,
                                     const RandomQueryOptions& options, Rng* rng) {
  std::vector<RelationInfo> relations = schema.Relations();
  if (relations.empty()) {
    return Status::InvalidArgument("cannot generate queries over an empty schema");
  }
  if (options.atoms < 1 || options.variable_pool < 1) {
    return Status::InvalidArgument("RandomQueryOptions requires atoms, pool >= 1");
  }
  std::vector<Term> pool;
  for (int i = 0; i < options.variable_pool; ++i) {
    pool.push_back(Term::Var("RV" + std::to_string(i)));
  }
  std::vector<Atom> body;
  for (int i = 0; i < options.atoms; ++i) {
    const RelationInfo& rel = relations[rng->Index(relations.size())];
    std::vector<Term> args;
    for (size_t j = 0; j < rel.arity; ++j) {
      if (rng->Chance(options.constant_probability)) {
        args.push_back(Term::Int(rng->UniformInt(0, options.constant_domain - 1)));
      } else {
        args.push_back(pool[rng->Index(pool.size())]);
      }
    }
    body.emplace_back(rel.name, std::move(args));
  }
  std::vector<Term> used = DistinctVariables(body);
  std::vector<Term> head;
  if (used.empty()) {
    head.push_back(Term::Int(0));
  } else {
    size_t k = 1 + rng->Index(used.size());
    rng->Shuffle(&used);
    head.assign(used.begin(), used.begin() + k);
  }
  return ConjunctiveQuery::Create("R", std::move(head), std::move(body));
}

Result<Database> RandomDatabase(const Schema& schema,
                                const RandomDatabaseOptions& options, Rng* rng) {
  Database db(schema);
  for (const RelationInfo& rel : schema.Relations()) {
    int rows = rng->UniformInt(0, options.max_tuples_per_relation);
    for (int i = 0; i < rows; ++i) {
      Tuple t;
      for (size_t j = 0; j < rel.arity; ++j) {
        t.push_back(Term::Int(rng->UniformInt(0, options.domain - 1)));
      }
      uint64_t mult = 1;
      if (!rel.set_valued && options.max_multiplicity > 1) {
        mult = static_cast<uint64_t>(rng->UniformInt(1, options.max_multiplicity));
      }
      if (rel.set_valued) {
        SQLEQ_ASSIGN_OR_RETURN(RelationInstance existing, db.GetRelation(rel.name));
        if (existing.Contains(t)) continue;  // honour the set-valued flag
      }
      SQLEQ_RETURN_IF_ERROR(db.Insert(rel.name, t, mult));
    }
  }
  return db;
}

Result<bool> RepairTowardSigma(Database* db, const DependencySet& sigma,
                               int max_rounds) {
  int64_t fresh = 1000000;  // values outside the random domain
  for (int round = 0; round < max_rounds; ++round) {
    bool changed = false;
    for (const Dependency& dep : sigma) {
      if (dep.IsEgd()) continue;  // egd violations are not repaired
      const Tgd& tgd = dep.tgd();
      std::vector<TermMap> pending;
      Status inner = Status::OK();
      SQLEQ_RETURN_IF_ERROR(ForEachSatisfyingAssignment(
          tgd.body(), *db, TermMap(), [&](const TermMap& gamma) {
            Result<bool> extends = HasSatisfyingAssignment(tgd.head(), *db, gamma);
            if (!extends.ok()) {
              inner = extends.status();
              return false;
            }
            if (!*extends) pending.push_back(gamma);
            return true;
          }));
      SQLEQ_RETURN_IF_ERROR(inner);
      for (const TermMap& gamma : pending) {
        TermMap full = gamma;
        for (Term z : tgd.ExistentialVariables()) {
          full.emplace(z, Term::Int(fresh++));
        }
        for (const Atom& head_atom : tgd.head()) {
          Tuple t;
          for (Term arg : head_atom.args()) t.push_back(ApplyTermMap(full, arg));
          SQLEQ_ASSIGN_OR_RETURN(RelationInstance rel,
                                 db->GetRelation(head_atom.predicate()));
          if (rel.Contains(t)) continue;
          SQLEQ_RETURN_IF_ERROR(db->Insert(head_atom.predicate(), t));
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return Satisfies(*db, sigma);
}

}  // namespace sqleq
