// Database: an instance over a Schema, plus canonical-database construction.
#ifndef SQLEQ_DB_DATABASE_H_
#define SQLEQ_DB_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "db/relation.h"
#include "ir/query.h"
#include "ir/schema.h"
#include "util/status.h"

namespace sqleq {

/// A (generally bag-valued) database instance: one RelationInstance per
/// relation symbol of its schema. Relations missing from the map are empty.
class Database {
 public:
  Database() = default;
  explicit Database(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  /// Inserts `count` copies of `t` into relation `name`. Fails if the
  /// relation is unknown, the arity mismatches, or the relation is flagged
  /// set valued in the schema and the insert would create a duplicate.
  Status Insert(const std::string& name, const Tuple& t, uint64_t count = 1);

  /// Convenience: Insert of an all-integer tuple; asserts success.
  Database& Add(const std::string& name, std::initializer_list<int64_t> values,
                uint64_t count = 1);

  /// The instance of `name` (empty instance if nothing inserted). Fails only
  /// for unknown relations.
  Result<RelationInstance> GetRelation(const std::string& name) const;

  /// Mutable access used by generators; creates the empty instance on
  /// demand. Returns nullptr for unknown relations.
  RelationInstance* GetMutableRelation(const std::string& name);

  /// True if every relation of the instance is set valued (§2.1).
  bool IsSetValued() const;

  /// The instance with every relation collapsed to its core-set.
  Database CoreSet() const;

  /// Total tuple count across relations (duplicates counted).
  uint64_t TotalSize() const;

  std::string ToString() const;

 private:
  Schema schema_;
  std::map<std::string, RelationInstance> relations_;
};

/// The canonical database D(Q) of a CQ query (§2.1): each body atom becomes
/// a tuple; variables are consistently replaced by fresh constants distinct
/// from every constant of Q. Also returns the variable→constant assignment
/// used (the "canonical assignment"), which satisfies Q's body by
/// construction.
struct CanonicalDatabase {
  Database database;
  TermMap assignment;  // body variables -> fresh constants
};

/// Builds D(Q) over `schema`. Fails if a body atom references a relation
/// unknown to the schema or with mismatched arity. Set-valued schema flags
/// are ignored during construction (D(Q) is set valued by definition).
Result<CanonicalDatabase> BuildCanonicalDatabase(const ConjunctiveQuery& q,
                                                 const Schema& schema);

/// Infers a minimal schema from the atoms of `q` (every predicate gets the
/// arity of its first occurrence; no set-valued flags), then builds D(Q).
/// Fails if a predicate is used with two different arities.
Result<CanonicalDatabase> BuildCanonicalDatabase(const ConjunctiveQuery& q);

/// Infers a schema covering every predicate in `queries` and `extra_atoms`.
Result<Schema> InferSchema(const std::vector<ConjunctiveQuery>& queries,
                           const std::vector<Atom>& extra_atoms = {});

}  // namespace sqleq

#endif  // SQLEQ_DB_DATABASE_H_
