#include "db/relation.h"

namespace sqleq {

Status RelationInstance::Insert(const Tuple& t, uint64_t count) {
  if (t.size() != arity_) {
    return Status::InvalidArgument("tuple arity " + std::to_string(t.size()) +
                                   " does not match relation '" + name_ + "' arity " +
                                   std::to_string(arity_));
  }
  for (Term x : t) {
    if (!x.IsConstant()) {
      return Status::InvalidArgument("tuple for '" + name_ +
                                     "' contains a non-constant term " + x.ToString());
    }
  }
  bag_.Add(t, count);
  return Status::OK();
}

RelationInstance RelationInstance::CoreSet() const {
  RelationInstance out(name_, arity_);
  out.bag_ = bag_.CoreSet();
  return out;
}

std::string RelationInstance::ToString() const {
  return name_ + " = " + bag_.ToString();
}

}  // namespace sqleq
