#include "db/aggregate_eval.h"

#include <map>

namespace sqleq {
namespace {

Result<Term> FoldAggregate(AggregateFunction fn, const Bag& values) {
  switch (fn) {
    case AggregateFunction::kCount:
    case AggregateFunction::kCountStar:
      return Term::Int(static_cast<int64_t>(values.TotalSize()));
    case AggregateFunction::kSum: {
      int64_t total = 0;
      for (const auto& [t, c] : values.counts()) {
        const Value& v = t[0].value();
        if (!std::holds_alternative<int64_t>(v)) {
          return Status::InvalidArgument("sum over non-integer value " +
                                         t[0].ToString());
        }
        total += std::get<int64_t>(v) * static_cast<int64_t>(c);
      }
      return Term::Int(total);
    }
    case AggregateFunction::kMax:
    case AggregateFunction::kMin: {
      bool want_max = fn == AggregateFunction::kMax;
      bool first = true;
      bool is_int = false;
      int64_t best_int = 0;
      std::string best_str;
      for (const auto& [t, _] : values.counts()) {
        const Value& v = t[0].value();
        bool this_int = std::holds_alternative<int64_t>(v);
        if (first) {
          is_int = this_int;
        } else if (is_int != this_int) {
          return Status::InvalidArgument("max/min over a mixed-type group");
        }
        if (this_int) {
          int64_t x = std::get<int64_t>(v);
          if (first || (want_max ? x > best_int : x < best_int)) best_int = x;
        } else {
          const std::string& x = std::get<std::string>(v);
          if (first || (want_max ? x > best_str : x < best_str)) best_str = x;
        }
        first = false;
      }
      if (first) return Status::Internal("aggregate fold over empty group");
      if (is_int) return Term::Int(best_int);
      return Term::Str(best_str);
    }
  }
  return Status::Internal("unknown aggregate function");
}

}  // namespace

Result<Bag> EvaluateAggregate(const AggregateQuery& q, const Database& db) {
  // Step 1: B = Q̆(D, BS).
  ConjunctiveQuery core = q.Core();
  SQLEQ_ASSIGN_OR_RETURN(Bag core_bag, Evaluate(core, db, Semantics::kBagSet));

  // Step 2: group by the grouping arguments (a prefix of the core head).
  size_t group_arity = q.grouping().size();
  bool has_arg = q.agg_arg().has_value();
  std::map<Tuple, Bag> groups;
  for (const auto& [t, c] : core_bag.counts()) {
    Tuple key(t.begin(), t.begin() + group_arity);
    Bag& vals = groups[key];
    if (has_arg) {
      vals.Add(Tuple{t[group_arity]}, c);
    } else {
      // count(*): the folded bag only needs cardinality; use a unit marker.
      vals.Add(Tuple{Term::Int(0)}, c);
    }
  }

  // Step 3: one output tuple per group.
  Bag out;
  for (const auto& [key, vals] : groups) {
    SQLEQ_ASSIGN_OR_RETURN(Term agg, FoldAggregate(q.function(), vals));
    Tuple row = key;
    row.push_back(agg);
    out.Add(row, 1);
  }
  return out;
}

}  // namespace sqleq
