// Tuple and Bag: ground rows and multisets of rows.
#ifndef SQLEQ_DB_TUPLE_H_
#define SQLEQ_DB_TUPLE_H_

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <vector>

#include "ir/term.h"

namespace sqleq {

/// A ground row: a vector of constant terms. Invariant: no variables.
using Tuple = std::vector<Term>;

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    // FNV-1a with the 64-bit offset basis and prime. The 32-bit constants
    // used previously collapsed the upper half of size_t and clustered
    // tuples differing only in late positions into few buckets.
    uint64_t h = 1469598103934665603ULL;
    for (Term x : t) {
      h ^= static_cast<uint64_t>(x.Hash());
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

/// Builds a tuple of integer constants — the dominant case in tests and in
/// the paper's counterexample databases.
Tuple IntTuple(std::initializer_list<int64_t> values);

/// "(1, 2, 'a')".
std::string TupleToString(const Tuple& t);

/// A finite bag (multiset) of tuples: core-set with positive multiplicities.
/// Ordered map so iteration and printing are deterministic.
class Bag {
 public:
  Bag() = default;

  /// Adds `count` copies of `t` (count may be 0, a no-op).
  void Add(const Tuple& t, uint64_t count = 1);

  /// Multiplicity of `t` (0 if absent).
  uint64_t Count(const Tuple& t) const;

  /// Number of distinct tuples.
  size_t CoreSize() const { return counts_.size(); }

  /// Total number of tuples, duplicates counted separately.
  uint64_t TotalSize() const;

  /// True if the bag is a set: every multiplicity is 1.
  bool IsSetValued() const;

  /// The bag with all multiplicities collapsed to 1.
  Bag CoreSet() const;

  bool empty() const { return counts_.empty(); }

  friend bool operator==(const Bag& a, const Bag& b) { return a.counts_ == b.counts_; }
  friend bool operator!=(const Bag& a, const Bag& b) { return !(a == b); }

  const std::map<Tuple, uint64_t>& counts() const { return counts_; }

  /// "{{(1), (1), (2)}}" in the paper's double-brace notation; multiplicities
  /// above 4 are abbreviated "(t) x n".
  std::string ToString() const;

 private:
  std::map<Tuple, uint64_t> counts_;
};

}  // namespace sqleq

#endif  // SQLEQ_DB_TUPLE_H_
