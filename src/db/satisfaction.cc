#include "db/satisfaction.h"

#include "db/eval.h"

namespace sqleq {

Result<bool> Satisfies(const Database& db, const Dependency& dep) {
  bool satisfied = true;
  Status inner = Status::OK();
  SQLEQ_RETURN_IF_ERROR(ForEachSatisfyingAssignment(
      dep.body(), db, TermMap(), [&](const TermMap& gamma) {
        if (dep.IsEgd()) {
          Term l = ApplyTermMap(gamma, dep.egd().left());
          Term r = ApplyTermMap(gamma, dep.egd().right());
          if (l != r) {
            satisfied = false;
            return false;
          }
          return true;
        }
        // Tgd: γ must extend to the head; existential variables of the tgd
        // are free in the head conjunction and get bound by the search.
        Result<bool> extends =
            HasSatisfyingAssignment(dep.tgd().head(), db, gamma);
        if (!extends.ok()) {
          inner = extends.status();
          return false;
        }
        if (!*extends) {
          satisfied = false;
          return false;
        }
        return true;
      }));
  SQLEQ_RETURN_IF_ERROR(inner);
  return satisfied;
}

Result<bool> Satisfies(const Database& db, const DependencySet& sigma) {
  for (const Dependency& dep : sigma) {
    SQLEQ_ASSIGN_OR_RETURN(bool ok, Satisfies(db, dep));
    if (!ok) return false;
  }
  return true;
}

Result<std::optional<std::string>> FirstViolated(const Database& db,
                                                 const DependencySet& sigma) {
  for (const Dependency& dep : sigma) {
    SQLEQ_ASSIGN_OR_RETURN(bool ok, Satisfies(db, dep));
    if (!ok) {
      return std::optional<std::string>(dep.label().empty() ? dep.ToString()
                                                            : dep.label());
    }
  }
  return std::optional<std::string>();
}

}  // namespace sqleq
