// Status and Result<T>: exception-free error propagation for the sqleq
// public API, following the RocksDB/Arrow idiom.
#ifndef SQLEQ_UTIL_STATUS_H_
#define SQLEQ_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace sqleq {

/// Machine-readable failure category carried by every non-OK Status.
enum class StatusCode {
  kOk = 0,
  /// Malformed input: unparsable text, unsafe query, arity mismatch, ...
  kInvalidArgument,
  /// Referenced schema object (relation, attribute) does not exist.
  kNotFound,
  /// A resource limit was hit (e.g. chase step budget exhausted).
  kResourceExhausted,
  /// The operation was interrupted through a CancellationToken (util/fault.h)
  /// before it finished; partial results may have been captured by the
  /// anytime layers (see docs/robustness.md).
  kCancelled,
  /// The operation's precondition does not hold (e.g. chase not applicable).
  kFailedPrecondition,
  /// Feature intentionally outside the supported fragment.
  kUnsupported,
  /// Internal invariant violated; indicates a bug in sqleq itself.
  kInternal,
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Lightweight success/failure value. OK carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Result<T> is either a value of type T or a non-OK Status.
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace sqleq

/// Propagates a non-OK Status out of the enclosing function.
#define SQLEQ_RETURN_IF_ERROR(expr)             \
  do {                                          \
    ::sqleq::Status _st = (expr);               \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Evaluates a Result<T> expression, assigning its value or propagating
/// its error. Usage: SQLEQ_ASSIGN_OR_RETURN(auto q, ParseQuery(text));
#define SQLEQ_ASSIGN_OR_RETURN(lhs, expr)                 \
  SQLEQ_ASSIGN_OR_RETURN_IMPL(                            \
      SQLEQ_STATUS_CONCAT(_sqleq_result_, __LINE__), lhs, expr)

#define SQLEQ_STATUS_CONCAT_INNER(a, b) a##b
#define SQLEQ_STATUS_CONCAT(a, b) SQLEQ_STATUS_CONCAT_INNER(a, b)
#define SQLEQ_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#endif  // SQLEQ_UTIL_STATUS_H_
