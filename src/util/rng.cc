#include "util/rng.h"

#include <cassert>

namespace sqleq {

int Rng::UniformInt(int lo, int hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(engine_);
}

size_t Rng::Index(size_t n) {
  assert(n > 0);
  std::uniform_int_distribution<size_t> dist(0, n - 1);
  return dist(engine_);
}

bool Rng::Chance(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

}  // namespace sqleq
