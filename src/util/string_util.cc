#include "util/string_util.h"

#include <cctype>

namespace sqleq {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> SplitAndTrim(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) pos = s.size();
    std::string_view piece = Trim(s.substr(start, pos - start));
    if (!piece.empty()) out.emplace_back(piece);
    start = pos + 1;
  }
  return out;
}

bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix) {
  if (s.size() < prefix.size()) return false;
  return EqualsIgnoreCase(s.substr(0, prefix.size()), prefix);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string StripLineComments(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool in_string = false;
  size_t i = 0;
  while (i < s.size()) {
    char c = s[i];
    if (in_string) {
      out += c;
      if (c == '\'') in_string = false;
      ++i;
      continue;
    }
    if (c == '\'') {
      in_string = true;
      out += c;
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < s.size() && s[i + 1] == '-') {
      while (i < s.size() && s[i] != '\n') ++i;
      continue;  // keep the newline itself
    }
    out += c;
    ++i;
  }
  return out;
}

}  // namespace sqleq
