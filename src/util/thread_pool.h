// A fixed-size worker pool over a shared work queue, built on std::jthread.
// Powers the parallel backchase sweep; deliberately minimal — tasks are
// void() closures that report failures through captured Status slots, never
// by throwing.
#ifndef SQLEQ_UTIL_THREAD_POOL_H_
#define SQLEQ_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sqleq {

class MetricsRegistry;
class Histogram;

/// Fixed-size thread pool. Construction spawns the workers; destruction
/// drains nothing — pending tasks are completed, then workers exit (jthread
/// joins automatically). A pool of size 0 runs every task inline on the
/// submitting thread, so callers need no serial special case.
class ThreadPool {
 public:
  /// `threads` workers. Values 0 and 1 behave identically for ParallelFor
  /// (the calling thread always participates). A non-null `metrics` samples
  /// pool.queue_wait_us and pool.task_us histograms per submitted task.
  explicit ThreadPool(size_t threads, MetricsRegistry* metrics = nullptr);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues one task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Runs body(i) for every i in [0, n), distributing indices dynamically
  /// over the workers plus the calling thread. Blocks until all n calls have
  /// returned. `body` must be thread-safe and must not throw.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

 private:
  void WorkerLoop(std::stop_token stop);

  /// Resolved once at construction; null when telemetry is off.
  Histogram* queue_wait_us_ = nullptr;
  Histogram* task_us_ = nullptr;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::jthread> workers_;
};

}  // namespace sqleq

#endif  // SQLEQ_UTIL_THREAD_POOL_H_
