#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <memory>

#include "util/telemetry.h"

namespace sqleq {

ThreadPool::ThreadPool(size_t threads, MetricsRegistry* metrics) {
  if (metrics != nullptr) {
    queue_wait_us_ = &metrics->histogram(metric::kPoolQueueWaitUs);
    task_us_ = &metrics->histogram(metric::kPoolTaskUs);
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this](std::stop_token stop) { WorkerLoop(stop); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  // jthread members join on destruction.
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    ScopedTimerUs timer(task_us_);
    task();
    return;
  }
  if (queue_wait_us_ != nullptr) {
    auto enqueued = std::chrono::steady_clock::now();
    auto* queue_wait = queue_wait_us_;
    auto* task_hist = task_us_;
    task = [inner = std::move(task), enqueued, queue_wait, task_hist] {
      auto started = std::chrono::steady_clock::now();
      queue_wait->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(started -
                                                                enqueued)
              .count()));
      ScopedTimerUs timer(task_hist);
      inner();
    };
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop(std::stop_token stop) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this, &stop] {
        return stopping_ || stop.stop_requested() || !queue_.empty();
      });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

/// Shared progress of one ParallelFor call. Heap-allocated and reference-
/// counted so a straggler runner that wakes after the call returned can
/// still check `next` safely (it then exits without touching the body).
struct ForState {
  std::atomic<size_t> next{0};
  size_t n = 0;
  std::mutex mu;
  std::condition_variable done_cv;
  size_t completed = 0;  // guarded by mu
};

}  // namespace

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  auto state = std::make_shared<ForState>();
  state->n = n;
  auto run_indices = [state](const std::function<void(size_t)>& fn) {
    size_t done = 0;
    for (;;) {
      size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state->n) break;
      fn(i);
      ++done;
    }
    if (done > 0) {
      std::lock_guard<std::mutex> lock(state->mu);
      state->completed += done;
      if (state->completed == state->n) state->done_cv.notify_all();
    }
  };
  size_t runners = workers_.size() < n - 1 ? workers_.size() : n - 1;
  for (size_t r = 0; r < runners; ++r) {
    // Copy `body` per runner: stragglers scheduled after this call returns
    // must not hold a reference into the caller's frame.
    Submit([run_indices, body] { run_indices(body); });
  }
  run_indices(body);  // the calling thread participates
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&state] { return state->completed == state->n; });
}

}  // namespace sqleq
