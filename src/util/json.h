// Minimal JSON support for the observability layer: a recursive-descent
// parser (objects, arrays, strings, numbers, booleans, null — RFC 8259
// without \u surrogate pairs beyond the BMP) and the string-escaping helper
// every exporter shares. The parser exists so telemetry exporter output and
// the BENCH_*.json files can be validated in-process (tests,
// tools/check_bench_json) without an external dependency; it is not a
// general-purpose JSON library.
#ifndef SQLEQ_UTIL_JSON_H_
#define SQLEQ_UTIL_JSON_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace sqleq {

/// A parsed JSON document node.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Insertion order is not preserved; key lookup is what validation needs.
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// The member named `key`, or nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

/// Parses one complete JSON document; trailing non-whitespace is an error.
Result<JsonValue> ParseJson(std::string_view text);

/// `s` with the JSON string escapes applied (quotes, backslash, control
/// characters as \u00XX), without surrounding quotes.
std::string EscapeJson(std::string_view s);

}  // namespace sqleq

#endif  // SQLEQ_UTIL_JSON_H_
