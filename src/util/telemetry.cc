#include "util/telemetry.h"

#include <bit>
#include <sstream>

#include "util/json.h"

namespace sqleq {
namespace {

size_t BucketIndex(uint64_t value) {
  // bit_width(0) == 0, bit_width(1) == 1, ... — exactly the bucket layout
  // documented on Histogram::kBuckets.
  return static_cast<size_t>(std::bit_width(value));
}

/// Upper bound (exclusive) of bucket i: 2^i, saturating at UINT64_MAX.
uint64_t BucketUpper(size_t i) {
  if (i >= 64) return UINT64_MAX;
  return uint64_t{1} << i;
}

std::string SanitizeMetricName(const std::string& name) {
  std::string out = "sqleq_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  uint64_t min = min_.load(std::memory_order_relaxed);
  s.min = (s.count == 0 && min == UINT64_MAX) ? 0 : min;
  s.max = max_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

uint64_t Histogram::Snapshot::ApproxQuantile(double p) const {
  if (count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  uint64_t rank = static_cast<uint64_t>(p * double(count - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen > rank) return BucketUpper(i);
  }
  return max;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  for (const auto& [name, counter] : counters_) {
    s.counters[name] = counter->value();
  }
  for (const auto& [name, hist] : histograms_) {
    s.histograms[name] = hist->snapshot();
  }
  return s;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters) {
    std::string pname = SanitizeMetricName(name);
    out << "# TYPE " << pname << " counter\n";
    out << pname << " " << value << "\n";
  }
  for (const auto& [name, hist] : histograms) {
    std::string pname = SanitizeMetricName(name);
    out << "# TYPE " << pname << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (hist.buckets[i] == 0) continue;
      cumulative += hist.buckets[i];
      out << pname << "_bucket{le=\"" << BucketUpper(i) << "\"} " << cumulative
          << "\n";
    }
    out << pname << "_bucket{le=\"+Inf\"} " << hist.count << "\n";
    out << pname << "_sum " << hist.sum << "\n";
    out << pname << "_count " << hist.count << "\n";
  }
  return out.str();
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out << ",";
    first = false;
    out << "\"" << EscapeJson(name) << "\":" << value;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) out << ",";
    first = false;
    out << "\"" << EscapeJson(name) << "\":{\"count\":" << hist.count
        << ",\"sum\":" << hist.sum << ",\"min\":" << hist.min
        << ",\"max\":" << hist.max << "}";
  }
  out << "}}";
  return out.str();
}

TraceSink::TraceSink() : origin_(std::chrono::steady_clock::now()) {}

uint32_t TraceSink::TidLocked(std::thread::id id) {
  auto it = tids_.find(id);
  if (it == tids_.end()) {
    it = tids_.emplace(id, static_cast<uint32_t>(tids_.size())).first;
  }
  return it->second;
}

void TraceSink::Record(const char* name, char phase) {
  auto now = std::chrono::steady_clock::now();
  uint64_t ts_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now - origin_)
          .count());
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(
      TraceEvent{name, phase, ts_us, TidLocked(std::this_thread::get_id())});
}

void TraceSink::Begin(const char* name) { Record(name, 'B'); }

void TraceSink::End(const char* name) { Record(name, 'E'); }

std::vector<TraceEvent> TraceSink::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t TraceSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  // Thread-id registration survives Clear so tids stay stable across
  // TRACE OFF / TRACE ON within one shell session.
}

bool TraceSink::CheckBalanced(std::string* error) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Per-tid stack of open span names; every E must match the innermost B.
  std::map<uint32_t, std::vector<const char*>> open;
  for (const TraceEvent& e : events_) {
    if (e.phase == 'B') {
      open[e.tid].push_back(e.name);
      continue;
    }
    auto& stack = open[e.tid];
    if (stack.empty() || std::string_view(stack.back()) != e.name) {
      if (error != nullptr) {
        *error = "unbalanced end event '" + std::string(e.name) + "' on tid " +
                 std::to_string(e.tid);
      }
      return false;
    }
    stack.pop_back();
  }
  for (const auto& [tid, stack] : open) {
    if (!stack.empty()) {
      if (error != nullptr) {
        *error = "span '" + std::string(stack.back()) +
                 "' never ended on tid " + std::to_string(tid);
      }
      return false;
    }
  }
  return true;
}

std::string TraceSink::ToChromeTraceJson() const {
  std::vector<TraceEvent> snapshot = events();
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : snapshot) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << EscapeJson(e.name) << "\",\"cat\":\"sqleq\","
        << "\"ph\":\"" << e.phase << "\",\"ts\":" << e.ts_us
        << ",\"pid\":1,\"tid\":" << e.tid << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace sqleq
