// EngineContext: the one per-call environment record threaded through the
// engine stack (EquivalenceEngine -> ChaseAndBackchase / RewriteWithViews ->
// chase / backchase / worker pool). It bundles what used to be sprawled
// across per-call option structs — the resource budget plus the four
// optional cross-cutting facilities (metrics, trace, fault injection,
// cancellation) — so adding an observability or robustness knob no longer
// means touching every options struct on the way down.
//
// Ownership: the context borrows everything. Pointers may be null ("feature
// off") and must outlive the engine call. ChaseOptions deliberately stays
// pure configuration (it is part of memo context keys); runtime facilities
// travel separately via ChaseRuntime, which the engine layers populate from
// the resolved context.
#ifndef SQLEQ_UTIL_ENGINE_CONTEXT_H_
#define SQLEQ_UTIL_ENGINE_CONTEXT_H_

#include "util/fault.h"
#include "util/resource_budget.h"
#include "util/telemetry.h"

namespace sqleq {

struct EngineContext {
  /// Resource limits for every bounded search in the call.
  ResourceBudget budget;
  /// Counter/histogram sink; null disables metrics.
  MetricsRegistry* metrics = nullptr;
  /// Span sink; null disables tracing.
  TraceSink* trace = nullptr;
  /// Deterministic fault injection; null disables it.
  FaultInjector* faults = nullptr;
  /// Cooperative cancellation; null means not cancellable.
  CancellationToken* cancel = nullptr;
};

}  // namespace sqleq

#endif  // SQLEQ_UTIL_ENGINE_CONTEXT_H_
