// Deterministic seeded RNG used by workload generators and property tests.
#ifndef SQLEQ_UTIL_RNG_H_
#define SQLEQ_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace sqleq {

/// Thin wrapper over std::mt19937_64 with convenience draws. All sqleq
/// randomized components take an Rng so runs are reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi);

  /// Uniform size_t in [0, n). Requires n > 0.
  size_t Index(size_t n);

  /// Bernoulli draw with probability p of true.
  bool Chance(double p);

  /// Fisher-Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Index(i)]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sqleq

#endif  // SQLEQ_UTIL_RNG_H_
