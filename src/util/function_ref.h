// FunctionRef: a non-owning, non-allocating reference to a callable — the
// hot-path replacement for `const std::function<...>&` parameters. A
// std::function wraps the callable in a type-erased heap (or SBO) copy at
// every call site; FunctionRef stores one void* and one function pointer, so
// passing a lambda into the homomorphism matcher or a chase-step enumerator
// costs two words and no allocation.
//
// Lifetime contract: FunctionRef borrows the callable. It is safe exactly
// where a `const F&` parameter would be — callee invokes it during the call
// and does not store it. Never keep a FunctionRef member alive past the
// statement that created it from a temporary lambda.
#ifndef SQLEQ_UTIL_FUNCTION_REF_H_
#define SQLEQ_UTIL_FUNCTION_REF_H_

#include <type_traits>
#include <utility>

namespace sqleq {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Binds any callable invocable as R(Args...). Intentionally implicit so
  /// lambdas pass straight into FunctionRef parameters.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cv_t<std::remove_reference_t<F>>,
                                FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        invoke_([](void* obj, Args... args) -> R {
          return static_cast<R>((*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...));
        }) {}

  R operator()(Args... args) const {
    return invoke_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*invoke_)(void*, Args...);
};

}  // namespace sqleq

#endif  // SQLEQ_UTIL_FUNCTION_REF_H_
