// ResourceBudget: the shared resource-limit knob of sqleq. Every bounded
// search in the library (chase step loop, backchase candidate lattice,
// rewriting enumeration) draws from one of these instead of carrying its own
// ad-hoc cap, so callers configure limits in exactly one place and
// ResourceExhausted errors can always name the limit that tripped.
//
// This header also defines the *anytime* vocabulary layered on top of those
// limits (docs/robustness.md): the three-valued Verdict, the ExhaustionInfo
// payload attached to partial results, and the EscalatingBudget retry policy
// used by the *WithRetry entry points and the shell's SET RETRY.
#ifndef SQLEQ_UTIL_RESOURCE_BUDGET_H_
#define SQLEQ_UTIL_RESOURCE_BUDGET_H_

#include <chrono>
#include <cstddef>
#include <optional>
#include <string>

#include "util/status.h"

namespace sqleq {

/// Resource limits shared by the chase and the reformulation searches.
/// Embedded in ChaseOptions (chase-level limits) and CandBOptions (which
/// propagates its budget to the chases it spawns).
struct ResourceBudget {
  /// Hard cap on chase steps per chase run; exceeded → ResourceExhausted.
  /// The paper's algorithms are conditioned on set-chase termination, so a
  /// generous default suffices for weakly acyclic Σ.
  size_t max_chase_steps = 5000;
  /// Cap on backchase/rewriting candidates per reformulation call (the
  /// subquery lattice is 2^|body(U)|).
  size_t max_candidates = 1u << 20;
  /// Optional wall-clock deadline. Checked at chase-step and backchase-
  /// candidate granularity; exceeded → ResourceExhausted naming the phase.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// When the deadline was anchored (set by WithDeadlineIn); lets
  /// CheckDeadline report elapsed-vs-budget timings.
  std::optional<std::chrono::steady_clock::time_point> deadline_origin;
  /// Worker threads for the parallel backchase sweep. 0 and 1 both mean
  /// serial; results are byte-identical at every thread count.
  size_t threads = 1;

  /// A budget with a deadline `d` from now (other limits default).
  static ResourceBudget WithDeadlineIn(std::chrono::milliseconds d) {
    ResourceBudget b;
    b.deadline_origin = std::chrono::steady_clock::now();
    b.deadline = *b.deadline_origin + d;
    return b;
  }

  bool DeadlineExpired() const {
    return deadline.has_value() && std::chrono::steady_clock::now() >= *deadline;
  }

  /// OK while the deadline (if any) has not passed; otherwise
  /// ResourceExhausted("deadline exceeded during <phase> ...") reporting
  /// elapsed time against the budgeted window when the origin is known.
  Status CheckDeadline(const char* phase) const;

  /// "steps=5000 candidates=1048576 threads=1 deadline=unset".
  std::string ToString() const;

  /// Memberwise equality; EngineContext::Resolve uses `b == ResourceBudget{}`
  /// to detect "budget never customized" when merging legacy option structs.
  friend bool operator==(const ResourceBudget&, const ResourceBudget&) =
      default;
};

/// Three-valued outcome of a budgeted decision procedure: the search either
/// decided the question, or ran out of resources first (kUnknown) — in which
/// case the result carries an ExhaustionInfo and usually a resumable
/// checkpoint instead of an error.
enum class Verdict {
  kEquivalent,
  kNotEquivalent,
  kUnknown,
};

/// "equivalent" / "not-equivalent" / "unknown".
const char* VerdictToString(Verdict v);

/// Why a bounded search stopped early. Attached to every kUnknown verdict
/// and every `complete = false` reformulation result.
struct ExhaustionInfo {
  /// The limit that tripped: "max_chase_steps", "max_candidates",
  /// "deadline", "cancelled", or "fault" (injected).
  std::string limit;
  /// The phase the limit tripped in (e.g. "set chase", "backchase",
  /// "chase of Q1").
  std::string phase;
  /// Human-readable progress report (the underlying status message:
  /// steps fired, elapsed-vs-budget timings, ...).
  std::string progress;

  /// "<limit> during <phase>: <progress>".
  std::string ToString() const;
};

/// True for the status codes the anytime layers convert into partial
/// results instead of propagating: resource exhaustion and cooperative
/// cancellation. Everything else stays an error.
inline bool IsAnytimeStop(const Status& s) {
  return s.code() == StatusCode::kResourceExhausted ||
         s.code() == StatusCode::kCancelled;
}

/// Builds the ExhaustionInfo for an anytime stop: classifies the tripped
/// limit from the status (code + message keywords) and records `phase`.
ExhaustionInfo InferExhaustion(const Status& status, std::string phase);

/// Geometric budget-escalation policy for the *WithRetry entry points
/// (EquivalenceEngine::EquivalentWithRetry, ChaseAndBackchaseWithRetry,
/// RewriteWithViewsWithRetry) and the shell's SET RETRY: attempt k runs
/// with the base limits scaled by growth^k, resuming from the previous
/// attempt's checkpoint, until the verdict is decided or max_attempts runs
/// are spent.
struct EscalatingBudget {
  /// Per-attempt multiplier applied to max_chase_steps, max_candidates, and
  /// the deadline window. Must be >= 1.
  double growth = 2.0;
  /// Total attempts (>= 1); the first runs with the unscaled base budget.
  size_t max_attempts = 3;
  /// When set, each attempt gets a fresh deadline of
  /// deadline_per_attempt * growth^k from its own start, replacing the base
  /// budget's deadline.
  std::optional<std::chrono::milliseconds> deadline_per_attempt;

  /// The budget for attempt `attempt` (0-based), derived from `base`:
  /// steps/candidates scaled with saturation; the deadline re-anchored at
  /// now with its window scaled (so retries are not born expired).
  ResourceBudget Escalate(const ResourceBudget& base, size_t attempt) const;
};

}  // namespace sqleq

#endif  // SQLEQ_UTIL_RESOURCE_BUDGET_H_
