// ResourceBudget: the shared resource-limit knob of sqleq. Every bounded
// search in the library (chase step loop, backchase candidate lattice,
// rewriting enumeration) draws from one of these instead of carrying its own
// ad-hoc cap, so callers configure limits in exactly one place and
// ResourceExhausted errors can always name the limit that tripped.
#ifndef SQLEQ_UTIL_RESOURCE_BUDGET_H_
#define SQLEQ_UTIL_RESOURCE_BUDGET_H_

#include <chrono>
#include <cstddef>
#include <optional>
#include <string>

#include "util/status.h"

namespace sqleq {

/// Resource limits shared by the chase and the reformulation searches.
/// Embedded in ChaseOptions (chase-level limits) and CandBOptions (which
/// propagates its budget to the chases it spawns).
struct ResourceBudget {
  /// Hard cap on chase steps per chase run; exceeded → ResourceExhausted.
  /// The paper's algorithms are conditioned on set-chase termination, so a
  /// generous default suffices for weakly acyclic Σ.
  size_t max_chase_steps = 5000;
  /// Cap on backchase/rewriting candidates per reformulation call (the
  /// subquery lattice is 2^|body(U)|).
  size_t max_candidates = 1u << 20;
  /// Optional wall-clock deadline. Checked at chase-step and backchase-
  /// candidate granularity; exceeded → ResourceExhausted naming the phase.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Worker threads for the parallel backchase sweep. 0 and 1 both mean
  /// serial; results are byte-identical at every thread count.
  size_t threads = 1;

  /// A budget with a deadline `d` from now (other limits default).
  static ResourceBudget WithDeadlineIn(std::chrono::milliseconds d) {
    ResourceBudget b;
    b.deadline = std::chrono::steady_clock::now() + d;
    return b;
  }

  bool DeadlineExpired() const {
    return deadline.has_value() && std::chrono::steady_clock::now() > *deadline;
  }

  /// OK while the deadline (if any) has not passed; otherwise
  /// ResourceExhausted("deadline exceeded during <phase> ...").
  Status CheckDeadline(const char* phase) const;

  /// "steps=5000 candidates=1048576 threads=1 deadline=unset".
  std::string ToString() const;
};

}  // namespace sqleq

#endif  // SQLEQ_UTIL_RESOURCE_BUDGET_H_
