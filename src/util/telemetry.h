// Telemetry substrate for the C&B pipeline: a MetricsRegistry of lock-free
// counters and streaming histograms, and a TraceSink span API, with
// exporters for the Prometheus text exposition format and the Chrome
// trace_event JSON format (chrome://tracing, Perfetto).
//
// Design rules (docs/observability.md):
//  - Recording is wait-free after the first lookup: Counter::Add and
//    Histogram::Record are relaxed atomics. Hot loops fetch the Counter&
//    once, outside the loop — `registry.counter(name)` takes a mutex.
//  - A null MetricsRegistry*/TraceSink* anywhere in the engine means
//    "telemetry off" and costs one branch; every instrumentation site must
//    tolerate nullptr.
//  - Metric totals for deterministic workloads are identical at every
//    thread count: counters incremented from parallel sections are either
//    replayed in the backchase's serial merge phase or are race-free by
//    workload construction (see tests/telemetry_test.cc).
//  - TraceSink span names are string literals (const char*, not copied).
#ifndef SQLEQ_UTIL_TELEMETRY_H_
#define SQLEQ_UTIL_TELEMETRY_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace sqleq {

/// Canonical metric names (glossary in docs/observability.md). Instrumented
/// code uses these constants; dynamic names (chase.fired.<label>,
/// backchase.level.<k>.candidates) are composed at the call site.
namespace metric {
inline constexpr char kChaseRuns[] = "chase.runs";
inline constexpr char kChaseSteps[] = "chase.steps";
inline constexpr char kChaseStepsTgd[] = "chase.steps.tgd";
inline constexpr char kChaseStepsEgd[] = "chase.steps.egd";
inline constexpr char kChaseChecksSatisfied[] = "chase.checks.satisfied";
inline constexpr char kSliceKept[] = "slice.kept";
inline constexpr char kSlicePruned[] = "slice.pruned";
/// Per-code diagnostic counters: kAnalysisDiagPrefix + <code>, one counter
/// per diagnostic code the analyzer or script linter emits.
inline constexpr char kAnalysisDiagPrefix[] = "analysis.diag.";
inline constexpr char kMemoHits[] = "memo.hits";
inline constexpr char kMemoMisses[] = "memo.misses";
inline constexpr char kMemoInserts[] = "memo.inserts";
inline constexpr char kMemoBytes[] = "memo.bytes";
inline constexpr char kMemoEvictions[] = "memo.evictions";
// Tier-2 on-disk memo (src/chase/memo_store.h). hits/writes are counted
// into the per-call registry (folded into server totals per request);
// recovered/corrupt_records/bytes are store-lifetime facts counted into the
// registry the store was opened with.
inline constexpr char kMemoDiskHits[] = "memo.disk.hits";
inline constexpr char kMemoDiskWrites[] = "memo.disk.writes";
inline constexpr char kMemoDiskRecovered[] = "memo.disk.recovered";
inline constexpr char kMemoDiskCorrupt[] = "memo.disk.corrupt_records";
inline constexpr char kMemoDiskBytes[] = "memo.disk.bytes";
inline constexpr char kMemoDiskCompactions[] = "memo.disk.compactions";
// Peer memo tier (fleet shards; docs/fleet.md). hits/misses are counted by
// the fetching shard into the per-request registry; served/accepted by the
// owning shard's server registry; fetches/offers by the fetching server's
// peer link.
inline constexpr char kMemoPeerHits[] = "memo.peer.hits";
inline constexpr char kMemoPeerMisses[] = "memo.peer.misses";
inline constexpr char kMemoPeerFetches[] = "memo.peer.fetches";
inline constexpr char kMemoPeerServed[] = "memo.peer.served";
inline constexpr char kMemoPeerOffers[] = "memo.peer.offers";
inline constexpr char kMemoPeerAccepted[] = "memo.peer.accepted";
inline constexpr char kBackchaseCandidates[] = "backchase.candidates";
inline constexpr char kBackchaseAccepted[] = "backchase.accepted";
inline constexpr char kBackchaseRejected[] = "backchase.rejected";
inline constexpr char kBackchasePrunedDominance[] =
    "backchase.pruned.dominance";
inline constexpr char kBackchasePrunedFailure[] = "backchase.pruned.failure";
inline constexpr char kEngineEquivCalls[] = "engine.equiv.calls";
inline constexpr char kEngineEquivEquivalent[] = "engine.equiv.equivalent";
inline constexpr char kEngineEquivNotEquivalent[] =
    "engine.equiv.not_equivalent";
inline constexpr char kEngineEquivUnknown[] = "engine.equiv.unknown";
inline constexpr char kPoolQueueWaitUs[] = "pool.queue_wait_us";
inline constexpr char kPoolTaskUs[] = "pool.task_us";
inline constexpr char kServiceConnections[] = "service.connections";
inline constexpr char kServiceRequests[] = "service.requests";
inline constexpr char kServiceErrors[] = "service.errors";
inline constexpr char kServiceOverloaded[] = "service.overloaded";
inline constexpr char kServiceDrained[] = "service.drained";
inline constexpr char kServiceDrainingRejected[] = "service.draining_rejected";
inline constexpr char kServiceDegraded[] = "service.degraded";
inline constexpr char kServiceIdempotentReplays[] = "service.idempotent_replays";
inline constexpr char kServiceRedirects[] = "service.redirects";
inline constexpr char kServiceRequestUs[] = "service.request_us";
// Semantic query cache (src/cache/semantic_cache.h). hits.exact counts
// canonical-key matches, hits.semantic engine-confirmed bucket matches;
// confirms is engine Equivalent calls spent by the semantic tier, with the
// kUnknown (budget-tripped) subset broken out.
inline constexpr char kCacheLookups[] = "cache.lookups";
inline constexpr char kCacheHitsExact[] = "cache.hits.exact";
inline constexpr char kCacheHitsSemantic[] = "cache.hits.semantic";
inline constexpr char kCacheMisses[] = "cache.misses";
inline constexpr char kCacheConfirms[] = "cache.confirms";
inline constexpr char kCacheConfirmsUnknown[] = "cache.confirms.unknown";
inline constexpr char kCacheAdmissions[] = "cache.admissions";
}  // namespace metric

/// Monotonically increasing event count. Add/value are wait-free.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Streaming histogram over uint64 samples (microseconds, byte sizes):
/// power-of-two buckets plus running count/sum/min/max. Record is lock-free
/// (relaxed adds; CAS loops only for min/max).
class Histogram {
 public:
  /// Bucket i counts samples v with bit_width(v) == i, i.e. bucket 0 is
  /// v == 0 and bucket i >= 1 covers [2^(i-1), 2^i).
  static constexpr size_t kBuckets = 64;

  void Record(uint64_t value);

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    std::array<uint64_t, kBuckets> buckets{};

    double Mean() const { return count == 0 ? 0.0 : double(sum) / count; }
    /// Upper bound of the bucket holding the p-quantile (p in [0,1]).
    uint64_t ApproxQuantile(double p) const;
  };

  Snapshot snapshot() const;
  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// Point-in-time copy of a registry, safe to read/export after the run.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, Histogram::Snapshot> histograms;

  /// Prometheus text exposition format: names sanitized to
  /// sqleq_<name with [^a-zA-Z0-9_] -> '_'>, counters as `counter`,
  /// histograms as `histogram` with cumulative power-of-two `le` buckets.
  std::string ToPrometheusText() const;

  /// {"counters":{...},"histograms":{name:{count,sum,min,max}}} — parseable
  /// by util/json.h (round-trip tested).
  std::string ToJson() const;
};

/// Named counters and histograms, created on first use. Lookup takes a
/// mutex; returned references stay valid for the registry's lifetime, so
/// hot paths resolve names once and then record wait-free.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every existing instrument (references stay valid).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// One trace event: a span begin ('B') or end ('E') at `ts_us` microseconds
/// since the sink's construction, on sink-local thread id `tid` (small ints
/// in registration order; 0 is the first thread the sink ever saw).
struct TraceEvent {
  const char* name;
  char phase;
  uint64_t ts_us;
  uint32_t tid;
};

/// Collects span begin/end events. Thread-safe; events are stored in
/// arrival order (deterministic for serial runs; per-thread subsequences
/// deterministic always). Names must be string literals or otherwise
/// outlive the sink.
class TraceSink {
 public:
  TraceSink();

  void Begin(const char* name);
  void End(const char* name);

  std::vector<TraceEvent> events() const;
  size_t size() const;
  void Clear();

  /// True when every thread's event subsequence is a well-nested sequence
  /// of matching B/E pairs. On failure, *error (if non-null) names the
  /// first offending event.
  bool CheckBalanced(std::string* error = nullptr) const;

  /// Chrome trace_event JSON ({"traceEvents":[...]}), loadable in
  /// chrome://tracing or Perfetto.
  std::string ToChromeTraceJson() const;

 private:
  uint32_t TidLocked(std::thread::id id);
  void Record(const char* name, char phase);

  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::map<std::thread::id, uint32_t> tids_;
  std::chrono::steady_clock::time_point origin_;
};

/// RAII span: Begin on construction, End on destruction. A null sink is a
/// no-op, so call sites need no branching.
class TraceSpan {
 public:
  TraceSpan(TraceSink* sink, const char* name) : sink_(sink), name_(name) {
    if (sink_ != nullptr) sink_->Begin(name_);
  }
  ~TraceSpan() {
    if (sink_ != nullptr) sink_->End(name_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceSink* sink_;
  const char* name_;
};

/// RAII duration sampler: records elapsed microseconds into `hist` on
/// destruction. A null histogram is a no-op.
class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(Histogram* hist)
      : hist_(hist),
        start_(hist == nullptr ? std::chrono::steady_clock::time_point{}
                               : std::chrono::steady_clock::now()) {}
  ~ScopedTimerUs() {
    if (hist_ == nullptr) return;
    auto elapsed = std::chrono::steady_clock::now() - start_;
    hist_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count()));
  }
  ScopedTimerUs(const ScopedTimerUs&) = delete;
  ScopedTimerUs& operator=(const ScopedTimerUs&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sqleq

#endif  // SQLEQ_UTIL_TELEMETRY_H_
