#include "util/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace sqleq {
namespace {

/// Framing cap: a service request/response line beyond this is a protocol
/// violation, not a workload.
constexpr size_t kMaxLineBytes = 1u << 20;

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

TcpConn::~TcpConn() { Close(); }

TcpConn::TcpConn(TcpConn&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

TcpConn& TcpConn::operator=(TcpConn&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

Result<TcpConn> TcpConn::Connect(const std::string& host, int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(ErrnoMessage("socket"));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unresolvable host (numeric IPv4 or 'localhost' expected): " +
                                   host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::FailedPrecondition(
        ErrnoMessage(("connect to " + host + ":" + std::to_string(port)).c_str()));
    ::close(fd);
    return status;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConn(fd);
}

Result<TcpConn> TcpConn::Connect(const std::string& host, int port,
                                 std::chrono::milliseconds timeout) {
  if (timeout.count() <= 0) return Connect(host, port);
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(ErrnoMessage("socket"));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unresolvable host (numeric IPv4 or 'localhost' expected): " +
                                   host);
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    Status status = Status::Internal(ErrnoMessage("fcntl"));
    ::close(fd);
    return status;
  }
  const std::string target = host + ":" + std::to_string(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      Status status = Status::FailedPrecondition(
          ErrnoMessage(("connect to " + target).c_str()));
      ::close(fd);
      return status;
    }
    pollfd pfd{fd, POLLOUT, 0};
    int ready;
    do {
      ready = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    } while (ready < 0 && errno == EINTR);
    if (ready == 0) {
      ::close(fd);
      return Status::ResourceExhausted("connect to " + target + " timed out after " +
                                       std::to_string(timeout.count()) + "ms");
    }
    if (ready < 0) {
      Status status = Status::Internal(ErrnoMessage("poll"));
      ::close(fd);
      return status;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      errno = err;
      return Status::FailedPrecondition(
          ErrnoMessage(("connect to " + target).c_str()));
    }
  }
  if (::fcntl(fd, F_SETFL, flags) != 0) {
    Status status = Status::Internal(ErrnoMessage("fcntl"));
    ::close(fd);
    return status;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConn(fd);
}

Status TcpConn::SetRecvTimeout(std::chrono::milliseconds timeout) {
  if (fd_ < 0) return Status::FailedPrecondition("timeout on closed connection");
  if (timeout.count() < 0) timeout = std::chrono::milliseconds(0);
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::Internal(ErrnoMessage("setsockopt(SO_RCVTIMEO)"));
  }
  return Status::OK();
}

Status TcpConn::WriteAll(std::string_view data) {
  if (fd_ < 0) return Status::FailedPrecondition("write on closed connection");
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::FailedPrecondition(ErrnoMessage("send"));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::optional<std::string>> TcpConn::ReadLine() {
  if (fd_ < 0) return Status::FailedPrecondition("read on closed connection");
  while (true) {
    size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return std::optional<std::string>(std::move(line));
    }
    if (buffer_.size() > kMaxLineBytes) {
      return Status::InvalidArgument("line exceeds the 1 MiB framing cap");
    }
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO tripped (SetRecvTimeout): a deadline, not a peer error.
        return Status::ResourceExhausted("read deadline exceeded waiting for a response line");
      }
      return Status::FailedPrecondition(ErrnoMessage("recv"));
    }
    if (n == 0) {  // EOF: hand out a partial trailing line once, then nullopt.
      if (buffer_.empty()) return std::optional<std::string>(std::nullopt);
      std::string line = std::move(buffer_);
      buffer_.clear();
      return std::optional<std::string>(std::move(line));
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

void TcpConn::ShutdownRead() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void TcpConn::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::~TcpListener() { Close(); }

Status TcpListener::Listen(int port) {
  if (fd_ >= 0) return Status::FailedPrecondition("listener already bound");
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(ErrnoMessage("socket"));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::FailedPrecondition(ErrnoMessage("bind"));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) != 0) {
    Status status = Status::Internal(ErrnoMessage("listen"));
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status status = Status::Internal(ErrnoMessage("getsockname"));
    ::close(fd);
    return status;
  }
  fd_ = fd;
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

Result<TcpConn> TcpListener::Accept() {
  if (fd_ < 0) return Status::FailedPrecondition("listener is not bound");
  while (true) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return TcpConn(fd);
    }
    if (errno == EINTR) continue;
    return Status::FailedPrecondition(ErrnoMessage("accept"));
  }
}

void TcpListener::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace sqleq
