#include "util/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace sqleq {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    SQLEQ_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    if (depth_ > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
      case 'f':
        return ParseBool();
      case 'n':
        return ParseNull();
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    ++depth_;
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) {
      --depth_;
      return value;
    }
    while (true) {
      SkipWhitespace();
      SQLEQ_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' in object");
      SkipWhitespace();
      SQLEQ_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
      value.object[key.string] = std::move(member);
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}' in object");
    }
    --depth_;
    return value;
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    ++depth_;
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) {
      --depth_;
      return value;
    }
    while (true) {
      SkipWhitespace();
      SQLEQ_ASSIGN_OR_RETURN(JsonValue element, ParseValue());
      value.array.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Error("expected ',' or ']' in array");
    }
    --depth_;
    return value;
  }

  Result<JsonValue> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    JsonValue value;
    value.kind = JsonValue::Kind::kString;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        value.string.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          value.string.push_back('"');
          break;
        case '\\':
          value.string.push_back('\\');
          break;
        case '/':
          value.string.push_back('/');
          break;
        case 'b':
          value.string.push_back('\b');
          break;
        case 'f':
          value.string.push_back('\f');
          break;
        case 'n':
          value.string.push_back('\n');
          break;
        case 'r':
          value.string.push_back('\r');
          break;
        case 't':
          value.string.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // the telemetry layer never emits them).
          if (code < 0x80) {
            value.string.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            value.string.push_back(static_cast<char>(0xC0 | (code >> 6)));
            value.string.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            value.string.push_back(static_cast<char>(0xE0 | (code >> 12)));
            value.string.push_back(
                static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            value.string.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error(std::string("invalid escape '\\") + e + "'");
      }
    }
    return value;
  }

  Result<JsonValue> ParseBool() {
    JsonValue value;
    value.kind = JsonValue::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") {
      value.boolean = true;
      pos_ += 4;
      return value;
    }
    if (text_.substr(pos_, 5) == "false") {
      value.boolean = false;
      pos_ += 5;
      return value;
    }
    return Error("invalid literal");
  }

  Result<JsonValue> ParseNull() {
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return JsonValue{};
    }
    return Error("invalid literal");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (Consume('.')) {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || token.empty() || token == "-") {
      return Error("invalid number '" + token + "'");
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number = parsed;
    return value;
  }

  static constexpr int kMaxDepth = 64;

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
        break;
    }
  }
  return out;
}

}  // namespace sqleq
