// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over byte strings. Used to
// frame tier-2 memo segment records (src/chase/memo_store.h): a record whose
// stored checksum disagrees with its payload is a torn or corrupted tail and
// is skipped by recovery instead of trusted.
#ifndef SQLEQ_UTIL_CRC32_H_
#define SQLEQ_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sqleq {

/// CRC-32 of `data`, standard reflected IEEE polynomial with initial value
/// and final XOR of 0xFFFFFFFF (the zlib/crc32(3) convention, so checksums
/// can be cross-checked with external tools).
uint32_t Crc32(std::string_view data);

/// Streaming form: feed `crc` from a previous call (or 0 to start) and the
/// next chunk. Crc32(a + b) == Crc32Update(Crc32(a), b).
uint32_t Crc32Update(uint32_t crc, const void* data, size_t len);

}  // namespace sqleq

#endif  // SQLEQ_UTIL_CRC32_H_
