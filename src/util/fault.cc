#include "util/fault.h"

#include <new>
#include <thread>

namespace sqleq {
namespace {

/// splitmix64 — the standard 64-bit avalanche mixer; enough to decorrelate
/// (seed, site, hit) triples without a shared RNG stream.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashSite(const std::string& site) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

void FaultInjector::Arm(const std::string& site, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& state = sites_[site];
  state.spec = spec;
  state.armed = true;
}

void FaultInjector::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it != sites_.end()) it->second.armed = false;
}

void FaultInjector::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [site, state] : sites_) {
    state.hits = 0;
    state.fired = 0;
  }
}

FaultInjector::WriteFault FaultInjector::HitWrite(const char* site,
                                                  size_t full_bytes) {
  WriteFault out;
  FaultSpec spec;
  uint64_t hit = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SiteState& state = sites_[site];
    hit = ++state.hits;
    if (!state.armed) return out;
    spec = state.spec;
    bool eligible =
        hit >= spec.start &&
        (spec.period == 0 ? hit == spec.start
                          : (hit - spec.start) % spec.period == 0);
    if (!eligible) return out;
    if (spec.probability < 1.0) {
      // Deterministic coin: high 53 bits of the mixed triple, uniform in
      // [0, 1). Depends only on (seed, site, hit index).
      uint64_t mixed = Mix64(seed_ ^ Mix64(HashSite(site)) ^ Mix64(hit));
      double coin = static_cast<double>(mixed >> 11) * 0x1.0p-53;
      if (coin >= spec.probability) return out;
    }
    ++state.fired;
  }
  // Inject outside the lock: a delay must not serialize other sites.
  switch (spec.kind) {
    case FaultKind::kDelay:
      if (spec.delay.count() > 0) std::this_thread::sleep_for(spec.delay);
      return out;
    case FaultKind::kExhausted:
      out.status = Status::ResourceExhausted(
          std::string("injected fault at ") + site + " (hit #" +
          std::to_string(hit) + ", FaultInjector)");
      return out;
    case FaultKind::kBadAlloc:
      try {
        throw std::bad_alloc();
      } catch (const std::bad_alloc& e) {
        out.status = Status::Internal(
            std::string("injected allocation failure at ") + site + " (hit #" +
            std::to_string(hit) + "): " + e.what());
      }
      return out;
    case FaultKind::kShortWrite:
      if (full_bytes > 0) {
        // Deterministic tear point in [0, full_bytes); the extra constant
        // decorrelates it from the probability coin above.
        uint64_t mixed = Mix64(seed_ ^ Mix64(HashSite(site)) ^ Mix64(hit) ^
                               0x73686f7274ull /* "short" */);
        out.short_bytes = static_cast<size_t>(mixed % full_bytes);
      }
      return out;
  }
  return out;
}

Status FaultInjector::Hit(const char* site) {
  // A kShortWrite firing through the plain probe has nothing to truncate
  // and HitWrite(site, 0) leaves both fields unset — the documented no-op.
  return HitWrite(site, 0).status;
}

uint64_t FaultInjector::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

uint64_t FaultInjector::FiredCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fired;
}

Status CancellationToken::Check(const char* site) const {
  if (!cancelled()) return Status::OK();
  return Status::Cancelled(std::string("cancelled at ") + site +
                           " (CancellationToken)");
}

Status ProbeSite(FaultInjector* faults, CancellationToken* cancel,
                 const char* site) {
  if (cancel != nullptr) SQLEQ_RETURN_IF_ERROR(cancel->Check(site));
  if (faults != nullptr) SQLEQ_RETURN_IF_ERROR(faults->Hit(site));
  return Status::OK();
}

}  // namespace sqleq
