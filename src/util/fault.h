// Deterministic fault injection and cooperative cancellation for the engine
// stack (docs/robustness.md). Both facilities are threaded through the same
// named sites inside the chase and backchase loops:
//
//   chase.step            — once per set-/sound-chase step
//   backchase.candidate   — once per evaluated backchase/rewrite candidate
//   memo.insert           — before a chase outcome is inserted into a memo
//   pool.task             — once per worker-pool task of the sweep
//
// A FaultInjector arms sites with delays, spurious ResourceExhausted, or
// simulated allocation failure; firing is a pure function of (seed, site,
// hit index), so a given schedule replays identically run over run — that is
// what lets the fault suite assert exact partial results and resume
// behavior. A CancellationToken is a one-way flag checked at the same sites,
// turned by the anytime layers into a resumable kUnknown/partial outcome
// (StatusCode::kCancelled) instead of an error.
#ifndef SQLEQ_UTIL_FAULT_H_
#define SQLEQ_UTIL_FAULT_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "util/status.h"

namespace sqleq {

namespace fault_sites {
inline constexpr const char* kChaseStep = "chase.step";
inline constexpr const char* kBackchaseCandidate = "backchase.candidate";
inline constexpr const char* kMemoInsert = "memo.insert";
inline constexpr const char* kPoolTask = "pool.task";
// Service-layer sites (src/service/server.cc): a fired accept drops the
// just-accepted connection, a fired parse drops the connection mid-stream,
// a fired dispatch fails one request with an error response.
inline constexpr const char* kServiceAccept = "service.accept";
inline constexpr const char* kServiceParse = "service.parse";
inline constexpr const char* kServiceDispatch = "service.dispatch";
// Tier-2 memo I/O sites (src/chase/memo_store.cc): a fired write fails (or,
// with kind kShortWrite, truncates) one segment append, a fired read fails
// one disk lookup (the memo treats it as a miss), a fired fsync fails the
// durability barrier after an append.
inline constexpr const char* kMemoDiskWrite = "memo.disk.write";
inline constexpr const char* kMemoDiskRead = "memo.disk.read";
inline constexpr const char* kMemoDiskFsync = "memo.disk.fsync";
}  // namespace fault_sites

/// What an armed site injects when it fires.
enum class FaultKind {
  /// Sleep for FaultSpec::delay, then proceed (stresses schedules without
  /// changing results).
  kDelay,
  /// Return a spurious ResourceExhausted naming the site.
  kExhausted,
  /// Simulate allocation failure: throw-and-catch std::bad_alloc internally,
  /// surfaced as Status::Internal (the library itself is exception-free).
  kBadAlloc,
  /// Simulate a torn write: meaningful only at sites probed through
  /// HitWrite(), where a firing yields a deterministic byte count in
  /// [0, full) the caller must persist before reporting failure — exactly
  /// what a crash mid-append leaves in a segment file. Through plain Hit()
  /// a firing is a no-op (there is nothing to truncate).
  kShortWrite,
};

/// When and what a site injects. Hits are counted per site from 1; the spec
/// makes hit h *eligible* when h == start + i * period for some i >= 0
/// (period 0: only h == start), and an eligible hit fires with
/// `probability`, decided by a hash of (seed, site, h) — deterministic, no
/// shared RNG stream.
struct FaultSpec {
  FaultKind kind = FaultKind::kExhausted;
  uint64_t start = 1;
  uint64_t period = 0;
  std::chrono::microseconds delay{0};
  double probability = 1.0;
};

/// Seed-deterministic fault injector. Thread-safe: sites may be hit
/// concurrently from the sweep's worker pool (hit indices are then assigned
/// in arrival order, so cross-thread schedules decide *which* hit a worker
/// observes — arm serial runs when a test needs an exact firing point).
/// A default-constructed injector with no armed sites is inert.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0) : seed_(seed) {}

  /// Arms (or re-arms) `site`. Counters are preserved across re-arming;
  /// call ResetCounters() for a fresh schedule.
  void Arm(const std::string& site, FaultSpec spec);
  void Disarm(const std::string& site);
  void ResetCounters();

  /// Registers one hit of `site` and injects per the armed spec (no-op for
  /// unarmed sites beyond counting). Returns OK, or the injected failure.
  Status Hit(const char* site);

  /// What HitWrite() injects for one write of `full_bytes` bytes. At most
  /// one of the fields is set: `status` non-OK for kExhausted/kBadAlloc
  /// firings, `short_bytes` for kShortWrite firings (how many leading bytes
  /// the caller should actually persist before failing the write).
  struct WriteFault {
    Status status = Status::OK();
    std::optional<size_t> short_bytes;
  };

  /// Hit() specialized for write sites: counts one hit and, when the armed
  /// spec fires, injects either an error status or — for kShortWrite — a
  /// deterministic truncation length in [0, full_bytes). The truncation
  /// length is a pure function of (seed, site, hit index), so torn-tail
  /// schedules replay identically.
  WriteFault HitWrite(const char* site, size_t full_bytes);

  /// Total hits observed at `site` (armed or not).
  uint64_t HitCount(const std::string& site) const;
  /// Hits at `site` that actually fired an injection.
  uint64_t FiredCount(const std::string& site) const;

 private:
  struct SiteState {
    FaultSpec spec;
    bool armed = false;
    uint64_t hits = 0;
    uint64_t fired = 0;
  };

  const uint64_t seed_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, SiteState> sites_;
};

/// One-way cooperative cancellation flag, checked at the fault sites above.
/// Cancel() may be called from any thread (e.g. a SIGINT handler thread);
/// the running search notices at its next site check and winds down with
/// StatusCode::kCancelled, which the anytime layers convert into a
/// checkpointed partial result.
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

  /// OK until cancelled; then Status::Cancelled naming `site`.
  Status Check(const char* site) const;

 private:
  std::atomic<bool> cancelled_{false};
};

/// The combined per-site check the engine loops call: cancellation first
/// (an interrupt beats an injected fault), then the injector. Both pointers
/// may be null.
Status ProbeSite(FaultInjector* faults, CancellationToken* cancel,
                 const char* site);

}  // namespace sqleq

#endif  // SQLEQ_UTIL_FAULT_H_
