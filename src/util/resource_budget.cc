#include "util/resource_budget.h"

namespace sqleq {

Status ResourceBudget::CheckDeadline(const char* phase) const {
  if (!DeadlineExpired()) return Status::OK();
  return Status::ResourceExhausted(std::string("deadline exceeded during ") + phase +
                                   " (ResourceBudget::deadline)");
}

std::string ResourceBudget::ToString() const {
  std::string out = "steps=" + std::to_string(max_chase_steps);
  out += " candidates=" + std::to_string(max_candidates);
  out += " threads=" + std::to_string(threads);
  out += " deadline=";
  if (deadline.has_value()) {
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        *deadline - std::chrono::steady_clock::now());
    out += std::to_string(left.count()) + "ms";
  } else {
    out += "unset";
  }
  return out;
}

}  // namespace sqleq
