#include "util/resource_budget.h"

#include <cmath>
#include <limits>

namespace sqleq {

Status ResourceBudget::CheckDeadline(const char* phase) const {
  if (!DeadlineExpired()) return Status::OK();
  auto now = std::chrono::steady_clock::now();
  auto over =
      std::chrono::duration_cast<std::chrono::milliseconds>(now - *deadline);
  std::string message = std::string("deadline exceeded during ") + phase +
                        " (ResourceBudget::deadline): ";
  if (deadline_origin.has_value()) {
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        now - *deadline_origin);
    auto window = std::chrono::duration_cast<std::chrono::milliseconds>(
        *deadline - *deadline_origin);
    message += "elapsed " + std::to_string(elapsed.count()) + "ms of a " +
               std::to_string(window.count()) + "ms budget (" +
               std::to_string(over.count()) + "ms over)";
  } else {
    message += std::to_string(over.count()) + "ms past the deadline";
  }
  return Status::ResourceExhausted(std::move(message));
}

std::string ResourceBudget::ToString() const {
  std::string out = "steps=" + std::to_string(max_chase_steps);
  out += " candidates=" + std::to_string(max_candidates);
  out += " threads=" + std::to_string(threads);
  out += " deadline=";
  if (deadline.has_value()) {
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        *deadline - std::chrono::steady_clock::now());
    out += std::to_string(left.count()) + "ms";
  } else {
    out += "unset";
  }
  return out;
}

const char* VerdictToString(Verdict v) {
  switch (v) {
    case Verdict::kEquivalent:
      return "equivalent";
    case Verdict::kNotEquivalent:
      return "not-equivalent";
    case Verdict::kUnknown:
      return "unknown";
  }
  return "unknown";
}

std::string ExhaustionInfo::ToString() const {
  return limit + " during " + phase + ": " + progress;
}

ExhaustionInfo InferExhaustion(const Status& status, std::string phase) {
  ExhaustionInfo info;
  info.phase = std::move(phase);
  info.progress = status.message();
  const std::string& m = status.message();
  if (status.code() == StatusCode::kCancelled) {
    info.limit = "cancelled";
  } else if (m.find("injected") != std::string::npos) {
    info.limit = "fault";
  } else if (m.find("max_chase_steps") != std::string::npos) {
    info.limit = "max_chase_steps";
  } else if (m.find("max_candidates") != std::string::npos) {
    info.limit = "max_candidates";
  } else if (m.find("deadline") != std::string::npos) {
    info.limit = "deadline";
  } else {
    info.limit = "resource";
  }
  return info;
}

namespace {

/// `value * factor` with saturation at size_t's max (growth^k overflows
/// quickly; a saturated limit just means "effectively unbounded").
size_t ScaleSaturating(size_t value, double factor) {
  if (factor <= 1.0) return value;
  double scaled = static_cast<double>(value) * factor;
  if (scaled >= static_cast<double>(std::numeric_limits<size_t>::max())) {
    return std::numeric_limits<size_t>::max();
  }
  return static_cast<size_t>(scaled);
}

}  // namespace

ResourceBudget EscalatingBudget::Escalate(const ResourceBudget& base,
                                          size_t attempt) const {
  double factor = std::pow(growth < 1.0 ? 1.0 : growth,
                           static_cast<double>(attempt));
  ResourceBudget out = base;
  out.max_chase_steps = ScaleSaturating(base.max_chase_steps, factor);
  out.max_candidates = ScaleSaturating(base.max_candidates, factor);
  std::optional<std::chrono::milliseconds> window = deadline_per_attempt;
  if (!window.has_value() && base.deadline.has_value()) {
    // Re-anchor the base deadline's window at this attempt's start; a
    // deadline inherited verbatim would leave every retry born expired.
    auto anchor = base.deadline_origin.value_or(std::chrono::steady_clock::now());
    window = std::chrono::duration_cast<std::chrono::milliseconds>(
        *base.deadline - anchor);
  }
  if (window.has_value()) {
    auto scaled = std::chrono::milliseconds(
        static_cast<std::chrono::milliseconds::rep>(ScaleSaturating(
            static_cast<size_t>(window->count() < 0 ? 0 : window->count()),
            factor)));
    out.deadline_origin = std::chrono::steady_clock::now();
    out.deadline = *out.deadline_origin + scaled;
  }
  return out;
}

}  // namespace sqleq
