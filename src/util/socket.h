// Thin POSIX TCP wrappers for the sqleqd service layer (src/service): a
// listener bound to a local port and a connection with line-framed reads.
// Scope is deliberately minimal — blocking IO, IPv4 loopback-oriented,
// Status-based errors — because the service protocol is newline-delimited
// JSON between cooperating processes on one host or a trusted network, not a
// general networking stack.
#ifndef SQLEQ_UTIL_SOCKET_H_
#define SQLEQ_UTIL_SOCKET_H_

#include <chrono>
#include <optional>
#include <string>
#include <string_view>

#include "util/status.h"

namespace sqleq {

/// One accepted (or dialed) TCP connection. Move-only; the destructor
/// closes the descriptor.
class TcpConn {
 public:
  TcpConn() = default;
  explicit TcpConn(int fd) : fd_(fd) {}
  ~TcpConn();
  TcpConn(TcpConn&& other) noexcept;
  TcpConn& operator=(TcpConn&& other) noexcept;
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  /// Dials host:port (numeric IPv4 or "localhost").
  static Result<TcpConn> Connect(const std::string& host, int port);

  /// Connect with a deadline: nonblocking connect(2) + poll(2). A timeout
  /// (or a refused/failed connect within it) is ResourceExhausted naming
  /// the deadline, so retrying clients can tell it from a protocol error.
  /// A zero/negative timeout falls back to the blocking overload.
  static Result<TcpConn> Connect(const std::string& host, int port,
                                 std::chrono::milliseconds timeout);

  /// Caps every subsequent blocking read (SO_RCVTIMEO). A read that trips
  /// the cap surfaces as ResourceExhausted from ReadLine, distinguishable
  /// from EOF and peer resets. Zero clears the cap.
  Status SetRecvTimeout(std::chrono::milliseconds timeout);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes all of `data`, retrying short writes. SIGPIPE is suppressed
  /// (MSG_NOSIGNAL); a peer reset surfaces as a Status instead.
  Status WriteAll(std::string_view data);

  /// Next '\n'-terminated line (terminator stripped, trailing '\r' too).
  /// nullopt on clean EOF with no buffered partial line; a partial final
  /// line is returned as-is. Lines above the 1 MiB framing cap are an
  /// InvalidArgument error (the connection should then be dropped).
  Result<std::optional<std::string>> ReadLine();

  /// Shuts down the read side: a blocked or future ReadLine observes EOF
  /// while buffered writes still flush. The drain path uses this to unblock
  /// idle connections without cutting off in-flight responses.
  void ShutdownRead();

  void Close();

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// A listening TCP socket on 0.0.0.0. Accept() blocks; Shutdown() from
/// another thread unblocks it with an error (Linux ::shutdown semantics).
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens. Port 0 picks an ephemeral port; port() reports the
  /// bound one either way.
  Status Listen(int port);

  int port() const { return port_; }
  bool listening() const { return fd_ >= 0; }

  /// Blocks for the next connection. Returns FailedPrecondition after
  /// Shutdown()/Close().
  Result<TcpConn> Accept();

  /// Unblocks a concurrent Accept() and refuses further connections; safe
  /// to call from any thread, repeatedly.
  void Shutdown();

  void Close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace sqleq

#endif  // SQLEQ_UTIL_SOCKET_H_
