// Small string helpers shared across sqleq modules.
#ifndef SQLEQ_UTIL_STRING_UTIL_H_
#define SQLEQ_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace sqleq {

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on `sep`, trimming whitespace from each piece; empty pieces are
/// dropped.
std::vector<std::string> SplitAndTrim(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True if `s` starts with `prefix` (ASCII case-insensitive).
bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix);

/// ASCII-lowercases a copy of `s`.
std::string ToLower(std::string_view s);

/// ASCII-uppercases a copy of `s`.
std::string ToUpper(std::string_view s);

/// True if two strings are equal ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Removes SQL-style "--" line comments (outside single-quoted literals)
/// up to but excluding the newline, so statement numbering survives.
std::string StripLineComments(std::string_view s);

}  // namespace sqleq

#endif  // SQLEQ_UTIL_STRING_UTIL_H_
