#include "reformulation/bag_candb.h"

namespace sqleq {

Result<CandBResult> BagCandB(const ConjunctiveQuery& q, const DependencySet& sigma,
                             const Schema& schema, const CandBOptions& options) {
  return ChaseAndBackchase(q, sigma, Semantics::kBag, schema, options);
}

Result<CandBResult> BagSetCandB(const ConjunctiveQuery& q, const DependencySet& sigma,
                                const Schema& schema, const CandBOptions& options) {
  return ChaseAndBackchase(q, sigma, Semantics::kBagSet, schema, options);
}

Result<CandBResult> SetCandB(const ConjunctiveQuery& q, const DependencySet& sigma,
                             const CandBOptions& options) {
  return ChaseAndBackchase(q, sigma, Semantics::kSet, Schema(), options);
}

}  // namespace sqleq
