#include "reformulation/views.h"

#include <memory>
#include <unordered_set>

#include "chase/chase_cache.h"
#include "chase/homomorphism.h"
#include "chase/sound_chase.h"
#include "equivalence/engine.h"
#include "equivalence/isomorphism.h"
#include "reformulation/backchase.h"

namespace sqleq {
namespace {

/// Union-find over terms, constants as preferred representatives; a clash of
/// two distinct constants marks the rewriting unsatisfiable.
class Unifier {
 public:
  Term Find(Term t) {
    auto it = parent_.find(t);
    if (it == parent_.end() || it->second == t) return t;
    Term root = Find(it->second);
    parent_[t] = root;
    return root;
  }

  Status Union(Term a, Term b) {
    Term ra = Find(a);
    Term rb = Find(b);
    if (ra == rb) return Status::OK();
    if (ra.IsConstant() && rb.IsConstant()) {
      return Status::FailedPrecondition(
          "rewriting is unsatisfiable: view head forces " + ra.ToString() + " = " +
          rb.ToString());
    }
    if (ra.IsConstant()) std::swap(ra, rb);
    parent_[ra] = rb;
    return Status::OK();
  }

 private:
  TermMap parent_;
};

}  // namespace

Status ViewSet::Add(const ConjunctiveQuery& definition) {
  const std::string& name = definition.name();
  if (views_.count(name) > 0) {
    return Status::InvalidArgument("duplicate view '" + name + "'");
  }
  for (const Atom& a : definition.body()) {
    if (views_.count(a.predicate()) > 0 || a.predicate() == name) {
      return Status::Unsupported("view '" + name + "' references view '" +
                                 a.predicate() + "'; nested views are not supported");
    }
  }
  for (const auto& [existing_name, existing] : views_) {
    for (const Atom& a : existing.body()) {
      if (a.predicate() == name) {
        return Status::Unsupported("view '" + name + "' is referenced by view '" +
                                   existing_name + "'; nested views are not supported");
      }
    }
  }
  views_.emplace(name, definition);
  order_.push_back(name);
  return Status::OK();
}

Result<ConjunctiveQuery> ViewSet::Get(const std::string& name) const {
  auto it = views_.find(name);
  if (it == views_.end()) return Status::NotFound("unknown view '" + name + "'");
  return it->second;
}

Schema ViewSet::AsSchema(bool set_valued) const {
  Schema out;
  for (const auto& [name, def] : views_) {
    Status s = out.AddRelation(name, def.head().size(), {}, set_valued);
    (void)s;  // names are unique and arities positive by construction
  }
  return out;
}

Result<ConjunctiveQuery> ExpandRewriting(const ConjunctiveQuery& rewriting,
                                         const ViewSet& views) {
  // Phase 1: constraints induced by repeated variables / constants in view
  // heads become unifications over the rewriting's terms.
  Unifier unifier;
  for (const Atom& atom : rewriting.body()) {
    if (!views.Has(atom.predicate())) continue;
    SQLEQ_ASSIGN_OR_RETURN(ConjunctiveQuery def, views.Get(atom.predicate()));
    if (def.head().size() != atom.arity()) {
      return Status::InvalidArgument("view atom " + atom.ToString() +
                                     " disagrees with view head arity " +
                                     std::to_string(def.head().size()));
    }
    TermMap seen;  // view head variable -> rewriting term
    for (size_t i = 0; i < atom.arity(); ++i) {
      Term h = def.head()[i];
      Term arg = atom.args()[i];
      if (h.IsConstant()) {
        SQLEQ_RETURN_IF_ERROR(unifier.Union(arg, h));
        continue;
      }
      auto it = seen.find(h);
      if (it != seen.end()) {
        SQLEQ_RETURN_IF_ERROR(unifier.Union(it->second, arg));
      } else {
        seen.emplace(h, arg);
      }
    }
  }

  // Phase 2: apply the unifier to the whole rewriting.
  std::vector<Term> head;
  for (Term t : rewriting.head()) head.push_back(unifier.Find(t));
  std::vector<Atom> atoms;
  for (const Atom& a : rewriting.body()) {
    std::vector<Term> args;
    for (Term t : a.args()) args.push_back(unifier.Find(t));
    atoms.emplace_back(a.predicate(), std::move(args));
  }

  // Phase 3: splice in freshened view bodies.
  std::vector<Atom> body;
  for (const Atom& atom : atoms) {
    if (!views.Has(atom.predicate())) {
      body.push_back(atom);
      continue;
    }
    SQLEQ_ASSIGN_OR_RETURN(ConjunctiveQuery def, views.Get(atom.predicate()));
    ConjunctiveQuery fresh = def.RenameApart();
    TermMap map;
    for (size_t i = 0; i < atom.arity(); ++i) {
      Term h = fresh.head()[i];
      if (h.IsVariable()) map.emplace(h, atom.args()[i]);
    }
    for (const Atom& view_atom : ApplyTermMap(map, fresh.body())) {
      body.push_back(view_atom);
    }
  }
  return ConjunctiveQuery::Create(rewriting.name() + "_exp", std::move(head),
                                  std::move(body));
}

Result<bool> IsEquivalentRewriting(const ConjunctiveQuery& q,
                                   const ConjunctiveQuery& rewriting,
                                   const ViewSet& views, const DependencySet& sigma,
                                   Semantics semantics, const Schema& schema,
                                   const ChaseOptions& options) {
  Result<ConjunctiveQuery> expansion = ExpandRewriting(rewriting, views);
  if (!expansion.ok()) {
    if (expansion.status().code() == StatusCode::kFailedPrecondition) {
      return false;  // unsatisfiable rewriting is never equivalent to a CQ
    }
    return expansion.status();
  }
  EquivalenceEngine engine;
  SQLEQ_ASSIGN_OR_RETURN(
      EquivVerdict verdict,
      engine.Equivalent(*expansion, q, EquivRequest{semantics, sigma, schema, options}));
  return verdict.equivalent;
}

Result<RewriteResult> RewriteWithViews(const ConjunctiveQuery& q, const ViewSet& views,
                                       const DependencySet& sigma, Semantics semantics,
                                       const Schema& schema,
                                       const RewriteOptions& options) {
  if (options.candb.analyze.enabled) {
    // Pre-flight Q and every view definition: a bad view body would
    // otherwise surface deep inside candidate expansion chases.
    std::vector<ConjunctiveQuery> queries{q};
    for (const std::string& name : views.names()) {
      SQLEQ_ASSIGN_OR_RETURN(ConjunctiveQuery def, views.Get(name));
      queries.push_back(std::move(def));
    }
    SQLEQ_RETURN_IF_ERROR(
        ReportToStatus(AnalyzeProgram(schema, sigma, queries, options.candb.analyze)));
  }
  // One budget governs the whole call (see CandBOptions::budget).
  ChaseOptions chase_options = options.candb.chase;
  chase_options.budget = options.candb.budget;

  // Chase phase.
  SQLEQ_ASSIGN_OR_RETURN(ChaseOutcome chased,
                         SoundChase(q, sigma, semantics, schema, chase_options));
  if (chased.failed) {
    return Status::FailedPrecondition("chase failed: Q is unsatisfiable under Σ");
  }
  RewriteResult out{{}, chased.result, 0, 0, 0};
  const ConjunctiveQuery& u = out.universal_plan;

  // Candidate atoms: view atoms induced by homomorphisms view-body → U,
  // plus (optionally) the base atoms of U.
  std::vector<Atom> pool;
  std::unordered_set<Atom, AtomHash> seen;
  for (const std::string& name : views.names()) {
    SQLEQ_ASSIGN_OR_RETURN(ConjunctiveQuery def, views.Get(name));
    ConjunctiveQuery fresh = def.RenameApart();
    ForEachHomomorphism(fresh.body(), u.body(), TermMap(), [&](const TermMap& h) {
      std::vector<Term> args;
      args.reserve(fresh.head().size());
      for (Term t : fresh.head()) args.push_back(ApplyTermMap(h, t));
      Atom candidate(name, std::move(args));
      if (seen.insert(candidate).second) pool.push_back(std::move(candidate));
      return true;
    });
  }
  if (options.allow_base_atoms) {
    for (const Atom& a : u.body()) {
      if (seen.insert(a).second) pool.push_back(a);
    }
  }
  if (pool.size() >= 24) {
    return Status::ResourceExhausted("rewriting candidate pool too large (" +
                                     std::to_string(pool.size()) + " atoms)");
  }

  // Backchase over subsets of the pool, smallest first, through the shared
  // sweep: candidate expansions are chased via a memo (isomorphic expansions
  // abound among view-atom combinations), and U itself is chased exactly
  // once, up front, instead of once per candidate.
  ChaseMemo memo(sigma, semantics, schema, chase_options);
  std::string u_key;
  SQLEQ_ASSIGN_OR_RETURN(std::shared_ptr<const ChaseOutcome> u_chased,
                         memo.ChaseCanonical(u, &u_key));
  auto evaluate = [&](uint64_t mask) -> Result<CandidateVerdict> {
    std::vector<Atom> body;
    for (size_t i = 0; i < pool.size(); ++i) {
      if ((mask >> i) & 1) body.push_back(pool[i]);
    }
    Result<ConjunctiveQuery> candidate =
        ConjunctiveQuery::Create(q.name() + "_v", u.head(), std::move(body));
    if (!candidate.ok()) return CandidateVerdict{};  // unsafe — skip

    CandidateVerdict verdict;
    Result<ConjunctiveQuery> expansion = ExpandRewriting(*candidate, views);
    if (!expansion.ok()) {
      if (expansion.status().code() == StatusCode::kFailedPrecondition) {
        // Unsatisfiable rewriting (view heads force a constant clash) —
        // never equivalent to a CQ.
        verdict.outcome = CandidateOutcome::kRejected;
        return verdict;
      }
      return expansion.status();
    }
    SQLEQ_ASSIGN_OR_RETURN(std::shared_ptr<const ChaseOutcome> exp_chased,
                           memo.ChaseCanonical(*expansion, &verdict.chase_key));
    if (exp_chased->failed) {
      verdict.outcome = u_chased->failed ? CandidateOutcome::kAccepted
                                         : CandidateOutcome::kChaseFailed;
      if (verdict.outcome == CandidateOutcome::kAccepted) {
        verdict.query = std::move(*candidate);
      }
      return verdict;
    }

    // Both chases live in canonical variable space; ChasedEquivalent is
    // isomorphism-invariant.
    bool equivalent =
        !u_chased->failed &&
        ChasedEquivalent(exp_chased->result, u_chased->result, semantics, schema);
    if (equivalent) {
      verdict.outcome = CandidateOutcome::kAccepted;
      verdict.query = std::move(*candidate);
    } else {
      verdict.outcome = CandidateOutcome::kRejected;
    }
    return verdict;
  };

  // Failure pruning (supersets of a mask whose expansion's chase failed):
  // sound under set semantics only — a superset mask induces a stronger
  // unifier, so its expansion receives a homomorphism from the failed one,
  // and unsatisfiability transfers along homomorphisms.
  bool failure_prune = semantics == Semantics::kSet && !u_chased->failed;
  SQLEQ_ASSIGN_OR_RETURN(SweepOutput swept,
                         SweepBackchaseLattice(pool.size(), options.candb.budget,
                                               failure_prune, {u_key}, evaluate));
  out.rewritings = std::move(swept.accepted);
  out.candidates_examined = swept.stats.candidates_examined;
  out.chase_cache_hits = swept.stats.chase_cache_hits;
  out.chase_cache_misses = swept.stats.chase_cache_misses;
  return out;
}

}  // namespace sqleq
