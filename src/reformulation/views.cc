#include "reformulation/views.h"

#include <memory>
#include <unordered_set>

#include "chase/chase_cache.h"
#include "chase/chase_plan.h"
#include "chase/homomorphism.h"
#include "chase/sound_chase.h"
#include "equivalence/engine.h"
#include "equivalence/isomorphism.h"
#include "reformulation/backchase.h"
#include "util/fault.h"

namespace sqleq {
namespace {

/// Union-find over terms, constants as preferred representatives; a clash of
/// two distinct constants marks the rewriting unsatisfiable.
class Unifier {
 public:
  Term Find(Term t) {
    auto it = parent_.find(t);
    if (it == parent_.end() || it->second == t) return t;
    Term root = Find(it->second);
    parent_[t] = root;
    return root;
  }

  Status Union(Term a, Term b) {
    Term ra = Find(a);
    Term rb = Find(b);
    if (ra == rb) return Status::OK();
    if (ra.IsConstant() && rb.IsConstant()) {
      return Status::FailedPrecondition(
          "rewriting is unsatisfiable: view head forces " + ra.ToString() + " = " +
          rb.ToString());
    }
    if (ra.IsConstant()) std::swap(ra, rb);
    parent_[ra] = rb;
    return Status::OK();
  }

 private:
  TermMap parent_;
};

}  // namespace

Status ViewSet::Add(const ConjunctiveQuery& definition) {
  const std::string& name = definition.name();
  if (views_.count(name) > 0) {
    return Status::InvalidArgument("duplicate view '" + name + "'");
  }
  for (const Atom& a : definition.body()) {
    if (views_.count(a.predicate()) > 0 || a.predicate() == name) {
      return Status::Unsupported("view '" + name + "' references view '" +
                                 a.predicate() + "'; nested views are not supported");
    }
  }
  for (const auto& [existing_name, existing] : views_) {
    for (const Atom& a : existing.body()) {
      if (a.predicate() == name) {
        return Status::Unsupported("view '" + name + "' is referenced by view '" +
                                   existing_name + "'; nested views are not supported");
      }
    }
  }
  views_.emplace(name, definition);
  order_.push_back(name);
  return Status::OK();
}

Result<ConjunctiveQuery> ViewSet::Get(const std::string& name) const {
  auto it = views_.find(name);
  if (it == views_.end()) return Status::NotFound("unknown view '" + name + "'");
  return it->second;
}

Schema ViewSet::AsSchema(bool set_valued) const {
  Schema out;
  for (const auto& [name, def] : views_) {
    Status s = out.AddRelation(name, def.head().size(), {}, set_valued);
    (void)s;  // names are unique and arities positive by construction
  }
  return out;
}

Result<ConjunctiveQuery> ExpandRewriting(const ConjunctiveQuery& rewriting,
                                         const ViewSet& views) {
  // Phase 1: constraints induced by repeated variables / constants in view
  // heads become unifications over the rewriting's terms.
  Unifier unifier;
  for (const Atom& atom : rewriting.body()) {
    if (!views.Has(atom.predicate())) continue;
    SQLEQ_ASSIGN_OR_RETURN(ConjunctiveQuery def, views.Get(atom.predicate()));
    if (def.head().size() != atom.arity()) {
      return Status::InvalidArgument("view atom " + atom.ToString() +
                                     " disagrees with view head arity " +
                                     std::to_string(def.head().size()));
    }
    TermMap seen;  // view head variable -> rewriting term
    for (size_t i = 0; i < atom.arity(); ++i) {
      Term h = def.head()[i];
      Term arg = atom.args()[i];
      if (h.IsConstant()) {
        SQLEQ_RETURN_IF_ERROR(unifier.Union(arg, h));
        continue;
      }
      auto it = seen.find(h);
      if (it != seen.end()) {
        SQLEQ_RETURN_IF_ERROR(unifier.Union(it->second, arg));
      } else {
        seen.emplace(h, arg);
      }
    }
  }

  // Phase 2: apply the unifier to the whole rewriting.
  std::vector<Term> head;
  for (Term t : rewriting.head()) head.push_back(unifier.Find(t));
  std::vector<Atom> atoms;
  for (const Atom& a : rewriting.body()) {
    std::vector<Term> args;
    for (Term t : a.args()) args.push_back(unifier.Find(t));
    atoms.emplace_back(a.predicate(), std::move(args));
  }

  // Phase 3: splice in freshened view bodies.
  std::vector<Atom> body;
  for (const Atom& atom : atoms) {
    if (!views.Has(atom.predicate())) {
      body.push_back(atom);
      continue;
    }
    SQLEQ_ASSIGN_OR_RETURN(ConjunctiveQuery def, views.Get(atom.predicate()));
    ConjunctiveQuery fresh = def.RenameApart();
    TermMap map;
    for (size_t i = 0; i < atom.arity(); ++i) {
      Term h = fresh.head()[i];
      if (h.IsVariable()) map.emplace(h, atom.args()[i]);
    }
    for (const Atom& view_atom : ApplyTermMap(map, fresh.body())) {
      body.push_back(view_atom);
    }
  }
  return ConjunctiveQuery::Create(rewriting.name() + "_exp", std::move(head),
                                  std::move(body));
}

Result<bool> IsEquivalentRewriting(const ConjunctiveQuery& q,
                                   const ConjunctiveQuery& rewriting,
                                   const ViewSet& views, const DependencySet& sigma,
                                   Semantics semantics, const Schema& schema,
                                   const ChaseOptions& options) {
  Result<ConjunctiveQuery> expansion = ExpandRewriting(rewriting, views);
  if (!expansion.ok()) {
    if (expansion.status().code() == StatusCode::kFailedPrecondition) {
      return false;  // unsatisfiable rewriting is never equivalent to a CQ
    }
    return expansion.status();
  }
  EquivalenceEngine engine;
  EquivRequest request{semantics, sigma, schema, options};
  request.context.budget = options.budget;
  SQLEQ_ASSIGN_OR_RETURN(EquivVerdict verdict,
                         engine.Equivalent(*expansion, q, request));
  return VerdictToBool(verdict);
}

Result<RewriteResult> RewriteWithViews(const ConjunctiveQuery& q, const ViewSet& views,
                                       const DependencySet& sigma, Semantics semantics,
                                       const Schema& schema,
                                       const RewriteOptions& options) {
  const EngineContext& ctx = options.context;
  TraceSpan rewrite_span(ctx.trace, "rewrite.views");
  if (options.analyze.enabled) {
    // Pre-flight Q and every view definition: a bad view body would
    // otherwise surface deep inside candidate expansion chases.
    std::vector<ConjunctiveQuery> queries{q};
    for (const std::string& name : views.names()) {
      SQLEQ_ASSIGN_OR_RETURN(ConjunctiveQuery def, views.Get(name));
      queries.push_back(std::move(def));
    }
    AnalyzeOptions analyze = options.analyze;
    if (analyze.budget == ResourceBudget{}) analyze.budget = ctx.budget;
    SQLEQ_RETURN_IF_ERROR(
        ReportToStatus(AnalyzeProgram(schema, sigma, queries, analyze)));
  }
  // One budget governs the whole call (see CandBOptions::context).
  ChaseOptions chase_options = options.chase;
  chase_options.budget = ctx.budget;

  // One compiled plan serves the whole rewrite: the chase of Q, the chase of
  // U, and every candidate expansion (through the memo) share its Σ kernels.
  auto chase_plan = std::make_shared<const ChasePlan>(sigma, semantics, schema,
                                                      chase_options);

  const CandBCheckpoint* resume = options.resume;
  const bool resume_backchase =
      resume != nullptr && resume->phase == CandBCheckpoint::kBackchasePhase &&
      resume->universal_plan.has_value() && resume->backchase.has_value();

  // Chase phase.
  std::optional<ConjunctiveQuery> plan;
  if (resume_backchase) {
    plan = *resume->universal_plan;
  } else {
    ChaseRuntime chase_runtime;
    chase_runtime.faults = ctx.faults;
    chase_runtime.cancel = ctx.cancel;
    chase_runtime.metrics = ctx.metrics;
    chase_runtime.trace = ctx.trace;
    if (resume != nullptr && resume->phase == CandBCheckpoint::kChasePhase &&
        resume->chase.has_value()) {
      chase_runtime.resume = &*resume->chase;
    }
    std::optional<ChaseCheckpoint> chase_checkpoint;
    chase_runtime.checkpoint_out = &chase_checkpoint;
    Result<ChaseOutcome> chased = chase_plan->Run(q, chase_runtime);
    if (!chased.ok()) {
      if (!IsAnytimeStop(chased.status())) return chased.status();
      RewriteResult out{{}, q, 0, 0, 0, true, std::nullopt, std::nullopt};
      out.complete = false;
      out.exhaustion = InferExhaustion(chased.status(), "chase");
      CandBCheckpoint cp;
      cp.phase = CandBCheckpoint::kChasePhase;
      cp.chase = std::move(chase_checkpoint);
      out.checkpoint = std::move(cp);
      return out;
    }
    if (chased->failed) {
      return Status::FailedPrecondition("chase failed: Q is unsatisfiable under Σ");
    }
    plan = std::move(chased->result);
  }
  RewriteResult out{{}, *plan, 0, 0, 0, true, std::nullopt, std::nullopt};
  const ConjunctiveQuery& u = out.universal_plan;

  // Candidate atoms: view atoms induced by homomorphisms view-body → U,
  // plus (optionally) the base atoms of U.
  std::vector<Atom> pool;
  std::unordered_set<Atom, AtomHash> seen;
  for (const std::string& name : views.names()) {
    SQLEQ_ASSIGN_OR_RETURN(ConjunctiveQuery def, views.Get(name));
    ConjunctiveQuery fresh = def.RenameApart();
    ForEachHomomorphism(fresh.body(), u.body(), TermMap(), [&](const TermMap& h) {
      std::vector<Term> args;
      args.reserve(fresh.head().size());
      for (Term t : fresh.head()) args.push_back(ApplyTermMap(h, t));
      Atom candidate(name, std::move(args));
      if (seen.insert(candidate).second) pool.push_back(std::move(candidate));
      return true;
    });
  }
  if (options.allow_base_atoms) {
    for (const Atom& a : u.body()) {
      if (seen.insert(a).second) pool.push_back(a);
    }
  }
  if (pool.size() >= 24) {
    return Status::ResourceExhausted("rewriting candidate pool too large (" +
                                     std::to_string(pool.size()) + " atoms)");
  }

  // Backchase over subsets of the pool, smallest first, through the shared
  // sweep: candidate expansions are chased via a memo (isomorphic expansions
  // abound among view-atom combinations), and U itself is chased exactly
  // once, up front, instead of once per candidate.
  ChaseMemo memo(chase_plan);
  ChaseRuntime memo_runtime;
  memo_runtime.faults = ctx.faults;
  memo_runtime.cancel = ctx.cancel;
  memo_runtime.metrics = ctx.metrics;
  memo_runtime.trace = ctx.trace;
  std::string u_key;
  Result<std::shared_ptr<const ChaseOutcome>> u_chase_result =
      memo.ChaseCanonical(u, &u_key, memo_runtime);
  if (!u_chase_result.ok()) {
    if (!IsAnytimeStop(u_chase_result.status())) return u_chase_result.status();
    // U's own (usually near-fixpoint) chase tripped before the sweep began:
    // checkpoint at the sweep's start — or at the incoming resume point,
    // which is strictly further along.
    RewriteResult partial{{}, u, 0, 0, 0, true, std::nullopt, std::nullopt};
    partial.complete = false;
    partial.exhaustion = InferExhaustion(u_chase_result.status(), "backchase");
    CandBCheckpoint cp;
    cp.phase = CandBCheckpoint::kBackchasePhase;
    cp.universal_plan = u;
    cp.backchase =
        resume_backchase ? *resume->backchase : BackchaseCheckpoint{};
    if (resume_backchase) {
      partial.rewritings = resume->backchase->accepted;
      partial.candidates_examined = resume->backchase->stats.candidates_examined;
      partial.chase_cache_hits = resume->backchase->stats.chase_cache_hits;
      partial.chase_cache_misses = resume->backchase->stats.chase_cache_misses;
    }
    partial.checkpoint = std::move(cp);
    return partial;
  }
  std::shared_ptr<const ChaseOutcome> u_chased = std::move(*u_chase_result);
  auto evaluate = [&](uint64_t mask) -> Result<CandidateVerdict> {
    SQLEQ_RETURN_IF_ERROR(
        ProbeSite(ctx.faults, ctx.cancel, fault_sites::kBackchaseCandidate));
    std::vector<Atom> body;
    for (size_t i = 0; i < pool.size(); ++i) {
      if ((mask >> i) & 1) body.push_back(pool[i]);
    }
    Result<ConjunctiveQuery> candidate =
        ConjunctiveQuery::Create(q.name() + "_v", u.head(), std::move(body));
    if (!candidate.ok()) return CandidateVerdict{};  // unsafe — skip

    CandidateVerdict verdict;
    Result<ConjunctiveQuery> expansion = ExpandRewriting(*candidate, views);
    if (!expansion.ok()) {
      if (expansion.status().code() == StatusCode::kFailedPrecondition) {
        // Unsatisfiable rewriting (view heads force a constant clash) —
        // never equivalent to a CQ.
        verdict.outcome = CandidateOutcome::kRejected;
        return verdict;
      }
      return expansion.status();
    }
    SQLEQ_ASSIGN_OR_RETURN(
        std::shared_ptr<const ChaseOutcome> exp_chased,
        memo.ChaseCanonical(*expansion, &verdict.chase_key, memo_runtime));
    if (exp_chased->failed) {
      verdict.outcome = u_chased->failed ? CandidateOutcome::kAccepted
                                         : CandidateOutcome::kChaseFailed;
      if (verdict.outcome == CandidateOutcome::kAccepted) {
        verdict.query = std::move(*candidate);
      }
      return verdict;
    }

    // Both chases live in canonical variable space; ChasedEquivalent is
    // isomorphism-invariant.
    bool equivalent =
        !u_chased->failed &&
        ChasedEquivalent(exp_chased->result, u_chased->result, semantics, schema);
    if (equivalent) {
      verdict.outcome = CandidateOutcome::kAccepted;
      verdict.query = std::move(*candidate);
    } else {
      verdict.outcome = CandidateOutcome::kRejected;
    }
    return verdict;
  };

  // Failure pruning (supersets of a mask whose expansion's chase failed):
  // sound under set semantics only — a superset mask induces a stronger
  // unifier, so its expansion receives a homomorphism from the failed one,
  // and unsatisfiability transfers along homomorphisms.
  SweepOptions sweep_options;
  sweep_options.enable_failure_prune =
      semantics == Semantics::kSet && !u_chased->failed;
  sweep_options.preseeded_chase_keys = {u_key};
  sweep_options.faults = ctx.faults;
  sweep_options.cancel = ctx.cancel;
  sweep_options.metrics = ctx.metrics;
  sweep_options.trace = ctx.trace;
  if (resume_backchase) sweep_options.resume = &*resume->backchase;
  SQLEQ_ASSIGN_OR_RETURN(
      SweepOutput swept,
      SweepBackchaseLattice(pool.size(), ctx.budget, sweep_options, evaluate));
  out.rewritings = std::move(swept.accepted);
  out.candidates_examined = swept.stats.candidates_examined;
  out.chase_cache_hits = swept.stats.chase_cache_hits;
  out.chase_cache_misses = swept.stats.chase_cache_misses;
  if (!swept.complete) {
    out.complete = false;
    out.exhaustion = std::move(swept.exhaustion);
    CandBCheckpoint cp;
    cp.phase = CandBCheckpoint::kBackchasePhase;
    cp.universal_plan = u;
    cp.backchase = std::move(swept.checkpoint);
    out.checkpoint = std::move(cp);
  }
  return out;
}

Result<RewriteResult> RewriteWithViewsWithRetry(
    const ConjunctiveQuery& q, const ViewSet& views, const DependencySet& sigma,
    Semantics semantics, const Schema& schema, const RewriteOptions& options,
    const EscalatingBudget& policy) {
  const size_t attempts = policy.max_attempts == 0 ? 1 : policy.max_attempts;
  const ResourceBudget base_budget = options.context.budget;
  RewriteOptions attempt_options = options;
  std::optional<CandBCheckpoint> carried;
  Result<RewriteResult> result =
      Status::Internal("retry loop did not run");  // overwritten below
  for (size_t attempt = 0; attempt < attempts; ++attempt) {
    attempt_options.context.budget = policy.Escalate(base_budget, attempt);
    attempt_options.resume =
        carried.has_value() ? &*carried : options.resume;
    result = RewriteWithViews(q, views, sigma, semantics, schema, attempt_options);
    if (!result.ok() || result->complete || !result->checkpoint.has_value()) {
      return result;
    }
    carried = *result->checkpoint;
  }
  return result;
}

}  // namespace sqleq
