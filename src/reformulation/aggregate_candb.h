// Reformulation of aggregate CQ queries (§6.3, Theorem K.2):
//   * Max-Min-C&B — max/min queries, via set-semantics C&B on the core;
//   * Sum-Count-C&B — sum/count queries, via Bag-Set-C&B on the core.
// Each core reformulation Q′ is re-wrapped with the input query's aggregate
// head; then Q′′ ≡Σ Q by Theorem 6.3.
#ifndef SQLEQ_REFORMULATION_AGGREGATE_CANDB_H_
#define SQLEQ_REFORMULATION_AGGREGATE_CANDB_H_

#include <vector>

#include "reformulation/candb.h"

namespace sqleq {

struct AggregateCandBResult {
  /// The universal plan of the core.
  ConjunctiveQuery core_universal_plan;
  /// Σ-minimal aggregate reformulations Q′′ ≡Σ Q.
  std::vector<AggregateQuery> reformulations;
  size_t candidates_examined = 0;
};

/// Dispatches on the aggregate function: max/min → Max-Min-C&B (set core
/// reformulation), sum/count/count(*) → Sum-Count-C&B (bag-set core
/// reformulation). `schema` is consulted for Bag-Set-C&B's chase.
Result<AggregateCandBResult> AggregateCandB(const AggregateQuery& q,
                                            const DependencySet& sigma,
                                            const Schema& schema,
                                            const CandBOptions& options = {});

}  // namespace sqleq

#endif  // SQLEQ_REFORMULATION_AGGREGATE_CANDB_H_
