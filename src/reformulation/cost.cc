#include "reformulation/cost.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace sqleq {

CostModel& CostModel::SetRows(const std::string& relation, double rows) {
  stats_[relation].rows = rows;
  return *this;
}

CostModel& CostModel::SetDistinct(const std::string& relation, size_t position,
                                  double n) {
  stats_[relation].distinct[position] = n;
  return *this;
}

CostModel& CostModel::SetDefaultRows(double rows) {
  default_rows_ = rows;
  return *this;
}

double CostModel::RowsOf(const std::string& relation) const {
  auto it = stats_.find(relation);
  return it == stats_.end() ? default_rows_ : it->second.rows;
}

double CostModel::DistinctOf(const std::string& relation, size_t position) const {
  auto it = stats_.find(relation);
  if (it != stats_.end()) {
    auto jt = it->second.distinct.find(position);
    if (jt != it->second.distinct.end()) return std::max(1.0, jt->second);
  }
  return std::max(1.0, std::sqrt(RowsOf(relation)));
}

CostEstimate EstimateCost(const ConjunctiveQuery& q, const CostModel& model) {
  CostEstimate out;
  out.atoms = q.body().size();

  std::unordered_set<Term, TermHash> bound;
  std::vector<bool> used(q.body().size(), false);
  double frontier = 1.0;  // current intermediate cardinality

  // Count of occurrences per variable to spot join positions.
  auto atom_contribution = [&](const Atom& atom) {
    double rows = model.RowsOf(atom.predicate());
    double selectivity = 1.0;
    for (size_t i = 0; i < atom.arity(); ++i) {
      Term t = atom.args()[i];
      bool is_bound = t.IsConstant() || bound.count(t) > 0;
      if (is_bound) {
        selectivity /= model.DistinctOf(atom.predicate(), i);
      }
    }
    return std::max(1e-9, rows * selectivity);
  };

  for (size_t step = 0; step < q.body().size(); ++step) {
    // Greedy: pick the unused atom with the smallest contribution (most
    // bound positions first).
    size_t best = q.body().size();
    double best_contribution = 0.0;
    for (size_t i = 0; i < q.body().size(); ++i) {
      if (used[i]) continue;
      double c = atom_contribution(q.body()[i]);
      if (best == q.body().size() || c < best_contribution) {
        best = i;
        best_contribution = c;
      }
    }
    used[best] = true;
    frontier *= best_contribution;
    out.intermediate_tuples += frontier;
    for (Term t : q.body()[best].args()) {
      if (t.IsVariable()) bound.insert(t);
    }
  }
  out.output_rows = frontier;
  return out;
}

std::optional<size_t> PickCheapest(const std::vector<ConjunctiveQuery>& candidates,
                                   const CostModel& model) {
  std::optional<size_t> best;
  CostEstimate best_cost;
  for (size_t i = 0; i < candidates.size(); ++i) {
    CostEstimate cost = EstimateCost(candidates[i], model);
    bool better = !best.has_value() ||
                  cost.intermediate_tuples < best_cost.intermediate_tuples ||
                  (cost.intermediate_tuples == best_cost.intermediate_tuples &&
                   cost.atoms < best_cost.atoms);
    if (better) {
      best = i;
      best_cost = cost;
    }
  }
  return best;
}

}  // namespace sqleq
