#include "reformulation/aggregate_candb.h"

#include "reformulation/bag_candb.h"

namespace sqleq {

Result<AggregateCandBResult> AggregateCandB(const AggregateQuery& q,
                                            const DependencySet& sigma,
                                            const Schema& schema,
                                            const CandBOptions& options) {
  ConjunctiveQuery core = q.Core();
  bool set_reduction = q.function() == AggregateFunction::kMax ||
                       q.function() == AggregateFunction::kMin;
  Result<CandBResult> core_result =
      set_reduction ? SetCandB(core, sigma, options)
                    : BagSetCandB(core, sigma, schema, options);
  SQLEQ_RETURN_IF_ERROR(core_result.status());

  AggregateCandBResult out{core_result->universal_plan, {},
                           core_result->candidates_examined};
  size_t group_arity = q.grouping().size();
  for (const ConjunctiveQuery& reform : core_result->reformulations) {
    // Rebuild the aggregate head from the (possibly egd-rewritten) core
    // head: grouping prefix + aggregate argument suffix.
    std::vector<Term> grouping(reform.head().begin(),
                               reform.head().begin() + group_arity);
    std::optional<Term> agg_arg;
    if (q.agg_arg().has_value()) agg_arg = reform.head().back();
    Result<AggregateQuery> rebuilt = AggregateQuery::Create(
        q.name(), std::move(grouping), q.function(), agg_arg, reform.body());
    // Chase can in principle unify the aggregate argument into the grouping
    // terms, which no aggregate head can express; such candidates are
    // skipped rather than emitted malformed.
    if (!rebuilt.ok()) continue;
    out.reformulations.push_back(std::move(*rebuilt));
  }
  return out;
}

}  // namespace sqleq
