// The backchase lattice sweep shared by chase & backchase (candb.cc) and
// rewrite-with-views (views.cc): enumerate subset masks of a candidate pool
// smallest-cardinality first, prune, evaluate candidates — possibly on a
// worker pool — and collect accepted candidates deterministically.
//
// Parallel soundness rests on the wave structure: masks are processed in
// cardinality waves, and a mask can only be dominated (or failure-pruned)
// by a *strictly smaller* mask, so every pruning fact a wave needs is fully
// known before the wave starts. Within a wave, evaluations are independent
// pure functions; their results are merged in ascending mask order. Serial
// and parallel sweeps therefore return byte-identical outputs.
#ifndef SQLEQ_REFORMULATION_BACKCHASE_H_
#define SQLEQ_REFORMULATION_BACKCHASE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ir/query.h"
#include "util/resource_budget.h"
#include "util/status.h"

namespace sqleq {

/// What one candidate evaluation concluded.
enum class CandidateOutcome {
  kSkipped,      ///< not a well-formed candidate (e.g. unsafe) — not counted
  kRejected,     ///< examined; not equivalent (or not minimal)
  kChaseFailed,  ///< examined; the candidate's chase failed (unsatisfiable)
  kAccepted,     ///< examined; an equivalent reformulation
};

struct CandidateVerdict {
  CandidateOutcome outcome = CandidateOutcome::kSkipped;
  /// The accepted candidate (kAccepted only).
  std::optional<ConjunctiveQuery> query;
  /// Canonical chase key of the candidate's (memoized) chase, empty when no
  /// chase ran. Drives the sweep's deterministic cache-hit accounting.
  std::string chase_key;
};

struct SweepStats {
  /// Candidates whose equivalence was tested (kSkipped excluded).
  size_t candidates_examined = 0;
  /// Deterministic chase-memo accounting, replayed in mask order at merge
  /// time (identical at every thread count, unlike the memo's live
  /// counters under concurrent same-key misses).
  size_t chase_cache_hits = 0;
  size_t chase_cache_misses = 0;
  /// Masks skipped as supersets of an already-accepted mask (Σ-minimality
  /// lattice pruning).
  size_t dominance_pruned = 0;
  /// Masks skipped as supersets of a chase-failed mask (set-semantics
  /// failure pruning: a superset of an unsatisfiable subquery is itself
  /// unsatisfiable).
  size_t failure_pruned = 0;
};

/// The resumable state of an interrupted lattice sweep, cut at the first
/// unevaluated mask: everything strictly before `next_mask` (in wave order)
/// is fully merged into the carried fields; everything at or after it is
/// untouched and re-enumerated on resume. Because the sweep merges in
/// ascending mask order, resuming and finishing yields exactly the
/// uninterrupted sweep's output, at every thread count.
struct BackchaseCheckpoint {
  /// Popcount of `next_mask` — the wave to re-enter.
  size_t cardinality = 1;
  /// First mask not yet evaluated.
  uint64_t next_mask = 0;
  std::vector<uint64_t> accepted_masks;
  std::vector<uint64_t> failed_masks;
  /// Accepted candidates so far (ascending mask order, deduped).
  std::vector<ConjunctiveQuery> accepted;
  SweepStats stats;
  /// Chase keys seen so far (sorted), for deterministic hit replay.
  std::vector<std::string> seen_chase_keys;
  /// Non-pruned masks already charged against max_candidates.
  size_t budget_consumed = 0;

  std::string Serialize() const;
  static Result<BackchaseCheckpoint> Deserialize(std::string_view text);
};

class FaultInjector;
class CancellationToken;
class MetricsRegistry;
class TraceSink;

/// Per-call knobs of the sweep beyond the budget.
struct SweepOptions {
  /// Turns on the kChaseFailed superset prune — sound under set semantics,
  /// where chase failure is monotone in the body (a restriction of any hom
  /// into a model is a hom).
  bool enable_failure_prune = false;
  /// Seed the hit accounting with chases performed before the sweep (e.g.
  /// the universal plan's).
  std::vector<std::string> preseeded_chase_keys;
  /// Resume an interrupted sweep. The caller must re-supply the identical
  /// pool and evaluate function (the checkpoint stores mask-indexed state).
  const BackchaseCheckpoint* resume = nullptr;
  /// Fault injection ("pool.task" fires once per evaluated mask) and
  /// cooperative cancellation, both checked during enumeration and
  /// evaluation. Either may be null.
  FaultInjector* faults = nullptr;
  CancellationToken* cancel = nullptr;
  /// Counter sink for backchase.* metrics. All backchase counters are
  /// committed in the sweep's serial merge phase (or its cut), so their
  /// totals are identical at every thread count. Null disables them.
  MetricsRegistry* metrics = nullptr;
  /// Span sink ("backchase.sweep"); also handed to the worker pool for
  /// pool.* latency histograms when metrics is set. Null disables tracing.
  TraceSink* trace = nullptr;
};

struct SweepOutput {
  /// Accepted candidates, ascending mask order, pairwise non-isomorphic.
  std::vector<ConjunctiveQuery> accepted;
  SweepStats stats;
  /// False when the sweep stopped early on an anytime condition (candidate
  /// budget, deadline, cancellation, injected exhaustion); `accepted` then
  /// holds the prefix confirmed before the stop, `exhaustion` says why, and
  /// `checkpoint` resumes the sweep.
  bool complete = true;
  std::optional<ExhaustionInfo> exhaustion;
  std::optional<BackchaseCheckpoint> checkpoint;
};

/// Sweeps the 2^n - 1 nonempty subset masks of an n-element candidate pool.
/// `evaluate` must be a pure, thread-safe function of the mask; it runs on
/// `budget.threads` threads (<=1 → serial).
///
/// Budget: every non-pruned mask consumes one unit of
/// `budget.max_candidates`. Exhaustion, deadline expiry, cancellation, and
/// injected exhaustion do NOT error: they end the sweep early with
/// `complete = false` and a resumable checkpoint (anytime contract, see
/// docs/robustness.md). Non-anytime evaluate errors still propagate as
/// errors, first-in-mask-order.
Result<SweepOutput> SweepBackchaseLattice(
    size_t n, const ResourceBudget& budget, const SweepOptions& options,
    const std::function<Result<CandidateVerdict>(uint64_t)>& evaluate);

}  // namespace sqleq

#endif  // SQLEQ_REFORMULATION_BACKCHASE_H_
