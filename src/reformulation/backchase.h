// The backchase lattice sweep shared by chase & backchase (candb.cc) and
// rewrite-with-views (views.cc): enumerate subset masks of a candidate pool
// smallest-cardinality first, prune, evaluate candidates — possibly on a
// worker pool — and collect accepted candidates deterministically.
//
// Parallel soundness rests on the wave structure: masks are processed in
// cardinality waves, and a mask can only be dominated (or failure-pruned)
// by a *strictly smaller* mask, so every pruning fact a wave needs is fully
// known before the wave starts. Within a wave, evaluations are independent
// pure functions; their results are merged in ascending mask order. Serial
// and parallel sweeps therefore return byte-identical outputs.
#ifndef SQLEQ_REFORMULATION_BACKCHASE_H_
#define SQLEQ_REFORMULATION_BACKCHASE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ir/query.h"
#include "util/resource_budget.h"
#include "util/status.h"

namespace sqleq {

/// What one candidate evaluation concluded.
enum class CandidateOutcome {
  kSkipped,      ///< not a well-formed candidate (e.g. unsafe) — not counted
  kRejected,     ///< examined; not equivalent (or not minimal)
  kChaseFailed,  ///< examined; the candidate's chase failed (unsatisfiable)
  kAccepted,     ///< examined; an equivalent reformulation
};

struct CandidateVerdict {
  CandidateOutcome outcome = CandidateOutcome::kSkipped;
  /// The accepted candidate (kAccepted only).
  std::optional<ConjunctiveQuery> query;
  /// Canonical chase key of the candidate's (memoized) chase, empty when no
  /// chase ran. Drives the sweep's deterministic cache-hit accounting.
  std::string chase_key;
};

struct SweepStats {
  /// Candidates whose equivalence was tested (kSkipped excluded).
  size_t candidates_examined = 0;
  /// Deterministic chase-memo accounting, replayed in mask order at merge
  /// time (identical at every thread count, unlike the memo's live
  /// counters under concurrent same-key misses).
  size_t chase_cache_hits = 0;
  size_t chase_cache_misses = 0;
  /// Masks skipped as supersets of an already-accepted mask (Σ-minimality
  /// lattice pruning).
  size_t dominance_pruned = 0;
  /// Masks skipped as supersets of a chase-failed mask (set-semantics
  /// failure pruning: a superset of an unsatisfiable subquery is itself
  /// unsatisfiable).
  size_t failure_pruned = 0;
};

struct SweepOutput {
  /// Accepted candidates, ascending mask order, pairwise non-isomorphic.
  std::vector<ConjunctiveQuery> accepted;
  SweepStats stats;
};

/// Sweeps the 2^n - 1 nonempty subset masks of an n-element candidate pool.
/// `evaluate` must be a pure, thread-safe function of the mask; it runs on
/// `budget.threads` threads (<=1 → serial). `enable_failure_prune` turns on
/// the kChaseFailed superset prune — sound under set semantics, where chase
/// failure is monotone in the body (a restriction of any hom into a model
/// is a hom). `preseeded_chase_keys` seed the hit accounting with chases
/// performed before the sweep (e.g. the universal plan's).
///
/// Budget: every non-pruned mask consumes one unit of
/// `budget.max_candidates`; exhaustion and deadline expiry return
/// ResourceExhausted naming the limit.
Result<SweepOutput> SweepBackchaseLattice(
    size_t n, const ResourceBudget& budget, bool enable_failure_prune,
    const std::vector<std::string>& preseeded_chase_keys,
    const std::function<Result<CandidateVerdict>(uint64_t)>& evaluate);

}  // namespace sqleq

#endif  // SQLEQ_REFORMULATION_BACKCHASE_H_
