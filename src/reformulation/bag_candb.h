// Named entry points for the §6.3 reformulation algorithms on CQ queries:
// Bag-C&B (Theorem 6.4) and Bag-Set-C&B (Theorem K.1). Both are thin
// specializations of ChaseAndBackchase.
#ifndef SQLEQ_REFORMULATION_BAG_CANDB_H_
#define SQLEQ_REFORMULATION_BAG_CANDB_H_

#include "reformulation/candb.h"

namespace sqleq {

/// Bag-C&B: all Σ-minimal Q′ with Q′ ≡Σ,B Q (sound & complete when set
/// chase terminates, Thm 6.4).
Result<CandBResult> BagCandB(const ConjunctiveQuery& q, const DependencySet& sigma,
                             const Schema& schema, const CandBOptions& options = {});

/// Bag-Set-C&B: all Σ-minimal Q′ with Q′ ≡Σ,BS Q (Thm K.1).
Result<CandBResult> BagSetCandB(const ConjunctiveQuery& q, const DependencySet& sigma,
                                const Schema& schema, const CandBOptions& options = {});

/// Original set-semantics C&B of [11] (Thm A.1).
Result<CandBResult> SetCandB(const ConjunctiveQuery& q, const DependencySet& sigma,
                             const CandBOptions& options = {});

}  // namespace sqleq

#endif  // SQLEQ_REFORMULATION_BAG_CANDB_H_
