#include "reformulation/minimize.h"

#include <functional>

#include "equivalence/containment.h"
#include "equivalence/engine.h"

namespace sqleq {

ConjunctiveQuery MinimizeSet(const ConjunctiveQuery& q) {
  ConjunctiveQuery current = q.CanonicalRepresentation();
  bool shrunk = true;
  while (shrunk && current.body().size() > 1) {
    shrunk = false;
    for (size_t i = 0; i < current.body().size(); ++i) {
      std::vector<Atom> smaller;
      for (size_t j = 0; j < current.body().size(); ++j) {
        if (j != i) smaller.push_back(current.body()[j]);
      }
      Result<ConjunctiveQuery> candidate =
          ConjunctiveQuery::Create(current.name(), current.head(), std::move(smaller));
      if (!candidate.ok()) continue;  // dropping atom i breaks safety
      if (SetEquivalent(*candidate, current)) {
        current = std::move(*candidate);
        shrunk = true;
        break;
      }
    }
  }
  return current;
}

Result<bool> IsSigmaMinimal(const ConjunctiveQuery& q, const DependencySet& sigma,
                            Semantics semantics, const Schema& schema,
                            const ChaseOptions& options, size_t max_candidates) {
  std::vector<Term> vars = q.BodyVariables();
  size_t tried = 0;

  // Enumerate substitutions: each variable maps to itself or to another
  // variable of Q. Depth-first with early exit once a witness is found.
  std::vector<TermMap> substitutions;
  TermMap current;
  std::function<Status(size_t)> enumerate = [&](size_t i) -> Status {
    if (tried >= max_candidates) {
      return Status::ResourceExhausted("Σ-minimality search space exceeds budget");
    }
    if (i == vars.size()) {
      ++tried;
      substitutions.push_back(current);
      return Status::OK();
    }
    // Identity for vars[i].
    SQLEQ_RETURN_IF_ERROR(enumerate(i + 1));
    for (Term w : vars) {
      if (w == vars[i]) continue;
      current[vars[i]] = w;
      SQLEQ_RETURN_IF_ERROR(enumerate(i + 1));
      current.erase(vars[i]);
    }
    return Status::OK();
  };
  SQLEQ_RETURN_IF_ERROR(enumerate(0));

  // One engine for the whole search: every candidate shares Q's chase
  // context, so the memo collapses isomorphic candidates to one chase. The
  // Σ-lint pre-flight is skipped — candidates are derived from an already
  // vetted Q and Σ.
  EquivalenceEngine engine;
  EquivRequest request{semantics, sigma, schema, options};
  // The engine budgets from the context; carry the caller's chase budget over.
  request.context.budget = options.budget;
  request.analyze.enabled = false;
  auto equivalent_to_q = [&](const ConjunctiveQuery& candidate) -> Result<bool> {
    SQLEQ_ASSIGN_OR_RETURN(EquivVerdict verdict,
                           engine.Equivalent(candidate, q, request));
    return VerdictToBool(verdict);
  };

  for (const TermMap& sub : substitutions) {
    ConjunctiveQuery s1 = q.Substitute(sub);
    SQLEQ_ASSIGN_OR_RETURN(bool s1_equivalent, equivalent_to_q(s1));
    if (!s1_equivalent) continue;
    // S2: drop nonempty subsets of atoms from S1. Subset enumeration is
    // bounded by the same budget.
    size_t n = s1.body().size();
    if (n >= 63) return Status::ResourceExhausted("query too large for subset search");
    for (uint64_t mask = 1; mask + 1 < (uint64_t(1) << n); ++mask) {
      if (++tried > max_candidates) {
        return Status::ResourceExhausted("Σ-minimality search space exceeds budget");
      }
      std::vector<Atom> kept;
      for (size_t j = 0; j < n; ++j) {
        if (!((mask >> j) & 1)) kept.push_back(s1.body()[j]);
      }
      if (kept.empty()) continue;
      Result<ConjunctiveQuery> s2 =
          ConjunctiveQuery::Create(s1.name(), s1.head(), std::move(kept));
      if (!s2.ok()) continue;  // unsafe drop
      SQLEQ_ASSIGN_OR_RETURN(bool s2_equivalent, equivalent_to_q(*s2));
      if (s2_equivalent) return false;  // witness: Q is not Σ-minimal
    }
  }
  return true;
}

}  // namespace sqleq
