#include "reformulation/backchase.h"

#include <algorithm>
#include <bit>
#include <unordered_set>

#include "chase/checkpoint.h"
#include "equivalence/isomorphism.h"
#include "util/fault.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace sqleq {
namespace {

/// Next mask with the same popcount (Gosper's hack); call only with m != 0.
uint64_t NextSamePopcount(uint64_t m) {
  uint64_t c = m & (~m + 1);
  uint64_t r = m + c;
  return (((r ^ m) >> 2) / c) | r;
}

/// Flushes the sweep's aggregate backchase.* counters on every exit path.
/// Deltas against the resume-carried base keep a resumed sweep from
/// re-counting the prior run's work; the sources are all maintained by the
/// serial merge, so the flushed totals are thread-count invariant.
struct SweepMetricsFlusher {
  MetricsRegistry* metrics = nullptr;
  const SweepStats* stats = nullptr;
  const std::vector<uint64_t>* accepted_masks = nullptr;
  const size_t* rejected = nullptr;
  const size_t* chase_failed = nullptr;
  SweepStats base;
  size_t base_accepted = 0;

  ~SweepMetricsFlusher() {
    if (metrics == nullptr) return;
    auto add = [&](const char* name, size_t delta) {
      if (delta > 0) metrics->counter(name).Add(delta);
    };
    add(metric::kBackchaseCandidates,
        stats->candidates_examined - base.candidates_examined);
    add(metric::kBackchaseAccepted, accepted_masks->size() - base_accepted);
    add(metric::kBackchaseRejected, *rejected);
    add("backchase.chase_failed", *chase_failed);
    add(metric::kBackchasePrunedDominance,
        stats->dominance_pruned - base.dominance_pruned);
    add(metric::kBackchasePrunedFailure,
        stats->failure_pruned - base.failure_pruned);
    add("backchase.cache_hits", stats->chase_cache_hits - base.chase_cache_hits);
    add("backchase.cache_misses",
        stats->chase_cache_misses - base.chase_cache_misses);
  }
};

Result<size_t> ParseSize(std::string_view s, const char* what) {
  size_t value = 0;
  if (s.empty()) {
    return Status::InvalidArgument(std::string("checkpoint: empty ") + what);
  }
  for (char c : s) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(std::string("checkpoint: bad ") + what +
                                     " '" + std::string(s) + "'");
    }
    value = value * 10 + static_cast<size_t>(c - '0');
  }
  return value;
}

}  // namespace

std::string BackchaseCheckpoint::Serialize() const {
  std::string out = "sqleq-backchase-checkpoint v1\n";
  out += "next " + std::to_string(cardinality) + " " +
         std::to_string(next_mask) + '\n';
  out += "consumed " + std::to_string(budget_consumed) + '\n';
  out += "stats " + std::to_string(stats.candidates_examined) + " " +
         std::to_string(stats.chase_cache_hits) + " " +
         std::to_string(stats.chase_cache_misses) + " " +
         std::to_string(stats.dominance_pruned) + " " +
         std::to_string(stats.failure_pruned) + '\n';
  for (uint64_t m : accepted_masks) out += "amask " + std::to_string(m) + '\n';
  for (uint64_t m : failed_masks) out += "fmask " + std::to_string(m) + '\n';
  for (const ConjunctiveQuery& q : accepted) {
    out += "accepted " + SerializeQuery(q) + '\n';
  }
  for (const std::string& k : seen_chase_keys) {
    out += "seenkey " + EscapeField(k) + '\n';
  }
  out += "end\n";
  return out;
}

Result<BackchaseCheckpoint> BackchaseCheckpoint::Deserialize(
    std::string_view text) {
  BackchaseCheckpoint cp;
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) nl = text.size();
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  if (lines.empty() || lines[0] != "sqleq-backchase-checkpoint v1") {
    return Status::InvalidArgument("checkpoint: bad backchase header");
  }
  bool saw_end = false;
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    if (line.empty()) continue;
    if (line == "end") {
      saw_end = true;
      break;
    }
    size_t space = line.find(' ');
    if (space == std::string_view::npos) {
      return Status::InvalidArgument("checkpoint: malformed backchase line");
    }
    std::string_view key = line.substr(0, space);
    std::string_view value = line.substr(space + 1);
    if (key == "next") {
      size_t mid = value.find(' ');
      if (mid == std::string_view::npos) {
        return Status::InvalidArgument("checkpoint: malformed next line");
      }
      SQLEQ_ASSIGN_OR_RETURN(cp.cardinality,
                             ParseSize(value.substr(0, mid), "cardinality"));
      SQLEQ_ASSIGN_OR_RETURN(size_t mask,
                             ParseSize(value.substr(mid + 1), "mask"));
      cp.next_mask = mask;
    } else if (key == "consumed") {
      SQLEQ_ASSIGN_OR_RETURN(cp.budget_consumed, ParseSize(value, "consumed"));
    } else if (key == "stats") {
      std::vector<size_t> nums;
      size_t pos = 0;
      while (pos <= value.size()) {
        size_t sp = value.find(' ', pos);
        if (sp == std::string_view::npos) sp = value.size();
        SQLEQ_ASSIGN_OR_RETURN(size_t v,
                               ParseSize(value.substr(pos, sp - pos), "stat"));
        nums.push_back(v);
        pos = sp + 1;
      }
      if (nums.size() != 5) {
        return Status::InvalidArgument("checkpoint: malformed stats line");
      }
      cp.stats.candidates_examined = nums[0];
      cp.stats.chase_cache_hits = nums[1];
      cp.stats.chase_cache_misses = nums[2];
      cp.stats.dominance_pruned = nums[3];
      cp.stats.failure_pruned = nums[4];
    } else if (key == "amask") {
      SQLEQ_ASSIGN_OR_RETURN(size_t m, ParseSize(value, "mask"));
      cp.accepted_masks.push_back(m);
    } else if (key == "fmask") {
      SQLEQ_ASSIGN_OR_RETURN(size_t m, ParseSize(value, "mask"));
      cp.failed_masks.push_back(m);
    } else if (key == "accepted") {
      SQLEQ_ASSIGN_OR_RETURN(ConjunctiveQuery q, DeserializeQuery(value));
      cp.accepted.push_back(std::move(q));
    } else if (key == "seenkey") {
      SQLEQ_ASSIGN_OR_RETURN(std::string k, UnescapeField(value));
      cp.seen_chase_keys.push_back(std::move(k));
    } else {
      return Status::InvalidArgument("checkpoint: unknown backchase key '" +
                                     std::string(key) + "'");
    }
  }
  if (!saw_end) return Status::InvalidArgument("checkpoint: truncated");
  return cp;
}

Result<SweepOutput> SweepBackchaseLattice(
    size_t n, const ResourceBudget& budget, const SweepOptions& options,
    const std::function<Result<CandidateVerdict>(uint64_t)>& evaluate) {
  SweepOutput out;
  if (n == 0) return out;

  std::vector<uint64_t> accepted_masks;
  std::vector<uint64_t> failed_masks;
  std::unordered_set<std::string> seen_keys(options.preseeded_chase_keys.begin(),
                                            options.preseeded_chase_keys.end());
  size_t budget_consumed = 0;
  size_t start_k = 1;
  uint64_t start_mask = 0;  // 0 = start of wave (real masks are never 0)
  if (options.resume != nullptr) {
    const BackchaseCheckpoint& cp = *options.resume;
    accepted_masks = cp.accepted_masks;
    failed_masks = cp.failed_masks;
    out.accepted = cp.accepted;
    out.stats = cp.stats;
    for (const std::string& k : cp.seen_chase_keys) seen_keys.insert(k);
    budget_consumed = cp.budget_consumed;
    start_mask = cp.next_mask;
    start_k = start_mask == 0
                  ? cp.cardinality
                  : static_cast<size_t>(std::popcount(start_mask));
    if (start_k == 0) start_k = 1;
    if (start_k > n) return out;  // checkpoint was taken past the last wave
  }
  const uint64_t limit = uint64_t(1) << n;

  TraceSpan sweep_span(options.trace, "backchase.sweep");
  // Merge-phase tallies for the registry (serial, hence thread-count
  // invariant), flushed as deltas on every exit path.
  size_t rejected_total = 0;
  size_t chase_failed_total = 0;
  SweepMetricsFlusher flusher;
  flusher.metrics = options.metrics;
  flusher.stats = &out.stats;
  flusher.accepted_masks = &accepted_masks;
  flusher.rejected = &rejected_total;
  flusher.chase_failed = &chase_failed_total;
  flusher.base = out.stats;
  flusher.base_accepted = accepted_masks.size();

  // Per-wave tallies for the backchase.level.<k>.* counters, committed at
  // the same points as the SweepStats they mirror.
  size_t current_k = start_k;
  size_t wave_merged = 0;
  size_t wave_accepted = 0;
  auto commit_level = [&](size_t cands, size_t pruned, size_t accepted) {
    if (options.metrics == nullptr) return;
    std::string prefix = "backchase.level." + std::to_string(current_k) + ".";
    if (cands > 0) options.metrics->counter(prefix + "candidates").Add(cands);
    if (pruned > 0) options.metrics->counter(prefix + "pruned").Add(pruned);
    if (accepted > 0) {
      options.metrics->counter(prefix + "accepted").Add(accepted);
    }
  };

  // Cuts the sweep at `cut_mask` (first unevaluated mask): commits the
  // pruning events strictly before the cut, packages the merged prefix as a
  // partial result, and captures the resume point. Everything merged so far
  // is in ascending mask order, so resume-and-finish reproduces the
  // uninterrupted sweep exactly.
  auto cut = [&](uint64_t cut_mask, const Status& status,
                 const std::vector<std::pair<uint64_t, int>>& wave_prunes) {
    size_t pruned_before_cut = 0;
    for (const auto& [mask, kind] : wave_prunes) {
      if (mask >= cut_mask) break;  // ascending enumeration order
      ++pruned_before_cut;
      if (kind == 0) {
        ++out.stats.dominance_pruned;
      } else {
        ++out.stats.failure_pruned;
      }
    }
    commit_level(wave_merged, pruned_before_cut, wave_accepted);
    out.complete = false;
    out.exhaustion = InferExhaustion(status, "backchase");
    BackchaseCheckpoint cp;
    cp.cardinality = static_cast<size_t>(std::popcount(cut_mask));
    cp.next_mask = cut_mask;
    cp.accepted_masks = accepted_masks;
    cp.failed_masks = failed_masks;
    cp.accepted = out.accepted;
    cp.stats = out.stats;
    cp.seen_chase_keys.assign(seen_keys.begin(), seen_keys.end());
    std::sort(cp.seen_chase_keys.begin(), cp.seen_chase_keys.end());
    cp.budget_consumed = budget_consumed;
    out.checkpoint = std::move(cp);
  };

  // Workers beyond the calling thread; the caller participates in every
  // wave, so `budget.threads` is the total concurrency.
  std::optional<ThreadPool> pool;
  if (budget.threads > 1) pool.emplace(budget.threads - 1, options.metrics);

  for (size_t k = start_k; k <= n; ++k) {
    current_k = k;
    wave_merged = 0;
    wave_accepted = 0;
    // ---- Enumerate this wave's non-pruned masks (serial, cheap). All
    // pruning facts come from strictly smaller masks, so they are complete
    // before the wave starts. Pruning-counter increments are buffered with
    // their mask and only committed for masks before a cut, keeping resumed
    // stats identical to an uninterrupted run's.
    std::vector<uint64_t> wave;
    std::vector<std::pair<uint64_t, int>> wave_prunes;  // (mask, 0=dom 1=fail)
    // On an anytime stop during enumeration: the stop mask, its status, and
    // whether the already-collected wave prefix may still be evaluated
    // (true for candidate-budget exhaustion; false for deadline/cancel,
    // where evaluating more candidates would defeat the point).
    std::optional<std::pair<uint64_t, Status>> stop;
    bool evaluate_collected = false;
    uint64_t first = (k == start_k && start_mask != 0) ? start_mask
                                                       : (uint64_t(1) << k) - 1;
    for (uint64_t m = first; m < limit; m = NextSamePopcount(m)) {
      Status guard = budget.CheckDeadline("backchase");
      if (guard.ok() && options.cancel != nullptr) {
        guard = options.cancel->Check("backchase");
      }
      if (!guard.ok()) {
        if (!IsAnytimeStop(guard)) return guard;
        stop = {m, std::move(guard)};
        evaluate_collected = false;
        break;
      }
      bool pruned = false;
      for (uint64_t am : accepted_masks) {
        if ((m & am) == am) {
          wave_prunes.emplace_back(m, 0);
          pruned = true;
          break;
        }
      }
      if (!pruned && options.enable_failure_prune) {
        for (uint64_t fm : failed_masks) {
          if ((m & fm) == fm) {
            wave_prunes.emplace_back(m, 1);
            pruned = true;
            break;
          }
        }
      }
      if (pruned) {
        if (m == limit - 1) break;  // full mask; Gosper would overflow past it
        continue;
      }
      if (budget_consumed + wave.size() >= budget.max_candidates) {
        stop = {m, Status::ResourceExhausted(
                       "backchase candidate budget exhausted "
                       "(ResourceBudget::max_candidates=" +
                       std::to_string(budget.max_candidates) + ")")};
        evaluate_collected = true;
        break;
      }
      wave.push_back(m);
      if (k == n) break;  // single full mask; Gosper would overflow past it
    }

    if (stop.has_value() && !evaluate_collected) {
      // Deadline/cancellation: do not start more evaluations. Cut at the
      // earliest unevaluated mask (the collected-but-unevaluated prefix, or
      // the stop mask itself).
      uint64_t cut_mask = wave.empty() ? stop->first : wave.front();
      cut(cut_mask, stop->second, wave_prunes);
      return out;
    }
    if (wave.empty()) {
      if (stop.has_value()) {
        cut(stop->first, stop->second, wave_prunes);
        return out;
      }
      for (const auto& [mask, kind] : wave_prunes) {
        (void)mask;
        if (kind == 0) {
          ++out.stats.dominance_pruned;
        } else {
          ++out.stats.failure_pruned;
        }
      }
      commit_level(0, wave_prunes.size(), 0);
      continue;
    }

    // ---- Evaluate the wave, possibly in parallel.
    std::vector<std::optional<Result<CandidateVerdict>>> results(wave.size());
    auto eval_one = [&](size_t i) {
      Status probe =
          ProbeSite(options.faults, options.cancel, fault_sites::kPoolTask);
      if (!probe.ok()) {
        results[i] = Result<CandidateVerdict>(std::move(probe));
        return;
      }
      results[i] = evaluate(wave[i]);
    };
    if (pool.has_value() && wave.size() > 1) {
      pool->ParallelFor(wave.size(), eval_one);
    } else {
      for (size_t i = 0; i < wave.size(); ++i) eval_one(i);
    }

    // ---- Merge in ascending mask order: acceptance bookkeeping, cache-hit
    // replay, and isomorphism dedup are all order-dependent, so this stays
    // serial and deterministic.
    for (size_t i = 0; i < wave.size(); ++i) {
      Result<CandidateVerdict>& r = *results[i];
      if (!r.ok()) {
        // First problem in mask order wins. Anytime stops (a chase budget
        // tripping inside a candidate, cancellation, injected exhaustion)
        // become a cut at this mask; real errors propagate.
        if (!IsAnytimeStop(r.status())) return r.status();
        cut(wave[i], r.status(), wave_prunes);
        return out;
      }
      ++budget_consumed;
      ++wave_merged;
      CandidateVerdict& verdict = *r;
      if (!verdict.chase_key.empty()) {
        if (seen_keys.insert(verdict.chase_key).second) {
          ++out.stats.chase_cache_misses;
        } else {
          ++out.stats.chase_cache_hits;
        }
      }
      switch (verdict.outcome) {
        case CandidateOutcome::kSkipped:
          break;
        case CandidateOutcome::kRejected:
          ++out.stats.candidates_examined;
          ++rejected_total;
          break;
        case CandidateOutcome::kChaseFailed:
          ++out.stats.candidates_examined;
          ++chase_failed_total;
          if (options.enable_failure_prune) failed_masks.push_back(wave[i]);
          break;
        case CandidateOutcome::kAccepted: {
          ++out.stats.candidates_examined;
          ++wave_accepted;
          accepted_masks.push_back(wave[i]);
          bool duplicate = false;
          for (const ConjunctiveQuery& prior : out.accepted) {
            if (AreIsomorphic(prior, *verdict.query)) {
              duplicate = true;
              break;
            }
          }
          if (!duplicate) out.accepted.push_back(std::move(*verdict.query));
          break;
        }
      }
    }

    if (stop.has_value()) {
      // Candidate budget: the collected prefix was evaluated and merged;
      // the stop mask is the first unevaluated one.
      cut(stop->first, stop->second, wave_prunes);
      return out;
    }
    for (const auto& [mask, kind] : wave_prunes) {
      (void)mask;
      if (kind == 0) {
        ++out.stats.dominance_pruned;
      } else {
        ++out.stats.failure_pruned;
      }
    }
    commit_level(wave_merged, wave_prunes.size(), wave_accepted);
  }
  return out;
}

}  // namespace sqleq
