#include "reformulation/backchase.h"

#include <unordered_set>

#include "equivalence/isomorphism.h"
#include "util/thread_pool.h"

namespace sqleq {
namespace {

/// Next mask with the same popcount (Gosper's hack); call only with m != 0.
uint64_t NextSamePopcount(uint64_t m) {
  uint64_t c = m & (~m + 1);
  uint64_t r = m + c;
  return (((r ^ m) >> 2) / c) | r;
}

}  // namespace

Result<SweepOutput> SweepBackchaseLattice(
    size_t n, const ResourceBudget& budget, bool enable_failure_prune,
    const std::vector<std::string>& preseeded_chase_keys,
    const std::function<Result<CandidateVerdict>(uint64_t)>& evaluate) {
  SweepOutput out;
  if (n == 0) return out;

  std::vector<uint64_t> accepted_masks;
  std::vector<uint64_t> failed_masks;
  std::unordered_set<std::string> seen_keys(preseeded_chase_keys.begin(),
                                            preseeded_chase_keys.end());
  size_t budget_left = budget.max_candidates;
  const uint64_t limit = uint64_t(1) << n;

  // Workers beyond the calling thread; the caller participates in every
  // wave, so `budget.threads` is the total concurrency.
  std::optional<ThreadPool> pool;
  if (budget.threads > 1) pool.emplace(budget.threads - 1);

  for (size_t k = 1; k <= n; ++k) {
    // ---- Enumerate this wave's non-pruned masks (serial, cheap). All
    // pruning facts come from strictly smaller masks, so they are complete
    // before the wave starts.
    std::vector<uint64_t> wave;
    for (uint64_t m = (uint64_t(1) << k) - 1; m < limit; m = NextSamePopcount(m)) {
      SQLEQ_RETURN_IF_ERROR(budget.CheckDeadline("backchase"));
      bool pruned = false;
      for (uint64_t am : accepted_masks) {
        if ((m & am) == am) {
          ++out.stats.dominance_pruned;
          pruned = true;
          break;
        }
      }
      if (!pruned && enable_failure_prune) {
        for (uint64_t fm : failed_masks) {
          if ((m & fm) == fm) {
            ++out.stats.failure_pruned;
            pruned = true;
            break;
          }
        }
      }
      if (pruned) continue;
      if (budget_left == 0) {
        return Status::ResourceExhausted(
            "backchase candidate budget exhausted (ResourceBudget::max_candidates=" +
            std::to_string(budget.max_candidates) + ")");
      }
      --budget_left;
      wave.push_back(m);
      if (k == n) break;  // single full mask; Gosper would overflow past it
    }
    if (wave.empty()) continue;

    // ---- Evaluate the wave, possibly in parallel.
    std::vector<std::optional<Result<CandidateVerdict>>> results(wave.size());
    auto eval_one = [&](size_t i) { results[i] = evaluate(wave[i]); };
    if (pool.has_value() && wave.size() > 1) {
      pool->ParallelFor(wave.size(), eval_one);
    } else {
      for (size_t i = 0; i < wave.size(); ++i) eval_one(i);
    }

    // ---- Merge in ascending mask order: acceptance bookkeeping, cache-hit
    // replay, and isomorphism dedup are all order-dependent, so this stays
    // serial and deterministic.
    for (size_t i = 0; i < wave.size(); ++i) {
      Result<CandidateVerdict>& r = *results[i];
      if (!r.ok()) return r.status();  // first error in mask order wins
      CandidateVerdict& verdict = *r;
      if (!verdict.chase_key.empty()) {
        if (seen_keys.insert(verdict.chase_key).second) {
          ++out.stats.chase_cache_misses;
        } else {
          ++out.stats.chase_cache_hits;
        }
      }
      switch (verdict.outcome) {
        case CandidateOutcome::kSkipped:
          break;
        case CandidateOutcome::kRejected:
          ++out.stats.candidates_examined;
          break;
        case CandidateOutcome::kChaseFailed:
          ++out.stats.candidates_examined;
          if (enable_failure_prune) failed_masks.push_back(wave[i]);
          break;
        case CandidateOutcome::kAccepted: {
          ++out.stats.candidates_examined;
          accepted_masks.push_back(wave[i]);
          bool duplicate = false;
          for (const ConjunctiveQuery& prior : out.accepted) {
            if (AreIsomorphic(prior, *verdict.query)) {
              duplicate = true;
              break;
            }
          }
          if (!duplicate) out.accepted.push_back(std::move(*verdict.query));
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace sqleq
