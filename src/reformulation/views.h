// Rewriting CQ queries equivalently using views, in presence of embedded
// dependencies, under set / bag / bag-set semantics — the application the
// paper's introduction motivates (§1, [17, 23]).
//
// A candidate rewriting R is a CQ over view predicates (and optionally base
// predicates). Its *expansion* replaces every view atom by the view's body
// with head variables unified and non-head variables freshened. R is an
// equivalent rewriting of Q iff expansion(R) ≡Σ,X Q — decidable with the
// paper's tests (Thms 2.2, 6.1, 6.2) whenever set chase terminates.
//
// Under bag semantics this is sound when materialized views are populated
// under bag semantics from the bag-valued base relations (and under bag-set
// semantics when views are populated without DISTINCT from set-valued bases)
// — CQ composition commutes with both semantics.
#ifndef SQLEQ_REFORMULATION_VIEWS_H_
#define SQLEQ_REFORMULATION_VIEWS_H_

#include <map>
#include <string>
#include <vector>

#include "reformulation/candb.h"

namespace sqleq {

/// A named set of CQ view definitions. The view's relation symbol is the
/// query name; its arity is the head arity.
class ViewSet {
 public:
  /// Registers a view. Fails on duplicate names and on names colliding with
  /// a base predicate used in any view body.
  Status Add(const ConjunctiveQuery& definition);

  bool Has(const std::string& name) const { return views_.count(name) > 0; }
  Result<ConjunctiveQuery> Get(const std::string& name) const;

  /// Names in registration order.
  const std::vector<std::string>& names() const { return order_; }
  size_t size() const { return views_.size(); }

  /// The view predicates as schema relations (arity = head arity), for
  /// building rewriting-side schemas. `set_valued` marks all views (use for
  /// views materialized WITH DISTINCT).
  Schema AsSchema(bool set_valued = false) const;

 private:
  std::map<std::string, ConjunctiveQuery> views_;
  std::vector<std::string> order_;
};

/// Replaces every view atom of `rewriting` by the view's (freshened) body;
/// non-view atoms pass through. Fails on arity mismatches against the view
/// head. The result's head is the rewriting's head.
Result<ConjunctiveQuery> ExpandRewriting(const ConjunctiveQuery& rewriting,
                                         const ViewSet& views);

/// Decides whether `rewriting` is an equivalent rewriting of `q` using
/// `views` under Σ and `semantics`: expansion(R) ≡Σ,X Q.
Result<bool> IsEquivalentRewriting(const ConjunctiveQuery& q,
                                   const ConjunctiveQuery& rewriting,
                                   const ViewSet& views, const DependencySet& sigma,
                                   Semantics semantics, const Schema& schema,
                                   const ChaseOptions& options = {});

struct RewriteResult {
  /// Equivalent rewritings over the view (and optionally base) predicates,
  /// pairwise non-isomorphic, subset-minimal in the candidate-atom lattice.
  /// On a partial result: the prefix confirmed before the stop.
  std::vector<ConjunctiveQuery> rewritings;
  /// The universal plan the candidates were drawn from. When the chase phase
  /// itself was interrupted (complete = false, checkpoint.phase == "chase")
  /// the plan does not exist yet and this echoes the input query.
  ConjunctiveQuery universal_plan;
  size_t candidates_examined = 0;
  /// Chase-memo accounting for the backchase phase, replayed
  /// deterministically in mask order (identical at every thread count). The
  /// up-front chase of U preseeds the memo, so an expansion isomorphic to U
  /// counts as a hit.
  size_t chase_cache_hits = 0;
  size_t chase_cache_misses = 0;
  /// Anytime contract, as in CandBResult: false when the call stopped early
  /// on budget/deadline/cancellation/fault; resume via options.resume.
  /// The candidate pool is rebuilt deterministically from the checkpointed
  /// universal plan, so mask-indexed checkpoint state stays valid.
  bool complete = true;
  std::optional<ExhaustionInfo> exhaustion;
  std::optional<CandBCheckpoint> checkpoint;
};

/// The C&B knobs (context/chase/analyze via RunOptions, Σ-minimality,
/// resume) apply to the rewrite's chases directly — RewriteOptions IS-A
/// CandBOptions; the old `candb` member wrapper is gone (drop the `.candb`
/// path segment; see equivalence/run_options.h for the mapping).
struct RewriteOptions : CandBOptions {
  /// Allow base-relation atoms to appear alongside view atoms in rewritings
  /// (false = total rewritings over views only).
  bool allow_base_atoms = false;
};

/// Enumerates equivalent rewritings of `q` using `views` under Σ and
/// `semantics`, C&B-with-views style [11]: chase Q to its universal plan U;
/// every homomorphism from a view body into U contributes a candidate view
/// atom over U's variables; backchase over subsets of candidate atoms (plus
/// U's base atoms when `allow_base_atoms`), accepting candidates whose
/// expansion chases to something equivalent to U.
Result<RewriteResult> RewriteWithViews(const ConjunctiveQuery& q, const ViewSet& views,
                                       const DependencySet& sigma, Semantics semantics,
                                       const Schema& schema,
                                       const RewriteOptions& options = {});

/// RewriteWithViews under an escalating-budget retry policy: attempt 0 runs
/// with options.context.budget; each incomplete attempt is resumed from its
/// own checkpoint under a budget scaled by `policy` until the result is
/// complete or policy.max_attempts is spent. The final (possibly still
/// partial) result is returned; errors propagate immediately.
Result<RewriteResult> RewriteWithViewsWithRetry(
    const ConjunctiveQuery& q, const ViewSet& views, const DependencySet& sigma,
    Semantics semantics, const Schema& schema, const RewriteOptions& options,
    const EscalatingBudget& policy);

}  // namespace sqleq

#endif  // SQLEQ_REFORMULATION_VIEWS_H_
