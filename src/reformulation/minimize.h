// CQ minimization and Σ-minimality (Definition 3.1).
#ifndef SQLEQ_REFORMULATION_MINIMIZE_H_
#define SQLEQ_REFORMULATION_MINIMIZE_H_

#include "chase/set_chase.h"
#include "constraints/dependency.h"
#include "db/eval.h"
#include "ir/query.h"
#include "ir/schema.h"
#include "util/status.h"

namespace sqleq {

/// Classical dependency-free CQ minimization under set semantics [2]:
/// repeatedly drop a body atom while the smaller query stays set-equivalent.
/// The result is the core of Q, unique up to isomorphism.
ConjunctiveQuery MinimizeSet(const ConjunctiveQuery& q);

/// Σ-minimality check (Def 3.1): Q is Σ-minimal under semantics X if there
/// is no pair (S1, S2) — S1 from replacing zero or more variables of Q by
/// other variables of Q, S2 from dropping at least one atom of S1 — with
/// both S1 ≡Σ,X Q and S2 ≡Σ,X Q.
///
/// The substitution/drop space is exponential; `max_candidates` bounds the
/// search and the function errs with ResourceExhausted when the bound does
/// not cover the space (never hit at the paper's example sizes).
Result<bool> IsSigmaMinimal(const ConjunctiveQuery& q, const DependencySet& sigma,
                            Semantics semantics, const Schema& schema,
                            const ChaseOptions& options = {},
                            size_t max_candidates = 200000);

}  // namespace sqleq

#endif  // SQLEQ_REFORMULATION_MINIMIZE_H_
