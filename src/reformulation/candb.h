// Chase & Backchase (Appendix A) generalized over evaluation semantics —
// the paper's §6.3 algorithms are exactly C&B with the sound chase and the
// semantics' equivalence test plugged in:
//   kSet    → C&B           (Thm A.1)
//   kBag    → Bag-C&B       (Thm 6.4)
//   kBagSet → Bag-Set-C&B   (Thm K.1)
//
// The backchase phase sweeps the 2^|body(U)| subquery lattice through the
// parallel memoized engine of backchase.h: candidates are chased through a
// shared canonical-form memo cache (chase/chase_cache.h) so isomorphic
// candidates never re-chase, supersets of accepted or chase-failed masks
// are pruned, and results are merged deterministically — serial and
// parallel runs return byte-identical CandBResults.
//
// Anytime contract (docs/robustness.md): budget exhaustion, deadline
// expiry, cancellation, and injected faults do not error. They return a
// partial CandBResult (complete = false) whose reformulations are the
// Σ-minimal candidates confirmed before the stop — a prefix-consistent
// subset of the unbudgeted output — plus a CandBCheckpoint from which a
// later call finishes the job exactly.
#ifndef SQLEQ_REFORMULATION_CANDB_H_
#define SQLEQ_REFORMULATION_CANDB_H_

#include <optional>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "chase/checkpoint.h"
#include "chase/set_chase.h"
#include "constraints/dependency.h"
#include "db/eval.h"
#include "equivalence/run_options.h"
#include "ir/query.h"
#include "ir/schema.h"
#include "reformulation/backchase.h"
#include "util/engine_context.h"
#include "util/resource_budget.h"
#include "util/status.h"

namespace sqleq {

class FaultInjector;
class CancellationToken;

/// Where an interrupted C&B call stopped and everything needed to finish it.
struct CandBCheckpoint {
  static constexpr const char* kChasePhase = "chase";
  static constexpr const char* kBackchasePhase = "backchase";

  /// kChasePhase: the universal-plan chase was interrupted (`chase` set).
  /// kBackchasePhase: the chase finished (`universal_plan` set) and the
  /// lattice sweep was interrupted (`backchase` set).
  std::string phase;
  std::optional<ChaseCheckpoint> chase;
  std::optional<ConjunctiveQuery> universal_plan;
  std::optional<BackchaseCheckpoint> backchase;

  std::string Serialize() const;
  static Result<CandBCheckpoint> Deserialize(std::string_view text);
};

/// The shared RunOptions base (equivalence/run_options.h) supplies the
/// per-call environment (`context` — max_candidates caps the backchase
/// lattice, max_chase_steps every chase, deadline the whole call, threads
/// the backchase worker pool), the chase strategy knobs (`chase`), and the
/// Σ-lint pre-flight (`analyze`).
struct CandBOptions : RunOptions {
  /// When true, outputs are additionally filtered through the Def 3.1
  /// Σ-minimality check (subset-minimality in the universal-plan lattice is
  /// the C&B guarantee; the extra check also covers variable-identification
  /// minimality). Costs extra chases.
  bool verify_sigma_minimality = false;
  /// Resume an interrupted call. Must be a checkpoint produced by a prior
  /// ChaseAndBackchase over the same (q, Σ, semantics, schema, chase knobs);
  /// the finished run's result is then byte-identical to an uninterrupted
  /// run's, at every thread count.
  const CandBCheckpoint* resume = nullptr;
};

struct CandBResult {
  /// The universal plan U = (Q)Σ,X. When the chase phase itself was
  /// interrupted (complete = false, checkpoint.phase == "chase") the plan
  /// does not exist yet and this echoes the input query.
  ConjunctiveQuery universal_plan;
  /// Σ-minimal reformulations Q′ with Q′ ≡Σ,X Q, pairwise non-isomorphic.
  /// On a partial result: the prefix confirmed before the stop.
  std::vector<ConjunctiveQuery> reformulations;
  /// Backchase candidates whose equivalence was tested.
  size_t candidates_examined = 0;
  /// Chase-memo accounting for the backchase phase, replayed
  /// deterministically in mask order (identical at every thread count).
  size_t chase_cache_hits = 0;
  size_t chase_cache_misses = 0;
  /// False when the call stopped early on an anytime condition; `exhaustion`
  /// says what tripped and `checkpoint` resumes the call.
  bool complete = true;
  std::optional<ExhaustionInfo> exhaustion;
  std::optional<CandBCheckpoint> checkpoint;
};

/// Runs chase & backchase for `q` under Σ and the given semantics. Sound
/// and complete whenever set chase terminates on the inputs (Thms A.1, 6.4,
/// K.1) — guarded by the chase step budget. With
/// options.context.budget.threads > 1
/// the backchase sweeps candidates on a worker pool; the result is
/// byte-identical to the serial sweep. Anytime stops (budget, deadline,
/// cancellation, injected faults) return partial results, not errors — see
/// the header comment.
Result<CandBResult> ChaseAndBackchase(const ConjunctiveQuery& q,
                                      const DependencySet& sigma, Semantics semantics,
                                      const Schema& schema,
                                      const CandBOptions& options = {});

/// ChaseAndBackchase under an escalating-budget retry policy: attempt 0 runs
/// with options.context.budget; each incomplete attempt is resumed (from its own
/// checkpoint) under a budget scaled by `policy` until the result is
/// complete or policy.max_attempts is spent. The final (possibly still
/// partial) result is returned; errors propagate immediately.
Result<CandBResult> ChaseAndBackchaseWithRetry(
    const ConjunctiveQuery& q, const DependencySet& sigma, Semantics semantics,
    const Schema& schema, const CandBOptions& options,
    const EscalatingBudget& policy);

}  // namespace sqleq

#endif  // SQLEQ_REFORMULATION_CANDB_H_
