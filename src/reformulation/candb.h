// Chase & Backchase (Appendix A) generalized over evaluation semantics —
// the paper's §6.3 algorithms are exactly C&B with the sound chase and the
// semantics' equivalence test plugged in:
//   kSet    → C&B           (Thm A.1)
//   kBag    → Bag-C&B       (Thm 6.4)
//   kBagSet → Bag-Set-C&B   (Thm K.1)
#ifndef SQLEQ_REFORMULATION_CANDB_H_
#define SQLEQ_REFORMULATION_CANDB_H_

#include <vector>

#include "chase/set_chase.h"
#include "constraints/dependency.h"
#include "db/eval.h"
#include "ir/query.h"
#include "ir/schema.h"
#include "util/status.h"

namespace sqleq {

struct CandBOptions {
  ChaseOptions chase;
  /// Cap on backchase candidates (the subquery lattice is 2^|body(U)|).
  size_t max_candidates = 1u << 20;
  /// When true, outputs are additionally filtered through the Def 3.1
  /// Σ-minimality check (subset-minimality in the universal-plan lattice is
  /// the C&B guarantee; the extra check also covers variable-identification
  /// minimality). Costs extra chases.
  bool verify_sigma_minimality = false;
};

struct CandBResult {
  /// The universal plan U = (Q)Σ,X.
  ConjunctiveQuery universal_plan;
  /// Σ-minimal reformulations Q′ with Q′ ≡Σ,X Q, pairwise non-isomorphic.
  std::vector<ConjunctiveQuery> reformulations;
  /// Backchase candidates whose equivalence was tested.
  size_t candidates_examined = 0;
};

/// Runs chase & backchase for `q` under Σ and the given semantics. Sound
/// and complete whenever set chase terminates on the inputs (Thms A.1, 6.4,
/// K.1) — guarded by the chase step budget.
Result<CandBResult> ChaseAndBackchase(const ConjunctiveQuery& q,
                                      const DependencySet& sigma, Semantics semantics,
                                      const Schema& schema,
                                      const CandBOptions& options = {});

}  // namespace sqleq

#endif  // SQLEQ_REFORMULATION_CANDB_H_
