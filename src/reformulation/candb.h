// Chase & Backchase (Appendix A) generalized over evaluation semantics —
// the paper's §6.3 algorithms are exactly C&B with the sound chase and the
// semantics' equivalence test plugged in:
//   kSet    → C&B           (Thm A.1)
//   kBag    → Bag-C&B       (Thm 6.4)
//   kBagSet → Bag-Set-C&B   (Thm K.1)
//
// The backchase phase sweeps the 2^|body(U)| subquery lattice through the
// parallel memoized engine of backchase.h: candidates are chased through a
// shared canonical-form memo cache (chase/chase_cache.h) so isomorphic
// candidates never re-chase, supersets of accepted or chase-failed masks
// are pruned, and results are merged deterministically — serial and
// parallel runs return byte-identical CandBResults.
#ifndef SQLEQ_REFORMULATION_CANDB_H_
#define SQLEQ_REFORMULATION_CANDB_H_

#include <vector>

#include "analysis/analyzer.h"
#include "chase/set_chase.h"
#include "constraints/dependency.h"
#include "db/eval.h"
#include "ir/query.h"
#include "ir/schema.h"
#include "util/resource_budget.h"
#include "util/status.h"

namespace sqleq {

struct CandBOptions {
  /// Chase strategy knobs (egds_first, key_based_fast_path). The embedded
  /// chase.budget is overridden by `budget` below for the chases C&B runs,
  /// so there is a single budget knob per call.
  ChaseOptions chase;
  /// The C&B resource budget: max_candidates caps the backchase lattice,
  /// max_chase_steps every chase, deadline the whole call, and threads the
  /// backchase worker pool.
  ResourceBudget budget;
  /// When true, outputs are additionally filtered through the Def 3.1
  /// Σ-minimality check (subset-minimality in the universal-plan lattice is
  /// the C&B guarantee; the extra check also covers variable-identification
  /// minimality). Costs extra chases.
  bool verify_sigma_minimality = false;
  /// Σ-lint pre-flight over (schema, Σ, Q) before the chase phase; kError
  /// findings become FailedPrecondition instead of a budget blowout. See
  /// EquivRequest::analyze.
  AnalyzeOptions analyze = AnalyzeOptions::Preflight();
};

struct CandBResult {
  /// The universal plan U = (Q)Σ,X.
  ConjunctiveQuery universal_plan;
  /// Σ-minimal reformulations Q′ with Q′ ≡Σ,X Q, pairwise non-isomorphic.
  std::vector<ConjunctiveQuery> reformulations;
  /// Backchase candidates whose equivalence was tested.
  size_t candidates_examined = 0;
  /// Chase-memo accounting for the backchase phase, replayed
  /// deterministically in mask order (identical at every thread count).
  size_t chase_cache_hits = 0;
  size_t chase_cache_misses = 0;
};

/// Runs chase & backchase for `q` under Σ and the given semantics. Sound
/// and complete whenever set chase terminates on the inputs (Thms A.1, 6.4,
/// K.1) — guarded by the chase step budget. With options.budget.threads > 1
/// the backchase sweeps candidates on a worker pool; the result is
/// byte-identical to the serial sweep.
Result<CandBResult> ChaseAndBackchase(const ConjunctiveQuery& q,
                                      const DependencySet& sigma, Semantics semantics,
                                      const Schema& schema,
                                      const CandBOptions& options = {});

}  // namespace sqleq

#endif  // SQLEQ_REFORMULATION_CANDB_H_
