#include "reformulation/candb.h"

#include <algorithm>

#include "chase/sound_chase.h"
#include "equivalence/bag_equivalence.h"
#include "equivalence/bag_set_equivalence.h"
#include "equivalence/containment.h"
#include "equivalence/isomorphism.h"
#include "reformulation/minimize.h"

namespace sqleq {
namespace {

/// Subsets of {0..n-1} in increasing-cardinality order (then numeric), so
/// the backchase meets minimal candidates first.
std::vector<uint64_t> SubsetMasksBySize(size_t n) {
  std::vector<uint64_t> masks;
  masks.reserve((uint64_t(1) << n) - 1);
  for (uint64_t m = 1; m < (uint64_t(1) << n); ++m) masks.push_back(m);
  std::stable_sort(masks.begin(), masks.end(), [](uint64_t a, uint64_t b) {
    int pa = __builtin_popcountll(a);
    int pb = __builtin_popcountll(b);
    return pa != pb ? pa < pb : a < b;
  });
  return masks;
}

}  // namespace

Result<CandBResult> ChaseAndBackchase(const ConjunctiveQuery& q,
                                      const DependencySet& sigma, Semantics semantics,
                                      const Schema& schema, const CandBOptions& options) {
  // ---- Chase phase: universal plan U = (Q)Σ,X. ----
  SQLEQ_ASSIGN_OR_RETURN(ChaseOutcome chased,
                         SoundChase(q, sigma, semantics, schema, options.chase));
  if (chased.failed) {
    return Status::FailedPrecondition(
        "chase failed: Q is unsatisfiable on every instance of Σ");
  }
  CandBResult out{chased.result, {}, 0};
  const ConjunctiveQuery& u = out.universal_plan;

  size_t n = u.body().size();
  if (n >= 63) {
    return Status::ResourceExhausted("universal plan too large for backchase (" +
                                     std::to_string(n) + " atoms)");
  }

  // ---- Backchase phase: subqueries of U, smallest first. ----
  std::vector<uint64_t> accepted_masks;
  std::vector<ConjunctiveQuery> accepted;
  std::vector<uint64_t> masks = SubsetMasksBySize(n);
  size_t candidate_budget = options.max_candidates;
  for (uint64_t mask : masks) {
    // Keep only Σ-minimal outputs: any superset of an accepted candidate
    // chases to the same universal plan and is dominated.
    bool dominated = false;
    for (uint64_t am : accepted_masks) {
      if ((mask & am) == am) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    if (candidate_budget == 0) {
      return Status::ResourceExhausted("backchase candidate budget exhausted");
    }
    --candidate_budget;

    std::vector<Atom> body;
    for (size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) body.push_back(u.body()[i]);
    }
    Result<ConjunctiveQuery> candidate =
        ConjunctiveQuery::Create(q.name(), u.head(), std::move(body));
    if (!candidate.ok()) continue;  // unsafe subquery — skip silently
    ++out.candidates_examined;

    SQLEQ_ASSIGN_OR_RETURN(
        ChaseOutcome cand_chased,
        SoundChase(*candidate, sigma, semantics, schema, options.chase));
    if (cand_chased.failed) continue;

    bool equivalent = false;
    switch (semantics) {
      case Semantics::kSet:
        equivalent = SetEquivalent(cand_chased.result, u);
        break;
      case Semantics::kBag:
        equivalent = BagEquivalentModuloSetRelations(cand_chased.result, u, schema);
        break;
      case Semantics::kBagSet:
        equivalent = BagSetEquivalent(cand_chased.result, u);
        break;
    }
    if (!equivalent) continue;

    if (options.verify_sigma_minimality) {
      SQLEQ_ASSIGN_OR_RETURN(
          bool minimal,
          IsSigmaMinimal(*candidate, sigma, semantics, schema, options.chase));
      if (!minimal) continue;
    }

    // De-duplicate isomorphic outputs.
    bool duplicate = false;
    for (const ConjunctiveQuery& seen : accepted) {
      if (AreIsomorphic(seen, *candidate)) {
        duplicate = true;
        break;
      }
    }
    accepted_masks.push_back(mask);
    if (!duplicate) accepted.push_back(std::move(*candidate));
  }
  out.reformulations = std::move(accepted);
  return out;
}

}  // namespace sqleq
