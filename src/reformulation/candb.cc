#include "reformulation/candb.h"

#include <string>

#include "chase/chase_cache.h"
#include "chase/sound_chase.h"
#include "equivalence/engine.h"
#include "reformulation/backchase.h"
#include "reformulation/minimize.h"

namespace sqleq {

Result<CandBResult> ChaseAndBackchase(const ConjunctiveQuery& q,
                                      const DependencySet& sigma, Semantics semantics,
                                      const Schema& schema, const CandBOptions& options) {
  if (options.analyze.enabled) {
    SQLEQ_RETURN_IF_ERROR(
        ReportToStatus(AnalyzeProgram(schema, sigma, {q}, options.analyze)));
  }
  // One budget governs the whole call: fold it into the chase options every
  // chase below runs with.
  ChaseOptions chase_options = options.chase;
  chase_options.budget = options.budget;

  // ---- Chase phase: universal plan U = (Q)Σ,X. ----
  SQLEQ_ASSIGN_OR_RETURN(ChaseOutcome chased,
                         SoundChase(q, sigma, semantics, schema, chase_options));
  if (chased.failed) {
    return Status::FailedPrecondition(
        "chase failed: Q is unsatisfiable on every instance of Σ");
  }
  CandBResult out{chased.result, {}, 0, 0, 0};
  const ConjunctiveQuery& u = out.universal_plan;

  size_t n = u.body().size();
  if (n >= 63) {
    return Status::ResourceExhausted("universal plan too large for backchase (" +
                                     std::to_string(n) + " atoms)");
  }

  // ---- Backchase phase: subqueries of U, smallest first, chased through a
  // shared memo so isomorphic candidates cost one chase. ----
  ChaseMemo memo(sigma, semantics, schema, chase_options);
  auto evaluate = [&](uint64_t mask) -> Result<CandidateVerdict> {
    std::vector<Atom> body;
    for (size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) body.push_back(u.body()[i]);
    }
    Result<ConjunctiveQuery> candidate =
        ConjunctiveQuery::Create(q.name(), u.head(), std::move(body));
    if (!candidate.ok()) return CandidateVerdict{};  // unsafe subquery — skip

    CandidateVerdict verdict;
    SQLEQ_ASSIGN_OR_RETURN(std::shared_ptr<const ChaseOutcome> cand_chased,
                           memo.ChaseCanonical(*candidate, &verdict.chase_key));
    if (cand_chased->failed) {
      verdict.outcome = CandidateOutcome::kChaseFailed;
      return verdict;
    }

    // The cached chase is in canonical variable space; ChasedEquivalent is
    // isomorphism-invariant, so no remapping is needed.
    bool equivalent = ChasedEquivalent(cand_chased->result, u, semantics, schema);
    if (equivalent && options.verify_sigma_minimality) {
      SQLEQ_ASSIGN_OR_RETURN(
          bool minimal,
          IsSigmaMinimal(*candidate, sigma, semantics, schema, chase_options));
      equivalent = minimal;
    }
    if (equivalent) {
      verdict.outcome = CandidateOutcome::kAccepted;
      verdict.query = std::move(*candidate);
    } else {
      verdict.outcome = CandidateOutcome::kRejected;
    }
    return verdict;
  };

  // Failure pruning is sound only under set semantics: there, chase failure
  // witnesses unsatisfiability, which is monotone in the body (restricting a
  // homomorphism into a model is a homomorphism). Under B/BS the sound chase
  // fixes assignments per query, so no such monotonicity holds.
  bool failure_prune = semantics == Semantics::kSet;
  SQLEQ_ASSIGN_OR_RETURN(
      SweepOutput swept,
      SweepBackchaseLattice(n, options.budget, failure_prune, {}, evaluate));
  out.reformulations = std::move(swept.accepted);
  out.candidates_examined = swept.stats.candidates_examined;
  out.chase_cache_hits = swept.stats.chase_cache_hits;
  out.chase_cache_misses = swept.stats.chase_cache_misses;
  return out;
}

}  // namespace sqleq
