#include "reformulation/candb.h"

#include <string>
#include <utility>

#include "chase/chase_cache.h"
#include "chase/chase_plan.h"
#include "chase/sound_chase.h"
#include "equivalence/engine.h"
#include "reformulation/minimize.h"
#include "util/fault.h"

namespace sqleq {

std::string CandBCheckpoint::Serialize() const {
  std::string out = "sqleq-candb-checkpoint v1\n";
  out += "phase " + phase + '\n';
  if (chase.has_value()) {
    out += "chase-begin\n";
    out += chase->Serialize();
    out += "chase-end\n";
  }
  if (universal_plan.has_value()) {
    out += "plan " + SerializeQuery(*universal_plan) + '\n';
  }
  if (backchase.has_value()) {
    out += "backchase-begin\n";
    out += backchase->Serialize();
    out += "backchase-end\n";
  }
  out += "end\n";
  return out;
}

Result<CandBCheckpoint> CandBCheckpoint::Deserialize(std::string_view text) {
  CandBCheckpoint cp;
  size_t pos = 0;
  auto next_line = [&]() -> std::optional<std::string_view> {
    if (pos >= text.size()) return std::nullopt;
    size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    return line;
  };
  auto collect_until = [&](std::string_view sentinel) -> Result<std::string> {
    std::string block;
    while (true) {
      std::optional<std::string_view> line = next_line();
      if (!line.has_value()) {
        return Status::InvalidArgument("checkpoint: missing " +
                                       std::string(sentinel));
      }
      if (*line == sentinel) return block;
      block += std::string(*line);
      block += '\n';
    }
  };
  std::optional<std::string_view> header = next_line();
  if (!header.has_value() || *header != "sqleq-candb-checkpoint v1") {
    return Status::InvalidArgument("checkpoint: bad candb header");
  }
  bool saw_end = false;
  while (true) {
    std::optional<std::string_view> line = next_line();
    if (!line.has_value()) break;
    if (line->empty()) continue;
    if (*line == "end") {
      saw_end = true;
      break;
    }
    if (line->rfind("phase ", 0) == 0) {
      cp.phase = std::string(line->substr(6));
    } else if (*line == "chase-begin") {
      SQLEQ_ASSIGN_OR_RETURN(std::string block, collect_until("chase-end"));
      SQLEQ_ASSIGN_OR_RETURN(ChaseCheckpoint inner,
                             ChaseCheckpoint::Deserialize(block));
      cp.chase = std::move(inner);
    } else if (line->rfind("plan ", 0) == 0) {
      SQLEQ_ASSIGN_OR_RETURN(ConjunctiveQuery plan,
                             DeserializeQuery(line->substr(5)));
      cp.universal_plan = std::move(plan);
    } else if (*line == "backchase-begin") {
      SQLEQ_ASSIGN_OR_RETURN(std::string block, collect_until("backchase-end"));
      SQLEQ_ASSIGN_OR_RETURN(BackchaseCheckpoint inner,
                             BackchaseCheckpoint::Deserialize(block));
      cp.backchase = std::move(inner);
    } else {
      return Status::InvalidArgument("checkpoint: unknown candb line");
    }
  }
  if (!saw_end) return Status::InvalidArgument("checkpoint: truncated");
  if (cp.phase != kChasePhase && cp.phase != kBackchasePhase) {
    return Status::InvalidArgument("checkpoint: unknown candb phase '" +
                                   cp.phase + "'");
  }
  return cp;
}

Result<CandBResult> ChaseAndBackchase(const ConjunctiveQuery& q,
                                      const DependencySet& sigma, Semantics semantics,
                                      const Schema& schema, const CandBOptions& options) {
  const EngineContext& ctx = options.context;
  TraceSpan candb_span(ctx.trace, "candb");
  if (options.analyze.enabled) {
    AnalyzeOptions analyze = options.analyze;
    if (analyze.budget == ResourceBudget{}) analyze.budget = ctx.budget;
    SQLEQ_RETURN_IF_ERROR(
        ReportToStatus(AnalyzeProgram(schema, sigma, {q}, analyze)));
  }
  // One budget governs the whole call: fold it into the chase options every
  // chase below runs with.
  ChaseOptions chase_options = options.chase;
  chase_options.budget = ctx.budget;

  // One compiled plan serves the whole call: the universal-plan chase and
  // every backchase candidate (through the memo) share its Σ kernels.
  auto chase_plan = std::make_shared<const ChasePlan>(sigma, semantics, schema,
                                                      chase_options);

  const CandBCheckpoint* resume = options.resume;
  const bool resume_backchase =
      resume != nullptr && resume->phase == CandBCheckpoint::kBackchasePhase &&
      resume->universal_plan.has_value() && resume->backchase.has_value();

  // ---- Chase phase: universal plan U = (Q)Σ,X. ----
  std::optional<ConjunctiveQuery> plan;
  if (resume_backchase) {
    plan = *resume->universal_plan;
  } else {
    ChaseRuntime chase_runtime;
    chase_runtime.faults = ctx.faults;
    chase_runtime.cancel = ctx.cancel;
    chase_runtime.metrics = ctx.metrics;
    chase_runtime.trace = ctx.trace;
    if (resume != nullptr && resume->phase == CandBCheckpoint::kChasePhase &&
        resume->chase.has_value()) {
      chase_runtime.resume = &*resume->chase;
    }
    std::optional<ChaseCheckpoint> chase_checkpoint;
    chase_runtime.checkpoint_out = &chase_checkpoint;
    Result<ChaseOutcome> chased = chase_plan->Run(q, chase_runtime);
    if (!chased.ok()) {
      if (!IsAnytimeStop(chased.status())) return chased.status();
      // The plan does not exist yet: no reformulation can be confirmed.
      // Package what the chase got through as a resumable partial result.
      CandBResult out{q, {}, 0, 0, 0, true, std::nullopt, std::nullopt};
      out.complete = false;
      out.exhaustion = InferExhaustion(chased.status(), "chase");
      CandBCheckpoint cp;
      cp.phase = CandBCheckpoint::kChasePhase;
      cp.chase = std::move(chase_checkpoint);
      out.checkpoint = std::move(cp);
      return out;
    }
    if (chased->failed) {
      return Status::FailedPrecondition(
          "chase failed: Q is unsatisfiable on every instance of Σ");
    }
    plan = std::move(chased->result);
  }
  CandBResult out{*plan, {}, 0, 0, 0, true, std::nullopt, std::nullopt};
  const ConjunctiveQuery& u = out.universal_plan;

  size_t n = u.body().size();
  if (n >= 63) {
    return Status::ResourceExhausted("universal plan too large for backchase (" +
                                     std::to_string(n) + " atoms)");
  }

  // ---- Backchase phase: subqueries of U, smallest first, chased through a
  // shared memo so isomorphic candidates cost one chase. Every candidate is
  // a sub-conjunction of U, so U's Σ-slice is sound for all of them — pin
  // it once instead of slicing 2^n candidate shapes.
  ChaseMemo memo(chase_plan);
  memo.PinEnvelope(u);
  ChaseRuntime memo_runtime;
  memo_runtime.faults = ctx.faults;
  memo_runtime.cancel = ctx.cancel;
  memo_runtime.metrics = ctx.metrics;
  memo_runtime.trace = ctx.trace;
  auto evaluate = [&](uint64_t mask) -> Result<CandidateVerdict> {
    SQLEQ_RETURN_IF_ERROR(
        ProbeSite(ctx.faults, ctx.cancel, fault_sites::kBackchaseCandidate));
    std::vector<Atom> body;
    for (size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) body.push_back(u.body()[i]);
    }
    Result<ConjunctiveQuery> candidate =
        ConjunctiveQuery::Create(q.name(), u.head(), std::move(body));
    if (!candidate.ok()) return CandidateVerdict{};  // unsafe subquery — skip

    CandidateVerdict verdict;
    SQLEQ_ASSIGN_OR_RETURN(
        std::shared_ptr<const ChaseOutcome> cand_chased,
        memo.ChaseCanonical(*candidate, &verdict.chase_key, memo_runtime));
    if (cand_chased->failed) {
      verdict.outcome = CandidateOutcome::kChaseFailed;
      return verdict;
    }

    // The cached chase is in canonical variable space; ChasedEquivalent is
    // isomorphism-invariant, so no remapping is needed.
    bool equivalent = ChasedEquivalent(cand_chased->result, u, semantics, schema);
    if (equivalent && options.verify_sigma_minimality) {
      SQLEQ_ASSIGN_OR_RETURN(
          bool minimal,
          IsSigmaMinimal(*candidate, sigma, semantics, schema, chase_options));
      equivalent = minimal;
    }
    if (equivalent) {
      verdict.outcome = CandidateOutcome::kAccepted;
      verdict.query = std::move(*candidate);
    } else {
      verdict.outcome = CandidateOutcome::kRejected;
    }
    return verdict;
  };

  // Failure pruning is sound only under set semantics: there, chase failure
  // witnesses unsatisfiability, which is monotone in the body (restricting a
  // homomorphism into a model is a homomorphism). Under B/BS the sound chase
  // fixes assignments per query, so no such monotonicity holds.
  SweepOptions sweep_options;
  sweep_options.enable_failure_prune = semantics == Semantics::kSet;
  sweep_options.faults = ctx.faults;
  sweep_options.cancel = ctx.cancel;
  sweep_options.metrics = ctx.metrics;
  sweep_options.trace = ctx.trace;
  if (resume_backchase) sweep_options.resume = &*resume->backchase;
  SQLEQ_ASSIGN_OR_RETURN(
      SweepOutput swept,
      SweepBackchaseLattice(n, ctx.budget, sweep_options, evaluate));
  out.reformulations = std::move(swept.accepted);
  out.candidates_examined = swept.stats.candidates_examined;
  out.chase_cache_hits = swept.stats.chase_cache_hits;
  out.chase_cache_misses = swept.stats.chase_cache_misses;
  if (!swept.complete) {
    out.complete = false;
    out.exhaustion = std::move(swept.exhaustion);
    CandBCheckpoint cp;
    cp.phase = CandBCheckpoint::kBackchasePhase;
    cp.universal_plan = u;
    cp.backchase = std::move(swept.checkpoint);
    out.checkpoint = std::move(cp);
  }
  return out;
}

Result<CandBResult> ChaseAndBackchaseWithRetry(
    const ConjunctiveQuery& q, const DependencySet& sigma, Semantics semantics,
    const Schema& schema, const CandBOptions& options,
    const EscalatingBudget& policy) {
  const size_t attempts = policy.max_attempts == 0 ? 1 : policy.max_attempts;
  const ResourceBudget base_budget = options.context.budget;
  CandBOptions attempt_options = options;
  std::optional<CandBCheckpoint> carried;
  Result<CandBResult> result =
      Status::Internal("retry loop did not run");  // overwritten below
  for (size_t attempt = 0; attempt < attempts; ++attempt) {
    attempt_options.context.budget = policy.Escalate(base_budget, attempt);
    attempt_options.resume =
        carried.has_value() ? &*carried : options.resume;
    result = ChaseAndBackchase(q, sigma, semantics, schema, attempt_options);
    if (!result.ok() || result->complete || !result->checkpoint.has_value()) {
      return result;
    }
    carried = *result->checkpoint;
  }
  return result;
}

}  // namespace sqleq
