// A small cardinality-based cost model for ranking the Σ-minimal
// reformulations produced by the C&B family — the "quality metric on the
// rewritings being generated" the paper's introduction appeals to.
//
// The estimate is the textbook System-R style independence model: scan the
// body left to right in a most-bound-first order, charging each atom its
// base cardinality divided by the selectivity of already-bound join
// positions. Deliberately simple; it only has to ORDER reformulations.
#ifndef SQLEQ_REFORMULATION_COST_H_
#define SQLEQ_REFORMULATION_COST_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ir/query.h"
#include "util/status.h"

namespace sqleq {

/// Per-relation statistics.
struct RelationStats {
  double rows = 1000.0;
  /// Distinct values per attribute position; defaults to sqrt(rows) when a
  /// position is absent.
  std::map<size_t, double> distinct;
};

/// Statistics for a schema; relations without an entry use `default_rows`.
class CostModel {
 public:
  CostModel& SetRows(const std::string& relation, double rows);
  CostModel& SetDistinct(const std::string& relation, size_t position, double n);
  CostModel& SetDefaultRows(double rows);

  double RowsOf(const std::string& relation) const;
  double DistinctOf(const std::string& relation, size_t position) const;

 private:
  std::map<std::string, RelationStats> stats_;
  double default_rows_ = 1000.0;
};

/// Cost breakdown for one query.
struct CostEstimate {
  /// Estimated total intermediate tuples produced by a greedy most-bound-
  /// first join order (the cost used for ranking).
  double intermediate_tuples = 0.0;
  /// Estimated output cardinality.
  double output_rows = 0.0;
  size_t atoms = 0;
};

/// Estimates the cost of evaluating `q` under the independence model.
CostEstimate EstimateCost(const ConjunctiveQuery& q, const CostModel& model);

/// Index of the cheapest query in `candidates` (ties broken by fewer atoms,
/// then input order). nullopt if empty.
std::optional<size_t> PickCheapest(const std::vector<ConjunctiveQuery>& candidates,
                                   const CostModel& model);

}  // namespace sqleq

#endif  // SQLEQ_REFORMULATION_COST_H_
