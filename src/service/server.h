// sqleqd — the long-running equivalence service (docs/service.md). One
// process owns a process-lifetime EquivalenceEngine whose chase memo is
// shared across every connection (bounded by bytes, LRU-evicted), a worker
// pool that executes the expensive requests (check / reformulate / lint),
// and an admission controller that sheds load with a structured
// `overloaded` response once the in-flight limit is reached.
//
// Lifecycle: Start() binds the port and spawns the accept loop; every
// accepted connection gets a thread running the line-oriented protocol over
// a per-connection Session. RequestDrain() (the SIGTERM path) stops
// accepting, cancels in-flight engine calls through the shared
// CancellationToken — anytime C&B runs then checkpoint and return partial
// results carrying the serialized CandBCheckpoint — shuts the read side of
// every connection so idle readers see EOF, and lets Wait() join
// everything. Fault sites service.accept / service.parse /
// service.dispatch make connection drops and request failures
// deterministically reproducible (tests/service_test.cc).
#ifndef SQLEQ_SERVICE_SERVER_H_
#define SQLEQ_SERVICE_SERVER_H_

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "chase/memo_store.h"
#include "equivalence/engine.h"
#include "service/connection.h"
#include "service/protocol.h"
#include "service/routing.h"
#include "service/session.h"
#include "util/engine_context.h"
#include "util/fault.h"
#include "util/resource_budget.h"
#include "util/socket.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace sqleq {
namespace service {

struct ServerOptions {
  /// TCP port; 0 binds an ephemeral port (read it back via Server::port()).
  int port = 0;
  /// Workers executing check/reformulate/lint requests.
  size_t worker_threads = 2;
  /// Admission cap: expensive requests beyond this many queued-or-running
  /// are shed with OverloadedResponse. Cheap requests (hello, ddl, dep,
  /// relation, stats) always pass.
  size_t max_inflight = 4;
  /// Byte bound on each shared chase memo context (0 = unbounded). A
  /// process-lifetime server should set this; see ChaseMemo.
  size_t memo_byte_limit = 64u << 20;
  /// Per-request resource caps. Requests may lower (never raise) the step,
  /// candidate, and thread limits, and may set their own deadline_ms.
  ResourceBudget default_budget;
  /// Deterministic fault injection for the service.* sites and, threaded
  /// through EngineContext, the engine sites. Borrowed; may be null.
  FaultInjector* faults = nullptr;
  /// Tier-2 durable memo (--memo-dir): when non-empty, Start() opens a
  /// MemoStore here and attaches it to the engine, so warm chase verdicts
  /// survive crashes and restarts. Empty disables the tier.
  std::string memo_dir;
  /// On-disk budget for the tier-2 store (--memo-disk-bytes).
  size_t memo_disk_bytes = 256u << 20;
  /// fsync each tier-2 append (--memo-fsync); see MemoStoreOptions.
  bool memo_fsync = false;
  /// Overload degradation (--degraded-admission): instead of shedding an
  /// expensive request past max_inflight, run it inline under the narrowed
  /// degraded_* budget — memo hits still answer instantly, fresh work
  /// returns an anytime kUnknown with ExhaustionInfo, a checkpoint, and a
  /// retry_after_ms hint (prefix-consistent with the full-budget run).
  bool degraded_admission = false;
  size_t degraded_chase_steps = 128;
  size_t degraded_candidates = 64;
  /// Backoff hint stamped on overloaded / draining / degraded responses.
  uint64_t retry_after_ms = 100;
  /// Idempotent request ids: settled responses of expensive requests that
  /// carried a non-empty id are cached (LRU, this many entries) and a
  /// repeated id replays the response instead of re-dispatching — a client
  /// retry after a lost response lands here, or on the memo. 0 disables.
  size_t idempotency_cache = 128;
  /// Fleet mode (docs/fleet.md): the full shard topology, including this
  /// process. Empty = single node (v1 behavior unchanged, v2 extras only).
  /// When set, shard_name must name one entry; if port is 0 the topology
  /// entry's port is bound.
  std::vector<ShardId> fleet;
  std::string shard_name;
  /// Topology generation, stamped on v2 hellos / redirects / stats so
  /// clients can notice a reshard. Bumped by the operator, not the server.
  uint64_t shard_epoch = 1;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the port and starts the accept loop + worker pool.
  Status Start();

  /// The bound port (valid after Start()).
  int port() const { return listener_.port(); }

  /// Graceful drain: stop accepting, cancel in-flight engine calls (they
  /// checkpoint and answer with partial results), unblock idle connections.
  /// Idempotent; safe from any thread.
  void RequestDrain();

  /// Joins the accept loop and every connection thread. Returns once all
  /// in-flight responses are written.
  void Wait();

  /// RequestDrain() + Wait().
  void Stop();

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Live connection count — the leak check fault tests poll this to 0.
  size_t active_sessions() const { return active_sessions_.load(std::memory_order_acquire); }
  /// Expensive requests queued or running right now.
  size_t inflight() const { return inflight_.load(std::memory_order_acquire); }

  /// Server-lifetime metrics (service.* plus the merged per-request engine
  /// counter deltas); what STATS exports as Prometheus text.
  MetricsRegistry& metrics() { return metrics_; }

  /// Replaces the shared engine with a fresh one (cold memo). For the
  /// warm-vs-cold service benchmarks; in-flight requests keep the engine
  /// they started with.
  void ResetMemo();

 private:
  void AcceptLoop();
  void ServeConnection(TcpConn conn);

  /// True for the commands that go through admission control + the pool.
  static bool IsExpensive(const std::string& cmd);

  /// Executes one request and renders the response line. Never blocks on
  /// other requests (the caller handles pooling/admission). `degraded`
  /// narrows the budget to the degraded_* caps (overload lane).
  std::string Dispatch(Session& session, const Request& request,
                       bool degraded = false);

  /// True once Start() resolved this process to an entry of options_.fleet.
  bool fleet_enabled() const { return self_index_ >= 0; }

  /// Index of the shard owning `request`'s canonical signature. Only
  /// meaningful when fleet_enabled().
  size_t OwnerShardFor(const Request& request) const;

  /// One request/response round trip on the lazily-dialed peer link to
  /// `shard` (hello-negotiated at v2). Any failure — dial, write, read,
  /// ok:false — drops the link and returns nullopt: peer traffic is an
  /// optimization, never a correctness dependency.
  std::optional<JsonValue> CallPeer(size_t shard, const std::string& line);

  /// The peer tier hooks ChaseMemo calls on a local miss / fresh insert:
  /// fetch pulls a settled record from the key's owning shard, offer pushes
  /// a freshly chased record to it. Both no-op when we own the key.
  std::optional<std::string> PeerFetch(const std::string& key);
  void PeerOffer(const std::string& key, const std::string& body);

  std::string HandleHello(Session& session, const Request& request);
  std::string HandleDdl(Session& session, const Request& request);
  std::string HandleRelation(Session& session, const Request& request);
  std::string HandleDep(Session& session, const Request& request);
  std::string HandleCheck(Session& session, const Request& request, bool degraded);
  std::string HandleReformulate(Session& session, const Request& request,
                                bool degraded);
  std::string HandleLint(Session& session, const Request& request, bool degraded);
  std::string HandleStats(const Request& request);
  /// v2 fleet verbs: read-only memory-tier export (never chases) and
  /// validated import of a peer's settled chase record.
  std::string HandleMemoFetch(const Request& request);
  std::string HandleMemoOffer(const Request& request);

  /// The per-request context: default budget narrowed by request fields,
  /// a caller-supplied local metrics registry, the server's fault injector,
  /// and the drain cancellation token. `degraded` additionally clamps
  /// chase steps / candidates / threads to the degraded_* caps.
  EngineContext ContextFor(const JsonValue& body, MetricsRegistry* local,
                           bool degraded);

  /// The idempotency cache: a settled response previously remembered under
  /// this non-empty request id, if any. Counts service.idempotent_replays.
  std::optional<std::string> IdempotentReplay(const std::string& id);
  /// Remembers a settled expensive response under its id (LRU-bounded).
  /// Unsettled responses (errors, overload/degraded kUnknown, partial
  /// results) are skipped so a retry re-dispatches and can finish the work.
  void RememberResponse(const std::string& id, const std::string& response);

  /// Folds a finished request's local counter deltas into the server
  /// registry and renders them as the response's "metrics" object.
  std::string MergeAndRenderMetrics(const MetricsRegistry& local);

  std::shared_ptr<EquivalenceEngine> engine();

  ServerOptions options_;
  TcpListener listener_;
  MetricsRegistry metrics_;
  CancellationToken drain_cancel_;
  // Declared after (so destroyed before) everything its task wrappers touch:
  // a worker can still be in a task's timing epilogue after the connection
  // thread that submitted the task has been unblocked and joined.
  std::unique_ptr<ThreadPool> pool_;

  /// Fleet state, resolved by Start() from options_.fleet.
  std::optional<HashRing> ring_;
  int self_index_ = -1;
  std::shared_ptr<const MemoPeerTier> peer_tier_;
  /// One outgoing link per peer shard (self entry unused), dialed on first
  /// use and redialed after failures. Guarded per-link so fetches to
  /// different peers do not serialize.
  struct PeerLink {
    std::mutex mu;
    std::unique_ptr<Connection> conn;
  };
  std::vector<std::unique_ptr<PeerLink>> peer_links_;

  std::mutex engine_mu_;
  std::shared_ptr<EquivalenceEngine> engine_;
  /// Tier-2 durable memo; opened by Start() when options_.memo_dir is set.
  /// Owned here (not by the engine) so ResetMemo() keeps the disk tier and
  /// a fresh engine re-warms from it.
  std::shared_ptr<MemoStore> memo_store_;

  std::mutex idem_mu_;
  std::list<std::string> idem_lru_;  // front = most recent
  struct IdemEntry {
    std::string response;
    std::list<std::string>::iterator lru_pos;
  };
  std::unordered_map<std::string, IdemEntry> idem_cache_;

  std::atomic<bool> draining_{false};
  std::atomic<size_t> active_sessions_{0};
  std::atomic<size_t> inflight_{0};

  std::thread accept_thread_;
  std::mutex conns_mu_;
  std::vector<std::thread> conn_threads_;
  /// Live connections, for the drain-time read-side shutdown. Entries are
  /// owned by their ServeConnection frame; registration is bracketed inside
  /// that frame, so pointers never dangle while registered.
  std::vector<TcpConn*> open_conns_;
};

}  // namespace service
}  // namespace sqleq

#endif  // SQLEQ_SERVICE_SERVER_H_
