// sqleqd — the long-running equivalence service (docs/service.md). One
// process owns a process-lifetime EquivalenceEngine whose chase memo is
// shared across every connection (bounded by bytes, LRU-evicted), a worker
// pool that executes the expensive requests (check / reformulate / lint),
// and an admission controller that sheds load with a structured
// `overloaded` response once the in-flight limit is reached.
//
// Lifecycle: Start() binds the port and spawns the accept loop; every
// accepted connection gets a thread running the line-oriented protocol over
// a per-connection Session. RequestDrain() (the SIGTERM path) stops
// accepting, cancels in-flight engine calls through the shared
// CancellationToken — anytime C&B runs then checkpoint and return partial
// results carrying the serialized CandBCheckpoint — shuts the read side of
// every connection so idle readers see EOF, and lets Wait() join
// everything. Fault sites service.accept / service.parse /
// service.dispatch make connection drops and request failures
// deterministically reproducible (tests/service_test.cc).
#ifndef SQLEQ_SERVICE_SERVER_H_
#define SQLEQ_SERVICE_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "equivalence/engine.h"
#include "service/protocol.h"
#include "service/session.h"
#include "util/engine_context.h"
#include "util/fault.h"
#include "util/resource_budget.h"
#include "util/socket.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace sqleq {
namespace service {

struct ServerOptions {
  /// TCP port; 0 binds an ephemeral port (read it back via Server::port()).
  int port = 0;
  /// Workers executing check/reformulate/lint requests.
  size_t worker_threads = 2;
  /// Admission cap: expensive requests beyond this many queued-or-running
  /// are shed with OverloadedResponse. Cheap requests (hello, ddl, dep,
  /// relation, stats) always pass.
  size_t max_inflight = 4;
  /// Byte bound on each shared chase memo context (0 = unbounded). A
  /// process-lifetime server should set this; see ChaseMemo.
  size_t memo_byte_limit = 64u << 20;
  /// Per-request resource caps. Requests may lower (never raise) the step,
  /// candidate, and thread limits, and may set their own deadline_ms.
  ResourceBudget default_budget;
  /// Deterministic fault injection for the service.* sites and, threaded
  /// through EngineContext, the engine sites. Borrowed; may be null.
  FaultInjector* faults = nullptr;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the port and starts the accept loop + worker pool.
  Status Start();

  /// The bound port (valid after Start()).
  int port() const { return listener_.port(); }

  /// Graceful drain: stop accepting, cancel in-flight engine calls (they
  /// checkpoint and answer with partial results), unblock idle connections.
  /// Idempotent; safe from any thread.
  void RequestDrain();

  /// Joins the accept loop and every connection thread. Returns once all
  /// in-flight responses are written.
  void Wait();

  /// RequestDrain() + Wait().
  void Stop();

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Live connection count — the leak check fault tests poll this to 0.
  size_t active_sessions() const { return active_sessions_.load(std::memory_order_acquire); }
  /// Expensive requests queued or running right now.
  size_t inflight() const { return inflight_.load(std::memory_order_acquire); }

  /// Server-lifetime metrics (service.* plus the merged per-request engine
  /// counter deltas); what STATS exports as Prometheus text.
  MetricsRegistry& metrics() { return metrics_; }

  /// Replaces the shared engine with a fresh one (cold memo). For the
  /// warm-vs-cold service benchmarks; in-flight requests keep the engine
  /// they started with.
  void ResetMemo();

 private:
  void AcceptLoop();
  void ServeConnection(TcpConn conn);

  /// True for the commands that go through admission control + the pool.
  static bool IsExpensive(const std::string& cmd);

  /// Executes one request and renders the response line. Never blocks on
  /// other requests (the caller handles pooling/admission).
  std::string Dispatch(Session& session, const Request& request);

  std::string HandleHello(const Request& request);
  std::string HandleDdl(Session& session, const Request& request);
  std::string HandleRelation(Session& session, const Request& request);
  std::string HandleDep(Session& session, const Request& request);
  std::string HandleCheck(Session& session, const Request& request);
  std::string HandleReformulate(Session& session, const Request& request);
  std::string HandleLint(Session& session, const Request& request);
  std::string HandleStats(const Request& request);

  /// The per-request context: default budget narrowed by request fields,
  /// a caller-supplied local metrics registry, the server's fault injector,
  /// and the drain cancellation token.
  EngineContext ContextFor(const JsonValue& body, MetricsRegistry* local);

  /// Folds a finished request's local counter deltas into the server
  /// registry and renders them as the response's "metrics" object.
  std::string MergeAndRenderMetrics(const MetricsRegistry& local);

  std::shared_ptr<EquivalenceEngine> engine();

  ServerOptions options_;
  TcpListener listener_;
  MetricsRegistry metrics_;
  CancellationToken drain_cancel_;
  // Declared after (so destroyed before) everything its task wrappers touch:
  // a worker can still be in a task's timing epilogue after the connection
  // thread that submitted the task has been unblocked and joined.
  std::unique_ptr<ThreadPool> pool_;

  std::mutex engine_mu_;
  std::shared_ptr<EquivalenceEngine> engine_;

  std::atomic<bool> draining_{false};
  std::atomic<size_t> active_sessions_{0};
  std::atomic<size_t> inflight_{0};

  std::thread accept_thread_;
  std::mutex conns_mu_;
  std::vector<std::thread> conn_threads_;
  /// Live connections, for the drain-time read-side shutdown. Entries are
  /// owned by their ServeConnection frame; registration is bracketed inside
  /// that frame, so pointers never dangle while registered.
  std::vector<TcpConn*> open_conns_;
};

}  // namespace service
}  // namespace sqleq

#endif  // SQLEQ_SERVICE_SERVER_H_
