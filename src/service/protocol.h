// Wire protocol of sqleqd (docs/service.md): one JSON object per line in
// both directions. A request is {"id": <string>, "cmd": <string>, ...};
// every response echoes the id and carries "ok". Parsing reuses util/json;
// rendering goes through JsonObject so escaping is uniform.
#ifndef SQLEQ_SERVICE_PROTOCOL_H_
#define SQLEQ_SERVICE_PROTOCOL_H_

#include <optional>
#include <string>
#include <string_view>

#include "db/eval.h"
#include "util/json.h"
#include "util/status.h"

namespace sqleq {
namespace service {

/// Reported by `hello`; bump on incompatible protocol changes.
inline constexpr int kProtocolVersion = 1;

/// A parsed request line. `body` is the whole request object, so handlers
/// read command-specific fields through the helpers below.
struct Request {
  std::string id;
  std::string cmd;
  JsonValue body;
};

/// Parses one request line: a JSON object with a string "cmd" (required)
/// and an optional string "id" (echoed on the response; defaults to "").
Result<Request> ParseRequest(std::string_view line);

/// "set" / "bag" / "bag-set", plus the shell's S / B / BS spellings.
Result<Semantics> ParseSemanticsName(std::string_view name);

/// The canonical wire spelling: "set" / "bag" / "bag-set".
const char* SemanticsWireName(Semantics s);

/// `s` as a quoted, escaped JSON string literal.
std::string JsonString(std::string_view s);

/// Incremental JSON object rendering for response lines. Str escapes;
/// Raw splices pre-rendered JSON (nested objects, arrays, numbers).
class JsonObject {
 public:
  JsonObject& Str(std::string_view key, std::string_view value);
  JsonObject& Int(std::string_view key, uint64_t value);
  JsonObject& Bool(std::string_view key, bool value);
  JsonObject& Raw(std::string_view key, std::string_view raw_json);
  /// "{...}" with the fields in insertion order.
  std::string Build() const;

 private:
  std::string fields_;
};

/// {"id":...,"ok":false,"error":{"code":"<StatusCodeToString>","message":...}}
std::string ErrorResponse(const std::string& id, const Status& status);

/// The load-shedding response: ok:false, overloaded:true, a retry_after_ms
/// backoff hint, and a ResourceExhausted error object — so naive clients
/// treat it as a failure and aware clients (ServiceClient::CallWithRetry)
/// back off and retry.
std::string OverloadedResponse(const std::string& id,
                               uint64_t retry_after_ms = 100);

/// The drain-time rejection for new expensive work: ok:false,
/// draining:true (the machine-readable code — no message pattern-matching
/// needed), a retry_after_ms hint for clients that will retry against a
/// replacement server, and a FailedPrecondition error object for naive
/// clients.
std::string DrainingResponse(const std::string& id,
                             uint64_t retry_after_ms = 100);

// ---- Field accessors over a parsed request body. ----

/// The string member `key`, or InvalidArgument naming it.
Result<std::string> RequireString(const JsonValue& body, const std::string& key);
std::optional<std::string> OptionalString(const JsonValue& body, const std::string& key);
std::optional<double> OptionalNumber(const JsonValue& body, const std::string& key);
bool OptionalBool(const JsonValue& body, const std::string& key, bool fallback);

}  // namespace service
}  // namespace sqleq

#endif  // SQLEQ_SERVICE_PROTOCOL_H_
