// Wire protocol of sqleqd (docs/service.md): one JSON object per line in
// both directions. A request is {"id": <string>, "cmd": <string>, ...};
// every response echoes the id and carries "ok". Parsing reuses util/json;
// rendering goes through JsonObject so escaping is uniform.
//
// The protocol is version-explicit. v1 is the PR-5/PR-8 single-node
// protocol; v2 adds the fleet verbs and routing metadata (docs/fleet.md):
// `hello` negotiation via "max_protocol", `not_owner` redirects, shard /
// epoch / fleet fields, and the memo_fetch / memo_offer peer-memo verbs.
// A connection speaks v1 until a hello carrying "max_protocol" negotiates
// it up, so v1 clients see byte-identical v1 responses forever.
#ifndef SQLEQ_SERVICE_PROTOCOL_H_
#define SQLEQ_SERVICE_PROTOCOL_H_

#include <optional>
#include <string>
#include <string_view>

#include "db/eval.h"
#include "util/json.h"
#include "util/status.h"

namespace sqleq {
namespace service {

/// The negotiable protocol versions. Integer values are what travels in
/// hello's "max_protocol" request field and "protocol" response field.
enum class ProtocolVersion : int {
  kV1 = 1,  ///< single-node verbs: hello ddl relation dep check reformulate lint stats
  kV2 = 2,  ///< + fleet routing: not_owner redirects, memo_fetch, memo_offer
};

/// Baseline every connection starts at (and what a plain v1 hello reports).
inline constexpr int kProtocolVersion = 1;
/// The newest version this build serves / requests.
inline constexpr ProtocolVersion kMaxProtocolVersion = ProtocolVersion::kV2;

inline constexpr int ToInt(ProtocolVersion v) { return static_cast<int>(v); }

/// The lowest protocol version that carries verb `cmd`, or nullopt when the
/// verb is unknown at every version (the server's unknown-command error).
/// This table is the single source of truth for verb availability; both the
/// server's dispatch gate and EncodeRequest validate against it.
std::optional<ProtocolVersion> MinVersionForVerb(std::string_view cmd);

/// Version negotiation, applied by the server to hello's "max_protocol"
/// field and by clients to the "protocol" echoed back: absent means v1
/// (legacy hello), otherwise the value clamped into the supported range.
ProtocolVersion NegotiateVersion(std::optional<double> requested_max);

/// A parsed request line. `body` is the whole request object, so handlers
/// read command-specific fields through the helpers below.
struct Request {
  std::string id;
  std::string cmd;
  JsonValue body;
};

/// Parses one request line: a JSON object with a string "cmd" (required)
/// and an optional string "id" (echoed on the response; defaults to "").
Result<Request> ParseRequest(std::string_view line);

/// "set" / "bag" / "bag-set", plus the shell's S / B / BS spellings.
Result<Semantics> ParseSemanticsName(std::string_view name);

/// The canonical wire spelling: "set" / "bag" / "bag-set".
const char* SemanticsWireName(Semantics s);

/// `s` as a quoted, escaped JSON string literal.
std::string JsonString(std::string_view s);

/// Incremental JSON object rendering for response lines. Str escapes;
/// Raw splices pre-rendered JSON (nested objects, arrays, numbers).
class JsonObject {
 public:
  JsonObject& Str(std::string_view key, std::string_view value);
  JsonObject& Int(std::string_view key, uint64_t value);
  JsonObject& Bool(std::string_view key, bool value);
  JsonObject& Raw(std::string_view key, std::string_view raw_json);
  /// "{...}" with the fields in insertion order.
  std::string Build() const;

 private:
  std::string fields_;
};

// ---- Request encoding (client side). ----

/// A request under construction: verb + optional id + body fields in
/// insertion order. EncodeRequest renders it; the per-verb JSON assembly
/// that used to be duplicated across the shell, sqleq-client, and tests all
/// goes through this one pair now.
class RequestSpec {
 public:
  explicit RequestSpec(std::string_view cmd, std::string_view id = "")
      : cmd_(cmd), id_(id) {}

  RequestSpec& Str(std::string_view key, std::string_view value) {
    fields_.Str(key, value);
    return *this;
  }
  RequestSpec& Int(std::string_view key, uint64_t value) {
    fields_.Int(key, value);
    return *this;
  }
  RequestSpec& Bool(std::string_view key, bool value) {
    fields_.Bool(key, value);
    return *this;
  }
  RequestSpec& Raw(std::string_view key, std::string_view raw_json) {
    fields_.Raw(key, raw_json);
    return *this;
  }

  const std::string& cmd() const { return cmd_; }
  const std::string& id() const { return id_; }
  const JsonObject& fields() const { return fields_; }

 private:
  std::string cmd_;
  std::string id_;
  JsonObject fields_;
};

/// Renders `spec` as one request line: {"id":...,"cmd":...,<fields...>}
/// (id omitted when empty). InvalidArgument when the verb is unknown, or
/// known but newer than `version` — a v1 connection cannot send memo_fetch.
Result<std::string> EncodeRequest(const RequestSpec& spec,
                                  ProtocolVersion version = kMaxProtocolVersion);

// ---- Response decoding (client side). ----

/// Where a not_owner redirect points: the shard that owns the request's
/// signature, plus the topology epoch the redirecting shard was configured
/// with (a client whose topology disagrees should re-resolve).
struct RedirectInfo {
  std::string shard;
  std::string host;
  int port = 0;
  uint64_t epoch = 0;
};

/// One decoded response line: the structured fields every caller ends up
/// re-deriving by hand — ok, the error object, the backpressure markers,
/// and (v2) the not_owner redirect. `body` keeps the full object for
/// verb-specific fields.
struct DecodedResponse {
  JsonValue body;
  std::string id;
  bool ok = false;
  /// Set when !ok: the error object's code (parsed) and message.
  StatusCode error_code = StatusCode::kInternal;
  std::string error_message;
  bool overloaded = false;
  bool draining = false;
  std::optional<uint64_t> retry_after_ms;
  /// Set when the response is a v2 not_owner redirect.
  std::optional<RedirectInfo> redirect;

  /// OK() when ok, else the error object as a Status (the shell's
  /// "remote <code>: <message>" shape comes from this).
  Status ToStatus() const;
};

/// Decodes one response line. InvalidArgument only when the line is not a
/// JSON object; a well-formed object missing fields decodes with defaults.
Result<DecodedResponse> DecodeResponse(std::string_view line);
/// Decodes an already-parsed response object.
DecodedResponse DecodeResponseObject(JsonValue body);

// ---- Response rendering (server side). ----

/// {"id":...,"ok":false,"error":{"code":"<StatusCodeToString>","message":...}}
std::string ErrorResponse(const std::string& id, const Status& status);

/// The load-shedding response: ok:false, overloaded:true, a retry_after_ms
/// backoff hint, and a ResourceExhausted error object — so naive clients
/// treat it as a failure and aware clients (Connection::CallWithRetry)
/// back off and retry.
std::string OverloadedResponse(const std::string& id,
                               uint64_t retry_after_ms = 100);

/// The drain-time rejection for new expensive work: ok:false,
/// draining:true (the machine-readable code — no message pattern-matching
/// needed), a retry_after_ms hint for clients that will retry against a
/// replacement server, and a FailedPrecondition error object for naive
/// clients.
std::string DrainingResponse(const std::string& id,
                             uint64_t retry_after_ms = 100);

/// The v2 routing rejection: ok:false, not_owner:true, the owning shard's
/// coordinates and the topology epoch, and a FailedPrecondition error
/// object for clients that do not follow redirects. Only ever sent on
/// connections that negotiated v2 — v1 clients are always served locally.
std::string NotOwnerResponse(const std::string& id, const RedirectInfo& owner);

// ---- Field accessors over a parsed request body. ----

/// The string member `key`, or InvalidArgument naming it.
Result<std::string> RequireString(const JsonValue& body, const std::string& key);
std::optional<std::string> OptionalString(const JsonValue& body, const std::string& key);
std::optional<double> OptionalNumber(const JsonValue& body, const std::string& key);
bool OptionalBool(const JsonValue& body, const std::string& key, bool fallback);

}  // namespace service
}  // namespace sqleq

#endif  // SQLEQ_SERVICE_PROTOCOL_H_
