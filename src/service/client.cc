#include "service/client.h"

#include <utility>

namespace sqleq {
namespace service {

Result<ServiceClient> ServiceClient::Connect(const std::string& host, int port) {
  SQLEQ_ASSIGN_OR_RETURN(TcpConn conn, TcpConn::Connect(host, port));
  return ServiceClient(std::move(conn));
}

Result<JsonValue> ServiceClient::Call(const std::string& request_line) {
  return Call(request_line, nullptr);
}

Result<JsonValue> ServiceClient::Call(const std::string& request_line,
                                      std::string* raw_response) {
  SQLEQ_RETURN_IF_ERROR(Send(request_line));
  SQLEQ_ASSIGN_OR_RETURN(std::optional<std::string> line, conn_.ReadLine());
  if (!line.has_value()) {
    return Status::FailedPrecondition("connection closed before a response arrived");
  }
  if (raw_response != nullptr) *raw_response = *line;
  return ParseJson(*line);
}

Status ServiceClient::Send(const std::string& request_line) {
  return conn_.WriteAll(request_line + "\n");
}

Result<std::optional<std::string>> ServiceClient::ReadLine() {
  return conn_.ReadLine();
}

}  // namespace service
}  // namespace sqleq
