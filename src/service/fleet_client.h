// FleetClient — the pooled, routing-aware top of the client stack
// (docs/fleet.md). Where Connection speaks to one sqleqd, FleetClient
// fronts a whole fleet:
//
//  - consistent-hash routing: expensive requests go to the shard owning
//    their CanonicalRequestSignature (service/routing.h), so warm memos
//    concentrate where repeats land;
//  - catalog replication: relation / ddl / dep requests broadcast to every
//    shard, and are replayed onto each pooled connection (sessions are
//    per-connection server-side), so any connection can serve any request;
//  - connection pooling: up to pool_size_per_shard idle connections per
//    shard are kept and reused; dead connections are evicted and redialed,
//    and the request is resent through the fresh connection (the catalog
//    replays first), reusing the PR-8 RetryPolicy/idempotent-id machinery;
//  - redirect following: a v2 not_owner response is followed transparently
//    (bounded by max_redirects), so a client with a stale routing choice
//    still lands on the owner;
//  - fleet stats rollup: a stats request fans out to every shard and the
//    responses merge into one fleet-wide object (per-shard detail kept).
//
// One release ago all of this sat behind the monolithic ServiceClient;
// sqleq-client, the shell's CONNECT, and the soak bench all consume this
// API now. Thread-safe: concurrent Calls check connections out of the pool
// exclusively.
#ifndef SQLEQ_SERVICE_FLEET_CLIENT_H_
#define SQLEQ_SERVICE_FLEET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "service/connection.h"
#include "service/protocol.h"
#include "service/routing.h"
#include "util/json.h"
#include "util/status.h"

namespace sqleq {
namespace service {

struct FleetClientOptions {
  /// The topology. One shard degrades gracefully to a pooled single-node
  /// client (no broadcasts, no redirects to follow).
  std::vector<ShardId> shards;
  /// Per-attempt transport knobs; max_attempts bounds the pool-level
  /// evict-redial-resend loop, and the backoff schedule (deterministic
  /// jitter, server hints) is exactly PR-8's.
  RetryPolicy retry;
  /// Idle connections kept per shard; checkins beyond this close instead.
  size_t pool_size_per_shard = 2;
  /// How many not_owner redirects to follow before giving up and returning
  /// the redirect response to the caller.
  size_t max_redirects = 4;
  /// Highest protocol to negotiate on fresh connections. kV1 makes this a
  /// legacy v1-only client: hello is sent without "max_protocol" and the
  /// fleet verbs are refused client-side.
  ProtocolVersion max_protocol = kMaxProtocolVersion;
  /// Send every routed request to shard 0 instead of its owner; the v2
  /// server answers not_owner and the client follows. For exercising the
  /// redirect path (ci.sh fleet-smoke) — not for production use.
  bool route_to_first = false;
};

class FleetClient {
 public:
  /// Validates the topology (at least one shard). Dials lazily — creation
  /// never touches the network.
  static Result<std::unique_ptr<FleetClient>> Create(FleetClientOptions options);

  FleetClient(const FleetClient&) = delete;
  FleetClient& operator=(const FleetClient&) = delete;

  /// Sends one raw request line to the right place and returns the decoded
  /// response object (`raw_response`, when non-null, receives the exact
  /// response line — synthesized for rollups):
  ///  - relation / ddl / dep: broadcast to every shard (the catalog log);
  ///    the last shard's response is returned;
  ///  - stats (multi-shard): fans out and returns the fleet rollup;
  ///  - everything else: routed by signature, redirects followed, with the
  ///    pool-level retry loop (backoff on overloaded/draining, evict +
  ///    redial + catalog replay + resend on transport failure).
  /// Unparsable lines pass through to shard 0 so the server's error
  /// contract is preserved byte-for-byte.
  Result<JsonValue> Call(const std::string& request_line,
                         std::string* raw_response = nullptr);

  /// EncodeRequest(spec) under the client's max protocol, then Call.
  Result<JsonValue> Call(const RequestSpec& spec,
                         std::string* raw_response = nullptr);

  /// Sends `request_line` to every shard in topology order (no routing, no
  /// catalog logging). Stops at the first transport-level failure; ok:false
  /// responses are returned for the caller to judge.
  Result<std::vector<JsonValue>> Broadcast(const std::string& request_line);

  /// The fleet-wide stats rollup: per-shard stats responses, summed memo /
  /// peer counters (including the "memo.peer.hits" total), client-side pool
  /// and redirect counters, and the raw per-shard objects under
  /// "per_shard".
  Result<JsonValue> FleetStats(const std::string& id = "");

  /// Client-side observability (docs/fleet.md).
  struct Stats {
    uint64_t dials = 0;
    uint64_t pool_reuses = 0;
    uint64_t pool_evictions = 0;
    uint64_t redirects_followed = 0;
    uint64_t broadcasts = 0;
    uint64_t routed = 0;
    uint64_t catalog_replays = 0;
  };
  Stats stats() const;

  size_t shard_count() const { return ring_.size(); }
  const std::vector<ShardId>& shards() const { return ring_.shards(); }

  /// Closes every pooled connection. Further Calls redial.
  void Close();

 private:
  struct PooledConn {
    std::unique_ptr<Connection> conn;
    ProtocolVersion negotiated = ProtocolVersion::kV1;
    /// How many catalog log entries have been applied to this connection's
    /// server-side session.
    size_t catalog_seq = 0;
  };

  explicit FleetClient(FleetClientOptions options);

  /// An open connection to `shard` with the catalog log replayed through
  /// `replay_limit` entries: pops an idle pooled connection or dials +
  /// negotiates a fresh one.
  Result<PooledConn> Checkout(size_t shard, size_t replay_limit);
  /// Returns a healthy connection to the pool (or closes it when full).
  void Checkin(size_t shard, PooledConn conn);

  /// The pool-level retry loop against one shard (docstring on Call).
  /// `replay_limit` bounds catalog replay for broadcast sends; npos means
  /// "everything logged so far". `advance_catalog` marks the sent line as
  /// catalog entry `replay_limit` on success, so the connection's replay
  /// cursor skips it (the catalog broadcast path).
  Result<JsonValue> CallOnShard(size_t shard, const std::string& request_line,
                                std::string* raw_response,
                                size_t replay_limit = kNoReplayLimit,
                                bool advance_catalog = false);

  /// Routed dispatch: signature → owner → redirect-following loop.
  Result<JsonValue> CallRouted(size_t shard, const std::string& request_line,
                               std::string* raw_response);

  /// FleetStats that also synthesizes the raw rollup line.
  Result<JsonValue> FleetStatsInternal(const std::string& id,
                                       std::string* raw_response);

  static constexpr size_t kNoReplayLimit = static_cast<size_t>(-1);
  static bool IsCatalogVerb(const std::string& cmd) {
    return cmd == "relation" || cmd == "ddl" || cmd == "dep";
  }

  FleetClientOptions options_;
  HashRing ring_;

  mutable std::mutex mu_;
  std::vector<std::vector<PooledConn>> idle_;  // per shard, back = hottest
  std::vector<std::string> catalog_log_;
  Stats stats_;
};

}  // namespace service
}  // namespace sqleq

#endif  // SQLEQ_SERVICE_FLEET_CLIENT_H_
