// Per-connection state of a sqleqd session: the catalog (schema + Σ) the
// client has uploaded, mirroring what the shell's CREATE TABLE / DEP
// statements build locally. Queries in requests resolve against it — SQL
// text translates through sql/translate, Datalog text parses directly.
// Sessions are confined to their connection thread; no locking.
#ifndef SQLEQ_SERVICE_SESSION_H_
#define SQLEQ_SERVICE_SESSION_H_

#include <string>
#include <string_view>

#include "ir/query.h"
#include "service/protocol.h"
#include "sql/translate.h"
#include "util/status.h"

namespace sqleq {
namespace service {

class Session {
 public:
  /// Applies a ';'-separated CREATE TABLE script to the session catalog
  /// (keys/fks induce Σ, as in the shell). INSERTs are rejected — the
  /// service decides equivalence, it stores no data.
  Status ApplyDdl(std::string_view script);

  /// Declares a bare relation (no constraints), for catalogs built without
  /// SQL DDL.
  Status AddRelation(const std::string& name, size_t arity, bool set_valued);

  /// Parses and appends one dependency statement (Datalog syntax; an egd
  /// conclusion with k equations contributes k dependencies). Returns how
  /// many were added. An empty label defaults to "sigma<N>".
  Result<size_t> AddDependency(std::string_view text, std::string label);

  /// Resolves query text: SQL (leading SELECT, translated against the
  /// session catalog — aggregates are rejected, the equivalence protocol is
  /// CQ-only) or Datalog ("name(head) :- body"). `name` renames the result.
  Result<ConjunctiveQuery> ResolveQuery(std::string_view text, const std::string& name) const;

  const sql::Catalog& catalog() const { return catalog_; }

  /// The protocol version this connection negotiated in hello. Connections
  /// start at v1 (a client that never says hello, or says it without
  /// max_protocol, keeps the PR-8 wire behavior byte-for-byte); the v2
  /// verbs and not_owner redirects only apply at kV2 and above.
  ProtocolVersion protocol() const { return protocol_; }
  void set_protocol(ProtocolVersion v) { protocol_ = v; }

 private:
  sql::Catalog catalog_;
  int dep_counter_ = 0;
  ProtocolVersion protocol_ = ProtocolVersion::kV1;
};

}  // namespace service
}  // namespace sqleq

#endif  // SQLEQ_SERVICE_SESSION_H_
