// Client side of the sqleqd line protocol: dial, send one JSON request
// line, read and parse the one-line response. Shared by tools/sqleq_client,
// the shell's CONNECT command, and the service tests/benchmarks.
#ifndef SQLEQ_SERVICE_CLIENT_H_
#define SQLEQ_SERVICE_CLIENT_H_

#include <optional>
#include <string>

#include "util/json.h"
#include "util/socket.h"
#include "util/status.h"

namespace sqleq {
namespace service {

class ServiceClient {
 public:
  static Result<ServiceClient> Connect(const std::string& host, int port);

  ServiceClient(ServiceClient&&) = default;
  ServiceClient& operator=(ServiceClient&&) = default;

  /// Sends one request line (newline appended) and blocks for the response
  /// line, parsed as JSON. A connection closed before the response is a
  /// FailedPrecondition (how callers observe server-side drops).
  Result<JsonValue> Call(const std::string& request_line);

  /// Call() that also hands back the raw response line (for byte-exact
  /// comparisons in tests).
  Result<JsonValue> Call(const std::string& request_line, std::string* raw_response);

  /// Unpaired send/receive halves, for tests that interleave.
  Status Send(const std::string& request_line);
  Result<std::optional<std::string>> ReadLine();

  void Close() { conn_.Close(); }

 private:
  explicit ServiceClient(TcpConn conn) : conn_(std::move(conn)) {}

  TcpConn conn_;
};

}  // namespace service
}  // namespace sqleq

#endif  // SQLEQ_SERVICE_CLIENT_H_
