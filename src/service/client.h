// DEPRECATED shim — one release only. The monolithic ServiceClient was
// split in the fleet redesign (docs/fleet.md): transport-level dial/call/
// retry lives in service/connection.h as `Connection`, and pooled,
// routing-aware fleet access lives in service/fleet_client.h as
// `FleetClient`. This header survives one release so out-of-tree callers
// get a deprecation warning instead of a hard break; every in-repo caller
// has been migrated. Include service/connection.h (or fleet_client.h)
// directly.
#ifndef SQLEQ_SERVICE_CLIENT_H_
#define SQLEQ_SERVICE_CLIENT_H_

#include "service/connection.h"

namespace sqleq {
namespace service {

/// The old name of Connection. RetryPolicy, RetryStats, RetryBackoffMs,
/// and IsRetryableResponse kept their names and moved to connection.h.
using ServiceClient [[deprecated(
    "ServiceClient was split: use service::Connection (transport) or "
    "service::FleetClient (pooled shard routing)")]] = Connection;

}  // namespace service
}  // namespace sqleq

#endif  // SQLEQ_SERVICE_CLIENT_H_
