#include "service/server.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <optional>
#include <utility>
#include <vector>

#include "analysis/analyzer.h"
#include "chase/checkpoint.h"
#include "reformulation/candb.h"
#include "util/string_util.h"

namespace sqleq {
namespace service {
namespace {

std::string RenderExhaustion(const ExhaustionInfo& e) {
  return JsonObject()
      .Str("limit", e.limit)
      .Str("phase", e.phase)
      .Str("progress", e.progress)
      .Build();
}

std::string RenderStringArray(const std::vector<std::string>& items) {
  std::string out = "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ",";
    out += JsonString(items[i]);
  }
  out += "]";
  return out;
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {
  engine_ = std::make_shared<EquivalenceEngine>();
  engine_->set_memo_byte_limit(options_.memo_byte_limit);
}

Server::~Server() { Stop(); }

Status Server::Start() {
  SQLEQ_RETURN_IF_ERROR(listener_.Listen(options_.port));
  pool_ = std::make_unique<ThreadPool>(std::max<size_t>(1, options_.worker_threads),
                                       &metrics_);
  accept_thread_ = std::thread(&Server::AcceptLoop, this);
  return Status::OK();
}

void Server::RequestDrain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) return;
  metrics_.counter(metric::kServiceDrained).Add();
  drain_cancel_.Cancel();
  listener_.Shutdown();
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (TcpConn* conn : open_conns_) conn->ShutdownRead();
}

void Server::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept loop has exited, so conn_threads_ can only shrink under us.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void Server::Stop() {
  if (!listener_.listening() && !accept_thread_.joinable()) return;
  RequestDrain();
  Wait();
  pool_.reset();  // joins workers that may still be recording task latencies
  listener_.Close();
}

void Server::ResetMemo() {
  auto fresh = std::make_shared<EquivalenceEngine>();
  fresh->set_memo_byte_limit(options_.memo_byte_limit);
  std::lock_guard<std::mutex> lock(engine_mu_);
  engine_ = std::move(fresh);
}

std::shared_ptr<EquivalenceEngine> Server::engine() {
  std::lock_guard<std::mutex> lock(engine_mu_);
  return engine_;
}

void Server::AcceptLoop() {
  while (!draining()) {
    Result<TcpConn> conn = listener_.Accept();
    if (!conn.ok()) break;  // listener shut down (drain) or fatal
    metrics_.counter(metric::kServiceConnections).Add();
    if (!ProbeSite(options_.faults, nullptr, fault_sites::kServiceAccept).ok()) {
      continue;  // injected accept failure: the dropped TcpConn closes itself
    }
    std::lock_guard<std::mutex> lock(conns_mu_);
    conn_threads_.emplace_back(&Server::ServeConnection, this, std::move(*conn));
  }
}

bool Server::IsExpensive(const std::string& cmd) {
  return cmd == "check" || cmd == "reformulate" || cmd == "lint";
}

void Server::ServeConnection(TcpConn conn) {
  active_sessions_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    open_conns_.push_back(&conn);
  }
  // A connection accepted concurrently with RequestDrain may register after
  // the drain's shutdown sweep; cover that window ourselves.
  if (draining()) conn.ShutdownRead();

  Session session;
  Counter& requests = metrics_.counter(metric::kServiceRequests);
  Counter& errors = metrics_.counter(metric::kServiceErrors);
  Histogram& request_us = metrics_.histogram(metric::kServiceRequestUs);

  while (true) {
    Result<std::optional<std::string>> line = conn.ReadLine();
    if (!line.ok() || !line->has_value()) break;
    if (Trim(**line).empty()) continue;
    if (!ProbeSite(options_.faults, nullptr, fault_sites::kServiceParse).ok()) {
      break;  // injected parse failure drops the connection
    }
    requests.Add();
    std::string response;
    {
      ScopedTimerUs timer(&request_us);
      Result<Request> request = ParseRequest(**line);
      if (!request.ok()) {
        response = ErrorResponse("", request.status());
      } else if (Status dispatch_probe = ProbeSite(options_.faults, nullptr,
                                                   fault_sites::kServiceDispatch);
                 !dispatch_probe.ok()) {
        response = ErrorResponse(request->id, dispatch_probe);
      } else if (!IsExpensive(request->cmd)) {
        response = Dispatch(session, *request);
      } else if (draining()) {
        response = ErrorResponse(
            request->id, Status::FailedPrecondition("server draining; retry elsewhere"));
      } else {
        // Admission control: shed once queued-or-running hits the cap.
        size_t prior = inflight_.fetch_add(1, std::memory_order_acq_rel);
        if (prior >= options_.max_inflight) {
          inflight_.fetch_sub(1, std::memory_order_acq_rel);
          metrics_.counter(metric::kServiceOverloaded).Add();
          response = OverloadedResponse(request->id);
        } else {
          // Run on the worker pool; this connection thread blocks until its
          // request finishes, so Session stays single-owner.
          std::mutex mu;
          std::condition_variable cv;
          bool done = false;
          pool_->Submit([&] {
            std::string r = Dispatch(session, *request);
            std::lock_guard<std::mutex> task_lock(mu);
            response = std::move(r);
            done = true;
            cv.notify_one();
          });
          std::unique_lock<std::mutex> wait_lock(mu);
          cv.wait(wait_lock, [&] { return done; });
          inflight_.fetch_sub(1, std::memory_order_acq_rel);
        }
      }
    }
    if (response.find("\"ok\":false") != std::string::npos) errors.Add();
    response += "\n";
    if (!conn.WriteAll(response).ok()) break;
  }

  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    open_conns_.erase(std::remove(open_conns_.begin(), open_conns_.end(), &conn),
                      open_conns_.end());
  }
  active_sessions_.fetch_sub(1, std::memory_order_acq_rel);
}

std::string Server::Dispatch(Session& session, const Request& request) {
  if (request.cmd == "hello") return HandleHello(request);
  if (request.cmd == "ddl") return HandleDdl(session, request);
  if (request.cmd == "relation") return HandleRelation(session, request);
  if (request.cmd == "dep") return HandleDep(session, request);
  if (request.cmd == "check") return HandleCheck(session, request);
  if (request.cmd == "reformulate") return HandleReformulate(session, request);
  if (request.cmd == "lint") return HandleLint(session, request);
  if (request.cmd == "stats") return HandleStats(request);
  return ErrorResponse(request.id,
                       Status::InvalidArgument("unknown command \"" + request.cmd + "\""));
}

std::string Server::HandleHello(const Request& request) {
  return JsonObject()
      .Str("id", request.id)
      .Bool("ok", true)
      .Str("server", "sqleqd")
      .Int("protocol", kProtocolVersion)
      .Build();
}

std::string Server::HandleDdl(Session& session, const Request& request) {
  Result<std::string> script = RequireString(request.body, "script");
  if (!script.ok()) return ErrorResponse(request.id, script.status());
  Status status = session.ApplyDdl(*script);
  if (!status.ok()) return ErrorResponse(request.id, status);
  return JsonObject()
      .Str("id", request.id)
      .Bool("ok", true)
      .Int("relations", session.catalog().schema.size())
      .Int("sigma", session.catalog().sigma.size())
      .Build();
}

std::string Server::HandleRelation(Session& session, const Request& request) {
  Result<std::string> name = RequireString(request.body, "name");
  if (!name.ok()) return ErrorResponse(request.id, name.status());
  std::optional<double> arity = OptionalNumber(request.body, "arity");
  if (!arity.has_value() || *arity < 1) {
    return ErrorResponse(request.id,
                         Status::InvalidArgument("relation requires a numeric arity >= 1"));
  }
  bool set_valued = OptionalBool(request.body, "set_valued", false);
  Status status =
      session.AddRelation(*name, static_cast<size_t>(*arity), set_valued);
  if (!status.ok()) return ErrorResponse(request.id, status);
  return JsonObject()
      .Str("id", request.id)
      .Bool("ok", true)
      .Int("relations", session.catalog().schema.size())
      .Build();
}

std::string Server::HandleDep(Session& session, const Request& request) {
  Result<std::string> text = RequireString(request.body, "text");
  if (!text.ok()) return ErrorResponse(request.id, text.status());
  std::string label = OptionalString(request.body, "label").value_or("");
  Result<size_t> added = session.AddDependency(*text, std::move(label));
  if (!added.ok()) return ErrorResponse(request.id, added.status());
  return JsonObject()
      .Str("id", request.id)
      .Bool("ok", true)
      .Int("added", *added)
      .Int("sigma", session.catalog().sigma.size())
      .Build();
}

std::string Server::HandleCheck(Session& session, const Request& request) {
  Result<std::string> q1_text = RequireString(request.body, "q1");
  if (!q1_text.ok()) return ErrorResponse(request.id, q1_text.status());
  Result<std::string> q2_text = RequireString(request.body, "q2");
  if (!q2_text.ok()) return ErrorResponse(request.id, q2_text.status());

  Semantics semantics = Semantics::kSet;
  if (std::optional<std::string> s = OptionalString(request.body, "semantics")) {
    Result<Semantics> parsed = ParseSemanticsName(*s);
    if (!parsed.ok()) return ErrorResponse(request.id, parsed.status());
    semantics = *parsed;
  }
  Result<ConjunctiveQuery> q1 = session.ResolveQuery(*q1_text, "Q1");
  if (!q1.ok()) return ErrorResponse(request.id, q1.status());
  Result<ConjunctiveQuery> q2 = session.ResolveQuery(*q2_text, "Q2");
  if (!q2.ok()) return ErrorResponse(request.id, q2.status());

  MetricsRegistry local;
  EquivRequest equiv;
  equiv.semantics = semantics;
  equiv.sigma = session.catalog().sigma;
  equiv.schema = session.catalog().schema;
  equiv.context = ContextFor(request.body, &local);

  std::optional<ChaseCheckpoint> resume;
  if (std::optional<std::string> text = OptionalString(request.body, "resume")) {
    Result<ChaseCheckpoint> parsed = ChaseCheckpoint::Deserialize(*text);
    if (!parsed.ok()) return ErrorResponse(request.id, parsed.status());
    resume = *std::move(parsed);
    equiv.resume = &*resume;
  }

  Result<EquivVerdict> verdict = engine()->Equivalent(*q1, *q2, equiv);
  if (!verdict.ok()) return ErrorResponse(request.id, verdict.status());

  JsonObject out;
  out.Str("id", request.id)
      .Bool("ok", true)
      .Str("verdict", VerdictToString(verdict->verdict))
      .Bool("equivalent", verdict->verdict == Verdict::kEquivalent)
      .Str("semantics", SemanticsWireName(semantics));
  if (verdict->exhaustion.has_value()) {
    out.Raw("exhaustion", RenderExhaustion(*verdict->exhaustion));
  }
  if (verdict->checkpoint.has_value()) {
    out.Str("checkpoint", verdict->checkpoint->Serialize());
  }
  if (draining()) out.Bool("drained", true);
  out.Raw("metrics", MergeAndRenderMetrics(local));
  return out.Build();
}

std::string Server::HandleReformulate(Session& session, const Request& request) {
  Result<std::string> query_text = RequireString(request.body, "query");
  if (!query_text.ok()) return ErrorResponse(request.id, query_text.status());

  Semantics semantics = Semantics::kSet;
  if (std::optional<std::string> s = OptionalString(request.body, "semantics")) {
    Result<Semantics> parsed = ParseSemanticsName(*s);
    if (!parsed.ok()) return ErrorResponse(request.id, parsed.status());
    semantics = *parsed;
  }
  Result<ConjunctiveQuery> q = session.ResolveQuery(*query_text, "Q");
  if (!q.ok()) return ErrorResponse(request.id, q.status());

  MetricsRegistry local;
  CandBOptions options;
  options.context = ContextFor(request.body, &local);

  std::optional<CandBCheckpoint> resume;
  if (std::optional<std::string> text = OptionalString(request.body, "resume")) {
    Result<CandBCheckpoint> parsed = CandBCheckpoint::Deserialize(*text);
    if (!parsed.ok()) return ErrorResponse(request.id, parsed.status());
    resume = *std::move(parsed);
    options.resume = &*resume;
  }

  Result<CandBResult> result = ChaseAndBackchase(
      *q, session.catalog().sigma, semantics, session.catalog().schema, options);
  if (!result.ok()) return ErrorResponse(request.id, result.status());

  std::vector<std::string> reformulations;
  reformulations.reserve(result->reformulations.size());
  for (const ConjunctiveQuery& r : result->reformulations) {
    reformulations.push_back(r.ToString());
  }

  JsonObject out;
  out.Str("id", request.id)
      .Bool("ok", true)
      .Bool("complete", result->complete)
      .Raw("reformulations", RenderStringArray(reformulations))
      .Str("universal_plan", result->universal_plan.ToString())
      .Int("candidates", result->candidates_examined)
      .Int("cache_hits", result->chase_cache_hits)
      .Int("cache_misses", result->chase_cache_misses);
  if (result->exhaustion.has_value()) {
    out.Raw("exhaustion", RenderExhaustion(*result->exhaustion));
  }
  if (result->checkpoint.has_value()) {
    out.Str("checkpoint", result->checkpoint->Serialize());
  }
  if (draining()) out.Bool("drained", true);
  out.Raw("metrics", MergeAndRenderMetrics(local));
  return out.Build();
}

std::string Server::HandleLint(Session& session, const Request& request) {
  AnalyzeOptions opts = AnalyzeOptions::Full();
  opts.warnings_as_errors = OptionalBool(request.body, "strict", false);
  opts.budget = options_.default_budget;

  std::vector<ConjunctiveQuery> queries;
  if (const JsonValue* list = request.body.Find("queries");
      list != nullptr && list->is_array()) {
    for (size_t i = 0; i < list->array.size(); ++i) {
      const JsonValue& item = list->array[i];
      if (!item.is_string()) {
        return ErrorResponse(request.id,
                             Status::InvalidArgument("lint \"queries\" must hold strings"));
      }
      Result<ConjunctiveQuery> q =
          session.ResolveQuery(item.string, "L" + std::to_string(i + 1));
      if (!q.ok()) return ErrorResponse(request.id, q.status());
      queries.push_back(*std::move(q));
    }
  }

  AnalysisReport report = AnalyzeProgram(session.catalog().schema,
                                         session.catalog().sigma, queries, opts);
  std::string diagnostics = "[";
  for (size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    if (i > 0) diagnostics += ",";
    diagnostics += JsonObject()
                       .Str("code", d.code)
                       .Str("severity", SeverityToString(d.severity))
                       .Str("subject", d.subject)
                       .Str("message", d.message)
                       .Build();
  }
  diagnostics += "]";
  return JsonObject()
      .Str("id", request.id)
      .Bool("ok", true)
      .Bool("errors", report.HasErrors())
      .Int("findings", report.diagnostics.size())
      .Raw("diagnostics", diagnostics)
      .Build();
}

std::string Server::HandleStats(const Request& request) {
  MetricsSnapshot snapshot = metrics_.Snapshot();
  EquivalenceEngine::CacheStats cache = engine()->cache_stats();
  JsonObject memo;
  memo.Int("hits", cache.hits)
      .Int("misses", cache.misses)
      .Int("entries", cache.entries)
      .Int("contexts", cache.contexts)
      .Int("compiled_kernels", cache.compiled_kernels)
      .Int("pattern_atoms", cache.pattern_atoms);
  return JsonObject()
      .Str("id", request.id)
      .Bool("ok", true)
      .Str("prometheus", snapshot.ToPrometheusText())
      .Int("inflight", inflight())
      .Int("sessions", active_sessions())
      .Bool("draining", draining())
      .Raw("memo", memo.Build())
      .Build();
}

EngineContext Server::ContextFor(const JsonValue& body, MetricsRegistry* local) {
  EngineContext ctx;
  ctx.budget = options_.default_budget;
  // Requests narrow the server's caps; they cannot raise them.
  if (std::optional<double> v = OptionalNumber(body, "max_chase_steps"); v && *v > 0) {
    ctx.budget.max_chase_steps =
        std::min(ctx.budget.max_chase_steps, static_cast<size_t>(*v));
  }
  if (std::optional<double> v = OptionalNumber(body, "max_candidates"); v && *v > 0) {
    ctx.budget.max_candidates =
        std::min(ctx.budget.max_candidates, static_cast<size_t>(*v));
  }
  if (std::optional<double> v = OptionalNumber(body, "threads"); v && *v > 0) {
    size_t cap = std::max<size_t>(1, ctx.budget.threads);
    ctx.budget.threads = std::min(cap, static_cast<size_t>(*v));
  }
  if (std::optional<double> v = OptionalNumber(body, "deadline_ms"); v && *v > 0) {
    ctx.budget.deadline_origin = std::chrono::steady_clock::now();
    ctx.budget.deadline =
        *ctx.budget.deadline_origin +
        std::chrono::milliseconds(static_cast<int64_t>(*v));
  }
  ctx.metrics = local;
  ctx.faults = options_.faults;
  ctx.cancel = &drain_cancel_;
  return ctx;
}

std::string Server::MergeAndRenderMetrics(const MetricsRegistry& local) {
  MetricsSnapshot snapshot = local.Snapshot();
  JsonObject counters;
  for (const auto& [name, value] : snapshot.counters) {
    // Fold the per-request counter deltas into the server-lifetime registry;
    // histogram deltas stay request-local (snapshots cannot be re-recorded).
    if (value != 0) metrics_.counter(name).Add(value);
    counters.Int(name, value);
  }
  return counters.Build();
}

}  // namespace service
}  // namespace sqleq
